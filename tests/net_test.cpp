// Packet/flow substrate tests: tuple serialization, header codecs (build +
// parse roundtrip, parameterized over protocol and VLAN), line-rate math
// against the paper's §V-B numbers, the Fig. 6 trace calibration, and the
// binary trace format.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#include "net/headers.hpp"
#include "net/linerate.hpp"
#include "net/trace.hpp"
#include "net/trace_io.hpp"
#include "net/tuple.hpp"

namespace flowcam::net {
namespace {

FiveTuple sample_tuple() {
    FiveTuple t;
    t.src_ip = 0xC0A80001;  // 192.168.0.1
    t.dst_ip = 0x08080808;  // 8.8.8.8
    t.src_port = 51515;
    t.dst_port = 443;
    t.protocol = kProtoTcp;
    return t;
}

TEST(FiveTupleTest, KeyBytesRoundtrip) {
    const FiveTuple original = sample_tuple();
    const auto bytes = original.key_bytes();
    const FiveTuple decoded = FiveTuple::from_key_bytes(bytes);
    EXPECT_EQ(decoded, original);
}

TEST(FiveTupleTest, KeyBytesAreBigEndian) {
    const auto bytes = sample_tuple().key_bytes();
    EXPECT_EQ(bytes[0], 0xC0);
    EXPECT_EQ(bytes[1], 0xA8);
    EXPECT_EQ(bytes[4], 0x08);
    EXPECT_EQ(bytes[8], 51515 >> 8);
    EXPECT_EQ(bytes[12], kProtoTcp);
}

TEST(FiveTupleTest, ToStringHumanReadable) {
    EXPECT_EQ(sample_tuple().to_string(), "192.168.0.1:51515 -> 8.8.8.8:443 proto 6");
}

TEST(NTupleTest, FromFiveTuple) {
    const NTuple key = NTuple::from_five_tuple(sample_tuple());
    EXPECT_EQ(key.size(), FiveTuple::kKeyBytes);
    EXPECT_EQ(FiveTuple::from_key_bytes(key.view()), sample_tuple());
}

TEST(NTupleTest, AppendFieldBuildsKey) {
    NTuple key;
    key.append_field(0xAABB, 2);
    key.append_field(0x01, 1);
    EXPECT_EQ(key.size(), 3u);
    EXPECT_EQ(key.view()[0], 0xAA);
    EXPECT_EQ(key.view()[1], 0xBB);
    EXPECT_EQ(key.view()[2], 0x01);
}

TEST(NTupleTest, TruncatesAtMaxBytes) {
    NTuple key;
    for (int i = 0; i < 10; ++i) key.append_field(0x1122334455667788ull, 8);
    EXPECT_EQ(key.size(), NTuple::kMaxBytes);
}

TEST(NTupleTest, EqualityIsContentBased) {
    const NTuple a = NTuple::from_five_tuple(sample_tuple());
    const NTuple b = NTuple::from_five_tuple(sample_tuple());
    EXPECT_EQ(a, b);
    NTuple c = a;
    c.append_field(1, 1);
    EXPECT_FALSE(a == c);
}

struct CodecCase {
    u8 protocol;
    bool vlan;
    u16 payload;
};

class HeaderCodecTest : public ::testing::TestWithParam<CodecCase> {};

INSTANTIATE_TEST_SUITE_P(
    Variants, HeaderCodecTest,
    ::testing::Values(CodecCase{kProtoTcp, false, 0}, CodecCase{kProtoTcp, true, 100},
                      CodecCase{kProtoUdp, false, 46}, CodecCase{kProtoUdp, true, 1400},
                      CodecCase{kProtoTcp, false, 1460}),
    [](const auto& info) {
        return std::string(info.param.protocol == kProtoTcp ? "tcp" : "udp") +
               (info.param.vlan ? "_vlan" : "") + "_" + std::to_string(info.param.payload);
    });

TEST_P(HeaderCodecTest, BuildParseRoundtrip) {
    PacketSpec spec;
    spec.tuple = sample_tuple();
    spec.tuple.protocol = GetParam().protocol;
    if (GetParam().vlan) spec.vlan = 42;
    spec.payload_bytes = GetParam().payload;

    const auto frame = build_packet(spec);
    const auto parsed = parse_packet(frame);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tuple, spec.tuple);
    EXPECT_EQ(parsed->has_vlan, GetParam().vlan);
    EXPECT_EQ(parsed->frame_bytes, frame.size());
}

TEST(HeaderCodec, ChecksumValidatesToZero) {
    PacketSpec spec;
    spec.tuple = sample_tuple();
    const auto frame = build_packet(spec);
    // Verifying a correct IPv4 header checksum yields 0.
    const std::span<const u8> header{frame.data() + kEthHeaderBytes, kIpv4MinHeaderBytes};
    EXPECT_EQ(ipv4_header_checksum(header), 0u);
}

TEST(HeaderCodec, RejectsTruncatedFrames) {
    PacketSpec spec;
    spec.tuple = sample_tuple();
    auto frame = build_packet(spec);
    frame.resize(20);
    EXPECT_FALSE(parse_packet(frame).has_value());
}

TEST(HeaderCodec, RejectsNonIpv4) {
    PacketSpec spec;
    spec.tuple = sample_tuple();
    auto frame = build_packet(spec);
    frame[12] = 0x86;  // EtherType -> IPv6
    frame[13] = 0xDD;
    EXPECT_FALSE(parse_packet(frame).has_value());
}

TEST(HeaderCodec, IcmpParsesWithZeroPorts) {
    PacketSpec spec;
    spec.tuple = sample_tuple();
    spec.tuple.protocol = kProtoIcmp;
    spec.tuple.src_port = 0;
    spec.tuple.dst_port = 0;
    // build_packet emits UDP-ish L4 for non-TCP; overwrite protocol only.
    auto frame = build_packet(spec);
    const auto parsed = parse_packet(frame);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tuple.protocol, kProtoIcmp);
    EXPECT_EQ(parsed->tuple.src_port, 0u);
}

TEST(LineRate, PaperNumbers40GbE) {
    // §V-B: 59.52 Mpps at 12 B IPG; 68.49 Mpps at 1 B IPG (72 B L1 size).
    EXPECT_NEAR(mpps({40.0, 64.0, 12.0}), 59.52, 0.01);
    EXPECT_NEAR(mpps({40.0, 64.0, 1.0}), 68.49, 0.01);
}

TEST(LineRate, SupportedGbpsInverse) {
    // A 94 Mdesc/s processor supports > 50 Gbps at min packet size (§V-B).
    EXPECT_GT(supported_gbps(94.36), 50.0);
    // Round trip: mpps(supported_gbps(x)) == x.
    const double gbps = supported_gbps(70.0);
    EXPECT_NEAR(mpps({gbps, 64.0, 12.0}), 70.0, 0.01);
}

TEST(LineRate, TenAndHundredGig) {
    EXPECT_NEAR(mpps({10.0, 64.0, 12.0}), 14.88, 0.01);
    EXPECT_NEAR(mpps({100.0, 64.0, 12.0}), 148.81, 0.01);
}

TEST(SynthTuple, DistinctFlowsDistinctTuples) {
    std::set<std::array<u8, FiveTuple::kKeyBytes>> seen;
    for (u64 flow = 0; flow < 20000; ++flow) {
        seen.insert(synth_tuple(flow, 1).key_bytes());
    }
    EXPECT_EQ(seen.size(), 20000u);
}

TEST(SynthTuple, DeterministicPerSeed) {
    EXPECT_EQ(synth_tuple(5, 9).key_bytes(), synth_tuple(5, 9).key_bytes());
    EXPECT_NE(synth_tuple(5, 9).key_bytes(), synth_tuple(5, 10).key_bytes());
}

TEST(TraceGeneratorTest, Fig6CalibrationAt1k) {
    TraceConfig config;
    const auto points = measure_flow_growth(config, {1000});
    // Paper: 570 flows per 1000 packets (57 %). Allow a +-12 % band — the
    // Pitman-Yor draw is stochastic.
    EXPECT_NEAR(points[0].ratio, 0.57, 0.07);
}

TEST(TraceGeneratorTest, Fig6CalibrationAt10k) {
    TraceConfig config;
    const auto points = measure_flow_growth(config, {10000});
    // Paper: 33.81 %.
    EXPECT_NEAR(points[0].ratio, 0.3381, 0.05);
}

TEST(TraceGeneratorTest, RatioFallsBelow10PercentEventually) {
    TraceConfig config;
    const auto points = measure_flow_growth(config, {2'000'000});
    EXPECT_LT(points[0].ratio, 0.12);
}

TEST(TraceGeneratorTest, RatioMonotonicallyDecreases) {
    TraceConfig config;
    const auto points = measure_flow_growth(config, {1000, 10000, 100000});
    EXPECT_GT(points[0].ratio, points[1].ratio);
    EXPECT_GT(points[1].ratio, points[2].ratio);
}

TEST(TraceGeneratorTest, TimestampsStrictlyIncrease) {
    TraceGenerator generator(TraceConfig{});
    u64 previous = 0;
    for (int i = 0; i < 1000; ++i) {
        const auto record = generator.next();
        EXPECT_GT(record.timestamp_ns, previous);
        previous = record.timestamp_ns;
    }
}

TEST(TraceGeneratorTest, SameFlowSameTuple) {
    TraceGenerator generator(TraceConfig{});
    std::map<u64, FiveTuple> tuples;
    for (int i = 0; i < 5000; ++i) {
        const auto record = generator.next();
        const auto [it, inserted] = tuples.emplace(record.flow_index, record.tuple);
        if (!inserted) EXPECT_EQ(it->second, record.tuple);
    }
}

TEST(TraceGeneratorTest, PacketSizesFollowMix) {
    TraceConfig config;
    TraceGenerator generator(config);
    u64 count64 = 0;
    u64 total = 20000;
    for (u64 i = 0; i < total; ++i) count64 += generator.next().frame_bytes == 64;
    EXPECT_NEAR(static_cast<double>(count64) / static_cast<double>(total), 0.5, 0.03);
}

TEST(UniformWorkloadTest, DrawsOnlyFromPopulation) {
    UniformFlowWorkload workload(100, 3);
    std::set<std::array<u8, FiveTuple::kKeyBytes>> population;
    for (const auto& tuple : workload.flows()) population.insert(tuple.key_bytes());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_TRUE(population.contains(workload.next().tuple.key_bytes()));
    }
}

TEST(TraceIoTest, WriteReadRoundtrip) {
    TraceGenerator generator(TraceConfig{});
    std::vector<PacketRecord> records;
    for (int i = 0; i < 500; ++i) records.push_back(generator.next());

    const std::string path =
        (std::filesystem::temp_directory_path() / "flowcam_trace_test.fct").string();
    ASSERT_TRUE(write_trace(path, records).is_ok());
    auto loaded = read_trace(path);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded.value().size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(loaded.value()[i].tuple, records[i].tuple);
        EXPECT_EQ(loaded.value()[i].timestamp_ns, records[i].timestamp_ns);
        EXPECT_EQ(loaded.value()[i].frame_bytes, records[i].frame_bytes);
    }
    std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsBadMagic) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "flowcam_bad_magic.fct").string();
    {
        std::ofstream out(path, std::ios::binary);
        out << "NOPE1234garbage";
    }
    const auto loaded = read_trace(path);
    EXPECT_FALSE(loaded.has_value());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileIsUnavailable) {
    const auto loaded = read_trace("/nonexistent/dir/trace.fct");
    EXPECT_FALSE(loaded.has_value());
    EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace flowcam::net
