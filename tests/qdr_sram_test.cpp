// QDRII+ SRAM model tests: dual-port concurrency, fixed latency, data
// integrity, and the 144 Mbit capacity ceiling the paper cites as the
// reason to move to DDR3.
#include <gtest/gtest.h>

#include <vector>

#include "dram/qdr_sram.hpp"

namespace flowcam::dram {
namespace {

std::vector<u8> pattern(u8 seed, std::size_t bytes) {
    std::vector<u8> data(bytes);
    for (std::size_t i = 0; i < bytes; ++i) data[i] = static_cast<u8>(seed + i);
    return data;
}

class QdrTest : public ::testing::Test {
  protected:
    QdrConfig config{};
    QdrSram sram{"dut", config};

    std::vector<QdrSram::Response> run_cycles(u32 cycles) {
        std::vector<QdrSram::Response> responses;
        for (u32 i = 0; i < cycles; ++i) {
            sram.tick(now_++);
            while (auto response = sram.pop_response()) responses.push_back(*response);
        }
        return responses;
    }

    Cycle now_ = 0;
};

TEST_F(QdrTest, WriteThenReadRoundtrip) {
    const auto payload = pattern(7, sram.access_bytes());
    ASSERT_TRUE(sram.enqueue_write(1, 256, payload));
    (void)run_cycles(2);
    ASSERT_TRUE(sram.enqueue_read(2, 256));
    const auto responses = run_cycles(8);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_FALSE(responses[0].is_write);
    EXPECT_EQ(responses[0].data, payload);
}

TEST_F(QdrTest, UnwrittenReadsZero) {
    ASSERT_TRUE(sram.enqueue_read(1, 1024));
    const auto responses = run_cycles(8);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].data, std::vector<u8>(sram.access_bytes(), 0));
}

TEST_F(QdrTest, FixedReadLatency) {
    ASSERT_TRUE(sram.enqueue_read(1, 0));
    // Latency 2: issued at cycle 0, data ready at cycle 2.
    sram.tick(0);
    EXPECT_FALSE(sram.pop_response().has_value());
    sram.tick(1);
    EXPECT_FALSE(sram.pop_response().has_value());
    sram.tick(2);
    EXPECT_TRUE(sram.pop_response().has_value());
}

TEST_F(QdrTest, ReadAndWritePortsOperateConcurrently) {
    // QDR's defining feature: one read AND one write retire every cycle.
    for (u64 i = 0; i < 16; ++i) {
        ASSERT_TRUE(sram.enqueue_write(100 + i, i * 64, pattern(static_cast<u8>(i), 16)));
        ASSERT_TRUE(sram.enqueue_read(200 + i, 4096 + i * 64));
    }
    const auto responses = run_cycles(16 + config.read_latency + 1);
    // All 32 operations completed in ~16 cycles + latency tail.
    EXPECT_EQ(responses.size(), 32u);
}

TEST_F(QdrTest, CapacityCeilingRejectsLargeAddresses) {
    const u64 limit = sram.capacity_bytes();
    EXPECT_TRUE(sram.enqueue_read(1, limit - sram.access_bytes()));
    EXPECT_FALSE(sram.enqueue_read(2, limit));
    EXPECT_FALSE(sram.enqueue_write(3, limit + 4096, pattern(1, 16)));
    EXPECT_EQ(sram.stats().rejected_capacity, 2u);
}

TEST_F(QdrTest, CapacityIs144MbitAsPaperCites) {
    EXPECT_EQ(sram.capacity_bytes(), 144ull * 1024 * 1024 / 8);
    // An 8M-entry flow table at 16 B/entry needs 128 MiB — QDR tops out at
    // 18 MiB, which is the paper's whole §I argument in one assert.
    EXPECT_LT(sram.capacity_bytes(), 8ull * 1024 * 1024 * 16);
}

TEST_F(QdrTest, QueueBackpressure) {
    u64 accepted = 0;
    for (u64 i = 0; i < 32; ++i) accepted += sram.enqueue_read(i, i * 64);
    EXPECT_EQ(accepted, config.queue_depth);
}

TEST_F(QdrTest, DrainsToIdle) {
    ASSERT_TRUE(sram.enqueue_write(1, 0, pattern(1, 16)));
    ASSERT_TRUE(sram.enqueue_read(2, 0));
    (void)run_cycles(10);
    EXPECT_TRUE(sram.idle());
    EXPECT_EQ(sram.stats().reads, 1u);
    EXPECT_EQ(sram.stats().writes, 1u);
}

}  // namespace
}  // namespace flowcam::dram
