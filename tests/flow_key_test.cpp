// FlowKey / FlowKeyMap unit tests plus per-flow ordering-interlock
// regressions through the timed Flow LUT — specifically with keys that
// collide in the low bits of the FlowKey hash (the open-addressed gate
// table's probe bits), IPv4 and IPv6, so interlock state for one flow can
// never bleed into a colliding neighbor.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/flat_map.hpp"
#include "core/flow_key.hpp"
#include "core/flow_lut.hpp"
#include "net/ipv6.hpp"
#include "net/trace.hpp"

namespace flowcam::core {
namespace {

FlowKey key_of(u64 flow) {
    return FlowKey(net::NTuple::from_five_tuple(net::synth_tuple(flow, 0x5EED)));
}

net::SixTuple v6_tuple(u64 flow) {
    net::SixTuple tuple;
    tuple.src_ip = net::Ipv6Address::from_words(0x20010db8ull << 16 | flow, flow * 7 + 1);
    tuple.dst_ip = net::Ipv6Address::from_words(0x20010db8ull << 16 | 0xFFFF, 0x2);
    tuple.src_port = static_cast<u16>(1024 + flow % 50000);
    tuple.dst_port = 443;
    tuple.protocol = net::kProtoTcp;
    return tuple;
}

FlowKey v6_key_of(u64 flow) { return FlowKey(v6_tuple(flow).to_ntuple()); }

/// First pair of distinct flows (from `make_key`) whose hashes collide in
/// the low `bits` bits — the probe bits of a 2^bits-slot open table.
template <typename MakeKey>
std::pair<u64, u64> colliding_pair(const MakeKey& make_key, u32 bits) {
    const u64 mask = (u64{1} << bits) - 1;
    std::map<u64, u64> seen;  // masked hash -> flow index
    for (u64 flow = 0;; ++flow) {
        const FlowKey key = make_key(flow);
        const auto [it, inserted] = seen.emplace(key.hash & mask, flow);
        if (!inserted) return {it->second, flow};
    }
}

TEST(FlowKeyTest, EqualKeysEqualHashes) {
    const FlowKey a = key_of(7);
    const FlowKey b = key_of(7);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash, b.hash);
    EXPECT_NE(a, key_of(8));
}

TEST(FlowKeyTest, PaddingDoesNotLeakBetweenKeys) {
    // A long key written into the register, then a shorter one: the shorter
    // key's hash/equality must not see the longer key's tail bytes.
    const FlowKey long_key = v6_key_of(1);   // 37 bytes
    const FlowKey short_key = key_of(1);     // 13 bytes
    FlowKey reused = long_key;
    reused = short_key;
    EXPECT_EQ(reused, short_key);
    EXPECT_EQ(reused.hash, short_key.hash);
}

TEST(FlowKeyTest, ViewRoundtripsTuple) {
    const auto tuple = net::synth_tuple(42, 1);
    const FlowKey key(net::NTuple::from_five_tuple(tuple));
    EXPECT_EQ(net::FiveTuple::from_key_bytes(key.view()), tuple);
}

TEST(FlowKeyMapTest, SharedOpenMapFeaturesWorkForBothKeyTypes) {
    // FlowKeyMap and FlatU64Map are the same common::OpenMap template, so
    // the full feature set (take, reserve, const find) exists on both.
    FlowKeyMap<u32> keyed;
    keyed.reserve(100);
    keyed[key_of(7)] = 70;
    EXPECT_EQ(keyed.take(key_of(7)), 70u);
    EXPECT_TRUE(keyed.empty());
    common::FlatU64Map<u32> ids;
    ids.reserve(100);
    ids[7] = 70;
    const auto& const_ids = ids;
    ASSERT_NE(const_ids.find(7), nullptr);
    EXPECT_EQ(*const_ids.find(7), 70u);
}

TEST(FlowKeyMapTest, InsertFindErase) {
    FlowKeyMap<u32> map;
    map[key_of(1)] = 10;
    map[key_of(2)] = 20;
    EXPECT_EQ(map.size(), 2u);
    ASSERT_NE(map.find(key_of(1)), nullptr);
    EXPECT_EQ(*map.find(key_of(1)), 10u);
    EXPECT_EQ(map.find(key_of(3)), nullptr);
    EXPECT_TRUE(map.erase(key_of(1)));
    EXPECT_FALSE(map.erase(key_of(1)));
    EXPECT_EQ(map.find(key_of(1)), nullptr);
    EXPECT_EQ(*map.find(key_of(2)), 20u);
}

TEST(FlowKeyMapTest, CollidingKeysStayDistinct) {
    const auto [a, b] = colliding_pair(key_of, 6);  // initial capacity is 64.
    FlowKeyMap<u32> map;
    map[key_of(a)] = 1;
    map[key_of(b)] = 2;
    EXPECT_EQ(*map.find(key_of(a)), 1u);
    EXPECT_EQ(*map.find(key_of(b)), 2u);
    // Erase the first probe occupant; the collided key must stay reachable
    // across the tombstone.
    EXPECT_TRUE(map.erase(key_of(a)));
    EXPECT_EQ(*map.find(key_of(b)), 2u);
    map[key_of(a)] = 3;  // tombstone slot reused.
    EXPECT_EQ(*map.find(key_of(a)), 3u);
    EXPECT_EQ(*map.find(key_of(b)), 2u);
}

TEST(FlowKeyMapTest, ChurnWithTombstonesKeepsAllLiveKeys) {
    FlowKeyMap<u64> map;
    for (u64 round = 0; round < 2000; ++round) {
        map[key_of(round)] = round;
        if (round >= 8) EXPECT_TRUE(map.erase(key_of(round - 8)));
        for (u64 live = round >= 7 ? round - 7 : 0; live <= round; ++live) {
            ASSERT_NE(map.find(key_of(live)), nullptr) << "round " << round;
            EXPECT_EQ(*map.find(key_of(live)), live);
        }
    }
}

TEST(FlowKeyMapTest, GrowthPreservesEntries) {
    FlowKeyMap<u64> map(2);
    for (u64 flow = 0; flow < 500; ++flow) map[key_of(flow)] = flow * 3;
    EXPECT_EQ(map.size(), 500u);
    for (u64 flow = 0; flow < 500; ++flow) {
        ASSERT_NE(map.find(key_of(flow)), nullptr);
        EXPECT_EQ(*map.find(key_of(flow)), flow * 3);
    }
}

TEST(FlatU64MapTest, InsertTakeErase) {
    common::FlatU64Map<u64> map;
    map[5] = 50;
    map[6] = 60;
    EXPECT_EQ(map.take(5), 50u);
    EXPECT_EQ(map.find(5), nullptr);
    EXPECT_EQ(*map.find(6), 60u);
    map[5] = 55;
    EXPECT_EQ(*map.find(5), 55u);
}

TEST(FlatU64MapTest, SequentialIdChurn) {
    common::FlatU64Map<u64> map;
    for (u64 id = 1; id <= 5000; ++id) {
        map[id] = id;
        if (id > 16) EXPECT_EQ(map.take(id - 16), id - 16);
    }
    for (u64 id = 5000 - 15; id <= 5000; ++id) EXPECT_EQ(*map.find(id), id);
}

// ---- Ordering interlock through the timed Flow LUT -------------------------

FlowLutConfig small_config() {
    FlowLutConfig config;
    config.buckets_per_mem = 1 << 10;
    config.cam_capacity = 64;
    return config;
}

/// Offer interleaved packets of `flows` (every cycle, saturating the input)
/// and assert that each flow's completions retire in offer order with one
/// stable FID per flow — the §IV-A ordering promise, which the per-flow
/// interlock gate must uphold even when the flows' hashes collide in the
/// gate table's probe bits.
void check_interlock_ordering(const std::vector<FlowKey>& flows) {
    FlowLut lut(small_config());
    constexpr u64 kPacketsPerFlow = 200;
    std::vector<u64> offered_per_flow(flows.size(), 0);
    u64 offered = 0;
    u64 ts = 1;
    while (offered < kPacketsPerFlow * flows.size()) {
        const std::size_t which = offered % flows.size();
        if (lut.offer(flows[which], ts, 64)) {
            ++offered;
            ++offered_per_flow[which];
            ts += 3;
        }
        lut.step();
    }
    ASSERT_TRUE(lut.drain());

    // seq is global offer order; per flow, completions must come back in
    // strictly increasing seq with a single FID after the first retire.
    std::map<std::string, std::pair<u64, FlowId>> last_per_flow;  // key -> (seq, fid)
    u64 completions = 0;
    while (const auto completion = lut.pop_completion()) {
        ++completions;
        const auto view = completion->key.view();
        std::string key(reinterpret_cast<const char*>(view.data()), view.size());
        const auto it = last_per_flow.find(key);
        if (it == last_per_flow.end()) {
            ASSERT_NE(completion->fid, kInvalidFlowId);
            last_per_flow.emplace(key, std::make_pair(completion->seq, completion->fid));
            continue;
        }
        EXPECT_GT(completion->seq, it->second.first) << "flow retired out of order";
        EXPECT_EQ(completion->fid, it->second.second) << "flow changed FID mid-stream";
        it->second.first = completion->seq;
    }
    EXPECT_EQ(completions, kPacketsPerFlow * flows.size());
    EXPECT_EQ(last_per_flow.size(), flows.size());
}

TEST(FlowLutInterlockTest, OrderingHeldForIpv4KeysCollidingInLowHashBits) {
    const auto [a, b] = colliding_pair(key_of, 8);
    check_interlock_ordering({key_of(a), key_of(b)});
}

TEST(FlowLutInterlockTest, OrderingHeldForIpv6KeysCollidingInLowHashBits) {
    const auto [a, b] = colliding_pair(v6_key_of, 8);
    check_interlock_ordering({v6_key_of(a), v6_key_of(b)});
}

TEST(FlowLutInterlockTest, OrderingHeldForMixedIpv4AndIpv6) {
    check_interlock_ordering({key_of(1), v6_key_of(1), key_of(2), v6_key_of(2)});
}

}  // namespace
}  // namespace flowcam::core
