// Flight-recorder tests: histogram bucket math and percentiles, the
// counter/histogram registry's collision contract, trace-ring flight
// semantics, Chrome trace-event JSON well-formedness (a real parser walks
// every record), sampler determinism under a fixed seed, and the obs-off
// guarantee that attaching a Recorder never changes a simulation's answers.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "workload/metrics.hpp"
#include "workload/runner.hpp"

namespace flowcam::obs {
namespace {

// ---- A small strict JSON parser --------------------------------------------
// The point of these tests is that the emitted trace is *actually* JSON, so
// the checker is a real recursive-descent parser, not a regex.

struct Json {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> array;
    std::map<std::string, Json> object;

    [[nodiscard]] const Json* find(const std::string& key) const {
        const auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

class JsonParser {
  public:
    explicit JsonParser(const std::string& text) : p_(text.data()), end_(text.data() + text.size()) {}

    bool parse(Json& out) {
        skip_ws();
        if (!value(out)) return false;
        skip_ws();
        return p_ == end_;  // no trailing garbage.
    }

  private:
    void skip_ws() {
        while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_)) != 0) ++p_;
    }
    bool literal(const char* text) {
        const char* q = p_;
        for (; *text != '\0'; ++text, ++q) {
            if (q == end_ || *q != *text) return false;
        }
        p_ = q;
        return true;
    }
    bool value(Json& out) {
        if (p_ == end_) return false;
        switch (*p_) {
            case '{': return object(out);
            case '[': return array(out);
            case '"': out.type = Json::Type::kString; return string(out.str);
            case 't': out.type = Json::Type::kBool; out.boolean = true; return literal("true");
            case 'f': out.type = Json::Type::kBool; out.boolean = false; return literal("false");
            case 'n': out.type = Json::Type::kNull; return literal("null");
            default: return number(out);
        }
    }
    bool number(Json& out) {
        char* parse_end = nullptr;
        out.number = std::strtod(p_, &parse_end);
        if (parse_end == p_ || parse_end > end_) return false;
        out.type = Json::Type::kNumber;
        p_ = parse_end;
        return true;
    }
    bool string(std::string& out) {
        if (*p_ != '"') return false;
        ++p_;
        out.clear();
        while (p_ != end_ && *p_ != '"') {
            if (*p_ == '\\') {
                ++p_;
                if (p_ == end_) return false;
                switch (*p_) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    case 'r': out += '\r'; break;
                    case 'b': case 'f': break;
                    case 'u':
                        for (int i = 0; i < 4; ++i) {
                            ++p_;
                            if (p_ == end_ ||
                                std::isxdigit(static_cast<unsigned char>(*p_)) == 0) {
                                return false;
                            }
                        }
                        out += '?';  // code point itself is irrelevant here.
                        break;
                    default: return false;
                }
                ++p_;
            } else {
                out += *p_++;
            }
        }
        if (p_ == end_) return false;
        ++p_;  // closing quote.
        return true;
    }
    bool array(Json& out) {
        out.type = Json::Type::kArray;
        ++p_;  // '['.
        skip_ws();
        if (p_ != end_ && *p_ == ']') { ++p_; return true; }
        while (true) {
            Json element;
            skip_ws();
            if (!value(element)) return false;
            out.array.push_back(std::move(element));
            skip_ws();
            if (p_ == end_) return false;
            if (*p_ == ']') { ++p_; return true; }
            if (*p_ != ',') return false;
            ++p_;
        }
    }
    bool object(Json& out) {
        out.type = Json::Type::kObject;
        ++p_;  // '{'.
        skip_ws();
        if (p_ != end_ && *p_ == '}') { ++p_; return true; }
        while (true) {
            skip_ws();
            std::string key;
            if (p_ == end_ || !string(key)) return false;
            skip_ws();
            if (p_ == end_ || *p_ != ':') return false;
            ++p_;
            skip_ws();
            Json element;
            if (!value(element)) return false;
            out.object[std::move(key)] = std::move(element);
            skip_ws();
            if (p_ == end_) return false;
            if (*p_ == '}') { ++p_; return true; }
            if (*p_ != ',') return false;
            ++p_;
        }
    }

    const char* p_;
    const char* end_;
};

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Parse a trace file and assert the Chrome trace-event contract on every
/// record: ph/ts/pid/tid/name present and typed, ts non-decreasing per tid.
void check_trace_wellformed(const std::string& path, u64 min_events = 1) {
    const std::string text = read_file(path);
    ASSERT_FALSE(text.empty()) << path;
    Json root;
    ASSERT_TRUE(JsonParser(text).parse(root)) << path;
    ASSERT_EQ(root.type, Json::Type::kObject);
    const Json* events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type, Json::Type::kArray);
    const Json* unit = root.find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->str, "ns");

    std::map<double, double> last_ts_by_tid;
    u64 non_meta = 0;
    for (const Json& event : events->array) {
        ASSERT_EQ(event.type, Json::Type::kObject);
        const Json* ph = event.find("ph");
        const Json* ts = event.find("ts");
        const Json* pid = event.find("pid");
        const Json* tid = event.find("tid");
        const Json* name = event.find("name");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(ts, nullptr);
        ASSERT_NE(pid, nullptr);
        ASSERT_NE(tid, nullptr);
        ASSERT_NE(name, nullptr);
        ASSERT_EQ(ph->type, Json::Type::kString);
        ASSERT_EQ(ph->str.size(), 1u);
        ASSERT_EQ(ts->type, Json::Type::kNumber);
        EXPECT_GE(ts->number, 0.0);
        ASSERT_EQ(pid->type, Json::Type::kNumber);
        EXPECT_EQ(pid->number, 1.0);
        ASSERT_EQ(tid->type, Json::Type::kNumber);
        ASSERT_EQ(name->type, Json::Type::kString);
        ASSERT_FALSE(name->str.empty());
        if (ph->str == "M") continue;  // metadata carries no timeline order.
        ++non_meta;
        EXPECT_TRUE(ph->str == "X" || ph->str == "i") << ph->str;
        if (ph->str == "X") {
            const Json* dur = event.find("dur");
            ASSERT_NE(dur, nullptr);
            ASSERT_EQ(dur->type, Json::Type::kNumber);
            EXPECT_GE(dur->number, 0.0);
        }
        const auto [it, inserted] = last_ts_by_tid.try_emplace(tid->number, ts->number);
        if (!inserted) {
            EXPECT_LE(it->second, ts->number)
                << "ts went backwards on tid " << tid->number << " in " << path;
            it->second = ts->number;
        }
    }
    EXPECT_GE(non_meta, min_events) << path;
}

// ---- Histogram --------------------------------------------------------------

TEST(HistogramTest, BucketMappingRoundTrips) {
    u32 last_bucket = 0;
    for (const u64 value :
         {u64{0}, u64{1}, u64{2}, u64{3}, u64{4}, u64{5}, u64{7}, u64{8}, u64{100}, u64{1000},
          u64{123456}, u64{1} << 40, (u64{1} << 40) + 12345, ~u64{0} >> 1, ~u64{0}}) {
        const u32 bucket = Histogram::bucket_of(value);
        ASSERT_LT(bucket, Histogram::kBuckets) << value;
        EXPECT_GE(bucket, last_bucket) << value;  // monotone in the value.
        last_bucket = bucket;
        EXPECT_LE(value, Histogram::upper_bound_of(bucket)) << value;
        // The bucket's upper bound belongs to the bucket (tight inverse).
        EXPECT_EQ(Histogram::bucket_of(Histogram::upper_bound_of(bucket)), bucket) << value;
    }
    // Exhaustive low range: every value maps into a bucket whose bound it
    // respects, and bounds are within 25% of the value (2 significant bits).
    for (u64 value = 0; value < 4096; ++value) {
        const u64 bound = Histogram::upper_bound_of(Histogram::bucket_of(value));
        ASSERT_GE(bound, value);
        ASSERT_LE(static_cast<double>(bound),
                  static_cast<double>(value) * 1.25 + 1.0);
    }
}

TEST(HistogramTest, PercentilesBracketTheSamples) {
    Histogram histogram;
    for (u64 i = 1; i <= 100; ++i) histogram.add(i * 10);
    EXPECT_EQ(histogram.count(), 100u);
    EXPECT_EQ(histogram.min(), 10u);
    EXPECT_EQ(histogram.max(), 1000u);
    // Log-bucketed percentiles land at a bucket bound >= the exact rank
    // value, within one bucket width (25%) above it.
    const u64 p50 = histogram.percentile(0.50);
    EXPECT_GE(p50, 500u);
    EXPECT_LE(p50, 639u);
    const u64 p99 = histogram.percentile(0.99);
    EXPECT_GE(p99, 990u);
    EXPECT_LE(p99, 1000u);  // clamped to the exact max.
    EXPECT_EQ(histogram.percentile(1.0), 1000u);
}

TEST(HistogramTest, EmptyAndSmallValuesAreExact) {
    Histogram histogram;
    EXPECT_EQ(histogram.percentile(0.99), 0u);
    EXPECT_EQ(histogram.min(), 0u);
    histogram.add(3);  // values < 4 have exact unit buckets.
    EXPECT_EQ(histogram.percentile(0.5), 3u);
    EXPECT_EQ(histogram.mean(), 3.0);
}

// ---- Registry ---------------------------------------------------------------

TEST(RecorderTest, DoubleRegistrationIsAlreadyExists) {
    ObsConfig config;
    config.sample_interval = 1;
    Recorder recorder(config);
    const auto first = recorder.register_counter("x.count");
    ASSERT_TRUE(first.has_value());
    const auto duplicate = recorder.register_counter("x.count");
    ASSERT_FALSE(duplicate.has_value());
    EXPECT_EQ(duplicate.status().code(), StatusCode::kAlreadyExists);

    const auto histogram = recorder.register_histogram("x.lat");
    ASSERT_TRUE(histogram.has_value());
    const auto histogram_dup = recorder.register_histogram("x.lat");
    ASSERT_FALSE(histogram_dup.has_value());
    EXPECT_EQ(histogram_dup.status().code(), StatusCode::kAlreadyExists);

    // Counter and histogram namespaces are independent; the cell survives
    // at a stable address.
    ++*first.value();
    EXPECT_EQ(*recorder.find_counter("x.count"), 1u);
    EXPECT_EQ(recorder.find_counter("nope"), nullptr);
}

TEST(RecorderTest, TraceRingOverwritesOldestAndCountsDrops) {
    ObsConfig config;
    config.trace = true;
    config.ring_events = 8;
    Recorder recorder(config);
    const u16 track = recorder.track("test-track");
    for (u64 i = 0; i < 20; ++i) {
        recorder.event_instant(track, "tick", i * 100, "i", i);
    }
    EXPECT_EQ(recorder.events_recorded(), 20u);
    EXPECT_EQ(recorder.events_dropped(), 12u);

    Json root;
    ASSERT_TRUE(JsonParser(recorder.trace_json()).parse(root));
    const Json* events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    // 8 retained events + metadata for 3 canonical tracks + this one.
    EXPECT_EQ(events->array.size(), 8u + 4u);
    // Oldest retained first: ts of the first non-metadata record is event 12.
    for (const Json& event : events->array) {
        if (event.find("ph")->str == "M") continue;
        EXPECT_EQ(event.find("ts")->number, 12 * 100 / 1000.0);
        break;
    }
    const Json* other = root.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("events_recorded")->number, 20.0);
    EXPECT_EQ(other->find("events_dropped")->number, 12.0);
}

TEST(RecorderTest, DirectTraceJsonIsWellFormed) {
    ObsConfig config;
    config.trace = true;
    Recorder recorder(config);
    recorder.event_instant(Recorder::kTrackEngine, "boot", 0);
    recorder.event_span(Recorder::kTrackEngine, "fast-forward", 100, 50, "cycles", 10);
    recorder.event_span(Recorder::kTrackSource, "backpressure", 20, 30, "retries", 3);
    recorder.event_instant(recorder.track("ddr3-A"), "ACT", 125, "bank", 5);

    const std::string path = "obs_test_direct_trace.json";
    std::ofstream(path, std::ios::binary) << recorder.trace_json();
    check_trace_wellformed(path, 4);
    std::remove(path.c_str());
}

TEST(RecorderTest, SamplerRowsCarryEveryCounter) {
    ObsConfig config;
    config.sample_interval = 4;
    Recorder recorder(config);
    u64* a = recorder.register_counter("a").value();
    u64* b = recorder.register_counter("b").value();
    *a = 7;
    recorder.sample(0);
    *a = 9;
    *b = 2;
    recorder.sample(4);
    EXPECT_EQ(recorder.samples_recorded(), 2u);
    EXPECT_EQ(recorder.samples_jsonl(),
              "{\"cycle\":0,\"a\":7,\"b\":0}\n{\"cycle\":4,\"a\":9,\"b\":2}\n");
}

// ---- End-to-end through the ScenarioRunner ----------------------------------

workload::RunnerConfig obs_runner_config(u64 packets, const std::string& tag, bool trace,
                                         u64 sample_interval) {
    workload::RunnerConfig config;
    config.packets = packets;
    config.obs.trace = trace;
    config.obs.trace_path = "obs_test_trace_" + tag + ".json";
    config.obs.sample_interval = sample_interval;
    config.obs.sample_path = "obs_test_samples_" + tag + ".jsonl";
    return config;
}

TEST(ScenarioObsTest, SweepTracesParseEndToEnd) {
    // The full 8-scenario sweep the serial perf gate runs: every builtin
    // plus the two composed stress specs, each with tracing on; every
    // produced file must be loadable Chrome trace JSON.
    std::vector<std::string> names = workload::builtin_registry().names();
    names.emplace_back("flash_crowd+syn_flood@onset=0.3,ramp=0.0:0.4");
    names.emplace_back("churn@attack=0.25+syn_flood@onset=0.5,offset=0.8,attack=0.4");
    ASSERT_GE(names.size(), 8u);
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string tag = "sweep" + std::to_string(i);
        workload::ScenarioRunner runner(
            obs_runner_config(800, tag, /*trace=*/true, /*sample_interval=*/0));
        const auto metrics = runner.run(names[i], workload::ScenarioConfig{});
        ASSERT_TRUE(metrics.has_value()) << names[i] << ": " << metrics.status().to_string();
        EXPECT_TRUE(metrics.value().drained) << names[i];
        // Latency percentiles flow out of the recorder's histogram.
        EXPECT_GT(metrics.value().lat_max_ns, 0u) << names[i];
        EXPECT_LE(metrics.value().lat_p50_ns, metrics.value().lat_p95_ns) << names[i];
        EXPECT_LE(metrics.value().lat_p95_ns, metrics.value().lat_p99_ns) << names[i];
        EXPECT_LE(metrics.value().lat_p99_ns, metrics.value().lat_max_ns) << names[i];
        const std::string path = "obs_test_trace_" + tag + ".json";
        check_trace_wellformed(path, 10);
        std::remove(path.c_str());
    }
}

TEST(ScenarioObsTest, SamplerIsDeterministicUnderFixedSeed) {
    workload::ScenarioConfig scenario;
    scenario.seed = 77;
    std::string first;
    for (int run = 0; run < 2; ++run) {
        const std::string tag = "det" + std::to_string(run);
        workload::ScenarioRunner runner(
            obs_runner_config(2000, tag, /*trace=*/false, /*sample_interval=*/256));
        const auto metrics = runner.run("syn_flood", scenario);
        ASSERT_TRUE(metrics.has_value()) << metrics.status().to_string();
        const std::string path = "obs_test_samples_" + tag + ".jsonl";
        const std::string contents = read_file(path);
        std::remove(path.c_str());
        ASSERT_FALSE(contents.empty());
        EXPECT_GT(std::count(contents.begin(), contents.end(), '\n'), 1);
        if (run == 0) {
            first = contents;
        } else {
            EXPECT_EQ(first, contents) << "sampler time series not reproducible";
        }
    }
}

TEST(ScenarioObsTest, AttachingTheRecorderNeverChangesTheAnswers) {
    // The passivity contract: every pre-existing metric field is
    // byte-identical between an obs-off and a fully-instrumented run —
    // attaching the flight recorder must not perturb the simulation.
    workload::ScenarioConfig scenario;
    scenario.seed = 4242;

    workload::RunnerConfig off_config;
    off_config.packets = 2000;
    workload::ScenarioRunner off_runner(off_config);
    const auto off = off_runner.run("churn", scenario);
    ASSERT_TRUE(off.has_value());

    workload::ScenarioRunner on_runner(
        obs_runner_config(2000, "identity", /*trace=*/true, /*sample_interval=*/512));
    const auto on = on_runner.run("churn", scenario);
    ASSERT_TRUE(on.has_value());
    std::remove("obs_test_trace_identity.json");
    std::remove("obs_test_samples_identity.jsonl");

    for (const workload::MetricField& field : workload::metric_schema()) {
        const std::string name = field.name;
        if (name.rfind("lat_", 0) == 0) continue;  // obs-only fields.
        EXPECT_EQ(workload::metric_json(field, off.value()),
                  workload::metric_json(field, on.value()))
            << "metric '" << name << "' changed when the recorder was attached";
    }
}

}  // namespace
}  // namespace flowcam::obs
