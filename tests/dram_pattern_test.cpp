// Pattern-simulator tests: the Figure 3 curve properties (monotonic,
// saturating, turnaround-dominated at N=1) and the bank-interleaving
// speedup that motivates the DLU's Bank Selector.
#include <gtest/gtest.h>

#include "dram/pattern_sim.hpp"

namespace flowcam::dram {
namespace {

TEST(Fig3Pattern, UtilizationMonotonicInBurstCount) {
    const DramTimings t = ddr3_1066e();
    double previous = 0.0;
    for (u32 n : {1u, 2u, 4u, 8u, 16u, 35u}) {
        const PatternResult result = run_same_row_rw_pattern(t, n, 64);
        EXPECT_GT(result.dq_utilization, previous) << "N=" << n;
        previous = result.dq_utilization;
    }
}

TEST(Fig3Pattern, SingleBurstPaysFullTurnaround) {
    const DramTimings t = ddr3_1066e();
    // Steady state analytical value: per RD+WR pair, 2 bursts of data
    // (8 cycles) plus the RD->WR and WR->RD bubbles.
    const PatternResult result = run_same_row_rw_pattern(t, 1, 256);
    // JEDEC-exact bubbles: RD->WR gap leaves 2 idle DQ cycles; WR->RD
    // leaves 11. Utilization = 8 / (8 + 13) = 38.1 %.
    EXPECT_NEAR(result.dq_utilization, 8.0 / 21.0, 0.01);
}

TEST(Fig3Pattern, LargeBurstsApproachSaturation) {
    const DramTimings t = ddr3_1066e();
    const PatternResult result = run_same_row_rw_pattern(t, 35, 64);
    EXPECT_GT(result.dq_utilization, 0.90);
}

TEST(Fig3Pattern, CalibratedOverheadReproducesPaperFloor) {
    // With the vendor-controller turnaround penalty the paper's absolute
    // numbers emerge: ~20 % at N=1, ~90 % at N=35.
    const DramTimings t = ddr3_1066e();
    const PatternResult n1 = run_same_row_rw_pattern(t, 1, 256, 10);
    const PatternResult n35 = run_same_row_rw_pattern(t, 35, 64, 10);
    EXPECT_NEAR(n1.dq_utilization, 0.20, 0.03);
    EXPECT_NEAR(n35.dq_utilization, 0.90, 0.03);
}

TEST(Fig3Pattern, BandwidthScalesWithUtilization) {
    const DramTimings t = ddr3_1066e();
    const PatternResult result = run_same_row_rw_pattern(t, 8, 64);
    // Peak for 32-bit DDR3-1066: 1066.67 MT/s * 4 B = ~4266 MB/s.
    const double peak = t.peak_bandwidth_bytes(4.0) / 1e6;
    EXPECT_NEAR(result.bandwidth_mbytes_per_s, result.dq_utilization * peak, peak * 0.02);
}

TEST(Fig3Pattern, FasterGradeSameShape) {
    const DramTimings t = ddr3_1600();
    const PatternResult n1 = run_same_row_rw_pattern(t, 1, 64);
    const PatternResult n35 = run_same_row_rw_pattern(t, 35, 64);
    EXPECT_LT(n1.dq_utilization, n35.dq_utilization);
    EXPECT_GT(n35.dq_utilization, 0.85);
}

TEST(RandomRowPattern, SingleBankIsTrcBound) {
    const DramTimings t = ddr3_1066e();
    const PatternResult result = run_random_row_single_bank(t, 200);
    // Each access costs ~tRC cycles and moves one 4-cycle burst.
    const double expected = 4.0 / static_cast<double>(t.trc);
    EXPECT_NEAR(result.dq_utilization, expected, expected * 0.25);
}

TEST(RandomRowPattern, BankInterleavingRecoversBandwidth) {
    const DramTimings t = ddr3_1066e();
    const PatternResult one = run_random_row_banked(t, 1, 400);
    const PatternResult eight = run_random_row_banked(t, 8, 400);
    // The Bank Selector's rationale: 8-way interleaving should lift DQ
    // utilization several-fold over a single bank.
    EXPECT_GT(eight.dq_utilization, 3.0 * one.dq_utilization);
}

TEST(RandomRowPattern, UtilizationSaturatesWithEnoughBanks) {
    const DramTimings t = ddr3_1066e();
    const PatternResult eight = run_random_row_banked(t, 8, 400);
    // With tRC = 27 and 4 data cycles per access, 8 banks covers the row
    // cycle (8*4 > 27): expect > 70 % utilization (tRRD/tFAW limit the rest).
    EXPECT_GT(eight.dq_utilization, 0.7);
}

TEST(RandomRowPattern, DeterministicForFixedSeed) {
    const DramTimings t = ddr3_1066e();
    const PatternResult a = run_random_row_banked(t, 4, 100, 7);
    const PatternResult b = run_random_row_banked(t, 4, 100, 7);
    EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
    EXPECT_DOUBLE_EQ(a.dq_utilization, b.dq_utilization);
}

}  // namespace
}  // namespace flowcam::dram
