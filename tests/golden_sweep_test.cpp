// Default-config regression gate: the column-for-column CSV of the
// 8-scenario sweep (the six builtin scenarios plus the two composed specs
// bench_scenarios runs) under the default ConfigTree must stay
// byte-identical to the golden fixture captured from the pre-policy-zoo
// seed. The overload policies, reservation path and fault harness are all
// opt-in; this test is what enforces "opt-in" — any default-path behavior
// change (an extra RNG draw, a reordered queue, a changed counter) shows up
// here as a diff.
//
// New metric columns may be appended to the schema (the comparison is by
// column NAME over the golden header, not by position), but every column
// the golden file knows about must render byte-for-byte identically.
//
// Regenerate (only when a default-path change is intended and understood)
// by running scenario_runner with one --scenario flag per spec in
// kGoldenSpecs, serial, default config:
//   ./build/scenario_runner --scenario=baseline --scenario=churn ... \
//       --csv=tests/data/golden_default_sweep.csv
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "workload/experiment.hpp"

namespace flowcam::workload {
namespace {

/// The two composed-spec entries from bench_scenarios' sweep ride along
/// after the registry order, so the fixture covers the full 8-scenario
/// default sweep.
std::vector<std::string> golden_specs() {
    std::vector<std::string> specs = builtin_registry().names();
    specs.emplace_back("flash_crowd+syn_flood@onset=0.3,ramp=0.0:0.4");
    specs.emplace_back("churn@attack=0.25+syn_flood@onset=0.5,offset=0.8,attack=0.4");
    return specs;
}

/// RFC-style CSV split: composed-spec cells carry commas and arrive quoted
/// (metrics.cpp quotes a cell only when it needs it, doubling inner quotes).
std::vector<std::string> split_row(const std::string& line) {
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
                cell += '"';
                ++i;
            } else if (c == '"') {
                quoted = false;
            } else {
                cell += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else {
            cell += c;
        }
    }
    cells.push_back(std::move(cell));
    return cells;
}

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::string line;
    std::stringstream stream(text);
    while (std::getline(stream, line)) {
        if (!line.empty()) lines.push_back(line);
    }
    return lines;
}

TEST(GoldenSweepTest, DefaultConfigCatalogueIsByteIdenticalToSeed) {
    const std::string path =
        std::string(FLOWCAM_SOURCE_DIR) + "/tests/data/golden_default_sweep.csv";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "golden fixture missing: " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::vector<std::string> golden = split_lines(buffer.str());
    ASSERT_GE(golden.size(), 2u) << "golden fixture empty";

    // The 8-spec default sweep, default ConfigTree, serial.
    ExperimentSpec spec;
    spec.scenarios = golden_specs();
    auto experiment = Experiment::plan(std::move(spec));
    ASSERT_TRUE(experiment) << experiment.status().to_string();
    const std::vector<CellResult> results = experiment.value().run(1);
    const std::vector<std::string> fresh = split_lines(experiment.value().csv(results));
    ASSERT_EQ(fresh.size(), golden.size()) << "row count changed";

    // Map every golden column to its position in the fresh header; columns
    // may have been appended since the fixture was captured, never removed
    // or renamed.
    const std::vector<std::string> golden_header = split_row(golden[0]);
    const std::vector<std::string> fresh_header = split_row(fresh[0]);
    std::vector<std::size_t> column_map;
    for (const std::string& name : golden_header) {
        std::size_t found = fresh_header.size();
        for (std::size_t i = 0; i < fresh_header.size(); ++i) {
            if (fresh_header[i] == name) {
                found = i;
                break;
            }
        }
        ASSERT_LT(found, fresh_header.size()) << "golden column '" << name << "' disappeared";
        column_map.push_back(found);
    }

    for (std::size_t row = 1; row < golden.size(); ++row) {
        const std::vector<std::string> want = split_row(golden[row]);
        const std::vector<std::string> have = split_row(fresh[row]);
        ASSERT_EQ(want.size(), golden_header.size()) << "malformed golden row " << row;
        for (std::size_t column = 0; column < want.size(); ++column) {
            EXPECT_EQ(have[column_map[column]], want[column])
                << "default-path drift in column '" << golden_header[column] << "', row "
                << row << " (" << want[2] << ")";
        }
    }
}

}  // namespace
}  // namespace flowcam::workload
