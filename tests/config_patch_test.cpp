// ConfigPatch registry tests: parse/apply/print round-trips for every
// registered key, typed malformed-value errors, unknown-key nearest-match
// suggestions, and the --list-keys rendering.
#include <gtest/gtest.h>

#include <string>

#include "workload/config_patch.hpp"

namespace flowcam::workload {
namespace {

TEST(ConfigPatchTest, EveryKeyRoundTripsThroughParseApplyPrint) {
    const ConfigPatch& patch = ConfigPatch::registry();
    const std::vector<std::string> keys = patch.keys();
    ASSERT_GE(keys.size(), 30u);  // the registry covers the whole tree.
    const ConfigTree defaults;
    for (const std::string& key : keys) {
        const std::string printed = patch.print(defaults, key);
        ASSERT_FALSE(printed.empty()) << key;
        ConfigTree tree;
        ASSERT_TRUE(patch.apply(tree, key, printed).is_ok()) << key << "=" << printed;
        // Applying a field's own printed value is the identity.
        EXPECT_EQ(patch.print(tree, key), printed) << key;
    }
}

TEST(ConfigPatchTest, AppliedValuesLandInTheTree) {
    const ConfigPatch& patch = ConfigPatch::registry();
    ConfigTree tree;
    ASSERT_TRUE(patch.apply(tree, "lut.cam_capacity", "4096").is_ok());
    EXPECT_EQ(tree.runner.analyzer.lut.cam_capacity, 4096u);
    ASSERT_TRUE(patch.apply(tree, "lut.balance", "weighted-hash").is_ok());
    EXPECT_EQ(tree.runner.analyzer.lut.balance, core::BalancePolicy::kWeightedHash);
    ASSERT_TRUE(patch.apply(tree, "lut.weight_a", "0.7").is_ok());
    EXPECT_DOUBLE_EQ(tree.runner.analyzer.lut.weight_a, 0.7);
    ASSERT_TRUE(patch.apply(tree, "lut.hash", "murmur3").is_ok());
    EXPECT_EQ(tree.runner.analyzer.lut.hash_kind, hash::HashKind::kMurmur3);
    ASSERT_TRUE(patch.apply(tree, "runner.cycles_per_packet", "3").is_ok());
    EXPECT_EQ(tree.runner.cycles_per_packet, 3u);
    ASSERT_TRUE(patch.apply(tree, "runner.time_scale", "1e6").is_ok());
    EXPECT_DOUBLE_EQ(tree.runner.time_scale, 1e6);
    ASSERT_TRUE(patch.apply(tree, "scenario.attack", "0.25").is_ok());
    EXPECT_DOUBLE_EQ(tree.scenario.attack_fraction, 0.25);
    ASSERT_TRUE(patch.apply(tree, "scenario.mean_gap_ns", "42.5").is_ok());
    EXPECT_DOUBLE_EQ(tree.scenario.background.mean_gap_ns, 42.5);
}

TEST(ConfigPatchTest, UnknownKeySuggestsTheNearestMatch) {
    const ConfigPatch& patch = ConfigPatch::registry();
    ConfigTree tree;
    const Status status = patch.apply(tree, "lut.cam_capcity", "4096");  // typo.
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kNotFound);
    EXPECT_NE(status.message().find("did you mean 'lut.cam_capacity'"), std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("--list-keys"), std::string::npos);
    // Nothing close: no wild suggestion, but still a typed unknown-key error.
    const Status wild = patch.apply(tree, "utterly.unrelated_nonsense_key", "1");
    ASSERT_FALSE(wild.is_ok());
    EXPECT_EQ(wild.message().find("did you mean"), std::string::npos) << wild.message();
}

TEST(ConfigPatchTest, MalformedValuesNameTheExpectedForm) {
    const ConfigPatch& patch = ConfigPatch::registry();
    ConfigTree tree;
    const ConfigTree untouched;
    const struct {
        const char* key;
        const char* value;
        const char* expected_fragment;
    } cases[] = {
        {"lut.cam_capacity", "many", "expected u64"},
        {"lut.cam_capacity", "-1", "expected u64"},        // no sign wrap-around.
        {"lut.cam_capacity", "12.5", "expected u64"},      // no silent truncation.
        {"lut.ways", "0", "expected u64 in [1,"},          // bound enforced.
        {"lut.weight_a", "1.5", "fraction in [0,1]"},
        {"lut.weight_a", "nan", "fraction in [0,1]"},      // NaN never sneaks in.
        {"lut.balance", "round-robin", "enum(hash-bit|"},
        {"runner.time_scale", "0", "positive number"},
        {"runner.time_scale", "-2", "positive number"},
        {"scenario.attack", "2", "fraction in [0,1]"},
    };
    for (const auto& test : cases) {
        const Status status = patch.apply(tree, test.key, test.value);
        ASSERT_FALSE(status.is_ok()) << test.key << "=" << test.value;
        EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << test.key;
        EXPECT_NE(status.message().find(test.expected_fragment), std::string::npos)
            << test.key << "=" << test.value << " -> " << status.message();
        EXPECT_NE(status.message().find(test.value), std::string::npos) << test.key;
    }
    // Failed applies never half-patch the tree.
    EXPECT_EQ(patch.print(tree, "lut.cam_capacity"), patch.print(untouched, "lut.cam_capacity"));
    EXPECT_EQ(patch.print(tree, "lut.weight_a"), patch.print(untouched, "lut.weight_a"));
}

TEST(ConfigPatchTest, AssignmentGrammarErrors) {
    const ConfigPatch& patch = ConfigPatch::registry();
    ConfigTree tree;
    EXPECT_FALSE(patch.apply_assignment(tree, "lut.cam_capacity").is_ok());   // no '='.
    EXPECT_FALSE(patch.apply_assignment(tree, "=4096").is_ok());              // no key.
    EXPECT_TRUE(patch.apply_assignment(tree, "lut.cam_capacity=4096").is_ok());
    EXPECT_EQ(tree.runner.analyzer.lut.cam_capacity, 4096u);
}

TEST(ConfigPatchTest, ListKeysShowsEveryKeyWithDefaultAndDoc) {
    const ConfigPatch& patch = ConfigPatch::registry();
    const std::string listing = patch.list_keys();
    for (const std::string& key : patch.keys()) {
        EXPECT_NE(listing.find(key), std::string::npos) << key;
    }
    EXPECT_NE(listing.find("collision CAM depth"), std::string::npos);
    EXPECT_NE(listing.find("hash-bit"), std::string::npos);  // enum types spelled out.
}

}  // namespace
}  // namespace flowcam::workload
