// NetFlow v5 exporter tests: wire-format roundtrip, datagram batching at 30
// records, sequence numbering, and IPv6 skip behaviour.
#include <gtest/gtest.h>

#include "analyzer/netflow_export.hpp"
#include "net/ipv6.hpp"
#include "net/trace.hpp"

namespace flowcam::analyzer {
namespace {

core::FlowRecord flow_of(u64 index, u64 packets = 10, u64 bytes = 1500) {
    core::FlowRecord record;
    record.fid = index + 1;
    record.key = net::NTuple::from_five_tuple(net::synth_tuple(index, 8));
    record.packets = packets;
    record.bytes = bytes;
    record.first_ns = 1'000'000'000;  // 1 s
    record.last_ns = 2'500'000'000;   // 2.5 s
    return record;
}

TEST(NetflowV5, SerializeParseRoundtrip) {
    NetflowV5Exporter exporter;
    for (u64 i = 0; i < 3; ++i) (void)exporter.add(flow_of(i));
    const auto bytes = exporter.flush();
    ASSERT_EQ(bytes.size(), kNetflowV5HeaderBytes + 3 * kNetflowV5RecordBytes);

    const auto parsed = parse_netflow_v5(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.version, 5u);
    EXPECT_EQ(parsed->header.count, 3u);
    ASSERT_EQ(parsed->records.size(), 3u);

    const auto tuple0 = net::synth_tuple(0, 8);
    EXPECT_EQ(parsed->records[0].src_addr, tuple0.src_ip);
    EXPECT_EQ(parsed->records[0].dst_addr, tuple0.dst_ip);
    EXPECT_EQ(parsed->records[0].src_port, tuple0.src_port);
    EXPECT_EQ(parsed->records[0].dst_port, tuple0.dst_port);
    EXPECT_EQ(parsed->records[0].protocol, tuple0.protocol);
    EXPECT_EQ(parsed->records[0].packets, 10u);
    EXPECT_EQ(parsed->records[0].bytes, 1500u);
    EXPECT_EQ(parsed->records[0].first_ms, 1000u);
    EXPECT_EQ(parsed->records[0].last_ms, 2500u);
}

TEST(NetflowV5, BatchesAtThirtyRecords) {
    NetflowV5Exporter exporter;
    std::size_t datagrams = 0;
    for (u64 i = 0; i < 65; ++i) {
        for (const auto& datagram : exporter.add(flow_of(i))) {
            ++datagrams;
            const auto parsed = parse_netflow_v5(datagram);
            ASSERT_TRUE(parsed.has_value());
            EXPECT_EQ(parsed->header.count, kNetflowV5MaxRecords);
        }
    }
    EXPECT_EQ(datagrams, 2u);  // 60 flows in two full datagrams
    EXPECT_EQ(exporter.pending(), 5u);
    const auto tail = exporter.flush();
    const auto parsed = parse_netflow_v5(tail);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.count, 5u);
}

TEST(NetflowV5, FlowSequenceAccumulates) {
    NetflowV5Exporter exporter;
    for (u64 i = 0; i < 3; ++i) (void)exporter.add(flow_of(i));
    (void)exporter.flush();
    for (u64 i = 0; i < 2; ++i) (void)exporter.add(flow_of(10 + i));
    const auto second = exporter.flush();
    const auto parsed = parse_netflow_v5(second);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.flow_sequence, 3u);  // flows before this datagram
    EXPECT_EQ(exporter.flows_exported(), 5u);
}

TEST(NetflowV5, SkipsIpv6Flows) {
    NetflowV5Exporter exporter;
    core::FlowRecord v6;
    v6.fid = 1;
    v6.key = net::synth_tuple_v6(1, 1).to_ntuple();
    v6.packets = 5;
    (void)exporter.add(v6);
    EXPECT_EQ(exporter.skipped_non_v4(), 1u);
    EXPECT_EQ(exporter.pending(), 0u);
}

TEST(NetflowV5, ParseRejectsMalformed) {
    EXPECT_FALSE(parse_netflow_v5({}).has_value());
    std::vector<u8> short_buffer(10, 0);
    EXPECT_FALSE(parse_netflow_v5(short_buffer).has_value());

    NetflowV5Exporter exporter;
    (void)exporter.add(flow_of(1));
    auto bytes = exporter.flush();
    bytes[0] = 0;
    bytes[1] = 9;  // version 9
    EXPECT_FALSE(parse_netflow_v5(bytes).has_value());
}

TEST(NetflowV5, CountMismatchRejected) {
    NetflowV5Exporter exporter;
    (void)exporter.add(flow_of(1));
    auto bytes = exporter.flush();
    bytes[3] = 7;  // claims 7 records, buffer has 1
    EXPECT_FALSE(parse_netflow_v5(bytes).has_value());
}

TEST(NetflowV5, CounterSaturationAt32Bits) {
    core::FlowRecord monster = flow_of(1, u64{1} << 40, u64{1} << 45);
    NetflowV5Exporter exporter;
    (void)exporter.add(monster);
    const auto parsed = parse_netflow_v5(exporter.flush());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->records[0].packets, 0xFFFFFFFFu);
    EXPECT_EQ(parsed->records[0].bytes, 0xFFFFFFFFu);
}

}  // namespace
}  // namespace flowcam::analyzer
