// Lookup-table baseline tests, parameterized across every implementation
// behind the shared table::LookupTable interface (including the paper's
// Hash-CAM scheme), plus implementation-specific behaviours: cuckoo kick
// chains, Bloom-steered CAM diversion, and Kirsch one-move relocation.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/hash_cam_table.hpp"
#include "net/trace.hpp"
#include "table/bloom_cam.hpp"
#include "table/cuckoo.hpp"
#include "table/kirsch_one_move.hpp"
#include "table/lookup_table.hpp"
#include "table/single_hash.hpp"
#include "table/two_choice.hpp"

namespace flowcam::table {
namespace {

std::vector<u8> key_of(u64 value) {
    const auto tuple = net::synth_tuple(value, 777);
    const auto bytes = tuple.key_bytes();
    return {bytes.begin(), bytes.end()};
}

using Factory = std::function<std::unique_ptr<LookupTable>()>;

struct TableCase {
    std::string name;
    Factory make;
    double safe_load;   ///< bulk-insert load factor for the tests below.
    /// Insert-failure budget at safe_load: 0 for schemes with overflow
    /// storage (CAM / kick chains); small but non-zero for plain bucket
    /// tables, whose Poisson bucket-overflow tail cannot be eliminated.
    double failure_budget = 0.0;
};

std::vector<TableCase> all_tables() {
    std::vector<TableCase> cases;
    cases.push_back({"single_hash",
                     [] {
                         BucketTableConfig config;
                         config.buckets = 2048;
                         config.ways = 4;
                         return std::make_unique<SingleHashTable>(config);
                     },
                     0.35,
                     0.03});
    cases.push_back({"two_choice",
                     [] {
                         BucketTableConfig config;
                         config.buckets = 1024;
                         config.ways = 4;
                         return std::make_unique<TwoChoiceTable>(config);
                     },
                     0.7,
                     0.005});
    cases.push_back({"cuckoo",
                     [] {
                         BucketTableConfig config;
                         config.buckets = 1024;
                         config.ways = 4;
                         return std::make_unique<CuckooTable>(config);
                     },
                     0.85});
    cases.push_back({"bloom_cam",
                     [] {
                         BloomCamConfig config;
                         config.table.buckets = 2048;
                         config.table.ways = 4;
                         config.cam_capacity = 512;
                         return std::make_unique<BloomCamTable>(config);
                     },
                     0.5});
    cases.push_back({"kirsch",
                     [] {
                         KirschConfig config;
                         config.buckets_per_level = 2048;
                         config.levels = 4;
                         config.cam_capacity = 64;
                         return std::make_unique<KirschOneMoveTable>(config);
                     },
                     0.5});
    cases.push_back({"hash_cam",
                     [] {
                         core::FlowLutConfig config;
                         config.buckets_per_mem = 1024;
                         config.ways = 4;
                         config.cam_capacity = 256;
                         return std::make_unique<core::HashCamTable>(config);
                     },
                     // 0.8 of total capacity = ~83 % bucket load; the CAM
                     // absorbs the two-choice overflow tail with margin.
                     // (Still the highest safe load of all the schemes.)
                     0.8});
    return cases;
}

class LookupTableTest : public ::testing::TestWithParam<TableCase> {};

INSTANTIATE_TEST_SUITE_P(AllTables, LookupTableTest, ::testing::ValuesIn(all_tables()),
                         [](const auto& info) { return info.param.name; });

TEST_P(LookupTableTest, EmptyLookupMisses) {
    auto table = GetParam().make();
    EXPECT_FALSE(table->lookup(key_of(1)).has_value());
    EXPECT_EQ(table->size(), 0u);
}

TEST_P(LookupTableTest, InsertLookupRoundtrip) {
    auto table = GetParam().make();
    ASSERT_TRUE(table->insert(key_of(1), 101).is_ok());
    const auto hit = table->lookup(key_of(1));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 101u);
    EXPECT_EQ(table->size(), 1u);
}

TEST_P(LookupTableTest, DuplicateInsertRejected) {
    auto table = GetParam().make();
    ASSERT_TRUE(table->insert(key_of(1), 101).is_ok());
    EXPECT_EQ(table->insert(key_of(1), 999).code(), StatusCode::kAlreadyExists);
    EXPECT_EQ(*table->lookup(key_of(1)), 101u);
    EXPECT_EQ(table->size(), 1u);
}

TEST_P(LookupTableTest, EraseRemoves) {
    auto table = GetParam().make();
    ASSERT_TRUE(table->insert(key_of(1), 101).is_ok());
    ASSERT_TRUE(table->erase(key_of(1)).is_ok());
    EXPECT_FALSE(table->lookup(key_of(1)).has_value());
    EXPECT_EQ(table->size(), 0u);
    EXPECT_EQ(table->erase(key_of(1)).code(), StatusCode::kNotFound);
}

TEST_P(LookupTableTest, BulkInsertAtSafeLoad) {
    auto table = GetParam().make();
    const auto count = static_cast<u64>(GetParam().safe_load *
                                        static_cast<double>(table->capacity()));
    std::set<u64> inserted;
    for (u64 i = 0; i < count; ++i) {
        if (table->insert(key_of(i), i).is_ok()) inserted.insert(i);
    }
    const auto failures = count - inserted.size();
    EXPECT_LE(static_cast<double>(failures),
              GetParam().failure_budget * static_cast<double>(count) + 0.5)
        << GetParam().name;
    EXPECT_EQ(table->size(), inserted.size());
    // Every accepted key must be retrievable; every rejected key absent.
    for (u64 i = 0; i < count; ++i) {
        const auto hit = table->lookup(key_of(i));
        if (inserted.contains(i)) {
            ASSERT_TRUE(hit.has_value()) << GetParam().name << " key " << i;
            EXPECT_EQ(*hit, i);
        } else {
            EXPECT_FALSE(hit.has_value()) << GetParam().name << " key " << i;
        }
    }
}

TEST_P(LookupTableTest, NegativeLookupsStayNegative) {
    auto table = GetParam().make();
    for (u64 i = 0; i < 500; ++i) ASSERT_TRUE(table->insert(key_of(i), i).is_ok());
    for (u64 i = 1'000'000; i < 1'001'000; ++i) {
        EXPECT_FALSE(table->lookup(key_of(i)).has_value());
    }
}

TEST_P(LookupTableTest, ChurnPreservesConsistency) {
    auto table = GetParam().make();
    Xoshiro256 rng(13);
    std::set<u64> alive;
    const u64 budget = static_cast<u64>(GetParam().safe_load *
                                        static_cast<double>(table->capacity())) /
                       2;
    for (int round = 0; round < 4000; ++round) {
        if (!alive.empty() && rng.chance(0.45)) {
            const u64 victim = *alive.begin();
            ASSERT_TRUE(table->erase(key_of(victim)).is_ok());
            alive.erase(alive.begin());
        } else if (alive.size() < budget) {
            u64 candidate = rng.bounded(100000);
            if (alive.contains(candidate)) continue;
            const Status status = table->insert(key_of(candidate), candidate);
            if (status.is_ok()) alive.insert(candidate);
        }
    }
    EXPECT_EQ(table->size(), alive.size()) << GetParam().name;
    for (const u64 value : alive) {
        const auto hit = table->lookup(key_of(value));
        ASSERT_TRUE(hit.has_value()) << GetParam().name << " lost " << value;
        EXPECT_EQ(*hit, value);
    }
}

TEST_P(LookupTableTest, StatsAreAccounted) {
    auto table = GetParam().make();
    (void)table->insert(key_of(1), 1);
    (void)table->lookup(key_of(1));
    (void)table->lookup(key_of(2));
    EXPECT_EQ(table->stats().inserts, 1u);
    EXPECT_EQ(table->stats().lookups, 2u);
    EXPECT_EQ(table->stats().hits, 1u);
    EXPECT_GT(table->stats().bucket_reads + table->stats().cam_searches, 0u);
    table->reset_stats();
    EXPECT_EQ(table->stats().lookups, 0u);
}

TEST(SingleHash, OverflowFailsBeyondBucket) {
    // Degenerate single-bucket table: the (ways+1)-th colliding insert fails.
    BucketTableConfig config;
    config.buckets = 1;
    config.ways = 4;
    SingleHashTable table(config);
    u64 inserted = 0;
    for (u64 i = 0; i < 8; ++i) inserted += table.insert(key_of(i), i).is_ok();
    EXPECT_EQ(inserted, 4u);
    EXPECT_EQ(table.stats().insert_failures, 4u);
}

TEST(TwoChoice, BalancesLoadBetterThanSingle) {
    BucketTableConfig config;
    config.buckets = 512;
    config.ways = 4;
    SingleHashTable single(config);
    TwoChoiceTable two(config);  // capacity 2x: use half the keys per slot

    u64 single_failures = 0;
    u64 two_failures = 0;
    // Fill both to ~66 % of the *single* table's capacity... two-choice has
    // twice the room, so compare failure rates at the same absolute count
    // as a sanity check of the balanced-allocations advantage per bucket.
    const u64 keys = 512 * 4 * 2 / 3;
    for (u64 i = 0; i < keys; ++i) {
        single_failures += !single.insert(key_of(i), i).is_ok();
        two_failures += !two.insert(key_of(i), i).is_ok();
    }
    EXPECT_LT(two_failures, single_failures);
}

TEST(Cuckoo, KickChainsRecordedAndBounded) {
    BucketTableConfig config;
    config.buckets = 256;
    config.ways = 2;
    CuckooTable table(config, 128);
    // Fill to 80 % (random-walk cuckoo with d=2, K=2 has a ~0.89 load
    // threshold; a 128-step walk succeeds w.h.p. below it).
    const u64 keys = static_cast<u64>(0.8 * 256 * 2 * 2);
    for (u64 i = 0; i < keys; ++i) ASSERT_TRUE(table.insert(key_of(i), i).is_ok());
    EXPECT_GT(table.stats().relocations, 0u);
    EXPECT_EQ(table.lost_entries(), 0u);
    // All keys still reachable after displacement chains.
    for (u64 i = 0; i < keys; ++i) {
        ASSERT_TRUE(table.lookup(key_of(i)).has_value()) << i;
    }
}

TEST(Cuckoo, LookupCostIsExactlyTwoBuckets) {
    BucketTableConfig config;
    config.buckets = 256;
    config.ways = 4;
    CuckooTable table(config);
    for (u64 i = 0; i < 100; ++i) ASSERT_TRUE(table.insert(key_of(i), i).is_ok());
    table.reset_stats();
    for (u64 i = 0; i < 100; ++i) (void)table.lookup(key_of(1'000'000 + i));
    // A miss probes both buckets — never more (the O(1) guarantee [7]).
    EXPECT_EQ(table.stats().bucket_reads, 200u);
}

TEST(BloomCam, DivertedKeysFoundViaCam) {
    BloomCamConfig config;
    config.table.buckets = 1;  // force collisions into the CAM
    config.table.ways = 2;
    config.cam_capacity = 32;
    BloomCamTable table(config);
    for (u64 i = 0; i < 10; ++i) ASSERT_TRUE(table.insert(key_of(i), i).is_ok());
    EXPECT_EQ(table.overflow_cam().size(), 8u);
    for (u64 i = 0; i < 10; ++i) EXPECT_EQ(*table.lookup(key_of(i)), i);
}

TEST(BloomCam, CamFullFailsInsert) {
    BloomCamConfig config;
    config.table.buckets = 1;
    config.table.ways = 1;
    config.cam_capacity = 4;
    BloomCamTable table(config);
    u64 ok = 0;
    for (u64 i = 0; i < 10; ++i) ok += table.insert(key_of(i), i).is_ok();
    EXPECT_EQ(ok, 5u);  // 1 bucket slot + 4 CAM slots
}

TEST(Kirsch, OneMoveRelocatesWhenLevelsFull) {
    KirschConfig config;
    config.buckets_per_level = 64;
    config.levels = 2;
    config.cam_capacity = 64;
    KirschOneMoveTable table(config);
    const u64 keys = 96;  // 75 % of the 128 level slots
    for (u64 i = 0; i < keys; ++i) ASSERT_TRUE(table.insert(key_of(i), i).is_ok());
    EXPECT_GT(table.moves_performed(), 0u);
    for (u64 i = 0; i < keys; ++i) EXPECT_TRUE(table.lookup(key_of(i)).has_value()) << i;
}

TEST(Kirsch, OverflowGoesToCam) {
    KirschConfig config;
    config.buckets_per_level = 8;
    config.levels = 2;
    config.cam_capacity = 64;
    KirschOneMoveTable table(config);
    for (u64 i = 0; i < 30; ++i) ASSERT_TRUE(table.insert(key_of(i), i).is_ok());
    EXPECT_GT(table.overflow_cam().size(), 0u);
}

}  // namespace
}  // namespace flowcam::table
