// Admission / eviction / reservation policies on the timed Flow LUT — the
// graceful-degradation machinery. Each policy is exercised through the same
// offer -> step -> pop_completion loop as the core tests, and every test
// finishes with the invariant auditor: conservation must hold no matter
// which policy shed the load.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/flow_lut.hpp"
#include "net/trace.hpp"

namespace flowcam::core {
namespace {

net::NTuple key_of(u64 value, u64 seed = 3) {
    return net::NTuple::from_five_tuple(net::synth_tuple(value, seed));
}

FlowLutConfig small_config() {
    FlowLutConfig config;
    config.buckets_per_mem = 1 << 10;
    config.ways = 4;
    config.cam_capacity = 64;
    return config;
}

/// Tiny table: capacity 2 buckets x 2 ways x 2 mems + 2 CAM = 10 entries,
/// so a handful of unique flows is already overload.
FlowLutConfig tiny_config() {
    FlowLutConfig config;
    config.buckets_per_mem = 2;
    config.ways = 2;
    config.cam_capacity = 2;
    return config;
}

/// Offer one key and run to completion (serial: no interlock in play).
Completion offer_one(FlowLut& lut, const net::NTuple& key, u64 ts) {
    while (!lut.offer(key, ts, 64)) lut.step();
    EXPECT_TRUE(lut.drain());
    const auto completion = lut.pop_completion();
    EXPECT_TRUE(completion.has_value());
    return completion.value_or(Completion{});
}

std::string audit_report(const FlowLut& lut, bool final_pass = true) {
    std::string detail;
    if (lut.audit(final_pass, &detail) == 0) return "";
    return detail.empty() ? "violations without detail" : detail;
}

TEST(AdmissionPolicyTest, RejectFullTurnsNewFlowsAwayAbovePressure) {
    FlowLutConfig config = tiny_config();
    config.admission = AdmissionPolicy::kRejectFull;
    config.admission_pressure = 0.5;  // engage at 5 of 10 entries.
    FlowLut lut(config);

    u64 ts = 1;
    u64 admitted = 0;
    for (u64 flow = 0; flow < 20; ++flow) {
        const Completion completion = offer_one(lut, key_of(flow), ts += 17);
        if (completion.fid != kInvalidFlowId) ++admitted;
    }
    // The first flows fit below the pressure threshold; everything after is
    // rejected outright — the table never grows past the threshold.
    EXPECT_GT(admitted, 0u);
    EXPECT_LT(admitted, 20u);
    EXPECT_GT(lut.stats().admission_rejects, 0u);
    EXPECT_LE(lut.table().size(), 5u);
    // Rejects are drops (invalid-FID retires), specifically the policy's.
    EXPECT_GE(lut.stats().drops, lut.stats().admission_rejects);
    // Existing flows are untouched: a packet of an admitted flow still hits.
    const Completion repeat = offer_one(lut, key_of(0), ts += 17);
    EXPECT_NE(repeat.fid, kInvalidFlowId);
    EXPECT_FALSE(repeat.is_new_flow);
    EXPECT_EQ(audit_report(lut), "");
}

TEST(AdmissionPolicyTest, ProbabilisticAdmitsTheSecondAttempt) {
    // admission_p = 0: a never-seen key always loses the coin toss, but the
    // Bloom front-end remembers it — the flow's next packet is a seen key
    // and is admitted unconditionally. One-packet flood flows never come
    // back; real flows do. That asymmetry is the whole policy.
    FlowLutConfig config = small_config();
    config.admission = AdmissionPolicy::kProbabilistic;
    config.admission_pressure = 0.0;  // always "under pressure".
    config.admission_p = 0.0;
    FlowLut lut(config);

    const Completion first = offer_one(lut, key_of(42), 100);
    EXPECT_EQ(first.fid, kInvalidFlowId);
    EXPECT_EQ(lut.stats().admission_rejects, 1u);

    const Completion second = offer_one(lut, key_of(42), 200);
    EXPECT_NE(second.fid, kInvalidFlowId);
    EXPECT_TRUE(second.is_new_flow);
    EXPECT_EQ(lut.table().size(), 1u);
    EXPECT_EQ(audit_report(lut), "");
}

TEST(AdmissionPolicyTest, ProbabilisticWithFullChanceAdmitsEveryone) {
    FlowLutConfig config = small_config();
    config.admission = AdmissionPolicy::kProbabilistic;
    config.admission_pressure = 0.0;
    config.admission_p = 1.0;
    FlowLut lut(config);
    u64 ts = 1;
    for (u64 flow = 0; flow < 32; ++flow) {
        const Completion completion = offer_one(lut, key_of(flow), ts += 17);
        EXPECT_NE(completion.fid, kInvalidFlowId) << "flow " << flow;
    }
    EXPECT_EQ(lut.stats().admission_rejects, 0u);
    EXPECT_EQ(audit_report(lut), "");
}

TEST(EvictionPolicyTest, LruEvictsIdleVictimsInsteadOfDropping) {
    FlowLutConfig config = tiny_config();
    config.eviction = EvictionPolicy::kLru;
    FlowLut lut(config);

    u64 ts = 1;
    for (u64 flow = 0; flow < 40; ++flow) {
        const Completion completion = offer_one(lut, key_of(flow), ts += 17);
        EXPECT_NE(completion.fid, kInvalidFlowId) << "flow " << flow;
    }
    EXPECT_EQ(lut.stats().drops, 0u);
    EXPECT_GT(lut.stats().evictions_lru, 0u);
    EXPECT_LE(lut.table().size(), lut.table().capacity());
    EXPECT_EQ(audit_report(lut), "");
}

TEST(EvictionPolicyTest, ClockEvictsUnreferencedVictims) {
    FlowLutConfig config = tiny_config();
    config.eviction = EvictionPolicy::kClock;
    FlowLut lut(config);

    u64 ts = 1;
    for (u64 flow = 0; flow < 40; ++flow) {
        const Completion completion = offer_one(lut, key_of(flow), ts += 17);
        EXPECT_NE(completion.fid, kInvalidFlowId) << "flow " << flow;
    }
    EXPECT_EQ(lut.stats().drops, 0u);
    EXPECT_GT(lut.stats().evictions_clock, 0u);
    EXPECT_LE(lut.table().size(), lut.table().capacity());
    EXPECT_EQ(audit_report(lut), "");
}

TEST(EvictionPolicyTest, ClockGivesAReferencedFlowASecondChance) {
    // Keep one flow hot: every sweep clears its referenced bit, but the
    // flow's next packet sets it again — the hand must pass over it and
    // evict colder entries instead.
    FlowLutConfig config = tiny_config();
    config.eviction = EvictionPolicy::kClock;
    FlowLut lut(config);

    u64 ts = 1;
    const net::NTuple hot = key_of(1000);
    (void)offer_one(lut, hot, ts += 17);
    for (u64 flow = 0; flow < 60; ++flow) {
        (void)offer_one(lut, key_of(flow), ts += 17);
        (void)offer_one(lut, hot, ts += 17);  // re-reference every round.
    }
    // The hot flow survived the whole storm: its last packet hit, so it was
    // resident from first insert to final touch.
    const Completion last = offer_one(lut, hot, ts += 17);
    EXPECT_NE(last.fid, kInvalidFlowId);
    EXPECT_FALSE(last.is_new_flow);
    EXPECT_GT(lut.stats().evictions_clock, 0u);
    EXPECT_EQ(audit_report(lut), "");
}

TEST(EvictionPolicyTest, CamOldestRotatesTheCollisionCam) {
    FlowLutConfig config = tiny_config();
    config.eviction = EvictionPolicy::kCamOldest;
    FlowLut lut(config);

    u64 ts = 1;
    u64 drops = 0;
    for (u64 flow = 0; flow < 40; ++flow) {
        const Completion completion = offer_one(lut, key_of(flow), ts += 17);
        if (completion.fid == kInvalidFlowId) ++drops;
    }
    // CAM-oldest can only free CAM slots: memory-bucket overflow beyond the
    // CAM's reach still drops, but the CAM itself keeps absorbing new flows.
    EXPECT_GT(lut.stats().evictions_cam, 0u);
    EXPECT_EQ(lut.stats().drops, drops);
    EXPECT_EQ(audit_report(lut), "");
}

TEST(ReservationTest, SecondPacketConfirmsTheGrant) {
    FlowLutConfig config = small_config();
    config.reservation = true;
    config.admission_pressure = 0.0;  // pressured from the first insert.
    FlowLut lut(config);

    const Completion first = offer_one(lut, key_of(7), 100);
    EXPECT_NE(first.fid, kInvalidFlowId);
    EXPECT_EQ(lut.stats().reservations_granted, 1u);
    EXPECT_EQ(lut.stats().reservations_confirmed, 0u);

    const Completion second = offer_one(lut, key_of(7), 200);
    EXPECT_EQ(second.fid, first.fid);
    EXPECT_EQ(lut.stats().reservations_confirmed, 1u);
    EXPECT_EQ(lut.stats().reservations_reclaimed, 0u);

    // Confirmed = permanent: the deadline passing changes nothing.
    lut.run(2 * config.reservation_deadline);
    ASSERT_TRUE(lut.drain());
    EXPECT_EQ(lut.stats().reservations_reclaimed, 0u);
    EXPECT_EQ(lut.table().size(), 1u);
    EXPECT_EQ(audit_report(lut), "");
}

TEST(ReservationTest, UnconfirmedGrantIsReclaimedAfterDeadline) {
    FlowLutConfig config = small_config();
    config.reservation = true;
    config.admission_pressure = 0.0;
    config.reservation_deadline = 256;
    FlowLut lut(config);

    const Completion only = offer_one(lut, key_of(9), 100);
    EXPECT_NE(only.fid, kInvalidFlowId);
    EXPECT_EQ(lut.stats().reservations_granted, 1u);

    // No second packet: past the deadline housekeeping reclaims the slot
    // through the normal delete machinery.
    lut.run(4 * config.reservation_deadline);
    ASSERT_TRUE(lut.drain());
    EXPECT_EQ(lut.stats().reservations_reclaimed, 1u);
    EXPECT_EQ(lut.table().size(), 0u);

    // The bucket is reusable — the same key inserts again cleanly.
    const Completion again = offer_one(lut, key_of(9), 5'000'000);
    EXPECT_NE(again.fid, kInvalidFlowId);
    EXPECT_TRUE(again.is_new_flow);
    EXPECT_EQ(audit_report(lut), "");
}

TEST(ReservationTest, ReclaimRacingRejectedWritesNeverParksBuckets) {
    // The PR 2 bug class, reservation edition: a reclaim whose delete write
    // is rejected by a full controller queue (or whose insert is still
    // queued and gets cancelled) must release the Req Filter's pending hold
    // exactly once. A double release corrupts the count; a missed release
    // parks the bucket forever and the re-offer below never drains.
    FlowLutConfig config = small_config();
    config.reservation = true;
    config.admission_pressure = 0.0;
    config.reservation_deadline = 64;          // reclaim almost immediately,
    config.controller.write_queue_depth = 1;   // against a rejecting queue,
    config.burst_write_threshold = 4;          // with bursty write release —
    config.burst_write_timeout = 8;            // maximal write contention.
    FlowLut lut(config);

    constexpr u64 kFlows = 64;
    u64 ts = 1;
    // One packet per flow, offered back-to-back: every grant goes
    // unconfirmed while insert writes are still fighting the tiny queue.
    for (u64 flow = 0; flow < kFlows; ++flow) {
        while (!lut.offer(key_of(flow), ts += 17, 64)) lut.step();
    }
    ASSERT_TRUE(lut.drain());
    lut.run(50'000);  // deadlines pass; reclaims and deletes churn through.
    ASSERT_TRUE(lut.drain(2'000'000));
    EXPECT_EQ(lut.stats().reservations_granted, kFlows);
    EXPECT_EQ(lut.stats().reservations_reclaimed, kFlows);
    EXPECT_EQ(lut.table().size(), 0u);
    EXPECT_EQ(audit_report(lut), "");

    // Every bucket must still accept lookups (the PR 2 litmus).
    for (u64 flow = 0; flow < kFlows; ++flow) {
        while (!lut.offer(key_of(flow), 10'000'000 + flow, 64)) lut.step();
    }
    ASSERT_TRUE(lut.drain(2'000'000)) << "a bucket stayed parked after reclaim";
    u64 completions = 0;
    while (lut.pop_completion()) ++completions;
    EXPECT_EQ(completions, 2 * kFlows);
    EXPECT_EQ(audit_report(lut), "");
}

TEST(ReservationTest, InterleavedTrafficConservesTheLedger)
{
    // Grants, confirms and reclaims all interleaved: the ledger invariant
    // granted == confirmed + reclaimed + open is the auditor's to check.
    FlowLutConfig config = tiny_config();
    config.reservation = true;
    config.eviction = EvictionPolicy::kLru;
    config.reservation_deadline = 128;
    FlowLut lut(config);

    u64 ts = 1;
    for (u64 round = 0; round < 6; ++round) {
        for (u64 flow = 0; flow < 12; ++flow) {
            // Even flows send two packets (confirm); odd flows one (reclaim).
            while (!lut.offer(key_of(100 * round + flow), ts += 17, 64)) lut.step();
            if (flow % 2 == 0) {
                while (!lut.offer(key_of(100 * round + flow), ts += 17, 64)) lut.step();
            }
        }
        lut.run(256);
    }
    ASSERT_TRUE(lut.drain());
    lut.run(10'000);
    ASSERT_TRUE(lut.drain());
    EXPECT_GT(lut.stats().reservations_granted, 0u);
    EXPECT_EQ(audit_report(lut), "");
}

}  // namespace
}  // namespace flowcam::core
