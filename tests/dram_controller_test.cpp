// DDR3 controller integration tests: end-to-end data integrity through the
// FR-FCFS scheduler, protocol cleanliness under random traffic, write-drain
// batching, refresh, and latency accounting.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "dram/controller.hpp"

namespace flowcam::dram {
namespace {

class ControllerTest : public ::testing::Test {
  protected:
    DramTimings timings = ddr3_1600();
    Geometry geometry{};
    ControllerConfig config{};

    std::unique_ptr<DramController> make(bool refresh = true) {
        config.refresh_enabled = refresh;
        config.interleave_bytes = 64;
        return std::make_unique<DramController>("dut", timings, geometry, config);
    }

    /// Run until idle, collecting responses. Asserts protocol stays clean.
    std::vector<MemResponse> run_to_idle(DramController& controller, u64 max_cycles = 200000) {
        std::vector<MemResponse> responses;
        Cycle now = 0;
        while (!controller.idle() && now < max_cycles) {
            controller.tick(now++);
            while (auto response = controller.pop_response()) {
                responses.push_back(std::move(*response));
            }
        }
        EXPECT_TRUE(controller.idle()) << "controller did not drain";
        EXPECT_TRUE(controller.protocol_status().is_ok())
            << controller.protocol_status().to_string();
        return responses;
    }

    static std::vector<u8> pattern(u64 seed, std::size_t bytes) {
        std::vector<u8> data(bytes);
        Xoshiro256 rng(seed);
        for (auto& byte : data) byte = static_cast<u8>(rng());
        return data;
    }
};

TEST_F(ControllerTest, WriteThenReadReturnsData) {
    // The controller is free to reorder a read ahead of an earlier write to
    // the same address (that hazard is the Request Filter's responsibility
    // upstream), so the read is issued only after the write completes.
    auto controller = make();
    const auto payload = pattern(1, 64);
    ASSERT_TRUE(controller->enqueue(MemRequest{1, true, 0, 2, payload}));
    auto responses = run_to_idle(*controller);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_TRUE(responses[0].is_write);

    ASSERT_TRUE(controller->enqueue(MemRequest{2, false, 0, 2, {}}));
    responses = run_to_idle(*controller);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_FALSE(responses[0].is_write);
    EXPECT_EQ(responses[0].data, payload);
}

TEST_F(ControllerTest, UnwrittenMemoryReadsZero) {
    auto controller = make();
    ASSERT_TRUE(controller->enqueue(MemRequest{1, false, 128, 1, {}}));
    const auto responses = run_to_idle(*controller);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].data, std::vector<u8>(32, 0));
}

TEST_F(ControllerTest, RandomTrafficDataIntegrity) {
    auto controller = make();
    Xoshiro256 rng(42);
    std::map<u64, std::vector<u8>> model;  // address -> last written data.
    std::map<u64, std::vector<u8>> expectation_at_read;  // id -> snapshot
    u64 next_id = 1;
    Cycle now = 0;
    std::vector<MemResponse> responses;

    for (int op = 0; op < 400; ++op) {
        const u64 bucket = rng.bounded(64);
        const u64 address = bucket * 64;
        // NOTE: reads to an address are only issued when no write to the
        // same address is pending — the Request Filter's job upstream.
        MemRequest request;
        request.id = next_id++;
        request.byte_address = address;
        request.bursts = 2;
        if (rng.chance(0.5)) {
            request.is_write = true;
            request.write_data = pattern(rng(), 64);
            model[address] = request.write_data;
        } else {
            request.is_write = false;
            if (model.contains(address)) expectation_at_read[request.id] = model[address];
        }
        // Apply backpressure loop.
        while (!controller->enqueue(request)) {
            controller->tick(now++);
            while (auto response = controller->pop_response()) {
                responses.push_back(std::move(*response));
            }
        }
        // Let the controller make progress between ops so writes to the
        // same address complete before dependent reads are issued.
        for (int i = 0; i < 60; ++i) {
            controller->tick(now++);
            while (auto response = controller->pop_response()) {
                responses.push_back(std::move(*response));
            }
        }
    }
    while (!controller->idle() && now < 1'000'000) {
        controller->tick(now++);
        while (auto response = controller->pop_response()) {
            responses.push_back(std::move(*response));
        }
    }
    ASSERT_TRUE(controller->protocol_status().is_ok())
        << controller->protocol_status().to_string();
    for (const auto& response : responses) {
        if (response.is_write) continue;
        const auto it = expectation_at_read.find(response.id);
        if (it == expectation_at_read.end()) continue;  // address never written
        EXPECT_EQ(response.data, it->second) << "read id " << response.id;
    }
}

TEST_F(ControllerTest, RowHitsDominateSequentialSameRowTraffic) {
    auto controller = make(false);
    // 16 reads in the same row (bank-high map keeps them together).
    config.map_policy = MapPolicy::kBankHigh;
    controller = make(false);
    for (u64 i = 0; i < 16; ++i) {
        ASSERT_TRUE(controller->enqueue(MemRequest{i + 1, false, i * 32, 1, {}}));
    }
    run_to_idle(*controller);
    const auto& stats = controller->stats();
    EXPECT_EQ(stats.reads_completed, 16u);
    EXPECT_GE(stats.row_hits, 14u);   // first access opens the row
    EXPECT_LE(stats.activates, 2u);
}

TEST_F(ControllerTest, BankLowSpreadsActivity) {
    auto controller = make(false);
    for (u64 i = 0; i < 16; ++i) {
        ASSERT_TRUE(controller->enqueue(MemRequest{i + 1, false, i * 64, 2, {}}));
    }
    run_to_idle(*controller);
    // Buckets rotate across all 8 banks: one ACT per bank at least.
    EXPECT_GE(controller->stats().activates, 8u);
}

TEST_F(ControllerTest, WriteDrainBatchesWrites) {
    config.write_drain_high = 8;
    config.write_drain_low = 1;
    auto controller = make(false);
    // Interleave writes and reads; the drain policy should group writes.
    for (u64 i = 0; i < 8; ++i) {
        ASSERT_TRUE(controller->enqueue(MemRequest{100 + i, true, i * 64, 2, pattern(i, 64)}));
        ASSERT_TRUE(controller->enqueue(MemRequest{200 + i, false, (64 + i) * 64, 2, {}}));
    }
    run_to_idle(*controller);
    const auto& stats = controller->stats();
    EXPECT_EQ(stats.writes_completed, 8u);
    EXPECT_EQ(stats.reads_completed, 8u);
    // Far fewer direction switches than the 16 a strict FIFO would cause.
    EXPECT_LE(stats.rw_turnarounds, 8u);
}

TEST_F(ControllerTest, RefreshHappensAtTrefiCadence) {
    auto controller = make(true);
    // Idle the controller past several tREFI periods.
    for (Cycle now = 0; now < timings.trefi * 4 + 100; ++now) controller->tick(now);
    EXPECT_GE(controller->stats().refreshes, 3u);
    EXPECT_TRUE(controller->protocol_status().is_ok());
}

TEST_F(ControllerTest, RefreshDisabledForMicrobench) {
    auto controller = make(false);
    for (Cycle now = 0; now < timings.trefi * 3; ++now) controller->tick(now);
    EXPECT_EQ(controller->stats().refreshes, 0u);
}

TEST_F(ControllerTest, QueueDepthBackpressure) {
    config.read_queue_depth = 4;
    auto controller = make(false);
    u64 accepted = 0;
    for (u64 i = 0; i < 10; ++i) {
        accepted += controller->enqueue(MemRequest{i + 1, false, i * 64, 1, {}});
    }
    EXPECT_EQ(accepted, 4u);
}

TEST_F(ControllerTest, ReadLatencyAccounted) {
    auto controller = make(false);
    ASSERT_TRUE(controller->enqueue(MemRequest{1, false, 0, 1, {}}));
    run_to_idle(*controller);
    const auto& latency = controller->stats().read_latency;
    ASSERT_EQ(latency.count(), 1u);
    // Cold access: at least ACT(tRCD) + CL + burst.
    EXPECT_GE(latency.min(),
              static_cast<u64>(timings.trcd + timings.cl + timings.burst_cycles()));
}

TEST_F(ControllerTest, DqUtilizationBoundedByOne) {
    auto controller = make(false);
    for (u64 i = 0; i < 32; ++i) {
        ASSERT_TRUE(controller->enqueue(MemRequest{i + 1, false, (i % 8) * 64, 2, {}}));
    }
    Cycle now = 0;
    while (!controller->idle() && now < 100000) {
        controller->tick(now++);
        while (controller->pop_response()) {
        }
    }
    const double utilization = controller->dq_utilization(now);
    EXPECT_GT(utilization, 0.0);
    EXPECT_LE(utilization, 1.0);
}

// ---------------------------------------------------------------------------
// Scheduler-equivalence suite: the indexed FR-FCFS scheduler must be
// cycle-identical to the reference linear-scan implementation — same command
// stream (type/bank/row/col/cycle), same responses, same stats, and the same
// stall_until_ value after every tick (the event-skip computation is part of
// the contract: a looser stall would change which cycles get evaluated).
// ---------------------------------------------------------------------------

class SchedulerEquivalenceTest : public ::testing::Test {
  protected:
    DramTimings timings = ddr3_1600();
    Geometry geometry{};

    struct Arrival {
        Cycle at = 0;
        MemRequest request;
    };

    static std::vector<u8> pattern(u64 seed, std::size_t bytes) {
        std::vector<u8> data(bytes);
        Xoshiro256 rng(seed);
        for (auto& byte : data) byte = static_cast<u8>(rng());
        return data;
    }

    /// Randomized request stream: mixed read/write, 1-2 burst accesses
    /// (64-byte interleave granule keeps multi-burst requests in one row),
    /// arrival gaps wide enough to flip drain phases when `sparse`.
    std::vector<Arrival> make_stream(u64 seed, u64 ops, double write_fraction, bool sparse) {
        std::vector<Arrival> arrivals;
        arrivals.reserve(ops);
        Xoshiro256 rng(seed);
        Cycle t = 0;
        for (u64 i = 0; i < ops; ++i) {
            t += rng.bounded(sparse ? 120 : 6);
            Arrival arrival;
            arrival.at = t;
            arrival.request.id = i + 1;
            arrival.request.is_write = rng.chance(write_fraction);
            arrival.request.bursts = 1 + static_cast<u32>(rng.bounded(2));
            arrival.request.byte_address = rng.bounded(1024) * 64;
            if (arrival.request.is_write) {
                arrival.request.write_data = pattern(rng(), arrival.request.bursts * 32ull);
            }
            arrivals.push_back(std::move(arrival));
        }
        return arrivals;
    }

    /// Drive a reference-mode and an indexed-mode controller in lockstep
    /// through the same arrival stream and assert cycle-identical behavior.
    void expect_equivalent(const ControllerConfig& base, u64 seed, u64 ops,
                           double write_fraction, bool sparse) {
        ControllerConfig ref_config = base;
        ref_config.scheduler = SchedulerMode::kReference;
        ControllerConfig idx_config = base;
        idx_config.scheduler = SchedulerMode::kIndexed;
        DramController ref("ref", timings, geometry, ref_config);
        DramController idx("idx", timings, geometry, idx_config);
        std::vector<TracedCommand> ref_trace, idx_trace;
        ref.set_command_trace(&ref_trace);
        idx.set_command_trace(&idx_trace);

        const std::vector<Arrival> arrivals = make_stream(seed, ops, write_fraction, sparse);
        std::size_t next = 0;
        Cycle now = 0;
        const Cycle horizon = arrivals.back().at + 200000;
        while (now < horizon && (next < arrivals.size() || !ref.idle() || !idx.idle())) {
            if (next < arrivals.size() && arrivals[next].at <= now) {
                MemRequest for_ref = arrivals[next].request;  // deep copy incl. payload
                MemRequest for_idx = arrivals[next].request;
                const bool ref_ok = ref.enqueue(std::move(for_ref));
                const bool idx_ok = idx.enqueue(std::move(for_idx));
                ASSERT_EQ(ref_ok, idx_ok) << "backpressure diverged at cycle " << now;
                if (ref_ok) ++next;
            }
            ref.tick(now);
            idx.tick(now);
            ASSERT_EQ(ref.stalled_until(), idx.stalled_until())
                << "stall_until_ diverged at cycle " << now;
            ASSERT_EQ(ref_trace.size(), idx_trace.size())
                << "command stream diverged at cycle " << now;
            while (true) {
                auto ref_response = ref.pop_response();
                auto idx_response = idx.pop_response();
                ASSERT_EQ(ref_response.has_value(), idx_response.has_value())
                    << "response timing diverged at cycle " << now;
                if (!ref_response.has_value()) break;
                EXPECT_EQ(ref_response->id, idx_response->id);
                EXPECT_EQ(ref_response->completed_at, idx_response->completed_at);
                EXPECT_EQ(ref_response->data, idx_response->data);
            }
            ++now;
        }
        ASSERT_TRUE(ref.idle() && idx.idle()) << "controllers did not drain";
        ASSERT_TRUE(ref.protocol_status().is_ok()) << ref.protocol_status().to_string();
        ASSERT_TRUE(idx.protocol_status().is_ok()) << idx.protocol_status().to_string();
        ASSERT_EQ(ref_trace.size(), idx_trace.size());
        for (std::size_t i = 0; i < ref_trace.size(); ++i) {
            ASSERT_TRUE(ref_trace[i] == idx_trace[i]) << "command " << i << " differs: "
                << to_string(ref_trace[i].cmd.type) << "@" << ref_trace[i].at << " vs "
                << to_string(idx_trace[i].cmd.type) << "@" << idx_trace[i].at;
        }

        const ControllerStats& a = ref.stats();
        const ControllerStats& b = idx.stats();
        EXPECT_EQ(a.reads_accepted, b.reads_accepted);
        EXPECT_EQ(a.writes_accepted, b.writes_accepted);
        EXPECT_EQ(a.reads_completed, b.reads_completed);
        EXPECT_EQ(a.writes_completed, b.writes_completed);
        EXPECT_EQ(a.activates, b.activates);
        EXPECT_EQ(a.precharges, b.precharges);
        EXPECT_EQ(a.refreshes, b.refreshes);
        EXPECT_EQ(a.row_hits, b.row_hits);
        EXPECT_EQ(a.row_misses, b.row_misses);
        EXPECT_EQ(a.row_conflicts, b.row_conflicts);
        EXPECT_EQ(a.rw_turnarounds, b.rw_turnarounds);
        EXPECT_EQ(a.read_latency.count(), b.read_latency.count());
        EXPECT_EQ(a.read_latency.sum(), b.read_latency.sum());
        EXPECT_GT(ref_trace.size(), 0u);
    }
};

TEST_F(SchedulerEquivalenceTest, ReadOnlyStreams) {
    ControllerConfig config;
    config.interleave_bytes = 64;
    for (u64 seed : {1u, 2u, 3u}) expect_equivalent(config, seed, 600, 0.0, false);
}

TEST_F(SchedulerEquivalenceTest, MixedReadWriteStreams) {
    ControllerConfig config;
    config.interleave_bytes = 64;
    for (u64 seed : {7u, 8u, 9u}) expect_equivalent(config, seed, 600, 0.5, false);
}

TEST_F(SchedulerEquivalenceTest, WriteDrainPhaseFlips) {
    ControllerConfig config;
    config.interleave_bytes = 64;
    config.write_drain_high = 6;
    config.write_drain_low = 1;
    config.write_age_limit = 64;  // sparse arrivals cross the age limit often
    for (u64 seed : {11u, 12u}) expect_equivalent(config, seed, 400, 0.7, true);
}

TEST_F(SchedulerEquivalenceTest, RefreshDisabled) {
    ControllerConfig config;
    config.interleave_bytes = 64;
    config.refresh_enabled = false;
    for (u64 seed : {21u, 22u}) expect_equivalent(config, seed, 600, 0.4, false);
}

TEST_F(SchedulerEquivalenceTest, ConflictHeavyBankHighMap) {
    ControllerConfig config;
    config.interleave_bytes = 64;
    config.map_policy = MapPolicy::kBankHigh;  // consecutive buckets share a bank
    for (u64 seed : {31u, 32u}) expect_equivalent(config, seed, 500, 0.3, false);
}

TEST_F(SchedulerEquivalenceTest, ShallowQueuesBackpressure) {
    ControllerConfig config;
    config.interleave_bytes = 64;
    config.read_queue_depth = 4;
    config.write_queue_depth = 4;
    config.write_drain_high = 3;
    config.write_drain_low = 1;
    for (u64 seed : {41u, 42u}) expect_equivalent(config, seed, 500, 0.5, false);
}

TEST_F(SchedulerEquivalenceTest, CrossCheckModeStaysClean) {
    // kCrossCheck runs both deciders on every evaluated cycle and reports
    // any divergence (decision or next-event candidate) via protocol_status.
    ControllerConfig config;
    config.interleave_bytes = 64;
    config.scheduler = SchedulerMode::kCrossCheck;
    DramController controller("xcheck", timings, geometry, config);
    Xoshiro256 rng(99);
    Cycle now = 0;
    u64 id = 1;
    for (int op = 0; op < 500; ++op) {
        MemRequest request;
        request.id = id++;
        request.byte_address = rng.bounded(512) * 64;
        request.bursts = 2;
        request.is_write = rng.chance(0.5);
        if (request.is_write) request.write_data = pattern(rng(), 64);
        while (!controller.enqueue(request)) controller.tick(now++);
        for (int i = 0; i < static_cast<int>(rng.bounded(30)); ++i) {
            controller.tick(now++);
            while (controller.pop_response()) {
            }
        }
    }
    while (!controller.idle() && now < 2'000'000) {
        controller.tick(now++);
        while (controller.pop_response()) {
        }
    }
    ASSERT_TRUE(controller.idle());
    ASSERT_TRUE(controller.protocol_status().is_ok())
        << controller.protocol_status().to_string();
}

}  // namespace
}  // namespace flowcam::dram
