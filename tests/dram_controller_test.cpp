// DDR3 controller integration tests: end-to-end data integrity through the
// FR-FCFS scheduler, protocol cleanliness under random traffic, write-drain
// batching, refresh, and latency accounting.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "dram/controller.hpp"

namespace flowcam::dram {
namespace {

class ControllerTest : public ::testing::Test {
  protected:
    DramTimings timings = ddr3_1600();
    Geometry geometry{};
    ControllerConfig config{};

    std::unique_ptr<DramController> make(bool refresh = true) {
        config.refresh_enabled = refresh;
        config.interleave_bytes = 64;
        return std::make_unique<DramController>("dut", timings, geometry, config);
    }

    /// Run until idle, collecting responses. Asserts protocol stays clean.
    std::vector<MemResponse> run_to_idle(DramController& controller, u64 max_cycles = 200000) {
        std::vector<MemResponse> responses;
        Cycle now = 0;
        while (!controller.idle() && now < max_cycles) {
            controller.tick(now++);
            while (auto response = controller.pop_response()) {
                responses.push_back(std::move(*response));
            }
        }
        EXPECT_TRUE(controller.idle()) << "controller did not drain";
        EXPECT_TRUE(controller.protocol_status().is_ok())
            << controller.protocol_status().to_string();
        return responses;
    }

    static std::vector<u8> pattern(u64 seed, std::size_t bytes) {
        std::vector<u8> data(bytes);
        Xoshiro256 rng(seed);
        for (auto& byte : data) byte = static_cast<u8>(rng());
        return data;
    }
};

TEST_F(ControllerTest, WriteThenReadReturnsData) {
    // The controller is free to reorder a read ahead of an earlier write to
    // the same address (that hazard is the Request Filter's responsibility
    // upstream), so the read is issued only after the write completes.
    auto controller = make();
    const auto payload = pattern(1, 64);
    ASSERT_TRUE(controller->enqueue(MemRequest{1, true, 0, 2, payload}));
    auto responses = run_to_idle(*controller);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_TRUE(responses[0].is_write);

    ASSERT_TRUE(controller->enqueue(MemRequest{2, false, 0, 2, {}}));
    responses = run_to_idle(*controller);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_FALSE(responses[0].is_write);
    EXPECT_EQ(responses[0].data, payload);
}

TEST_F(ControllerTest, UnwrittenMemoryReadsZero) {
    auto controller = make();
    ASSERT_TRUE(controller->enqueue(MemRequest{1, false, 128, 1, {}}));
    const auto responses = run_to_idle(*controller);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].data, std::vector<u8>(32, 0));
}

TEST_F(ControllerTest, RandomTrafficDataIntegrity) {
    auto controller = make();
    Xoshiro256 rng(42);
    std::map<u64, std::vector<u8>> model;  // address -> last written data.
    std::map<u64, std::vector<u8>> expectation_at_read;  // id -> snapshot
    u64 next_id = 1;
    Cycle now = 0;
    std::vector<MemResponse> responses;

    for (int op = 0; op < 400; ++op) {
        const u64 bucket = rng.bounded(64);
        const u64 address = bucket * 64;
        // NOTE: reads to an address are only issued when no write to the
        // same address is pending — the Request Filter's job upstream.
        MemRequest request;
        request.id = next_id++;
        request.byte_address = address;
        request.bursts = 2;
        if (rng.chance(0.5)) {
            request.is_write = true;
            request.write_data = pattern(rng(), 64);
            model[address] = request.write_data;
        } else {
            request.is_write = false;
            if (model.contains(address)) expectation_at_read[request.id] = model[address];
        }
        // Apply backpressure loop.
        while (!controller->enqueue(request)) {
            controller->tick(now++);
            while (auto response = controller->pop_response()) {
                responses.push_back(std::move(*response));
            }
        }
        // Let the controller make progress between ops so writes to the
        // same address complete before dependent reads are issued.
        for (int i = 0; i < 60; ++i) {
            controller->tick(now++);
            while (auto response = controller->pop_response()) {
                responses.push_back(std::move(*response));
            }
        }
    }
    while (!controller->idle() && now < 1'000'000) {
        controller->tick(now++);
        while (auto response = controller->pop_response()) {
            responses.push_back(std::move(*response));
        }
    }
    ASSERT_TRUE(controller->protocol_status().is_ok())
        << controller->protocol_status().to_string();
    for (const auto& response : responses) {
        if (response.is_write) continue;
        const auto it = expectation_at_read.find(response.id);
        if (it == expectation_at_read.end()) continue;  // address never written
        EXPECT_EQ(response.data, it->second) << "read id " << response.id;
    }
}

TEST_F(ControllerTest, RowHitsDominateSequentialSameRowTraffic) {
    auto controller = make(false);
    // 16 reads in the same row (bank-high map keeps them together).
    config.map_policy = MapPolicy::kBankHigh;
    controller = make(false);
    for (u64 i = 0; i < 16; ++i) {
        ASSERT_TRUE(controller->enqueue(MemRequest{i + 1, false, i * 32, 1, {}}));
    }
    run_to_idle(*controller);
    const auto& stats = controller->stats();
    EXPECT_EQ(stats.reads_completed, 16u);
    EXPECT_GE(stats.row_hits, 14u);   // first access opens the row
    EXPECT_LE(stats.activates, 2u);
}

TEST_F(ControllerTest, BankLowSpreadsActivity) {
    auto controller = make(false);
    for (u64 i = 0; i < 16; ++i) {
        ASSERT_TRUE(controller->enqueue(MemRequest{i + 1, false, i * 64, 2, {}}));
    }
    run_to_idle(*controller);
    // Buckets rotate across all 8 banks: one ACT per bank at least.
    EXPECT_GE(controller->stats().activates, 8u);
}

TEST_F(ControllerTest, WriteDrainBatchesWrites) {
    config.write_drain_high = 8;
    config.write_drain_low = 1;
    auto controller = make(false);
    // Interleave writes and reads; the drain policy should group writes.
    for (u64 i = 0; i < 8; ++i) {
        ASSERT_TRUE(controller->enqueue(MemRequest{100 + i, true, i * 64, 2, pattern(i, 64)}));
        ASSERT_TRUE(controller->enqueue(MemRequest{200 + i, false, (64 + i) * 64, 2, {}}));
    }
    run_to_idle(*controller);
    const auto& stats = controller->stats();
    EXPECT_EQ(stats.writes_completed, 8u);
    EXPECT_EQ(stats.reads_completed, 8u);
    // Far fewer direction switches than the 16 a strict FIFO would cause.
    EXPECT_LE(stats.rw_turnarounds, 8u);
}

TEST_F(ControllerTest, RefreshHappensAtTrefiCadence) {
    auto controller = make(true);
    // Idle the controller past several tREFI periods.
    for (Cycle now = 0; now < timings.trefi * 4 + 100; ++now) controller->tick(now);
    EXPECT_GE(controller->stats().refreshes, 3u);
    EXPECT_TRUE(controller->protocol_status().is_ok());
}

TEST_F(ControllerTest, RefreshDisabledForMicrobench) {
    auto controller = make(false);
    for (Cycle now = 0; now < timings.trefi * 3; ++now) controller->tick(now);
    EXPECT_EQ(controller->stats().refreshes, 0u);
}

TEST_F(ControllerTest, QueueDepthBackpressure) {
    config.read_queue_depth = 4;
    auto controller = make(false);
    u64 accepted = 0;
    for (u64 i = 0; i < 10; ++i) {
        accepted += controller->enqueue(MemRequest{i + 1, false, i * 64, 1, {}});
    }
    EXPECT_EQ(accepted, 4u);
}

TEST_F(ControllerTest, ReadLatencyAccounted) {
    auto controller = make(false);
    ASSERT_TRUE(controller->enqueue(MemRequest{1, false, 0, 1, {}}));
    run_to_idle(*controller);
    const auto& latency = controller->stats().read_latency;
    ASSERT_EQ(latency.summary().count(), 1u);
    // Cold access: at least ACT(tRCD) + CL + burst.
    EXPECT_GE(latency.summary().min(),
              static_cast<double>(timings.trcd + timings.cl + timings.burst_cycles()));
}

TEST_F(ControllerTest, DqUtilizationBoundedByOne) {
    auto controller = make(false);
    for (u64 i = 0; i < 32; ++i) {
        ASSERT_TRUE(controller->enqueue(MemRequest{i + 1, false, (i % 8) * 64, 2, {}}));
    }
    Cycle now = 0;
    while (!controller->idle() && now < 100000) {
        controller->tick(now++);
        while (controller->pop_response()) {
        }
    }
    const double utilization = controller->dq_utilization(now);
    EXPECT_GT(utilization, 0.0);
    EXPECT_LE(utilization, 1.0);
}

}  // namespace
}  // namespace flowcam::dram
