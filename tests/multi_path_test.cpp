// Tests for the multi-path multi-hashing extension (paper §VI future work):
// correctness across path counts (TEST_P) and the capacity/overflow benefit
// of more choices.
#include <gtest/gtest.h>

#include <vector>

#include "net/trace.hpp"
#include "table/multi_path.hpp"

namespace flowcam::table {
namespace {

std::vector<u8> key_of(u64 value) {
    const auto bytes = net::synth_tuple(value, 31).key_bytes();
    return {bytes.begin(), bytes.end()};
}

class MultiPathTest : public ::testing::TestWithParam<u32> {
  protected:
    MultiPathConfig config_for(u32 paths) {
        MultiPathConfig config;
        config.paths = paths;
        // Equal TOTAL capacity across parameterizations.
        config.buckets_per_mem = 2048 / paths;
        config.ways = 4;
        config.cam_capacity = 64;
        return config;
    }
};

INSTANTIATE_TEST_SUITE_P(Paths, MultiPathTest, ::testing::Values(2u, 3u, 4u, 8u),
                         [](const auto& info) {
                             return "D" + std::to_string(info.param);
                         });

TEST_P(MultiPathTest, RoundtripAndErase) {
    MultiPathTable table(config_for(GetParam()));
    for (u64 i = 0; i < 100; ++i) ASSERT_TRUE(table.insert(key_of(i), i).is_ok());
    for (u64 i = 0; i < 100; ++i) EXPECT_EQ(*table.lookup(key_of(i)), i);
    for (u64 i = 0; i < 50; ++i) ASSERT_TRUE(table.erase(key_of(i)).is_ok());
    for (u64 i = 0; i < 50; ++i) EXPECT_FALSE(table.lookup(key_of(i)).has_value());
    for (u64 i = 50; i < 100; ++i) EXPECT_EQ(*table.lookup(key_of(i)), i);
    EXPECT_EQ(table.size(), 50u);
}

TEST_P(MultiPathTest, DuplicateRejected) {
    MultiPathTable table(config_for(GetParam()));
    ASSERT_TRUE(table.insert(key_of(1), 1).is_ok());
    EXPECT_EQ(table.insert(key_of(1), 2).code(), StatusCode::kAlreadyExists);
}

TEST_P(MultiPathTest, HighLoadStillConsistent) {
    MultiPathTable table(config_for(GetParam()));
    const auto count = static_cast<u64>(0.8 * static_cast<double>(table.capacity()));
    u64 inserted = 0;
    for (u64 i = 0; i < count; ++i) inserted += table.insert(key_of(i), i).is_ok();
    EXPECT_EQ(inserted, count) << "insert failures below safe load";
    for (u64 i = 0; i < count; ++i) {
        ASSERT_TRUE(table.lookup(key_of(i)).has_value()) << i;
    }
}

TEST_P(MultiPathTest, ProbeCountBounded) {
    MultiPathTable table(config_for(GetParam()));
    for (u64 i = 0; i < 200; ++i) ASSERT_TRUE(table.insert(key_of(i), i).is_ok());
    for (u64 i = 0; i < 200; ++i) {
        ASSERT_TRUE(table.lookup(key_of(i)).has_value());
        EXPECT_LE(table.last_probe_count(), GetParam());
        EXPECT_GE(table.last_probe_count(), 1u);
    }
}

TEST(MultiPathBenefit, MorePathsLessCamPressure) {
    // At equal total capacity and 90 % load, more hash choices push fewer
    // entries into the collision CAM — the paper's rationale for the
    // multi-path upgrade at higher link rates.
    u64 cam_two = 0;
    u64 cam_eight = 0;
    for (const u32 paths : {2u, 8u}) {
        MultiPathConfig config;
        config.paths = paths;
        config.buckets_per_mem = 4096 / paths;
        config.ways = 2;
        config.cam_capacity = 2048;
        MultiPathTable table(config);
        const auto count = static_cast<u64>(0.9 * 4096 * 2);
        for (u64 i = 0; i < count; ++i) (void)table.insert(key_of(i), i);
        (paths == 2 ? cam_two : cam_eight) = table.cam_entries();
    }
    EXPECT_LT(cam_eight, cam_two);
}

TEST(MultiPathBenefit, TwoPathsMatchesBaseSchemeShape) {
    // D=2 is the paper's base scheme: it should behave like TwoChoice+CAM.
    MultiPathConfig config;
    config.paths = 2;
    config.buckets_per_mem = 512;
    config.ways = 4;
    config.cam_capacity = 128;
    MultiPathTable table(config);
    const u64 count = 3000;  // ~70 % of 4096+128
    u64 inserted = 0;
    for (u64 i = 0; i < count; ++i) inserted += table.insert(key_of(i), i).is_ok();
    EXPECT_EQ(inserted, count);
}

}  // namespace
}  // namespace flowcam::table
