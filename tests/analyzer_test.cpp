// Traffic-analyzer tests: raw-frame ingestion through the header parser,
// statistics aggregation, and the event engine (new flow, heavy hitter,
// port scan, flow expiry).
#include <gtest/gtest.h>

#include <algorithm>

#include "analyzer/analyzer.hpp"
#include "net/headers.hpp"
#include "net/trace.hpp"

namespace flowcam::analyzer {
namespace {

AnalyzerConfig small_config() {
    AnalyzerConfig config;
    config.lut.buckets_per_mem = 1 << 10;
    config.lut.cam_capacity = 64;
    return config;
}

net::PacketRecord record_of(u64 flow, u64 ts, u16 bytes = 64) {
    net::PacketRecord record;
    record.tuple = net::synth_tuple(flow, 5);
    record.timestamp_ns = ts;
    record.frame_bytes = bytes;
    return record;
}

u64 count_events(const TrafficAnalyzer& analyzer, EventKind kind) {
    return static_cast<u64>(std::count_if(
        analyzer.events().begin(), analyzer.events().end(),
        [&](const Event& event) { return event.kind == kind; }));
}

TEST(AnalyzerTest, CountsPacketsAndBytes) {
    TrafficAnalyzer analyzer(small_config());
    for (u64 i = 0; i < 100; ++i) {
        ASSERT_TRUE(analyzer.feed_record(record_of(i % 10, i + 1, 100)));
    }
    ASSERT_TRUE(analyzer.drain());
    EXPECT_EQ(analyzer.stats().packets, 100u);
    EXPECT_EQ(analyzer.stats().bytes, 10000u);
    EXPECT_DOUBLE_EQ(analyzer.stats().mean_packet_bytes(), 100.0);
    EXPECT_EQ(analyzer.lut().flow_state().active_flows(), 10u);
}

TEST(AnalyzerTest, RaisesNewFlowEvents) {
    TrafficAnalyzer analyzer(small_config());
    for (u64 i = 0; i < 5; ++i) ASSERT_TRUE(analyzer.feed_record(record_of(i, i + 1)));
    ASSERT_TRUE(analyzer.drain());
    EXPECT_EQ(count_events(analyzer, EventKind::kNewFlow), 5u);
}

TEST(AnalyzerTest, ParsesRawFrames) {
    TrafficAnalyzer analyzer(small_config());
    net::PacketSpec spec;
    spec.tuple = net::synth_tuple(1, 5);
    const auto frame = net::build_packet(spec);
    ASSERT_TRUE(analyzer.feed_frame(frame, 1));
    ASSERT_TRUE(analyzer.drain());
    EXPECT_EQ(analyzer.stats().packets, 1u);
    EXPECT_EQ(analyzer.stats().unparseable, 0u);
}

TEST(AnalyzerTest, UnparseableFramesCounted) {
    TrafficAnalyzer analyzer(small_config());
    const std::vector<u8> garbage(10, 0xFF);
    ASSERT_TRUE(analyzer.feed_frame(garbage, 1));
    EXPECT_EQ(analyzer.stats().unparseable, 1u);
    EXPECT_EQ(analyzer.stats().packets, 0u);
}

TEST(AnalyzerTest, HeavyHitterEventOnce) {
    AnalyzerConfig config = small_config();
    config.heavy_hitter_bytes = 10000;
    TrafficAnalyzer analyzer(config);
    for (u64 i = 0; i < 20; ++i) {
        ASSERT_TRUE(analyzer.feed_record(record_of(1, i + 1, 1500)));
    }
    ASSERT_TRUE(analyzer.drain());
    EXPECT_EQ(count_events(analyzer, EventKind::kHeavyHitter), 1u);
}

TEST(AnalyzerTest, PortScanDetected) {
    AnalyzerConfig config = small_config();
    config.port_scan_threshold = 16;
    TrafficAnalyzer analyzer(config);
    // One source IP probing many destination ports.
    net::FiveTuple base = net::synth_tuple(1, 5);
    for (u16 port = 1; port <= 32; ++port) {
        net::PacketRecord record;
        record.tuple = base;
        record.tuple.dst_port = port;
        record.timestamp_ns = port;
        record.frame_bytes = 64;
        ASSERT_TRUE(analyzer.feed_record(record));
    }
    ASSERT_TRUE(analyzer.drain());
    EXPECT_EQ(count_events(analyzer, EventKind::kPortScan), 1u);
}

TEST(AnalyzerTest, TopFlowsSortedByBytes) {
    TrafficAnalyzer analyzer(small_config());
    for (u64 i = 0; i < 30; ++i) ASSERT_TRUE(analyzer.feed_record(record_of(1, i + 1, 1500)));
    for (u64 i = 0; i < 5; ++i) ASSERT_TRUE(analyzer.feed_record(record_of(2, 100 + i, 64)));
    ASSERT_TRUE(analyzer.drain());
    const auto top = analyzer.top_flows(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_GT(top[0].bytes, top[1].bytes);
    EXPECT_EQ(top[0].bytes, 45000u);
}

TEST(AnalyzerTest, ReportRenders) {
    TrafficAnalyzer analyzer(small_config());
    for (u64 i = 0; i < 10; ++i) ASSERT_TRUE(analyzer.feed_record(record_of(i, i + 1)));
    ASSERT_TRUE(analyzer.drain());
    const std::string report = analyzer.report(3);
    EXPECT_NE(report.find("packets: 10"), std::string::npos);
    EXPECT_NE(report.find("top 3 flows"), std::string::npos);
}

TEST(AnalyzerTest, BufferBackpressureDropsTail) {
    AnalyzerConfig config = small_config();
    config.packet_buffer_depth = 4;
    TrafficAnalyzer analyzer(config);
    u64 accepted = 0;
    for (u64 i = 0; i < 20; ++i) accepted += analyzer.feed_record(record_of(i, i + 1));
    EXPECT_EQ(accepted, 4u);
    EXPECT_EQ(analyzer.stats().dropped_buffer_full, 16u);
    ASSERT_TRUE(analyzer.drain());
    EXPECT_EQ(analyzer.stats().packets, 4u);
}

TEST(AnalyzerTest, ProtocolBreakdownTracked) {
    TrafficAnalyzer analyzer(small_config());
    net::PacketRecord tcp = record_of(1, 1);
    tcp.tuple.protocol = net::kProtoTcp;
    net::PacketRecord udp = record_of(2, 2);
    udp.tuple.protocol = net::kProtoUdp;
    ASSERT_TRUE(analyzer.feed_record(tcp));
    ASSERT_TRUE(analyzer.feed_record(udp));
    ASSERT_TRUE(analyzer.drain());
    EXPECT_EQ(analyzer.stats().packets_by_protocol.at(net::kProtoTcp), 1u);
    EXPECT_EQ(analyzer.stats().packets_by_protocol.at(net::kProtoUdp), 1u);
}

TEST(AnalyzerTest, EventKindNames) {
    EXPECT_STREQ(to_string(EventKind::kNewFlow), "new-flow");
    EXPECT_STREQ(to_string(EventKind::kHeavyHitter), "heavy-hitter");
    EXPECT_STREQ(to_string(EventKind::kPortScan), "port-scan");
}

}  // namespace
}  // namespace flowcam::analyzer
