// Policy-classifier tests: wildcard rule matching, priorities, prefix
// masks, the per-FID verdict cache, and TCAM capacity behaviour.
#include <gtest/gtest.h>

#include "classifier/policy.hpp"
#include "net/trace.hpp"

namespace flowcam::classifier {
namespace {

net::FiveTuple tuple(u32 src, u32 dst, u16 sport, u16 dport, u8 proto = net::kProtoTcp) {
    net::FiveTuple t;
    t.src_ip = src;
    t.dst_ip = dst;
    t.src_port = sport;
    t.dst_port = dport;
    t.protocol = proto;
    return t;
}

TEST(Policy, DefaultActionWhenNoRules) {
    PolicyEngine engine(16, Action::kDeny);
    const Verdict verdict = engine.classify(tuple(1, 2, 3, 4));
    EXPECT_EQ(verdict.action, Action::kDeny);
    EXPECT_EQ(verdict.rule, "default");
}

TEST(Policy, ExactRuleMatches) {
    PolicyEngine engine;
    Rule rule;
    rule.name = "block-telnet";
    rule.action = Action::kDeny;
    rule.dst_port = 23;
    rule.priority = 10;
    ASSERT_TRUE(engine.add_rule(rule).is_ok());

    EXPECT_EQ(engine.classify(tuple(1, 2, 40000, 23)).action, Action::kDeny);
    EXPECT_EQ(engine.classify(tuple(1, 2, 40000, 22)).action, Action::kPermit);
}

TEST(Policy, PrefixMaskMatchesSubnet) {
    PolicyEngine engine;
    Rule rule;
    rule.name = "mirror-internal";
    rule.action = Action::kMirror;
    rule.src_ip = 0x0A000000;  // 10.0.0.0/8
    rule.src_prefix = 8;
    ASSERT_TRUE(engine.add_rule(rule).is_ok());

    EXPECT_EQ(engine.classify(tuple(0x0A010203, 2, 1, 2)).action, Action::kMirror);
    EXPECT_EQ(engine.classify(tuple(0x0B010203, 2, 1, 2)).action, Action::kPermit);
}

TEST(Policy, HigherPriorityWins) {
    PolicyEngine engine;
    Rule broad;
    broad.name = "limit-subnet";
    broad.action = Action::kRateLimit;
    broad.dst_ip = 0xC0A80000;  // 192.168.0.0/16
    broad.dst_prefix = 16;
    broad.priority = 1;
    ASSERT_TRUE(engine.add_rule(broad).is_ok());

    Rule narrow;
    narrow.name = "allow-dns-server";
    narrow.action = Action::kPermit;
    narrow.dst_ip = 0xC0A80035;  // 192.168.0.53/32
    narrow.dst_prefix = 32;
    narrow.priority = 100;
    ASSERT_TRUE(engine.add_rule(narrow).is_ok());

    EXPECT_EQ(engine.classify(tuple(1, 0xC0A80035, 1, 53)).action, Action::kPermit);
    EXPECT_EQ(engine.classify(tuple(1, 0xC0A80099, 1, 53)).action, Action::kRateLimit);
}

TEST(Policy, ProtocolOnlyRule) {
    PolicyEngine engine;
    Rule rule;
    rule.name = "log-udp";
    rule.action = Action::kLog;
    rule.protocol = net::kProtoUdp;
    ASSERT_TRUE(engine.add_rule(rule).is_ok());
    EXPECT_EQ(engine.classify(tuple(1, 2, 3, 4, net::kProtoUdp)).action, Action::kLog);
    EXPECT_EQ(engine.classify(tuple(1, 2, 3, 4, net::kProtoTcp)).action, Action::kPermit);
}

TEST(Policy, VerdictCachePerFid) {
    PolicyEngine engine;
    Rule rule;
    rule.name = "deny-all-http";
    rule.action = Action::kDeny;
    rule.dst_port = 80;
    ASSERT_TRUE(engine.add_rule(rule).is_ok());

    const auto flow = tuple(1, 2, 40000, 80);
    const Verdict first = engine.verdict_for(42, flow);
    EXPECT_EQ(first.action, Action::kDeny);
    EXPECT_EQ(engine.stats().classified, 1u);

    const Verdict second = engine.verdict_for(42, flow);
    EXPECT_EQ(second.action, Action::kDeny);
    EXPECT_EQ(engine.stats().classified, 1u);  // cached, not re-classified
    EXPECT_EQ(engine.stats().cache_hits, 1u);

    engine.invalidate(42);
    (void)engine.verdict_for(42, flow);
    EXPECT_EQ(engine.stats().classified, 2u);
}

TEST(Policy, TcamCapacityBoundsRules) {
    PolicyEngine engine(2);
    Rule rule;
    rule.dst_port = 1;
    ASSERT_TRUE(engine.add_rule(rule).is_ok());
    rule.dst_port = 2;
    ASSERT_TRUE(engine.add_rule(rule).is_ok());
    rule.dst_port = 3;
    EXPECT_EQ(engine.add_rule(rule).code(), StatusCode::kCapacityExceeded);
    EXPECT_EQ(engine.rule_count(), 2u);
}

TEST(Policy, ActionStatsAccumulate) {
    PolicyEngine engine;
    Rule rule;
    rule.name = "deny-ssh";
    rule.action = Action::kDeny;
    rule.dst_port = 22;
    ASSERT_TRUE(engine.add_rule(rule).is_ok());
    (void)engine.classify(tuple(1, 2, 3, 22));
    (void)engine.classify(tuple(1, 2, 3, 22));
    (void)engine.classify(tuple(1, 2, 3, 80));
    EXPECT_EQ(engine.stats().by_action.at(static_cast<u8>(Action::kDeny)), 2u);
    EXPECT_EQ(engine.stats().by_action.at(static_cast<u8>(Action::kPermit)), 1u);
}

TEST(Policy, ActionNames) {
    EXPECT_STREQ(to_string(Action::kPermit), "permit");
    EXPECT_STREQ(to_string(Action::kDeny), "deny");
    EXPECT_STREQ(to_string(Action::kRateLimit), "rate-limit");
    EXPECT_STREQ(to_string(Action::kMirror), "mirror");
    EXPECT_STREQ(to_string(Action::kLog), "log");
}

}  // namespace
}  // namespace flowcam::classifier
