// Overload-governor coverage: opt-in byte-identity (governor off — even
// with every other governor.* knob patched — must not perturb a run),
// repeat- and lane/thread-count invariance of the transition counters, the
// forced L0 -> L3 -> L0 round trip under a correlated fault campaign with
// the invariant auditor green, and the unified (table OR CAM) pressure
// definition behind lut.admission_pressure.
#include <gtest/gtest.h>

#include <string>

#include "core/flow_lut.hpp"
#include "net/trace.hpp"
#include "shard/sharded_engine.hpp"
#include "workload/metrics.hpp"
#include "workload/runner.hpp"

namespace flowcam::workload {
namespace {

std::string all_metrics(const ScenarioMetrics& metrics) {
    return metrics_json_object(metrics, {});
}

/// Small geometry + a windowed syn_flood overlay: the flood saturates the
/// table inside the window, the 1e6x time compression lets the one-shot
/// flood entries hit the 30 s idle timeout mid-run, and the post-window
/// tail gives the governor room to walk back down to L0 before the drain.
constexpr char kWindowedFlood[] = "baseline+syn_flood@onset=0.1,offset=0.45,attack=0.9";
constexpr u64 kPackets = 8'000;

ScenarioConfig windowed_scenario(u64 seed = 2014) {
    ScenarioConfig config;
    config.seed = seed;
    config.pool_size = 256;  // background stays small; pressure is the flood.
    config.horizon_packets = kPackets;
    return config;
}

RunnerConfig governed_runner() {
    RunnerConfig config;
    config.packets = kPackets;
    config.analyzer.lut.buckets_per_mem = 256;
    config.analyzer.lut.cam_capacity = 128;
    config.time_scale = 1e6;  // idle flood entries expire mid-run.
    config.governor.on = true;
    config.governor.interval = 128;
    config.governor.dwell = 512;
    config.governor.recovery_budget = 20'000;
    return config;
}

/// The correlated campaign: two windows inside / just after the attack
/// window, every fault family boosted to 0.2 together, auditor armed.
void arm_campaign(RunnerConfig& config) {
    config.fault.audit = true;
    config.fault.campaign_onset = 2'000;
    config.fault.campaign_len = 1'500;
    config.fault.campaign_period = 3'000;
    config.fault.campaign_count = 2;
    config.fault.campaign_intensity = 0.2;
}

ScenarioMetrics run_windowed(const RunnerConfig& config, u64 seed = 2014) {
    ScenarioRunner runner(config);
    auto result = runner.run(kWindowedFlood, windowed_scenario(seed));
    EXPECT_TRUE(result) << result.status().to_string();
    return result ? std::move(result.value()) : ScenarioMetrics{};
}

TEST(GovernorTest, OffIsByteIdenticalEvenWithOtherKnobsPatched) {
    RunnerConfig plain;
    plain.packets = 2'000;
    plain.analyzer.lut.buckets_per_mem = 256;
    plain.analyzer.lut.cam_capacity = 128;

    // Same run with every governor knob moved but the master switch off:
    // no governor, no ticker, no policy override — byte-identical rows.
    RunnerConfig patched = plain;
    patched.governor.interval = 64;
    patched.governor.dwell = 1;
    patched.governor.enter_l1 = 0.01;
    patched.governor.enter_l2 = 0.02;
    patched.governor.enter_l3 = 0.03;
    patched.governor.eviction = core::EvictionPolicy::kLru;
    ASSERT_FALSE(patched.governor.on);

    ScenarioConfig scenario;
    scenario.attack_fraction = 0.6;
    scenario.onset_packets = 200;
    ScenarioRunner a(plain);
    ScenarioRunner b(patched);
    auto first = a.run("syn_flood", scenario);
    auto second = b.run("syn_flood", scenario);
    ASSERT_TRUE(first);
    ASSERT_TRUE(second);
    EXPECT_EQ(all_metrics(first.value()), all_metrics(second.value()));
    EXPECT_EQ(first.value().governor_transitions, 0u);
    EXPECT_EQ(first.value().governor_slo_ok, 1u);  // trivially met when off.
}

TEST(GovernorTest, RoundTripUnderCorrelatedCampaignRecoversWithAuditorGreen) {
    RunnerConfig config = governed_runner();
    arm_campaign(config);

    const ScenarioMetrics metrics = run_windowed(config);
    EXPECT_TRUE(metrics.drained);
    EXPECT_EQ(metrics.completions, metrics.packets);

    // The campaign fired, correlated: multiple fault families injected.
    EXPECT_GE(metrics.fault_campaign_windows, 1u);
    EXPECT_GT(metrics.faults_injected, 0u);

    // Forced round trip: the flood saturates the table (L3), the window
    // closes, entries expire, and the governor must walk all the way back.
    EXPECT_EQ(metrics.governor_max_level, 3u) << all_metrics(metrics);
    EXPECT_EQ(metrics.governor_final_level, 0u) << all_metrics(metrics);
    EXPECT_GE(metrics.governor_transitions, 4u);  // >= 1 up + 3 down.
    EXPECT_EQ(metrics.governor_slo_ok, 1u)
        << "recovery took " << metrics.governor_recovery_cycles << " cycles";

    // Degradation did real work and the conservation laws all held.
    EXPECT_GT(metrics.admission_rejects, 0u);
    EXPECT_EQ(metrics.audit_violations, 0u);
}

TEST(GovernorTest, ChurnDeletesRacingTheMatchQueueLeaveNoGhostRecords) {
    // Regression: a churn delete's functional erase can land while a read
    // response for the same bucket sits in the match queue (fault-induced
    // multi-response cycles create the dwell). The stale-data match used to
    // resurrect the exported flow record — a ghost the final audit flags.
    // fault.seed 64023 with this exact geometry reproduced it.
    RunnerConfig config = governed_runner();
    arm_campaign(config);
    config.fault.seed = 64023;

    ScenarioRunner runner(config);
    auto result = runner.run("churn+syn_flood@onset=0.1,offset=0.45,attack=0.9",
                             windowed_scenario());
    ASSERT_TRUE(result) << result.status().to_string();
    const ScenarioMetrics& metrics = result.value();
    EXPECT_TRUE(metrics.drained);
    EXPECT_EQ(metrics.audit_violations, 0u) << all_metrics(metrics);
    EXPECT_EQ(metrics.governor_max_level, 3u);
    EXPECT_EQ(metrics.governor_final_level, 0u);
    EXPECT_EQ(metrics.governor_slo_ok, 1u);
}

TEST(GovernorTest, TransitionCountersAreRepeatInvariant) {
    RunnerConfig config = governed_runner();
    arm_campaign(config);
    const ScenarioMetrics first = run_windowed(config);
    const ScenarioMetrics second = run_windowed(config);
    EXPECT_EQ(all_metrics(first), all_metrics(second));
    EXPECT_GT(first.governor_transitions, 0u);
}

TEST(GovernorTest, ShardedGovernorIsLaneAndThreadCountInvariant) {
    RunnerConfig config = governed_runner();
    arm_campaign(config);
    // Slices see 1/8 of the flood against 1/8 of the capacity, so per-slice
    // governors escalate too; the merge must not depend on lane grouping or
    // thread scheduling.
    const auto run_lanes = [&](u32 lanes, std::size_t jobs) {
        RunnerConfig sharded = config;
        sharded.shard.lanes = lanes;
        sharded.shard.jobs = jobs;
        shard::ShardedEngine engine(sharded);
        auto result = engine.run(kWindowedFlood, windowed_scenario());
        EXPECT_TRUE(result) << result.status().to_string();
        return result ? std::move(result.value()) : ScenarioMetrics{};
    };
    const ScenarioMetrics lanes2 = run_lanes(2, 1);
    const ScenarioMetrics lanes4 = run_lanes(4, 4);
    const ScenarioMetrics lanes8 = run_lanes(8, 3);
    EXPECT_EQ(all_metrics(lanes2), all_metrics(lanes4));
    EXPECT_EQ(all_metrics(lanes4), all_metrics(lanes8));
    EXPECT_GT(lanes4.governor_transitions, 0u);
    EXPECT_EQ(lanes4.audit_violations, 0u);
    EXPECT_TRUE(lanes4.drained);
}

TEST(GovernorTest, AdmissionPressureCountsCollisionCamOccupancy) {
    // A saturated collision CAM must register as pressure even while the
    // whole table is nearly empty: 8/16 CAM entries is 0.5 of the CAM but
    // only ~0.1% of the 8k+16 total capacity.
    core::FlowLutConfig config;
    config.buckets_per_mem = 1024;
    config.cam_capacity = 16;
    config.admission_pressure = 0.5;
    core::FlowLut lut(config);
    EXPECT_FALSE(lut.under_pressure());
    for (u64 slot = 0; slot < 8; ++slot) {
        const core::FlowKey key(
            net::NTuple::from_five_tuple(net::synth_tuple(static_cast<u32>(slot), 4)));
        const Status status = lut.table().insert_at(
            TableIndex{TableIndex::Where::kCam, slot}, key.view(), slot + 1);
        ASSERT_TRUE(status.is_ok()) << status.to_string();
    }
    EXPECT_TRUE(lut.under_pressure())
        << "CAM at 50% must engage admission policies under the unified "
           "pressure definition";
}

}  // namespace
}  // namespace flowcam::workload
