// Simulation-kernel tests: two-phase FIFO visibility, statistics
// primitives, and engine clock-domain interleaving.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/fifo.hpp"
#include "sim/stats.hpp"

namespace flowcam::sim {
namespace {

TEST(Fifo, PushNotVisibleUntilCommit) {
    Fifo<int> fifo(4);
    ASSERT_TRUE(fifo.push(1));
    EXPECT_TRUE(fifo.empty());          // not yet committed
    EXPECT_EQ(fifo.staged_size(), 1u);
    fifo.commit();
    EXPECT_FALSE(fifo.empty());
    EXPECT_EQ(fifo.pop(), 1);
}

TEST(Fifo, CapacityCountsStagedPlusCommitted) {
    Fifo<int> fifo(2);
    ASSERT_TRUE(fifo.push(1));
    ASSERT_TRUE(fifo.push(2));
    EXPECT_FALSE(fifo.can_push());
    EXPECT_FALSE(fifo.push(3));  // full including staged
    fifo.commit();
    EXPECT_FALSE(fifo.can_push());
    (void)fifo.pop();
    EXPECT_TRUE(fifo.can_push());
}

TEST(Fifo, FifoOrderPreserved) {
    Fifo<int> fifo(16);
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(fifo.push(i));
    fifo.commit();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(fifo.pop(), i);
}

TEST(Fifo, CountersTrackTraffic) {
    Fifo<int> fifo(8);
    ASSERT_TRUE(fifo.push(1));
    ASSERT_TRUE(fifo.push(2));
    fifo.commit();
    (void)fifo.pop();
    EXPECT_EQ(fifo.total_pushed(), 2u);
    EXPECT_EQ(fifo.total_popped(), 1u);
}

TEST(Fifo, TryPopOnEmptyIsNull) {
    Fifo<int> fifo(2);
    EXPECT_FALSE(fifo.try_pop().has_value());
}

TEST(Counter, IncrementAndReset) {
    Counter counter;
    counter.inc();
    counter.inc(4);
    EXPECT_EQ(counter.value(), 5u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Accumulator, Summary) {
    Accumulator acc;
    acc.add(1.0);
    acc.add(3.0);
    acc.add(2.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(Accumulator, EmptyIsZero) {
    Accumulator acc;
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 0.0);
    EXPECT_DOUBLE_EQ(acc.max(), 0.0);
}

TEST(HistogramTest, BucketsAndPercentiles) {
    Histogram histogram(10.0, 10);  // buckets of width 10 up to 100.
    for (int i = 0; i < 100; ++i) histogram.add(static_cast<double>(i));
    EXPECT_EQ(histogram.summary().count(), 100u);
    // p50 should be near 50, bucket-granular.
    EXPECT_NEAR(histogram.percentile(0.5), 50.0, 10.0);
    EXPECT_NEAR(histogram.percentile(0.99), 100.0, 10.0);
}

TEST(HistogramTest, OverflowBucketCatchesTail) {
    Histogram histogram(1.0, 4);
    histogram.add(1000.0);
    EXPECT_EQ(histogram.bucket(histogram.bucket_count() - 1), 1u);
}

TEST(UtilizationMeterTest, RatioOfBusyCycles) {
    UtilizationMeter meter;
    meter.start_window(0);
    meter.mark_busy(0, 4);
    meter.observe(10);
    EXPECT_DOUBLE_EQ(meter.utilization(), 0.4);
}

TEST(MegaPerSecond, ConvertsCorrectly) {
    // 100 events over 200 cycles at 200 MHz = 1 event/ns / ... :
    // 200 cycles at 200 MHz = 1 us; 100 events / 1 us = 100 Mevents/s.
    EXPECT_DOUBLE_EQ(mega_per_second(100, 200, 200e6), 100.0);
    EXPECT_DOUBLE_EQ(mega_per_second(0, 100, 200e6), 0.0);
    EXPECT_DOUBLE_EQ(mega_per_second(100, 0, 200e6), 0.0);
}

class CycleRecorder final : public Ticker {
  public:
    explicit CycleRecorder(std::string name) : name_(std::move(name)) {}
    void tick(Cycle now) override { cycles.push_back(now); }
    [[nodiscard]] std::string name() const override { return name_; }
    std::vector<Cycle> cycles;

  private:
    std::string name_;
};

TEST(EngineTest, TicksInRegistrationOrder) {
    Engine engine;
    CycleRecorder first("first");
    CycleRecorder second("second");
    engine.add(first);
    engine.add(second);
    engine.run(3);
    EXPECT_EQ(first.cycles, (std::vector<Cycle>{0, 1, 2}));
    EXPECT_EQ(second.cycles, (std::vector<Cycle>{0, 1, 2}));
    EXPECT_EQ(engine.now(), 3u);
}

TEST(EngineTest, FastClockDomainTicksNTimes) {
    Engine engine;
    CycleRecorder fast("fast");
    engine.add(fast, 4);
    engine.run(2);
    // 4 ticks per system cycle with sub-cycle numbering.
    EXPECT_EQ(fast.cycles, (std::vector<Cycle>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EngineTest, CommitHooksRunEachCycle) {
    Engine engine;
    int commits = 0;
    engine.add_commit(&commits, [](void* counter) { ++*static_cast<int*>(counter); });
    engine.run(5);
    EXPECT_EQ(commits, 5);
}

TEST(EngineTest, MemberCommitHookRuns) {
    Engine engine;
    Fifo<int> fifo(4);
    engine.add_commit<&Fifo<int>::commit>(fifo);
    ASSERT_TRUE(fifo.push(7));
    EXPECT_TRUE(fifo.empty());  // staged only; visible after the cycle.
    engine.run(1);
    EXPECT_EQ(fifo.size(), 1u);
}

namespace {

/// Ticker that is only busy every `period` cycles — exercises the engine's
/// batched fast-forward (idle_cycles_hint/skip contract).
class PeriodicTicker final : public Ticker {
  public:
    explicit PeriodicTicker(Cycle period) : period_(period) {}
    void tick(Cycle now) override {
        last_now_ = now;
        ++ticks;
        if (now % period_ == 0) ++busy_ticks;
    }
    [[nodiscard]] std::string name() const override { return "periodic"; }
    [[nodiscard]] u64 idle_cycles_hint() const override {
        const Cycle next = last_now_ + 1;
        return (period_ - (next % period_)) % period_;
    }
    void skip(u64 cycles) override { last_now_ += cycles; }

    Cycle period_;
    Cycle last_now_ = 0;
    u64 ticks = 0;
    u64 busy_ticks = 0;
};

}  // namespace

TEST(EngineTest, FastForwardSkipsProvablyIdleCycles) {
    Engine engine;
    PeriodicTicker ticker(10);
    engine.add(ticker);
    engine.run(100);
    EXPECT_EQ(engine.now(), 100u);       // time still advances fully...
    EXPECT_EQ(ticker.busy_ticks, 10u);   // ...every busy cycle was executed...
    EXPECT_EQ(ticker.ticks, 10u);        // ...and only the busy ones ticked.
}

TEST(EngineTest, CommitHookWithoutIdleContractPinsFastForward) {
    Engine engine;
    PeriodicTicker ticker(10);
    Fifo<int> fifo(4);
    engine.add(ticker);
    engine.add_commit<&Fifo<int>::commit>(fifo);  // no idle companion
    engine.run(100);
    EXPECT_EQ(ticker.ticks, 100u);  // every cycle ran: the hook has no contract.
}

TEST(EngineTest, CommitHookWithIdleCompanionStillFastForwards) {
    Engine engine;
    PeriodicTicker ticker(10);
    Fifo<int> fifo(4);
    engine.add(ticker);
    engine.add_commit<&Fifo<int>::commit, &Fifo<int>::commit_idle>(fifo);
    engine.run(100);
    EXPECT_EQ(engine.now(), 100u);
    EXPECT_EQ(ticker.busy_ticks, 10u);
    EXPECT_EQ(ticker.ticks, 10u);  // idle stretches were skipped despite the hook.
}

TEST(EngineTest, StagedEntryBlocksCommitHookFastForward) {
    Engine engine;
    PeriodicTicker ticker(10);
    Fifo<int> fifo(4);
    engine.add(ticker);
    engine.add_commit<&Fifo<int>::commit, &Fifo<int>::commit_idle>(fifo);
    ASSERT_TRUE(fifo.push(7));  // staged: the very next commit is not a no-op.
    engine.run(1);
    EXPECT_EQ(fifo.size(), 1u);  // the hook ran (not skipped) and committed.
    // Committed-but-unconsumed entries do not stage anything, so the engine
    // may fast-forward again; only tickers decide busyness from here:
    // cycle 1 runs once, then every idle stretch is skipped (ticks only at
    // the 10 busy cycles 0, 10, ..., 90 plus cycles 0 and 1 above).
    engine.run(99);
    EXPECT_EQ(ticker.busy_ticks, 10u);
    EXPECT_EQ(ticker.ticks, 11u);
}

TEST(EngineTest, RunUntilStopsEarly) {
    Engine engine;
    CycleRecorder ticker("t");
    engine.add(ticker);
    const bool fired = engine.run_until([&] { return engine.now() >= 3; }, 100);
    EXPECT_TRUE(fired);
    EXPECT_EQ(engine.now(), 3u);
}

TEST(EngineTest, RunUntilBudgetExhausted) {
    Engine engine;
    const bool fired = engine.run_until([] { return false; }, 10);
    EXPECT_FALSE(fired);
    EXPECT_EQ(engine.now(), 10u);
}

}  // namespace
}  // namespace flowcam::sim
