// CAM and TCAM substrate tests: exact-match semantics, capacity handling,
// slot management (priority-encoder behaviour), statistics, and ternary
// wildcard matching with priorities.
#include <gtest/gtest.h>

#include <vector>

#include "cam/cam.hpp"
#include "cam/tcam.hpp"
#include "common/rng.hpp"

namespace flowcam::cam {
namespace {

std::vector<u8> key_of(u64 value) {
    std::vector<u8> key(13, 0);
    for (int i = 0; i < 8; ++i) key[i] = static_cast<u8>(value >> (8 * i));
    return key;
}

TEST(CamTest, InsertLookupRoundtrip) {
    Cam cam(16);
    const auto key = key_of(1);
    ASSERT_TRUE(cam.insert(key, 111).is_ok());
    const auto hit = cam.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 111u);
}

TEST(CamTest, MissingKeyIsMiss) {
    Cam cam(16);
    EXPECT_FALSE(cam.lookup(key_of(42)).has_value());
}

TEST(CamTest, DuplicateInsertRejected) {
    Cam cam(16);
    ASSERT_TRUE(cam.insert(key_of(1), 1).is_ok());
    const Status status = cam.insert(key_of(1), 2);
    EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
    EXPECT_EQ(*cam.lookup(key_of(1)), 1u);  // payload unchanged
}

TEST(CamTest, CapacityExceeded) {
    Cam cam(4);
    for (u64 i = 0; i < 4; ++i) ASSERT_TRUE(cam.insert(key_of(i), i).is_ok());
    EXPECT_TRUE(cam.full());
    const Status status = cam.insert(key_of(99), 99);
    EXPECT_EQ(status.code(), StatusCode::kCapacityExceeded);
    EXPECT_EQ(cam.stats().insert_failures, 1u);
}

TEST(CamTest, EraseFreesSlot) {
    Cam cam(2);
    ASSERT_TRUE(cam.insert(key_of(1), 1).is_ok());
    ASSERT_TRUE(cam.insert(key_of(2), 2).is_ok());
    ASSERT_TRUE(cam.erase(key_of(1)).is_ok());
    EXPECT_FALSE(cam.lookup(key_of(1)).has_value());
    EXPECT_TRUE(cam.insert(key_of(3), 3).is_ok());
    EXPECT_EQ(cam.size(), 2u);
}

TEST(CamTest, EraseMissingIsNotFound) {
    Cam cam(4);
    EXPECT_EQ(cam.erase(key_of(5)).code(), StatusCode::kNotFound);
}

TEST(CamTest, PriorityEncoderAllocatesLowestSlotFirst) {
    Cam cam(8);
    ASSERT_TRUE(cam.insert(key_of(10), 10).is_ok());
    EXPECT_EQ(cam.slot_of(key_of(10)).value(), 0u);
    ASSERT_TRUE(cam.insert(key_of(11), 11).is_ok());
    EXPECT_EQ(cam.slot_of(key_of(11)).value(), 1u);
}

TEST(CamTest, NextFreeSlotPredictsInsert) {
    Cam cam(8);
    for (u64 i = 0; i < 3; ++i) ASSERT_TRUE(cam.insert(key_of(i), i).is_ok());
    const auto predicted = cam.next_free_slot();
    ASSERT_TRUE(predicted.has_value());
    ASSERT_TRUE(cam.insert(key_of(100), 100).is_ok());
    EXPECT_EQ(cam.slot_of(key_of(100)).value(), *predicted);
}

TEST(CamTest, StatsTrackOperations) {
    Cam cam(8);
    (void)cam.insert(key_of(1), 1);
    (void)cam.lookup(key_of(1));
    (void)cam.lookup(key_of(2));
    (void)cam.erase(key_of(1));
    EXPECT_EQ(cam.stats().inserts, 1u);
    EXPECT_EQ(cam.stats().lookups, 2u);
    EXPECT_EQ(cam.stats().hits, 1u);
    EXPECT_EQ(cam.stats().erases, 1u);
    EXPECT_EQ(cam.stats().peak_occupancy, 1u);
}

TEST(CamTest, ClearEmptiesEverything) {
    Cam cam(8);
    for (u64 i = 0; i < 5; ++i) ASSERT_TRUE(cam.insert(key_of(i), i).is_ok());
    cam.clear();
    EXPECT_EQ(cam.size(), 0u);
    for (u64 i = 0; i < 5; ++i) EXPECT_FALSE(cam.peek(key_of(i)).has_value());
    // Full capacity available again.
    for (u64 i = 0; i < 8; ++i) EXPECT_TRUE(cam.insert(key_of(100 + i), i).is_ok());
}

TEST(CamTest, ChurnStressKeepsConsistency) {
    Cam cam(64);
    Xoshiro256 rng(5);
    std::vector<u64> alive;
    for (int round = 0; round < 2000; ++round) {
        if (!alive.empty() && rng.chance(0.4)) {
            const std::size_t pick = rng.bounded(alive.size());
            ASSERT_TRUE(cam.erase(key_of(alive[pick])).is_ok());
            alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
        } else if (alive.size() < 64) {
            const u64 value = rng();
            if (cam.insert(key_of(value), value).is_ok()) alive.push_back(value);
        }
    }
    EXPECT_EQ(cam.size(), alive.size());
    for (const u64 value : alive) {
        const auto hit = cam.peek(key_of(value));
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(*hit, value);
    }
}

TEST(TcamTest, ExactMatchWhenFullMask) {
    Tcam tcam(8);
    TcamEntry entry;
    entry.value = CamKey::from_span(key_of(7));
    entry.mask.length = entry.value.length;
    for (u8 i = 0; i < entry.mask.length; ++i) entry.mask.bytes[i] = 0xFF;
    entry.payload = 77;
    ASSERT_TRUE(tcam.insert(entry).is_ok());
    EXPECT_EQ(tcam.lookup(key_of(7)).value(), 77u);
    EXPECT_FALSE(tcam.lookup(key_of(8)).has_value());
}

TEST(TcamTest, WildcardMatchesAnything) {
    Tcam tcam(8);
    TcamEntry wildcard;
    wildcard.value = CamKey::from_span(key_of(0));
    wildcard.mask.length = wildcard.value.length;  // all-zero mask = any
    wildcard.payload = 1;
    ASSERT_TRUE(tcam.insert(wildcard).is_ok());
    EXPECT_EQ(tcam.lookup(key_of(123)).value(), 1u);
}

TEST(TcamTest, HigherPriorityWins) {
    Tcam tcam(8);
    TcamEntry any;
    any.value = CamKey::from_span(key_of(0));
    any.mask.length = any.value.length;
    any.priority = 1;
    any.payload = 100;
    ASSERT_TRUE(tcam.insert(any).is_ok());

    TcamEntry exact;
    exact.value = CamKey::from_span(key_of(5));
    exact.mask.length = exact.value.length;
    for (u8 i = 0; i < exact.mask.length; ++i) exact.mask.bytes[i] = 0xFF;
    exact.priority = 10;
    exact.payload = 200;
    ASSERT_TRUE(tcam.insert(exact).is_ok());

    EXPECT_EQ(tcam.lookup(key_of(5)).value(), 200u);   // exact beats any
    EXPECT_EQ(tcam.lookup(key_of(6)).value(), 100u);   // falls back
}

TEST(TcamTest, EraseByValueAndMask) {
    Tcam tcam(4);
    TcamEntry entry;
    entry.value = CamKey::from_span(key_of(3));
    entry.mask.length = entry.value.length;
    ASSERT_TRUE(tcam.insert(entry).is_ok());
    EXPECT_TRUE(tcam.erase(key_of(3), std::vector<u8>(13, 0)).is_ok());
    EXPECT_EQ(tcam.size(), 0u);
}

TEST(TcamTest, CapacityAndDuplicates) {
    Tcam tcam(1);
    TcamEntry entry;
    entry.value = CamKey::from_span(key_of(1));
    entry.mask.length = entry.value.length;
    ASSERT_TRUE(tcam.insert(entry).is_ok());
    EXPECT_EQ(tcam.insert(entry).code(), StatusCode::kCapacityExceeded);
}

}  // namespace
}  // namespace flowcam::cam
