// Batched-dispatch equivalence suite: lut.batch is a host-side throughput
// lever (multi-key hashing, prefetch, deferred flow-state touches) and must
// be invisible in simulated behaviour. Every runner-level metric except
// hash_batches — cycles included — must be byte-identical between a scalar
// run (lut.batch=0) and a batched run (lut.batch=16) of the same spec:
//   * all six builtin scenarios, a composed spec, and a trace replay whose
//     IPv6 rows exercise the key_override path through the batched hasher;
//   * odd packet counts, so the last batch is partial and the drain-time
//     flush of a half-full batch is always exercised;
//   * an arm with every overload policy live (admission + LRU eviction +
//     reservations read flow state that batching defers), and a
//     buffer-storm fault arm (feed_prepared must draw the veto RNG exactly
//     like feed_record, attempt for attempt).
// Plus a direct FlowLut lockstep test on interlock-heavy traffic comparing
// the two completion streams field by field.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/flow_lut.hpp"
#include "net/trace.hpp"
#include "workload/metrics.hpp"
#include "workload/runner.hpp"

namespace flowcam::workload {
namespace {

ScenarioConfig scenario_config(u64 seed = 2014) {
    ScenarioConfig config;
    config.seed = seed;
    config.onset_packets = 500;
    config.pool_size = 256;
    config.wave_packets = 512;
    return config;
}

RunnerConfig runner_config() {
    RunnerConfig config;
    config.packets = 3001;  // odd: the final batch is partial by design.
    config.analyzer.lut.buckets_per_mem = u64{1} << 12;
    config.analyzer.lut.cam_capacity = 512;
    return config;
}

/// Render every schema field except the explicitly mode-dependent batch
/// counter; `cycles` stays in — timing equivalence is the whole point.
std::string comparable_metrics(const ScenarioMetrics& metrics) {
    std::string out;
    for (const MetricField& field : metric_schema()) {
        if (std::string(field.name) == "hash_batches") continue;
        out += std::string(field.name) + "=" + metric_json(field, metrics) + "\n";
    }
    return out;
}

void expect_equivalent(RunnerConfig config, const std::string& spec, u64 seed = 2014) {
    config.analyzer.lut.batch = 0;
    ScenarioRunner scalar(config);
    const auto scalar_result = scalar.run(spec, scenario_config(seed));
    ASSERT_TRUE(scalar_result.has_value())
        << spec << ": " << scalar_result.status().to_string();

    config.analyzer.lut.batch = 16;
    ScenarioRunner batched(config);
    const auto batched_result = batched.run(spec, scenario_config(seed));
    ASSERT_TRUE(batched_result.has_value())
        << spec << ": " << batched_result.status().to_string();

    EXPECT_EQ(comparable_metrics(scalar_result.value()),
              comparable_metrics(batched_result.value()))
        << spec;
    // The batched run really took the batched path.
    EXPECT_GT(batched_result.value().hash_batches, 0u) << spec;
    EXPECT_EQ(scalar_result.value().hash_batches, 0u) << spec;
}

TEST(BatchEquivalenceTest, EveryBuiltinScenarioIsByteIdentical) {
    for (const char* name :
         {"baseline", "syn_flood", "port_scan", "heavy_hitter", "flash_crowd", "churn"}) {
        expect_equivalent(runner_config(), name);
    }
}

TEST(BatchEquivalenceTest, SeedSweepOnTheHardestScenarios) {
    // A few extra seeds on the scenarios with the most RNG interplay
    // (spoofed floods and population churn) to vary arrival patterns.
    for (const u64 seed : {1u, 7u, 99u}) {
        expect_equivalent(runner_config(), "syn_flood", seed);
        expect_equivalent(runner_config(), "churn", seed);
    }
}

TEST(BatchEquivalenceTest, ComposedSpecIsByteIdentical) {
    expect_equivalent(runner_config(), "flash_crowd+syn_flood@onset=0.3");
}

TEST(BatchEquivalenceTest, ReplayWithIpv6KeyOverridesIsByteIdentical) {
    // IPv6 rows travel as PacketRecord::key_override (a SixTuple-backed
    // NTuple), the one key shape the batched hasher does not synthesize
    // itself — both paths must hash the override bytes.
    const std::filesystem::path trace =
        std::filesystem::path(::testing::TempDir()) / "batch-equivalence-replay.csv";
    {
        std::ofstream out(trace);
        out << "timestamp_ns,src,dst,src_port,dst_port,protocol,bytes\n";
        for (int i = 0; i < 16; ++i) {
            out << (1000 + i * 500) << ",10.0.0." << (1 + i % 4) << ",10.0.1.1," << (1024 + i)
                << ",80,tcp,200\n";
            out << (1250 + i * 500) << ",2001:db8::" << (1 + i % 8) << ",2001:db8::ffff,"
                << (2048 + i) << ",443,tcp,1500\n";
        }
    }
    RunnerConfig config = runner_config();
    config.packets = 501;  // loops the 32-row trace; odd tail again.
    expect_equivalent(config, "replay:" + trace.string());
    std::filesystem::remove(trace);
}

TEST(BatchEquivalenceTest, OverloadPoliciesStayByteIdentical) {
    // Admission, LRU eviction and reservations all read flow/table state
    // that the batched mode touches on a deferred schedule — the flush
    // points must make those reads see exactly the scalar state.
    RunnerConfig config = runner_config();
    config.analyzer.lut.cam_capacity = 64;
    config.analyzer.lut.buckets_per_mem = u64{1} << 8;  // real pressure.
    config.analyzer.lut.admission = core::AdmissionPolicy::kProbabilistic;
    config.analyzer.lut.admission_pressure = 0.5;
    config.analyzer.lut.admission_p = 0.7;
    config.analyzer.lut.eviction = core::EvictionPolicy::kLru;
    config.analyzer.lut.reservation = true;
    expect_equivalent(config, "syn_flood");
    expect_equivalent(config, "churn");
}

TEST(BatchEquivalenceTest, BufferStormFaultStaysByteIdentical) {
    // The storm veto is drawn per feed attempt from the fault RNG;
    // feed_prepared must consume that stream exactly like feed_record or
    // every later fault decision shifts.
    RunnerConfig config = runner_config();
    config.fault.buffer_storm_p = 0.01;
    config.fault.buffer_storm_len = 8;
    config.fault.audit = true;
    expect_equivalent(config, "syn_flood");
}

// ---- Direct FlowLut lockstep ------------------------------------------------

core::FlowLutConfig lut_config(u32 batch) {
    core::FlowLutConfig config;
    config.buckets_per_mem = 1 << 10;
    config.ways = 4;
    config.cam_capacity = 64;
    config.batch = batch;
    return config;
}

std::vector<core::Completion> run_keys(core::FlowLut& lut,
                                       const std::vector<net::NTuple>& keys) {
    std::vector<core::Completion> completions;
    std::size_t offered = 0;
    u64 ts = 1;
    while (offered < keys.size()) {
        if (lut.now() % 2 == 0 && lut.offer(keys[offered], ts, 64)) {
            ++offered;
            ts += 17;
        }
        lut.step();
        while (auto completion = lut.pop_completion()) completions.push_back(*completion);
    }
    EXPECT_TRUE(lut.drain());
    while (auto completion = lut.pop_completion()) completions.push_back(*completion);
    return completions;
}

TEST(BatchEquivalenceTest, FlowLutCompletionStreamsAreIdentical) {
    // Interlock-heavy traffic: a small key population makes same-flow
    // packets pile up behind in-flight lookups, so the batched waiter
    // release and deferred touches are constantly live.
    Xoshiro256 rng(99);
    std::vector<net::NTuple> keys;
    for (int i = 0; i < 3001; ++i) {
        keys.push_back(net::NTuple::from_five_tuple(net::synth_tuple(rng.bounded(40), 3)));
    }

    core::FlowLut scalar(lut_config(0));
    core::FlowLut batched(lut_config(16));
    const auto scalar_stream = run_keys(scalar, keys);
    const auto batched_stream = run_keys(batched, keys);

    ASSERT_EQ(scalar_stream.size(), batched_stream.size());
    for (std::size_t i = 0; i < scalar_stream.size(); ++i) {
        const core::Completion& a = scalar_stream[i];
        const core::Completion& b = batched_stream[i];
        EXPECT_EQ(a.seq, b.seq) << i;
        EXPECT_EQ(a.fid, b.fid) << i;
        EXPECT_EQ(a.is_new_flow, b.is_new_flow) << i;
        EXPECT_EQ(a.via_cam, b.via_cam) << i;
        EXPECT_EQ(a.retired_at, b.retired_at) << i;
        EXPECT_EQ(a.offered_at, b.offered_at) << i;
        EXPECT_EQ(a.timestamp_ns, b.timestamp_ns) << i;
        EXPECT_EQ(a.frame_bytes, b.frame_bytes) << i;
        EXPECT_EQ(a.tag, b.tag) << i;
        EXPECT_EQ(a.key.view().size(), b.key.view().size()) << i;
    }
    EXPECT_EQ(scalar.now(), batched.now());

    const core::FlowLutStats& s = scalar.stats();
    const core::FlowLutStats& t = batched.stats();
    EXPECT_EQ(s.offered, t.offered);
    EXPECT_EQ(s.dispatched, t.dispatched);
    EXPECT_EQ(s.completions, t.completions);
    EXPECT_EQ(s.cam_hits, t.cam_hits);
    EXPECT_EQ(s.lu1_hits, t.lu1_hits);
    EXPECT_EQ(s.lu2_hits, t.lu2_hits);
    EXPECT_EQ(s.resolved_inflight, t.resolved_inflight);
    EXPECT_EQ(s.new_flows, t.new_flows);
    EXPECT_EQ(s.drops, t.drops);
    EXPECT_EQ(s.deletes_applied, t.deletes_applied);
    EXPECT_EQ(s.path_dispatch[0], t.path_dispatch[0]);
    EXPECT_EQ(s.path_dispatch[1], t.path_dispatch[1]);
    EXPECT_EQ(s.table_inserts, t.table_inserts);
    EXPECT_EQ(s.table_removals, t.table_removals);

    // Table search statistics cover the speculative batched waiter search:
    // record_search must replay exactly the counters the scalar path bumps.
    EXPECT_EQ(scalar.table().stats().lookups, batched.table().stats().lookups);
    EXPECT_EQ(scalar.table().stats().hits, batched.table().stats().hits);
    EXPECT_EQ(scalar.table().stats().bucket_reads, batched.table().stats().bucket_reads);
    EXPECT_EQ(scalar.table().stats().cam_searches, batched.table().stats().cam_searches);
    EXPECT_EQ(scalar.table().stage_stats().cam_hits, batched.table().stage_stats().cam_hits);
    EXPECT_EQ(scalar.table().stage_stats().mem1_hits,
              batched.table().stage_stats().mem1_hits);
    EXPECT_EQ(scalar.table().stage_stats().mem2_hits,
              batched.table().stage_stats().mem2_hits);
    EXPECT_EQ(scalar.table().stage_stats().misses, batched.table().stage_stats().misses);
}

}  // namespace
}  // namespace flowcam::workload
