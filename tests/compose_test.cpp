// Scenario algebra tests: the composition grammar, ComposedScenario's
// windows/ramps/index remapping, IntensitySchedule boundary behavior, and
// CSV/JSONL trace replay (IPv6 included) — plus the acceptance-criterion
// determinism of composed runs through the ScenarioRunner.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "workload/compose.hpp"
#include "workload/replay.hpp"
#include "workload/runner.hpp"

namespace flowcam::workload {
namespace {

ScenarioConfig small_config(u64 seed = 2014) {
    ScenarioConfig config;
    config.seed = seed;
    config.onset_packets = 500;
    config.pool_size = 256;
    config.wave_packets = 512;
    config.horizon_packets = 8000;
    return config;
}

std::vector<net::PacketRecord> take(Scenario& scenario, u64 count) {
    std::vector<net::PacketRecord> records;
    records.reserve(count);
    for (u64 i = 0; i < count; ++i) records.push_back(scenario.next());
    return records;
}

bool is_overlay(const net::PacketRecord& record) {
    return record.flow_index >= kOverlayFlowBase;
}

// ---- IntensitySchedule ------------------------------------------------------

TEST(IntensityScheduleTest, RampEvaluatesExactlyAtBothEnds) {
    const auto ramp = IntensitySchedule::ramp(0.2, 0.8);
    EXPECT_DOUBLE_EQ(ramp.value_at(0.0), 0.2);
    EXPECT_DOUBLE_EQ(ramp.value_at(1.0), 0.8);
    EXPECT_DOUBLE_EQ(ramp.value_at(0.5), 0.5);
    // Clamped outside the knot span.
    EXPECT_DOUBLE_EQ(ramp.value_at(-1.0), 0.2);
    EXPECT_DOUBLE_EQ(ramp.value_at(2.0), 0.8);
}

TEST(IntensityScheduleTest, PulseAlternatesPlateaus) {
    const auto pulse = IntensitySchedule::pulse(0.1, 0.9, 2);
    EXPECT_DOUBLE_EQ(pulse.value_at(0.0), 0.9);   // first hi plateau.
    EXPECT_DOUBLE_EQ(pulse.value_at(0.15), 0.9);
    EXPECT_DOUBLE_EQ(pulse.value_at(0.3), 0.1);   // first lo plateau.
    EXPECT_DOUBLE_EQ(pulse.value_at(0.6), 0.9);   // second hi plateau.
    EXPECT_DOUBLE_EQ(pulse.value_at(0.8), 0.1);
}

TEST(IntensityScheduleTest, RampThreadsThroughOverlayGenerators) {
    // With a 0 -> 1 ramp the overlay share of the first post-onset quarter
    // must sit well below the last quarter's.
    ScenarioConfig config = small_config();
    config.intensity = IntensitySchedule::ramp(0.0, 1.0);
    SynFloodScenario flood(config);
    const auto stream = take(flood, config.horizon_packets);
    const u64 onset = config.onset_packets;
    const u64 quarter = (config.horizon_packets - onset) / 4;
    const auto overlay_share = [&](u64 begin, u64 end) {
        u64 overlay = 0;
        for (u64 i = begin; i < end; ++i) overlay += is_overlay(stream[i]) ? 1 : 0;
        return static_cast<double>(overlay) / static_cast<double>(end - begin);
    };
    const double early = overlay_share(onset, onset + quarter);
    const double late = overlay_share(config.horizon_packets - quarter, config.horizon_packets);
    EXPECT_LT(early, 0.25);  // ramp starts at 0.
    EXPECT_GT(late, 0.75);   // ...and ends at 1.
}

TEST(IntensityScheduleTest, BaselineIgnoresSchedules) {
    ScenarioConfig config = small_config();
    config.intensity = IntensitySchedule::ramp(1.0, 1.0);
    BaselineScenario baseline(config);
    for (const auto& record : take(baseline, 2000)) EXPECT_FALSE(is_overlay(record));
}

// ---- grammar ----------------------------------------------------------------

TEST(ComposeSpecTest, ParsesElementsWindowsAndSchedules) {
    const auto parsed =
        parse_compose_spec("flash_crowd+syn_flood@onset=0.3,offset=0.9,ramp=0.0:0.4");
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed.value().size(), 2u);
    EXPECT_EQ(parsed.value()[0].scenario, "flash_crowd");
    EXPECT_LT(parsed.value()[0].onset, 0.0);  // inherit.
    EXPECT_EQ(parsed.value()[1].scenario, "syn_flood");
    EXPECT_DOUBLE_EQ(parsed.value()[1].onset, 0.3);
    EXPECT_DOUBLE_EQ(parsed.value()[1].offset, 0.9);
    ASSERT_FALSE(parsed.value()[1].intensity.empty());
    EXPECT_DOUBLE_EQ(parsed.value()[1].intensity.value_at(0.0), 0.0);
    EXPECT_DOUBLE_EQ(parsed.value()[1].intensity.value_at(1.0), 0.4);
}

TEST(ComposeSpecTest, RejectsMalformedSpecs) {
    for (const char* spec : {"syn_flood@wat=1", "syn_flood@ramp=0.1", "syn_flood@onset",
                             "+syn_flood", "syn_flood@pulse=0:1:0"}) {
        const auto parsed = parse_compose_spec(spec);
        ASSERT_FALSE(parsed.has_value()) << spec;
        EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << spec;
    }
}

TEST(ComposeSpecTest, RejectsNonFiniteAndOutOfRangeValues) {
    // NaN never compares below the gate draw, which would silently disable
    // a track instead of erroring — these must be parse failures.
    for (const char* spec :
         {"syn_flood@ramp=nan:1", "syn_flood@onset=nan", "syn_flood@attack=inf",
          "syn_flood@attack=1.5", "syn_flood@ramp=-0.1:0.5", "syn_flood@onset=-1",
          "syn_flood@pulse=0:1:inf"}) {
        const auto parsed = parse_compose_spec(spec);
        ASSERT_FALSE(parsed.has_value()) << spec;
        EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << spec;
    }
}

TEST(MakeScenarioTest, PlainNamesStillResolveThroughTheRegistry) {
    const auto scenario = make_scenario("churn", small_config());
    ASSERT_TRUE(scenario.has_value());
    EXPECT_EQ(scenario.value()->name(), "churn");
}

TEST(MakeScenarioTest, UnknownCompositionElementIsNotFound) {
    const auto scenario = make_scenario("syn_flood+no_such@onset=0.5", small_config());
    ASSERT_FALSE(scenario.has_value());
    EXPECT_EQ(scenario.status().code(), StatusCode::kNotFound);
}

TEST(MakeScenarioTest, GrammarHelpCoversTheComposedSyntax) {
    const std::string help = compose_grammar_help();
    for (const char* token : {"onset=", "offset=", "ramp=", "pulse=", "replay:", "+"}) {
        EXPECT_NE(help.find(token), std::string::npos) << token;
    }
}

// ---- ComposedScenario -------------------------------------------------------

TEST(ComposedScenarioTest, SameSeedSameStream) {
    const std::string spec = "flash_crowd+syn_flood@onset=0.3,ramp=0.0:0.4";
    auto a = make_scenario(spec, small_config());
    auto b = make_scenario(spec, small_config());
    ASSERT_TRUE(a.has_value() && b.has_value());
    const auto stream_a = take(*a.value(), 6000);
    const auto stream_b = take(*b.value(), 6000);
    for (std::size_t i = 0; i < stream_a.size(); ++i) {
        ASSERT_EQ(stream_a[i].tuple, stream_b[i].tuple) << i;
        ASSERT_EQ(stream_a[i].timestamp_ns, stream_b[i].timestamp_ns) << i;
        ASSERT_EQ(stream_a[i].flow_index, stream_b[i].flow_index) << i;
    }
}

TEST(ComposedScenarioTest, TimestampsStrictlyIncrease) {
    auto scenario = make_scenario("churn+heavy_hitter@onset=0.5", small_config());
    ASSERT_TRUE(scenario.has_value());
    u64 previous = 0;
    for (const auto& record : take(*scenario.value(), 4000)) {
        EXPECT_GT(record.timestamp_ns, previous);
        previous = record.timestamp_ns;
    }
}

TEST(ComposedScenarioTest, TracksKeepDisjointFlowIndexRanges) {
    // syn_flood and churn both mint indices from kOverlayFlowBase; composed,
    // each track must land in its own stride so ground truth stays separable.
    auto scenario = make_scenario("syn_flood+churn", small_config());
    ASSERT_TRUE(scenario.has_value());
    std::map<u64, u64> overlay_by_track;
    for (const auto& record : take(*scenario.value(), 6000)) {
        if (!is_overlay(record)) continue;
        ++overlay_by_track[overlay_track_of(record.flow_index)];
    }
    ASSERT_EQ(overlay_by_track.size(), 2u);
    EXPECT_GT(overlay_by_track[0], 500u);
    EXPECT_GT(overlay_by_track[1], 500u);
}

TEST(ComposedScenarioTest, DuplicateGeneratorsGetIndependentSeeds) {
    // Two syn_flood tracks must attack different victims (per-track seeds).
    auto scenario = make_scenario("syn_flood+syn_flood", small_config());
    ASSERT_TRUE(scenario.has_value());
    std::map<u64, std::set<u32>> victims_by_track;
    for (const auto& record : take(*scenario.value(), 6000)) {
        if (!is_overlay(record)) continue;
        victims_by_track[overlay_track_of(record.flow_index)].insert(record.tuple.dst_ip);
    }
    ASSERT_EQ(victims_by_track.size(), 2u);
    EXPECT_EQ(victims_by_track[0].size(), 1u);
    EXPECT_EQ(victims_by_track[1].size(), 1u);
    EXPECT_NE(*victims_by_track[0].begin(), *victims_by_track[1].begin());
}

TEST(ComposedScenarioTest, OnsetAfterEndOfRunNeverFires) {
    // Onset beyond the horizon (and beyond what we draw): pure background.
    auto scenario = make_scenario("syn_flood@onset=999999", small_config());
    ASSERT_TRUE(scenario.has_value());
    for (const auto& record : take(*scenario.value(), 8000)) {
        EXPECT_FALSE(is_overlay(record));
    }
}

TEST(ComposedScenarioTest, OffsetWindowSwitchesTheTrackOff) {
    ScenarioConfig config = small_config();
    config.attack_fraction = 0.8;
    auto scenario = make_scenario("syn_flood@onset=0.25,offset=0.5", config);
    ASSERT_TRUE(scenario.has_value());
    const u64 horizon = config.horizon_packets;
    const auto stream = take(*scenario.value(), horizon);
    u64 in_window = 0;
    for (u64 i = 0; i < stream.size(); ++i) {
        const bool window = i >= horizon / 4 && i < horizon / 2;
        if (is_overlay(stream[i])) {
            EXPECT_TRUE(window) << "overlay packet outside [onset,offset) at " << i;
            ++in_window;
        }
    }
    EXPECT_GT(in_window, horizon / 8);  // ~0.8 * horizon/4 expected.
}

TEST(ComposedScenarioTest, OffsetNotAfterOnsetIsRejected) {
    const auto scenario = make_scenario("syn_flood@onset=0.5,offset=0.5", small_config());
    ASSERT_FALSE(scenario.has_value());
    EXPECT_EQ(scenario.status().code(), StatusCode::kInvalidArgument);
}

TEST(ComposedScenarioTest, BaselineElementsAreTheImplicitBackground) {
    auto composed = make_scenario("baseline+syn_flood@onset=0.25", small_config());
    ASSERT_TRUE(composed.has_value());
    auto* scenario = dynamic_cast<ComposedScenario*>(composed.value().get());
    ASSERT_NE(scenario, nullptr);
    EXPECT_EQ(scenario->track_count(), 1u);  // baseline dropped, flood kept.
}

// ---- ScenarioRunner determinism (acceptance criterion) ----------------------

RunnerConfig small_runner() {
    RunnerConfig config;
    config.packets = 3000;
    config.analyzer.lut.buckets_per_mem = u64{1} << 12;
    config.analyzer.lut.cam_capacity = 512;
    return config;
}

TEST(ComposedRunnerTest, ComposedAndRampedRunsAreByteIdenticalUnderOneSeed) {
    ScenarioRunner runner(small_runner());
    ScenarioConfig config;
    config.seed = 2014;
    config.onset_packets = 400;
    for (const char* spec :
         {"flash_crowd+syn_flood@onset=0.3", "flash_crowd+syn_flood@onset=0.3,ramp=0.0:0.4"}) {
        const auto a = runner.run(spec, config);
        const auto b = runner.run(spec, config);
        ASSERT_TRUE(a.has_value() && b.has_value()) << spec;
        EXPECT_TRUE(a.value().drained) << spec;
        EXPECT_EQ(a.value().completions, 3000u) << spec;
        EXPECT_GT(a.value().overlay_packets, 0u) << spec;
        // Byte-identical metrics: the rendered report is the full surface.
        EXPECT_EQ(a.value().to_string(), b.value().to_string()) << spec;
    }
}

TEST(ComposedRunnerTest, RampChangesTheMetricsVsConstantAttack) {
    ScenarioRunner runner(small_runner());
    ScenarioConfig config;
    const auto constant = runner.run("syn_flood", config);
    const auto ramped = runner.run("syn_flood@ramp=0.0:1.0", config);
    ASSERT_TRUE(constant.has_value() && ramped.has_value());
    EXPECT_NE(constant.value().overlay_packets, ramped.value().overlay_packets);
}

// ---- trace replay -----------------------------------------------------------

std::string write_temp(const std::string& name, const std::string& content) {
    const std::string path = testing::TempDir() + name;
    std::ofstream out(path, std::ios::trunc);
    out << content;
    return path;
}

constexpr const char* kCsvTrace =
    "# captured 5-tuples, deliberately out of order\n"
    "timestamp_ns,src,dst,src_port,dst_port,protocol,bytes\n"
    "2000,2001:db8::1,2001:db8::2,5000,443,tcp,1500\n"
    "1000,10.0.0.1,10.0.0.2,1234,80,tcp,100\n"
    "1500,10.0.0.3,10.0.0.2,999,53,udp\n"
    "3000,2001:db8::1,2001:db8::2,5000,443,6,64\n";

TEST(TraceReplayTest, CsvRoundtripSortsInternsAndLoops) {
    auto scenario = TraceReplayScenario::parse(kCsvTrace, "test.csv", ScenarioConfig{});
    ASSERT_TRUE(scenario.has_value()) << scenario.status().to_string();
    EXPECT_EQ(scenario.value()->record_count(), 4u);
    EXPECT_EQ(scenario.value()->distinct_flows(), 3u);  // the two v6 rows are one flow.
    EXPECT_EQ(scenario.value()->ipv6_records(), 2u);
    u64 previous = 0;
    std::set<u64> flows;
    for (u64 i = 0; i < 40; ++i) {  // 10 full loops: endless + monotonic.
        const auto record = scenario.value()->next();
        EXPECT_GT(record.timestamp_ns, previous);
        previous = record.timestamp_ns;
        EXPECT_LT(record.flow_index, kOverlayFlowBase);
        flows.insert(record.flow_index);
    }
    EXPECT_EQ(flows.size(), 3u);
}

TEST(TraceReplayTest, Ipv6RowsCarryTheSixTupleKey) {
    auto scenario = TraceReplayScenario::parse(kCsvTrace, "test.csv", ScenarioConfig{});
    ASSERT_TRUE(scenario.has_value());
    u64 v6 = 0, v4 = 0;
    for (u64 i = 0; i < 4; ++i) {
        const auto record = scenario.value()->next();
        if (record.key_override.empty()) {
            ++v4;
            EXPECT_NE(record.tuple.src_ip, 0u);
        } else {
            ++v6;
            EXPECT_EQ(record.key_override.size(), 37u);  // SixTuple::kKeyBytes.
            EXPECT_EQ(record.tuple.src_ip, 0u);          // no v4 address to report.
            EXPECT_EQ(record.tuple.dst_port, 443u);      // ports still feed stats.
        }
    }
    EXPECT_EQ(v6, 2u);
    EXPECT_EQ(v4, 2u);
}

TEST(TraceReplayTest, JsonlRowsParse) {
    const char* jsonl =
        "{\"ts\":10,\"src\":\"192.168.1.1\",\"dst\":\"8.8.8.8\",\"sport\":1111,"
        "\"dport\":53,\"proto\":\"udp\",\"bytes\":80}\n"
        "{\"ts\":20,\"src\":\"2001:db8::9\",\"dst\":\"2001:db8::a\",\"sport\":2,"
        "\"dport\":3,\"proto\":\"tcp\"}\n";
    auto scenario = TraceReplayScenario::parse(jsonl, "test.jsonl", ScenarioConfig{});
    ASSERT_TRUE(scenario.has_value()) << scenario.status().to_string();
    EXPECT_EQ(scenario.value()->record_count(), 2u);
    EXPECT_EQ(scenario.value()->ipv6_records(), 1u);
    const auto first = scenario.value()->next();
    EXPECT_EQ(first.tuple.dst_port, 53u);
    EXPECT_EQ(first.frame_bytes, 80u);
}

TEST(TraceReplayTest, MalformedRowsNameTheLine) {
    const auto scenario =
        TraceReplayScenario::parse("1000,10.0.0.1,2001:db8::2,1,2,tcp\n", "mixed.csv",
                                   ScenarioConfig{});
    ASSERT_FALSE(scenario.has_value());
    EXPECT_EQ(scenario.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(scenario.status().message().find("mixed.csv:1"), std::string::npos);
    EXPECT_FALSE(TraceReplayScenario::parse("", "empty.csv", ScenarioConfig{}).has_value());
}

TEST(TraceReplayTest, NegativeTimestampsAreMalformedNotWrapped) {
    // strtoull would wrap "-5" to ~2^64, teleporting the replay clock.
    const auto scenario = TraceReplayScenario::parse(
        "-5,10.0.0.1,10.0.0.2,1,2,tcp\n", "neg.csv", ScenarioConfig{});
    ASSERT_FALSE(scenario.has_value());
    EXPECT_EQ(scenario.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(scenario.status().message().find("neg.csv:1"), std::string::npos);
}

TEST(TraceReplayTest, MalformedFirstRowIsReportedNotEatenAsHeader) {
    // Only the documented header spelling is skipped; a typo'd first data
    // row must be a diagnostic, not silent data loss.
    const auto typo = TraceReplayScenario::parse(
        "12a4,10.0.0.1,10.0.0.2,80,443,tcp\n", "typo.csv", ScenarioConfig{});
    ASSERT_FALSE(typo.has_value());
    EXPECT_NE(typo.status().message().find("typo.csv:1"), std::string::npos);
    // ...while both documented header spellings still parse away cleanly.
    for (const char* header : {"timestamp_ns,src,dst,src_port,dst_port,protocol,bytes\n",
                               "ts,src,dst,sport,dport,proto\n"}) {
        const auto ok = TraceReplayScenario::parse(
            std::string(header) + "7,10.0.0.1,10.0.0.2,80,443,tcp\n", "h.csv",
            ScenarioConfig{});
        ASSERT_TRUE(ok.has_value()) << header << ok.status().to_string();
        EXPECT_EQ(ok.value()->record_count(), 1u);
    }
}

TEST(TraceReplayTest, Ipv6TraceRunsThroughTheTimedSystem) {
    const std::string path = write_temp("flowcam_replay_test.csv", kCsvTrace);
    ScenarioRunner runner(small_runner());
    const auto a = runner.run("replay:" + path, ScenarioConfig{});
    const auto b = runner.run("replay:" + path, ScenarioConfig{});
    ASSERT_TRUE(a.has_value()) << a.status().to_string();
    EXPECT_TRUE(a.value().drained);
    EXPECT_EQ(a.value().completions, 3000u);  // every looped record retires.
    EXPECT_EQ(a.value().distinct_flows, 3u);
    EXPECT_EQ(a.value().drops, 0u);
    EXPECT_EQ(a.value().to_string(), b.value().to_string());  // deterministic.
}

TEST(TraceReplayTest, MissingFileIsNotFound) {
    ScenarioRunner runner(small_runner());
    const auto result = runner.run("replay:/no/such/trace.csv", ScenarioConfig{});
    ASSERT_FALSE(result.has_value());
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// ---- replay as the composition background -----------------------------------

TEST(ReplayBackgroundTest, OverlaysRideOnTheCapturedTrace) {
    const std::string path = write_temp("flowcam_replay_bg.csv", kCsvTrace);
    ScenarioConfig config = small_config();
    config.onset_packets = 0;
    config.attack_fraction = 0.5;
    auto scenario = make_scenario("replay:" + path + "+syn_flood@onset=0.0", config);
    ASSERT_TRUE(scenario.has_value()) << scenario.status().to_string();
    EXPECT_EQ(scenario.value()->name(), "replay:" + path + "+syn_flood@onset=0.0");

    u64 previous_ns = 0;
    u64 overlay = 0, background = 0;
    std::set<u64> background_flows;
    for (const auto& record : take(*scenario.value(), 4000)) {
        EXPECT_GT(record.timestamp_ns, previous_ns);  // merged stream monotonic.
        previous_ns = record.timestamp_ns;
        if (is_overlay(record)) {
            ++overlay;
            // Track 0 owns the first overlay index range.
            EXPECT_LT(record.flow_index, kOverlayFlowBase + kOverlayTrackStride);
        } else {
            ++background;
            background_flows.insert(record.flow_index);
        }
    }
    // Ground truth stays separable: exactly the trace's flows below the
    // overlay base, and a healthy share of each source at attack=0.5.
    EXPECT_EQ(background_flows.size(), 3u);
    EXPECT_GT(overlay, 1000u);
    EXPECT_GT(background, 1000u);
}

TEST(ReplayBackgroundTest, BackgroundPacketsKeepCapturedPacing) {
    // The trace's inter-record gaps (1000/500/500/1000 ns, looped) must
    // survive composition: background timestamps advance by captured time,
    // not by the synthetic exponential clock; overlay packets slot in with
    // +1 ns nudges.
    const std::string path = write_temp("flowcam_replay_bg2.csv", kCsvTrace);
    ScenarioConfig config = small_config();
    config.attack_fraction = 0.3;
    config.onset_packets = 0;
    auto scenario = make_scenario("replay:" + path + "+syn_flood@onset=0.0", config);
    ASSERT_TRUE(scenario.has_value()) << scenario.status().to_string();
    u64 last_ns = 0;
    u64 big_gaps = 0, nudges = 0;
    for (const auto& record : take(*scenario.value(), 2000)) {
        const u64 gap = record.timestamp_ns - last_ns;
        last_ns = record.timestamp_ns;
        if (gap >= 400) ++big_gaps;    // captured spacing.
        if (gap == 1) ++nudges;        // overlay insertions.
        EXPECT_TRUE(is_overlay(record) || gap >= 1);
    }
    EXPECT_GT(big_gaps, 500u);
    EXPECT_GT(nudges, 300u);
}

TEST(ReplayBackgroundTest, DeterministicAndRejectsReplayOverlayElements) {
    const std::string path = write_temp("flowcam_replay_bg3.csv", kCsvTrace);
    ScenarioConfig config = small_config();
    auto a = make_scenario("replay:" + path + "+churn@onset=0.2", config);
    auto b = make_scenario("replay:" + path + "+churn@onset=0.2", config);
    ASSERT_TRUE(a.has_value() && b.has_value());
    for (u64 i = 0; i < 1000; ++i) {
        const auto ra = a.value()->next();
        const auto rb = b.value()->next();
        ASSERT_EQ(ra.timestamp_ns, rb.timestamp_ns);
        ASSERT_EQ(ra.flow_index, rb.flow_index);
    }
    // replay anywhere but first stays an error (only backgrounds replay).
    const auto overlay_replay = make_scenario("syn_flood+replay:" + path, config);
    ASSERT_FALSE(overlay_replay.has_value());
    EXPECT_EQ(overlay_replay.status().code(), StatusCode::kInvalidArgument);
    // ...and a missing background trace reports kNotFound, not a crash.
    EXPECT_EQ(make_scenario("replay:/no/such/file.csv+syn_flood", config).status().code(),
              StatusCode::kNotFound);
    // A '+' inside the file name keeps working un-composed: when the whole
    // path names an existing file it wins over composition splitting.
    const std::string plus_path = write_temp("flowcam_a+b.csv", kCsvTrace);
    const auto whole = make_scenario("replay:" + plus_path, config);
    ASSERT_TRUE(whole.has_value()) << whole.status().to_string();
    EXPECT_EQ(whole.value()->name(), "replay:" + plus_path);
}

TEST(ReplayBackgroundTest, TimeScaleSaturatesInsteadOfWrapping) {
    // Epoch-ns capture timestamps times a large time_scale exceed u64; the
    // source must saturate (stream degrades to +1 ns steps past the cap)
    // rather than wrap or hit cast UB.
    const std::string path = write_temp(
        "flowcam_epoch.csv",
        "timestamp_ns,src,dst,src_port,dst_port,protocol\n"
        "1750000000000000000,10.0.0.1,10.0.0.2,1,80,tcp\n"
        "1750000000500000000,10.0.0.3,10.0.0.2,2,80,tcp\n");
    RunnerConfig config = small_runner();
    config.packets = 100;
    config.time_scale = 1000.0;  // 1.75e21 ns >> 2^64.
    ScenarioRunner runner(config);
    const auto result = runner.run("replay:" + path, ScenarioConfig{});
    ASSERT_TRUE(result.has_value()) << result.status().to_string();
    EXPECT_TRUE(result.value().drained);
    // Saturated: every packet sits at the cap plus monotonic nudges, so the
    // span is tiny instead of a wrapped teleport.
    EXPECT_LT(result.value().trace_span_ns, 1'000'000u);
}

TEST(ReplayBackgroundTest, RunsEndToEndThroughTheTimedSystem) {
    const std::string path = write_temp("flowcam_replay_bg4.csv", kCsvTrace);
    ScenarioRunner runner(small_runner());
    ScenarioConfig config;
    config.attack_fraction = 0.4;
    config.onset_packets = 200;
    const auto a = runner.run("replay:" + path + "+syn_flood", config);
    const auto b = runner.run("replay:" + path + "+syn_flood", config);
    ASSERT_TRUE(a.has_value()) << a.status().to_string();
    EXPECT_TRUE(a.value().drained);
    EXPECT_EQ(a.value().completions, 3000u);
    EXPECT_GT(a.value().overlay_packets, 0u);
    EXPECT_GT(a.value().distinct_flows, 3u);  // trace flows + flood sources.
    EXPECT_EQ(a.value().to_string(), b.value().to_string());
}

}  // namespace
}  // namespace flowcam::workload
