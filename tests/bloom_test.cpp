// Bloom-filter substrate tests: the no-false-negative guarantee, measured
// vs. theoretical false-positive rates, counting deletion, and the parallel
// banked variant from the related-work papers.
#include <gtest/gtest.h>

#include <vector>

#include "bloom/bloom.hpp"
#include "common/rng.hpp"

namespace flowcam::bloom {
namespace {

std::vector<u8> key_of(u64 value) {
    std::vector<u8> key(13, 0);
    for (int i = 0; i < 8; ++i) key[i] = static_cast<u8>(value >> (8 * i));
    return key;
}

TEST(BloomMath, TheoreticalFppSane) {
    // More bits -> lower fpp; more items -> higher fpp.
    EXPECT_LT(theoretical_fpp(1 << 16, 1000, 4), theoretical_fpp(1 << 12, 1000, 4));
    EXPECT_LT(theoretical_fpp(1 << 14, 100, 4), theoretical_fpp(1 << 14, 10000, 4));
    EXPECT_DOUBLE_EQ(theoretical_fpp(0, 10, 2), 1.0);
}

TEST(BloomMath, OptimalHashCount) {
    // m/n = 16 bits per item -> k ~ 11.
    EXPECT_NEAR(optimal_hash_count(16000, 1000), 11u, 1);
    EXPECT_GE(optimal_hash_count(10, 1000000), 1u);
}

TEST(BloomFilterTest, NoFalseNegatives) {
    BloomFilter filter(1 << 14, 4);
    for (u64 i = 0; i < 1000; ++i) filter.add(key_of(i));
    for (u64 i = 0; i < 1000; ++i) {
        EXPECT_TRUE(filter.maybe_contains(key_of(i))) << i;
    }
}

TEST(BloomFilterTest, FalsePositiveRateNearTheory) {
    constexpr u64 kBits = 1 << 14;
    constexpr u64 kItems = 2000;
    constexpr u32 kHashes = 4;
    BloomFilter filter(kBits, kHashes);
    for (u64 i = 0; i < kItems; ++i) filter.add(key_of(i));

    u64 false_positives = 0;
    constexpr u64 kProbes = 20000;
    for (u64 i = 0; i < kProbes; ++i) {
        if (filter.maybe_contains(key_of(1'000'000 + i))) ++false_positives;
    }
    const double measured = static_cast<double>(false_positives) / kProbes;
    const double expected = theoretical_fpp(kBits, kItems, kHashes);
    EXPECT_NEAR(measured, expected, expected * 0.5 + 0.005);
}

TEST(BloomFilterTest, ClearResets) {
    BloomFilter filter(1 << 10, 3);
    filter.add(key_of(1));
    EXPECT_GT(filter.set_bit_count(), 0u);
    filter.clear();
    EXPECT_EQ(filter.set_bit_count(), 0u);
    EXPECT_FALSE(filter.maybe_contains(key_of(1)));
}

TEST(BloomFilterTest, RoundsBitCountToPow2) {
    BloomFilter filter(1000, 2);
    EXPECT_EQ(filter.bit_count(), 1024u);
}

TEST(CountingBloomTest, AddRemoveRestoresAbsence) {
    CountingBloom filter(1 << 12, 4);
    filter.add(key_of(7));
    EXPECT_TRUE(filter.maybe_contains(key_of(7)));
    filter.remove(key_of(7));
    EXPECT_FALSE(filter.maybe_contains(key_of(7)));
}

TEST(CountingBloomTest, RemoveKeepsOtherKeys) {
    CountingBloom filter(1 << 12, 4);
    for (u64 i = 0; i < 100; ++i) filter.add(key_of(i));
    filter.remove(key_of(50));
    for (u64 i = 0; i < 100; ++i) {
        if (i == 50) continue;
        EXPECT_TRUE(filter.maybe_contains(key_of(i))) << i;
    }
}

TEST(CountingBloomTest, SaturationIsCountedNotCorrupted) {
    CountingBloom filter(64, 1);
    // Slam one key far past the 4-bit counter max.
    for (int i = 0; i < 100; ++i) filter.add(key_of(1));
    EXPECT_GT(filter.saturation_events(), 0u);
    EXPECT_TRUE(filter.maybe_contains(key_of(1)));
    // A saturated counter must never decrement to zero.
    for (int i = 0; i < 200; ++i) filter.remove(key_of(1));
    EXPECT_TRUE(filter.maybe_contains(key_of(1)));
}

TEST(ParallelBloomTest, NoFalseNegatives) {
    ParallelBloom filter(4, 1 << 12);
    for (u64 i = 0; i < 500; ++i) filter.add(key_of(i));
    for (u64 i = 0; i < 500; ++i) {
        EXPECT_TRUE(filter.maybe_contains(key_of(i))) << i;
    }
}

TEST(ParallelBloomTest, FiltersUnknownKeys) {
    ParallelBloom filter(4, 1 << 12);
    for (u64 i = 0; i < 500; ++i) filter.add(key_of(i));
    u64 false_positives = 0;
    for (u64 i = 0; i < 5000; ++i) {
        if (filter.maybe_contains(key_of(1'000'000 + i))) ++false_positives;
    }
    // 4 banks of 4096 bits with 500 items: comfortably below 1 %.
    EXPECT_LT(false_positives, 50u);
}

TEST(ParallelBloomTest, MoreBanksLowerFpp) {
    // Equal total bit budget: 2 banks x 4096 vs 4 banks x 2048.
    ParallelBloom two(2, 1 << 12);
    ParallelBloom four(4, 1 << 11);
    for (u64 i = 0; i < 1500; ++i) {
        two.add(key_of(i));
        four.add(key_of(i));
    }
    u64 fp_two = 0;
    u64 fp_four = 0;
    for (u64 i = 0; i < 20000; ++i) {
        fp_two += two.maybe_contains(key_of(5'000'000 + i));
        fp_four += four.maybe_contains(key_of(5'000'000 + i));
    }
    // At this load (m/n ~ 5.5 bits/key) the optimum k is ~4, so the
    // 4-bank filter should beat the 2-bank one (paper's [3]-[5] argument).
    EXPECT_LT(fp_four, fp_two);
}

}  // namespace
}  // namespace flowcam::bloom
