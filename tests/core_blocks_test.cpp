// Unit tests for the Flow LUT's internal hardware blocks: the Request
// Filter's park/release hazard handling, the Bank Selector's rotation and
// ordering guarantees, and the Update block's Req_Arb + BWr_Gen batching.
#include <gtest/gtest.h>

#include <vector>

#include "core/bank_selector.hpp"
#include "core/blocks.hpp"
#include "core/req_filter.hpp"
#include "core/update_block.hpp"
#include "net/trace.hpp"

namespace flowcam::core {
namespace {

net::NTuple key_of(u64 value) {
    return net::NTuple::from_five_tuple(net::synth_tuple(value, 1));
}

TEST(ReqFilterTest, UnblockedByDefault) {
    ReqFilter<int> filter;
    EXPECT_FALSE(filter.read_blocked(0x100));
    EXPECT_FALSE(filter.delete_blocked(0x100));
}

TEST(ReqFilterTest, PendingUpdateBlocksReads) {
    ReqFilter<int> filter;
    filter.update_created(0x100);
    EXPECT_TRUE(filter.read_blocked(0x100));
    EXPECT_FALSE(filter.read_blocked(0x200));  // other addresses unaffected
    const auto released = filter.update_retired(0x100);
    EXPECT_TRUE(released.empty());
    EXPECT_FALSE(filter.read_blocked(0x100));
}

TEST(ReqFilterTest, ParkedReadsReleasedInFifoOrder) {
    ReqFilter<int> filter;
    filter.update_created(0x100);
    filter.park(0x100, 1);
    filter.park(0x100, 2);
    filter.park(0x100, 3);
    const auto released = filter.update_retired(0x100);
    EXPECT_EQ(released, (std::vector<int>{1, 2, 3}));
}

TEST(ReqFilterTest, MultiplePendingUpdatesAllMustRetire) {
    ReqFilter<int> filter;
    filter.update_created(0x100);
    filter.update_created(0x100);
    filter.park(0x100, 7);
    EXPECT_TRUE(filter.update_retired(0x100).empty());  // one still pending
    EXPECT_TRUE(filter.read_blocked(0x100));
    const auto released = filter.update_retired(0x100);
    EXPECT_EQ(released, (std::vector<int>{7}));
}

TEST(ReqFilterTest, ParkedQueueBlocksEvenAfterUpdateCountZero) {
    // Per-flow ordering: once anything is parked on an address, later reads
    // must park behind it.
    ReqFilter<int> filter;
    filter.update_created(0x100);
    filter.park(0x100, 1);
    // Blocked because parked queue is non-empty even if we ask hypothetically.
    EXPECT_TRUE(filter.read_blocked(0x100));
}

TEST(ReqFilterTest, InflightReadsBlockDeletes) {
    ReqFilter<int> filter;
    filter.read_issued(0x100);
    filter.read_issued(0x100);
    EXPECT_TRUE(filter.delete_blocked(0x100));
    filter.read_retired(0x100);
    EXPECT_TRUE(filter.delete_blocked(0x100));
    filter.read_retired(0x100);
    EXPECT_FALSE(filter.delete_blocked(0x100));
}

TEST(ReqFilterTest, StateCleanedUpWhenIdle) {
    ReqFilter<int> filter;
    filter.update_created(0x100);
    (void)filter.update_retired(0x100);
    filter.read_issued(0x200);
    filter.read_retired(0x200);
    EXPECT_EQ(filter.tracked_addresses(), 0u);
}

TEST(ReqFilterTest, ParkedTotalAccumulates) {
    ReqFilter<int> filter;
    filter.update_created(1);
    filter.park(1, 1);
    filter.park(1, 2);
    EXPECT_EQ(filter.parked_total(), 2u);
    EXPECT_EQ(filter.parked_now(), 2u);
    (void)filter.update_retired(1);
    EXPECT_EQ(filter.parked_total(), 2u);  // historical count
    EXPECT_EQ(filter.parked_now(), 0u);
}

TEST(BankSelectorTest, RotatesAcrossBanks) {
    BankSelector<int> selector(4);
    selector.push(0, 100);
    selector.push(1, 101);
    selector.push(2, 102);
    selector.push(0, 103);
    // Rotation starts after bank 0 (rotor init 0 -> first pick bank 1).
    EXPECT_EQ(selector.pop_rotating().value(), 101);
    EXPECT_EQ(selector.pop_rotating().value(), 102);
    EXPECT_EQ(selector.pop_rotating().value(), 100);
    EXPECT_EQ(selector.pop_rotating().value(), 103);
    EXPECT_FALSE(selector.pop_rotating().has_value());
}

TEST(BankSelectorTest, SameBankStaysFifo) {
    BankSelector<int> selector(8);
    for (int i = 0; i < 10; ++i) selector.push(3, i);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(selector.pop_rotating().value(), i);
}

TEST(BankSelectorTest, PeekMatchesPop) {
    BankSelector<int> selector(4);
    selector.push(2, 42);
    selector.push(3, 43);
    const int* peeked = selector.peek_rotating();
    ASSERT_NE(peeked, nullptr);
    EXPECT_EQ(*peeked, selector.pop_rotating().value());
}

TEST(BankSelectorTest, SizeAndPeakTracked) {
    BankSelector<int> selector(2);
    selector.push(0, 1);
    selector.push(1, 2);
    selector.push(0, 3);
    EXPECT_EQ(selector.size(), 3u);
    EXPECT_EQ(selector.peak_size(), 3u);
    (void)selector.pop_rotating();
    EXPECT_EQ(selector.size(), 2u);
    EXPECT_EQ(selector.peak_size(), 3u);
}

TEST(BankSelectorTest, BankModuloWraps) {
    BankSelector<int> selector(4);
    selector.push(7, 70);  // 7 % 4 == 3
    EXPECT_EQ(selector.bank_depth(3), 1u);
}

UpdateRequest insert_req(u64 key, u64 bucket) {
    UpdateRequest request;
    request.kind = UpdateKind::kInsert;
    request.key = key_of(key);
    request.bucket_index = bucket;
    return request;
}

TEST(UpdateBlockTest, ReleasesOnThreshold) {
    UpdateBlock block(4, 1000, 64);
    for (u64 i = 0; i < 3; ++i) {
        ASSERT_TRUE(block.submit(insert_req(i, i), 0));
        EXPECT_TRUE(block.release(0).empty());
    }
    ASSERT_TRUE(block.submit(insert_req(3, 3), 0));
    const auto batch = block.release(0);
    EXPECT_EQ(batch.size(), 4u);
    EXPECT_EQ(block.stats().releases_on_threshold, 1u);
    EXPECT_EQ(block.backlog(), 0u);
}

TEST(UpdateBlockTest, ReleasesOnTimeout) {
    UpdateBlock block(8, 50, 64);
    ASSERT_TRUE(block.submit(insert_req(1, 1), 10));
    EXPECT_TRUE(block.release(59).empty());
    const auto batch = block.release(60);  // 10 + 50
    EXPECT_EQ(batch.size(), 1u);
    EXPECT_EQ(block.stats().releases_on_timeout, 1u);
}

TEST(UpdateBlockTest, DuplicateKeysMerged) {
    UpdateBlock block(8, 100, 64);
    ASSERT_TRUE(block.submit(insert_req(1, 1), 0));
    ASSERT_TRUE(block.submit(insert_req(1, 1), 0));
    EXPECT_EQ(block.backlog(), 1u);
    EXPECT_EQ(block.stats().duplicates_merged, 1u);
}

TEST(UpdateBlockTest, InsertAndDeleteOfSameKeyBothKept) {
    UpdateBlock block(8, 100, 64);
    UpdateRequest del = insert_req(1, 1);
    del.kind = UpdateKind::kDelete;
    ASSERT_TRUE(block.submit(insert_req(1, 1), 0));
    ASSERT_TRUE(block.submit(del, 0));
    EXPECT_EQ(block.backlog(), 2u);  // different kinds do not merge
    EXPECT_TRUE(block.delete_pending(key_of(1).view()));
}

TEST(UpdateBlockTest, DeletePendingClearsAfterRelease) {
    UpdateBlock block(1, 100, 64);
    UpdateRequest del = insert_req(2, 2);
    del.kind = UpdateKind::kDelete;
    ASSERT_TRUE(block.submit(del, 0));
    EXPECT_TRUE(block.delete_pending(key_of(2).view()));
    (void)block.release(0);
    EXPECT_FALSE(block.delete_pending(key_of(2).view()));
}

TEST(UpdateBlockTest, FifoOrderWithinBatch) {
    UpdateBlock block(4, 100, 64);
    for (u64 i = 0; i < 4; ++i) ASSERT_TRUE(block.submit(insert_req(i, i), 0));
    const auto batch = block.release(0);
    ASSERT_EQ(batch.size(), 4u);
    for (u64 i = 0; i < 4; ++i) EXPECT_EQ(batch[i].bucket_index, i);
}

TEST(UpdateBlockTest, DepthBoundsBacklog) {
    UpdateBlock block(100, 10000, 4);
    for (u64 i = 0; i < 4; ++i) ASSERT_TRUE(block.submit(insert_req(i, i), 0));
    EXPECT_FALSE(block.can_accept());
    EXPECT_FALSE(block.submit(insert_req(99, 99), 0));
}

TEST(UpdateBlockTest, MeanBurstLengthStat) {
    UpdateBlock block(4, 1000, 64);
    for (u64 i = 0; i < 8; ++i) {
        ASSERT_TRUE(block.submit(insert_req(i, i), 0));
        (void)block.release(0);
    }
    EXPECT_DOUBLE_EQ(block.stats().mean_burst_length(), 4.0);
}

}  // namespace
}  // namespace flowcam::core
