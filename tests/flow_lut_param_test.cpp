// Parameterized property sweep of the timed Flow LUT across configuration
// space: DRAM speed grades, bucket geometry (ways/entry size), hash
// families, balancer policies and burst-write settings. Every point must
// satisfy the same invariants: all descriptors retire, FIDs agree with a
// sequential oracle, the DDR3 protocol stays clean, and per-flow order
// holds.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "core/flow_lut.hpp"
#include "net/trace.hpp"

namespace flowcam::core {
namespace {

struct SweepPoint {
    std::string label;
    FlowLutConfig config;
};

std::vector<SweepPoint> sweep_points() {
    std::vector<SweepPoint> points;
    const auto base = [] {
        FlowLutConfig config;
        config.buckets_per_mem = 1 << 9;
        config.ways = 4;
        config.cam_capacity = 128;
        return config;
    };

    for (const char* grade : {"DDR3-1066", "DDR3-1333", "DDR3-1600"}) {
        // gtest parameter names must be alphanumeric/underscore only.
        std::string label = std::string("grade_") + grade;
        for (char& c : label) {
            if (c == '-') c = '_';
        }
        SweepPoint point{std::move(label), base()};
        point.config.timings = dram::timings_by_name(grade);
        points.push_back(std::move(point));
    }
    for (const u32 ways : {1u, 2u, 8u}) {
        SweepPoint point{"ways_" + std::to_string(ways), base()};
        point.config.ways = ways;
        points.push_back(std::move(point));
    }
    {
        SweepPoint point{"entry_48B_ntuple", base()};
        point.config.entry_bytes = 48;  // room for IPv6-scale n-tuples
        points.push_back(std::move(point));
    }
    for (const auto kind :
         {hash::HashKind::kCrc32c, hash::HashKind::kMurmur3, hash::HashKind::kTabulation}) {
        SweepPoint point{std::string("hash_") + to_string(kind), base()};
        point.config.hash_kind = kind;
        points.push_back(std::move(point));
    }
    {
        SweepPoint point{"writes_unbatched", base()};
        point.config.burst_write_threshold = 1;
        points.push_back(std::move(point));
    }
    {
        SweepPoint point{"writes_heavily_batched", base()};
        point.config.burst_write_threshold = 32;
        point.config.burst_write_timeout = 512;
        points.push_back(std::move(point));
    }
    {
        SweepPoint point{"first_fit_insert", base()};
        point.config.insert_policy = InsertPolicy::kFirstFit;
        points.push_back(std::move(point));
    }
    {
        SweepPoint point{"bank_high_map", base()};
        point.config.controller.map_policy = dram::MapPolicy::kBankHigh;
        points.push_back(std::move(point));
    }
    {
        SweepPoint point{"tiny_queues", base()};
        point.config.input_depth = 4;
        point.config.lu_queue_depth = 4;
        points.push_back(std::move(point));
    }
    return points;
}

class FlowLutSweepTest : public ::testing::TestWithParam<SweepPoint> {};

INSTANTIATE_TEST_SUITE_P(ConfigSpace, FlowLutSweepTest, ::testing::ValuesIn(sweep_points()),
                         [](const auto& info) { return info.param.label; });

TEST_P(FlowLutSweepTest, InvariantsHoldUnderMixedWorkload) {
    FlowLut lut(GetParam().config);
    Xoshiro256 rng(2024);

    constexpr u64 kPackets = 1200;
    constexpr u64 kFlows = 200;
    std::vector<net::NTuple> keys;
    keys.reserve(kPackets);
    std::set<u64> distinct;
    for (u64 i = 0; i < kPackets; ++i) {
        const u64 flow = rng.bounded(kFlows);
        distinct.insert(flow);
        keys.push_back(net::NTuple::from_five_tuple(net::synth_tuple(flow, 17)));
    }

    std::vector<Completion> completions;
    u64 offered = 0;
    u64 guard = 0;
    while (offered < kPackets && guard++ < 4'000'000) {
        if (lut.offer(keys[offered], offered + 1, 64)) ++offered;
        lut.step();
        while (auto completion = lut.pop_completion()) completions.push_back(*completion);
    }
    ASSERT_EQ(offered, kPackets) << "engine stopped accepting input";
    ASSERT_TRUE(lut.drain()) << "engine failed to drain";
    while (auto completion = lut.pop_completion()) completions.push_back(*completion);

    // 1. Conservation: exactly one completion per descriptor.
    ASSERT_EQ(completions.size(), kPackets);

    // 2. Oracle agreement (in seq order).
    std::map<u64, const Completion*> by_seq;
    for (const auto& completion : completions) by_seq[completion.seq] = &completion;
    std::unordered_map<std::string, FlowId> oracle;
    for (const auto& [seq, completion] : by_seq) {
        const auto view = completion->key.view();
        std::string key(reinterpret_cast<const char*>(view.data()), view.size());
        const auto it = oracle.find(key);
        if (it == oracle.end()) {
            EXPECT_TRUE(completion->is_new_flow) << GetParam().label << " seq " << seq;
            oracle.emplace(std::move(key), completion->fid);
        } else {
            EXPECT_EQ(completion->fid, it->second) << GetParam().label << " seq " << seq;
        }
    }
    EXPECT_EQ(oracle.size(), distinct.size());
    EXPECT_EQ(lut.table().size(), distinct.size());

    // 3. Per-flow ordering in retirement order.
    std::unordered_map<std::string, u64> last_seq;
    for (const auto& completion : completions) {
        const auto view = completion.key.view();
        std::string key(reinterpret_cast<const char*>(view.data()), view.size());
        const auto it = last_seq.find(key);
        if (it != last_seq.end()) {
            EXPECT_LT(it->second, completion.seq) << GetParam().label;
        }
        last_seq[key] = completion.seq;
    }

    // 4. Protocol cleanliness on both channels.
    EXPECT_TRUE(lut.controller(Path::kA).protocol_status().is_ok())
        << lut.controller(Path::kA).protocol_status().to_string();
    EXPECT_TRUE(lut.controller(Path::kB).protocol_status().is_ok())
        << lut.controller(Path::kB).protocol_status().to_string();
}

}  // namespace
}  // namespace flowcam::core
