// Experiment grid tests: spec validation (typed ConfigPatch errors surface
// at plan time), cartesian cell expansion, the serial-vs-parallel
// byte-identity of all three schema-backed renderings, and the
// ScenarioRunner-as-one-cell-experiment equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "workload/experiment.hpp"
#include "workload/metrics.hpp"

namespace flowcam::workload {
namespace {

ExperimentSpec small_spec() {
    ExperimentSpec spec;
    spec.base.runner.packets = 2000;
    spec.base.runner.analyzer.lut.buckets_per_mem = u64{1} << 12;
    spec.base.runner.analyzer.lut.cam_capacity = 512;
    spec.base.scenario.onset_packets = 200;
    return spec;
}

TEST(SweepAxisTest, ParsesKeyAndValues) {
    const auto axis = parse_sweep_axis("lut.cam_capacity=1024,2048,4096");
    ASSERT_TRUE(axis.has_value()) << axis.status().to_string();
    EXPECT_EQ(axis.value().key, "lut.cam_capacity");
    EXPECT_EQ(axis.value().values, (std::vector<std::string>{"1024", "2048", "4096"}));
    EXPECT_FALSE(parse_sweep_axis("lut.cam_capacity").has_value());   // no '='.
    EXPECT_FALSE(parse_sweep_axis("=1,2").has_value());               // no key.
    EXPECT_FALSE(parse_sweep_axis("lut.cam_capacity=1,,2").has_value());  // empty value.
}

TEST(ExperimentTest, PlanRejectsBadSpecsWithTypedErrors) {
    ExperimentSpec empty = small_spec();
    EXPECT_FALSE(Experiment::plan(empty).has_value());  // no scenarios.

    ExperimentSpec typo = small_spec();
    typo.scenarios = {"baseline"};
    typo.axes.push_back({"lut.cam_capcity", {"1024"}});
    const auto typo_plan = Experiment::plan(typo);
    ASSERT_FALSE(typo_plan.has_value());
    EXPECT_NE(typo_plan.status().message().find("did you mean 'lut.cam_capacity'"),
              std::string::npos)
        << typo_plan.status().to_string();

    ExperimentSpec bad_value = small_spec();
    bad_value.scenarios = {"baseline"};
    bad_value.overrides = {"lut.weight_a=2.5"};
    const auto bad_plan = Experiment::plan(bad_value);
    ASSERT_FALSE(bad_plan.has_value());
    EXPECT_EQ(bad_plan.status().code(), StatusCode::kInvalidArgument);

    ExperimentSpec hollow_axis = small_spec();
    hollow_axis.scenarios = {"baseline"};
    hollow_axis.axes.push_back({"lut.cam_capacity", {}});
    EXPECT_FALSE(Experiment::plan(hollow_axis).has_value());

    // A repeated axis key would label cells with values the later axis
    // silently overwrote — reject it outright.
    ExperimentSpec duplicate = small_spec();
    duplicate.scenarios = {"baseline"};
    duplicate.axes.push_back({"lut.cam_capacity", {"256", "512"}});
    duplicate.axes.push_back({"lut.cam_capacity", {"1024", "2048"}});
    const auto duplicate_plan = Experiment::plan(duplicate);
    ASSERT_FALSE(duplicate_plan.has_value());
    EXPECT_NE(duplicate_plan.status().message().find("appears twice"), std::string::npos);
}

TEST(ExperimentTest, CellsCrossScenariosWithAxesRowMajor) {
    ExperimentSpec spec = small_spec();
    spec.scenarios = {"baseline", "syn_flood"};
    spec.axes.push_back({"lut.cam_capacity", {"512", "1024"}});
    spec.axes.push_back({"runner.cycles_per_packet", {"2", "3", "4"}});
    const auto experiment = Experiment::plan(spec);
    ASSERT_TRUE(experiment.has_value()) << experiment.status().to_string();
    const auto& cells = experiment.value().cells();
    ASSERT_EQ(cells.size(), 2u * 2u * 3u);
    // Scenarios outermost, the last axis fastest; indices are positional.
    EXPECT_EQ(cells[0].scenario, "baseline");
    EXPECT_EQ(cells[0].assignments,
              (std::vector<std::pair<std::string, std::string>>{
                  {"lut.cam_capacity", "512"}, {"runner.cycles_per_packet", "2"}}));
    EXPECT_EQ(cells[1].assignments.back().second, "3");
    EXPECT_EQ(cells[3].assignments.front().second, "1024");
    EXPECT_EQ(cells[6].scenario, "syn_flood");
    for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].index, i);
}

TEST(ExperimentTest, GridIsByteIdenticalSerialVsJobs) {
    // The acceptance criterion: table, CSV and JSONL renderings of a grid
    // run must not depend on --jobs (results land by cell index; every
    // renderer walks them in order).
    ExperimentSpec spec = small_spec();
    spec.scenarios = {"baseline", "syn_flood"};
    spec.axes.push_back({"lut.cam_capacity", {"256", "1024"}});
    const auto experiment = Experiment::plan(spec);
    ASSERT_TRUE(experiment.has_value());
    const auto serial = experiment.value().run(1);
    const auto parallel = experiment.value().run(4);
    EXPECT_EQ(experiment.value().table(serial), experiment.value().table(parallel));
    EXPECT_EQ(experiment.value().csv(serial), experiment.value().csv(parallel));
    EXPECT_EQ(experiment.value().jsonl(serial), experiment.value().jsonl(parallel));
    for (const CellResult& result : serial) {
        EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
        EXPECT_TRUE(result.metrics.drained);
        EXPECT_EQ(result.metrics.packets, 2000u);
    }
}

TEST(ExperimentTest, AxisValuesActuallyPatchEachCell) {
    // Sweeping the input pacing changes the simulated cycle count per cell;
    // cells in the same axis position are reproducible.
    ExperimentSpec spec = small_spec();
    spec.scenarios = {"baseline"};
    spec.axes.push_back({"runner.cycles_per_packet", {"2", "8"}});
    const auto experiment = Experiment::plan(spec);
    ASSERT_TRUE(experiment.has_value());
    const auto results = experiment.value().run(1);
    ASSERT_EQ(results.size(), 2u);
    ASSERT_TRUE(results[0].status.is_ok() && results[1].status.is_ok());
    // 4x slower input pacing => materially more cycles for the same packets.
    EXPECT_GT(results[1].metrics.cycles, results[0].metrics.cycles * 2);
    // Both cells saw the byte-identical offered stream (shared base seed).
    EXPECT_EQ(results[0].metrics.bytes, results[1].metrics.bytes);
    EXPECT_EQ(results[0].metrics.distinct_flows, results[1].metrics.distinct_flows);
}

TEST(ExperimentTest, FailedCellsReportTypedStatusInCellOrder) {
    ExperimentSpec spec = small_spec();
    spec.scenarios = {"baseline", "no_such_scenario"};
    const auto experiment = Experiment::plan(spec);
    ASSERT_TRUE(experiment.has_value());  // scenario specs resolve at run time.
    const auto results = experiment.value().run(2);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].status.is_ok());
    EXPECT_EQ(results[1].status.code(), StatusCode::kNotFound);
    EXPECT_EQ(results[1].metrics.scenario, "no_such_scenario");  // identifiable row.
    // The in-row status column keeps failed cells distinguishable from
    // measured zeros in the persisted grid.
    const std::string csv = experiment.value().csv(results);
    EXPECT_NE(csv.find(",status,"), std::string::npos);
    EXPECT_NE(csv.find(",ok,"), std::string::npos);
    EXPECT_NE(csv.find("not-found"), std::string::npos);
}

TEST(ExperimentTest, RunnerRunIsAOneCellExperiment) {
    ExperimentSpec spec = small_spec();
    spec.scenarios = {"syn_flood"};
    const auto experiment = Experiment::plan(spec);
    ASSERT_TRUE(experiment.has_value());
    const auto grid = experiment.value().run(1);
    ASSERT_TRUE(grid[0].status.is_ok());

    ScenarioRunner runner(small_spec().base.runner);
    const auto direct = runner.run("syn_flood", small_spec().base.scenario);
    ASSERT_TRUE(direct.has_value()) << direct.status().to_string();
    EXPECT_EQ(direct.value().to_string(), grid[0].metrics.to_string());
}

TEST(MetricSchemaTest, RenderersEmitEveryFieldOnce) {
    const auto& schema = metric_schema();
    ASSERT_GE(schema.size(), 24u);
    EXPECT_STREQ(schema.front().name, "scenario");

    ScenarioMetrics metrics;
    metrics.scenario = "probe\"quoted";
    metrics.packets = 7;
    metrics.mdesc_per_s = 1.25;
    metrics.drained = true;

    const std::string header = metrics_csv_header({"cell"});
    const std::string row = metrics_csv_row(metrics, {"0"});
    const std::string json = metrics_json_object(metrics, {{"cell", "0"}});
    for (const MetricField& field : schema) {
        EXPECT_NE(header.find(field.name), std::string::npos) << field.name;
        EXPECT_NE(json.find("\"" + std::string(field.name) + "\":"), std::string::npos)
            << field.name;
    }
    // Same column count in header and row; strings are CSV-quoted, JSON-escaped.
    EXPECT_EQ(std::count(header.begin(), header.end(), ','),
              std::count(row.begin(), row.end(), ','));
    // ...including with no lead columns and an empty scenario string (the
    // empty first cell must still be followed by its separator).
    const std::string bare_row = metrics_csv_row(ScenarioMetrics{}, {});
    const std::string bare_header = metrics_csv_header({});
    EXPECT_EQ(std::count(bare_row.begin(), bare_row.end(), ','),
              std::count(bare_header.begin(), bare_header.end(), ','));
    EXPECT_NE(row.find("\"probe\"\"quoted\""), std::string::npos);
    EXPECT_NE(json.find("probe\\\"quoted"), std::string::npos);
    EXPECT_NE(json.find("\"packets\":7"), std::string::npos);
    EXPECT_NE(json.find("\"drained\":true"), std::string::npos);
    // to_string is schema-backed too: every non-header field name appears.
    const std::string text = metrics.to_string();
    EXPECT_NE(text.find("new_flow_ratio="), std::string::npos);
    EXPECT_NE(text.find("flows_expired="), std::string::npos);
}

}  // namespace
}  // namespace flowcam::workload
