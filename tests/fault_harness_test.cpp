// Fault-injection soak: every fault family crossed with every
// admission x eviction policy pair, reservation on, invariant auditor armed.
// The contract under any injected storm: the run drains, every offered
// packet completes, and the auditor's conservation laws hold. Plus the
// prove-it test — a deliberately reintroduced PR 2-class bug (delete retry
// double-applying its Req Filter bookkeeping) must be CAUGHT by the same
// auditor that stays green on the correct code.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "workload/metrics.hpp"
#include "workload/runner.hpp"

namespace flowcam::workload {
namespace {

/// Small geometry + syn_flood = genuine overload in a few thousand packets.
RunnerConfig overload_runner() {
    RunnerConfig config;
    config.packets = 1'500;
    config.max_cycles = 5'000'000;
    config.analyzer.lut.buckets_per_mem = 256;
    config.analyzer.lut.cam_capacity = 128;
    return config;
}

ScenarioMetrics run_syn_flood(const RunnerConfig& config, double attack = 0.6) {
    ScenarioRunner runner(config);
    ScenarioConfig scenario;
    scenario.attack_fraction = attack;
    scenario.onset_packets = 200;
    auto result = runner.run("syn_flood", scenario);
    EXPECT_TRUE(result) << result.status().to_string();
    return result ? std::move(result.value()) : ScenarioMetrics{};
}

struct FaultArm {
    const char* name;
    faults::FaultConfig config;
};

/// One arm per fault family, each aggressive enough to fire many times in a
/// 1.5k-packet run. All share fault.audit = 1.
std::vector<FaultArm> fault_arms() {
    std::vector<FaultArm> arms;
    {
        faults::FaultConfig f;
        f.ddr_reject_p = 0.05;
        f.ddr_reject_len = 4;
        arms.push_back({"ddr_reject", f});
    }
    {
        faults::FaultConfig f;
        f.resp_delay_p = 0.05;
        f.resp_delay_cycles = 48;
        arms.push_back({"resp_delay", f});
    }
    {
        faults::FaultConfig f;
        f.resp_dup_p = 0.03;
        arms.push_back({"resp_dup", f});
    }
    {
        faults::FaultConfig f;
        f.buffer_storm_p = 0.01;
        f.buffer_storm_len = 8;
        arms.push_back({"buffer_storm", f});
    }
    {
        faults::FaultConfig f;
        f.expiry_skew_ns = 1'000'000;  // >> the shortened flow timeout below.
        arms.push_back({"expiry_skew", f});
    }
    for (FaultArm& arm : arms) arm.config.audit = true;
    return arms;
}

TEST(FaultHarnessTest, EveryFaultTimesEveryPolicyPairStaysGreen) {
    const std::vector<core::AdmissionPolicy> admissions = {
        core::AdmissionPolicy::kAlways, core::AdmissionPolicy::kProbabilistic,
        core::AdmissionPolicy::kRejectFull};
    const std::vector<core::EvictionPolicy> evictions = {
        core::EvictionPolicy::kNone, core::EvictionPolicy::kLru,
        core::EvictionPolicy::kCamOldest};

    for (const FaultArm& arm : fault_arms()) {
        for (const auto admission : admissions) {
            for (const auto eviction : evictions) {
                RunnerConfig config = overload_runner();
                config.fault = arm.config;
                config.analyzer.lut.admission = admission;
                config.analyzer.lut.eviction = eviction;
                config.analyzer.lut.reservation = true;
                if (arm.config.expiry_skew_ns != 0) {
                    // Make the skew bite: idle + skew crosses this timeout,
                    // so skewed expiry races live traffic all run long.
                    config.analyzer.lut.flow_timeout_ns = 200'000;
                }
                const ScenarioMetrics metrics = run_syn_flood(config);
                const std::string cell =
                    std::string(arm.name) + " x " + to_string(admission) + "/" +
                    to_string(eviction);
                EXPECT_TRUE(metrics.drained) << cell;
                EXPECT_EQ(metrics.completions, metrics.packets) << cell;
                EXPECT_EQ(metrics.audit_violations, 0u) << cell;
                // The configured fault actually fired (skew has no RNG draw
                // counter — its signature is forced expiries instead).
                if (arm.config.expiry_skew_ns != 0) {
                    EXPECT_GT(metrics.flows_expired, 0u) << cell;
                } else {
                    EXPECT_GT(metrics.faults_injected, 0u) << cell;
                }
            }
        }
    }
}

TEST(FaultHarnessTest, FixedSeedFaultScheduleIsByteIdentical) {
    // Same seed, every fault family at once, the most entangled policy mix:
    // two full runs must render byte-identical metric rows.
    RunnerConfig config = overload_runner();
    config.fault.audit = true;
    config.fault.seed = 0xd15ea5e;
    config.fault.ddr_reject_p = 0.04;
    config.fault.resp_delay_p = 0.04;
    config.fault.resp_dup_p = 0.02;
    config.fault.buffer_storm_p = 0.01;
    config.fault.expiry_skew_ns = 1'000'000;
    config.analyzer.lut.flow_timeout_ns = 200'000;
    config.analyzer.lut.admission = core::AdmissionPolicy::kProbabilistic;
    config.analyzer.lut.eviction = core::EvictionPolicy::kLru;
    config.analyzer.lut.reservation = true;

    const ScenarioMetrics first = run_syn_flood(config);
    const ScenarioMetrics second = run_syn_flood(config);
    EXPECT_EQ(first.audit_violations, 0u);
    EXPECT_GT(first.faults_injected, 0u);
    EXPECT_EQ(metrics_csv_row(first), metrics_csv_row(second))
        << "fault schedule not deterministic under a fixed seed";
}

TEST(FaultHarnessTest, AuditorCatchesAReintroducedDeleteRetryBug) {
    // The PR 2 bug class, deliberately reintroduced behind a debug flag: a
    // delete whose DDR write is rejected re-applies its Req Filter
    // bookkeeping on retry, leaking the bucket's pending-update count. DDR
    // queue-full fault bursts manufacture exactly the rejections that
    // trigger it. The control arm (same faults, bug off) must stay green —
    // that asymmetry is the evidence the harness detects this bug class.
    RunnerConfig config = overload_runner();
    config.max_cycles = 2'000'000;  // a wedged drain must not stall the test.
    config.fault.audit = true;
    config.fault.ddr_reject_p = 0.2;
    config.fault.ddr_reject_len = 6;
    config.analyzer.lut.flow_timeout_ns = 2'000;  // expire fast: many deletes
                                                  // (the 1.5k-packet stream
                                                  // spans only ~25us).
    config.analyzer.lut.controller.write_queue_depth = 2;

    RunnerConfig buggy = config;
    buggy.analyzer.lut.debug_double_apply_delete = true;

    const ScenarioMetrics green = run_syn_flood(config);
    EXPECT_TRUE(green.drained);
    EXPECT_EQ(green.audit_violations, 0u) << "control arm must be green";
    EXPECT_GT(green.faults_injected, 0u);

    const ScenarioMetrics caught = run_syn_flood(buggy);
    EXPECT_GT(caught.audit_violations, 0u)
        << "auditor failed to catch the reintroduced delete-retry leak";
}

}  // namespace
}  // namespace flowcam::workload
