// Workload subsystem tests: registry lookup + error path, determinism of
// every registered scenario under a fixed seed, per-scenario stream
// invariants (ground truth via kOverlayFlowBase indices), and the
// ScenarioRunner end-to-end through the timed Flow LUT.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "workload/registry.hpp"
#include "workload/runner.hpp"
#include "workload/scenarios.hpp"

namespace flowcam::workload {
namespace {

std::vector<net::PacketRecord> take(Scenario& scenario, u64 count) {
    std::vector<net::PacketRecord> records;
    records.reserve(count);
    for (u64 i = 0; i < count; ++i) records.push_back(scenario.next());
    return records;
}

ScenarioConfig small_config(u64 seed = 2014) {
    ScenarioConfig config;
    config.seed = seed;
    config.onset_packets = 500;
    config.pool_size = 256;
    config.wave_packets = 512;
    return config;
}

bool is_overlay(const net::PacketRecord& record) {
    return record.flow_index >= kOverlayFlowBase;
}

// ---- Registry ---------------------------------------------------------------

TEST(RegistryTest, BuiltinCatalogueIsRegistered) {
    const auto names = builtin_registry().names();
    for (const char* expected :
         {"baseline", "syn_flood", "port_scan", "heavy_hitter", "flash_crowd", "churn"}) {
        EXPECT_TRUE(builtin_registry().contains(expected)) << expected;
    }
    EXPECT_GE(names.size(), 6u);
}

TEST(RegistryTest, UnknownNameIsNotFoundWithCatalogue) {
    const auto result = builtin_registry().create("no_such_scenario", ScenarioConfig{});
    ASSERT_FALSE(result.has_value());
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
    // The error names the known catalogue so CLI typos self-diagnose.
    EXPECT_NE(result.status().message().find("syn_flood"), std::string::npos);
}

TEST(RegistryTest, CreateProducesNamedScenario) {
    const auto result = builtin_registry().create("churn", ScenarioConfig{});
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result.value()->name(), "churn");
    EXPECT_FALSE(result.value()->description().empty());
}

TEST(RegistryTest, DescribeKnownAndUnknown) {
    EXPECT_TRUE(builtin_registry().describe("baseline").has_value());
    EXPECT_EQ(builtin_registry().describe("nope").status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, LatestRegistrationWins) {
    Registry registry;
    register_builtin_scenarios(registry);
    registry.add("baseline", "override",
                 [](const ScenarioConfig& config) -> Result<std::unique_ptr<Scenario>> {
                     return std::unique_ptr<Scenario>(std::make_unique<ChurnScenario>(config));
                 });
    const auto result = registry.create("baseline", ScenarioConfig{});
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result.value()->name(), "churn");
}

// ---- Determinism (every registered scenario) --------------------------------

TEST(ScenarioDeterminismTest, SameSeedSameStream) {
    for (const auto& name : builtin_registry().names()) {
        auto a = builtin_registry().create(name, small_config());
        auto b = builtin_registry().create(name, small_config());
        ASSERT_TRUE(a.has_value() && b.has_value());
        const auto stream_a = take(*a.value(), 3000);
        const auto stream_b = take(*b.value(), 3000);
        for (std::size_t i = 0; i < stream_a.size(); ++i) {
            ASSERT_EQ(stream_a[i].tuple, stream_b[i].tuple) << name << " packet " << i;
            ASSERT_EQ(stream_a[i].timestamp_ns, stream_b[i].timestamp_ns) << name;
            ASSERT_EQ(stream_a[i].frame_bytes, stream_b[i].frame_bytes) << name;
            ASSERT_EQ(stream_a[i].flow_index, stream_b[i].flow_index) << name;
        }
    }
}

TEST(ScenarioDeterminismTest, DifferentSeedDifferentStream) {
    for (const auto& name : builtin_registry().names()) {
        auto a = builtin_registry().create(name, small_config(1));
        auto b = builtin_registry().create(name, small_config(2));
        ASSERT_TRUE(a.has_value() && b.has_value());
        const auto stream_a = take(*a.value(), 200);
        const auto stream_b = take(*b.value(), 200);
        bool any_difference = false;
        for (std::size_t i = 0; i < stream_a.size(); ++i) {
            if (!(stream_a[i].tuple == stream_b[i].tuple)) any_difference = true;
        }
        EXPECT_TRUE(any_difference) << name;
    }
}

TEST(ScenarioDeterminismTest, TimestampsStrictlyIncrease) {
    for (const auto& name : builtin_registry().names()) {
        auto scenario = builtin_registry().create(name, small_config());
        ASSERT_TRUE(scenario.has_value());
        u64 previous = 0;
        for (const auto& record : take(*scenario.value(), 2000)) {
            EXPECT_GT(record.timestamp_ns, previous) << name;
            previous = record.timestamp_ns;
        }
    }
}

TEST(ScenarioDeterminismTest, NoOverlayBeforeOnset) {
    for (const auto& name : builtin_registry().names()) {
        auto scenario = builtin_registry().create(name, small_config());
        ASSERT_TRUE(scenario.has_value());
        const auto stream = take(*scenario.value(), 500);  // == onset_packets
        for (const auto& record : stream) EXPECT_FALSE(is_overlay(record)) << name;
    }
}

// ---- Per-scenario invariants ------------------------------------------------

double distinct_flow_ratio(const std::vector<net::PacketRecord>& stream) {
    std::set<u64> flows;
    for (const auto& record : stream) flows.insert(record.flow_index);
    return static_cast<double>(flows.size()) / static_cast<double>(stream.size());
}

TEST(SynFloodTest, DrivesNewFlowRatioAboveBackground) {
    BaselineScenario baseline(small_config());
    SynFloodScenario flood(small_config());
    const auto base_stream = take(baseline, 8000);
    const auto flood_stream = take(flood, 8000);
    // Every overlay packet is a fresh flow, so the flood's distinct-flow
    // ratio must sit well above the background's decaying Fig. 6 tail.
    EXPECT_GT(distinct_flow_ratio(flood_stream), distinct_flow_ratio(base_stream) + 0.15);
}

TEST(SynFloodTest, OverlayTargetsOneVictimWithUniqueSources) {
    SynFloodScenario flood(small_config());
    std::set<u32> dst_ips;
    std::set<std::pair<u32, u16>> sources;
    u64 overlay = 0;
    for (const auto& record : take(flood, 8000)) {
        if (!is_overlay(record)) continue;
        ++overlay;
        dst_ips.insert(record.tuple.dst_ip);
        sources.insert({record.tuple.src_ip, record.tuple.src_port});
    }
    ASSERT_GT(overlay, 2000u);
    EXPECT_EQ(dst_ips.size(), 1u);
    // Spoofed sources: essentially all distinct.
    EXPECT_GT(sources.size(), overlay * 99 / 100);
}

TEST(PortScanTest, OneSourceSweepsManyPorts) {
    auto config = small_config();
    config.pool_size = 1000;  // sweep width
    PortScanScenario scan(config);
    std::set<u32> src_ips;
    std::set<u16> dst_ports;
    std::set<u32> dst_ips;
    for (const auto& record : take(scan, 8000)) {
        if (!is_overlay(record)) continue;
        src_ips.insert(record.tuple.src_ip);
        dst_ips.insert(record.tuple.dst_ip);
        dst_ports.insert(record.tuple.dst_port);
    }
    EXPECT_EQ(src_ips.size(), 1u);
    EXPECT_EQ(*src_ips.begin(), scan.scanner_ip());
    EXPECT_EQ(dst_ips.size(), 1u);
    EXPECT_GT(dst_ports.size(), 900u);  // nearly the whole sweep width.
}

TEST(HeavyHitterTest, ZipfConcentratesBytesOnTopElephant) {
    auto config = small_config();
    config.elephant_count = 64;
    HeavyHitterScenario scenario(config);
    std::map<u64, u64> overlay_bytes;
    u64 total_overlay_bytes = 0;
    for (const auto& record : take(scenario, 12000)) {
        if (!is_overlay(record)) continue;
        EXPECT_EQ(record.frame_bytes, 1500u);  // elephants send MTU frames.
        overlay_bytes[record.flow_index] += record.frame_bytes;
        total_overlay_bytes += record.frame_bytes;
    }
    ASSERT_FALSE(overlay_bytes.empty());
    u64 top = 0;
    for (const auto& [flow, bytes] : overlay_bytes) top = std::max(top, bytes);
    // Zipf(1.2) over 64 ranks gives the top elephant ~21 % of the overlay
    // bytes; a uniform draw would give ~1.6 %.
    EXPECT_GT(static_cast<double>(top) / static_cast<double>(total_overlay_bytes), 0.10);
    EXPECT_LE(overlay_bytes.size(), 64u);
}

TEST(FlashCrowdTest, ManyClientsOneService) {
    FlashCrowdScenario crowd(small_config());
    std::set<u32> src_ips;
    std::set<std::pair<u32, u16>> destinations;
    for (const auto& record : take(crowd, 8000)) {
        if (!is_overlay(record)) continue;
        src_ips.insert(record.tuple.src_ip);
        destinations.insert({record.tuple.dst_ip, record.tuple.dst_port});
    }
    EXPECT_EQ(destinations.size(), 1u);   // one victim service...
    EXPECT_GT(src_ips.size(), 100u);      // ...hit by a whole client pool.
}

TEST(ChurnTest, WavesReplaceThePopulation) {
    auto config = small_config();
    config.pool_size = 128;
    config.wave_packets = 1000;
    ChurnScenario churn(config);
    std::map<u64, std::set<u64>> flows_by_wave;
    u64 overlay_seen = 0;
    while (overlay_seen < 3000) {  // spans >= 3 waves of 1000 overlay packets.
        const auto record = churn.next();
        if (!is_overlay(record)) continue;
        flows_by_wave[overlay_seen / 1000].insert(record.flow_index);
        ++overlay_seen;
    }
    ASSERT_GE(flows_by_wave.size(), 3u);
    // Wave populations are disjoint: births and deaths, not reshuffles.
    for (const auto& flow : flows_by_wave[0]) {
        EXPECT_FALSE(flows_by_wave[1].contains(flow));
        EXPECT_FALSE(flows_by_wave[2].contains(flow));
    }
    // Each wave draws from a fresh pool of at most pool_size flows.
    for (const auto& [wave, flows] : flows_by_wave) EXPECT_LE(flows.size(), 128u) << wave;
}

// ---- ScenarioRunner end-to-end ----------------------------------------------

RunnerConfig small_runner() {
    RunnerConfig config;
    config.packets = 3000;
    config.analyzer.lut.buckets_per_mem = u64{1} << 12;
    config.analyzer.lut.cam_capacity = 512;
    return config;
}

TEST(ScenarioRunnerTest, UnknownScenarioPropagatesNotFound) {
    ScenarioRunner runner(small_runner());
    const auto result = runner.run("bogus", ScenarioConfig{});
    ASSERT_FALSE(result.has_value());
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ScenarioRunnerTest, RunsEveryBuiltinToCompletion) {
    ScenarioRunner runner(small_runner());
    for (const auto& name : builtin_registry().names()) {
        const auto result = runner.run(name, small_config());
        ASSERT_TRUE(result.has_value()) << name;
        const ScenarioMetrics& metrics = result.value();
        EXPECT_TRUE(metrics.drained) << name;
        EXPECT_EQ(metrics.packets, 3000u) << name;
        // Every offered packet retires exactly once (table-full drops retire
        // with an invalid FID and are counted separately in `drops`).
        EXPECT_EQ(metrics.completions, 3000u) << name;
        EXPECT_GT(metrics.mdesc_per_s, 0.0) << name;
        EXPECT_GT(metrics.sustained_gbps, 0.0) << name;
        EXPECT_GT(metrics.distinct_flows, 0u) << name;
    }
}

TEST(ScenarioRunnerTest, MetricsAreReproducible) {
    ScenarioRunner runner(small_runner());
    const auto a = runner.run("syn_flood", small_config());
    const auto b = runner.run("syn_flood", small_config());
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(a.value().completions, b.value().completions);
    EXPECT_EQ(a.value().cam_hits, b.value().cam_hits);
    EXPECT_EQ(a.value().lu1_hits, b.value().lu1_hits);
    EXPECT_EQ(a.value().lu2_hits, b.value().lu2_hits);
    EXPECT_EQ(a.value().new_flows, b.value().new_flows);
    EXPECT_EQ(a.value().cycles, b.value().cycles);
    EXPECT_EQ(a.value().bytes, b.value().bytes);
}

TEST(ScenarioRunnerTest, SynFloodRaisesNewFlowRatioThroughTheLut) {
    ScenarioRunner runner(small_runner());
    const auto baseline = runner.run("baseline", small_config());
    const auto flood = runner.run("syn_flood", small_config());
    ASSERT_TRUE(baseline.has_value() && flood.has_value());
    EXPECT_GT(flood.value().new_flow_ratio, baseline.value().new_flow_ratio);
}

TEST(ScenarioRunnerTest, PortScanRaisesScanEvent) {
    RunnerConfig config = small_runner();
    config.analyzer.port_scan_threshold = 64;
    ScenarioRunner runner(config);
    auto scenario_config = small_config();
    scenario_config.pool_size = 2000;
    const auto result = runner.run("port_scan", scenario_config);
    ASSERT_TRUE(result.has_value());
    EXPECT_GE(result.value().events_port_scan, 1u);
}

TEST(ScenarioRunnerTest, TimeScaleMakesChurnWavesActuallyExpire) {
    // Scenario traces span microseconds while the flow idle timeout is 30 s,
    // so housekeeping never fires in a plain run. runner.time_scale
    // multiplies offered timestamps: churn waves retire their whole overlay
    // population, those flows idle past the (scaled) timeout, and the
    // housekeeping scan must observe actual evictions.
    RunnerConfig config = small_runner();
    config.packets = 6000;
    config.time_scale = 1e6;  // ~100 us trace span -> ~100 s stream time.
    ScenarioConfig scenario = small_config();
    scenario.pool_size = 128;
    scenario.wave_packets = 256;  // many dead waves inside one run.
    scenario.attack_fraction = 0.8;
    ScenarioRunner scaled_runner(config);
    const auto scaled = scaled_runner.run("churn", scenario);
    ASSERT_TRUE(scaled.has_value()) << scaled.status().to_string();
    EXPECT_TRUE(scaled.value().drained);
    EXPECT_GT(scaled.value().flows_expired, 0u);
    EXPECT_GT(scaled.value().events_flow_expired, 0u);
    // Same run without compression: the 30 s timeout stays out of reach, so
    // any eviction here would mean the scaling leaked into unscaled runs.
    config.time_scale = 1.0;
    ScenarioRunner plain_runner(config);
    const auto plain = plain_runner.run("churn", scenario);
    ASSERT_TRUE(plain.has_value());
    EXPECT_EQ(plain.value().flows_expired, 0u);
    // Scaling does not change what is offered, only when: identical stream.
    EXPECT_EQ(plain.value().bytes, scaled.value().bytes);
    EXPECT_EQ(plain.value().distinct_flows, scaled.value().distinct_flows);
}

TEST(ScenarioRunnerTest, ParallelSweepIsByteIdenticalToSerial) {
    // The parallel sweep (one engine + Flow LUT per scenario, merged in
    // catalogue order) must produce exactly the output of a serial run —
    // this is what makes bench_scenarios' table and JSONL stream stable
    // under --jobs.
    const std::vector<std::string> names = builtin_registry().names();
    const auto sweep = [&](std::size_t jobs) {
        std::vector<std::string> rendered(names.size());
        common::ThreadPool::parallel_for_indexed(names.size(), jobs, [&](std::size_t i) {
            ScenarioRunner runner(small_runner());
            const auto result = runner.run(names[i], small_config());
            rendered[i] = result.has_value() ? result.value().to_string()
                                             : "error: " + result.status().to_string();
        });
        return rendered;
    };
    const auto serial = sweep(1);
    const auto parallel = sweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], parallel[i]) << names[i];
        EXPECT_NE(serial[i].find(names[i]), std::string::npos);
    }
}

}  // namespace
}  // namespace flowcam::workload
