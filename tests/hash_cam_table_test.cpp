// Hash-CAM table (paper Fig. 1) functional tests: three-stage short-circuit
// search order, placement policies, CAM overflow, the entry wire format the
// timed engine's Flow Match compares against, and stage statistics.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/blocks.hpp"
#include "core/hash_cam_table.hpp"
#include "net/trace.hpp"

namespace flowcam::core {
namespace {

std::vector<u8> key_of(u64 value) {
    const auto bytes = net::synth_tuple(value, 4242).key_bytes();
    return {bytes.begin(), bytes.end()};
}

FlowLutConfig small_config() {
    FlowLutConfig config;
    config.buckets_per_mem = 64;
    config.ways = 2;
    config.cam_capacity = 16;
    return config;
}

TEST(HashCam, SearchMissOnEmpty) {
    HashCamTable table(small_config());
    const SearchResult result = table.search(key_of(1));
    EXPECT_FALSE(result.hit());
    EXPECT_EQ(result.stage, MatchStage::kMiss);
    EXPECT_EQ(table.stage_stats().misses, 1u);
}

TEST(HashCam, InsertThenSearchReportsStage) {
    HashCamTable table(small_config());
    ASSERT_TRUE(table.insert(key_of(1), 11).is_ok());
    const SearchResult result = table.search(key_of(1));
    ASSERT_TRUE(result.hit());
    EXPECT_TRUE(result.stage == MatchStage::kMem1 || result.stage == MatchStage::kMem2);
    EXPECT_EQ(result.payload, 11u);
    EXPECT_TRUE(result.location.valid());
}

TEST(HashCam, CamIsSearchedFirst) {
    // A key placed in the CAM must answer at stage 1 even though a bucket
    // would also be probed later — verifies the short-circuit order.
    HashCamTable table(small_config());
    ASSERT_TRUE(table.insert_at(TableIndex{TableIndex::Where::kCam, 0}, key_of(5), 55).is_ok());
    const SearchResult result = table.search(key_of(5));
    EXPECT_EQ(result.stage, MatchStage::kCam);
    EXPECT_EQ(result.payload, 55u);
    EXPECT_EQ(table.stage_stats().cam_hits, 1u);
}

TEST(HashCam, PlacementPrefersLessLoadedBucket) {
    FlowLutConfig config = small_config();
    config.insert_policy = InsertPolicy::kLeastLoaded;
    HashCamTable table(config);
    // Fill Mem1's candidate bucket for key 1 by inserting keys that share
    // its Hash1 bucket... instead, simpler invariant: repeated inserts keep
    // both candidate buckets balanced within one entry.
    for (u64 i = 0; i < 50; ++i) ASSERT_TRUE(table.insert(key_of(i), i).is_ok());
    u64 mem1 = table.stage_stats().mem1_hits;
    for (u64 i = 0; i < 50; ++i) (void)table.search(key_of(i));
    mem1 = table.stage_stats().mem1_hits - mem1;
    // With least-loaded placement roughly half the keys live in each memory.
    EXPECT_GT(mem1, 10u);
    EXPECT_LT(mem1, 40u);
}

TEST(HashCam, FirstFitFillsMem1First) {
    FlowLutConfig config = small_config();
    config.insert_policy = InsertPolicy::kFirstFit;
    HashCamTable table(config);
    for (u64 i = 0; i < 30; ++i) ASSERT_TRUE(table.insert(key_of(i), i).is_ok());
    for (u64 i = 0; i < 30; ++i) (void)table.search(key_of(i));
    // Every key should be found in Mem1 while its bucket has room; with 64
    // buckets x 2 ways and 30 keys, collisions are rare.
    EXPECT_GT(table.stage_stats().mem1_hits, 25u);
}

TEST(HashCam, OverflowSpillsToCam) {
    FlowLutConfig config = small_config();
    config.buckets_per_mem = 1;  // everything collides
    config.ways = 2;
    config.cam_capacity = 8;
    HashCamTable table(config);
    u64 ok = 0;
    for (u64 i = 0; i < 20; ++i) ok += table.insert(key_of(i), i).is_ok();
    EXPECT_EQ(ok, 2u + 2u + 8u);  // Mem1 bucket + Mem2 bucket + CAM
    EXPECT_EQ(table.cam_entries(), 8u);
    const Status status = table.insert(key_of(100), 100);
    EXPECT_EQ(status.code(), StatusCode::kCapacityExceeded);
}

TEST(HashCam, EraseAtLocationRequiresKeyMatch) {
    HashCamTable table(small_config());
    ASSERT_TRUE(table.insert(key_of(1), 11).is_ok());
    const auto location = table.locate(key_of(1));
    ASSERT_TRUE(location.has_value());
    EXPECT_EQ(table.erase_at(*location, key_of(2)).code(), StatusCode::kNotFound);
    EXPECT_TRUE(table.erase_at(*location, key_of(1)).is_ok());
    EXPECT_FALSE(table.locate(key_of(1)).has_value());
}

TEST(HashCam, InsertAtOccupiedSlotFails) {
    HashCamTable table(small_config());
    ASSERT_TRUE(table.insert(key_of(1), 11).is_ok());
    const auto location = table.locate(key_of(1));
    ASSERT_TRUE(location.has_value());
    EXPECT_EQ(table.insert_at(*location, key_of(2), 22).code(),
              StatusCode::kFailedPrecondition);
}

TEST(HashCam, SerializeBucketMatchesWireFormat) {
    FlowLutConfig config = small_config();
    HashCamTable table(config);
    ASSERT_TRUE(table.insert(key_of(7), 77).is_ok());
    const auto location = table.locate(key_of(7));
    ASSERT_TRUE(location.has_value());
    const u32 mem = location->where == TableIndex::Where::kMem1 ? 0 : 1;
    const u64 bucket = location->slot / config.ways;

    const auto bytes = table.serialize_bucket(mem, bucket);
    ASSERT_EQ(bytes.size(), config.bucket_bytes());
    const auto way = HashCamTable::match_in_bucket_bytes(bytes, config.ways,
                                                         config.entry_bytes, key_of(7));
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(*way, static_cast<u32>(location->slot % config.ways));
    // A different key does not match the same bytes.
    EXPECT_FALSE(HashCamTable::match_in_bucket_bytes(bytes, config.ways, config.entry_bytes,
                                                     key_of(8))
                     .has_value());
}

TEST(HashCam, EmptyBucketBytesNeverMatch) {
    FlowLutConfig config = small_config();
    const std::vector<u8> empty(config.bucket_bytes(), 0);
    EXPECT_FALSE(HashCamTable::match_in_bucket_bytes(empty, config.ways, config.entry_bytes,
                                                     key_of(1))
                     .has_value());
}

TEST(HashCam, KeyLengthDiscriminates) {
    // Two keys where one is a prefix of the other must not match.
    FlowLutConfig config = small_config();
    HashCamTable table(config);
    const std::vector<u8> short_key = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
    std::vector<u8> long_key = short_key;
    long_key.push_back(14);
    ASSERT_TRUE(table.insert(short_key, 1).is_ok());
    EXPECT_FALSE(table.lookup(long_key).has_value());
    ASSERT_TRUE(table.insert(long_key, 2).is_ok());
    EXPECT_EQ(*table.lookup(short_key), 1u);
    EXPECT_EQ(*table.lookup(long_key), 2u);
}

TEST(HashCam, ChoosePlacementDoesNotMutate) {
    HashCamTable table(small_config());
    const auto placement = table.choose_placement(key_of(3));
    ASSERT_TRUE(placement.has_value());
    EXPECT_EQ(table.size(), 0u);
    EXPECT_FALSE(table.lookup(key_of(3)).has_value());
}

TEST(HashCam, BucketOccupancyTracksInserts) {
    FlowLutConfig config = small_config();
    config.buckets_per_mem = 1;
    HashCamTable table(config);
    EXPECT_EQ(table.bucket_occupancy(0, 0) + table.bucket_occupancy(1, 0), 0u);
    ASSERT_TRUE(table.insert(key_of(1), 1).is_ok());
    ASSERT_TRUE(table.insert(key_of(2), 2).is_ok());
    EXPECT_EQ(table.bucket_occupancy(0, 0) + table.bucket_occupancy(1, 0), 2u);
}

TEST(FidEncoding, RoundTripsLocations) {
    for (const auto where : {TableIndex::Where::kCam, TableIndex::Where::kMem1,
                             TableIndex::Where::kMem2}) {
        for (const u64 slot : {u64{0}, u64{1}, u64{12345}, (u64{1} << 40)}) {
            const TableIndex location{where, slot};
            const FlowId fid = make_fid(location);
            EXPECT_NE(fid, kInvalidFlowId);
            const TableIndex decoded = fid_location(fid);
            EXPECT_EQ(decoded.where, where);
            EXPECT_EQ(decoded.slot, slot);
        }
    }
}

TEST(FidEncoding, DistinctLocationsDistinctFids) {
    std::set<FlowId> fids;
    for (u64 slot = 0; slot < 1000; ++slot) {
        fids.insert(make_fid(TableIndex{TableIndex::Where::kMem1, slot}));
        fids.insert(make_fid(TableIndex{TableIndex::Where::kMem2, slot}));
        fids.insert(make_fid(TableIndex{TableIndex::Where::kCam, slot}));
    }
    EXPECT_EQ(fids.size(), 3000u);
}

}  // namespace
}  // namespace flowcam::core
