// Flow State block tests: per-flow accounting, housekeeping timeout scans
// (the source of Del_req), FID reuse after deletion, and export callbacks.
#include <gtest/gtest.h>

#include <vector>

#include "core/flow_state.hpp"
#include "net/trace.hpp"

namespace flowcam::core {
namespace {

net::NTuple key_of(u64 value) {
    return net::NTuple::from_five_tuple(net::synth_tuple(value, 2));
}

TEST(FlowStateTest, CreatesRecordOnFirstPacket) {
    FlowStateBlock state(1000, 4);
    state.on_packet(1, key_of(1), 100, 64);
    const FlowRecord* record = state.find(1);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->packets, 1u);
    EXPECT_EQ(record->bytes, 64u);
    EXPECT_EQ(record->first_ns, 100u);
    EXPECT_EQ(record->last_ns, 100u);
    EXPECT_EQ(state.active_flows(), 1u);
}

TEST(FlowStateTest, AccumulatesCounters) {
    FlowStateBlock state(1000, 4);
    state.on_packet(1, key_of(1), 100, 64);
    state.on_packet(1, key_of(1), 200, 1500);
    const FlowRecord* record = state.find(1);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->packets, 2u);
    EXPECT_EQ(record->bytes, 1564u);
    EXPECT_EQ(record->last_ns, 200u);
    EXPECT_DOUBLE_EQ(record->duration_s(), 100e-9);
}

TEST(FlowStateTest, ScanFindsExpiredFlows) {
    FlowStateBlock state(1000, 16);
    state.on_packet(1, key_of(1), 0, 64);
    state.on_packet(2, key_of(2), 500, 64);
    // At t=1200 flow 1 (idle 1200) expired, flow 2 (idle 700) not. One call
    // makes at most one pass over the ring, so flow 1 is reported once.
    const auto expired = state.scan_expired(1200);
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0].fid, 1u);
}

TEST(FlowStateTest, ExpiredFlowReReportedUntilDeleted) {
    // Housekeeping regenerates Del_req on every pass until the table entry
    // actually dies; the Update block de-duplicates. After deletion the
    // record disappears from the scan.
    FlowStateBlock state(1000, 16);
    state.on_packet(1, key_of(1), 0, 64);
    EXPECT_EQ(state.scan_expired(5000).size(), 1u);
    EXPECT_EQ(state.scan_expired(5000).size(), 1u);
    state.on_deleted(1);
    EXPECT_TRUE(state.scan_expired(5000).empty());
}

TEST(FlowStateTest, ScanIsIncremental) {
    FlowStateBlock state(10, 2);  // 2 records per scan tick
    for (u64 fid = 1; fid <= 8; ++fid) state.on_packet(fid, key_of(fid), 0, 64);
    // One tick examines only 2 records.
    const auto first = state.scan_expired(1'000'000);
    EXPECT_LE(first.size(), 2u);
}

TEST(FlowStateTest, DeleteExportsAndRemoves) {
    FlowStateBlock state(1000, 4);
    std::vector<FlowRecord> exported;
    state.set_export_callback([&](const FlowRecord& record) { exported.push_back(record); });
    state.on_packet(1, key_of(1), 0, 64);
    state.on_deleted(1);
    EXPECT_EQ(state.active_flows(), 0u);
    ASSERT_EQ(exported.size(), 1u);
    EXPECT_EQ(exported[0].fid, 1u);
    EXPECT_EQ(state.find(1), nullptr);
}

TEST(FlowStateTest, DeleteUnknownFidIsNoop) {
    FlowStateBlock state(1000, 4);
    state.on_deleted(42);
    EXPECT_EQ(state.active_flows(), 0u);
}

TEST(FlowStateTest, FidReuseByNewKeyRestartsRecord) {
    // Location-derived FIDs are reused after deletes; a different key under
    // the same FID must export the old record and start fresh.
    FlowStateBlock state(1000, 4);
    std::vector<FlowRecord> exported;
    state.set_export_callback([&](const FlowRecord& record) { exported.push_back(record); });
    state.on_packet(7, key_of(1), 0, 64);
    state.on_packet(7, key_of(1), 10, 64);
    state.on_packet(7, key_of(2), 20, 128);  // same fid, new flow
    ASSERT_EQ(exported.size(), 1u);
    EXPECT_EQ(exported[0].packets, 2u);
    const FlowRecord* record = state.find(7);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->packets, 1u);
    EXPECT_EQ(record->bytes, 128u);
    EXPECT_TRUE(record->key == key_of(2));
}

TEST(FlowStateTest, ExpiredTotalAccumulates) {
    FlowStateBlock state(100, 64);
    for (u64 fid = 1; fid <= 5; ++fid) state.on_packet(fid, key_of(fid), 0, 64);
    u64 found = 0;
    for (int tick = 0; tick < 10; ++tick) found += state.scan_expired(1'000).size();
    EXPECT_GE(found, 5u);  // scans can report a record more than once
    EXPECT_EQ(state.expired_total(), found);
}

TEST(FlowStateTest, SnapshotReturnsAllRecords) {
    FlowStateBlock state(1000, 4);
    for (u64 fid = 1; fid <= 10; ++fid) state.on_packet(fid, key_of(fid), fid, 64);
    const auto snapshot = state.snapshot();
    EXPECT_EQ(snapshot.size(), 10u);
}

TEST(FlowStateTest, ScanRingCompactsAfterDeletes) {
    FlowStateBlock state(1'000'000'000, 8);
    for (u64 fid = 1; fid <= 100; ++fid) state.on_packet(fid, key_of(fid), 0, 64);
    for (u64 fid = 1; fid <= 100; ++fid) state.on_deleted(fid);
    // Scanning an empty table must terminate and return nothing.
    for (int tick = 0; tick < 100; ++tick) {
        EXPECT_TRUE(state.scan_expired(u64{1} << 40).empty());
    }
    EXPECT_EQ(state.active_flows(), 0u);
}

}  // namespace
}  // namespace flowcam::core
