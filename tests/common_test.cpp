// Unit tests for the common substrate: bit utilities, RNG, Result/Status,
// and the bench table renderer.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/bitops.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/table_printer.hpp"

namespace flowcam {
namespace {

TEST(Bitops, IsPow2) {
    EXPECT_FALSE(is_pow2(0));
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(2));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_TRUE(is_pow2(u64{1} << 40));
    EXPECT_FALSE(is_pow2((u64{1} << 40) + 1));
}

TEST(Bitops, Log2Pow2) {
    EXPECT_EQ(log2_pow2(1), 0u);
    EXPECT_EQ(log2_pow2(2), 1u);
    EXPECT_EQ(log2_pow2(1024), 10u);
    EXPECT_EQ(log2_pow2(u64{1} << 63), 63u);
}

TEST(Bitops, CeilPow2) {
    EXPECT_EQ(ceil_pow2(0), 1u);
    EXPECT_EQ(ceil_pow2(1), 1u);
    EXPECT_EQ(ceil_pow2(3), 4u);
    EXPECT_EQ(ceil_pow2(1024), 1024u);
    EXPECT_EQ(ceil_pow2(1025), 2048u);
}

TEST(Bitops, CeilDiv) {
    EXPECT_EQ(ceil_div(0, 4), 0u);
    EXPECT_EQ(ceil_div(1, 4), 1u);
    EXPECT_EQ(ceil_div(4, 4), 1u);
    EXPECT_EQ(ceil_div(5, 4), 2u);
    EXPECT_EQ(ceil_div(64, 32), 2u);
    EXPECT_EQ(ceil_div(65, 32), 3u);
}

TEST(Bitops, BitsExtract) {
    EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bits(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(bits(0xABCD, 8, 8), 0xABu);
    EXPECT_EQ(bits(~u64{0}, 0, 64), ~u64{0});
}

TEST(Bitops, XorFold) {
    // Folding to >= 64 bits is the identity.
    EXPECT_EQ(xor_fold(0x123456789abcdef0ull, 64), 0x123456789abcdef0ull);
    // Folding to 8 bits XORs the 8 bytes together.
    u64 x = 0x0102030405060708ull;
    u64 expected = 0x01 ^ 0x02 ^ 0x03 ^ 0x04 ^ 0x05 ^ 0x06 ^ 0x07 ^ 0x08;
    EXPECT_EQ(xor_fold(x, 8), expected);
    // Result always fits the width.
    for (u32 width = 1; width < 64; ++width) {
        EXPECT_LT(xor_fold(0xdeadbeefcafebabeull, width), u64{1} << width) << width;
    }
}

TEST(Bitops, XorFoldZeroWidthTerminates) {
    // Regression: width 0 (a single-bucket table) must return 0, not spin.
    EXPECT_EQ(xor_fold(0xdeadbeefull, 0), 0u);
    EXPECT_EQ(xor_fold(0, 0), 0u);
}

TEST(Bitops, Parity) {
    EXPECT_EQ(parity(0), 0u);
    EXPECT_EQ(parity(1), 1u);
    EXPECT_EQ(parity(3), 0u);
    EXPECT_EQ(parity(7), 1u);
}

TEST(Rng, Deterministic) {
    Xoshiro256 a(42);
    Xoshiro256 b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
    Xoshiro256 a(1);
    Xoshiro256 b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) same += (a() == b());
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedIsInRange) {
    Xoshiro256 rng(7);
    for (u64 bound : {u64{1}, u64{2}, u64{3}, u64{10}, u64{1000}, u64{1} << 40}) {
        for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
    }
}

TEST(Rng, BoundedCoversRange) {
    Xoshiro256 rng(7);
    std::set<u64> seen;
    for (int i = 0; i < 500; ++i) seen.insert(rng.bounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
    Xoshiro256 rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectesProbability) {
    Xoshiro256 rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Status, OkByDefault) {
    Status status;
    EXPECT_TRUE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kOk);
}

TEST(Status, CarriesCodeAndMessage) {
    Status status(StatusCode::kNotFound, "missing key");
    EXPECT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kNotFound);
    EXPECT_EQ(status.to_string(), "not-found: missing key");
}

TEST(ResultType, HoldsValue) {
    Result<int> result(42);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result.value(), 42);
    EXPECT_EQ(result.value_or(0), 42);
}

TEST(ResultType, HoldsStatus) {
    Result<int> result(Status(StatusCode::kCapacityExceeded));
    ASSERT_FALSE(result.has_value());
    EXPECT_EQ(result.status().code(), StatusCode::kCapacityExceeded);
    EXPECT_EQ(result.value_or(-1), -1);
}

TEST(TablePrinterTest, RendersAlignedRows) {
    TablePrinter table({"name", "value"});
    table.add_row({"alpha", "1"});
    table.add_row({"b", "22222"});
    std::ostringstream os;
    table.print(os, "title");
    const std::string out = os.str();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);
    EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, MissingCellsRenderEmpty) {
    TablePrinter table({"a", "b", "c"});
    table.add_row({"only"});
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TablePrinterTest, NumericHelpers) {
    EXPECT_EQ(TablePrinter::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::percent(0.5, 1), "50.0%");
}

}  // namespace
}  // namespace flowcam
