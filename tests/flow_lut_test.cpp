// Integration tests for the timed Flow LUT engine — the paper's Fig. 2
// machine. The heavyweight properties:
//   * timed answers always agree with a functional oracle (the Request
//     Filter's correctness guarantee),
//   * per-flow completions retire in arrival order (paper §IV-A promise),
//   * the DDR3 protocol stays violation-free under load,
//   * housekeeping deletion, CAM collisions, backpressure and drops.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/flow_lut.hpp"
#include "net/trace.hpp"

namespace flowcam::core {
namespace {

net::NTuple key_of(u64 value, u64 seed = 3) {
    return net::NTuple::from_five_tuple(net::synth_tuple(value, seed));
}

FlowLutConfig small_config() {
    FlowLutConfig config;
    config.buckets_per_mem = 1 << 10;
    config.ways = 4;
    config.cam_capacity = 64;
    return config;
}

template <typename KeyLike>  // net::NTuple or core::FlowKey
std::string key_string(const KeyLike& key) {
    const auto view = key.view();
    return {reinterpret_cast<const char*>(view.data()), view.size()};
}

/// Offer keys at the given input interval, step until drained, collect all
/// completions.
std::vector<Completion> run_workload(FlowLut& lut, const std::vector<net::NTuple>& keys,
                                     u32 cycles_per_offer = 2) {
    std::vector<Completion> completions;
    std::size_t offered = 0;
    u64 ts = 1;
    while (offered < keys.size()) {
        if (lut.now() % cycles_per_offer == 0 && lut.offer(keys[offered], ts, 64)) {
            ++offered;
            ts += 17;
        }
        lut.step();
        while (auto completion = lut.pop_completion()) completions.push_back(*completion);
    }
    EXPECT_TRUE(lut.drain());
    while (auto completion = lut.pop_completion()) completions.push_back(*completion);
    return completions;
}

TEST(FlowLutTest, SingleNewFlowGetsValidFid) {
    FlowLut lut(small_config());
    ASSERT_TRUE(lut.offer(key_of(1), 1, 64));
    ASSERT_TRUE(lut.drain());
    const auto completion = lut.pop_completion();
    ASSERT_TRUE(completion.has_value());
    EXPECT_NE(completion->fid, kInvalidFlowId);
    EXPECT_TRUE(completion->is_new_flow);
    EXPECT_EQ(lut.table().size(), 1u);
    EXPECT_EQ(lut.stats().new_flows, 1u);
}

TEST(FlowLutTest, SecondPacketSameFlowSameFid) {
    FlowLut lut(small_config());
    std::vector<net::NTuple> keys = {key_of(1), key_of(1)};
    const auto completions = run_workload(lut, keys);
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_TRUE(completions[0].is_new_flow);
    EXPECT_FALSE(completions[1].is_new_flow);
    EXPECT_EQ(completions[0].fid, completions[1].fid);
}

TEST(FlowLutTest, TimedMatchesFunctionalOracle) {
    // The central property: for an arbitrary interleaved stream, the FID
    // stream the timed engine produces matches a sequential oracle
    // (first-seen => new flow with a stable id; repeats => same id).
    FlowLut lut(small_config());
    Xoshiro256 rng(99);
    std::vector<net::NTuple> keys;
    for (int i = 0; i < 3000; ++i) keys.push_back(key_of(rng.bounded(500)));

    const auto completions = run_workload(lut, keys, 1);
    ASSERT_EQ(completions.size(), keys.size());

    std::unordered_map<std::string, FlowId> oracle;
    std::map<u64, const Completion*> by_seq;
    for (const auto& completion : completions) by_seq[completion.seq] = &completion;
    ASSERT_EQ(by_seq.size(), keys.size());

    for (const auto& [seq, completion] : by_seq) {
        const std::string key = key_string(completion->key);
        const auto it = oracle.find(key);
        if (it == oracle.end()) {
            EXPECT_TRUE(completion->is_new_flow) << "seq " << seq;
            EXPECT_NE(completion->fid, kInvalidFlowId);
            oracle.emplace(key, completion->fid);
        } else {
            EXPECT_EQ(completion->fid, it->second) << "seq " << seq;
            EXPECT_FALSE(completion->is_new_flow) << "seq " << seq;
        }
    }
    // And the DDR3 protocol stayed clean throughout.
    EXPECT_TRUE(lut.controller(Path::kA).protocol_status().is_ok());
    EXPECT_TRUE(lut.controller(Path::kB).protocol_status().is_ok());
}

TEST(FlowLutTest, PerFlowCompletionsInArrivalOrder) {
    // Paper §IV-A: "The packets belonging to the same flow are still
    // strictly maintained in order."
    FlowLut lut(small_config());
    Xoshiro256 rng(7);
    std::vector<net::NTuple> keys;
    for (int i = 0; i < 4000; ++i) keys.push_back(key_of(rng.bounded(50)));

    std::vector<Completion> completions;
    std::size_t offered = 0;
    while (offered < keys.size()) {
        if (lut.offer(keys[offered], offered + 1, 64)) ++offered;
        lut.step();
        while (auto completion = lut.pop_completion()) completions.push_back(*completion);
    }
    ASSERT_TRUE(lut.drain());
    while (auto completion = lut.pop_completion()) completions.push_back(*completion);
    ASSERT_EQ(completions.size(), keys.size());

    // Completions were collected in retirement order. For each key, the
    // seq numbers must appear in increasing order.
    std::unordered_map<std::string, u64> last_seq;
    for (const auto& completion : completions) {
        const std::string key = key_string(completion.key);
        const auto it = last_seq.find(key);
        if (it != last_seq.end()) {
            EXPECT_LT(it->second, completion.seq)
                << "per-flow reordering for key at seq " << completion.seq;
        }
        last_seq[key] = completion.seq;
    }
}

TEST(FlowLutTest, PreloadedFlowsHitWithoutInsert) {
    FlowLut lut(small_config());
    std::map<std::string, FlowId> fids;
    for (u64 i = 0; i < 200; ++i) {
        const auto key = key_of(i);
        const auto fid = lut.preload(key);
        ASSERT_TRUE(fid.has_value());
        fids[key_string(key)] = fid.value();
    }
    std::vector<net::NTuple> keys;
    for (u64 i = 0; i < 200; ++i) keys.push_back(key_of(i));
    const auto completions = run_workload(lut, keys);
    ASSERT_EQ(completions.size(), 200u);
    for (const auto& completion : completions) {
        EXPECT_FALSE(completion.is_new_flow);
        EXPECT_EQ(completion.fid, fids[key_string(completion.key)]);
    }
    EXPECT_EQ(lut.stats().new_flows, 0u);
    EXPECT_GT(lut.stats().lu1_hits + lut.stats().lu2_hits, 0u);
}

TEST(FlowLutTest, CamCollisionsAnswerAtSequencer) {
    FlowLutConfig config = small_config();
    config.buckets_per_mem = 1;  // force every key into one bucket pair
    config.ways = 2;
    config.cam_capacity = 32;
    FlowLut lut(config);
    // 4 bucket slots + CAM for the rest. First pass inserts; drain so no
    // first-pass packet is still in flight (an in-flight elder suppresses
    // the instant CAM answer to preserve per-flow order); second pass must
    // then hit at the sequencer CAM stage.
    std::vector<net::NTuple> first_pass;
    std::vector<net::NTuple> second_pass;
    for (u64 i = 0; i < 20; ++i) first_pass.push_back(key_of(i));
    for (u64 i = 0; i < 20; ++i) second_pass.push_back(key_of(i));
    auto completions = run_workload(lut, first_pass);
    const auto second = run_workload(lut, second_pass);
    completions.insert(completions.end(), second.begin(), second.end());
    ASSERT_EQ(completions.size(), 40u);
    EXPECT_EQ(lut.table().cam_entries(), 16u);
    EXPECT_GT(lut.stats().cam_hits, 0u);  // second-pass CAM keys hit at stage 1
    // All 20 flows stable across both passes.
    std::map<std::string, FlowId> fid_of;
    for (const auto& completion : completions) {
        const auto [it, inserted] = fid_of.emplace(key_string(completion.key), completion.fid);
        if (!inserted) EXPECT_EQ(it->second, completion.fid);
    }
}

TEST(FlowLutTest, TableFullDropsGracefully) {
    FlowLutConfig config = small_config();
    config.buckets_per_mem = 1;
    config.ways = 1;
    config.cam_capacity = 2;
    FlowLut lut(config);
    std::vector<net::NTuple> keys;
    for (u64 i = 0; i < 10; ++i) keys.push_back(key_of(i));
    const auto completions = run_workload(lut, keys);
    ASSERT_EQ(completions.size(), 10u);
    EXPECT_EQ(lut.stats().drops, 6u);  // capacity 1+1+2 = 4
    u64 invalid = 0;
    for (const auto& completion : completions) invalid += completion.fid == kInvalidFlowId;
    EXPECT_EQ(invalid, 6u);
}

TEST(FlowLutTest, HousekeepingExpiresIdleFlows) {
    FlowLutConfig config = small_config();
    config.flow_timeout_ns = 1000;
    config.housekeeping_scan_per_cycle = 16;
    FlowLut lut(config);

    // Create 50 flows at t=0..., then advance stream time with one late
    // packet of a fresh flow and let housekeeping reap the idle ones.
    for (u64 i = 0; i < 50; ++i) {
        ASSERT_TRUE(lut.offer(key_of(i), 10, 64));
        ASSERT_TRUE(lut.drain());
    }
    EXPECT_EQ(lut.table().size(), 50u);
    ASSERT_TRUE(lut.offer(key_of(999), 1'000'000, 64));
    ASSERT_TRUE(lut.drain());
    lut.run(20000);  // give the scanner and delete writes time
    ASSERT_TRUE(lut.drain());
    // All 50 idle flows reaped; the late flow survives.
    EXPECT_EQ(lut.table().size(), 1u);
    EXPECT_GE(lut.stats().deletes_applied, 50u);
    EXPECT_EQ(lut.flow_state().active_flows(), 1u);
    EXPECT_TRUE(lut.controller(Path::kA).protocol_status().is_ok());
    EXPECT_TRUE(lut.controller(Path::kB).protocol_status().is_ok());
}

TEST(FlowLutTest, ReofferAfterExpiryCreatesNewFlow) {
    FlowLutConfig config = small_config();
    config.flow_timeout_ns = 1000;
    config.housekeeping_scan_per_cycle = 16;
    FlowLut lut(config);
    ASSERT_TRUE(lut.offer(key_of(1), 10, 64));
    ASSERT_TRUE(lut.drain());
    const auto first = lut.pop_completion();
    ASSERT_TRUE(first.has_value());

    ASSERT_TRUE(lut.offer(key_of(2), 1'000'000, 64));  // advance stream time
    ASSERT_TRUE(lut.drain());
    lut.run(20000);
    ASSERT_TRUE(lut.drain());
    ASSERT_TRUE(lut.offer(key_of(1), 1'000'100, 64));
    ASSERT_TRUE(lut.drain());
    // Flush the queue: the last completion is the re-offered key.
    Completion last;
    while (auto completion = lut.pop_completion()) last = *completion;
    EXPECT_TRUE(last.is_new_flow);
}

TEST(FlowLutTest, InputBackpressureWhenFlooded) {
    FlowLutConfig config = small_config();
    config.input_depth = 8;
    FlowLut lut(config);
    u64 accepted = 0;
    for (u64 i = 0; i < 100; ++i) accepted += lut.offer(key_of(i), i + 1, 64);
    EXPECT_EQ(accepted, 8u);
    EXPECT_TRUE(lut.input_full());
    EXPECT_EQ(lut.stats().rejected_input_full, 92u);
    ASSERT_TRUE(lut.drain());
    EXPECT_EQ(lut.stats().completions, 8u);
}

TEST(FlowLutTest, WeightedBalancerSkewsLoad) {
    for (const double weight : {0.0, 0.25, 0.5, 1.0}) {
        FlowLutConfig config = small_config();
        config.balance = BalancePolicy::kWeightedHash;
        config.weight_a = weight;
        FlowLut lut(config);
        std::vector<net::NTuple> keys;
        for (u64 i = 0; i < 2000; ++i) keys.push_back(key_of(i));
        (void)run_workload(lut, keys);
        EXPECT_NEAR(lut.stats().load_fraction_a(), weight, 0.05) << "weight " << weight;
    }
}

TEST(FlowLutTest, HashBitBalancerNearHalf) {
    FlowLut lut(small_config());
    std::vector<net::NTuple> keys;
    for (u64 i = 0; i < 2000; ++i) keys.push_back(key_of(i));
    (void)run_workload(lut, keys);
    EXPECT_NEAR(lut.stats().load_fraction_a(), 0.5, 0.06);
}

TEST(FlowLutTest, RawOfferControlsBucketIndices) {
    FlowLutConfig config = small_config();
    FlowLut lut(config);
    // Bank-increment pattern: bucket index == sequence number.
    for (u64 i = 0; i < 64; ++i) {
        ASSERT_TRUE(lut.offer_raw(key_of(i), i, i, i * 0x9e3779b9, i + 1, 64));
        lut.step();
    }
    ASSERT_TRUE(lut.drain());
    EXPECT_EQ(lut.stats().completions, 64u);
    EXPECT_EQ(lut.stats().new_flows, 64u);
}

TEST(FlowLutTest, ThroughputReportedInMdesc) {
    FlowLut lut(small_config());
    std::vector<net::NTuple> keys;
    for (u64 i = 0; i < 500; ++i) keys.push_back(key_of(i % 100));
    (void)run_workload(lut, keys);
    EXPECT_GT(lut.mdesc_per_second(), 1.0);
    EXPECT_LE(lut.mdesc_per_second(), 200.0);  // can't beat the input clock
}

TEST(FlowLutTest, UpdateBlockBatchesInsertWrites) {
    FlowLutConfig config = small_config();
    config.burst_write_threshold = 8;
    config.burst_write_timeout = 256;
    FlowLut lut(config);
    std::vector<net::NTuple> keys;
    for (u64 i = 0; i < 400; ++i) keys.push_back(key_of(i));  // all new flows
    (void)run_workload(lut, keys, 1);
    const auto& updates_a = lut.update_block(Path::kA).stats();
    const auto& updates_b = lut.update_block(Path::kB).stats();
    EXPECT_GT(updates_a.requests_released + updates_b.requests_released, 0u);
    // Batching actually happened: mean burst length > 1.
    const double mean_burst =
        static_cast<double>(updates_a.requests_released + updates_b.requests_released) /
        static_cast<double>(updates_a.bursts_released + updates_b.bursts_released);
    EXPECT_GT(mean_burst, 1.5);
}

TEST(FlowLutTest, DrainedOnConstruction) {
    FlowLut lut(small_config());
    EXPECT_TRUE(lut.drained());
    lut.run(100);
    EXPECT_TRUE(lut.drained());
    EXPECT_EQ(lut.stats().completions, 0u);
}

TEST(FlowLutTest, FidEncodesActualLocation) {
    FlowLut lut(small_config());
    ASSERT_TRUE(lut.offer(key_of(1), 1, 64));
    ASSERT_TRUE(lut.drain());
    const auto completion = lut.pop_completion();
    ASSERT_TRUE(completion.has_value());
    const TableIndex location = fid_location(completion->fid);
    const auto actual = lut.table().locate(completion->key.view());
    ASSERT_TRUE(actual.has_value());
    EXPECT_EQ(location, *actual);
}

TEST(FlowLutTest, DeleteRetryUnderFullWriteQueueDoesNotWedgeBuckets) {
    // Regression: a delete whose DDR write is rejected by a full controller
    // write queue retries next cycle; the functional erase and the Req
    // Filter's pending-update count must be applied exactly once, or the
    // bucket's pending count leaks and every later lookup to that address
    // parks forever (drain never completes).
    FlowLutConfig config = small_config();
    config.controller.write_queue_depth = 1;  // force enqueue rejections.
    config.burst_write_threshold = 4;         // deletes released in bursts.
    config.burst_write_timeout = 8;
    config.flow_timeout_ns = 1'000;           // expire almost immediately.
    FlowLut lut(config);

    constexpr u64 kFlows = 64;
    for (u64 flow = 0; flow < kFlows; ++flow) {
        while (!lut.offer(key_of(flow), 10 + flow, 64)) lut.step();
    }
    ASSERT_TRUE(lut.drain());

    // Advance stream time far past the timeout; housekeeping turns every
    // flow into a Del_req and the write path churns through the deletes.
    ASSERT_TRUE(lut.offer(key_of(9999), 1'000'000, 64));
    ASSERT_TRUE(lut.drain(2'000'000));
    lut.run(50'000);  // let housekeeping scan + deletes drain.
    ASSERT_TRUE(lut.drain(2'000'000));
    EXPECT_GT(lut.stats().deletes_applied, 0u);

    // Re-offer the deleted flows: every bucket must still accept lookups.
    for (u64 flow = 0; flow < kFlows; ++flow) {
        while (!lut.offer(key_of(flow), 2'000'000 + flow, 64)) lut.step();
    }
    ASSERT_TRUE(lut.drain(2'000'000)) << "a bucket stayed parked after delete retries";
    u64 completions = 0;
    while (lut.pop_completion()) ++completions;
    EXPECT_EQ(completions, 2 * kFlows + 1);
}

}  // namespace
}  // namespace flowcam::core
