// IPv6 substrate tests: key serialization, header codec roundtrips, the
// 37-byte tuple flowing through the Hash-CAM table and the timed Flow LUT
// (the paper's "scalable in number of tuples" claim, end to end).
#include <gtest/gtest.h>

#include <set>

#include <map>

#include "core/flow_lut.hpp"
#include "net/headers.hpp"
#include "net/ipv6.hpp"
#include "net/trace.hpp"

namespace flowcam::net {
namespace {

SixTuple sample_tuple() {
    SixTuple t;
    t.src_ip = Ipv6Address::from_words(0x20010db8'00000001ull, 0x1ull);
    t.dst_ip = Ipv6Address::from_words(0x20010db8'00000002ull, 0x2ull);
    t.src_port = 50000;
    t.dst_port = 443;
    t.protocol = kProtoTcp;
    return t;
}

TEST(Ipv6Address, FromWordsLayout) {
    const auto address = Ipv6Address::from_words(0x20010db800000000ull, 0x1ull);
    EXPECT_EQ(address.octets[0], 0x20);
    EXPECT_EQ(address.octets[1], 0x01);
    EXPECT_EQ(address.octets[2], 0x0d);
    EXPECT_EQ(address.octets[3], 0xb8);
    EXPECT_EQ(address.octets[15], 0x01);
}

TEST(Ipv6Address, ToStringGroups) {
    const auto address = Ipv6Address::from_words(0x20010db800000000ull, 0x1ull);
    EXPECT_EQ(address.to_string(), "2001:db8:0:0:0:0:0:1");
}

TEST(SixTupleTest, KeyBytesRoundtrip) {
    const SixTuple original = sample_tuple();
    const auto bytes = original.key_bytes();
    EXPECT_EQ(bytes.size(), 37u);
    EXPECT_EQ(SixTuple::from_key_bytes(bytes), original);
}

TEST(SixTupleTest, NTupleFitsKeyBudget) {
    const NTuple key = sample_tuple().to_ntuple();
    EXPECT_EQ(key.size(), SixTuple::kKeyBytes);
    EXPECT_LE(key.size(), NTuple::kMaxBytes);
}

TEST(Ipv6Codec, BuildParseRoundtripTcp) {
    Ipv6PacketSpec spec;
    spec.tuple = sample_tuple();
    spec.payload_bytes = 100;
    const auto frame = build_packet_v6(spec);
    const auto parsed = parse_packet_v6(frame);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tuple, spec.tuple);
    EXPECT_EQ(parsed->payload_length, 20u + 100u);
}

TEST(Ipv6Codec, BuildParseRoundtripUdp) {
    Ipv6PacketSpec spec;
    spec.tuple = sample_tuple();
    spec.tuple.protocol = kProtoUdp;
    const auto frame = build_packet_v6(spec);
    const auto parsed = parse_packet_v6(frame);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tuple, spec.tuple);
}

TEST(Ipv6Codec, RejectsIpv4Frames) {
    PacketSpec v4_spec;
    v4_spec.tuple = synth_tuple(1, 1);
    EXPECT_FALSE(parse_packet_v6(build_packet(v4_spec)).has_value());
}

TEST(Ipv6Codec, RejectsExtensionHeaders) {
    Ipv6PacketSpec spec;
    spec.tuple = sample_tuple();
    auto frame = build_packet_v6(spec);
    frame[kEthHeaderBytes + 6] = 0;  // next header = hop-by-hop options
    EXPECT_FALSE(parse_packet_v6(frame).has_value());
}

TEST(Ipv6Codec, RejectsTruncated) {
    Ipv6PacketSpec spec;
    spec.tuple = sample_tuple();
    auto frame = build_packet_v6(spec);
    frame.resize(kEthHeaderBytes + 10);
    EXPECT_FALSE(parse_packet_v6(frame).has_value());
}

TEST(SynthTupleV6, DistinctAndDeterministic) {
    std::set<std::array<u8, SixTuple::kKeyBytes>> seen;
    for (u64 flow = 0; flow < 5000; ++flow) seen.insert(synth_tuple_v6(flow, 1).key_bytes());
    EXPECT_EQ(seen.size(), 5000u);
    EXPECT_EQ(synth_tuple_v6(7, 3), synth_tuple_v6(7, 3));
}

TEST(Ipv6FlowLut, SixTuplesThroughTimedEngine) {
    // End-to-end: 37-byte keys need 48-byte entries; the whole pipeline
    // (hashing, DDR serialization, Flow Match byte compare) must cope.
    core::FlowLutConfig config;
    config.buckets_per_mem = 1 << 10;
    config.ways = 4;
    config.entry_bytes = 48;
    config.cam_capacity = 64;
    core::FlowLut lut(config);

    std::map<std::string, FlowId> fids;
    for (u64 pass = 0; pass < 2; ++pass) {
        for (u64 flow = 0; flow < 100; ++flow) {
            const NTuple key = synth_tuple_v6(flow, 9).to_ntuple();
            while (!lut.offer(key, pass * 1000 + flow + 1, 64)) lut.step();
            lut.step();
        }
        ASSERT_TRUE(lut.drain());
    }
    std::size_t completions = 0;
    while (const auto completion = lut.pop_completion()) {
        ++completions;
        const auto view = completion->key.view();
        std::string key(reinterpret_cast<const char*>(view.data()), view.size());
        const auto [it, inserted] = fids.emplace(key, completion->fid);
        if (!inserted) EXPECT_EQ(it->second, completion->fid);
    }
    EXPECT_EQ(completions, 200u);
    EXPECT_EQ(lut.table().size(), 100u);
    EXPECT_EQ(lut.stats().new_flows, 100u);
    EXPECT_TRUE(lut.controller(core::Path::kA).protocol_status().is_ok());
}

}  // namespace
}  // namespace flowcam::net
