// DDR3 timing-model tests: speed-grade parameter sanity and, critically,
// the TimingChecker's enforcement of every JEDEC-style constraint — these
// are the rules that make the simulated bandwidth numbers believable.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "dram/checker.hpp"
#include "dram/command.hpp"
#include "dram/timing.hpp"

namespace flowcam::dram {
namespace {

class CheckerTest : public ::testing::Test {
  protected:
    DramTimings t = ddr3_1066e();
    Geometry geometry{};
    TimingChecker checker{t, geometry};

    Cycle open_row(u32 bank, u32 row, Cycle at) {
        EXPECT_TRUE(checker.record(Command{CommandType::kActivate, bank, row, 0}, at).is_ok());
        return at;
    }
};

TEST(Timings, Ddr3_1066e_MatchesDataSheet) {
    const DramTimings t = ddr3_1066e();
    EXPECT_DOUBLE_EQ(t.tck_ns, 1.875);
    EXPECT_EQ(t.cl, 7u);
    EXPECT_EQ(t.cwl, 6u);
    EXPECT_EQ(t.trcd, 7u);
    EXPECT_EQ(t.trp, 7u);
    EXPECT_EQ(t.tras, 20u);
    EXPECT_EQ(t.trc, 27u);
    EXPECT_EQ(t.twr, 8u);
    EXPECT_EQ(t.twtr, 4u);
    EXPECT_EQ(t.tfaw, 20u);
    EXPECT_EQ(t.burst_cycles(), 4u);
    // Derived turnarounds.
    EXPECT_EQ(t.read_to_write(), 7u);    // RL + tCCD + 2 - WL
    EXPECT_EQ(t.write_to_read(), 14u);   // WL + BL/2 + tWTR
}

TEST(Timings, Ddr3_1600_MatchesDataSheet) {
    const DramTimings t = ddr3_1600();
    EXPECT_DOUBLE_EQ(t.tck_ns, 1.25);
    EXPECT_EQ(t.cl, 11u);
    EXPECT_EQ(t.cwl, 8u);
    EXPECT_EQ(t.trc, 39u);
    EXPECT_EQ(t.trefi, 6240u);
    EXPECT_DOUBLE_EQ(t.clock_hz(), 8e8);
}

TEST(Timings, LookupByName) {
    EXPECT_EQ(timings_by_name("DDR3-1066").grade, "DDR3-1066E");
    EXPECT_EQ(timings_by_name("DDR3-1333").grade, "DDR3-1333");
    EXPECT_EQ(timings_by_name("DDR3-1600").grade, "DDR3-1600");
    EXPECT_THROW(timings_by_name("DDR4-2400"), std::invalid_argument);
}

TEST(Timings, PeakBandwidth) {
    // DDR3-1600 x 32-bit: 800 MHz * 2 * 4 B = 6.4 GB/s.
    EXPECT_DOUBLE_EQ(ddr3_1600().peak_bandwidth_bytes(4.0), 6.4e9);
}

TEST_F(CheckerTest, ReadRequiresActivate) {
    const Status status = checker.record(Command{CommandType::kRead, 0, 0, 0}, 10);
    EXPECT_FALSE(status.is_ok());
    EXPECT_NE(status.message().find("idle"), std::string::npos);
}

TEST_F(CheckerTest, ReadRowMismatchRejected) {
    open_row(0, 5, 0);
    const Status status = checker.record(Command{CommandType::kRead, 0, 7, 0}, 100);
    EXPECT_FALSE(status.is_ok());
    EXPECT_NE(status.message().find("row-mismatch"), std::string::npos);
}

TEST_F(CheckerTest, TrcdEnforced) {
    open_row(0, 0, 0);
    // Read at tRCD-1 fails, at tRCD succeeds.
    EXPECT_FALSE(checker.record(Command{CommandType::kRead, 0, 0, 0}, t.trcd - 1).is_ok());
    EXPECT_TRUE(checker.record(Command{CommandType::kRead, 0, 0, 0}, t.trcd).is_ok());
}

TEST_F(CheckerTest, TccdBetweenReads) {
    open_row(0, 0, 0);
    ASSERT_TRUE(checker.record(Command{CommandType::kRead, 0, 0, 0}, t.trcd).is_ok());
    EXPECT_FALSE(
        checker.record(Command{CommandType::kRead, 0, 0, 8}, t.trcd + t.tccd - 1).is_ok());
    EXPECT_TRUE(checker.record(Command{CommandType::kRead, 0, 0, 8}, t.trcd + t.tccd).is_ok());
}

TEST_F(CheckerTest, WriteToReadTurnaround) {
    open_row(0, 0, 0);
    ASSERT_TRUE(checker.record(Command{CommandType::kWrite, 0, 0, 0}, t.trcd).is_ok());
    const Cycle earliest = t.trcd + t.write_to_read();
    EXPECT_FALSE(checker.record(Command{CommandType::kRead, 0, 0, 8}, earliest - 1).is_ok());
    EXPECT_TRUE(checker.record(Command{CommandType::kRead, 0, 0, 8}, earliest).is_ok());
}

TEST_F(CheckerTest, ReadToWriteTurnaround) {
    open_row(0, 0, 0);
    ASSERT_TRUE(checker.record(Command{CommandType::kRead, 0, 0, 0}, t.trcd).is_ok());
    const Cycle earliest = t.trcd + t.read_to_write();
    EXPECT_FALSE(checker.record(Command{CommandType::kWrite, 0, 0, 8}, earliest - 1).is_ok());
    EXPECT_TRUE(checker.record(Command{CommandType::kWrite, 0, 0, 8}, earliest).is_ok());
}

TEST_F(CheckerTest, TrasBeforePrecharge) {
    open_row(0, 0, 0);
    EXPECT_FALSE(checker.record(Command{CommandType::kPrecharge, 0, 0, 0}, t.tras - 1).is_ok());
    EXPECT_TRUE(checker.record(Command{CommandType::kPrecharge, 0, 0, 0}, t.tras).is_ok());
}

TEST_F(CheckerTest, WriteRecoveryBeforePrecharge) {
    open_row(0, 0, 0);
    const Cycle write_at = t.trcd;
    ASSERT_TRUE(checker.record(Command{CommandType::kWrite, 0, 0, 0}, write_at).is_ok());
    const Cycle data_end = write_at + t.cwl + t.burst_cycles();
    EXPECT_FALSE(
        checker.record(Command{CommandType::kPrecharge, 0, 0, 0}, data_end + t.twr - 1).is_ok());
    EXPECT_TRUE(
        checker.record(Command{CommandType::kPrecharge, 0, 0, 0}, data_end + t.twr).is_ok());
}

TEST_F(CheckerTest, TrpBeforeNextActivate) {
    open_row(0, 0, 0);
    ASSERT_TRUE(checker.record(Command{CommandType::kPrecharge, 0, 0, 0}, t.tras).is_ok());
    EXPECT_FALSE(
        checker.record(Command{CommandType::kActivate, 0, 1, 0}, t.tras + t.trp - 1).is_ok());
    EXPECT_TRUE(
        checker.record(Command{CommandType::kActivate, 0, 1, 0}, t.tras + t.trp).is_ok());
}

TEST_F(CheckerTest, TrcBetweenActivatesSameBank) {
    open_row(0, 0, 0);
    ASSERT_TRUE(checker.record(Command{CommandType::kPrecharge, 0, 0, 0}, t.tras).is_ok());
    // tRP satisfied at tRAS+tRP = 27 = tRC; tRC also binds ACT->ACT.
    EXPECT_TRUE(checker.record(Command{CommandType::kActivate, 0, 1, 0}, t.trc).is_ok());
}

TEST_F(CheckerTest, TrrdBetweenActivatesDifferentBanks) {
    open_row(0, 0, 0);
    EXPECT_FALSE(checker.record(Command{CommandType::kActivate, 1, 0, 0}, t.trrd - 1).is_ok());
    EXPECT_TRUE(checker.record(Command{CommandType::kActivate, 1, 0, 0}, t.trrd).is_ok());
}

TEST_F(CheckerTest, TfawLimitsActivateBursts) {
    // Four activates as fast as tRRD allows...
    Cycle at = 0;
    for (u32 bank = 0; bank < 4; ++bank) {
        ASSERT_TRUE(checker.record(Command{CommandType::kActivate, bank, 0, 0}, at).is_ok());
        at += t.trrd;
    }
    // ...the fifth must wait for the tFAW window from the first.
    const Cycle fifth_earliest = t.tfaw;  // first ACT at 0.
    EXPECT_FALSE(
        checker.record(Command{CommandType::kActivate, 4, 0, 0}, fifth_earliest - 1).is_ok());
    EXPECT_TRUE(checker.record(Command{CommandType::kActivate, 4, 0, 0}, fifth_earliest).is_ok());
}

TEST_F(CheckerTest, RefreshRequiresAllBanksIdle) {
    open_row(0, 0, 0);
    const Status status = checker.record(Command{CommandType::kRefresh, 0, 0, 0}, 100);
    EXPECT_FALSE(status.is_ok());
    EXPECT_NE(status.message().find("open-bank"), std::string::npos);
}

TEST_F(CheckerTest, NoActivateDuringTrfc) {
    ASSERT_TRUE(checker.record(Command{CommandType::kRefresh, 0, 0, 0}, 0).is_ok());
    EXPECT_FALSE(checker.record(Command{CommandType::kActivate, 0, 0, 0}, t.trfc - 1).is_ok());
    EXPECT_TRUE(checker.record(Command{CommandType::kActivate, 0, 0, 0}, t.trfc).is_ok());
}

TEST_F(CheckerTest, ReadsTooCloseAcrossBanksRejected) {
    // With DDR3's tCCD equal to the burst length in cycles, two reads
    // closer than tCCD would also collide on the DQ bus; the checker must
    // reject the second command whichever rule fires first.
    open_row(0, 0, 0);
    open_row(1, 0, t.trrd);
    ASSERT_TRUE(checker.record(Command{CommandType::kRead, 0, 0, 0}, t.trcd + t.trrd).is_ok());
    Command second{CommandType::kRead, 1, 0, 0};
    EXPECT_FALSE(checker.record(second, t.trcd + t.trrd + 2).is_ok());
    // At tCCD spacing the data bursts abut exactly and both rules pass.
    EXPECT_TRUE(checker.record(second, t.trcd + t.trrd + t.tccd).is_ok());
}

TEST_F(CheckerTest, DqBusyAccounting) {
    open_row(0, 0, 0);
    ASSERT_TRUE(checker.record(Command{CommandType::kRead, 0, 0, 0}, t.trcd).is_ok());
    ASSERT_TRUE(checker.record(Command{CommandType::kRead, 0, 0, 8}, t.trcd + t.tccd).is_ok());
    EXPECT_EQ(checker.dq_busy_cycles(), 2u * t.burst_cycles());
    EXPECT_EQ(checker.dq_last_end(), t.trcd + t.tccd + t.cl + t.burst_cycles());
}

TEST_F(CheckerTest, EarliestIssueAgreesWithRecord) {
    // Property: for a sequence of random-ish commands, record() at
    // earliest_issue() always succeeds, and record() one cycle earlier
    // fails whenever earliest_issue() > proposed time.
    Cycle cursor = 0;
    const Command sequence[] = {
        {CommandType::kActivate, 0, 3, 0}, {CommandType::kRead, 0, 3, 0},
        {CommandType::kRead, 0, 3, 8},     {CommandType::kWrite, 0, 3, 16},
        {CommandType::kPrecharge, 0, 0, 0}, {CommandType::kActivate, 0, 9, 0},
        {CommandType::kWrite, 0, 9, 0},    {CommandType::kRead, 0, 9, 8},
    };
    for (const Command& cmd : sequence) {
        const Cycle earliest = checker.earliest_issue(cmd, cursor);
        if (earliest > cursor) {
            TimingChecker copy = checker;  // probing must not disturb state
            EXPECT_FALSE(copy.record(cmd, earliest - 1).is_ok())
                << to_string(cmd.type) << " at " << earliest - 1;
        }
        ASSERT_TRUE(checker.record(cmd, earliest).is_ok()) << to_string(cmd.type);
        cursor = earliest + 1;
    }
}

TEST(AddressMapTest, BankLowRotatesConsecutiveBuckets) {
    Geometry geometry;
    AddressMap map(geometry, 8, MapPolicy::kBankLow, 64);
    // Consecutive 64-byte buckets land on consecutive banks.
    for (u64 bucket = 0; bucket < 16; ++bucket) {
        EXPECT_EQ(map.decode(bucket * 64).bank, bucket % geometry.banks);
    }
}

TEST(AddressMapTest, BucketStaysInOneRow) {
    Geometry geometry;
    AddressMap map(geometry, 8, MapPolicy::kBankLow, 64);
    for (u64 bucket = 0; bucket < 1000; ++bucket) {
        const auto first = map.decode(bucket * 64);
        const auto second = map.decode(bucket * 64 + 32);  // second burst
        EXPECT_EQ(first.bank, second.bank);
        EXPECT_EQ(first.row, second.row);
        EXPECT_EQ(second.col, first.col + 8);
    }
}

TEST(AddressMapTest, BankHighKeepsConsecutiveBucketsTogether) {
    Geometry geometry;
    AddressMap map(geometry, 8, MapPolicy::kBankHigh, 64);
    const auto a = map.decode(0);
    const auto b = map.decode(64);
    EXPECT_EQ(a.bank, b.bank);
}

TEST(AddressMapTest, DistinctAddressesDistinctLocations) {
    Geometry geometry;
    AddressMap map(geometry, 8, MapPolicy::kBankLow, 64);
    std::set<std::tuple<u32, u32, u32>> seen;
    for (u64 bucket = 0; bucket < 4096; ++bucket) {
        const auto loc = map.decode(bucket * 64);
        seen.insert({loc.bank, loc.row, loc.col});
    }
    // 64-byte buckets are 2 bursts; each (bank,row,col) must be unique per
    // bucket start.
    EXPECT_EQ(seen.size(), 4096u);
}

}  // namespace
}  // namespace flowcam::dram
