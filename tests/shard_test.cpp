// Sharded multi-lane execution suite. The contract under test, in order of
// importance:
//   * lane-count determinism — lanes 2, 4 and 8 run the same eight virtual
//     slice simulations and must merge to byte-identical metrics, across
//     builtins, a composed spec, an IPv6 trace replay and a fault arm;
//   * thread-count independence — jobs is runtime parallelism only: a
//     serial run (jobs=1) and a threaded run (jobs=8) of the same sharded
//     config must be byte-identical;
//   * conservation vs the monolithic path — the offered stream is the
//     same stream, so stream-side and end-to-end totals (packets, bytes,
//     flows, overlay, completions, drain) must match lanes=1 exactly even
//     though per-path microbehaviour (LU1/LU2 splits, buffer retries)
//     legitimately differs across table slices;
//   * the slicing function and config validation;
//   * Histogram::merge, the reduction the latency percentiles ride on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/trace.hpp"
#include "obs/obs.hpp"
#include "shard/sharded_engine.hpp"
#include "workload/config_patch.hpp"
#include "workload/metrics.hpp"
#include "workload/runner.hpp"

namespace flowcam::shard {
namespace {

using workload::RunnerConfig;
using workload::ScenarioConfig;
using workload::ScenarioMetrics;

ScenarioConfig scenario_config(u64 seed = 2014) {
    ScenarioConfig config;
    config.seed = seed;
    config.onset_packets = 500;
    config.pool_size = 256;
    config.wave_packets = 512;
    config.horizon_packets = 3001;  // ShardedEngine is below the Experiment
                                    // layer that auto-resolves the horizon.
    return config;
}

RunnerConfig runner_config() {
    RunnerConfig config;
    config.packets = 3001;  // odd: uneven slice tails by construction.
    config.analyzer.lut.buckets_per_mem = u64{1} << 12;
    config.analyzer.lut.cam_capacity = 512;
    return config;
}

std::string all_metrics(const ScenarioMetrics& metrics) {
    return workload::metrics_json_object(metrics, {});
}

Result<ScenarioMetrics> run_sharded(RunnerConfig config, u32 lanes, std::size_t jobs,
                                    const std::string& spec, u64 seed = 2014) {
    config.shard.lanes = lanes;
    config.shard.jobs = jobs;
    ShardedEngine engine(config);
    return engine.run(spec, scenario_config(seed));
}

/// Every lane count must merge to the identical result; jobs varies across
/// the lane counts so thread scheduling gets a chance to interfere (it must
/// not).
void expect_lane_count_invariant(const RunnerConfig& config, const std::string& spec,
                                 u64 seed = 2014) {
    const auto lanes2 = run_sharded(config, 2, 1, spec, seed);
    ASSERT_TRUE(lanes2.has_value()) << spec << ": " << lanes2.status().to_string();
    const auto lanes4 = run_sharded(config, 4, 4, spec, seed);
    ASSERT_TRUE(lanes4.has_value()) << spec << ": " << lanes4.status().to_string();
    const auto lanes8 = run_sharded(config, 8, 3, spec, seed);
    ASSERT_TRUE(lanes8.has_value()) << spec << ": " << lanes8.status().to_string();

    EXPECT_EQ(all_metrics(lanes2.value()), all_metrics(lanes4.value())) << spec;
    EXPECT_EQ(all_metrics(lanes4.value()), all_metrics(lanes8.value())) << spec;
    EXPECT_TRUE(lanes4.value().drained) << spec;
}

// ---- Slicing function -------------------------------------------------------

TEST(ShardSliceTest, SliceOfIsStableAndInRange) {
    for (u64 flow = 0; flow < 4096; ++flow) {
        const core::FlowKey key(
            net::NTuple::from_five_tuple(net::synth_tuple(flow, 7)));
        const u32 slice = slice_of(key);
        EXPECT_LT(slice, kShardSlices);
        EXPECT_EQ(slice, slice_of(key));  // pure function of the key.
    }
}

TEST(ShardSliceTest, SliceOfSpreadsAcrossAllSlices) {
    std::vector<u64> counts(kShardSlices, 0);
    for (u64 flow = 0; flow < 8192; ++flow) {
        const core::FlowKey key(
            net::NTuple::from_five_tuple(net::synth_tuple(flow, 11)));
        ++counts[slice_of(key)];
    }
    // The digest is fully avalanched; every slice must see a healthy share
    // (an empty or dominant slice means the top bits are not uniform).
    for (u32 s = 0; s < kShardSlices; ++s) {
        EXPECT_GT(counts[s], 8192u / kShardSlices / 2) << "slice " << s;
        EXPECT_LT(counts[s], 8192u / kShardSlices * 2) << "slice " << s;
    }
}

// ---- Config validation ------------------------------------------------------

TEST(ShardConfigTest, ValidatesLaneCounts) {
    ShardConfig config;
    for (const u32 lanes : {1u, 2u, 4u, 8u}) {
        config.lanes = lanes;
        EXPECT_TRUE(config.validate().is_ok()) << lanes;
    }
    for (const u32 lanes : {0u, 3u, 5u, 6u, 7u, 16u}) {
        config.lanes = lanes;
        EXPECT_FALSE(config.validate().is_ok()) << lanes;
    }
    config.lanes = 4;
    config.epoch_cycles = 0;
    EXPECT_FALSE(config.validate().is_ok());
}

TEST(ShardConfigTest, ConfigPatchAcceptsOnlyTheSupportedLaneCounts) {
    const workload::ConfigPatch& patch = workload::ConfigPatch::registry();
    workload::ConfigTree tree;
    for (const char* value : {"1", "2", "4", "8"}) {
        EXPECT_TRUE(patch.apply(tree, "shard.lanes", value).is_ok()) << value;
    }
    EXPECT_EQ(tree.runner.shard.lanes, 8u);
    for (const char* value : {"0", "3", "16", "-4", "two", ""}) {
        EXPECT_FALSE(patch.apply(tree, "shard.lanes", value).is_ok()) << value;
    }
    EXPECT_TRUE(patch.apply(tree, "shard.epoch_cycles", "1024").is_ok());
    EXPECT_EQ(tree.runner.shard.epoch_cycles, 1024u);
    EXPECT_FALSE(patch.apply(tree, "shard.epoch_cycles", "0").is_ok());
}

// ---- Lane-count determinism -------------------------------------------------

TEST(ShardDeterminismTest, EveryBuiltinScenarioIsLaneCountInvariant) {
    for (const char* name :
         {"baseline", "syn_flood", "port_scan", "heavy_hitter", "flash_crowd", "churn"}) {
        expect_lane_count_invariant(runner_config(), name);
    }
}

TEST(ShardDeterminismTest, ComposedSpecIsLaneCountInvariant) {
    expect_lane_count_invariant(runner_config(), "flash_crowd+syn_flood@onset=0.3");
}

TEST(ShardDeterminismTest, ReplayWithIpv6KeyOverridesIsLaneCountInvariant) {
    // IPv6 rows travel as PacketRecord::key_override — the slice splitter
    // must hash the override bytes exactly like the analyzer does, or a
    // record lands in one slice and is looked up in another.
    const std::filesystem::path trace =
        std::filesystem::path(::testing::TempDir()) / "shard-replay.csv";
    {
        std::ofstream out(trace);
        out << "timestamp_ns,src,dst,src_port,dst_port,protocol,bytes\n";
        for (int i = 0; i < 16; ++i) {
            out << (1000 + i * 500) << ",10.0.0." << (1 + i % 4) << ",10.0.1.1,"
                << (1024 + i) << ",80,tcp,200\n";
            out << (1250 + i * 500) << ",2001:db8::" << (1 + i % 8) << ",2001:db8::ffff,"
                << (2048 + i) << ",443,tcp,1500\n";
        }
    }
    RunnerConfig config = runner_config();
    config.packets = 501;  // loops the 32-row trace.
    ScenarioConfig scenario = scenario_config();
    scenario.horizon_packets = 501;
    const std::string spec = "replay:" + trace.string();
    const auto lanes2 = run_sharded(config, 2, 1, spec);
    ASSERT_TRUE(lanes2.has_value()) << lanes2.status().to_string();
    const auto lanes8 = run_sharded(config, 8, 2, spec);
    ASSERT_TRUE(lanes8.has_value()) << lanes8.status().to_string();
    EXPECT_EQ(all_metrics(lanes2.value()), all_metrics(lanes8.value()));
    EXPECT_EQ(lanes2.value().packets, 501u);
    std::filesystem::remove(trace);
}

TEST(ShardDeterminismTest, FaultArmIsLaneCountInvariant) {
    // Per-slice fault streams are derived deterministically from the slice
    // index, never from lane grouping — so the fault schedule (and the
    // auditor's verdict) must survive any lane count.
    RunnerConfig config = runner_config();
    config.fault.ddr_reject_p = 0.01;
    config.fault.ddr_reject_len = 4;
    config.fault.buffer_storm_p = 0.01;
    config.fault.buffer_storm_len = 8;
    config.fault.audit = true;
    expect_lane_count_invariant(config, "syn_flood");
    const auto metrics = run_sharded(config, 4, 1, "syn_flood");
    ASSERT_TRUE(metrics.has_value());
    EXPECT_GT(metrics.value().faults_injected, 0u);
    EXPECT_EQ(metrics.value().audit_violations, 0u);
}

TEST(ShardDeterminismTest, SerialAndThreadedRunsAreByteIdentical) {
    for (const std::size_t jobs : {2u, 4u, 8u}) {
        const auto serial = run_sharded(runner_config(), 4, 1, "churn");
        ASSERT_TRUE(serial.has_value());
        const auto threaded = run_sharded(runner_config(), 4, jobs, "churn");
        ASSERT_TRUE(threaded.has_value());
        EXPECT_EQ(all_metrics(serial.value()), all_metrics(threaded.value()))
            << "jobs=" << jobs;
    }
}

TEST(ShardDeterminismTest, RepeatedRunsAreByteIdentical) {
    const auto first = run_sharded(runner_config(), 4, 4, "syn_flood");
    const auto second = run_sharded(runner_config(), 4, 4, "syn_flood");
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(all_metrics(first.value()), all_metrics(second.value()));
}

// ---- Conservation vs the monolithic path ------------------------------------

TEST(ShardConservationTest, StreamTotalsMatchMonolithicExactly) {
    for (const char* name : {"baseline", "syn_flood", "churn"}) {
        workload::ScenarioRunner mono(runner_config());
        const auto mono_result = mono.run(name, scenario_config());
        ASSERT_TRUE(mono_result.has_value()) << name;
        const auto sharded = run_sharded(runner_config(), 4, 2, name);
        ASSERT_TRUE(sharded.has_value()) << name;

        const ScenarioMetrics& m = mono_result.value();
        const ScenarioMetrics& s = sharded.value();
        // The offered stream is the same stream: every slice draws the full
        // generator sequence and keeps a disjoint subset.
        EXPECT_EQ(m.packets, s.packets) << name;
        EXPECT_EQ(m.bytes, s.bytes) << name;
        EXPECT_EQ(m.distinct_flows, s.distinct_flows) << name;
        EXPECT_EQ(m.overlay_packets, s.overlay_packets) << name;
        EXPECT_EQ(m.trace_span_ns, s.trace_span_ns) << name;
        // End-to-end conservation: everything offered retires.
        EXPECT_EQ(m.completions, s.completions) << name;
        EXPECT_EQ(m.new_flows, s.new_flows) << name;
        EXPECT_TRUE(s.drained) << name;
    }
}

TEST(ShardConservationTest, LanesOneMatchesTheMonolithicRunnerByteForByte) {
    // lanes=1 is the monolithic path (the Experiment layer never routes it
    // through the sharded engine); the full metric set must agree.
    workload::ScenarioRunner mono(runner_config());
    const auto mono_result = mono.run("syn_flood", scenario_config());
    ASSERT_TRUE(mono_result.has_value());

    RunnerConfig config = runner_config();
    config.shard.lanes = 1;
    workload::ScenarioRunner still_mono(config);
    const auto still_mono_result = still_mono.run("syn_flood", scenario_config());
    ASSERT_TRUE(still_mono_result.has_value());
    EXPECT_EQ(all_metrics(mono_result.value()), all_metrics(still_mono_result.value()));
}

TEST(ShardConservationTest, InvalidLaneCountIsATypedError) {
    RunnerConfig config = runner_config();
    config.shard.lanes = 3;
    ShardedEngine engine(config);
    const auto result = engine.run("baseline", scenario_config());
    ASSERT_FALSE(result.has_value());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---- Histogram merge --------------------------------------------------------

TEST(ShardHistogramTest, MergeEqualsTheUnionStream) {
    obs::Histogram left;
    obs::Histogram right;
    obs::Histogram together;
    for (u64 sample = 1; sample < 2000; sample += 7) {
        (sample % 2 == 0 ? left : right).add(sample * sample);
        together.add(sample * sample);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), together.count());
    EXPECT_EQ(left.sum(), together.sum());
    EXPECT_EQ(left.min(), together.min());
    EXPECT_EQ(left.max(), together.max());
    for (const double fraction : {0.5, 0.95, 0.99}) {
        EXPECT_EQ(left.percentile(fraction), together.percentile(fraction)) << fraction;
    }
}

TEST(ShardHistogramTest, MergeWithEmptyIsIdentity) {
    obs::Histogram histogram;
    histogram.add(42);
    histogram.add(7);
    obs::Histogram empty;
    histogram.merge(empty);
    EXPECT_EQ(histogram.count(), 2u);
    EXPECT_EQ(histogram.min(), 7u);
    EXPECT_EQ(histogram.max(), 42u);
    // Merging into an empty histogram adopts the other side's min.
    empty.merge(histogram);
    EXPECT_EQ(empty.min(), 7u);
    EXPECT_EQ(empty.count(), 2u);
}

// ---- Latency percentiles through the sharded merge --------------------------

TEST(ShardObsTest, MergedLatencyPercentilesAreLaneCountInvariant) {
    RunnerConfig config = runner_config();
    config.obs.sample_interval = 512;
    config.obs.sample_path =
        (std::filesystem::path(::testing::TempDir()) / "shard-samples.jsonl").string();
    const auto lanes2 = run_sharded(config, 2, 1, "syn_flood");
    ASSERT_TRUE(lanes2.has_value()) << lanes2.status().to_string();
    const auto lanes8 = run_sharded(config, 8, 4, "syn_flood");
    ASSERT_TRUE(lanes8.has_value()) << lanes8.status().to_string();
    EXPECT_EQ(all_metrics(lanes2.value()), all_metrics(lanes8.value()));
    EXPECT_GT(lanes2.value().lat_p50_ns, 0u);
    EXPECT_GE(lanes2.value().lat_max_ns, lanes2.value().lat_p99_ns);
    // Per-slice sample artifacts land beside the configured path.
    EXPECT_TRUE(std::filesystem::exists(config.obs.sample_path + ".slice0"));
    for (u32 s = 0; s < kShardSlices; ++s) {
        std::filesystem::remove(config.obs.sample_path + ".slice" + std::to_string(s));
    }
}

}  // namespace
}  // namespace flowcam::shard
