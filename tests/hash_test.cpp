// Hash-substrate tests: known-answer vectors, determinism, avalanche
// behaviour, bucket-distribution uniformity and cross-seed independence —
// the properties the paper's two-choice scheme relies on. Parameterized
// (TEST_P) across every hash family.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "hash/crc32c.hpp"
#include "hash/hash_function.hpp"
#include "hash/index_gen.hpp"

namespace flowcam::hash {
namespace {

std::vector<u8> bytes_of(const char* text) {
    return {reinterpret_cast<const u8*>(text), reinterpret_cast<const u8*>(text) + strlen(text)};
}

TEST(Crc32c, KnownVectors) {
    // RFC 3720 test vectors for CRC-32C.
    std::vector<u8> zeros(32, 0x00);
    EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
    std::vector<u8> ones(32, 0xFF);
    EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
    std::vector<u8> ascending(32);
    for (int i = 0; i < 32; ++i) ascending[i] = static_cast<u8>(i);
    EXPECT_EQ(crc32c(ascending), 0x46DD794Eu);
}

TEST(Crc32c, EmptyInput) {
    EXPECT_EQ(crc32c({}), 0u);
}

class HashFamilyTest : public ::testing::TestWithParam<HashKind> {};

INSTANTIATE_TEST_SUITE_P(AllKinds, HashFamilyTest,
                         ::testing::Values(HashKind::kCrc32c, HashKind::kLookup3,
                                           HashKind::kMurmur3, HashKind::kTabulation,
                                           HashKind::kH3),
                         [](const auto& info) { return to_string(info.param); });

TEST_P(HashFamilyTest, Deterministic) {
    const auto h1 = make_hash(GetParam(), 42);
    const auto h2 = make_hash(GetParam(), 42);
    const auto input = bytes_of("the quick brown fox");
    EXPECT_EQ(h1->digest(input), h2->digest(input));
}

TEST_P(HashFamilyTest, SeedChangesDigest) {
    const auto h1 = make_hash(GetParam(), 1);
    const auto h2 = make_hash(GetParam(), 2);
    const auto input = bytes_of("the quick brown fox");
    EXPECT_NE(h1->digest(input), h2->digest(input));
}

TEST_P(HashFamilyTest, DifferentKeysDiffer) {
    const auto h = make_hash(GetParam(), 7);
    std::set<u64> digests;
    Xoshiro256 rng(3);
    for (int i = 0; i < 1000; ++i) {
        std::vector<u8> key(13);
        for (auto& byte : key) byte = static_cast<u8>(rng());
        digests.insert(h->digest(key));
    }
    // All 1000 random 13-byte keys should produce distinct 64-bit digests.
    EXPECT_EQ(digests.size(), 1000u);
}

TEST_P(HashFamilyTest, AvalancheSingleBitFlip) {
    // Flipping one input bit should flip a substantial fraction of output
    // bits on average (>= 20 of 64 is a loose but meaningful bound).
    const auto h = make_hash(GetParam(), 99);
    Xoshiro256 rng(17);
    double total_flips = 0;
    int trials = 0;
    for (int t = 0; t < 200; ++t) {
        std::vector<u8> key(13);
        for (auto& byte : key) byte = static_cast<u8>(rng());
        const u64 base = h->digest(key);
        const auto bit = static_cast<std::size_t>(rng.bounded(13 * 8));
        key[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        total_flips += std::popcount(base ^ h->digest(key));
        ++trials;
    }
    EXPECT_GE(total_flips / trials, 20.0) << to_string(GetParam());
}

TEST_P(HashFamilyTest, BucketDistributionIsUniform) {
    // Chi-squared check over 256 buckets with 64k keys: statistic should be
    // within a broad band around its mean (255) — catches gross bias.
    const auto h = make_hash(GetParam(), 5);
    constexpr int kBuckets = 256;
    constexpr int kKeys = 65536;
    std::vector<u64> counts(kBuckets, 0);
    for (int i = 0; i < kKeys; ++i) {
        u8 key[13] = {};
        std::memcpy(key, &i, sizeof(i));
        ++counts[h->digest({key, sizeof(key)}) % kBuckets];
    }
    const double expected = static_cast<double>(kKeys) / kBuckets;
    double chi2 = 0;
    for (const u64 count : counts) {
        const double delta = static_cast<double>(count) - expected;
        chi2 += delta * delta / expected;
    }
    // dof = 255, stddev = sqrt(2*255) ~ 22.6; allow +8 sigma of bias.
    // No lower bound: CRC and H3 are linear codes, so on counter-structured
    // keys they spread *perfectly* (chi2 ~ 0) — a feature in hardware, not
    // a defect.
    EXPECT_LT(chi2, 255.0 + 8 * 22.6) << to_string(GetParam());
}

TEST_P(HashFamilyTest, EmptyKeySupported) {
    const auto h = make_hash(GetParam(), 1);
    // Should not crash; value unspecified but deterministic.
    EXPECT_EQ(h->digest({}), h->digest({}));
}

TEST_P(HashFamilyTest, MultiKeyDigestMatchesScalar) {
    // digest_multi must be bit-identical to per-key digest() for every
    // family — H3 swaps in the vectorized XOR kernel, the others use the
    // default loop — over adversarial key shapes: empty keys, mixed lengths
    // in one batch (the lockstep kernel must handle per-lane tails), keys
    // longer than the 64-byte H3 row table (position wrap-around), all-0xFF,
    // and batch counts that are not a multiple of the 4-lane group width.
    const auto h = make_hash(GetParam(), 77);
    Xoshiro256 rng(41);

    std::vector<std::vector<u8>> keys;
    keys.push_back({});                        // empty
    keys.push_back(std::vector<u8>(1, 0x00));  // single zero byte
    keys.push_back(std::vector<u8>(13, 0xFF));
    keys.push_back(std::vector<u8>(37, 0xAB));  // odd length
    keys.push_back(std::vector<u8>(200, 0x5A));  // wraps the 64-byte row table
    for (std::size_t length : {2u, 5u, 13u, 16u, 31u, 64u, 65u, 128u}) {
        std::vector<u8> key(length);
        for (auto& byte : key) byte = static_cast<u8>(rng());
        keys.push_back(std::move(key));
    }

    // Try every batch size 1..N so group remainders (count % 4 != 0) and
    // every mixed-length adjacency are covered.
    for (std::size_t count = 1; count <= keys.size(); ++count) {
        std::vector<std::span<const u8>> views;
        views.reserve(count);
        for (std::size_t i = 0; i < count; ++i) views.emplace_back(keys[i]);
        std::vector<u64> digests(count, 0);
        h->digest_multi(views.data(), count, digests.data());
        for (std::size_t i = 0; i < count; ++i) {
            EXPECT_EQ(digests[i], h->digest(views[i]))
                << to_string(GetParam()) << " count=" << count << " key=" << i;
        }
    }
}

TEST(IndexGen, MultiKeyDigestMatchesScalarPerPath) {
    IndexGenerator generator(HashKind::kH3, 11, 1 << 10, 2);
    Xoshiro256 rng(5);
    constexpr std::size_t kCount = 9;  // not a multiple of the lane width.
    std::vector<std::vector<u8>> keys(kCount);
    std::vector<std::span<const u8>> views;
    for (std::size_t i = 0; i < kCount; ++i) {
        keys[i].resize(1 + rng.bounded(48));
        for (auto& byte : keys[i]) byte = static_cast<u8>(rng());
        views.emplace_back(keys[i]);
    }
    for (u32 path = 0; path < 2; ++path) {
        std::vector<u64> digests(kCount, 0);
        generator.digest_multi(path, views.data(), kCount, digests.data());
        for (std::size_t i = 0; i < kCount; ++i) {
            EXPECT_EQ(digests[i], generator.digest(path, views[i])) << "path=" << path;
            EXPECT_EQ(generator.index_of_digest(digests[i]),
                      generator.index(path, views[i]))
                << "path=" << path;
        }
    }
}

TEST(IndexGen, TwoPathsAreIndependent) {
    IndexGenerator generator(HashKind::kH3, 1, 1024, 2);
    // Correlation check: the pair (h1, h2) should not be equal for most keys.
    int equal = 0;
    for (int i = 0; i < 2000; ++i) {
        u8 key[13] = {};
        std::memcpy(key, &i, sizeof(i));
        const auto indices = generator.indices({key, sizeof(key)});
        ASSERT_EQ(indices.size(), 2u);
        equal += indices[0] == indices[1];
    }
    // P(h1 == h2) = 1/1024 per key -> expect ~2 of 2000.
    EXPECT_LT(equal, 12);
}

TEST(IndexGen, IndicesWithinRange) {
    IndexGenerator generator(HashKind::kCrc32c, 9, 1 << 12, 2);
    for (int i = 0; i < 1000; ++i) {
        u8 key[13] = {};
        std::memcpy(key, &i, sizeof(i));
        for (const u64 index : generator.indices({key, sizeof(key)})) {
            EXPECT_LT(index, u64{1} << 12);
        }
    }
}

TEST(IndexGen, SupportsMultiPathExtension) {
    // The paper's future work: "multi-path multi-hashing lookup".
    IndexGenerator generator(HashKind::kH3, 4, 4096, 4);
    EXPECT_EQ(generator.paths(), 4u);
    u8 key[13] = {1, 2, 3};
    const auto indices = generator.indices({key, sizeof(key)});
    EXPECT_EQ(indices.size(), 4u);
    std::set<u64> unique(indices.begin(), indices.end());
    EXPECT_GE(unique.size(), 2u);  // paths decorrelated
}

TEST(IndexGen, DigestMatchesIndexFold) {
    IndexGenerator generator(HashKind::kMurmur3, 5, 1 << 10, 2);
    u8 key[13] = {9, 9, 9};
    const u64 digest = generator.digest(0, {key, sizeof(key)});
    const u64 index = generator.index(0, {key, sizeof(key)});
    EXPECT_EQ(index, xor_fold(digest, 10) % (1 << 10));
}

}  // namespace
}  // namespace flowcam::hash
