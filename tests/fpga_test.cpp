// Resource-model tests: calibration against the paper's Table I and
// monotonic scaling of the per-block accounting.
#include <gtest/gtest.h>

#include "fpga/resource_model.hpp"

namespace flowcam::fpga {
namespace {

TEST(ResourceModel, CalibratedToTableI) {
    // Paper Table I (Stratix V 5SGXEA7N2F45C2):
    //   31,006 ALMs (13 %), 2,604,288 block memory bits (5 %),
    //   39,664 registers, 2 PLLs, 2 DLLs.
    const ResourceReport report = estimate(core::FlowLutConfig::prototype_8m());
    EXPECT_NEAR(static_cast<double>(report.total_alms), 31006.0, 31006.0 * 0.10);
    EXPECT_NEAR(static_cast<double>(report.total_memory_bits), 2604288.0, 2604288.0 * 0.10);
    EXPECT_NEAR(static_cast<double>(report.total_registers), 39664.0, 39664.0 * 0.10);
    EXPECT_EQ(report.plls, 2u);
    EXPECT_EQ(report.dlls, 2u);
    EXPECT_NEAR(report.alm_fraction(), 0.13, 0.02);
    EXPECT_NEAR(report.memory_fraction(), 0.05, 0.01);
}

TEST(ResourceModel, TotalsEqualSumOfBlocks) {
    const ResourceReport report = estimate(core::FlowLutConfig::prototype_8m());
    u64 alms = 0;
    u64 bits = 0;
    u64 registers = 0;
    for (const auto& block : report.blocks) {
        alms += block.alms;
        bits += block.memory_bits;
        registers += block.registers;
    }
    EXPECT_EQ(report.total_alms, alms);
    EXPECT_EQ(report.total_memory_bits, bits);
    EXPECT_EQ(report.total_registers, registers);
}

TEST(ResourceModel, CamDepthScalesAlms) {
    core::FlowLutConfig small = core::FlowLutConfig::prototype_8m();
    small.cam_capacity = 256;
    core::FlowLutConfig large = core::FlowLutConfig::prototype_8m();
    large.cam_capacity = 8192;
    EXPECT_LT(estimate(small).total_alms, estimate(large).total_alms);
    EXPECT_LT(estimate(small).total_memory_bits, estimate(large).total_memory_bits);
}

TEST(ResourceModel, QueueDepthScalesMemory) {
    core::FlowLutConfig shallow = core::FlowLutConfig::prototype_8m();
    shallow.lu_queue_depth = 16;
    core::FlowLutConfig deep = core::FlowLutConfig::prototype_8m();
    deep.lu_queue_depth = 256;
    EXPECT_LT(estimate(shallow).total_memory_bits, estimate(deep).total_memory_bits);
}

TEST(ResourceModel, WiderTuplesCostMore) {
    const core::FlowLutConfig config = core::FlowLutConfig::prototype_8m();
    const auto ipv4 = estimate(config, 104);
    const auto ipv6 = estimate(config, 296);  // IPv6 5-tuple
    EXPECT_LT(ipv4.total_alms, ipv6.total_alms);
}

TEST(ResourceModel, ControllersDominatNeitherResourceAlone) {
    // Sanity on the breakdown: the two DDR3 controllers plus the CAM are
    // the top ALM consumers; FIFOs dominate the memory bits.
    const ResourceReport report = estimate(core::FlowLutConfig::prototype_8m());
    u64 controller_alms = 0;
    for (const auto& block : report.blocks) {
        if (block.block.find("uniphy") != std::string::npos) controller_alms += block.alms;
    }
    EXPECT_GT(controller_alms, report.total_alms / 5);
    EXPECT_LT(controller_alms, report.total_alms);
}

TEST(ResourceModel, FitsTargetDevice) {
    const ResourceReport report = estimate(core::FlowLutConfig::prototype_8m());
    EXPECT_LT(report.alm_fraction(), 1.0);
    EXPECT_LT(report.memory_fraction(), 1.0);
}

}  // namespace
}  // namespace flowcam::fpga
