#!/usr/bin/env bash
# Profile the serial scenario sweep and print the top symbols, so the next
# "X% of sweep wall-clock" claim in ROADMAP comes with a committed,
# re-runnable command instead of an anecdote.
#
#   $ scripts/profile.sh [packets] [--bench <name>] [-- <bench args...>]
#
# Prefers `perf record` -> `perf report` when perf is available (needs
# kernel.perf_event_paranoid <= 2 or root). Falls back to a gprof build in
# a throwaway directory otherwise — same compiler flags as Release plus
# -pg, so inlining matches what actually ships closely enough to rank hot
# spots. Either way, the report lands on stdout and the raw artifacts stay
# under the profile build dir for deeper digging.
set -euo pipefail

cd "$(dirname "$0")/.."

PACKETS=20000
BENCH="bench_scenarios"
EXTRA_ARGS=("--jobs=1")
while [[ $# -gt 0 ]]; do
  case "$1" in
    --bench) BENCH="$2"; EXTRA_ARGS=(); shift 2 ;;
    --) shift; EXTRA_ARGS=("$@"); break ;;
    *) PACKETS="$1"; shift ;;
  esac
done

GENERATOR_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi

if command -v perf >/dev/null 2>&1; then
  # Own build dir: configuring check.sh's build-release with extra flags
  # would poison its cached CMAKE_CXX_FLAGS and skew the perf gates.
  BUILD_DIR="build-profile"
  echo "== perf profile: $BENCH $PACKETS ${EXTRA_ARGS[*]} =="
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-fno-omit-frame-pointer" > /dev/null
  cmake --build "$BUILD_DIR" --target "$BENCH" -j > /dev/null
  perf record -g -o "$BUILD_DIR/perf.data" -- \
    "$BUILD_DIR/$BENCH" "$PACKETS" "${EXTRA_ARGS[@]}" > /dev/null
  perf report -i "$BUILD_DIR/perf.data" --stdio --percent-limit 1 | head -60
  echo "raw profile: $BUILD_DIR/perf.data (perf report -i ... for the full tree)"
else
  BUILD_DIR="build-profile"
  echo "== gprof profile (perf not found): $BENCH $PACKETS ${EXTRA_ARGS[*]} =="
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-pg -O2 -g" -DCMAKE_EXE_LINKER_FLAGS="-pg" > /dev/null
  cmake --build "$BUILD_DIR" --target "$BENCH" -j > /dev/null
  (cd "$BUILD_DIR" && "./$BENCH" "$PACKETS" "${EXTRA_ARGS[@]}" > /dev/null)
  gprof -b "$BUILD_DIR/$BENCH" "$BUILD_DIR/gmon.out" | head -40
  echo "raw profile: $BUILD_DIR/gmon.out (gprof $BUILD_DIR/$BENCH ... for call graphs)"
fi
