#!/usr/bin/env bash
# Single CI entry point: configure, build, run the full test suite, a quick
# end-to-end scenario smoke (including a composed spec, a trace replay and a
# replay-background composition), an experiment smoke (a tiny 2x2 scenario x
# cam-depth grid whose CSV/JSONL must be byte-identical serial vs parallel;
# the grid CSV is a CI artifact), a trace smoke (a composed scenario with the
# flight recorder on — the Chrome trace JSON and sampler JSONL must be
# well-formed, and both are CI artifacts), a sharded-execution smoke (a
# lanes=FLOWCAM_SHARD_LANES run must be byte-identical to a different
# lane count and match the monolithic run's conserved stream totals), a
# fault-injection smoke (every
# fault family fired once under the invariant auditor; audit_violations must
# stay 0), then a Release build with hot-path performance gates (allocation
# counter + wall-clock ceilings). The zero-alloc gate also covers the
# overload policies: bench_hotpath's rotating_reuse_policies mode runs
# admission+eviction+reservation enabled and must stay at 0 steady-state
# allocations like every other *_reuse mode.
#
#   $ scripts/check.sh [--quick|--chaos] [build-dir]
#
# --quick skips the Release perf-gate stages — that's the CI Debug-assertions
# job, which only wants correctness under assertions, not timings.
# --chaos runs only configure + build + the fault-injection smoke + the
# correlated-campaign smoke (governor on, recovery SLO asserted) — that's
# the CI chaos arm, which randomizes FLOWCAM_FAULT_SEED per run so every CI
# pass explores a different fault schedule (the seed is echoed so a red run
# is reproducible locally with the same FLOWCAM_FAULT_SEED).
#
# Environment knobs:
#   FLOWCAM_SANITIZE=1      configure with -DFLOWCAM_SANITIZE=ON (ASan+UBSan)
#   FLOWCAM_FAULT_SEED=N    fault-injection RNG seed for the fault smoke
#                           (default 0 = the deterministic built-in seed)
#   FLOWCAM_SHARD_LANES=N   lane count for the shard smoke (1|2|4|8,
#                           default 4)
#   FLOWCAM_SWEEP_CEILING=S serial sweep median ceiling in seconds
#
# Exits non-zero on the first failure, naming the stage that failed. Honors
# CMAKE_BUILD_TYPE and GENERATOR from the environment (defaults:
# RelWithDebInfo, Ninja if available). Most wall-clock ceilings are
# deliberately loose (order-of-magnitude guards for slow CI machines); the
# sharp regression gates are bench_hotpath's built-in zero-allocation check
# (0 steady-state allocations for every *_reuse mode), bench_dram_sched's
# built-in indexed-vs-reference scheduler equivalence smoke, and the serial
# sweep ceiling (median of 3 runs <= FLOWCAM_SWEEP_CEILING seconds, default
# 0.65 — the PR 5 target on the 1-core CI container; raise the env var on
# slower hardware). Every test gets a ctest-level timeout so a hung sim
# cannot wedge a runner.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
CHAOS=0
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --chaos) CHAOS=1 ;;
    -*) echo "unknown flag: $arg (usage: scripts/check.sh [--quick|--chaos] [build-dir])" >&2; exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

STAGE="startup"
STAGE_DETAIL=""
stage() {
  STAGE="$1"
  STAGE_DETAIL=""
  echo "== $STAGE =="
}
on_exit() {
  local code=$?
  if [[ $code -ne 0 ]]; then
    echo "CHECK FAILED (exit $code) during stage: $STAGE" >&2
    if [[ -n "$STAGE_DETAIL" ]]; then
      echo "  detail: $STAGE_DETAIL" >&2
    fi
  fi
}
trap on_exit EXIT

# Five-arm fault smoke: every fault family fired once under the invariant
# auditor. FLOWCAM_FAULT_SEED (default 0 = the deterministic built-in seed)
# reseeds the single fault RNG stream — the CI chaos arm sets it from the run
# id so each pass explores a different schedule; the echoed seed makes any
# red run reproducible locally.
run_fault_smoke() {
  FAULT_SEED="${FLOWCAM_FAULT_SEED:-0}"
  stage "fault-injection smoke (every family under the auditor; fault.seed=$FAULT_SEED)"
  STAGE_DETAIL="reproduce with FLOWCAM_FAULT_SEED=$FAULT_SEED scripts/check.sh --chaos"
  echo "fault smoke: fault.seed=$FAULT_SEED (set FLOWCAM_FAULT_SEED to reproduce)"
  FAULT_CSV="$BUILD_DIR/check-faults.csv"
  FAULT_ARMS=(
    "fault.ddr_reject_p=0.05 fault.ddr_reject_len=4"
    "fault.resp_delay_p=0.05 fault.resp_delay_cycles=48"
    "fault.resp_dup_p=0.03"
    "fault.buffer_storm_p=0.01 fault.buffer_storm_len=8"
    "fault.expiry_skew_ns=1000000 lut.flow_timeout_ns=200000"
  )
  for arm in "${FAULT_ARMS[@]}"; do
    rm -f "$FAULT_CSV"
    SET_ARGS=(--set=fault.audit=1 "--set=fault.seed=$FAULT_SEED")
    for kv in $arm; do SET_ARGS+=("--set=$kv"); done
    "$BUILD_DIR/scenario_runner" --scenario=syn_flood --attack=0.6 --packets=3000 \
      "${SET_ARGS[@]}" --csv="$FAULT_CSV" > /dev/null
    # Columns by NAME (the schema may grow): auditor green, and the configured
    # fault actually fired (expiry skew has no RNG counter — its signature is
    # forced expiries instead).
    awk -F, -v arm="$arm" '
      NR == 1 { for (i = 1; i <= NF; i++) col[$i] = i; next }
      NR == 2 {
        if ($col["status"] != "ok") {
          printf "fault smoke [%s]: status=%s\n", arm, $col["status"]; exit 1
        }
        if ($col["audit_violations"] != "0") {
          printf "fault smoke [%s]: audit_violations=%s\n", arm,
                 $col["audit_violations"]; exit 1
        }
        fired = $col["faults_injected"] + 0
        expired = $col["flows_expired"] + 0
        if (fired == 0 && expired == 0) {
          printf "fault smoke [%s]: fault never fired\n", arm; exit 1
        }
        printf "fault smoke [%s]: faults=%d expired=%d, auditor green\n",
               arm, fired, expired
      }' "$FAULT_CSV"
  done
}

# Correlated-campaign smoke: governor on, a two-window correlated fault
# campaign overlapping a windowed syn_flood, invariant auditor armed, 1e6x
# time compression so flood entries expire mid-run. The recovery-SLO
# contract: the run ends back at L0 within governor.recovery_budget with the
# auditor green. On violation the governor's level timeline (from the obs
# sampler) is printed so a red run shows WHERE the staircase got stuck.
run_campaign_smoke() {
  FAULT_SEED="${FLOWCAM_FAULT_SEED:-0}"
  stage "correlated-campaign smoke (governor on; recovery SLO; fault.seed=$FAULT_SEED)"
  STAGE_DETAIL="reproduce with FLOWCAM_FAULT_SEED=$FAULT_SEED scripts/check.sh --chaos"
  CAMPAIGN_CSV="$BUILD_DIR/check-campaign.csv"
  CAMPAIGN_SAMPLES="$BUILD_DIR/check-campaign-samples.jsonl"
  rm -f "$CAMPAIGN_CSV" "$CAMPAIGN_SAMPLES"
  # churn background: its live set is pool-bounded (256 flows), so the
  # post-flood tail always decays below every exit threshold and the
  # walk-down to L0 is seed-robust (a baseline background keeps ~80% tail
  # occupancy at this geometry and flaps at the L1 boundary by fault seed).
  "$BUILD_DIR/scenario_runner" \
    --scenario='churn+syn_flood@onset=0.1,offset=0.45,attack=0.9' --packets=8000 \
    --set=scenario.pool_size=256 \
    --set=lut.buckets_per_mem=256 --set=lut.cam_capacity=128 \
    --set=runner.time_scale=1000000 \
    --set=governor.on=1 --set=governor.interval=128 --set=governor.dwell=512 \
    --set=governor.recovery_budget=20000 \
    --set=fault.audit=1 "--set=fault.seed=$FAULT_SEED" \
    --set=fault.campaign_onset=2000 --set=fault.campaign_len=1500 \
    --set=fault.campaign_period=3000 --set=fault.campaign_count=2 \
    --set=fault.campaign_intensity=0.2 \
    --set=obs.sample_interval=256 --set=obs.sample_path="$CAMPAIGN_SAMPLES" \
    --csv="$CAMPAIGN_CSV" > /dev/null
  # The composed scenario spec renders as a quoted CSV field with embedded
  # commas; flatten it to a bare token so awk's comma split stays aligned.
  if ! sed 's/"[^"]*"/composed/' "$CAMPAIGN_CSV" | awk -F, '
    NR == 1 { for (i = 1; i <= NF; i++) col[$i] = i; next }
    NR == 2 {
      if ($col["status"] != "ok") {
        printf "campaign smoke: status=%s\n", $col["status"]; exit 1 }
      if ($col["audit_violations"] != "0") {
        printf "campaign smoke: audit_violations=%s\n", $col["audit_violations"]; exit 1 }
      if ($col["fault_campaign_windows"] + 0 < 1) {
        printf "campaign smoke: campaign never opened a window\n"; exit 1 }
      if ($col["faults_injected"] + 0 == 0) {
        printf "campaign smoke: no fault ever fired inside the windows\n"; exit 1 }
      if ($col["governor_max_level"] + 0 < 1) {
        printf "campaign smoke: governor never escalated\n"; exit 1 }
      if ($col["governor_final_level"] != "0") {
        printf "campaign smoke: still degraded at end of run (L%s)\n",
               $col["governor_final_level"]; exit 1 }
      if ($col["governor_slo_ok"] != "1") {
        printf "campaign smoke: recovery SLO violated (walk-down %s cycles)\n",
               $col["governor_recovery_cycles"]; exit 1 }
      printf "campaign smoke: windows=%s faults=%s max_level=L%s recovery=%s cycles, SLO met, auditor green\n",
             $col["fault_campaign_windows"], $col["faults_injected"],
             $col["governor_max_level"], $col["governor_recovery_cycles"]
    }'; then
    echo "campaign smoke failed; governor level timeline (cycle -> level):" >&2
    # The sampler JSONL carries the governor.level gauge per sample — the
    # staircase itself, so a stuck walk-down is visible at a glance.
    sed -n 's/.*"cycle":\([0-9]*\).*"governor\.level":\([0-9]*\).*/  \1 -> L\2/p' \
      "$CAMPAIGN_SAMPLES" | uniq -f 2 >&2 || true
    exit 1
  fi
}

GENERATOR_ARGS=()
if [[ -z "${GENERATOR:-}" ]] && command -v ninja >/dev/null 2>&1; then
  GENERATOR="Ninja"
fi
if [[ -n "${GENERATOR:-}" ]]; then
  GENERATOR_ARGS=(-G "$GENERATOR")
fi

SANITIZE_ARGS=()
if [[ "${FLOWCAM_SANITIZE:-0}" != "0" ]]; then
  SANITIZE_ARGS=(-DFLOWCAM_SANITIZE=ON)
  echo "sanitizers: ASan + UBSan (FLOWCAM_SANITIZE=${FLOWCAM_SANITIZE})"
fi

stage "configure"
cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-RelWithDebInfo}" "${SANITIZE_ARGS[@]}"

stage "build"
cmake --build "$BUILD_DIR" -j

if [[ $CHAOS -eq 1 ]]; then
  run_fault_smoke
  run_campaign_smoke
  stage "done (--chaos: fault + correlated-campaign smokes only)"
  echo "OK"
  exit 0
fi

stage "test"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" --timeout 120

stage "scenario smoke"
"$BUILD_DIR/scenario_runner" --all --packets=3000
"$BUILD_DIR/scenario_runner" --scenario='flash_crowd+syn_flood@onset=0.3,ramp=0.0:0.4' \
  --packets=3000
REPLAY_SMOKE="$BUILD_DIR/check-replay-smoke.csv"
printf 'timestamp_ns,src,dst,src_port,dst_port,protocol,bytes\n1000,10.0.0.1,10.0.0.2,1234,80,tcp,100\n2000,2001:db8::1,2001:db8::2,5000,443,tcp,1500\n' > "$REPLAY_SMOKE"
"$BUILD_DIR/scenario_runner" --scenario="replay:$REPLAY_SMOKE" --packets=1000
"$BUILD_DIR/scenario_runner" --scenario="replay:$REPLAY_SMOKE+syn_flood@onset=0.3" --packets=1000

stage "experiment smoke (2x2 grid; serial == --jobs byte-identity)"
"$BUILD_DIR/scenario_runner" --list-keys > /dev/null
# JSONL sinks append (trajectory semantics) — start the cmp from clean files.
rm -f "$BUILD_DIR"/experiment-grid-serial.{csv,jsonl} "$BUILD_DIR"/experiment-grid.{csv,jsonl}
"$BUILD_DIR/scenario_runner" --scenario=baseline --scenario=syn_flood \
  --sweep=lut.cam_capacity=512,1024 --packets=2000 --jobs=1 \
  --csv="$BUILD_DIR/experiment-grid-serial.csv" --jsonl="$BUILD_DIR/experiment-grid-serial.jsonl" \
  > /dev/null
"$BUILD_DIR/scenario_runner" --scenario=baseline --scenario=syn_flood \
  --sweep=lut.cam_capacity=512,1024 --packets=2000 --jobs="$(nproc)" \
  --csv="$BUILD_DIR/experiment-grid.csv" --jsonl="$BUILD_DIR/experiment-grid.jsonl"
cmp "$BUILD_DIR/experiment-grid-serial.csv" "$BUILD_DIR/experiment-grid.csv"
cmp "$BUILD_DIR/experiment-grid-serial.jsonl" "$BUILD_DIR/experiment-grid.jsonl"

stage "trace smoke (composed scenario with obs.trace=1; JSON must be loadable)"
rm -f "$BUILD_DIR/check-trace.json" "$BUILD_DIR/check-samples.jsonl"
"$BUILD_DIR/scenario_runner" --scenario='flash_crowd+syn_flood@onset=0.3' --packets=3000 \
  --set=obs.trace=1 --set=obs.trace_path="$BUILD_DIR/check-trace.json" \
  --set=obs.sample_interval=512 --set=obs.sample_path="$BUILD_DIR/check-samples.jsonl" \
  > /dev/null
test -s "$BUILD_DIR/check-trace.json"
test -s "$BUILD_DIR/check-samples.jsonl"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$BUILD_DIR/check-trace.json" "$BUILD_DIR/check-samples.jsonl" <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert len(events) > 0, "empty traceEvents"
for event in events:
    for key in ("ph", "ts", "pid", "tid", "name"):
        assert key in event, f"event missing {key}: {event}"
rows = [json.loads(line) for line in open(sys.argv[2])]
assert len(rows) > 1 and all("cycle" in r for r in rows), "bad sampler JSONL"
print(f"trace smoke: {len(events)} events, {len(rows)} sampler rows")
PY
else
  # No python3: at least reject a truncated write (the emitter always closes
  # with the otherData object and a trailing newline).
  tail -c 8 "$BUILD_DIR/check-trace.json" | grep -q '}' || {
    echo "check-trace.json looks truncated" >&2; exit 1; }
fi

SHARD_LANES="${FLOWCAM_SHARD_LANES:-4}"
stage "shard smoke (lanes=$SHARD_LANES: merge invariance + conserved totals vs monolithic)"
STAGE_DETAIL="set FLOWCAM_SHARD_LANES (1|2|4|8) to change the sharded arm"
SHARD_MONO_CSV="$BUILD_DIR/check-shard-mono.csv"
SHARD_CSV="$BUILD_DIR/check-shard-lanes.csv"
SHARD_ALT_CSV="$BUILD_DIR/check-shard-alt.csv"
rm -f "$SHARD_MONO_CSV" "$SHARD_CSV" "$SHARD_ALT_CSV"
"$BUILD_DIR/scenario_runner" --scenario=syn_flood --attack=0.6 --packets=3000 \
  --csv="$SHARD_MONO_CSV" > /dev/null
"$BUILD_DIR/scenario_runner" --scenario=syn_flood --attack=0.6 --packets=3000 \
  "--set=shard.lanes=$SHARD_LANES" --jobs="$(nproc)" --csv="$SHARD_CSV" > /dev/null
if [[ "$SHARD_LANES" != "1" ]]; then
  # Merged metrics are lane-count invariant (the simulation unit is the
  # slice, lanes only group slices), so a different lane count — run serial
  # to also cover thread-count invariance — must be byte-identical.
  ALT_LANES=2
  [[ "$SHARD_LANES" == "2" ]] && ALT_LANES=8
  "$BUILD_DIR/scenario_runner" --scenario=syn_flood --attack=0.6 --packets=3000 \
    "--set=shard.lanes=$ALT_LANES" --jobs=1 --csv="$SHARD_ALT_CSV" > /dev/null
  cmp "$SHARD_CSV" "$SHARD_ALT_CSV"
fi
# Stream-side totals and end-to-end conservation must match the monolithic
# run exactly, whatever the lane count. Columns by NAME (the schema grows).
awk -F, -v lanes="$SHARD_LANES" '
  FNR == 1 { for (i = 1; i <= NF; i++) col[$i] = i; next }
  NR == FNR {                  # first file (monolithic) data row
    n = split("status,packets,bytes,distinct_flows,overlay_packets,trace_span_ns,completions,new_flows,drained", keys, ",")
    for (k = 1; k <= n; k++) mono[keys[k]] = $col[keys[k]]
    next
  }
  FNR == 2 {                   # second file (sharded) data row
    if ($col["status"] != "ok") {
      printf "shard smoke: lanes=%s status=%s\n", lanes, $col["status"]; exit 1
    }
    if ($col["drained"] != "1" && $col["drained"] != "true") {
      printf "shard smoke: lanes=%s not drained\n", lanes; exit 1
    }
    n = split("packets,bytes,distinct_flows,overlay_packets,trace_span_ns,completions,new_flows", keys, ",")
    for (k = 1; k <= n; k++) {
      if ($col[keys[k]] != mono[keys[k]]) {
        printf "shard smoke: lanes=%s %s=%s != monolithic %s\n",
               lanes, keys[k], $col[keys[k]], mono[keys[k]]; exit 1
      }
    }
    printf "shard smoke: lanes=%s conserved totals match monolithic (packets=%s completions=%s)\n",
           lanes, $col["packets"], $col["completions"]
  }' "$SHARD_MONO_CSV" "$SHARD_CSV"

run_fault_smoke
run_campaign_smoke

if [[ $QUICK -eq 1 ]]; then
  stage "done (--quick: Release perf gates skipped)"
  echo "OK"
  exit 0
fi

stage "release build"
RELEASE_DIR="$BUILD_DIR-release"
cmake -B "$RELEASE_DIR" -S . "${GENERATOR_ARGS[@]}" -DCMAKE_BUILD_TYPE=Release
cmake --build "$RELEASE_DIR" -j

stage "hot-path budget (zero-alloc gate + 60s ceiling; ~3s expected)"
timeout 60 "$RELEASE_DIR/bench_hotpath" 200000

stage "DDR3 scheduler budget (indexed==reference equivalence smoke + 60s ceiling)"
timeout 60 "$RELEASE_DIR/bench_dram_sched" 50000

stage "parallel sweep ceiling (45s; ~1s expected at --jobs=nproc)"
timeout 45 "$RELEASE_DIR/bench_scenarios" 20000 --jobs="$(nproc)"

stage "serial sweep ceiling (median of 3 <= \${FLOWCAM_SWEEP_CEILING:-0.65}s)"
CEILING="${FLOWCAM_SWEEP_CEILING:-0.65}"
TIMES=()
for _ in 1 2 3; do
  t0=$(date +%s%N)
  timeout 45 "$RELEASE_DIR/bench_scenarios" 20000 --jobs=1 > /dev/null
  t1=$(date +%s%N)
  TIMES+=("$(( (t1 - t0) / 1000000 ))")
done
MEDIAN_MS=$(printf '%s\n' "${TIMES[@]}" | sort -n | sed -n 2p)
STAGE_DETAIL="median ${MEDIAN_MS} ms vs ceiling ${CEILING}s (runs: ${TIMES[*]} ms; raise FLOWCAM_SWEEP_CEILING on slower hardware)"
echo "serial 8-scenario 20k sweep: runs ${TIMES[*]} ms, median ${MEDIAN_MS} ms (ceiling ${CEILING}s)"
awk -v m="$MEDIAN_MS" -v c="$CEILING" 'BEGIN { exit !(m / 1000.0 <= c) }' || {
  echo "serial sweep median ${MEDIAN_MS} ms exceeds ceiling ${CEILING}s" >&2
  exit 1
}

stage "done"
echo "OK"
