#!/usr/bin/env bash
# Single CI entry point: configure, build, run the full test suite, then a
# quick end-to-end scenario smoke through the timed Flow LUT.
#
#   $ scripts/check.sh [build-dir]
#
# Exits non-zero on the first failure. Honors CMAKE_BUILD_TYPE and GENERATOR
# from the environment (defaults: RelWithDebInfo, Ninja if available).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

GENERATOR_ARGS=()
if [[ -z "${GENERATOR:-}" ]] && command -v ninja >/dev/null 2>&1; then
  GENERATOR="Ninja"
fi
if [[ -n "${GENERATOR:-}" ]]; then
  GENERATOR_ARGS=(-G "$GENERATOR")
fi

echo "== configure =="
cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-RelWithDebInfo}"

echo "== build =="
cmake --build "$BUILD_DIR" -j

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== scenario smoke =="
"$BUILD_DIR/scenario_runner" --all --packets=3000

echo "OK"
