#!/usr/bin/env bash
# Single CI entry point: configure, build, run the full test suite, a quick
# end-to-end scenario smoke, then a Release build with hot-path performance
# gates (allocation counter + wall-clock ceilings).
#
#   $ scripts/check.sh [build-dir]
#
# Exits non-zero on the first failure. Honors CMAKE_BUILD_TYPE and GENERATOR
# from the environment (defaults: RelWithDebInfo, Ninja if available).
# Wall-clock ceilings are deliberately loose (order-of-magnitude guards for
# slow CI machines); the sharp regression gate is bench_hotpath's built-in
# zero-allocation check, which fails the run on its own.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

GENERATOR_ARGS=()
if [[ -z "${GENERATOR:-}" ]] && command -v ninja >/dev/null 2>&1; then
  GENERATOR="Ninja"
fi
if [[ -n "${GENERATOR:-}" ]]; then
  GENERATOR_ARGS=(-G "$GENERATOR")
fi

echo "== configure =="
cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-RelWithDebInfo}"

echo "== build =="
cmake --build "$BUILD_DIR" -j

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== scenario smoke =="
"$BUILD_DIR/scenario_runner" --all --packets=3000

echo "== release build =="
RELEASE_DIR="$BUILD_DIR-release"
cmake -B "$RELEASE_DIR" -S . "${GENERATOR_ARGS[@]}" -DCMAKE_BUILD_TYPE=Release
cmake --build "$RELEASE_DIR" -j

echo "== hot-path budget (zero-alloc gate + 60s ceiling; ~3s expected) =="
timeout 60 "$RELEASE_DIR/bench_hotpath" 200000

echo "== sweep ceiling (30s; ~1s expected at --jobs=nproc) =="
timeout 30 "$RELEASE_DIR/bench_scenarios" 20000 --jobs="$(nproc)"

echo "OK"
