// Ablation A4: BWr_Gen burst-write threshold (paper Fig. 5).
//
// BWr_Gen holds insert/delete writes and releases them in batches so the
// controller issues long write bursts (Fig. 3 economics). Threshold 1
// degenerates to write-through; large thresholds amortize turnaround but
// grow the pending-update window the Request Filter must cover. Workload:
// Table II(B) at 100 % miss (every descriptor inserts), the most
// write-intensive case.
#include <iostream>

#include "bench_util.hpp"

using namespace flowcam;

int main() {
    constexpr u64 kDescriptors = 8000;
    TablePrinter table({"burst threshold", "rate @100% miss (Mdesc/s)", "mean burst len",
                        "RW turnarounds (ch A)"});

    for (const u32 threshold : {1u, 2u, 4u, 8u, 16u, 32u}) {
        core::FlowLutConfig config;
        config.buckets_per_mem = u64{1} << 16;
        config.ways = 4;
        config.cam_capacity = 2048;
        config.burst_write_threshold = threshold;
        config.burst_write_timeout = 128;
        core::FlowLut lut(config);
        Xoshiro256 rng(77);
        const auto result = bench::run_throughput(
            lut, [&](u64 i) { return net::synth_tuple(i + (u64{1} << 33), 9); }, kDescriptors,
            2);
        const auto& updates_a = lut.update_block(core::Path::kA).stats();
        const auto& updates_b = lut.update_block(core::Path::kB).stats();
        const u64 bursts = updates_a.bursts_released + updates_b.bursts_released;
        const u64 released = updates_a.requests_released + updates_b.requests_released;
        const double mean = bursts == 0 ? 0.0 : static_cast<double>(released) /
                                                    static_cast<double>(bursts);
        table.add_row({std::to_string(threshold), TablePrinter::fixed(result.mdesc_per_s, 2),
                       TablePrinter::fixed(mean, 1),
                       std::to_string(lut.controller(core::Path::kA).stats().rw_turnarounds)});
    }
    table.print(std::cout, "Ablation A4: BWr_Gen burst threshold (all-insert workload)");
    bench::print_shape_note(
        "larger write batches cut read/write bus turnarounds (fewer direction\n"
        "switches), recovering throughput on insert-heavy traffic — the Fig. 3\n"
        "bandwidth curve applied to the update path.");
    return 0;
}
