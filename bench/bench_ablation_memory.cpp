// Ablation A6: memory technology — QDRII+ SRAM vs. DDR3 SDRAM.
//
// The paper's §I motivation in one table: QDR SRAM gives deterministic
// low-latency random access but tops out at 144 Mbit (≈1.1 M flow entries
// at 16 B), while DDR3 holds 8 M+ entries but pays row-cycle latency that
// the Flow LUT's whole architecture exists to hide. This bench measures
// random bucket-read throughput on both and tabulates the capacity wall.
#include <iostream>

#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "dram/controller.hpp"
#include "dram/pattern_sim.hpp"
#include "dram/qdr_sram.hpp"

using namespace flowcam;

namespace {

/// Random single-burst reads through the DDR3 controller; returns million
/// reads per second at the given command clock.
double ddr3_random_read_rate(u32 banks, u32 accesses) {
    const dram::DramTimings timings = dram::ddr3_1600();
    dram::Geometry geometry;
    geometry.banks = banks;
    dram::ControllerConfig config;
    config.refresh_enabled = true;
    config.interleave_bytes = 64;
    dram::DramController controller("ddr3", timings, geometry, config);
    Xoshiro256 rng(5);

    u64 issued = 0;
    u64 completed = 0;
    Cycle now = 0;
    while (completed < accesses && now < 10'000'000) {
        if (issued < accesses) {
            dram::MemRequest request;
            request.id = issued + 1;
            request.byte_address = rng.bounded(1 << 22) * 64;
            request.bursts = 2;
            if (controller.enqueue(request)) ++issued;
        }
        controller.tick(now++);
        while (controller.pop_response()) ++completed;
    }
    const double seconds = static_cast<double>(now) * timings.tck_ns * 1e-9;
    return static_cast<double>(completed) / seconds / 1e6;
}

/// Random reads on the QDR model; million reads per second.
double qdr_random_read_rate(u32 accesses) {
    dram::QdrConfig config;
    dram::QdrSram sram("qdr", config);
    Xoshiro256 rng(5);
    u64 issued = 0;
    u64 completed = 0;
    Cycle now = 0;
    while (completed < accesses && now < 10'000'000) {
        if (issued < accesses &&
            sram.enqueue_read(issued + 1, rng.bounded(1 << 20) * 16)) {
            ++issued;
        }
        sram.tick(now++);
        while (sram.pop_response()) ++completed;
    }
    const double seconds = static_cast<double>(now) / (config.clock_mhz * 1e6);
    return static_cast<double>(completed) / seconds / 1e6;
}

}  // namespace

int main() {
    constexpr u32 kAccesses = 20000;

    TablePrinter table({"technology", "random reads (M/s)", "capacity (flow entries @16B)",
                        "8M-flow table?"});
    const double qdr = qdr_random_read_rate(kAccesses);
    const u64 qdr_entries = 144ull * 1024 * 1024 / 8 / 16;
    table.add_row({"QDRII+ SRAM (144 Mbit)", TablePrinter::fixed(qdr, 1),
                   std::to_string(qdr_entries), "NO (18 MiB total)"});
    const double ddr_1bank = ddr3_random_read_rate(1, kAccesses);
    table.add_row({"DDR3-1600, 1 bank (no reorder)", TablePrinter::fixed(ddr_1bank, 1),
                   "512M+ per channel", "yes"});
    const double ddr_8bank = ddr3_random_read_rate(8, kAccesses);
    table.add_row({"DDR3-1600, 8 banks (bank-selected)", TablePrinter::fixed(ddr_8bank, 1),
                   "512M+ per channel", "yes"});
    table.print(std::cout, "Ablation A6: memory technology (paper §I motivation)");

    std::cout << "\nshape check: QDR wins raw random-access rate but cannot hold the 8M-entry\n"
                 "table the paper targets (its [11] QDR design topped out at 128K entries);\n"
                 "DDR3 with bank interleaving closes most of the rate gap at ~30x the\n"
                 "capacity — the design space that motivates the Hash-CAM scheme.\n";
    return 0;
}
