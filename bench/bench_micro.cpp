// Google-benchmark microbenches for the hot software paths: hash digest
// throughput per family, CAM search, Hash-CAM functional operations, DRAM
// controller command throughput, and trace generation.
#include <benchmark/benchmark.h>

#include "cam/cam.hpp"
#include "core/flow_lut.hpp"
#include "core/hash_cam_table.hpp"
#include "dram/controller.hpp"
#include "hash/hash_function.hpp"
#include "net/trace.hpp"

using namespace flowcam;

namespace {

void BM_HashDigest(benchmark::State& state) {
    const auto kind = static_cast<hash::HashKind>(state.range(0));
    const auto h = hash::make_hash(kind, 1);
    const auto key = net::synth_tuple(1, 1).key_bytes();
    for (auto _ : state) {
        benchmark::DoNotOptimize(h->digest({key.data(), key.size()}));
    }
    state.SetLabel(to_string(kind));
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * key.size());
}
BENCHMARK(BM_HashDigest)->DenseRange(0, 4);

void BM_CamLookup(benchmark::State& state) {
    cam::Cam device(static_cast<std::size_t>(state.range(0)));
    for (i64 i = 0; i < state.range(0); ++i) {
        const auto key = net::synth_tuple(static_cast<u64>(i), 2).key_bytes();
        (void)device.insert({key.data(), key.size()}, static_cast<u64>(i));
    }
    const auto probe = net::synth_tuple(static_cast<u64>(state.range(0) / 2), 2).key_bytes();
    for (auto _ : state) {
        benchmark::DoNotOptimize(device.lookup({probe.data(), probe.size()}));
    }
}
BENCHMARK(BM_CamLookup)->Arg(64)->Arg(1024)->Arg(4096);

void BM_HashCamFunctionalLookup(benchmark::State& state) {
    core::FlowLutConfig config;
    config.buckets_per_mem = 1 << 14;
    core::HashCamTable table(config);
    for (u64 i = 0; i < 10000; ++i) {
        const auto key = net::synth_tuple(i, 3).key_bytes();
        (void)table.insert({key.data(), key.size()}, i + 1);
    }
    u64 cursor = 0;
    for (auto _ : state) {
        const auto key = net::synth_tuple(cursor++ % 10000, 3).key_bytes();
        benchmark::DoNotOptimize(table.lookup({key.data(), key.size()}));
    }
}
BENCHMARK(BM_HashCamFunctionalLookup);

void BM_DramRandomReads(benchmark::State& state) {
    const dram::DramTimings timings = dram::ddr3_1600();
    dram::Geometry geometry;
    dram::ControllerConfig config;
    config.refresh_enabled = false;
    config.interleave_bytes = 64;
    dram::DramController controller("bench", timings, geometry, config);
    Xoshiro256 rng(1);
    Cycle now = 0;
    u64 id = 1;
    u64 completed = 0;
    for (auto _ : state) {
        // Keep the queue fed and tick until one read completes.
        while (true) {
            dram::MemRequest request;
            request.id = id;
            request.byte_address = rng.bounded(1 << 20) * 64;
            request.bursts = 2;
            if (!controller.enqueue(request)) break;
            ++id;
        }
        controller.tick(now++);
        while (controller.pop_response()) ++completed;
        benchmark::DoNotOptimize(completed);
    }
    state.counters["reads/ktick"] =
        benchmark::Counter(static_cast<double>(completed) * 1000.0 / static_cast<double>(now));
}
BENCHMARK(BM_DramRandomReads);

void BM_TraceGeneration(benchmark::State& state) {
    net::TraceConfig config;
    net::TraceGenerator generator(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(generator.next());
    }
}
BENCHMARK(BM_TraceGeneration);

void BM_FlowLutStep(benchmark::State& state) {
    core::FlowLutConfig config;
    config.buckets_per_mem = 1 << 12;
    core::FlowLut lut(config);
    u64 i = 0;
    for (auto _ : state) {
        if (lut.now() % 2 == 0) {
            (void)lut.offer(net::NTuple::from_five_tuple(net::synth_tuple(i++ % 1000, 4)),
                            i, 64);
        }
        lut.step();
        while (lut.pop_completion()) {
        }
    }
    state.counters["sim-Mdesc/s"] = lut.mdesc_per_second();
}
BENCHMARK(BM_FlowLutStep);

}  // namespace

BENCHMARK_MAIN();
