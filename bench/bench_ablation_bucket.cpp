// Ablation A1: bucket size K (entries per hash location).
//
// K trades DDR burst length against collision pressure: larger buckets mean
// more bursts per lookup (bandwidth) but fewer CAM spills (capacity). The
// paper fixes K per prototype; this bench shows why a burst-sized bucket is
// the sweet spot.
#include <iostream>

#include "bench_util.hpp"

using namespace flowcam;

int main() {
    constexpr u64 kDescriptors = 8000;
    TablePrinter table({"ways K", "bucket bytes", "bursts/bucket", "rate @50% miss (Mdesc/s)",
                        "CAM entries after build"});

    for (const u32 ways : {1u, 2u, 4u, 8u}) {
        core::FlowLutConfig config;
        config.buckets_per_mem = (u64{1} << 16) / ways;  // constant total capacity
        config.ways = ways;
        config.cam_capacity = 4096;
        core::FlowLut lut(config);
        bench::MissRateWorkload workload(lut, 8000, 0.5, 11);
        const auto result =
            bench::run_throughput(lut, [&](u64 i) { return workload(i); }, kDescriptors, 2);
        table.add_row({std::to_string(ways), std::to_string(config.bucket_bytes()),
                       std::to_string(config.bursts_per_bucket()),
                       TablePrinter::fixed(result.mdesc_per_s, 2),
                       std::to_string(lut.table().cam_entries())});
    }
    table.print(std::cout, "Ablation A1: bucket size sweep at fixed total capacity");
    bench::print_shape_note(
        "small K collides into the CAM; large K pays multi-burst reads per lookup.\n"
        "K=4 (one or two DDR bursts) balances both, matching the paper's design point.");
    return 0;
}
