// Ablation A5: the paper's Hash-CAM scheme vs. the related-work baselines
// ([6] two-choice, [7] cuckoo, [8] Bloom+CAM, [9] Kirsch one-move, plus a
// conventional single-hash table), all behind the same LookupTable
// interface on identical key streams.
//
// Metrics are the hardware-relevant costs: bucket reads per lookup (DDR
// bursts), writes + relocations per insert (the paper's criticism of
// cuckoo/one-move), and insert failures at rising load factor.
#include <iostream>
#include <memory>
#include <vector>

#include "common/table_printer.hpp"
#include "core/hash_cam_table.hpp"
#include "net/trace.hpp"
#include "table/bloom_cam.hpp"
#include "table/cuckoo.hpp"
#include "table/kirsch_one_move.hpp"
#include "table/single_hash.hpp"
#include "table/two_choice.hpp"

using namespace flowcam;

namespace {

std::vector<std::unique_ptr<table::LookupTable>> make_tables() {
    std::vector<std::unique_ptr<table::LookupTable>> tables;
    // All sized to ~64k-66k slots so load factors line up.
    table::BucketTableConfig single;
    single.buckets = 16384;
    single.ways = 4;
    tables.push_back(std::make_unique<table::SingleHashTable>(single));

    table::BucketTableConfig two;
    two.buckets = 8192;
    two.ways = 4;
    tables.push_back(std::make_unique<table::TwoChoiceTable>(two));
    tables.push_back(std::make_unique<table::CuckooTable>(two));

    table::BloomCamConfig bloom;
    bloom.table.buckets = 16384;
    bloom.table.ways = 4;
    bloom.cam_capacity = 1024;
    bloom.bloom_bits = 1 << 16;
    tables.push_back(std::make_unique<table::BloomCamTable>(bloom));

    table::KirschConfig kirsch;
    kirsch.buckets_per_level = 16384;
    kirsch.levels = 4;
    kirsch.cam_capacity = 64;
    tables.push_back(std::make_unique<table::KirschOneMoveTable>(kirsch));

    core::FlowLutConfig hash_cam;
    hash_cam.buckets_per_mem = 8192;
    hash_cam.ways = 4;
    hash_cam.cam_capacity = 1024;
    tables.push_back(std::make_unique<core::HashCamTable>(hash_cam));
    return tables;
}

}  // namespace

int main() {
    for (const double load : {0.5, 0.8, 0.95}) {
        auto tables = make_tables();
        TablePrinter printer({"scheme", "capacity", "insert failures", "reads/lookup (hit)",
                              "reads/lookup (miss)", "writes+moves/insert", "CAM searches/op"});
        for (auto& dut : tables) {
            const auto keys = static_cast<u64>(load * static_cast<double>(dut->capacity()));
            // Build phase.
            u64 failures = 0;
            for (u64 i = 0; i < keys; ++i) {
                const auto bytes = net::synth_tuple(i, 7).key_bytes();
                failures += !dut->insert({bytes.data(), bytes.size()}, i).is_ok();
            }
            const double writes_per_insert =
                static_cast<double>(dut->stats().bucket_writes + dut->stats().relocations) /
                static_cast<double>(dut->stats().inserts);
            // Hit-probe phase.
            dut->reset_stats();
            for (u64 i = 0; i < 5000; ++i) {
                const auto bytes = net::synth_tuple(i % keys, 7).key_bytes();
                (void)dut->lookup({bytes.data(), bytes.size()});
            }
            const double hit_reads = dut->stats().reads_per_lookup();
            // Miss-probe phase.
            dut->reset_stats();
            for (u64 i = 0; i < 5000; ++i) {
                const auto bytes = net::synth_tuple(i + (u64{1} << 40), 7).key_bytes();
                (void)dut->lookup({bytes.data(), bytes.size()});
            }
            const double miss_reads = dut->stats().reads_per_lookup();
            const double cam_per_op =
                static_cast<double>(dut->stats().cam_searches) / 5000.0;

            printer.add_row({dut->name(), std::to_string(dut->capacity()),
                             std::to_string(failures), TablePrinter::fixed(hit_reads, 2),
                             TablePrinter::fixed(miss_reads, 2),
                             TablePrinter::fixed(writes_per_insert, 2),
                             TablePrinter::fixed(cam_per_op, 2)});
        }
        printer.print(std::cout, "Ablation A5: baselines at load factor " +
                                     TablePrinter::percent(load, 0));
        std::cout << "\n";
    }
    std::cout << "shape check: hash-cam matches two-choice on lookup cost while absorbing\n"
                 "overflow in the CAM (no failures until far higher load); cuckoo pays\n"
                 "relocations on insert (the paper's nondeterministic-build critique);\n"
                 "single-hash fails earliest.\n";
    return 0;
}
