// Table I reproduction: FPGA resource accounting for the prototype
// configuration (8 M flow entries, two quarter-rate DDR3 channels) on the
// Stratix V 5SGXEA7N2F45C2.
//
// Paper reference: 31,006 ALMs (13 %) | 2,604,288 block memory bits (5 %) |
// 39,664 registers | 2 PLLs | 2 DLLs.
#include <iostream>

#include "common/table_printer.hpp"
#include "fpga/resource_model.hpp"

using namespace flowcam;

int main() {
    const core::FlowLutConfig config = core::FlowLutConfig::prototype_8m();
    const fpga::ResourceReport report = fpga::estimate(config);

    TablePrinter breakdown({"block", "ALMs", "memory bits", "registers"});
    for (const auto& block : report.blocks) {
        breakdown.add_row({block.block, std::to_string(block.alms),
                           std::to_string(block.memory_bits), std::to_string(block.registers)});
    }
    breakdown.print(std::cout, "Table I: per-block resource model (Stratix V, 8M-entry config)");

    TablePrinter totals({"resource", "model", "paper (Table I)"});
    totals.add_row({"Logic utilization (ALMs)",
                    std::to_string(report.total_alms) + " (" +
                        TablePrinter::percent(report.alm_fraction(), 1) + ")",
                    "31,006 (13%)"});
    totals.add_row({"Block memory bits",
                    std::to_string(report.total_memory_bits) + " (" +
                        TablePrinter::percent(report.memory_fraction(), 1) + ")",
                    "2,604,288 (5%)"});
    totals.add_row({"Total registers", std::to_string(report.total_registers), "39,664"});
    totals.add_row({"Total PLLs", std::to_string(report.plls), "2"});
    totals.add_row({"Total DLLs", std::to_string(report.dlls), "2"});
    totals.print(std::cout, "Totals vs. paper");

    std::cout << "\nshape check: totals within 10% of Table I; the DDR3 controllers and\n"
                 "the collision CAM dominate logic, FIFOs dominate block memory.\n";
    return 0;
}
