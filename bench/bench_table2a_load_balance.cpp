// Table II(A) reproduction: processing rate under defined hash patterns —
// load balancing and bank selection.
//
// Stimulus classes, as in the paper:
//  * "random hash"             — random bucket indices on both paths, hash-
//                                 affine balancing (~50 % path-A load);
//  * "unique hash, bank incr"  — bucket index increments by one per
//                                 descriptor (banks rotate 0..7) at path-A
//                                 loads of 50 % / 25 % / 0 %.
// Every key is unique, so each descriptor exercises lookup + insert, as in
// the paper's table-build tests. 10 k descriptors at a 100 MHz input rate.
//
// Paper reference: random/50.8 % -> 44.05 Mdesc/s; bank-increment at
// 50 / 25 / 0 % -> 44.59 / 41.09 / 36.53 Mdesc/s.
#include <iostream>

#include "bench_util.hpp"

using namespace flowcam;

namespace {

core::FlowLutConfig bench_config(core::BalancePolicy policy, double weight_a) {
    core::FlowLutConfig config;
    config.buckets_per_mem = u64{1} << 16;
    config.ways = 4;
    config.cam_capacity = 2048;
    config.balance = policy;
    config.weight_a = weight_a;
    return config;
}

}  // namespace

int main() {
    constexpr u64 kDescriptors = 10000;
    Xoshiro256 pattern_rng(2014);
    TablePrinter table({"test", "load path A", "proc. rate (Mdesc/s)", "paper (Mdesc/s)"});

    // Random hash on both paths, hash-bit balancing.
    {
        core::FlowLut lut(bench_config(core::BalancePolicy::kHashBit, 0.5));
        const u64 buckets = lut.config().buckets_per_mem;
        auto result = bench::run_raw_pattern(
            lut, [&](u64) { return pattern_rng.bounded(buckets); }, kDescriptors, 1);
        table.add_row({"Random hash", TablePrinter::percent(result.load_fraction_a, 1),
                       TablePrinter::fixed(result.mdesc_per_s, 2), "44.05 (load 50.8%)"});
    }

    // Unique hash with bank increment at three path-A loads.
    const struct {
        double weight;
        const char* paper;
    } rows[] = {{0.5, "44.59"}, {0.25, "41.09"}, {0.0, "36.53"}};
    for (const auto& row : rows) {
        core::FlowLut lut(bench_config(core::BalancePolicy::kWeightedHash, row.weight));
        auto result = bench::run_raw_pattern(
            lut, [](u64 i) { return i; }, kDescriptors, 2);
        table.add_row({"Unique hash, bank increment",
                       TablePrinter::percent(result.load_fraction_a, 1),
                       TablePrinter::fixed(result.mdesc_per_s, 2), row.paper});
    }

    table.print(std::cout,
                "Table II(A): load balance & bank selection (10k descriptors, 100 MHz input)");

    // Phase 2: the load-balancing effect itself. The build phase above is
    // insert-bound and inherently symmetric (every miss visits both paths),
    // so the balancer weight barely moves it — to expose the skew cost the
    // paper measures, probe an already-built table with lookup-only traffic
    // at full fabric rate (200 MHz input, memory-bound).
    TablePrinter skew({"path-A weight", "load path A", "lookup rate (Mdesc/s)"});
    for (const double weight : {0.5, 0.25, 0.0}) {
        core::FlowLutConfig config = bench_config(core::BalancePolicy::kWeightedHash, weight);
        core::FlowLut lut(config);
        // Preload 10k real flows (placement splits them over both memory
        // sets), then probe them all-hit at full rate.
        net::UniformFlowWorkload population(10000, 31);
        for (const auto& tuple : population.flows()) {
            (void)lut.preload(net::NTuple::from_five_tuple(tuple));
        }
        const auto result = bench::run_throughput(
            lut,
            [&](u64 i) { return population.flows()[i % population.flows().size()]; },
            kDescriptors, 1);
        skew.add_row({TablePrinter::fixed(weight, 2),
                      TablePrinter::percent(result.load_fraction_a, 1),
                      TablePrinter::fixed(result.mdesc_per_s, 2)});
    }
    skew.print(std::cout,
               "Load-balance effect on lookup-bound traffic (table built, 200 MHz input)");

    bench::print_shape_note(
        "random hash performs within a few percent of the bank-increment pattern\n"
        "(the Bank Selector re-spreads random banks), and the build-phase rows match\n"
        "the paper's ~44 Mdesc/s scale. The lookup-bound skew effect is direction-\n"
        "consistent but smaller than the paper's 44.59 -> 36.53 (-18%): our modeled\n"
        "channel has more random-read headroom (~100 M buckets/s) than the\n"
        "prototype's, so one path absorbs the skewed load with less penalty.");
    return 0;
}
