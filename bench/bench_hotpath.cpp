// Hot-path microbench: simulated packets per wall-clock second through
// FlowLut::offer -> step -> pop_completion, with a global allocation counter
// that verifies the zero-allocation claim for the steady-state dispatch
// path.
//
// Modes:
//   single_flow_reuse  one pre-hashed FlowKey offered repeatedly — the
//                      per-flow interlock + waiting-room path. Must run
//                      allocation-free at steady state.
//   rotating_reuse     256 resident flows, pre-hashed FlowKeys reused —
//                      the LU1/LU2 DRAM lookup path with recycled response
//                      buffers. Must run allocation-free at steady state.
//   rotating_reuse_batched
//                      same traffic through the batched dispatch mode
//                      (lut.batch=16): keys hashed 16 at a time through the
//                      multi-key kernel, offers via offer_prepared, batched
//                      internal paths live. Gated hard against
//                      rotating_reuse: simulated cycles must be EQUAL
//                      (batching is host-side only) and wall throughput at
//                      least FLOWCAM_BATCH_MIN_RATIO (default 0.90, a
//                      wall-clock noise floor) of the scalar mode,
//                      best-of-3 per mode. Allocation-free at steady state.
//   rotating_rehash    same traffic, but the FlowKey is rebuilt from the
//                      tuple for every offer — quantifies what key reuse
//                      saves (hashing only; still allocation-free).
//   rotating_reuse_obs rotating_reuse with a flight recorder attached and
//                      tracing on — the obs-on overhead line. The recorder
//                      preallocates its trace ring, so steady state must
//                      STILL be allocation-free (the _reuse gate applies).
//   unique_insert      a brand-new flow per packet — the full insert path
//                      (table, CAM, flow records legitimately allocate).
//   sparse_arrival     one packet every 64 cycles — exercises the batched
//                      idle fast-forward (skipped cycles cost nothing).
//
// Exits non-zero if a *_reuse mode allocates on the steady-state window, so
// scripts/check.sh catches hot-path regressions.
//
//   $ ./bench_hotpath [packets]
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <new>
#include <span>
#include <thread>

#include "bench_util.hpp"
#include "core/batch.hpp"
#include "core/flow_lut.hpp"
#include "net/trace.hpp"
#include "obs/obs.hpp"
#include "shard/sharded_engine.hpp"
#include "workload/runner.hpp"

namespace {

std::atomic<flowcam::u64> g_allocations{0};

flowcam::u64 allocations() { return g_allocations.load(std::memory_order_relaxed); }

void* counted_alloc(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    void* pointer = std::malloc(size == 0 ? 1 : size);
    if (pointer == nullptr) throw std::bad_alloc();
    return pointer;
}

}  // namespace

// Global allocation hooks: every operator new in the process bumps the
// counter, so the steady-state windows below see *all* heap traffic.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* pointer) noexcept { std::free(pointer); }
void operator delete[](void* pointer) noexcept { std::free(pointer); }
void operator delete(void* pointer, std::size_t) noexcept { std::free(pointer); }
void operator delete[](void* pointer, std::size_t) noexcept { std::free(pointer); }

using namespace flowcam;
using Clock = std::chrono::steady_clock;

namespace {

struct ModeResult {
    std::string mode;
    u64 packets = 0;
    double wall_seconds = 0.0;
    double packets_per_second = 0.0;
    u64 cycles = 0;
    u64 allocations_steady = 0;
    double allocations_per_packet = 0.0;
};

core::FlowLutConfig bench_config() {
    core::FlowLutConfig config;
    config.buckets_per_mem = u64{1} << 14;
    config.cam_capacity = 2048;
    return config;
}

/// Offer `count` packets from `keys` (round-robin, rebuilt per packet when
/// `rebuild_key`), one every `cycles_per_offer` cycles, draining
/// completions as they retire. Uses the idle hint exactly like the engine's
/// fast-forward.
template <typename KeyAt>
void pump(core::FlowLut& lut, const KeyAt& key_at, u64 count, u32 cycles_per_offer, u64& next,
          u64& ts) {
    u64 sent = 0;
    while (sent < count) {
        if (lut.now() % cycles_per_offer == 0) {
            if (lut.offer(key_at(next), ts, 64)) {
                ++next;
                ++sent;
                ts += 17;
            }
        }
        lut.step();
        while (lut.pop_completion()) {
        }
        if (const u64 hint = lut.idle_cycles_hint(); hint > 0) {
            const u64 to_next_offer = cycles_per_offer - lut.now() % cycles_per_offer;
            lut.skip_idle(std::min<u64>(hint, to_next_offer));
        }
    }
    (void)lut.drain();
    while (lut.pop_completion()) {
    }
}

/// pump(), but with the host-side hash amortized: up to 16 upcoming keys
/// are pushed through the multi-key kernel at once and offered via
/// offer_prepared. Offer slots, timestamps and keys are identical to
/// pump(), so the simulated run is byte-identical — only wall time differs.
template <typename KeyAt>
void pump_batched(core::FlowLut& lut, const KeyAt& key_at, u64 count, u32 cycles_per_offer,
                  u64& next, u64& ts) {
    constexpr std::size_t kBatch = 16;
    const hash::IndexGenerator& indexer = lut.table().indexer();
    std::array<core::BatchHasher::Prepared, kBatch> prepared;
    std::array<std::span<const u8>, kBatch> views;
    u64 prepared_base = next;
    std::size_t prepared_count = 0;
    u64 sent = 0;
    while (sent < count) {
        if (lut.now() % cycles_per_offer == 0) {
            if (next >= prepared_base + prepared_count) {
                prepared_base = next;
                prepared_count =
                    static_cast<std::size_t>(std::min<u64>(kBatch, count - sent));
                for (std::size_t i = 0; i < prepared_count; ++i) {
                    views[i] = key_at(prepared_base + i).view();
                }
                core::BatchHasher::prepare(indexer, views.data(), prepared_count,
                                           prepared.data());
            }
            const core::BatchHasher::Prepared& p = prepared[next - prepared_base];
            if (lut.offer_prepared(key_at(next), p.index_a, p.index_b, p.digest_a, ts, 64)) {
                ++next;
                ++sent;
                ts += 17;
            }
        }
        lut.step();
        while (lut.pop_completion()) {
        }
        if (const u64 hint = lut.idle_cycles_hint(); hint > 0) {
            const u64 to_next_offer = cycles_per_offer - lut.now() % cycles_per_offer;
            lut.skip_idle(std::min<u64>(hint, to_next_offer));
        }
    }
    (void)lut.drain();
    while (lut.pop_completion()) {
    }
}

template <typename KeyAt>
ModeResult run_mode(const std::string& mode, const KeyAt& key_at, u64 packets,
                    u32 cycles_per_offer, bool with_obs = false,
                    const core::FlowLutConfig& config = bench_config(),
                    bool batched = false,
                    const std::function<void(core::FlowLut&)>& prepare = {}) {
    core::FlowLut lut(config);
    // Pre-measurement hook (e.g. pre-arming the governor's runtime policy
    // switching): anything it allocates lands outside the measured window.
    if (prepare) prepare(lut);
    // The obs arm attaches a tracing recorder before warmup: registration
    // and the trace ring allocate here, outside the measured window — the
    // steady-state window must stay at zero even with every event site live.
    std::unique_ptr<obs::Recorder> recorder;
    if (with_obs) {
        obs::ObsConfig obs_config;
        obs_config.trace = true;
        recorder = std::make_unique<obs::Recorder>(obs_config);
        lut.set_recorder(recorder.get());
    }
    u64 next = 0;
    u64 ts = 1;

    // Warmup: fill every pool/queue to its high-water mark and fault in the
    // steady-state working set.
    const auto pump_some = [&](u64 count) {
        if (batched) {
            pump_batched(lut, key_at, count, cycles_per_offer, next, ts);
        } else {
            pump(lut, key_at, count, cycles_per_offer, next, ts);
        }
    };
    pump_some(std::min<u64>(packets, 20'000));

    const u64 allocations_before = allocations();
    const Cycle cycles_before = lut.now();
    const auto wall_before = Clock::now();
    pump_some(packets);
    const auto wall_after = Clock::now();
    // Sample the counter before any bookkeeping below: the ModeResult's own
    // mode-string assignment is not part of the measured dispatch path (it
    // used to show up as a phantom "steady" allocation for mode names longer
    // than the small-string buffer).
    const u64 allocations_after = allocations();

    ModeResult result;
    result.mode = mode;
    result.packets = packets;
    result.wall_seconds = std::chrono::duration<double>(wall_after - wall_before).count();
    result.packets_per_second =
        result.wall_seconds == 0.0 ? 0.0 : static_cast<double>(packets) / result.wall_seconds;
    result.cycles = lut.now() - cycles_before;
    result.allocations_steady = allocations_after - allocations_before;
    result.allocations_per_packet =
        static_cast<double>(result.allocations_steady) / static_cast<double>(packets);
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    const u64 packets = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;

    // Pre-hashed keys, built once (the "flow-key reuse" arm).
    std::vector<core::FlowKey> resident;
    resident.reserve(256);
    for (u64 flow = 0; flow < 256; ++flow) {
        resident.push_back(
            core::FlowKey(net::NTuple::from_five_tuple(net::synth_tuple(flow, 0xF10))));
    }
    const core::FlowKey single = resident[0];

    std::vector<ModeResult> results;
    results.push_back(run_mode(
        "single_flow_reuse", [&](u64) -> const core::FlowKey& { return single; }, packets, 2));
    results.push_back(run_mode(
        "rotating_reuse",
        [&](u64 i) -> const core::FlowKey& { return resident[i % resident.size()]; }, packets,
        2));
    {
        core::FlowLutConfig batched_config = bench_config();
        batched_config.batch = 16;
        results.push_back(run_mode(
            "rotating_reuse_batched",
            [&](u64 i) -> const core::FlowKey& { return resident[i % resident.size()]; },
            packets, 2, /*with_obs=*/false, batched_config, /*batched=*/true));
    }
    results.push_back(run_mode(
        "rotating_reuse_obs",
        [&](u64 i) -> const core::FlowKey& { return resident[i % resident.size()]; }, packets,
        2, /*with_obs=*/true));
    {
        // Every overload policy armed at once (pressure threshold 0 keeps
        // the admission/reservation branches live even at bench occupancy).
        // The "_reuse" name applies the zero-steady-state-allocation gate:
        // policies must not put allocations on the dispatch path.
        core::FlowLutConfig policies = bench_config();
        policies.admission = core::AdmissionPolicy::kProbabilistic;
        policies.admission_pressure = 0.0;
        policies.admission_p = 1.0;  // admit everyone; the check still runs.
        policies.eviction = core::EvictionPolicy::kLru;
        policies.reservation = true;
        results.push_back(run_mode(
            "rotating_reuse_policies",
            [&](u64 i) -> const core::FlowKey& { return resident[i % resident.size()]; },
            packets, 2, /*with_obs=*/false, policies));
    }
    {
        // The governor's lever under the same gate: runtime policy switches
        // (the L0..L3 staircase profiles in rotation, every 4096 packets)
        // must not put a single allocation on the steady-state window — the
        // Bloom front-end and CAM-order tracking are pre-armed by
        // prepare_policy_switching, never built mid-run.
        core::FlowLutConfig governed_config = bench_config();
        governed_config.admission_pressure = 0.0;
        governed_config.admission_p = 1.0;
        governed_config.reservation = true;
        core::FlowLut* governed = nullptr;
        const std::function<void(core::FlowLut&)> prepare = [&](core::FlowLut& lut) {
            lut.prepare_policy_switching(core::EvictionPolicy::kCamOldest);
            governed = &lut;
        };
        results.push_back(run_mode(
            "rotating_reuse_governor",
            [&](u64 i) -> const core::FlowKey& {
                if (governed != nullptr && i % 4096 == 0) {
                    const u64 level = (i / 4096) % 4;
                    governed->apply_overload_policies(
                        level == 0   ? core::AdmissionPolicy::kAlways
                        : level == 3 ? core::AdmissionPolicy::kRejectFull
                                     : core::AdmissionPolicy::kProbabilistic,
                        level >= 2 ? core::EvictionPolicy::kCamOldest
                                   : core::EvictionPolicy::kNone,
                        level >= 3 ? 64 : 1024);
                }
                return resident[i % resident.size()];
            },
            packets, 2, /*with_obs=*/false, governed_config, /*batched=*/false, prepare));
    }
    results.push_back(run_mode(
        "rotating_rehash",
        [&](u64 i) {
            return core::FlowKey(
                net::NTuple::from_five_tuple(net::synth_tuple(i % 256, 0xF10)));
        },
        packets, 2));
    results.push_back(run_mode(
        "unique_insert",
        [&](u64 i) {
            return core::FlowKey(
                net::NTuple::from_five_tuple(net::synth_tuple(i + 1000, 0xBEEF)));
        },
        packets, 2));
    results.push_back(run_mode(
        "sparse_arrival", [&](u64) -> const core::FlowKey& { return single; },
        std::max<u64>(packets / 16, 1), 64));

    TablePrinter table({"mode", "packets", "Mpkt/s (wall)", "sim cycles", "allocs (steady)",
                        "allocs/pkt"});
    bool reuse_allocates = false;
    for (const ModeResult& r : results) {
        table.add_row({r.mode, std::to_string(r.packets),
                       TablePrinter::fixed(r.packets_per_second / 1e6, 3),
                       std::to_string(r.cycles), std::to_string(r.allocations_steady),
                       TablePrinter::fixed(r.allocations_per_packet, 4)});
        // Steady state must be allocation-free: every pool and queue reaches
        // its high-water mark during warmup, so even a single allocation in
        // the measured window is a hot-path regression.
        if (r.mode.find("_reuse") != std::string::npos && r.allocations_steady != 0) {
            reuse_allocates = true;
        }

        bench::JsonResult json("bench_hotpath");
        json.add("mode", r.mode)
            .add("packets", r.packets)
            .add("wall_seconds", r.wall_seconds)
            .add("packets_per_second", r.packets_per_second)
            .add("cycles", r.cycles)
            .add("allocations_steady", r.allocations_steady)
            .add("allocations_per_packet", r.allocations_per_packet);
        json.emit();
    }
    table.print(std::cout,
                "Hot path: simulated packets/s through offer -> step -> pop_completion");

    bench::print_shape_note(
        "the *_reuse modes must show 0 steady-state allocations (flat FlowKey tables, pooled\n"
        "waiters, recycled DDR buffers); unique_insert legitimately allocates for new table\n"
        "entries; sparse_arrival shows the batched idle fast-forward (cycles >> busy modes at\n"
        "far higher wall-clock rate per busy packet).");

    if (reuse_allocates) {
        std::cerr << "FAIL: steady-state dispatch path allocated (see table above)\n";
        return 1;
    }

    // Batched-dispatch gate: batching is an opt-in throughput lever that must
    // not change simulated behaviour (cycles is a metric), and a release build
    // must not ship a batched path slower than scalar. The cycles check is
    // exact; the throughput check allows 10% of wall-clock noise by default
    // (the sim step loop dominates both modes, so the batching win is a few
    // percent while shared runners drift more than that between windows — a
    // real dispatch regression, like hashing twice, shows up far larger).
    // Tune with FLOWCAM_BATCH_MIN_RATIO.
    {
        const ModeResult* scalar = nullptr;
        const ModeResult* batched = nullptr;
        for (const ModeResult& r : results) {
            if (r.mode == "rotating_reuse") scalar = &r;
            if (r.mode == "rotating_reuse_batched") batched = &r;
        }
        if (scalar != nullptr && batched != nullptr) {
            if (batched->cycles != scalar->cycles) {
                std::cerr << "FAIL: batched dispatch changed simulated behaviour ("
                          << batched->cycles << " cycles vs scalar " << scalar->cycles
                          << ")\n";
                return 1;
            }
            // Best-of-3 per mode, alternating, so a scheduler hiccup during
            // one window cannot decide the verdict (the tabled/JSONL rows
            // above stay the single first run of each mode).
            const auto resident_key = [&](u64 i) -> const core::FlowKey& {
                return resident[i % resident.size()];
            };
            core::FlowLutConfig batched_config = bench_config();
            batched_config.batch = 16;
            double scalar_best = scalar->packets_per_second;
            double batched_best = batched->packets_per_second;
            for (int repeat = 0; repeat < 2; ++repeat) {
                const ModeResult s = run_mode("rotating_reuse", resident_key, packets, 2);
                const ModeResult b =
                    run_mode("rotating_reuse_batched", resident_key, packets, 2,
                             /*with_obs=*/false, batched_config, /*batched=*/true);
                if (s.cycles != scalar->cycles || b.cycles != scalar->cycles) {
                    std::cerr << "FAIL: gate re-run diverged in simulated cycles\n";
                    return 1;
                }
                scalar_best = std::max(scalar_best, s.packets_per_second);
                batched_best = std::max(batched_best, b.packets_per_second);
            }
            double ratio = 0.90;
            if (const char* env = std::getenv("FLOWCAM_BATCH_MIN_RATIO")) {
                ratio = std::strtod(env, nullptr);
            }
            if (batched_best < scalar_best * ratio) {
                std::cerr << "FAIL: batched dispatch below gate: best-of-3 "
                          << TablePrinter::fixed(batched_best / 1e6, 3)
                          << " Mpkt/s vs scalar "
                          << TablePrinter::fixed(scalar_best / 1e6, 3)
                          << " Mpkt/s (min ratio " << TablePrinter::fixed(ratio, 2)
                          << ")\n";
                return 1;
            }
            std::cout << "batch gate: OK (identical cycles; best-of-3 batched "
                      << TablePrinter::fixed(batched_best / scalar_best, 3)
                      << "x scalar)\n";
        }
    }

    // Sharded-execution gate: a 100k-packet syn_flood through the monolithic
    // runner vs the sharded engine at lanes=4 on 4 threads, best-of-3
    // alternating windows. Two checks: the sharded merge must be
    // deterministic across the repeats (exact cycles/completions — a
    // threading bug shows up here first), and on hardware with >= 4 cores
    // the sharded arm must beat FLOWCAM_SHARD_MIN_SPEEDUP (default 1.5x)
    // wall clock. On smaller machines the measured speedup is reported but
    // not enforced — 8 slice simulations on one core cannot beat one.
    {
        const u64 scenario_packets = 100'000;
        workload::ScenarioConfig scenario_config;
        scenario_config.seed = 2014;
        scenario_config.horizon_packets = scenario_packets;

        workload::RunnerConfig mono_config;
        mono_config.packets = scenario_packets;
        workload::RunnerConfig shard_config = mono_config;
        shard_config.shard.lanes = 4;
        shard_config.shard.jobs = 4;

        const auto run_mono = [&](double& wall) -> Result<workload::ScenarioMetrics> {
            workload::ScenarioRunner runner(mono_config);
            const auto before = Clock::now();
            auto metrics = runner.run("syn_flood", scenario_config);
            wall = std::chrono::duration<double>(Clock::now() - before).count();
            return metrics;
        };
        const auto run_sharded = [&](double& wall) -> Result<workload::ScenarioMetrics> {
            shard::ShardedEngine engine(shard_config);
            const auto before = Clock::now();
            auto metrics = engine.run("syn_flood", scenario_config);
            wall = std::chrono::duration<double>(Clock::now() - before).count();
            return metrics;
        };

        double mono_best = 0.0;
        double sharded_best = 0.0;
        u64 sharded_cycles = 0;
        u64 sharded_completions = 0;
        bool sharded_ok = true;
        for (int repeat = 0; repeat < 3; ++repeat) {
            double mono_wall = 0.0;
            double sharded_wall = 0.0;
            const auto mono = run_mono(mono_wall);
            const auto sharded = run_sharded(sharded_wall);
            if (!mono || !sharded) {
                std::cerr << "FAIL: shard gate run errored: "
                          << (!mono ? mono.status().to_string()
                                    : sharded.status().to_string())
                          << "\n";
                return 1;
            }
            if (mono.value().packets != sharded.value().packets ||
                mono.value().completions != sharded.value().completions) {
                std::cerr << "FAIL: sharded run lost packets (" << sharded.value().packets
                          << "/" << sharded.value().completions << " vs monolithic "
                          << mono.value().packets << "/" << mono.value().completions
                          << ")\n";
                return 1;
            }
            if (repeat == 0) {
                sharded_cycles = sharded.value().cycles;
                sharded_completions = sharded.value().completions;
                mono_best = mono_wall;
                sharded_best = sharded_wall;
            } else {
                if (sharded.value().cycles != sharded_cycles ||
                    sharded.value().completions != sharded_completions) {
                    sharded_ok = false;
                }
                mono_best = std::min(mono_best, mono_wall);
                sharded_best = std::min(sharded_best, sharded_wall);
            }
        }
        if (!sharded_ok) {
            std::cerr << "FAIL: sharded merge diverged between repeats (thread "
                         "scheduling leaked into results)\n";
            return 1;
        }
        const double speedup = sharded_best == 0.0 ? 0.0 : mono_best / sharded_best;
        double min_speedup = 1.5;
        if (const char* env = std::getenv("FLOWCAM_SHARD_MIN_SPEEDUP")) {
            min_speedup = std::strtod(env, nullptr);
        }
        const unsigned cores = std::thread::hardware_concurrency();
        const bool enforced = cores >= 4;

        bench::JsonResult json("bench_hotpath");
        json.add("mode", "sharded_scenario_gate")
            .add("scenario", "syn_flood")
            .add("packets", scenario_packets)
            .add("lanes", u64{4})
            .add("jobs", u64{4})
            .add("monolithic_wall_seconds", mono_best)
            .add("sharded_wall_seconds", sharded_best)
            .add("speedup", speedup)
            .add("min_speedup", min_speedup)
            .add("hardware_threads", static_cast<u64>(cores))
            .add("gate_enforced", enforced ? u64{1} : u64{0});
        json.emit();
        std::cout << "shard gate: best-of-3 speedup "
                  << TablePrinter::fixed(speedup, 3) << "x at lanes=4 jobs=4 ("
                  << cores << " hardware threads; gate "
                  << (enforced ? "enforced" : "report-only") << ")\n";
        if (enforced && speedup < min_speedup) {
            std::cerr << "FAIL: sharded execution below gate: "
                      << TablePrinter::fixed(speedup, 3) << "x vs required "
                      << TablePrinter::fixed(min_speedup, 2) << "x\n";
            return 1;
        }
    }
    return 0;
}
