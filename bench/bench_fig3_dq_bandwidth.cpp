// Figure 3 reproduction: DQ bandwidth utilization vs. number of continuous
// RD/WR bursts on the same row, BL = 8, Micron DDR3-1066 (-187E).
//
// Two series are reported:
//  * "jedec"      — raw JEDEC timing (the physical lower bound on bubbles);
//  * "calibrated" — plus a 10-cycle per-direction-switch controller pipeline
//    penalty, which reproduces the paper's absolute floor (~20 % at N=1)
//    for its quarter-rate vendor controller.
// Paper reference points: ~20 % at N=1 rising to ~90 % at N=35.
#include <iostream>

#include "common/table_printer.hpp"
#include "dram/pattern_sim.hpp"

using namespace flowcam;

int main() {
    const dram::DramTimings timings = dram::ddr3_1066e();
    TablePrinter table({"bursts/dir", "util jedec", "util calibrated", "MB/s calibrated",
                        "paper (approx)"});

    const auto paper_reference = [](u32 n) -> std::string {
        switch (n) {
            case 1: return "20%";
            case 2: return "33%";
            case 4: return "50%";
            case 8: return "66%";
            case 16: return "80%";
            case 35: return "90%";
            default: return "";
        }
    };

    double first_calibrated = 0.0;
    double last_calibrated = 0.0;
    for (const u32 n : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 20u, 24u, 28u, 32u, 35u}) {
        const auto jedec = dram::run_same_row_rw_pattern(timings, n, 64, 0);
        const auto calibrated = dram::run_same_row_rw_pattern(timings, n, 64, 10);
        if (n == 1) first_calibrated = calibrated.dq_utilization;
        last_calibrated = calibrated.dq_utilization;
        table.add_row({std::to_string(n), TablePrinter::percent(jedec.dq_utilization, 1),
                       TablePrinter::percent(calibrated.dq_utilization, 1),
                       TablePrinter::fixed(calibrated.bandwidth_mbytes_per_s, 0),
                       paper_reference(n)});
    }
    table.print(std::cout,
                "Figure 3: continuous RD/WR bursts on one row, BL=8, DDR3-1066 (-187E)");

    std::cout << "\nshape check: utilization rises monotonically from "
              << TablePrinter::percent(first_calibrated, 1) << " (paper ~20%) to "
              << TablePrinter::percent(last_calibrated, 1)
              << " (paper ~90%) as bursts amortize the bus turnaround.\n";
    return 0;
}
