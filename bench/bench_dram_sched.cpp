// DDR3 scheduler microbench: drives the DramController directly (no Flow
// LUT on top) with synthetic request streams chosen to stress each FR-FCFS
// pass, and reports wall-clock, issued commands/s and simulated Mcycles/s
// for both the indexed scheduler and the legacy linear-scan reference.
//
// Streams:
//   row_hit_burst   sequential same-row traffic per bank — pass 1 dominated
//                   (hit lists stay hot, few ACT/PRE).
//   bank_rotate     bucket-strided reads across all banks — pass 2/ACT
//                   dominated, the steady state of the Flow LUT's kBankLow
//                   mapping.
//   conflict_storm  random rows under MapPolicy::kBankHigh — pass 3/PRE
//                   dominated (every access conflicts with the open row).
//   mixed_rw        70% writes with tight drain watermarks — exercises
//                   phase flips, write-age timeouts and refresh interleave.
//
// Doubles as the scheduler-equivalence smoke: every stream is replayed
// through a kReference controller and the full command trace (type, bank,
// row, col, cycle), stats and response stream must match the indexed run
// bit-for-bit; any divergence exits non-zero, so scripts/check.sh catches a
// broken index even in Release where the Debug cross-check mode is off.
//
//   $ ./bench_dram_sched [requests-per-stream]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "dram/controller.hpp"

using namespace flowcam;
using Clock = std::chrono::steady_clock;

namespace {

struct Arrival {
    Cycle at = 0;
    dram::MemRequest request;
};

std::vector<u8> payload(Xoshiro256& rng, std::size_t bytes) {
    std::vector<u8> data(bytes);
    for (auto& byte : data) byte = static_cast<u8>(rng());
    return data;
}

std::vector<Arrival> make_stream(const std::string& name, u64 requests) {
    Xoshiro256 rng(0xD12A + requests);
    std::vector<Arrival> arrivals;
    arrivals.reserve(requests);
    Cycle t = 0;
    for (u64 i = 0; i < requests; ++i) {
        Arrival arrival;
        arrival.request.id = i + 1;
        arrival.request.bursts = 2;
        if (name == "row_hit_burst") {
            t += 2;
            // March sequentially through one row's worth of buckets per bank.
            arrival.request.byte_address = (i % 1024) * 64;
        } else if (name == "bank_rotate") {
            t += 2;
            arrival.request.byte_address = (i * 17 % 8192) * 64;
        } else if (name == "conflict_storm") {
            t += 2;
            arrival.request.byte_address = rng.bounded(1u << 20) * 64;
        } else {  // mixed_rw
            t += rng.bounded(6);
            arrival.request.byte_address = rng.bounded(4096) * 64;
            arrival.request.is_write = rng.chance(0.7);
            if (arrival.request.is_write) arrival.request.write_data = payload(rng, 64);
        }
        arrival.at = t;
        arrivals.push_back(std::move(arrival));
    }
    return arrivals;
}

dram::ControllerConfig stream_config(const std::string& name, dram::SchedulerMode mode) {
    dram::ControllerConfig config;
    config.interleave_bytes = 64;
    config.scheduler = mode;
    if (name == "conflict_storm") config.map_policy = dram::MapPolicy::kBankHigh;
    if (name == "mixed_rw") {
        config.write_drain_high = 8;
        config.write_drain_low = 2;
        config.write_age_limit = 128;
    }
    return config;
}

struct RunOutput {
    std::vector<dram::TracedCommand> trace;
    std::vector<std::pair<u64, Cycle>> responses;
    u64 sim_cycles = 0;
    double wall_seconds = 0.0;
};

RunOutput run_stream(const std::vector<Arrival>& arrivals, const dram::ControllerConfig& config) {
    const dram::DramTimings timings = dram::ddr3_1600();
    const dram::Geometry geometry{};
    dram::DramController controller("bench", timings, geometry, config);
    RunOutput out;
    controller.set_command_trace(&out.trace);

    const auto wall_before = Clock::now();
    std::size_t next = 0;
    Cycle now = 0;
    while (next < arrivals.size() || !controller.idle()) {
        if (next < arrivals.size() && arrivals[next].at <= now) {
            dram::MemRequest request = arrivals[next].request;  // payload copy
            if (controller.enqueue(std::move(request))) ++next;
        }
        controller.tick(now);
        while (auto response = controller.pop_response()) {
            out.responses.emplace_back(response->id, response->completed_at);
            controller.recycle_buffer(std::move(response->data));
        }
        // Jump straight to the next actionable cycle, exactly like the Flow
        // LUT's stall-hint plumbing (never past the next arrival).
        Cycle jump = now + 1;
        if (controller.stalled_until() > jump) jump = controller.stalled_until();
        if (next < arrivals.size() && arrivals[next].at > now && arrivals[next].at < jump) {
            jump = arrivals[next].at;
        }
        now = jump;
    }
    out.wall_seconds = std::chrono::duration<double>(Clock::now() - wall_before).count();
    out.sim_cycles = now;
    if (!controller.protocol_status().is_ok()) {
        std::cerr << "FAIL: protocol violation: " << controller.protocol_status().to_string()
                  << "\n";
        std::exit(1);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const u64 requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
    const std::vector<std::string> streams = {"row_hit_burst", "bank_rotate", "conflict_storm",
                                              "mixed_rw"};

    TablePrinter table({"stream", "requests", "commands", "Mcmd/s (indexed)",
                        "Mcmd/s (reference)", "speedup", "sim Mcycles"});
    bool mismatch = false;
    for (const std::string& stream : streams) {
        const std::vector<Arrival> arrivals = make_stream(stream, requests);
        const RunOutput indexed =
            run_stream(arrivals, stream_config(stream, dram::SchedulerMode::kIndexed));
        const RunOutput reference =
            run_stream(arrivals, stream_config(stream, dram::SchedulerMode::kReference));

        // Equivalence smoke: bit-identical command trace and responses.
        if (indexed.trace != reference.trace || indexed.responses != reference.responses ||
            indexed.sim_cycles != reference.sim_cycles) {
            std::cerr << "FAIL: indexed/reference divergence on stream " << stream << " ("
                      << indexed.trace.size() << " vs " << reference.trace.size()
                      << " commands, " << indexed.responses.size() << " vs "
                      << reference.responses.size() << " responses)\n";
            mismatch = true;
        }

        const double indexed_rate = indexed.wall_seconds == 0.0
                                        ? 0.0
                                        : static_cast<double>(indexed.trace.size()) /
                                              indexed.wall_seconds / 1e6;
        const double reference_rate = reference.wall_seconds == 0.0
                                          ? 0.0
                                          : static_cast<double>(reference.trace.size()) /
                                                reference.wall_seconds / 1e6;
        table.add_row({stream, std::to_string(requests), std::to_string(indexed.trace.size()),
                       TablePrinter::fixed(indexed_rate, 2), TablePrinter::fixed(reference_rate, 2),
                       TablePrinter::fixed(reference.wall_seconds /
                                               (indexed.wall_seconds == 0.0 ? 1e-9
                                                                            : indexed.wall_seconds),
                                           2),
                       TablePrinter::fixed(static_cast<double>(indexed.sim_cycles) / 1e6, 1)});

        bench::JsonResult json("bench_dram_sched");
        json.add("stream", stream)
            .add("requests", requests)
            .add("commands", static_cast<u64>(indexed.trace.size()))
            .add("sim_cycles", indexed.sim_cycles)
            .add("wall_seconds", indexed.wall_seconds)
            .add("commands_per_second", indexed_rate * 1e6)
            .add("reference_wall_seconds", reference.wall_seconds)
            .add("equivalent", indexed.trace == reference.trace);
        json.emit();
    }
    table.print(std::cout, "DDR3 FR-FCFS scheduler: issued commands/s, indexed vs reference scan");
    bench::print_shape_note(
        "every stream must be bit-identical between the indexed and reference schedulers\n"
        "(command trace, responses, cycle count) — this is the Release-mode equivalence smoke;\n"
        "speedup > 1 shows what the per-bank index buys per stream shape.");
    if (mismatch) return 1;
    return 0;
}
