// Figure 6 reproduction: packet-header analysis — number of distinct flows
// (B) observed in the first A packets of a trace, and the ratio B/A.
//
// The paper used a 594 M-packet 2012 European switch-fabric trace; we use
// the calibrated Pitman-Yor synthetic trace (see DESIGN.md substitution
// table). Paper reference points: B/A = 57 % at A = 1 k, 33.81 % at
// A = 10 k, below 10 % for sufficiently large A.
#include <iostream>

#include "common/table_printer.hpp"
#include "net/trace.hpp"

using namespace flowcam;

int main() {
    net::TraceConfig config;
    const std::vector<u64> windows = {1000,    2000,    5000,    10000,    20000,   50000,
                                      100000,  200000,  500000,  1000000,  2000000, 5000000};
    const auto points = net::measure_flow_growth(config, windows);

    TablePrinter table({"packets (A)", "flows (B)", "B/A", "paper"});
    for (const auto& point : points) {
        std::string paper;
        if (point.packets == 1000) paper = "57%";
        if (point.packets == 10000) paper = "33.81%";
        if (point.packets == 5000000) paper = "<10%";
        table.add_row({std::to_string(point.packets), std::to_string(point.new_flows),
                       TablePrinter::percent(point.ratio, 2), paper});
    }
    table.print(std::cout,
                "Figure 6: real-traffic flow growth (synthetic trace calibrated to the "
                "2012 switch-fabric capture)");

    std::cout << "\nshape check: B/A decays as a power law (Pitman-Yor d=0.773), matching\n"
                 "the paper's 57% @1k and 33.81% @10k and dropping below 10% for large A —\n"
                 "the basis of the paper's claim that a warm 8M-entry table sees <2% misses.\n";
    return 0;
}
