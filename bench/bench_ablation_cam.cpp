// Ablation A2: collision-CAM depth vs. insert failures under load.
//
// The CAM absorbs bucket overflow; the paper sizes it "of a reasonable
// size". This bench loads the table toward capacity and shows the drop rate
// cliff as the CAM shrinks — and the resource cost of oversizing it (the
// CAM dominates ALM usage, see Table I bench).
#include <iostream>

#include "bench_util.hpp"
#include "fpga/resource_model.hpp"

using namespace flowcam;

int main() {
    constexpr u64 kFlows = 12000;
    TablePrinter table({"CAM entries", "drops", "CAM occupancy", "CAM ALM cost"});

    for (const std::size_t cam : {16u, 64u, 256u, 1024u, 4096u}) {
        core::FlowLutConfig config;
        // Deliberately tight table: 2 x 2048 x 4 = 16k slots for 12k flows
        // (75 % load) so bucket overflow actually happens.
        config.buckets_per_mem = 2048;
        config.ways = 4;
        config.cam_capacity = cam;
        core::FlowLut lut(config);
        u64 drops = 0;
        for (u64 i = 0; i < kFlows; ++i) {
            const auto fid = lut.preload(net::NTuple::from_five_tuple(net::synth_tuple(i, 3)));
            drops += !fid.has_value();
        }
        const auto resources = fpga::estimate(config);
        u64 cam_alms = 0;
        for (const auto& block : resources.blocks) {
            if (block.block == "collision-cam") cam_alms = block.alms;
        }
        table.add_row({std::to_string(cam), std::to_string(drops),
                       std::to_string(lut.table().cam_entries()), std::to_string(cam_alms)});
    }
    table.print(std::cout, "Ablation A2: CAM depth at 75% table load (12k flows into 16k slots)");
    bench::print_shape_note(
        "too small a CAM drops flows once buckets overflow; beyond the overflow\n"
        "population, extra CAM depth only burns ALMs. Size to the overflow tail.");
    return 0;
}
