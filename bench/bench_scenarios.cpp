// Scenario sweep: every registered workload scenario end-to-end through the
// timed Flow LUT system, one table row (and optional JSONL record, see
// bench_util.hpp) per scenario.
//
// This is the adversarial counterpart of the paper's Table II: instead of
// synthetic hash patterns, the stimulus is attack-shaped traffic — SYN
// floods, port scans, heavy hitters, flash crowds and churn waves — over the
// calibrated Fig. 6 background, and the question is how the hit split,
// new-flow ratio and sustained line rate move per scenario.
//
// Beyond the six registered generators, the sweep carries composed entries
// (see workload/compose.hpp): mixed attacks with onset windows and ramping
// intensity, the combined-stress shapes the Flow LUT tuning work needs.
//
// Scenarios are independent (one engine + Flow LUT each), so the sweep runs
// them on a thread pool; results are merged in catalogue order, making the
// table and the JSONL stream byte-identical to a serial run (--jobs=1).
//
//   $ ./bench_scenarios [packets] [--jobs=N]
#include <cstring>
#include <iostream>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "workload/metrics.hpp"
#include "workload/registry.hpp"
#include "workload/runner.hpp"

using namespace flowcam;

int main(int argc, char** argv) {
    u64 packets = 20'000;
    std::size_t jobs = common::ThreadPool::default_jobs();
    for (int i = 1; i < argc; ++i) {
        char* end = nullptr;
        const auto malformed = [&] {
            std::cerr << "usage: bench_scenarios [packets] [--jobs=N]  (got '" << argv[i]
                      << "')\n";
            return 2;
        };
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            const char* value = argv[i] + 7;
            jobs = std::strtoull(value, &end, 10);
            if (end == value || *end != '\0') return malformed();
        } else {
            packets = std::strtoull(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0') return malformed();
        }
    }

    workload::RunnerConfig runner_config;
    runner_config.packets = packets;
    workload::ScenarioConfig scenario_config;

    // Materialize the catalogue before spawning workers: from here on the
    // registry is only read. Composed specs ride along after the registry
    // entries so the sweep also answers "what does combined stress do".
    std::vector<std::string> names = workload::builtin_registry().names();
    names.emplace_back("flash_crowd+syn_flood@onset=0.3,ramp=0.0:0.4");
    names.emplace_back("churn@attack=0.25+syn_flood@onset=0.5,offset=0.8,attack=0.4");
    std::vector<workload::ScenarioMetrics> results(names.size());
    std::vector<Status> failures(names.size(), Status::ok());

    common::ThreadPool::parallel_for_indexed(names.size(), jobs, [&](std::size_t i) {
        workload::ScenarioRunner runner(runner_config);
        const auto result = runner.run(names[i], scenario_config);
        if (result) {
            results[i] = result.value();
        } else {
            failures[i] = result.status();
        }
    });

    TablePrinter table({"scenario", "flows", "CAM", "LU1", "LU2", "new", "B/A", "drops",
                        "Mdesc/s", "Gb/s @64B"});
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (!failures[i].is_ok()) {
            std::cerr << "error: " << failures[i].to_string() << "\n";
            return 1;
        }
        const workload::ScenarioMetrics& m = results[i];
        table.add_row({m.scenario, std::to_string(m.distinct_flows), std::to_string(m.cam_hits),
                       std::to_string(m.lu1_hits), std::to_string(m.lu2_hits),
                       std::to_string(m.new_flows), TablePrinter::percent(m.new_flow_ratio, 1),
                       std::to_string(m.drops),
                       TablePrinter::fixed(m.mdesc_per_s, 2),
                       TablePrinter::fixed(m.sustained_gbps, 1)});

        // Every metric flows through the one schema registry — adding a
        // metric there adds it here (and to the experiment CSV/table) at once.
        bench::JsonResult json("bench_scenarios");
        for (const workload::MetricField& field : workload::metric_schema()) {
            json.add_raw(field.name, workload::metric_json(field, m));
        }
        json.emit();
    }
    table.print(std::cout, "Scenario sweep: " + std::to_string(packets) +
                               " packets each through the timed Flow LUT");

    bench::print_shape_note(
        "baseline tracks the Fig. 6 new-flow tail; syn_flood pushes B/A toward the attack\n"
        "fraction (insert-path worst case); port_scan and flash_crowd concentrate on one\n"
        "victim; heavy_hitter shifts bytes, not lookups; churn sustains retire+insert waves.\n"
        "Composed entries stack overlays: the ramped syn_flood joins mid flash-crowd, and\n"
        "the windowed syn_flood spikes B/A while churn keeps retiring entries underneath.");
    return 0;
}
