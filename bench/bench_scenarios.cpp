// Scenario sweep: every registered workload scenario end-to-end through the
// timed Flow LUT system, one table row (and optional JSONL record, see
// bench_util.hpp) per scenario.
//
// This is the adversarial counterpart of the paper's Table II: instead of
// synthetic hash patterns, the stimulus is attack-shaped traffic — SYN
// floods, port scans, heavy hitters, flash crowds and churn waves — over the
// calibrated Fig. 6 background, and the question is how the hit split,
// new-flow ratio and sustained line rate move per scenario.
#include <iostream>

#include "bench_util.hpp"
#include "workload/registry.hpp"
#include "workload/runner.hpp"

using namespace flowcam;

int main(int argc, char** argv) {
    const u64 packets = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;

    workload::RunnerConfig runner_config;
    runner_config.packets = packets;
    workload::ScenarioRunner runner(runner_config);
    workload::ScenarioConfig scenario_config;

    TablePrinter table({"scenario", "flows", "CAM", "LU1", "LU2", "new", "B/A", "drops",
                        "Mdesc/s", "Gb/s @64B"});
    for (const auto& name : workload::builtin_registry().names()) {
        const auto result = runner.run(name, scenario_config);
        if (!result) {
            std::cerr << "error: " << result.status().to_string() << "\n";
            return 1;
        }
        const workload::ScenarioMetrics& m = result.value();
        table.add_row({m.scenario, std::to_string(m.distinct_flows), std::to_string(m.cam_hits),
                       std::to_string(m.lu1_hits), std::to_string(m.lu2_hits),
                       std::to_string(m.new_flows), TablePrinter::percent(m.new_flow_ratio, 1),
                       std::to_string(m.drops),
                       TablePrinter::fixed(m.mdesc_per_s, 2),
                       TablePrinter::fixed(m.sustained_gbps, 1)});

        bench::JsonResult json("bench_scenarios");
        json.add("scenario", m.scenario)
            .add("packets", m.packets)
            .add("overlay_packets", m.overlay_packets)
            .add("distinct_flows", m.distinct_flows)
            .add("completions", m.completions)
            .add("cam_hits", m.cam_hits)
            .add("lu1_hits", m.lu1_hits)
            .add("lu2_hits", m.lu2_hits)
            .add("new_flows", m.new_flows)
            .add("new_flow_ratio", m.new_flow_ratio)
            .add("drops", m.drops)
            .add("buffer_retries", m.buffer_retries)
            .add("events_port_scan", m.events_port_scan)
            .add("events_heavy_hitter", m.events_heavy_hitter)
            .add("cycles", m.cycles)
            .add("mdesc_per_s", m.mdesc_per_s)
            .add("sustained_gbps", m.sustained_gbps)
            .add("drained", m.drained);
        json.emit();
    }
    table.print(std::cout, "Scenario sweep: " + std::to_string(packets) +
                               " packets each through the timed Flow LUT");

    bench::print_shape_note(
        "baseline tracks the Fig. 6 new-flow tail; syn_flood pushes B/A toward the attack\n"
        "fraction (insert-path worst case); port_scan and flash_crowd concentrate on one\n"
        "victim; heavy_hitter shifts bytes, not lookups; churn sustains retire+insert waves.");
    return 0;
}
