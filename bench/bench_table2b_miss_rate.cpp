// Table II(B) reproduction: processing rate vs. flow miss rate on a table
// preloaded with 10 k entries, probed with 10 k descriptors whose match
// fraction is controlled.
//
// Paper reference: miss 100/75/50/25/0 % ->
//   46.90 / 54.97 / 70.16 / 94.36 / 96.92 Mdesc/s,
// with the §V-B consequence that any miss rate <= 50 % sustains > 70 Mpps,
// i.e. 40 GbE line rate at minimum packet size.
#include <iostream>

#include "bench_util.hpp"
#include "net/linerate.hpp"

using namespace flowcam;

int main() {
    constexpr u64 kTableFlows = 10000;
    constexpr u64 kDescriptors = 10000;

    TablePrinter table(
        {"flow miss rate", "proc. rate (Mdesc/s)", "supports (Gbps @64B)", "paper (Mdesc/s)"});
    const struct {
        double miss;
        const char* paper;
    } rows[] = {{1.00, "46.90"}, {0.75, "54.97"}, {0.50, "70.16"}, {0.25, "94.36"}, {0.0, "96.92"}};

    double rate_at_50 = 0.0;
    for (const auto& row : rows) {
        core::FlowLutConfig config;
        config.buckets_per_mem = u64{1} << 14;
        config.ways = 4;
        config.cam_capacity = 2048;
        core::FlowLut lut(config);
        bench::MissRateWorkload workload(lut, kTableFlows, 1.0 - row.miss, 42);
        const auto result = bench::run_throughput(
            lut, [&](u64 i) { return workload(i); }, kDescriptors, 2);
        if (row.miss == 0.50) rate_at_50 = result.mdesc_per_s;
        table.add_row({TablePrinter::percent(row.miss, 0),
                       TablePrinter::fixed(result.mdesc_per_s, 2),
                       TablePrinter::fixed(net::supported_gbps(result.mdesc_per_s), 1),
                       row.paper});
    }
    table.print(std::cout,
                "Table II(B): flow match on a 10k-entry table (10k probes, 100 MHz input)");

    std::cout << "40 GbE requires " << TablePrinter::fixed(net::mpps({40.0, 64.0, 12.0}), 2)
              << " Mpps (12B IPG) / " << TablePrinter::fixed(net::mpps({40.0, 64.0, 1.0}), 2)
              << " Mpps (1B IPG); at 50% miss this design sustains "
              << TablePrinter::fixed(rate_at_50, 2) << " Mdesc/s.\n";
    bench::print_shape_note(
        "rate rises monotonically as the miss rate falls; >70 Mdesc/s at <=50% miss\n"
        "(the paper's 40GbE claim), approaching the 100 MHz input bound at 0% miss.");
    return 0;
}
