// Shared helpers for the experiment benches: the descriptor-pattern
// workloads of the paper's Table II and a steady-state throughput runner.
//
// Measurement protocol (mirrors §V-A): preload the table where applicable,
// then offer 10 thousand descriptors at a fixed input rate and report the
// average processing rate in Mdesc/s over the busy interval.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "core/flow_lut.hpp"
#include "net/trace.hpp"
#include "workload/metrics.hpp"

namespace flowcam::bench {

/// One machine-readable bench result: rendered as a single JSON object per
/// line (JSONL) so a directory of runs concatenates into a trajectory.
/// Emission is opt-in via the FLOWCAM_BENCH_JSON environment variable:
/// unset -> no-op, "-" -> stdout, anything else -> append to that path.
class JsonResult {
  public:
    explicit JsonResult(std::string bench) { add("bench", std::move(bench)); }

    JsonResult& add(const std::string& key, const std::string& value) {
        field(key) << '"' << escape(value) << '"';
        return *this;
    }
    JsonResult& add(const std::string& key, const char* value) {
        return add(key, std::string(value));
    }
    JsonResult& add(const std::string& key, double value) {
        field(key) << value;
        return *this;
    }
    JsonResult& add(const std::string& key, u64 value) {
        field(key) << value;
        return *this;
    }
    JsonResult& add(const std::string& key, bool value) {
        field(key) << (value ? "true" : "false");
        return *this;
    }
    /// Append an already-rendered JSON literal (e.g. from the workload
    /// metric schema's metric_json) under `key`.
    JsonResult& add_raw(const std::string& key, const std::string& json_literal) {
        field(key) << json_literal;
        return *this;
    }

    [[nodiscard]] std::string line() const { return "{" + body_.str() + "}"; }

    /// Write the line to the sink named by FLOWCAM_BENCH_JSON (no-op when
    /// the variable is unset).
    void emit() const {
        const char* sink = std::getenv("FLOWCAM_BENCH_JSON");
        if (sink == nullptr || *sink == '\0') return;
        if (std::string_view(sink) == "-") {
            std::cout << line() << "\n";
            return;
        }
        std::ofstream out(sink, std::ios::app);
        if (out) out << line() << "\n";
    }

  private:
    std::ostringstream& field(const std::string& key) {
        if (!first_) body_ << ",";
        first_ = false;
        body_ << '"' << escape(key) << "\":";
        return body_;
    }

    // One escaper for every JSONL surface (add_raw values are escaped by
    // the same function inside the workload metric schema).
    static std::string escape(const std::string& raw) {
        return flowcam::workload::json_escape(raw);
    }

    std::ostringstream body_;
    bool first_ = true;
};


struct RunResult {
    double mdesc_per_s = 0.0;
    double load_fraction_a = 0.0;
    core::FlowLutStats stats;
};

/// Offer `count` descriptors produced by `next_key` every
/// `cycles_per_offer` system cycles (2 => 100 MHz input on the 200 MHz
/// fabric — the top of the paper's 60..100 MHz test range), then drain.
inline RunResult run_throughput(core::FlowLut& lut,
                                const std::function<net::FiveTuple(u64)>& next_key,
                                u64 count, u32 cycles_per_offer = 2) {
    const Cycle start = lut.now();
    u64 offered = 0;
    u64 ts = 1;
    while (offered < count) {
        if (lut.now() % cycles_per_offer == 0) {
            const net::FiveTuple tuple = next_key(offered);
            if (lut.offer(net::NTuple::from_five_tuple(tuple), ts, 64)) {
                ++offered;
                ts += 17;
            }
        }
        lut.step();
    }
    (void)lut.drain();
    RunResult result;
    result.stats = lut.stats();
    result.mdesc_per_s = sim::mega_per_second(result.stats.completions, lut.now() - start,
                                              lut.config().system_clock_hz);
    result.load_fraction_a = result.stats.load_fraction_a();
    return result;
}

/// Raw-hash variant for Table II(A): descriptors carry explicit bucket
/// indices; keys are unique so every descriptor exercises the full
/// lookup+insert path, as in the paper's hash-pattern tests.
inline RunResult run_raw_pattern(core::FlowLut& lut,
                                 const std::function<u64(u64)>& bucket_of, u64 count,
                                 u64 seed, u32 cycles_per_offer = 2) {
    Xoshiro256 rng(seed);
    const Cycle start = lut.now();
    u64 offered = 0;
    while (offered < count) {
        if (lut.now() % cycles_per_offer == 0) {
            const u64 bucket = bucket_of(offered);
            const net::NTuple key =
                net::NTuple::from_five_tuple(net::synth_tuple(offered, seed ^ 0xFACE));
            if (lut.offer_raw(key, bucket, bucket, rng(), offered + 1, 64)) ++offered;
        }
        lut.step();
    }
    (void)lut.drain();
    RunResult result;
    result.stats = lut.stats();
    result.mdesc_per_s = sim::mega_per_second(result.stats.completions, lut.now() - start,
                                              lut.config().system_clock_hz);
    result.load_fraction_a = result.stats.load_fraction_a();
    return result;
}

/// A Table II(B)-style probe set: preload `table_flows` flows, then build a
/// mixed stream with the requested hit fraction.
struct MissRateWorkload {
    MissRateWorkload(core::FlowLut& lut, u64 table_flows, double hit_rate, u64 seed)
        : population(table_flows, seed), hit_rate_(hit_rate), rng_(seed ^ 0xAB) {
        for (const auto& tuple : population.flows()) {
            (void)lut.preload(net::NTuple::from_five_tuple(tuple));
        }
    }

    net::FiveTuple operator()(u64 /*i*/) {
        if (rng_.uniform() < hit_rate_) {
            return population.flows()[rng_.bounded(population.flows().size())];
        }
        return net::synth_tuple(miss_counter_++ + (u64{1} << 32), 0xD15C);
    }

    net::UniformFlowWorkload population;
    double hit_rate_;
    Xoshiro256 rng_;
    u64 miss_counter_ = 0;
};

inline void print_shape_note(const std::string& note) {
    std::cout << "\nshape check: " << note << "\n\n";
}

}  // namespace flowcam::bench
