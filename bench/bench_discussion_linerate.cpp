// §V-B discussion reproduction: Ethernet line-rate arithmetic and the
// end-to-end argument that a warm table sustains > 40 GbE.
//
// Steps, as in the paper:
//  1. required Mpps at 40 GbE for 72-byte L1 packets (12 B and 1 B IPG);
//  2. measured lookup rate vs. miss rate (Table II(B) machinery);
//  3. Fig. 6 extrapolation: a warm multi-million-entry table sees ~2 %
//     misses, hence > 94 Mdesc/s, hence > 50 Gbps at minimum packet size.
#include <iostream>

#include "bench_util.hpp"
#include "net/linerate.hpp"

using namespace flowcam;

int main() {
    TablePrinter requirements({"link", "IPG (bytes)", "required Mpps", "paper"});
    requirements.add_row({"10 GbE", "12", TablePrinter::fixed(net::mpps({10, 64, 12}), 2), ""});
    requirements.add_row(
        {"40 GbE", "12", TablePrinter::fixed(net::mpps({40, 64, 12}), 2), "59.52"});
    requirements.add_row(
        {"40 GbE", "1", TablePrinter::fixed(net::mpps({40, 64, 1}), 2), "68.49"});
    requirements.add_row(
        {"100 GbE", "12", TablePrinter::fixed(net::mpps({100, 64, 12}), 2), ""});
    requirements.print(std::cout,
                       "Line-rate requirements (72-byte L1 packet = 64B frame + preamble/SFD)");

    // Measured rate at the warm-table operating point (2% miss, Fig. 6).
    core::FlowLutConfig config;
    config.buckets_per_mem = u64{1} << 14;
    config.ways = 4;
    config.cam_capacity = 2048;
    core::FlowLut lut(config);
    bench::MissRateWorkload workload(lut, 10000, 0.98, 7);
    const auto warm = bench::run_throughput(lut, [&](u64 i) { return workload(i); }, 10000, 2);

    TablePrinter conclusion({"operating point", "measured Mdesc/s", "supported Gbps @64B",
                             "paper"});
    conclusion.add_row({"warm table (2% miss, Fig. 6)",
                        TablePrinter::fixed(warm.mdesc_per_s, 2),
                        TablePrinter::fixed(net::supported_gbps(warm.mdesc_per_s), 1),
                        ">94 Mdesc/s, >50 Gbps"});
    conclusion.print(std::cout, "End-to-end conclusion (paper §V-B)");

    std::cout << "\ncomparison points from the paper: Cisco Catalyst 6500 Sup2T-XL holds 1M\n"
                 "flows; Netronome NFP3240 holds 8M at 20 Gbps — this design targets 8M\n"
                 "flows at >40 Gbps.\n";
    bench::print_shape_note(
        "the measured warm-table rate exceeds the 68.49 Mpps worst-case 40GbE\n"
        "requirement with margin, supporting the paper's >40Gbps headline claim.");
    return 0;
}
