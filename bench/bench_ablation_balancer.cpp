// Ablation A3: load-balancer policy comparison (the Sequencer's knob).
//
// The paper's conclusion proposes "Software-Defined load balancing ... to
// process different traffic patterns in different scenarios"; this bench
// quantifies the policy space on the Table II(B) 50%-miss workload.
// Note: kAlternate and kLeastLoaded are NOT flow-affine and may reorder
// packets within a flow — they are included to show the throughput/ordering
// trade, not as recommended configurations.
#include <iostream>

#include "bench_util.hpp"

using namespace flowcam;

int main() {
    constexpr u64 kDescriptors = 8000;
    TablePrinter table({"policy", "load path A", "rate @50% miss (Mdesc/s)", "flow-affine"});

    const struct {
        core::BalancePolicy policy;
        double weight;
        const char* affine;
    } rows[] = {
        {core::BalancePolicy::kHashBit, 0.5, "yes"},
        {core::BalancePolicy::kWeightedHash, 0.5, "yes"},
        {core::BalancePolicy::kWeightedHash, 0.25, "yes"},
        {core::BalancePolicy::kWeightedHash, 0.0, "yes"},
        {core::BalancePolicy::kAlternate, 0.5, "no"},
        {core::BalancePolicy::kLeastLoaded, 0.5, "no"},
    };

    for (const auto& row : rows) {
        core::FlowLutConfig config;
        config.buckets_per_mem = u64{1} << 14;
        config.ways = 4;
        config.cam_capacity = 2048;
        config.balance = row.policy;
        config.weight_a = row.weight;
        core::FlowLut lut(config);
        bench::MissRateWorkload workload(lut, 8000, 0.5, 23);
        const auto result =
            bench::run_throughput(lut, [&](u64 i) { return workload(i); }, kDescriptors, 2);
        std::string name = to_string(row.policy);
        if (row.policy == core::BalancePolicy::kWeightedHash) {
            name += " wA=" + TablePrinter::fixed(row.weight, 2);
        }
        table.add_row({name, TablePrinter::percent(result.load_fraction_a, 1),
                       TablePrinter::fixed(result.mdesc_per_s, 2), row.affine});
    }
    table.print(std::cout, "Ablation A3: sequencer load-balancer policies");
    bench::print_shape_note(
        "balanced policies (~50% path A) outperform skewed ones; fully skewing to\n"
        "one path reproduces the Table II(A) 0%-load degradation. Non-affine\n"
        "policies gain nothing here and sacrifice per-flow ordering.");
    return 0;
}
