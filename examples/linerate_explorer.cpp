// Line-rate explorer — answers the deployment question the paper's §V-B
// discussion poses: "can this configuration carry my link?"
//
//   $ ./linerate_explorer [link_gbps] [table_flows]
//
// For a given link speed it prints the required packet rate at several
// packet sizes, measures the Flow LUT's sustained rate across miss rates,
// and reports which operating points hold the line.
#include <cstdio>
#include <cstdlib>

#include "common/table_printer.hpp"
#include "core/flow_lut.hpp"
#include "common/rng.hpp"
#include "net/linerate.hpp"
#include "net/trace.hpp"

#include <functional>
#include <iostream>

using namespace flowcam;

namespace {

double measure_rate(double hit_rate, u64 table_flows) {
    core::FlowLutConfig config;
    config.buckets_per_mem = u64{1} << 14;
    config.ways = 4;
    config.cam_capacity = 2048;
    core::FlowLut lut(config);

    net::UniformFlowWorkload population(table_flows, 5);
    for (const auto& tuple : population.flows()) {
        (void)lut.preload(net::NTuple::from_five_tuple(tuple));
    }
    Xoshiro256 rng(9);
    u64 miss_counter = 0;
    u64 offered = 0;
    const Cycle start = lut.now();
    constexpr u64 kProbes = 6000;
    while (offered < kProbes) {
        if (lut.now() % 2 == 0) {
            net::FiveTuple tuple;
            if (rng.uniform() < hit_rate) {
                tuple = population.flows()[rng.bounded(population.flows().size())];
            } else {
                tuple = net::synth_tuple(miss_counter++ + (u64{1} << 40), 0xEE);
            }
            if (lut.offer(net::NTuple::from_five_tuple(tuple), offered + 1, 64)) ++offered;
        }
        lut.step();
    }
    (void)lut.drain();
    return sim::mega_per_second(lut.stats().completions, lut.now() - start,
                                config.system_clock_hz);
}

}  // namespace

int main(int argc, char** argv) {
    const double link_gbps = argc > 1 ? std::strtod(argv[1], nullptr) : 40.0;
    const u64 table_flows = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10000;

    TablePrinter requirements({"frame bytes", "wire bytes (+preamble+IPG)", "required Mpps"});
    for (const double frame : {64.0, 128.0, 256.0, 512.0, 1518.0}) {
        const net::LineRateQuery query{link_gbps, frame, net::kStandardIpgBytes};
        requirements.add_row({TablePrinter::fixed(frame, 0),
                              TablePrinter::fixed(frame + 8 + 12, 0),
                              TablePrinter::fixed(net::mpps(query), 2)});
    }
    requirements.print(std::cout, "Packet-rate requirements at " +
                                      TablePrinter::fixed(link_gbps, 0) + " Gbps");

    const double worst_case = net::mpps({link_gbps, 64.0, net::kStandardIpgBytes});
    TablePrinter capability({"flow miss rate", "sustained Mdesc/s", "holds the line?"});
    for (const double miss : {1.0, 0.5, 0.25, 0.02}) {
        const double rate = measure_rate(1.0 - miss, table_flows);
        capability.add_row({TablePrinter::percent(miss, 0), TablePrinter::fixed(rate, 2),
                            rate >= worst_case ? "yes" : "NO"});
    }
    capability.print(std::cout, "Measured Flow LUT capability (table preloaded with " +
                                    std::to_string(table_flows) + " flows)");

    std::printf("\nA warm table at Fig. 6 miss rates (<2%%) comfortably holds %.0f Gbps at\n"
                "minimum packet size; cold-start (100%% miss) does not — exactly the\n"
                "paper's observation that lookup speeds up as the table fills.\n",
                link_gbps);
    return 0;
}
