// Traffic analyzer example — the paper's §V-C system integration: a flow
// processor fed from a packet buffer, with event and stats engines on top.
//
//   $ ./traffic_analyzer [packets]
//
// Generates a realistic trace (calibrated to the paper's Fig. 6 flow-growth
// curve), streams it through the analyzer, and prints the NetFlow-style
// report: top talkers, protocol mix, security events and lookup rate.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analyzer/analyzer.hpp"
#include "net/trace.hpp"

using namespace flowcam;

int main(int argc, char** argv) {
    const u64 packet_count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

    analyzer::AnalyzerConfig config;
    config.lut.buckets_per_mem = u64{1} << 14;
    config.lut.cam_capacity = 2048;
    config.heavy_hitter_bytes = 64 << 10;  // 64 KB flags a heavy flow
    config.port_scan_threshold = 32;

    analyzer::TrafficAnalyzer analyzer(config);

    net::TraceConfig trace_config;
    trace_config.seed = 2014;
    net::TraceGenerator generator(trace_config);

    std::printf("streaming %llu packets through the traffic analyzer...\n",
                static_cast<unsigned long long>(packet_count));
    for (u64 i = 0; i < packet_count; ++i) {
        const net::PacketRecord record = generator.next();
        while (!analyzer.feed_record(record)) analyzer.step();  // backpressure
        analyzer.step();
    }
    if (!analyzer.drain()) {
        std::fprintf(stderr, "analyzer failed to drain\n");
        return 1;
    }

    std::cout << analyzer.report(10);

    std::printf("--- events (first 10) ---\n");
    u64 shown = 0;
    for (const auto& event : analyzer.events()) {
        if (event.kind == analyzer::EventKind::kNewFlow) continue;  // too many to list
        std::printf("  [%s] %s value=%llu\n", analyzer::to_string(event.kind),
                    event.tuple.to_string().c_str(),
                    static_cast<unsigned long long>(event.value));
        if (++shown == 10) break;
    }
    std::printf("  (plus %llu new-flow events)\n",
                static_cast<unsigned long long>(analyzer.lut().stats().new_flows));

    const auto& stats = analyzer.lut().stats();
    std::printf("--- flow LUT pipeline ---\n");
    std::printf("  CAM stage hits: %llu | LU1 hits: %llu | LU2 hits: %llu | new flows: %llu\n",
                static_cast<unsigned long long>(stats.cam_hits),
                static_cast<unsigned long long>(stats.lu1_hits),
                static_cast<unsigned long long>(stats.lu2_hits),
                static_cast<unsigned long long>(stats.new_flows));
    std::printf("  new-flow ratio B/A = %.2f%% (paper Fig. 6: 33.81%% at 10k packets)\n",
                100.0 * static_cast<double>(stats.new_flows) /
                    static_cast<double>(stats.completions));
    return 0;
}
