// Policy enforcer example — security policy enforcement (paper §I) on top
// of the flow processor: every new flow is classified once against a TCAM
// rule set; subsequent packets inherit the cached per-FID verdict (the
// flow-granular fast path the Flow LUT exists to provide). Expired flows
// are exported as NetFlow v5 datagrams.
//
//   $ ./policy_enforcer
#include <cstdio>
#include <map>

#include "analyzer/netflow_export.hpp"
#include "classifier/policy.hpp"
#include "common/rng.hpp"
#include "core/flow_lut.hpp"
#include "net/trace.hpp"

using namespace flowcam;

int main() {
    // --- Rule set: a small but realistic enterprise edge policy. --------
    classifier::PolicyEngine policy(256, classifier::Action::kPermit);
    {
        classifier::Rule rule;
        rule.name = "deny-telnet";
        rule.action = classifier::Action::kDeny;
        rule.dst_port = 23;
        rule.priority = 100;
        (void)policy.add_rule(rule);
    }
    {
        classifier::Rule rule;
        rule.name = "deny-smb";
        rule.action = classifier::Action::kDeny;
        rule.dst_port = 445;
        rule.priority = 100;
        (void)policy.add_rule(rule);
    }
    {
        classifier::Rule rule;
        rule.name = "mirror-dns";
        rule.action = classifier::Action::kMirror;
        rule.dst_port = 53;
        rule.priority = 50;
        (void)policy.add_rule(rule);
    }
    {
        classifier::Rule rule;
        rule.name = "ratelimit-bulk";
        rule.action = classifier::Action::kRateLimit;
        rule.dst_port = 8080;
        rule.priority = 10;
        (void)policy.add_rule(rule);
    }

    // --- Flow processor + NetFlow exporter. ------------------------------
    core::FlowLutConfig config;
    config.buckets_per_mem = u64{1} << 13;
    config.cam_capacity = 512;
    config.flow_timeout_ns = 20'000'000;  // 20 ms for a quick demo
    config.housekeeping_scan_per_cycle = 8;
    core::FlowLut lut(config);

    analyzer::NetflowV5Exporter exporter;
    u64 datagrams = 0;
    lut.flow_state().set_export_callback([&](const core::FlowRecord& record) {
        datagrams += exporter.add(record).size();
    });

    // --- Traffic: a trace with deliberate policy violations mixed in. ----
    net::TraceConfig trace_config;
    net::TraceGenerator generator(trace_config);
    Xoshiro256 rng(55);

    std::map<std::string, u64> packets_by_action;
    u64 offered = 0;
    constexpr u64 kPackets = 15000;
    u64 last_ts = 0;
    while (offered < kPackets) {
        net::PacketRecord record = generator.next();
        if (rng.chance(0.05)) {
            // Make one in twenty flows violate policy.
            record.tuple.dst_port = rng.chance(0.5) ? 23 : 445;
        }
        last_ts = record.timestamp_ns;
        while (!lut.offer(net::NTuple::from_five_tuple(record.tuple), record.timestamp_ns,
                          record.frame_bytes)) {
            lut.step();
        }
        ++offered;
        lut.step();
        while (const auto completion = lut.pop_completion()) {
            if (completion->fid == kInvalidFlowId) continue;
            const auto tuple = net::FiveTuple::from_key_bytes(completion->key.view());
            const auto verdict = policy.verdict_for(completion->fid, tuple);
            ++packets_by_action[to_string(verdict.action)];
        }
    }
    (void)lut.drain();
    while (const auto completion = lut.pop_completion()) {
        if (completion->fid == kInvalidFlowId) continue;
        const auto tuple = net::FiveTuple::from_key_bytes(completion->key.view());
        ++packets_by_action[to_string(policy.verdict_for(completion->fid, tuple).action)];
    }

    // Quiet period: expire everything and export.
    while (!lut.offer(net::NTuple::from_five_tuple(net::synth_tuple(1, 77)),
                      last_ts + 1'000'000'000, 64)) {
        lut.step();
    }
    lut.run(300000);
    (void)lut.drain();
    datagrams += 1;
    const auto tail = exporter.flush();

    // --- Report. -----------------------------------------------------------
    std::printf("processed %llu packets at %.2f Mdesc/s\n",
                static_cast<unsigned long long>(lut.stats().completions),
                lut.mdesc_per_second());
    std::printf("\nper-packet verdicts (flow-cached after first packet):\n");
    for (const auto& [action, count] : packets_by_action) {
        std::printf("  %-10s %llu\n", action.c_str(), static_cast<unsigned long long>(count));
    }
    std::printf("\nclassifier: %llu slow-path classifications, %llu cache hits (%llu rules)\n",
                static_cast<unsigned long long>(policy.stats().classified),
                static_cast<unsigned long long>(policy.stats().cache_hits),
                static_cast<unsigned long long>(policy.rule_count()));
    std::printf("netflow: %llu flows exported in %llu datagrams (+%zu B final partial)\n",
                static_cast<unsigned long long>(exporter.flows_exported()),
                static_cast<unsigned long long>(datagrams), tail.size());
    return 0;
}
