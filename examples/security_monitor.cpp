// Security monitor example — the intrusion-detection use case from the
// paper's introduction ("flow inspection, mapping and monitoring ...
// intrusion detection and prevention, QoS monitoring and security policy
// enforcement").
//
//   $ ./security_monitor
//
// Simulates background traffic with two injected attacks (a port scan and
// a data-exfiltration heavy hitter) plus short flow timeouts, and shows the
// event engine catching both while housekeeping recycles table entries.
#include <cstdio>

#include "analyzer/analyzer.hpp"
#include "common/rng.hpp"
#include "net/trace.hpp"

using namespace flowcam;

int main() {
    analyzer::AnalyzerConfig config;
    config.lut.buckets_per_mem = u64{1} << 12;
    config.lut.cam_capacity = 512;
    config.lut.flow_timeout_ns = 5'000'000;  // 5 ms idle timeout (aggressive)
    config.lut.housekeeping_scan_per_cycle = 8;
    config.heavy_hitter_bytes = 256 << 10;  // 256 KB
    config.port_scan_threshold = 24;

    analyzer::TrafficAnalyzer analyzer(config);
    Xoshiro256 rng(1337);

    u64 now_ns = 0;
    const auto feed = [&](const net::FiveTuple& tuple, u16 bytes) {
        net::PacketRecord record;
        record.tuple = tuple;
        record.timestamp_ns = now_ns;
        record.frame_bytes = bytes;
        while (!analyzer.feed_record(record)) analyzer.step();
        analyzer.step();
    };

    std::printf("phase 1: 5000 packets of benign background traffic...\n");
    for (int i = 0; i < 5000; ++i) {
        now_ns += 2000;
        feed(net::synth_tuple(rng.bounded(400), 99), 512);
    }

    std::printf("phase 2: port scan — one source sweeping 40 ports...\n");
    net::FiveTuple scanner = net::synth_tuple(10'000, 99);
    for (u16 port = 8000; port < 8040; ++port) {
        now_ns += 500;
        net::FiveTuple probe = scanner;
        probe.dst_port = port;
        feed(probe, 64);
    }

    std::printf("phase 3: exfiltration — one flow moving ~1.5 MB...\n");
    const net::FiveTuple exfil = net::synth_tuple(20'000, 99);
    for (int i = 0; i < 1000; ++i) {
        now_ns += 1000;
        feed(exfil, 1500);
    }

    std::printf("phase 4: quiet period — housekeeping expires idle flows...\n");
    now_ns += 50'000'000;  // 50 ms of silence
    feed(net::synth_tuple(30'000, 99), 64);  // one packet to advance stream time
    for (int i = 0; i < 200000; ++i) analyzer.step();
    (void)analyzer.drain();

    std::printf("\n%s\n", analyzer.report(5).c_str());

    std::printf("--- security events ---\n");
    for (const auto& event : analyzer.events()) {
        if (event.kind == analyzer::EventKind::kNewFlow ||
            event.kind == analyzer::EventKind::kFlowExpired) {
            continue;
        }
        std::printf("  [%s] %s value=%llu\n", analyzer::to_string(event.kind),
                    event.tuple.to_string().c_str(),
                    static_cast<unsigned long long>(event.value));
    }
    std::printf("\nflows expired by housekeeping: %llu (table recycled for new flows)\n",
                static_cast<unsigned long long>(
                    analyzer.lut().flow_state().expired_total()));
    std::printf("table occupancy after quiet period: %llu entries\n",
                static_cast<unsigned long long>(analyzer.lut().table().size()));
    return 0;
}
