// Quickstart: build a Flow LUT, push packets through it, read back flow IDs
// and per-flow statistics.
//
//   $ ./quickstart
//
// This walks the public API end to end in under a hundred lines: configure,
// offer descriptors, step the cycle simulation, pop completions, and query
// the flow-state block.
#include <cstdio>

#include "core/flow_lut.hpp"
#include "net/tuple.hpp"

using namespace flowcam;

int main() {
    // 1. Configure. Defaults model the paper's prototype: 200 MHz fabric,
    //    two 32-bit DDR3-1600 channels behind quarter-rate controllers.
    core::FlowLutConfig config;
    config.buckets_per_mem = u64{1} << 14;  // 16k buckets x 4 ways x 2 mems
    config.cam_capacity = 1024;
    core::FlowLut lut(config);

    // 2. Describe some traffic: three packets of flow A, one of flow B.
    net::FiveTuple flow_a;
    flow_a.src_ip = 0x0A000001;  // 10.0.0.1
    flow_a.dst_ip = 0x5DB8D822;  // 93.184.216.34
    flow_a.src_port = 49152;
    flow_a.dst_port = 443;
    flow_a.protocol = net::kProtoTcp;

    net::FiveTuple flow_b = flow_a;
    flow_b.src_port = 49153;  // one field differs -> a different flow

    const net::FiveTuple packets[] = {flow_a, flow_a, flow_b, flow_a};

    // 3. Offer descriptors and run the cycle simulation until drained.
    u64 timestamp_ns = 1000;
    for (const auto& tuple : packets) {
        while (!lut.offer(net::NTuple::from_five_tuple(tuple), timestamp_ns, 64)) {
            lut.step();  // input FIFO full: apply backpressure
        }
        timestamp_ns += 1000;
    }
    if (!lut.drain()) {
        std::fprintf(stderr, "simulation failed to drain\n");
        return 1;
    }

    // 4. Pop completions: one per packet, in retirement order.
    std::printf("%-45s %-18s %s\n", "flow", "FID", "disposition");
    while (const auto completion = lut.pop_completion()) {
        const auto tuple = net::FiveTuple::from_key_bytes(completion->key.view());
        std::printf("%-45s %-18llu %s\n", tuple.to_string().c_str(),
                    static_cast<unsigned long long>(completion->fid),
                    completion->is_new_flow ? "new flow" : "hit");
    }

    // 5. Per-flow statistics from the Flow State block.
    std::printf("\nactive flows: %zu\n", lut.flow_state().active_flows());
    for (const auto& record : lut.flow_state().snapshot()) {
        const auto tuple = net::FiveTuple::from_key_bytes(record.key.view());
        std::printf("  %s  packets=%llu bytes=%llu\n", tuple.to_string().c_str(),
                    static_cast<unsigned long long>(record.packets),
                    static_cast<unsigned long long>(record.bytes));
    }

    // 6. Throughput and memory-system statistics.
    std::printf("\nprocessed %llu descriptors in %llu cycles (%.2f Mdesc/s at 200 MHz)\n",
                static_cast<unsigned long long>(lut.stats().completions),
                static_cast<unsigned long long>(lut.now()), lut.mdesc_per_second());
    std::printf("DDR3 channel A: %llu reads, %llu writes, protocol %s\n",
                static_cast<unsigned long long>(
                    lut.controller(core::Path::kA).stats().reads_completed),
                static_cast<unsigned long long>(
                    lut.controller(core::Path::kA).stats().writes_completed),
                lut.controller(core::Path::kA).protocol_status().to_string().c_str());
    return 0;
}
