// Scenario runner CLI — run any workload scenario spec end-to-end through
// the timed Flow LUT system and print its metrics.
//
//   $ ./scenario_runner --list
//   $ ./scenario_runner --scenario=syn_flood --packets=20000 --seed=2014
//   $ ./scenario_runner --scenario='flash_crowd+syn_flood@onset=0.3,ramp=0.0:0.4'
//   $ ./scenario_runner --scenario=replay:trace.csv
//   $ ./scenario_runner --all --packets=10000 --jobs=8
//
// --scenario takes the full composition grammar (see --list): registry
// names, '+'-composed overlays with onset/offset windows and ramp/pulse
// intensity schedules, and replay:<path> packet traces (CSV/JSONL, IPv6
// included). Repeated runs with the same spec + seed print identical
// metrics: the whole stack (generator, clock, Flow LUT, DRAM model) is
// deterministic. --all runs the catalogue on a thread pool (one independent
// engine + LUT per scenario) and prints results in catalogue order,
// byte-identical to a serial --jobs=1 run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "workload/compose.hpp"
#include "workload/registry.hpp"
#include "workload/runner.hpp"

using namespace flowcam;

namespace {

bool parse_flag(const char* arg, const char* name, std::string& value) {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
    value = arg + len + 1;
    return true;
}

void usage(const char* program) {
    std::printf("usage: %s [--scenario=<spec> | --all | --list] [--packets=N] [--seed=S]\n"
                "           [--attack=F] [--onset=N] [--jobs=N]\n\n",
                program);
    std::printf("registered scenarios:\n");
    for (const auto& name : workload::builtin_registry().names()) {
        std::printf("  %-14s %s\n", name.c_str(),
                    workload::builtin_registry().describe(name).value_or("?").c_str());
    }
    std::printf("\n%s\n\nexamples:\n"
                "  --scenario='flash_crowd+syn_flood@onset=0.3,ramp=0.0:0.4'\n"
                "  --scenario='churn@attack=0.3+heavy_hitter@onset=0.5,offset=0.9'\n"
                "  --scenario=replay:trace.csv\n",
                workload::compose_grammar_help().c_str());
}

}  // namespace

int main(int argc, char** argv) {
    std::string scenario_name;
    bool run_all = false;
    workload::ScenarioConfig scenario_config;
    workload::RunnerConfig runner_config;

    std::size_t jobs = common::ThreadPool::default_jobs();
    for (int i = 1; i < argc; ++i) {
        std::string value;
        if (parse_flag(argv[i], "--scenario", value)) {
            scenario_name = value;
        } else if (parse_flag(argv[i], "--packets", value)) {
            runner_config.packets = std::strtoull(value.c_str(), nullptr, 10);
        } else if (parse_flag(argv[i], "--seed", value)) {
            scenario_config.seed = std::strtoull(value.c_str(), nullptr, 10);
        } else if (parse_flag(argv[i], "--attack", value)) {
            scenario_config.attack_fraction = std::strtod(value.c_str(), nullptr);
        } else if (parse_flag(argv[i], "--onset", value)) {
            scenario_config.onset_packets = std::strtoull(value.c_str(), nullptr, 10);
        } else if (parse_flag(argv[i], "--jobs", value)) {
            jobs = std::strtoull(value.c_str(), nullptr, 10);
        } else if (std::strcmp(argv[i], "--all") == 0) {
            run_all = true;
        } else if (std::strcmp(argv[i], "--list") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n\n", argv[i]);
            usage(argv[0]);
            return 2;
        }
    }
    if (!run_all && scenario_name.empty()) {
        usage(argv[0]);
        return 2;
    }

    const auto names = run_all ? workload::builtin_registry().names()
                               : std::vector<std::string>{scenario_name};
    std::vector<Result<workload::ScenarioMetrics>> results;
    results.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        results.emplace_back(Status(StatusCode::kUnavailable, "not run"));
    }
    common::ThreadPool::parallel_for_indexed(names.size(), jobs, [&](std::size_t i) {
        workload::ScenarioRunner runner(runner_config);
        results[i] = runner.run(names[i], scenario_config);
    });
    for (const auto& metrics : results) {
        if (!metrics) {
            std::fprintf(stderr, "error: %s\n", metrics.status().to_string().c_str());
            return 1;
        }
        std::printf("%s\n\n", metrics.value().to_string().c_str());
    }
    return 0;
}
