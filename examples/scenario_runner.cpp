// Scenario runner CLI — run workload scenario specs end-to-end through the
// timed Flow LUT system: single runs, whole-catalogue sweeps, and declarative
// parameter-grid experiments (N scenario specs x M config axes).
//
//   $ ./scenario_runner --list                 # scenario grammar + catalogue
//   $ ./scenario_runner --list-keys            # patchable config registry
//   $ ./scenario_runner --scenario=syn_flood --packets=20000 --seed=2014
//   $ ./scenario_runner --scenario='flash_crowd+syn_flood@onset=0.3,ramp=0.0:0.4'
//   $ ./scenario_runner --scenario=replay:trace.csv
//   $ ./scenario_runner --scenario='replay:trace.csv+syn_flood@onset=0.3'
//   $ ./scenario_runner --all --packets=10000 --jobs=8
//   $ ./scenario_runner --scenario=syn_flood --set=lut.balance=weighted-hash
//         --sweep=lut.cam_capacity=1024,2048,4096 --jobs=4   (one command line)
//
// --set=key=value patches any registered config field (see --list-keys);
// --sweep=key=v1,v2,... adds a config axis — all axes and all --scenario
// specs are crossed into a grid of cells, each run independently (one engine
// + Flow LUT per cell) on a thread pool. The grid is emitted three ways from
// one metric schema: an aligned terminal table, a CSV (--csv=PATH, default
// experiment.csv when sweeping), and a JSONL stream (--jsonl=PATH, default
// $FLOWCAM_BENCH_JSON or experiment.jsonl when sweeping). Cell order, and
// with it every rendering, is byte-identical whatever --jobs is.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "workload/compose.hpp"
#include "workload/config_patch.hpp"
#include "workload/experiment.hpp"
#include "workload/registry.hpp"
#include "workload/runner.hpp"

using namespace flowcam;

namespace {

bool parse_flag(const char* arg, const char* name, std::string& value) {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
    value = arg + len + 1;
    return true;
}

void usage(const char* program) {
    std::printf(
        "usage: %s [--scenario=<spec> ...] [--all | --list | --list-keys]\n"
        "           [--set=key=value ...] [--sweep=key=v1,v2,... ...]\n"
        "           [--packets=N] [--seed=S] [--attack=F] [--onset=N] [--jobs=N]\n"
        "           [--csv=PATH] [--jsonl=PATH]   ('-' = stdout)\n\n",
        program);
    std::printf("registered scenarios:\n");
    for (const auto& name : workload::builtin_registry().names()) {
        std::printf("  %-14s %s\n", name.c_str(),
                    workload::builtin_registry().describe(name).value_or("?").c_str());
    }
    std::printf("\n%s\n\nexamples:\n"
                "  --scenario='flash_crowd+syn_flood@onset=0.3,ramp=0.0:0.4'\n"
                "  --scenario='churn@attack=0.3+heavy_hitter@onset=0.5,offset=0.9'\n"
                "  --scenario='replay:trace.csv+syn_flood@onset=0.3'\n"
                "  --scenario=syn_flood --sweep=lut.cam_capacity=1024,2048,4096 --jobs=4\n"
                "\n--list-keys prints every --set/--sweep config key with its type,\n"
                "default and doc.\n",
                workload::compose_grammar_help().c_str());
}

/// Write `text` to `path` ("-" = stdout); returns false on I/O failure.
/// The CSV is a snapshot (truncate); the JSONL is a trajectory (append) —
/// it may share a file with the benches' $FLOWCAM_BENCH_JSON stream, which
/// accumulates across runs and must never be clobbered.
bool write_sink(const std::string& path, const std::string& text, const char* what,
                bool append) {
    if (path == "-") {
        std::fputs(text.c_str(), stdout);
        return true;
    }
    std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "error: cannot write %s to '%s'\n", what, path.c_str());
        return false;
    }
    out << text;
    std::printf("grid %s -> %s%s\n", what, path.c_str(), append ? " (appended)" : "");
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    workload::ExperimentSpec spec;
    bool run_all = false;
    std::string csv_path;
    std::string jsonl_path;
    std::size_t jobs = common::ThreadPool::default_jobs();

    for (int i = 1; i < argc; ++i) {
        std::string value;
        if (parse_flag(argv[i], "--scenario", value)) {
            spec.scenarios.push_back(value);
        } else if (parse_flag(argv[i], "--set", value)) {
            spec.overrides.push_back(value);
        } else if (parse_flag(argv[i], "--sweep", value)) {
            auto axis = workload::parse_sweep_axis(value);
            if (!axis) {
                std::fprintf(stderr, "error: %s\n", axis.status().to_string().c_str());
                return 2;
            }
            spec.axes.push_back(std::move(axis).value());
        } else if (parse_flag(argv[i], "--packets", value)) {
            // Legacy shorthands are ordered overrides like --set, so mixing
            // them ("--set=scenario.attack=0.8 ... --attack=0.5") resolves
            // by command-line position instead of silently favoring --set —
            // and they get the registry's typed value validation for free.
            spec.overrides.push_back("runner.packets=" + value);
        } else if (parse_flag(argv[i], "--seed", value)) {
            spec.overrides.push_back("scenario.seed=" + value);
        } else if (parse_flag(argv[i], "--attack", value)) {
            spec.overrides.push_back("scenario.attack=" + value);
        } else if (parse_flag(argv[i], "--onset", value)) {
            spec.overrides.push_back("scenario.onset_packets=" + value);
        } else if (parse_flag(argv[i], "--jobs", value)) {
            jobs = std::strtoull(value.c_str(), nullptr, 10);
        } else if (parse_flag(argv[i], "--csv", value)) {
            csv_path = value;
        } else if (parse_flag(argv[i], "--jsonl", value)) {
            jsonl_path = value;
        } else if (std::strcmp(argv[i], "--all") == 0) {
            run_all = true;
        } else if (std::strcmp(argv[i], "--list") == 0) {
            usage(argv[0]);
            return 0;
        } else if (std::strcmp(argv[i], "--list-keys") == 0) {
            std::fputs(workload::ConfigPatch::registry().list_keys().c_str(), stdout);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n\n", argv[i]);
            usage(argv[0]);
            return 2;
        }
    }
    if (run_all) {
        // --all means exactly the catalogue; an explicit --scenario alongside
        // it is ignored (pre-grid behavior), not run twice.
        spec.scenarios = workload::builtin_registry().names();
    }
    if (spec.scenarios.empty()) {
        usage(argv[0]);
        return 2;
    }

    const bool sweeping = !spec.axes.empty();
    const bool grid_mode = sweeping || spec.scenarios.size() > 1 || !csv_path.empty() ||
                           !jsonl_path.empty();
    // A sweep always materializes all three grid renderings; pick default
    // sinks when the caller did not name any.
    if (sweeping && csv_path.empty()) csv_path = "experiment.csv";
    if (sweeping && jsonl_path.empty()) {
        const char* bench_sink = std::getenv("FLOWCAM_BENCH_JSON");
        jsonl_path = (bench_sink != nullptr && *bench_sink != '\0') ? bench_sink
                                                                    : "experiment.jsonl";
    }

    auto experiment = workload::Experiment::plan(std::move(spec));
    if (!experiment) {
        std::fprintf(stderr, "error: %s\n", experiment.status().to_string().c_str());
        return 2;
    }
    const std::vector<workload::CellResult> results = experiment.value().run(jobs);
    int failed_cells = 0;
    for (const workload::CellResult& result : results) {
        if (!result.status.is_ok()) {
            ++failed_cells;
            std::fprintf(stderr, "error: cell %zu (%s): %s\n", result.cell.index,
                         result.cell.scenario.c_str(), result.status.to_string().c_str());
        }
    }

    if (!grid_mode) {
        if (failed_cells != 0) return 1;
        std::printf("%s\n", results[0].metrics.to_string().c_str());
        return 0;
    }
    // Completed cells are expensive; render and persist the grid even when
    // some cells failed (their rows stay identifiable by scenario/axes and
    // the errors above), then report the failure via the exit code.
    std::fputs(experiment.value().table(results).c_str(), stdout);
    if (!csv_path.empty() &&
        !write_sink(csv_path, experiment.value().csv(results), "CSV", /*append=*/false)) {
        return 1;
    }
    if (!jsonl_path.empty() &&
        !write_sink(jsonl_path, experiment.value().jsonl(results), "JSONL",
                    /*append=*/true)) {
        return 1;
    }
    return failed_cells == 0 ? 0 : 1;
}
