#include "table/bloom_cam.hpp"

namespace flowcam::table {

BloomCamTable::BloomCamTable(const BloomCamConfig& config)
    : config_(config),
      indexer_(config.table.hash_kind, config.table.seed, config.table.buckets, /*paths=*/1),
      entries_(static_cast<std::size_t>(config.table.buckets) * config.table.ways),
      cam_(config.cam_capacity),
      diverted_(config.bloom_bits, config.bloom_hashes, hash::HashKind::kH3,
                config.table.seed ^ 0xB100F) {}

std::optional<u64> BloomCamTable::lookup(std::span<const u8> key) {
    ++stats_.lookups;
    // The Bloom filter steers: keys recorded as diverted search the CAM
    // first; everything else goes straight to its bucket.
    if (diverted_.maybe_contains(key)) {
        ++stats_.cam_searches;
        if (const auto hit = cam_.lookup(key)) {
            ++stats_.hits;
            return hit;
        }
        ++bloom_false_positives_;  // steered to CAM but not there.
    }
    ++stats_.bucket_reads;
    for (const Entry& entry : bucket(indexer_.index(0, key))) {
        if (entry.matches(key)) {
            ++stats_.hits;
            return entry.payload;
        }
    }
    return std::nullopt;
}

Status BloomCamTable::insert(std::span<const u8> key, u64 payload) {
    ++stats_.inserts;
    ++stats_.bucket_reads;
    auto slots = bucket(indexer_.index(0, key));
    Entry* free_slot = nullptr;
    for (Entry& entry : slots) {
        if (entry.matches(key)) return Status(StatusCode::kAlreadyExists);
        if (!entry.valid && free_slot == nullptr) free_slot = &entry;
    }
    if (free_slot != nullptr) {
        free_slot->assign(key, payload);
        ++stats_.bucket_writes;
        ++size_;
        return Status::ok();
    }

    // Bucket overflow: divert to the CAM and remember that in the filter.
    ++stats_.cam_searches;
    if (cam_.peek(key)) return Status(StatusCode::kAlreadyExists);
    const Status status = cam_.insert(key, payload);
    if (!status.is_ok()) {
        ++stats_.insert_failures;
        return status;
    }
    ++stats_.cam_inserts;
    diverted_.add(key);
    ++size_;
    return Status::ok();
}

Status BloomCamTable::erase(std::span<const u8> key) {
    ++stats_.erases;
    ++stats_.bucket_reads;
    for (Entry& entry : bucket(indexer_.index(0, key))) {
        if (entry.matches(key)) {
            entry.valid = false;
            ++stats_.bucket_writes;
            --size_;
            return Status::ok();
        }
    }
    ++stats_.cam_searches;
    if (cam_.erase(key).is_ok()) {
        diverted_.remove(key);
        --size_;
        return Status::ok();
    }
    return Status(StatusCode::kNotFound);
}

}  // namespace flowcam::table
