// Baseline 3: cuckoo hashing (Thinh et al. [7] applied it on FPGA for
// pattern matching). Two hash functions; an insert that finds both buckets
// full kicks a resident entry to its alternate location. The paper calls out
// the drawback this bench quantifies: "the nondeterministic time to build up
// a hash table because the newly inserted keys sometimes need to kick out
// the keys that are already there" — we record the kick-chain length
// distribution. Lookup stays O(1): exactly two bucket probes.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "hash/index_gen.hpp"
#include "sim/stats.hpp"
#include "table/lookup_table.hpp"
#include "table/single_hash.hpp"

namespace flowcam::table {

class CuckooTable final : public LookupTable {
  public:
    /// `max_kicks` bounds the displacement chain; exceeding it fails the
    /// insert (a real system would rehash).
    CuckooTable(const BucketTableConfig& config, u32 max_kicks = 64);

    [[nodiscard]] std::optional<u64> lookup(std::span<const u8> key) override;
    Status insert(std::span<const u8> key, u64 payload) override;
    Status erase(std::span<const u8> key) override;

    [[nodiscard]] u64 size() const override { return size_; }
    [[nodiscard]] u64 capacity() const override {
        return static_cast<u64>(config_.buckets) * config_.ways * 2;
    }
    [[nodiscard]] std::string name() const override { return "cuckoo"; }

    /// Kick-chain length histogram (the nondeterministic-insert evidence).
    [[nodiscard]] const sim::Histogram& kick_histogram() const { return kicks_; }

    /// Residents dropped by exhausted kick chains (0 below safe load).
    [[nodiscard]] u64 lost_entries() const { return lost_entries_; }

  private:
    [[nodiscard]] std::span<Entry> bucket(u32 mem, u64 index) {
        return {mems_[mem].data() + index * config_.ways, config_.ways};
    }
    /// Try to place into any free way of (mem, index); true on success.
    bool place(u32 mem, u64 index, std::span<const u8> key, u64 payload);

    BucketTableConfig config_;
    u32 max_kicks_;
    hash::IndexGenerator indexer_;
    std::vector<Entry> mems_[2];
    u64 size_ = 0;
    sim::Histogram kicks_{1.0, 129};
    Xoshiro256 victim_rng_;  ///< seeded; random-walk victim selection.
    u64 lost_entries_ = 0;
};

}  // namespace flowcam::table
