#include "table/kirsch_one_move.hpp"

namespace flowcam::table {

KirschOneMoveTable::KirschOneMoveTable(const KirschConfig& config)
    : config_(config),
      indexer_(config.hash_kind, config.seed, config.buckets_per_level, config.levels),
      levels_(static_cast<std::size_t>(config.buckets_per_level) * config.levels),
      cam_(config.cam_capacity) {}

Entry& KirschOneMoveTable::slot(u32 level, std::span<const u8> key) {
    const u64 index = indexer_.index(level, key);
    return levels_[static_cast<std::size_t>(level) * config_.buckets_per_level + index];
}

std::optional<u64> KirschOneMoveTable::lookup(std::span<const u8> key) {
    ++stats_.lookups;
    for (u32 level = 0; level < config_.levels; ++level) {
        ++stats_.bucket_reads;
        const Entry& entry = slot(level, key);
        if (entry.matches(key)) {
            ++stats_.hits;
            return entry.payload;
        }
    }
    ++stats_.cam_searches;
    if (const auto hit = cam_.lookup(key)) {
        ++stats_.hits;
        return hit;
    }
    return std::nullopt;
}

Status KirschOneMoveTable::insert(std::span<const u8> key, u64 payload) {
    ++stats_.inserts;

    // Duplicate scan + find first empty level.
    i32 first_free = -1;
    for (u32 level = 0; level < config_.levels; ++level) {
        ++stats_.bucket_reads;
        Entry& entry = slot(level, key);
        if (entry.matches(key)) return Status(StatusCode::kAlreadyExists);
        if (!entry.valid && first_free < 0) first_free = static_cast<i32>(level);
    }
    ++stats_.cam_searches;
    if (cam_.peek(key)) return Status(StatusCode::kAlreadyExists);

    if (first_free >= 0) {
        slot(static_cast<u32>(first_free), key).assign(key, payload);
        ++stats_.bucket_writes;
        ++size_;
        return Status::ok();
    }

    // All levels occupied for this key: try ONE move — find a resident whose
    // own next-choice slot is free, relocate it, take its place.
    for (u32 level = 0; level < config_.levels; ++level) {
        Entry& resident = slot(level, key);
        const std::span<const u8> rkey{resident.key.data(), resident.key_length};
        for (u32 other = 0; other < config_.levels; ++other) {
            if (other == level) continue;
            ++stats_.bucket_reads;
            Entry& alternative = slot(other, rkey);
            if (!alternative.valid) {
                alternative = resident;
                resident.assign(key, payload);
                stats_.bucket_writes += 2;
                ++stats_.relocations;
                ++moves_;
                ++size_;
                return Status::ok();
            }
        }
    }

    // One move was not enough: overflow list (CAM).
    const Status status = cam_.insert(key, payload);
    if (!status.is_ok()) {
        ++stats_.insert_failures;
        return status;
    }
    ++stats_.cam_inserts;
    ++size_;
    return Status::ok();
}

Status KirschOneMoveTable::erase(std::span<const u8> key) {
    ++stats_.erases;
    for (u32 level = 0; level < config_.levels; ++level) {
        ++stats_.bucket_reads;
        Entry& entry = slot(level, key);
        if (entry.matches(key)) {
            entry.valid = false;
            ++stats_.bucket_writes;
            --size_;
            return Status::ok();
        }
    }
    ++stats_.cam_searches;
    if (cam_.erase(key).is_ok()) {
        --size_;
        return Status::ok();
    }
    return Status(StatusCode::kNotFound);
}

}  // namespace flowcam::table
