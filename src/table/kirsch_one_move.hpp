// Baseline 5: Kirsch & Mitzenmacher, "The Power of One Move: Hashing
// Schemes for Hardware" [9]. A multilevel hash table (d sub-tables probed in
// order) with a 64-entry CAM overflow list; on insertion the scheme is
// allowed to perform at most ONE move of an existing item to make room.
// The paper's related work notes "the additional move during insertion is
// impractical for high speed requirements" — the cost accounting here
// (bucket_writes and relocations per insert) quantifies that claim.
#pragma once

#include <vector>

#include "cam/cam.hpp"
#include "hash/index_gen.hpp"
#include "table/lookup_table.hpp"
#include "table/single_hash.hpp"

namespace flowcam::table {

struct KirschConfig {
    u64 buckets_per_level = 512;  ///< each level is a single-slot hash table.
    u32 levels = 4;
    std::size_t cam_capacity = 64;  ///< the paper's [9] overflow list size.
    hash::HashKind hash_kind = hash::HashKind::kH3;
    u64 seed = 7;
};

class KirschOneMoveTable final : public LookupTable {
  public:
    explicit KirschOneMoveTable(const KirschConfig& config);

    [[nodiscard]] std::optional<u64> lookup(std::span<const u8> key) override;
    Status insert(std::span<const u8> key, u64 payload) override;
    Status erase(std::span<const u8> key) override;

    [[nodiscard]] u64 size() const override { return size_; }
    [[nodiscard]] u64 capacity() const override {
        return static_cast<u64>(config_.buckets_per_level) * config_.levels +
               config_.cam_capacity;
    }
    [[nodiscard]] std::string name() const override { return "kirsch-one-move"; }

    [[nodiscard]] u64 moves_performed() const { return moves_; }
    [[nodiscard]] const cam::Cam& overflow_cam() const { return cam_; }

  private:
    [[nodiscard]] Entry& slot(u32 level, std::span<const u8> key);

    KirschConfig config_;
    hash::IndexGenerator indexer_;  ///< one path per level.
    std::vector<Entry> levels_;     ///< levels * buckets, single slot each.
    cam::Cam cam_;
    u64 size_ = 0;
    u64 moves_ = 0;
};

}  // namespace flowcam::table
