// Multi-path multi-hashing Hash-CAM — the paper's future-work extension:
// "A multi-path multi-hashing lookup could be considered to replace the
// current dual-hash scheme, for operating at a higher Ethernet link rate"
// (§VI).
//
// Generalizes the Fig. 1 structure to D independent memory sets, each with
// its own hash function and K-way buckets, plus one collision CAM. Search
// remains a short-circuit pipeline CAM -> Mem_1 -> ... -> Mem_D; insertion
// places into the least-loaded candidate bucket. More paths means more
// parallel first lookups per cycle in a timed design and lower overflow
// pressure at equal total capacity — quantified in bench_baseline_tables'
// companion test and the multi_path unit tests.
#pragma once

#include <vector>

#include "cam/cam.hpp"
#include "hash/index_gen.hpp"
#include "table/lookup_table.hpp"
#include "table/single_hash.hpp"

namespace flowcam::table {

struct MultiPathConfig {
    u32 paths = 4;           ///< D memory sets (2 = the paper's base scheme).
    u64 buckets_per_mem = 1024;
    u32 ways = 4;
    std::size_t cam_capacity = 256;
    hash::HashKind hash_kind = hash::HashKind::kH3;
    u64 seed = 11;
};

class MultiPathTable final : public LookupTable {
  public:
    explicit MultiPathTable(const MultiPathConfig& config);

    [[nodiscard]] std::optional<u64> lookup(std::span<const u8> key) override;
    Status insert(std::span<const u8> key, u64 payload) override;
    Status erase(std::span<const u8> key) override;

    [[nodiscard]] u64 size() const override { return size_; }
    [[nodiscard]] u64 capacity() const override {
        return static_cast<u64>(config_.buckets_per_mem) * config_.ways * config_.paths +
               config_.cam_capacity;
    }
    [[nodiscard]] std::string name() const override {
        return "multi-path-" + std::to_string(config_.paths);
    }

    /// Number of memory-set probes the last lookup needed (1..D); the
    /// timed benefit of more paths is that probes run on parallel channels.
    [[nodiscard]] u32 last_probe_count() const { return last_probes_; }
    [[nodiscard]] u64 cam_entries() const { return cam_.size(); }

  private:
    [[nodiscard]] std::span<Entry> bucket(u32 mem, u64 index) {
        return {mems_[mem].data() + index * config_.ways, config_.ways};
    }
    [[nodiscard]] u32 occupancy(u32 mem, u64 index) const;

    MultiPathConfig config_;
    hash::IndexGenerator indexer_;
    std::vector<std::vector<Entry>> mems_;
    cam::Cam cam_;
    u64 size_ = 0;
    u32 last_probes_ = 0;
};

}  // namespace flowcam::table
