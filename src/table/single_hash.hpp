// Baseline 1: conventional single-hash bucketized table. The scheme the
// paper's related work starts from — collisions beyond K ways in one bucket
// are unresolvable and the insert fails.
#pragma once

#include <vector>

#include "hash/index_gen.hpp"
#include "table/lookup_table.hpp"

namespace flowcam::table {

struct BucketTableConfig {
    u64 buckets = 1024;
    u32 ways = 4;  ///< K entries per bucket (one DDR burst's worth).
    hash::HashKind hash_kind = hash::HashKind::kH3;
    u64 seed = 1;
};

class SingleHashTable final : public LookupTable {
  public:
    explicit SingleHashTable(const BucketTableConfig& config);

    [[nodiscard]] std::optional<u64> lookup(std::span<const u8> key) override;
    Status insert(std::span<const u8> key, u64 payload) override;
    Status erase(std::span<const u8> key) override;

    [[nodiscard]] u64 size() const override { return size_; }
    [[nodiscard]] u64 capacity() const override {
        return static_cast<u64>(config_.buckets) * config_.ways;
    }
    [[nodiscard]] std::string name() const override { return "single-hash"; }

    /// Occupancy of the bucket `key` maps to (for distribution analysis).
    [[nodiscard]] u32 bucket_occupancy(std::span<const u8> key) const;

  private:
    [[nodiscard]] std::span<Entry> bucket(u64 index) {
        return {entries_.data() + index * config_.ways, config_.ways};
    }

    BucketTableConfig config_;
    hash::IndexGenerator indexer_;
    std::vector<Entry> entries_;
    u64 size_ = 0;
};

}  // namespace flowcam::table
