// Baseline 4: "Non-collision Hash Scheme Using Bloom Filter and CAM"
// (Li [8]). A single-hash bucket table backed by a CAM for colliding keys;
// a counting Bloom filter in front of the CAM records which keys were
// diverted there so most lookups skip the CAM search.
#pragma once

#include <memory>

#include "bloom/bloom.hpp"
#include "cam/cam.hpp"
#include "hash/index_gen.hpp"
#include "table/lookup_table.hpp"
#include "table/single_hash.hpp"

namespace flowcam::table {

struct BloomCamConfig {
    BucketTableConfig table;
    std::size_t cam_capacity = 256;
    u64 bloom_bits = 1 << 14;
    u32 bloom_hashes = 4;
};

class BloomCamTable final : public LookupTable {
  public:
    explicit BloomCamTable(const BloomCamConfig& config);

    [[nodiscard]] std::optional<u64> lookup(std::span<const u8> key) override;
    Status insert(std::span<const u8> key, u64 payload) override;
    Status erase(std::span<const u8> key) override;

    [[nodiscard]] u64 size() const override { return size_; }
    [[nodiscard]] u64 capacity() const override {
        return static_cast<u64>(config_.table.buckets) * config_.table.ways +
               config_.cam_capacity;
    }
    [[nodiscard]] std::string name() const override { return "bloom+cam"; }

    /// Lookups where the Bloom filter wrongly pointed at the CAM.
    [[nodiscard]] u64 bloom_false_positives() const { return bloom_false_positives_; }
    [[nodiscard]] const cam::Cam& overflow_cam() const { return cam_; }

  private:
    [[nodiscard]] std::span<Entry> bucket(u64 index) {
        return {entries_.data() + index * config_.table.ways, config_.table.ways};
    }

    BloomCamConfig config_;
    hash::IndexGenerator indexer_;
    std::vector<Entry> entries_;
    cam::Cam cam_;
    bloom::CountingBloom diverted_;
    u64 size_ = 0;
    u64 bloom_false_positives_ = 0;
};

}  // namespace flowcam::table
