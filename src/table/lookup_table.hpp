// Common interface for all flow-lookup structures, so the baseline
// comparison bench (ablation A5) drives the paper's Hash-CAM scheme and the
// related-work schemes ([6]-[9]) through identical key streams.
//
// Cost accounting: every implementation reports how many bucket reads,
// bucket writes, entry relocations and CAM operations each call generated.
// On the FPGA those are the expensive operations (DDR bursts and CAM
// searches), so they are the fair comparison metric for a functional model.
#pragma once

#include <algorithm>
#include <array>
#include <optional>
#include <span>
#include <string>

#include "common/result.hpp"
#include "common/types.hpp"

namespace flowcam::table {

struct AccessStats {
    u64 lookups = 0;
    u64 hits = 0;
    u64 inserts = 0;
    u64 insert_failures = 0;
    u64 erases = 0;
    u64 bucket_reads = 0;    ///< DDR burst reads a hardware version would do.
    u64 bucket_writes = 0;   ///< DDR burst writes.
    u64 relocations = 0;     ///< entries moved (cuckoo kicks, one-move).
    u64 cam_searches = 0;
    u64 cam_inserts = 0;

    [[nodiscard]] double reads_per_lookup() const {
        return lookups == 0 ? 0.0 : static_cast<double>(bucket_reads) / static_cast<double>(lookups);
    }
};

class LookupTable {
  public:
    virtual ~LookupTable() = default;

    /// Find the payload stored under `key`.
    [[nodiscard]] virtual std::optional<u64> lookup(std::span<const u8> key) = 0;

    /// Insert `key` -> `payload`. kAlreadyExists / kCapacityExceeded on
    /// the expected failure modes.
    virtual Status insert(std::span<const u8> key, u64 payload) = 0;

    /// Remove `key`.
    virtual Status erase(std::span<const u8> key) = 0;

    [[nodiscard]] virtual u64 size() const = 0;
    [[nodiscard]] virtual u64 capacity() const = 0;
    [[nodiscard]] virtual std::string name() const = 0;

    [[nodiscard]] const AccessStats& stats() const { return stats_; }
    void reset_stats() { stats_ = AccessStats{}; }

    [[nodiscard]] double load_factor() const {
        return capacity() == 0 ? 0.0 : static_cast<double>(size()) / static_cast<double>(capacity());
    }

  protected:
    AccessStats stats_;
};

/// A stored entry: the full key (the paper stores original tuples and
/// compares them exactly — no fingerprint false positives) plus payload.
struct Entry {
    static constexpr std::size_t kKeyCapacity = 40;
    std::array<u8, kKeyCapacity> key{};
    u8 key_length = 0;
    u64 payload = 0;
    bool valid = false;

    [[nodiscard]] bool matches(std::span<const u8> candidate) const {
        return valid && key_length == candidate.size() &&
               std::equal(candidate.begin(), candidate.end(), key.begin());
    }

    void assign(std::span<const u8> candidate, u64 value) {
        key_length = static_cast<u8>(std::min(candidate.size(), kKeyCapacity));
        std::copy_n(candidate.begin(), key_length, key.begin());
        payload = value;
        valid = true;
    }
};

}  // namespace flowcam::table
