#include "table/two_choice.hpp"

namespace flowcam::table {

TwoChoiceTable::TwoChoiceTable(const BucketTableConfig& config)
    : config_(config), indexer_(config.hash_kind, config.seed, config.buckets, /*paths=*/2) {
    for (auto& mem : mems_) {
        mem.assign(static_cast<std::size_t>(config.buckets) * config.ways, Entry{});
    }
}

u32 TwoChoiceTable::occupancy(u32 mem, u64 index) const {
    u32 count = 0;
    for (u32 way = 0; way < config_.ways; ++way) {
        if (mems_[mem][index * config_.ways + way].valid) ++count;
    }
    return count;
}

std::optional<u64> TwoChoiceTable::lookup(std::span<const u8> key) {
    ++stats_.lookups;
    for (u32 mem = 0; mem < 2; ++mem) {
        ++stats_.bucket_reads;
        for (const Entry& entry : bucket(mem, indexer_.index(mem, key))) {
            if (entry.matches(key)) {
                ++stats_.hits;
                return entry.payload;
            }
        }
    }
    return std::nullopt;
}

Status TwoChoiceTable::insert(std::span<const u8> key, u64 payload) {
    ++stats_.inserts;
    const u64 idx0 = indexer_.index(0, key);
    const u64 idx1 = indexer_.index(1, key);
    stats_.bucket_reads += 2;

    // Duplicate check across both candidate buckets first.
    for (u32 mem = 0; mem < 2; ++mem) {
        for (const Entry& entry : bucket(mem, mem == 0 ? idx0 : idx1)) {
            if (entry.matches(key)) return Status(StatusCode::kAlreadyExists);
        }
    }

    // Less-loaded choice, ties to Mem1 (deterministic hardware arbiter).
    const u32 occ0 = occupancy(0, idx0);
    const u32 occ1 = occupancy(1, idx1);
    const u32 mem = occ1 < occ0 ? 1 : 0;
    const u64 index = mem == 0 ? idx0 : idx1;
    for (Entry& entry : bucket(mem, index)) {
        if (!entry.valid) {
            entry.assign(key, payload);
            ++stats_.bucket_writes;
            ++size_;
            return Status::ok();
        }
    }
    // Chosen bucket full means both full (we picked the emptier one).
    ++stats_.insert_failures;
    return Status(StatusCode::kCapacityExceeded, "both buckets full");
}

Status TwoChoiceTable::erase(std::span<const u8> key) {
    ++stats_.erases;
    for (u32 mem = 0; mem < 2; ++mem) {
        ++stats_.bucket_reads;
        for (Entry& entry : bucket(mem, indexer_.index(mem, key))) {
            if (entry.matches(key)) {
                entry.valid = false;
                ++stats_.bucket_writes;
                --size_;
                return Status::ok();
            }
        }
    }
    return Status(StatusCode::kNotFound);
}

}  // namespace flowcam::table
