// Baseline 2: two-choice ("balanced allocations", Azar et al. [6]) —
// the multi-choice hashing the paper's related work credits with bloom-level
// speed at a lower collision rate. Insert goes to the less-loaded of the two
// candidate buckets; lookup probes both.
#pragma once

#include <vector>

#include "hash/index_gen.hpp"
#include "table/lookup_table.hpp"
#include "table/single_hash.hpp"

namespace flowcam::table {

class TwoChoiceTable final : public LookupTable {
  public:
    explicit TwoChoiceTable(const BucketTableConfig& config);

    [[nodiscard]] std::optional<u64> lookup(std::span<const u8> key) override;
    Status insert(std::span<const u8> key, u64 payload) override;
    Status erase(std::span<const u8> key) override;

    [[nodiscard]] u64 size() const override { return size_; }
    [[nodiscard]] u64 capacity() const override {
        return static_cast<u64>(config_.buckets) * config_.ways * 2;
    }
    [[nodiscard]] std::string name() const override { return "two-choice"; }

  private:
    /// mem = 0 or 1 (the two independent halves, as in the paper's Fig. 1).
    [[nodiscard]] std::span<Entry> bucket(u32 mem, u64 index) {
        return {mems_[mem].data() + index * config_.ways, config_.ways};
    }
    [[nodiscard]] u32 occupancy(u32 mem, u64 index) const;

    BucketTableConfig config_;
    hash::IndexGenerator indexer_;
    std::vector<Entry> mems_[2];
    u64 size_ = 0;
};

}  // namespace flowcam::table
