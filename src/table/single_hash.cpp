#include "table/single_hash.hpp"

namespace flowcam::table {

SingleHashTable::SingleHashTable(const BucketTableConfig& config)
    : config_(config),
      indexer_(config.hash_kind, config.seed, config.buckets, /*paths=*/1),
      entries_(static_cast<std::size_t>(config.buckets) * config.ways) {}

std::optional<u64> SingleHashTable::lookup(std::span<const u8> key) {
    ++stats_.lookups;
    ++stats_.bucket_reads;
    for (const Entry& entry : bucket(indexer_.index(0, key))) {
        if (entry.matches(key)) {
            ++stats_.hits;
            return entry.payload;
        }
    }
    return std::nullopt;
}

Status SingleHashTable::insert(std::span<const u8> key, u64 payload) {
    ++stats_.inserts;
    ++stats_.bucket_reads;
    auto slots = bucket(indexer_.index(0, key));
    Entry* free_slot = nullptr;
    for (Entry& entry : slots) {
        if (entry.matches(key)) return Status(StatusCode::kAlreadyExists);
        if (!entry.valid && free_slot == nullptr) free_slot = &entry;
    }
    if (free_slot == nullptr) {
        ++stats_.insert_failures;
        return Status(StatusCode::kCapacityExceeded, "bucket overflow");
    }
    free_slot->assign(key, payload);
    ++stats_.bucket_writes;
    ++size_;
    return Status::ok();
}

Status SingleHashTable::erase(std::span<const u8> key) {
    ++stats_.erases;
    ++stats_.bucket_reads;
    for (Entry& entry : bucket(indexer_.index(0, key))) {
        if (entry.matches(key)) {
            entry.valid = false;
            ++stats_.bucket_writes;
            --size_;
            return Status::ok();
        }
    }
    return Status(StatusCode::kNotFound);
}

u32 SingleHashTable::bucket_occupancy(std::span<const u8> key) const {
    const u64 index = indexer_.index(0, key);
    u32 count = 0;
    for (u32 way = 0; way < config_.ways; ++way) {
        if (entries_[index * config_.ways + way].valid) ++count;
    }
    return count;
}

}  // namespace flowcam::table
