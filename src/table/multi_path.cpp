#include "table/multi_path.hpp"

#include <limits>

namespace flowcam::table {

MultiPathTable::MultiPathTable(const MultiPathConfig& config)
    : config_(config),
      indexer_(config.hash_kind, config.seed, config.buckets_per_mem, config.paths),
      mems_(config.paths),
      cam_(config.cam_capacity) {
    for (auto& mem : mems_) {
        mem.assign(static_cast<std::size_t>(config.buckets_per_mem) * config.ways, Entry{});
    }
}

u32 MultiPathTable::occupancy(u32 mem, u64 index) const {
    u32 count = 0;
    for (u32 way = 0; way < config_.ways; ++way) {
        if (mems_[mem][index * config_.ways + way].valid) ++count;
    }
    return count;
}

std::optional<u64> MultiPathTable::lookup(std::span<const u8> key) {
    ++stats_.lookups;
    last_probes_ = 0;
    // Stage 1: CAM.
    ++stats_.cam_searches;
    if (const auto hit = cam_.lookup(key)) {
        ++stats_.hits;
        return hit;
    }
    // Stages 2..D+1: memory sets in order, short-circuit on match.
    for (u32 mem = 0; mem < config_.paths; ++mem) {
        ++stats_.bucket_reads;
        ++last_probes_;
        for (const Entry& entry : bucket(mem, indexer_.index(mem, key))) {
            if (entry.matches(key)) {
                ++stats_.hits;
                return entry.payload;
            }
        }
    }
    return std::nullopt;
}

Status MultiPathTable::insert(std::span<const u8> key, u64 payload) {
    ++stats_.inserts;
    // Duplicate scan across CAM and all candidate buckets.
    if (cam_.peek(key)) return Status(StatusCode::kAlreadyExists);
    std::vector<u64> indices(config_.paths);
    for (u32 mem = 0; mem < config_.paths; ++mem) {
        indices[mem] = indexer_.index(mem, key);
        ++stats_.bucket_reads;
        for (const Entry& entry : bucket(mem, indices[mem])) {
            if (entry.matches(key)) return Status(StatusCode::kAlreadyExists);
        }
    }

    // Least-loaded choice among the D candidate buckets (ties to the
    // lowest path index, a deterministic hardware arbiter).
    u32 best_mem = 0;
    u32 best_occupancy = std::numeric_limits<u32>::max();
    for (u32 mem = 0; mem < config_.paths; ++mem) {
        const u32 occ = occupancy(mem, indices[mem]);
        if (occ < best_occupancy) {
            best_occupancy = occ;
            best_mem = mem;
        }
    }
    if (best_occupancy < config_.ways) {
        for (Entry& entry : bucket(best_mem, indices[best_mem])) {
            if (!entry.valid) {
                entry.assign(key, payload);
                ++stats_.bucket_writes;
                ++size_;
                return Status::ok();
            }
        }
    }

    // Every candidate bucket full: the collision CAM absorbs it.
    ++stats_.cam_searches;
    const Status status = cam_.insert(key, payload);
    if (!status.is_ok()) {
        ++stats_.insert_failures;
        return status;
    }
    ++stats_.cam_inserts;
    ++size_;
    return Status::ok();
}

Status MultiPathTable::erase(std::span<const u8> key) {
    ++stats_.erases;
    for (u32 mem = 0; mem < config_.paths; ++mem) {
        ++stats_.bucket_reads;
        for (Entry& entry : bucket(mem, indexer_.index(mem, key))) {
            if (entry.matches(key)) {
                entry.valid = false;
                ++stats_.bucket_writes;
                --size_;
                return Status::ok();
            }
        }
    }
    ++stats_.cam_searches;
    if (cam_.erase(key).is_ok()) {
        --size_;
        return Status::ok();
    }
    return Status(StatusCode::kNotFound);
}

}  // namespace flowcam::table
