#include "table/cuckoo.hpp"

namespace flowcam::table {

CuckooTable::CuckooTable(const BucketTableConfig& config, u32 max_kicks)
    : config_(config),
      max_kicks_(max_kicks),
      indexer_(config.hash_kind, config.seed, config.buckets, /*paths=*/2),
      victim_rng_(config.seed ^ 0xC0C0'0000ull) {
    for (auto& mem : mems_) {
        mem.assign(static_cast<std::size_t>(config.buckets) * config.ways, Entry{});
    }
}

std::optional<u64> CuckooTable::lookup(std::span<const u8> key) {
    ++stats_.lookups;
    for (u32 mem = 0; mem < 2; ++mem) {
        ++stats_.bucket_reads;
        for (const Entry& entry : bucket(mem, indexer_.index(mem, key))) {
            if (entry.matches(key)) {
                ++stats_.hits;
                return entry.payload;
            }
        }
    }
    return std::nullopt;
}

bool CuckooTable::place(u32 mem, u64 index, std::span<const u8> key, u64 payload) {
    for (Entry& entry : bucket(mem, index)) {
        if (!entry.valid) {
            entry.assign(key, payload);
            ++stats_.bucket_writes;
            return true;
        }
    }
    return false;
}

Status CuckooTable::insert(std::span<const u8> key, u64 payload) {
    ++stats_.inserts;
    const u64 idx0 = indexer_.index(0, key);
    const u64 idx1 = indexer_.index(1, key);
    stats_.bucket_reads += 2;
    for (u32 mem = 0; mem < 2; ++mem) {
        for (const Entry& entry : bucket(mem, mem == 0 ? idx0 : idx1)) {
            if (entry.matches(key)) return Status(StatusCode::kAlreadyExists);
        }
    }

    // Direct placement, preferring Mem1.
    if (place(0, idx0, key, payload) || place(1, idx1, key, payload)) {
        kicks_.add(0.0);
        ++size_;
        return Status::ok();
    }

    // Kick chain: displace a deterministic victim and re-place it at its
    // alternate location, repeating up to max_kicks_ times.
    Entry wanderer;
    wanderer.assign(key, payload);
    u32 mem = 0;
    u64 index = idx0;
    for (u32 kick = 0; kick < max_kicks_; ++kick) {
        // Random-walk victim choice: a deterministic rotor can livelock on
        // short displacement cycles; a (seeded) random pick escapes them.
        auto slots = bucket(mem, index);
        Entry& victim = slots[victim_rng_.bounded(config_.ways)];
        std::swap(wanderer, victim);
        ++stats_.bucket_writes;
        ++stats_.relocations;

        // The displaced entry moves to its bucket in the *other* memory.
        const std::span<const u8> wkey{wanderer.key.data(), wanderer.key_length};
        mem ^= 1u;
        index = indexer_.index(mem, wkey);
        ++stats_.bucket_reads;
        if (place(mem, index, wkey, wanderer.payload)) {
            kicks_.add(static_cast<double>(kick + 1));
            ++size_;
            return Status::ok();
        }
    }

    // Chain exhausted. The new key landed somewhere along the chain, and the
    // final wanderer (a displaced resident) has no home — a real design
    // would rehash the table here. We drop that resident and account the
    // loss explicitly; tests assert this never fires below the safe load
    // factor. Net size is unchanged: +1 new key, -1 dropped resident.
    ++stats_.insert_failures;
    ++lost_entries_;
    kicks_.add(static_cast<double>(max_kicks_));
    return Status(StatusCode::kCapacityExceeded, "cuckoo kick chain exhausted");
}

Status CuckooTable::erase(std::span<const u8> key) {
    ++stats_.erases;
    for (u32 mem = 0; mem < 2; ++mem) {
        ++stats_.bucket_reads;
        for (Entry& entry : bucket(mem, indexer_.index(mem, key))) {
            if (entry.matches(key)) {
                entry.valid = false;
                ++stats_.bucket_writes;
                --size_;
                return Status::ok();
            }
        }
    }
    return Status(StatusCode::kNotFound);
}

}  // namespace flowcam::table
