#include "hash/tabulation.hpp"

#include <bit>

#include "common/rng.hpp"

namespace flowcam::hash {

TabulationHash::TabulationHash(u64 seed, std::size_t max_key_bytes)
    : tables_(max_key_bytes) {
    Xoshiro256 rng(seed ^ 0x7ab17a7e5eedull);
    for (auto& table : tables_) {
        for (auto& entry : table) entry = rng();
    }
}

u64 TabulationHash::digest(std::span<const u8> bytes) const {
    u64 h = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        const auto pos = i % tables_.size();
        const u64 entry = tables_[pos][bytes[i]];
        // Wrap-around keys mix in the lap count so byte 0 and byte 64 of a
        // long key do not cancel under XOR.
        const auto lap = static_cast<int>((i / tables_.size()) % 63);
        h ^= std::rotl(entry, lap);
    }
    return h;
}

}  // namespace flowcam::hash
