// MurmurHash3 x64/128 (Austin Appleby, public domain), truncated to the low
// 64 bits of the 128-bit digest.
#pragma once

#include <span>
#include <string>

#include "common/types.hpp"
#include "hash/hash_function.hpp"

namespace flowcam::hash {

struct Murmur3Digest {
    u64 lo;
    u64 hi;
};

[[nodiscard]] Murmur3Digest murmur3_x64_128(std::span<const u8> bytes, u64 seed);

class Murmur3Hash final : public HashFunction {
  public:
    explicit Murmur3Hash(u64 seed) : seed_(seed) {}

    [[nodiscard]] u64 digest(std::span<const u8> bytes) const override {
        return murmur3_x64_128(bytes, seed_).lo;
    }

    [[nodiscard]] std::string name() const override { return "murmur3"; }

  private:
    u64 seed_;
};

}  // namespace flowcam::hash
