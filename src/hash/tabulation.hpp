// Simple tabulation hashing: per-byte-position random tables XORed together.
// 3-independent and remarkably strong in practice (Pătraşcu & Thorup); in
// hardware it is one block-RAM read per key byte plus an XOR tree, which is
// why it is a natural fit for FPGA hash blocks alongside H3.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "hash/hash_function.hpp"

namespace flowcam::hash {

class TabulationHash final : public HashFunction {
  public:
    /// `max_key_bytes` positions are supported; longer keys wrap around with
    /// a position-dependent rotation so no byte is silently ignored.
    explicit TabulationHash(u64 seed, std::size_t max_key_bytes = 64);

    [[nodiscard]] u64 digest(std::span<const u8> bytes) const override;

    [[nodiscard]] std::string name() const override { return "tabulation"; }

  private:
    std::vector<std::array<u64, 256>> tables_;
};

}  // namespace flowcam::hash
