// Common interface for the hash blocks used to index the Flow LUT.
//
// The paper's scheme hashes an n-tuple packet descriptor with "two
// pre-selected hash functions" (§III-B). We provide several families with
// hardware-realistic cost profiles: CRC (LFSR-based), H3 (XOR matrix — the
// classic FPGA hash block), Jenkins lookup3, Murmur3 and tabulation hashing.
// All are deterministic functions of (seed, bytes).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "common/types.hpp"

namespace flowcam::hash {

class HashFunction {
  public:
    virtual ~HashFunction() = default;

    /// 64-bit digest of the byte string.
    [[nodiscard]] virtual u64 digest(std::span<const u8> bytes) const = 0;

    /// Digest `count` keys at once: out[i] = digest(keys[i]). The default is
    /// a scalar loop; families with a vectorizable kernel (H3's matrix-row
    /// XORs) override it. Must be bit-identical to per-key digest() calls —
    /// the batched dispatch mode relies on that to keep results byte-equal
    /// to scalar dispatch.
    virtual void digest_multi(const std::span<const u8>* keys, std::size_t count,
                              u64* out) const {
        for (std::size_t i = 0; i < count; ++i) out[i] = digest(keys[i]);
    }

    [[nodiscard]] virtual std::string name() const = 0;
};

enum class HashKind : u8 {
    kCrc32c,
    kLookup3,
    kMurmur3,
    kTabulation,
    kH3,
};

[[nodiscard]] const char* to_string(HashKind kind);

/// Factory. `seed` differentiates independent instances of the same kind
/// (e.g. Hash1/Hash2 in the paper's two-choice table).
[[nodiscard]] std::unique_ptr<HashFunction> make_hash(HashKind kind, u64 seed);

}  // namespace flowcam::hash
