#include "hash/h3.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace flowcam::hash {

H3Hash::H3Hash(u64 seed, std::size_t max_key_bytes)
    : rows_(max_key_bytes * 256), positions_(max_key_bytes) {
    Xoshiro256 rng(seed ^ 0x48334833c3a5c3a5ull);
    // Draw one random 64-bit column per key *bit*, then precompute the XOR of
    // all selected columns for each possible byte value (28 entries per byte
    // position) so digest() is one table read + XOR per key byte.
    for (std::size_t position = 0; position < positions_; ++position) {
        u64 columns[8];
        for (auto& column : columns) column = rng();
        u64* row = rows_.data() + position * 256;
        for (u32 value = 0; value < 256; ++value) {
            u64 acc = 0;
            for (int bit = 0; bit < 8; ++bit) {
                if ((value >> bit) & 1u) acc ^= columns[bit];
            }
            row[value] = acc;
        }
    }
}

u64 H3Hash::digest(std::span<const u8> bytes) const {
    u64 h = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        h ^= row(i)[bytes[i]];
    }
    return h;
}

#if defined(FLOWCAM_SIMD_ENABLED) && (defined(__GNUC__) || defined(__clang__))

namespace {
/// Four 64-bit XOR accumulators in one vector register (AVX2 when the
/// target has it; the compiler lowers to paired 128-bit ops otherwise).
using u64x4 = u64 __attribute__((vector_size(32)));
}  // namespace

void H3Hash::digest_multi(const std::span<const u8>* keys, std::size_t count, u64* out) const {
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const std::span<const u8>* group = keys + i;
        const std::size_t common = std::min(std::min(group[0].size(), group[1].size()),
                                            std::min(group[2].size(), group[3].size()));
        u64x4 acc = {0, 0, 0, 0};
        // Lockstep over the shared prefix: the four table loads per byte
        // position are independent, so they pipeline, and the XOR runs as
        // one vector op.
        for (std::size_t j = 0; j < common; ++j) {
            const u64* r = row(j);
            const u64x4 rows = {r[group[0][j]], r[group[1][j]], r[group[2][j]],
                                r[group[3][j]]};
            acc ^= rows;
        }
        // Per-lane tails for keys longer than the shared prefix.
        for (int lane = 0; lane < 4; ++lane) {
            u64 h = acc[lane];
            for (std::size_t j = common; j < group[lane].size(); ++j) {
                h ^= row(j)[group[lane][j]];
            }
            out[i + lane] = h;
        }
    }
    for (; i < count; ++i) out[i] = digest(keys[i]);
}

#else  // scalar fallback: four independent accumulators for ILP.

void H3Hash::digest_multi(const std::span<const u8>* keys, std::size_t count, u64* out) const {
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const std::span<const u8>* group = keys + i;
        const std::size_t common = std::min(std::min(group[0].size(), group[1].size()),
                                            std::min(group[2].size(), group[3].size()));
        u64 acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
        for (std::size_t j = 0; j < common; ++j) {
            const u64* r = row(j);
            acc0 ^= r[group[0][j]];
            acc1 ^= r[group[1][j]];
            acc2 ^= r[group[2][j]];
            acc3 ^= r[group[3][j]];
        }
        u64 accs[4] = {acc0, acc1, acc2, acc3};
        for (int lane = 0; lane < 4; ++lane) {
            u64 h = accs[lane];
            for (std::size_t j = common; j < group[lane].size(); ++j) {
                h ^= row(j)[group[lane][j]];
            }
            out[i + lane] = h;
        }
    }
    for (; i < count; ++i) out[i] = digest(keys[i]);
}

#endif

}  // namespace flowcam::hash
