#include "hash/h3.hpp"

#include "common/rng.hpp"

namespace flowcam::hash {

H3Hash::H3Hash(u64 seed, std::size_t max_key_bytes) : rows_(max_key_bytes) {
    Xoshiro256 rng(seed ^ 0x48334833c3a5c3a5ull);
    // Draw one random 64-bit column per key *bit*, then precompute the XOR of
    // all selected columns for each possible byte value (28 entries per byte
    // position) so digest() is one table read + XOR per key byte.
    for (auto& row : rows_) {
        u64 columns[8];
        for (auto& column : columns) column = rng();
        row.resize(256);
        for (u32 value = 0; value < 256; ++value) {
            u64 acc = 0;
            for (int bit = 0; bit < 8; ++bit) {
                if ((value >> bit) & 1u) acc ^= columns[bit];
            }
            row[value] = acc;
        }
    }
}

u64 H3Hash::digest(std::span<const u8> bytes) const {
    u64 h = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        h ^= rows_[i % rows_.size()][bytes[i]];
    }
    return h;
}

}  // namespace flowcam::hash
