#include "hash/lookup3.hpp"

namespace flowcam::hash {
namespace {

constexpr u32 rot(u32 x, int k) { return (x << k) | (x >> (32 - k)); }

struct Triple {
    u32 a, b, c;
};

void mix(Triple& t) {
    t.a -= t.c; t.a ^= rot(t.c, 4); t.c += t.b;
    t.b -= t.a; t.b ^= rot(t.a, 6); t.a += t.c;
    t.c -= t.b; t.c ^= rot(t.b, 8); t.b += t.a;
    t.a -= t.c; t.a ^= rot(t.c, 16); t.c += t.b;
    t.b -= t.a; t.b ^= rot(t.a, 19); t.a += t.c;
    t.c -= t.b; t.c ^= rot(t.b, 4); t.b += t.a;
}

void final_mix(Triple& t) {
    t.c ^= t.b; t.c -= rot(t.b, 14);
    t.a ^= t.c; t.a -= rot(t.c, 11);
    t.b ^= t.a; t.b -= rot(t.a, 25);
    t.c ^= t.b; t.c -= rot(t.b, 16);
    t.a ^= t.c; t.a -= rot(t.c, 4);
    t.b ^= t.a; t.b -= rot(t.a, 14);
    t.c ^= t.b; t.c -= rot(t.b, 24);
}

u32 read_u32_le(const u8* p, std::size_t available) {
    u32 value = 0;
    for (std::size_t i = 0; i < 4 && i < available; ++i) {
        value |= static_cast<u32>(p[i]) << (8 * i);
    }
    return value;
}

}  // namespace

u64 lookup3(std::span<const u8> bytes, u32 seed_pc, u32 seed_pb) {
    const auto length = static_cast<u32>(bytes.size());
    Triple t{0xdeadbeefu + length + seed_pc, 0xdeadbeefu + length + seed_pc,
             0xdeadbeefu + length + seed_pc};
    t.c += seed_pb;

    const u8* p = bytes.data();
    std::size_t remaining = bytes.size();
    while (remaining > 12) {
        t.a += read_u32_le(p, remaining);
        t.b += read_u32_le(p + 4, remaining - 4);
        t.c += read_u32_le(p + 8, remaining - 8);
        mix(t);
        p += 12;
        remaining -= 12;
    }

    if (remaining > 0) {
        t.a += read_u32_le(p, remaining);
        if (remaining > 4) t.b += read_u32_le(p + 4, remaining - 4);
        if (remaining > 8) t.c += read_u32_le(p + 8, remaining - 8);
        final_mix(t);
    }
    return (static_cast<u64>(t.c) << 32) | t.b;
}

}  // namespace flowcam::hash
