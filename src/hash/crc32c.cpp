#include "hash/crc32c.hpp"

#include <array>

namespace flowcam::hash {
namespace {

constexpr u32 kPolyReflected = 0x82F63B78u;

constexpr std::array<u32, 256> make_table() {
    std::array<u32, 256> table{};
    for (u32 byte = 0; byte < 256; ++byte) {
        u32 crc = byte;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
        }
        table[byte] = crc;
    }
    return table;
}

constexpr std::array<u32, 256> kTable = make_table();

}  // namespace

u32 crc32c(std::span<const u8> bytes, u32 seed) {
    u32 crc = ~seed;
    for (const u8 byte : bytes) {
        crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
    }
    return ~crc;
}

}  // namespace flowcam::hash
