// The "Index Generation" block of the paper's Fig. 1: hashes an n-tuple key
// with two (or more) pre-selected hash functions and reduces each digest to a
// bucket index for its memory set.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/bitops.hpp"
#include "common/types.hpp"
#include "hash/hash_function.hpp"

namespace flowcam::hash {

class IndexGenerator {
  public:
    /// `buckets_per_mem` must be a power of two (a hardware index is a bit
    /// slice). `paths` is 2 for the paper's dual-hash scheme; >2 models the
    /// multi-path extension sketched in the paper's conclusion.
    IndexGenerator(HashKind kind, u64 seed, u64 buckets_per_mem, u32 paths = 2)
        : buckets_(buckets_per_mem), index_bits_(log2_pow2(ceil_pow2(buckets_per_mem))) {
        for (u32 path = 0; path < paths; ++path) {
            // Seeds are decorrelated per path; same kind for all paths, as in
            // a real duplicated hardware hash block.
            hashes_.push_back(make_hash(kind, seed + 0x9e3779b97f4a7c15ull * (path + 1)));
        }
    }

    [[nodiscard]] u32 paths() const { return static_cast<u32>(hashes_.size()); }
    [[nodiscard]] u64 buckets_per_mem() const { return buckets_; }

    /// Full 64-bit digest on `path` (used by tables that also store a
    /// verification fingerprint).
    [[nodiscard]] u64 digest(u32 path, std::span<const u8> key) const {
        return hashes_.at(path)->digest(key);
    }

    /// Batched digests on `path`: out[i] = digest(path, keys[i]), through
    /// the family's multi-key kernel (bit-identical to per-key digest()).
    void digest_multi(u32 path, const std::span<const u8>* keys, std::size_t count,
                      u64* out) const {
        hashes_.at(path)->digest_multi(keys, count, out);
    }

    /// Bucket index on `path`: XOR-fold of the digest down to index width,
    /// then clamp to the bucket count (identity when count is a power of 2).
    [[nodiscard]] u64 index(u32 path, std::span<const u8> key) const {
        return index_of_digest(digest(path, key));
    }

    /// Same reduction for a digest the caller already computed — lets the
    /// hot offer path hash each key exactly once per hash function.
    [[nodiscard]] u64 index_of_digest(u64 digest_value) const {
        return xor_fold(digest_value, index_bits_) % buckets_;
    }

    /// All per-path indices at once, as the hardware computes them in
    /// parallel on packet arrival.
    [[nodiscard]] std::vector<u64> indices(std::span<const u8> key) const {
        std::vector<u64> out;
        out.reserve(hashes_.size());
        for (u32 path = 0; path < hashes_.size(); ++path) out.push_back(index(path, key));
        return out;
    }

  private:
    std::vector<std::unique_ptr<HashFunction>> hashes_;
    u64 buckets_;
    u32 index_bits_;
};

}  // namespace flowcam::hash
