// Bob Jenkins' lookup3 (hashlittle2 variant) producing a 64-bit digest.
// A classic software/NPU flow hash; included as one of the selectable
// "pre-selected hash functions" of the paper's scheme.
#pragma once

#include <span>
#include <string>

#include "common/types.hpp"
#include "hash/hash_function.hpp"

namespace flowcam::hash {

/// hashlittle2: returns (pc<<32)|pb after mixing with the two 32-bit seeds.
[[nodiscard]] u64 lookup3(std::span<const u8> bytes, u32 seed_pc, u32 seed_pb);

class Lookup3Hash final : public HashFunction {
  public:
    explicit Lookup3Hash(u64 seed) : seed_(seed) {}

    [[nodiscard]] u64 digest(std::span<const u8> bytes) const override {
        return lookup3(bytes, static_cast<u32>(seed_), static_cast<u32>(seed_ >> 32));
    }

    [[nodiscard]] std::string name() const override { return "lookup3"; }

  private:
    u64 seed_;
};

}  // namespace flowcam::hash
