#include "hash/hash_function.hpp"

#include "hash/crc32c.hpp"
#include "hash/h3.hpp"
#include "hash/lookup3.hpp"
#include "hash/murmur3.hpp"
#include "hash/tabulation.hpp"

namespace flowcam::hash {

const char* to_string(HashKind kind) {
    switch (kind) {
        case HashKind::kCrc32c: return "crc32c";
        case HashKind::kLookup3: return "lookup3";
        case HashKind::kMurmur3: return "murmur3";
        case HashKind::kTabulation: return "tabulation";
        case HashKind::kH3: return "h3";
    }
    return "unknown";
}

std::unique_ptr<HashFunction> make_hash(HashKind kind, u64 seed) {
    switch (kind) {
        case HashKind::kCrc32c: return std::make_unique<Crc32cHash>(seed);
        case HashKind::kLookup3: return std::make_unique<Lookup3Hash>(seed);
        case HashKind::kMurmur3: return std::make_unique<Murmur3Hash>(seed);
        case HashKind::kTabulation: return std::make_unique<TabulationHash>(seed);
        case HashKind::kH3: return std::make_unique<H3Hash>(seed);
    }
    return nullptr;
}

}  // namespace flowcam::hash
