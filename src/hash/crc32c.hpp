// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// CRCs are the canonical FPGA hash: an LFSR over the key bits. CRC-32C in
// particular has good dispersion on structured network headers, which is why
// it is also used by iSCSI and ext4. Table-driven (slice-by-1) software
// implementation; hardware equivalent is a parallel XOR tree.
#pragma once

#include <span>
#include <string>

#include "common/types.hpp"
#include "hash/hash_function.hpp"

namespace flowcam::hash {

/// Raw streaming CRC-32C over bytes, init/final XOR 0xFFFFFFFF.
[[nodiscard]] u32 crc32c(std::span<const u8> bytes, u32 seed = 0);

class Crc32cHash final : public HashFunction {
  public:
    explicit Crc32cHash(u64 seed) : seed_(seed) {}

    [[nodiscard]] u64 digest(std::span<const u8> bytes) const override {
        // Two passes with decorrelated seeds give a 64-bit digest; the upper
        // half uses a rotated seed so digest(x) high/low words differ.
        const u32 lo = crc32c(bytes, static_cast<u32>(seed_));
        const u32 hi = crc32c(bytes, static_cast<u32>(seed_ >> 32) ^ lo ^ 0x9e3779b9u);
        return (static_cast<u64>(hi) << 32) | lo;
    }

    [[nodiscard]] std::string name() const override { return "crc32c"; }

  private:
    u64 seed_;
};

}  // namespace flowcam::hash
