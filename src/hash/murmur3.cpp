#include "hash/murmur3.hpp"

namespace flowcam::hash {
namespace {

constexpr u64 rotl64(u64 x, int r) { return (x << r) | (x >> (64 - r)); }

constexpr u64 fmix64(u64 k) {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ull;
    k ^= k >> 33;
    return k;
}

u64 read_u64_le(const u8* p) {
    u64 value = 0;
    for (int i = 0; i < 8; ++i) value |= static_cast<u64>(p[i]) << (8 * i);
    return value;
}

}  // namespace

Murmur3Digest murmur3_x64_128(std::span<const u8> bytes, u64 seed) {
    const std::size_t nblocks = bytes.size() / 16;
    u64 h1 = seed;
    u64 h2 = seed;
    constexpr u64 c1 = 0x87c37b91114253d5ull;
    constexpr u64 c2 = 0x4cf5ad432745937full;

    const u8* data = bytes.data();
    for (std::size_t i = 0; i < nblocks; ++i) {
        u64 k1 = read_u64_le(data + i * 16);
        u64 k2 = read_u64_le(data + i * 16 + 8);

        k1 *= c1; k1 = rotl64(k1, 31); k1 *= c2; h1 ^= k1;
        h1 = rotl64(h1, 27); h1 += h2; h1 = h1 * 5 + 0x52dce729;
        k2 *= c2; k2 = rotl64(k2, 33); k2 *= c1; h2 ^= k2;
        h2 = rotl64(h2, 31); h2 += h1; h2 = h2 * 5 + 0x38495ab5;
    }

    const u8* tail = data + nblocks * 16;
    const std::size_t tail_len = bytes.size() & 15u;
    u64 k1 = 0;
    u64 k2 = 0;
    for (std::size_t i = tail_len; i > 8; --i) k2 |= static_cast<u64>(tail[i - 1]) << ((i - 9) * 8);
    if (tail_len > 8) {
        k2 *= c2; k2 = rotl64(k2, 33); k2 *= c1; h2 ^= k2;
    }
    for (std::size_t i = std::min<std::size_t>(tail_len, 8); i > 0; --i) {
        k1 |= static_cast<u64>(tail[i - 1]) << ((i - 1) * 8);
    }
    if (tail_len > 0) {
        k1 *= c1; k1 = rotl64(k1, 31); k1 *= c2; h1 ^= k1;
    }

    h1 ^= static_cast<u64>(bytes.size());
    h2 ^= static_cast<u64>(bytes.size());
    h1 += h2;
    h2 += h1;
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 += h2;
    h2 += h1;
    return Murmur3Digest{h1, h2};
}

}  // namespace flowcam::hash
