// H3 hash family (Carter & Wegman): h(x) = Q·x over GF(2), where Q is a
// random bit matrix. Each output bit is the XOR (parity) of a random subset
// of key bits — exactly one LUT/XOR tree per output bit in an FPGA, making H3
// the archetypal hardware hash and the most faithful model of the "Index
// Generation" block in the paper's Fig. 1.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "hash/hash_function.hpp"

namespace flowcam::hash {

class H3Hash final : public HashFunction {
  public:
    /// `max_key_bytes` bounds the matrix width; longer keys are pre-folded.
    explicit H3Hash(u64 seed, std::size_t max_key_bytes = 64);

    [[nodiscard]] u64 digest(std::span<const u8> bytes) const override;

    /// Multi-key kernel: XORs matrix rows across up to four keys per
    /// iteration (GCC/Clang vector extension when FLOWCAM_SIMD_ENABLED,
    /// four independent scalar accumulators otherwise). Bit-identical to
    /// per-key digest() — XOR is associative and commutative, so row order
    /// within a key never changes the parity.
    void digest_multi(const std::span<const u8>* keys, std::size_t count,
                      u64* out) const override;

    [[nodiscard]] std::string name() const override { return "h3"; }

  private:
    [[nodiscard]] const u64* row(std::size_t byte_position) const {
        return rows_.data() + (byte_position % positions_) * 256;
    }

    // rows_[position * 256 + byte_value] = XOR of the 8 per-bit matrix
    // columns selected by that byte value — a precomputed byte-granular view
    // of Q, flattened to one slab so the multi-key kernel strides it.
    std::vector<u64> rows_;
    std::size_t positions_;
};

}  // namespace flowcam::hash
