// H3 hash family (Carter & Wegman): h(x) = Q·x over GF(2), where Q is a
// random bit matrix. Each output bit is the XOR (parity) of a random subset
// of key bits — exactly one LUT/XOR tree per output bit in an FPGA, making H3
// the archetypal hardware hash and the most faithful model of the "Index
// Generation" block in the paper's Fig. 1.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "hash/hash_function.hpp"

namespace flowcam::hash {

class H3Hash final : public HashFunction {
  public:
    /// `max_key_bytes` bounds the matrix width; longer keys are pre-folded.
    explicit H3Hash(u64 seed, std::size_t max_key_bytes = 64);

    [[nodiscard]] u64 digest(std::span<const u8> bytes) const override;

    [[nodiscard]] std::string name() const override { return "h3"; }

  private:
    // rows_[byte_position][byte_value] = XOR of the 8 per-bit matrix columns
    // selected by that byte value — a precomputed byte-granular view of Q.
    std::vector<std::vector<u64>> rows_;
};

}  // namespace flowcam::hash
