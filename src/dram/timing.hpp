// JEDEC-style DDR3 timing parameter sets.
//
// All values are in memory-clock cycles (nCK) unless suffixed _ns. The
// figure-3 experiment of the paper is computed from Micron's DDR3-1066
// (-187E) data sheet; the prototype runs its DDR3 at an 800 MHz I/O clock
// (DDR3-1600). Both speed grades are provided, plus DDR3-1333 for sweeps.
#pragma once

#include <string>

#include "common/types.hpp"

namespace flowcam::dram {

struct DramTimings {
    std::string grade;   ///< human-readable speed-grade name.
    double tck_ns;       ///< memory clock period (command clock).
    u32 burst_length;    ///< BL, transfers per access (8 for DDR3).
    u32 cl;              ///< CAS (read) latency, RL = CL.
    u32 cwl;             ///< CAS write latency, WL = CWL.
    u32 trcd;            ///< ACT -> RD/WR to same bank.
    u32 trp;             ///< PRE -> ACT to same bank.
    u32 tras;            ///< ACT -> PRE to same bank.
    u32 trc;             ///< ACT -> ACT to same bank (tRAS + tRP).
    u32 tccd;            ///< RD->RD / WR->WR command spacing (4 for DDR3).
    u32 trtp;            ///< RD -> PRE.
    u32 twr;             ///< end of write data -> PRE (write recovery).
    u32 twtr;            ///< end of write data -> RD command.
    u32 trrd;            ///< ACT -> ACT to different banks.
    u32 tfaw;            ///< rolling window for four ACTs.
    u32 trefi;           ///< average REF interval.
    u32 trfc;            ///< REF -> next valid command.

    /// Data-bus cycles one burst occupies: BL transfers over a DDR bus.
    [[nodiscard]] constexpr u32 burst_cycles() const { return burst_length / 2; }

    /// Minimum RD command -> WR command spacing (same rank):
    /// RL + tCCD + 2 - WL (JEDEC DDR3 spec clause on read-to-write turnaround).
    [[nodiscard]] constexpr u32 read_to_write() const { return cl + tccd + 2 - cwl; }

    /// Minimum WR command -> RD command spacing (same rank):
    /// WL + BL/2 + tWTR.
    [[nodiscard]] constexpr u32 write_to_read() const { return cwl + burst_cycles() + twtr; }

    /// Memory-clock frequency in Hz.
    [[nodiscard]] constexpr double clock_hz() const { return 1e9 / tck_ns; }

    /// Peak data-bus bandwidth in bytes/s for a bus of `bus_bytes` width.
    [[nodiscard]] constexpr double peak_bandwidth_bytes(double bus_bytes) const {
        return clock_hz() * 2.0 * bus_bytes;  // DDR: two transfers per clock.
    }
};

/// Micron DDR3-1066 (-187E), 1 Gb part (the paper's Fig. 3 reference [12]).
/// tCK = 1.875 ns. CL-tRCD-tRP = 7-7-7. tRFC for the 1 Gb density = 110 ns.
[[nodiscard]] DramTimings ddr3_1066e();

/// DDR3-1333 (-15E), CL9, for parameter sweeps.
[[nodiscard]] DramTimings ddr3_1333();

/// DDR3-1600 (-125), CL11: the prototype's 800 MHz I/O clock grade.
[[nodiscard]] DramTimings ddr3_1600();

/// Look up by name ("DDR3-1066", "DDR3-1333", "DDR3-1600").
[[nodiscard]] DramTimings timings_by_name(const std::string& name);

}  // namespace flowcam::dram
