#include "dram/checker.hpp"

#include <algorithm>
#include <string>

namespace flowcam::dram {
namespace {

/// Advance a cached bound: bounds are running maxima of per-event terms, and
/// event timestamps are monotone, so this is equivalent to recomputing the
/// constraint formula over the latest events.
void raise(Cycle& bound, Cycle term) { bound = std::max(bound, term); }

}  // namespace

TimingChecker::TimingChecker(const DramTimings& timings, const Geometry& geometry)
    : timings_(timings), geometry_(geometry), banks_(geometry.banks) {}

Cycle TimingChecker::earliest_issue(const Command& cmd, Cycle now) const {
    switch (cmd.type) {
        case CommandType::kActivate:
            return std::max(act_bank_earliest(cmd.bank, now), act_rank_earliest(now));
        case CommandType::kPrecharge: return pre_bank_earliest(cmd.bank, now);
        case CommandType::kRead:
            return std::max(read_rank_earliest(now), rcd_earliest(cmd.bank, now));
        case CommandType::kWrite:
            return std::max(write_rank_earliest(now), rcd_earliest(cmd.bank, now));
        case CommandType::kRefresh: return refresh_earliest(now);
    }
    return now;
}

Status TimingChecker::record(const Command& cmd, Cycle cycle) {
    const auto fail = [&](const char* constraint) {
        return Status(StatusCode::kFailedPrecondition,
                      std::string(to_string(cmd.type)) + " at cycle " + std::to_string(cycle) +
                          " violates " + constraint);
    };

    if (cmd.type != CommandType::kRefresh && cmd.bank >= banks_.size()) {
        return Status(StatusCode::kInvalidArgument, "bank out of range");
    }

    switch (cmd.type) {
        case CommandType::kActivate: {
            BankState& b = banks_[cmd.bank];
            if (b.active) return fail("bank-already-active (missing PRE)");
            if (cycle < earliest_issue(cmd, cycle)) return fail("tRP/tRC/tRRD/tFAW/tRFC");
            b.active = true;
            ++active_bank_count_;
            b.row = cmd.row;
            push_act(cycle);
            raise(b.rcd_bound, cycle + timings_.trcd);
            raise(b.act_bound, cycle + timings_.trc);
            raise(b.pre_bound, cycle + timings_.tras);
            raise(act_rank_bound_, cycle + timings_.trrd);
            // tFAW: at most 4 ACTs in any tFAW window — after this ACT, the
            // next one is gated by the now-4th-previous ACT.
            if (act_count() >= 4) {
                raise(act_rank_bound_, act_at(act_count() - 4) + timings_.tfaw);
            }
            return Status::ok();
        }
        case CommandType::kPrecharge: {
            BankState& b = banks_[cmd.bank];
            if (!b.active) return Status::ok();  // PRE on idle bank is a legal NOP.
            if (cycle < pre_bank_earliest(cmd.bank, cycle)) return fail("tRAS/tRTP/tWR");
            b.active = false;
            --active_bank_count_;
            raise(b.act_bound, cycle + timings_.trp);
            raise(refresh_bound_, cycle + timings_.trp);
            return Status::ok();
        }
        case CommandType::kRead: {
            BankState& b = banks_[cmd.bank];
            if (!b.active) return fail("read-on-idle-bank");
            if (b.row != cmd.row) return fail("read-row-mismatch");
            if (cycle < earliest_issue(cmd, cycle)) return fail("tRCD/tCCD/WTR");
            const Cycle data_start = cycle + timings_.cl;
            if (data_start < dq_end_) return fail("DQ-bus-overlap");
            raise(b.pre_bound, cycle + timings_.trtp);
            raise(read_bound_, cycle + timings_.tccd);
            raise(write_bound_, cycle + timings_.read_to_write());
            dq_busy_ += timings_.burst_cycles();
            dq_end_ = data_start + timings_.burst_cycles();
            return Status::ok();
        }
        case CommandType::kWrite: {
            BankState& b = banks_[cmd.bank];
            if (!b.active) return fail("write-on-idle-bank");
            if (b.row != cmd.row) return fail("write-row-mismatch");
            if (cycle < earliest_issue(cmd, cycle)) return fail("tRCD/tCCD/RTW");
            const Cycle data_start = cycle + timings_.cwl;
            if (data_start < dq_end_) return fail("DQ-bus-overlap");
            // Write recovery: tWR counts from the end of write data.
            raise(b.pre_bound, data_start + timings_.burst_cycles() + timings_.twr);
            raise(write_bound_, cycle + timings_.tccd);
            raise(read_bound_, cycle + timings_.write_to_read());
            dq_busy_ += timings_.burst_cycles();
            dq_end_ = data_start + timings_.burst_cycles();
            return Status::ok();
        }
        case CommandType::kRefresh: {
            if (active_bank_count_ != 0) return fail("refresh-with-open-bank");
            if (cycle < refresh_earliest(cycle)) return fail("tRFC/tRP");
            raise(read_bound_, cycle + timings_.trfc);
            raise(write_bound_, cycle + timings_.trfc);
            raise(act_rank_bound_, cycle + timings_.trfc);
            raise(refresh_bound_, cycle + timings_.trfc);
            return Status::ok();
        }
    }
    return Status(StatusCode::kInvalidArgument, "unknown command");
}

}  // namespace flowcam::dram
