#include "dram/checker.hpp"

#include <algorithm>
#include <string>

namespace flowcam::dram {
namespace {

/// max(now, base + delta) guarded by a "has this ever happened" flag so the
/// cold-start state does not fabricate constraints.
Cycle after(bool ever, Cycle base, u64 delta, Cycle now) {
    return ever ? std::max(now, base + delta) : now;
}

}  // namespace

TimingChecker::TimingChecker(const DramTimings& timings, const Geometry& geometry)
    : timings_(timings), geometry_(geometry), banks_(geometry.banks) {}

Cycle TimingChecker::act_bank_earliest(u32 bank, Cycle now) const {
    const BankState& b = banks_[bank];
    Cycle t = now;
    t = after(b.ever_pre, b.last_pre, timings_.trp, t);
    t = after(b.ever_act, b.last_act, timings_.trc, t);
    return t;
}

Cycle TimingChecker::act_rank_earliest(Cycle now) const {
    Cycle t = now;
    // tRRD against the most recent ACT on any bank.
    if (act_count() > 0) {
        t = std::max(t, act_at(act_count() - 1) + timings_.trrd);
    }
    // tFAW: at most 4 ACTs in any tFAW window -> the 4th-previous ACT gates.
    if (act_count() >= 4) {
        t = std::max(t, act_at(act_count() - 4) + timings_.tfaw);
    }
    // tRFC after refresh.
    t = after(ever_refresh_, last_refresh_, timings_.trfc, t);
    return t;
}

Cycle TimingChecker::act_earliest(u32 bank, Cycle now) const {
    return std::max(act_bank_earliest(bank, now), act_rank_earliest(now));
}

Cycle TimingChecker::rcd_earliest(u32 bank, Cycle now) const {
    const BankState& b = banks_[bank];
    return after(b.ever_act, b.last_act, timings_.trcd, now);
}

Cycle TimingChecker::pre_earliest(u32 bank, Cycle now) const {
    const BankState& b = banks_[bank];
    Cycle t = now;
    t = after(b.ever_act, b.last_act, timings_.tras, t);
    t = after(b.ever_read, b.last_read, timings_.trtp, t);
    // Write recovery: tWR counts from the end of write data.
    if (b.ever_write) {
        const Cycle data_end = b.last_write + timings_.cwl + timings_.burst_cycles();
        t = std::max(t, data_end + timings_.twr);
    }
    return t;
}

Cycle TimingChecker::read_earliest(Cycle now) const {
    Cycle t = now;
    t = after(ever_read_, last_read_cmd_, timings_.tccd, t);
    t = after(ever_write_, last_write_cmd_, timings_.write_to_read(), t);
    t = after(ever_refresh_, last_refresh_, timings_.trfc, t);
    return t;
}

Cycle TimingChecker::write_earliest(Cycle now) const {
    Cycle t = now;
    t = after(ever_write_, last_write_cmd_, timings_.tccd, t);
    t = after(ever_read_, last_read_cmd_, timings_.read_to_write(), t);
    t = after(ever_refresh_, last_refresh_, timings_.trfc, t);
    return t;
}

Cycle TimingChecker::refresh_earliest(Cycle now) const {
    Cycle t = now;
    t = after(ever_refresh_, last_refresh_, timings_.trfc, t);
    // All banks must be precharged; the caller is responsible for issuing
    // PREs, but the refresh cannot start before those precharges complete.
    for (const BankState& b : banks_) {
        if (b.ever_pre) t = std::max(t, b.last_pre + timings_.trp);
    }
    return t;
}

Cycle TimingChecker::earliest_issue(const Command& cmd, Cycle now) const {
    switch (cmd.type) {
        case CommandType::kActivate: return act_earliest(cmd.bank, now);
        case CommandType::kPrecharge: return pre_earliest(cmd.bank, now);
        case CommandType::kRead: {
            const BankState& b = banks_[cmd.bank];
            Cycle t = read_earliest(now);
            t = after(b.ever_act, b.last_act, timings_.trcd, t);
            return t;
        }
        case CommandType::kWrite: {
            const BankState& b = banks_[cmd.bank];
            Cycle t = write_earliest(now);
            t = after(b.ever_act, b.last_act, timings_.trcd, t);
            return t;
        }
        case CommandType::kRefresh: return refresh_earliest(now);
    }
    return now;
}

Status TimingChecker::record(const Command& cmd, Cycle cycle) {
    const auto fail = [&](const char* constraint) {
        return Status(StatusCode::kFailedPrecondition,
                      std::string(to_string(cmd.type)) + " at cycle " + std::to_string(cycle) +
                          " violates " + constraint);
    };

    if (cmd.type != CommandType::kRefresh && cmd.bank >= banks_.size()) {
        return Status(StatusCode::kInvalidArgument, "bank out of range");
    }

    switch (cmd.type) {
        case CommandType::kActivate: {
            BankState& b = banks_[cmd.bank];
            if (b.active) return fail("bank-already-active (missing PRE)");
            if (cycle < act_earliest(cmd.bank, cycle)) return fail("tRP/tRC/tRRD/tFAW/tRFC");
            b.active = true;
            ++active_bank_count_;
            b.row = cmd.row;
            b.last_act = cycle;
            b.ever_act = true;
            push_act(cycle);
            return Status::ok();
        }
        case CommandType::kPrecharge: {
            BankState& b = banks_[cmd.bank];
            if (!b.active) return Status::ok();  // PRE on idle bank is a legal NOP.
            if (cycle < pre_earliest(cmd.bank, cycle)) return fail("tRAS/tRTP/tWR");
            b.active = false;
            --active_bank_count_;
            b.last_pre = cycle;
            b.ever_pre = true;
            return Status::ok();
        }
        case CommandType::kRead: {
            BankState& b = banks_[cmd.bank];
            if (!b.active) return fail("read-on-idle-bank");
            if (b.row != cmd.row) return fail("read-row-mismatch");
            if (cycle < earliest_issue(cmd, cycle)) return fail("tRCD/tCCD/WTR");
            const Cycle data_start = cycle + timings_.cl;
            if (data_start < dq_end_) return fail("DQ-bus-overlap");
            b.last_read = cycle;
            b.ever_read = true;
            last_read_cmd_ = cycle;
            ever_read_ = true;
            dq_busy_ += timings_.burst_cycles();
            dq_end_ = data_start + timings_.burst_cycles();
            return Status::ok();
        }
        case CommandType::kWrite: {
            BankState& b = banks_[cmd.bank];
            if (!b.active) return fail("write-on-idle-bank");
            if (b.row != cmd.row) return fail("write-row-mismatch");
            if (cycle < earliest_issue(cmd, cycle)) return fail("tRCD/tCCD/RTW");
            const Cycle data_start = cycle + timings_.cwl;
            if (data_start < dq_end_) return fail("DQ-bus-overlap");
            b.last_write = cycle;
            b.ever_write = true;
            last_write_cmd_ = cycle;
            ever_write_ = true;
            dq_busy_ += timings_.burst_cycles();
            dq_end_ = data_start + timings_.burst_cycles();
            return Status::ok();
        }
        case CommandType::kRefresh: {
            for (const BankState& b : banks_) {
                if (b.active) return fail("refresh-with-open-bank");
            }
            if (cycle < refresh_earliest(cycle)) return fail("tRFC/tRP");
            last_refresh_ = cycle;
            ever_refresh_ = true;
            return Status::ok();
        }
    }
    return Status(StatusCode::kInvalidArgument, "unknown command");
}

}  // namespace flowcam::dram
