// DDR3 memory controller model (the "DDR3 Controller" block of the paper's
// Fig. 4 — in the prototype an Altera UniPhy quarter-rate IP).
//
// Scheduling policy is FR-FCFS with explicit read/write phase grouping:
//  * row hits issue before row misses (first-ready),
//  * within a class, oldest first (FCFS),
//  * writes are buffered and drained in batches (high/low watermark or age
//    timeout) to amortize the DQ bus turnaround — the mechanism the paper's
//    Fig. 3 quantifies and BWr_Gen exploits from above,
//  * all-bank refresh every tREFI with precharge-all, unless disabled for
//    microbenchmarks.
//
// The scheduler is *indexed*: instead of re-scanning the whole request queue
// on every evaluated cycle, pending requests are threaded onto per-bank
// intrusive FIFO lists (reads and writes separately) plus a per-bank
// open-row "hit list", all maintained incrementally on enqueue / issue /
// completion. Bank bitmasks (banks-with-candidates, banks-whose-open-row-is-
// wanted, banks-active) let each FR-FCFS pass visit only the banks that can
// actually contribute a candidate, and a monotone per-request sequence
// number recovers the global FCFS order by comparing at most `banks` list
// heads. The legacy linear-scan scheduler is retained as a reference
// implementation behind SchedulerMode: the command stream, stats, and stall
// computation of the indexed scheduler are cycle-identical to it (enforced
// continuously in kCrossCheck mode and by the scheduler-equivalence tests).
//
// Every issued command is validated by the TimingChecker; a violation is a
// simulation bug and aborts via Status surfaced to the caller.
#pragma once

#include <array>
#include <cassert>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/ring_queue.hpp"
#include "common/types.hpp"
#include "dram/checker.hpp"
#include "dram/command.hpp"
#include "dram/device.hpp"
#include "dram/timing.hpp"
#include "obs/obs.hpp"
#include "sim/ticker.hpp"

namespace flowcam::dram {

struct MemRequest {
    u64 id = 0;
    bool is_write = false;
    u64 byte_address = 0;  ///< burst-aligned.
    u32 bursts = 1;        ///< consecutive BL bursts; must stay in one row.
    std::vector<u8> write_data;
};

struct MemResponse {
    u64 id = 0;
    bool is_write = false;
    std::vector<u8> data;     ///< read payload (empty for writes).
    Cycle accepted_at = 0;    ///< memory cycle the request entered the queue.
    Cycle completed_at = 0;   ///< memory cycle the last data beat transferred.
};

/// Which FR-FCFS decision procedure drives the controller.
enum class SchedulerMode : u8 {
    kIndexed,    ///< per-bank indexed scheduler (production).
    kReference,  ///< legacy linear queue scan (oracle for equivalence tests).
    kCrossCheck, ///< run both, assert identical decisions every evaluated
                 ///< cycle (Debug equivalence harness; reference decides).
};

struct ControllerConfig {
    std::size_t read_queue_depth = 32;
    std::size_t write_queue_depth = 32;
    /// Enter write-drain when the write queue reaches this level...
    std::size_t write_drain_high = 16;
    /// ...and leave it at this level.
    std::size_t write_drain_low = 2;
    /// Drain writes anyway when the oldest write is older than this (cycles).
    Cycle write_age_limit = 512;
    bool refresh_enabled = true;
    MapPolicy map_policy = MapPolicy::kBankLow;
    /// Bank-rotation granule (0 = one burst). The Flow LUT sets this to its
    /// bucket size so a multi-burst bucket stays in one row of one bank.
    u64 interleave_bytes = 0;
    SchedulerMode scheduler = SchedulerMode::kIndexed;
};

struct ControllerStats {
    u64 reads_accepted = 0;
    u64 writes_accepted = 0;
    u64 reads_completed = 0;
    u64 writes_completed = 0;
    u64 activates = 0;
    u64 precharges = 0;
    u64 refreshes = 0;
    u64 row_hits = 0;       ///< RD/WR issued to an already-open row.
    u64 row_misses = 0;     ///< required ACT (bank idle).
    u64 row_conflicts = 0;  ///< required PRE of another row first.
    u64 rw_turnarounds = 0; ///< read<->write phase switches.
    obs::Histogram read_latency;  ///< accept -> data end, memory-clock cycles.
};

/// One issued command with its issue cycle — the unit of the optional trace
/// sink the equivalence tests compare across scheduler modes.
struct TracedCommand {
    Command cmd;
    Cycle at = 0;
    friend bool operator==(const TracedCommand&, const TracedCommand&) = default;
};

class DramController final : public sim::Ticker {
  public:
    DramController(std::string name, const DramTimings& timings, const Geometry& geometry,
                   const ControllerConfig& config);

    /// Offer a request. Returns false when the corresponding queue is full
    /// (caller must retry — hardware "ready" deasserted).
    [[nodiscard]] bool enqueue(MemRequest request);

    /// Fault-injection hook: when set, every enqueue first consults the veto;
    /// a vetoed request is rejected exactly as if the queue were full (the
    /// caller sees "ready" deasserted and retries). Simulates queue-full
    /// bursts the workload alone can't reach.
    void set_enqueue_veto(std::function<bool(const MemRequest&)> veto) {
        enqueue_veto_ = std::move(veto);
    }

    /// Pop one completion if available.
    [[nodiscard]] std::optional<MemResponse> pop_response();

    /// Response/write payload buffer pool: the consumer hands buffers back
    /// via recycle_buffer() once decoded, and take_buffer() reuses them for
    /// later requests — the steady-state data path then never allocates.
    [[nodiscard]] std::vector<u8> take_buffer() {
        if (spare_buffers_.empty()) return {};
        std::vector<u8> buffer = std::move(spare_buffers_.back());
        spare_buffers_.pop_back();
        buffer.clear();
        return buffer;
    }
    void recycle_buffer(std::vector<u8>&& buffer) {
        if (spare_buffers_.size() < 512) spare_buffers_.push_back(std::move(buffer));
    }

    [[nodiscard]] bool idle() const {
        return queues_[0].size == 0 && queues_[1].size == 0 && in_flight_.empty() &&
               responses_.empty();
    }
    /// Memory cycle before which tick() is a proven no-op (see stall_until_);
    /// feeds the system-level batched fast-forward.
    [[nodiscard]] Cycle stalled_until() const { return stall_until_; }
    [[nodiscard]] std::size_t read_queue_size() const { return queues_[0].size; }
    [[nodiscard]] std::size_t write_queue_size() const { return queues_[1].size; }

    void tick(Cycle now) override;
    [[nodiscard]] std::string name() const override { return name_; }

    [[nodiscard]] const ControllerStats& stats() const { return stats_; }
    [[nodiscard]] const TimingChecker& checker() const { return checker_; }
    [[nodiscard]] DramDevice& device() { return device_; }
    [[nodiscard]] const AddressMap& address_map() const { return map_; }

    /// DQ-bus utilization since cycle 0 (busy data cycles / elapsed cycles).
    [[nodiscard]] double dq_utilization(Cycle now) const {
        return now == 0 ? 0.0
                        : static_cast<double>(checker_.dq_busy_cycles()) / static_cast<double>(now);
    }

    /// Last Status from an internal protocol check; non-ok indicates a
    /// scheduler bug (tests assert this stays ok). In kCrossCheck mode this
    /// also reports any indexed-vs-reference decision divergence.
    [[nodiscard]] const Status& protocol_status() const { return protocol_status_; }

    /// Test hook: when set, every issued command is appended to `sink`
    /// (equivalence suites diff the streams of two controllers).
    void set_command_trace(std::vector<TracedCommand>* sink) { trace_ = sink; }

    /// Attach the flight recorder: per-pass pick counters, command-issue
    /// latency histograms, and one trace event per issued command (ACT/PRE/
    /// RD/WR/REF with the bank as arg) on a track named after this
    /// controller. Passive — scheduling decisions are unaffected.
    void set_recorder(obs::Recorder* recorder);

  private:
    struct Pending {
        MemRequest request;
        BurstAddress location;   ///< of the first burst.
        u32 issued_bursts = 0;   ///< RD/WR commands already sent.
        Cycle accepted_at = 0;
        u64 seq = 0;             ///< global arrival order (FCFS tie-break).
        bool classified = false; ///< row hit/miss/conflict already counted.
    };

    static constexpr u16 kNil = 0xFFFF;

    /// Intrusive links threading each pool slot onto (a) its queue's global
    /// FIFO list, (b) its bank's FIFO list, and (c) its bank's open-row hit
    /// list. Kept in a dense array parallel to `slots_` so the scheduler's
    /// pointer chases stay inside a few cache lines.
    struct SlotLinks {
        u16 q_prev = kNil, q_next = kNil;
        u16 bank_prev = kNil, bank_next = kNil;
        u16 hit_next = kNil;  ///< hit lists pop at the head only.
    };

    /// Per-direction (reads / writes) index state. Invariants:
    ///  * the global list is the arrival (FCFS) order of queued requests;
    ///  * bank lists are the global order restricted to one bank;
    ///  * the hit list of bank b is its bank list restricted to requests
    ///    targeting b's open row (rebuilt on ACT, cleared on PRE);
    ///  * pending_mask bit b <=> bank list b nonempty; hit_mask bit b <=>
    ///    hit list b nonempty.
    struct QueueState {
        u16 head = kNil, tail = kNil;
        u32 size = 0;
        u64 pending_mask = 0;
        u64 hit_mask = 0;
        std::vector<u16> bank_head, bank_tail;
        std::vector<u16> hit_head, hit_tail;
    };

    struct InFlight {
        MemResponse response;
        Cycle ready_at = 0;
    };

    /// One scheduling decision of a pass pipeline — computed side-effect-free
    /// by decide_indexed()/decide_reference(), then applied once. The split
    /// is what makes kCrossCheck possible.
    struct Decision {
        bool issue = false;
        u8 pass = 0;  ///< 1 = RD/WR (hit), 2 = ACT (miss), 3 = PRE (conflict).
        Command cmd{};
        u16 slot = kNil;
        friend bool operator==(const Decision& a, const Decision& b) {
            return a.issue == b.issue && a.pass == b.pass && a.slot == b.slot &&
                   a.cmd == b.cmd;
        }
    };

    void issue(const Command& cmd, Cycle now);
    bool try_refresh(Cycle now);
    [[nodiscard]] bool drain_writes_now(Cycle now) const;
    /// Pick and issue at most one command for the given queue; returns true
    /// if a command was issued.
    bool schedule_queue(bool is_write, Cycle now);
    [[nodiscard]] Decision decide_indexed(bool is_write, Cycle now, Cycle& next) const;
    [[nodiscard]] Decision decide_reference(bool is_write, Cycle now, Cycle& next) const;
    void apply(const Decision& decision, bool is_write, Cycle now);
    void complete(Pending&& pending, Cycle data_end, Cycle now);

    // ---- Index maintenance (see QueueState invariants) ----
    void link_request(u32 q, u32 bank, u16 slot);
    void unlink_request(u32 q, u32 bank, u16 slot);
    void hit_push_back(QueueState& qs, u32 bank, u16 slot);
    /// Rebuild bank `bank`'s hit lists (both queues) and wanted count for
    /// newly opened `row` — the only O(bank occupancy) maintenance step,
    /// paid once per ACT instead of once per evaluated cycle.
    void rebuild_hits(u32 bank, u32 row);
    void clear_hits(u32 bank);

    [[nodiscard]] u16 alloc_slot(Pending&& pending) {
        if (free_slots_.empty()) {
            slots_.push_back(std::move(pending));
            links_.emplace_back();
            return static_cast<u16>(slots_.size() - 1);
        }
        const u16 slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot] = std::move(pending);
        links_[slot] = SlotLinks{};
        return slot;
    }
    void free_slot(u16 slot) { free_slots_.push_back(slot); }

    /// Event-skip bookkeeping: a cycle at which the controller may next be
    /// able to act. Collected while a tick fails to issue anything; tick()
    /// early-returns until the earliest such cycle. Exact, not heuristic:
    /// every candidate is the precise earliest_issue of a considered command
    /// (or a response maturity / refresh deadline / write-age threshold), so
    /// the command stream is cycle-identical to the unskipped simulation.
    void note_candidate(Cycle cycle) { next_event_ = std::min(next_event_, cycle); }
    static void note(Cycle& next, Cycle cycle) { next = std::min(next, cycle); }
    static constexpr Cycle kNever = ~Cycle{0};

    /// Earliest cycle at which a queued request could possibly issue any
    /// command, given current bank/rank state — used by enqueue() to tighten
    /// (not reset) an active stall: an arriving request can only add its own
    /// opportunity, never accelerate anyone else's.
    [[nodiscard]] Cycle entry_candidate(u32 bank, u32 row, bool is_write, Cycle now) const;

    std::string name_;
    DramTimings timings_;
    ControllerConfig config_;
    TimingChecker checker_;
    DramDevice device_;
    AddressMap map_;

    /// Pending-request pool: cold Pendings in `slots_`, hot intrusive links
    /// in `links_`, free list in `free_slots_`. Queue membership lives
    /// entirely in `queues_` + the links (no dense per-queue array to erase
    /// from). Depth is bounded (<= 32 each side).
    std::vector<Pending> slots_;
    std::vector<SlotLinks> links_;
    std::vector<u16> free_slots_;
    std::array<QueueState, 2> queues_;  ///< [0] reads, [1] writes.
    std::vector<InFlight> in_flight_;
    Cycle in_flight_min_ = kNever;  ///< earliest ready_at in in_flight_ (cached).
    common::RingQueue<MemResponse> responses_;
    std::vector<std::vector<u8>> spare_buffers_;

    bool write_drain_mode_ = false;
    bool refresh_pending_ = false;
    Cycle next_refresh_ = 0;
    /// tick() skips try_refresh() entirely before this cycle: while no
    /// refresh is pending the gate sits at next_refresh_, and while one is
    /// pending it sits at 0 so the retry logic runs every evaluated tick.
    /// try_refresh() maintains the gate at each return path, so the command
    /// stream and stall calendar are identical to calling it unconditionally
    /// (profiled at 2.2M calls for 1.2M issues before the gate).
    Cycle refresh_gate_ = 0;
    bool last_was_write_ = false;
    Cycle now_ = 0;  ///< last ticked memory cycle (for enqueue timestamps).
    Cycle stall_until_ = 0;   ///< tick() is a provable no-op before this cycle.
    Cycle next_event_ = kNever;  ///< candidate accumulator for the current tick.
    u64 next_seq_ = 0;

    /// Per-bank incremental candidate state, all sized/masked from
    /// Geometry::banks (<= 64):
    ///  * wanted_count_[b]: queued requests (either queue) targeting b's
    ///    open row — pass 3 must not close a row these still want;
    ///  * wanted_mask_: banks with wanted_count_ > 0;
    ///  * active_mask_: banks holding an open row (mirrors the checker).
    std::vector<u32> wanted_count_;
    u64 wanted_mask_ = 0;
    u64 active_mask_ = 0;

    std::vector<TracedCommand>* trace_ = nullptr;
    std::function<bool(const MemRequest&)> enqueue_veto_;

    /// Flight recorder (nullable; every event site is one predictable branch
    /// when detached). The scrap cell/histogram back the pointers when a
    /// registration collides, so bump sites never need a second null check.
    obs::Recorder* obs_ = nullptr;
    u16 obs_track_ = 0;
    u64* pass_picks_[3] = {nullptr, nullptr, nullptr};  ///< FR-FCFS pass 1/2/3.
    obs::Histogram* rd_issue_lat_ = nullptr;  ///< accept -> first RD, sim-ns.
    obs::Histogram* wr_issue_lat_ = nullptr;  ///< accept -> first WR, sim-ns.
    u64 obs_scrap_cell_ = 0;
    obs::Histogram obs_scrap_hist_;

    ControllerStats stats_;
    Status protocol_status_;
};

}  // namespace flowcam::dram
