// DDR3 memory controller model (the "DDR3 Controller" block of the paper's
// Fig. 4 — in the prototype an Altera UniPhy quarter-rate IP).
//
// Scheduling policy is FR-FCFS with explicit read/write phase grouping:
//  * row hits issue before row misses (first-ready),
//  * within a class, oldest first (FCFS),
//  * writes are buffered and drained in batches (high/low watermark or age
//    timeout) to amortize the DQ bus turnaround — the mechanism the paper's
//    Fig. 3 quantifies and BWr_Gen exploits from above,
//  * all-bank refresh every tREFI with precharge-all, unless disabled for
//    microbenchmarks.
//
// Every issued command is validated by the TimingChecker; a violation is a
// simulation bug and aborts via Status surfaced to the caller.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "dram/checker.hpp"
#include "dram/command.hpp"
#include "dram/device.hpp"
#include "dram/timing.hpp"
#include "sim/stats.hpp"
#include "sim/ticker.hpp"

namespace flowcam::dram {

struct MemRequest {
    u64 id = 0;
    bool is_write = false;
    u64 byte_address = 0;  ///< burst-aligned.
    u32 bursts = 1;        ///< consecutive BL bursts; must stay in one row.
    std::vector<u8> write_data;
};

struct MemResponse {
    u64 id = 0;
    bool is_write = false;
    std::vector<u8> data;     ///< read payload (empty for writes).
    Cycle accepted_at = 0;    ///< memory cycle the request entered the queue.
    Cycle completed_at = 0;   ///< memory cycle the last data beat transferred.
};

struct ControllerConfig {
    std::size_t read_queue_depth = 32;
    std::size_t write_queue_depth = 32;
    /// Enter write-drain when the write queue reaches this level...
    std::size_t write_drain_high = 16;
    /// ...and leave it at this level.
    std::size_t write_drain_low = 2;
    /// Drain writes anyway when the oldest write is older than this (cycles).
    Cycle write_age_limit = 512;
    bool refresh_enabled = true;
    MapPolicy map_policy = MapPolicy::kBankLow;
    /// Bank-rotation granule (0 = one burst). The Flow LUT sets this to its
    /// bucket size so a multi-burst bucket stays in one row of one bank.
    u64 interleave_bytes = 0;
};

struct ControllerStats {
    u64 reads_accepted = 0;
    u64 writes_accepted = 0;
    u64 reads_completed = 0;
    u64 writes_completed = 0;
    u64 activates = 0;
    u64 precharges = 0;
    u64 refreshes = 0;
    u64 row_hits = 0;       ///< RD/WR issued to an already-open row.
    u64 row_misses = 0;     ///< required ACT (bank idle).
    u64 row_conflicts = 0;  ///< required PRE of another row first.
    u64 rw_turnarounds = 0; ///< read<->write phase switches.
    sim::Histogram read_latency{4.0, 64};  ///< memory-clock cycles.
};

class DramController final : public sim::Ticker {
  public:
    DramController(std::string name, const DramTimings& timings, const Geometry& geometry,
                   const ControllerConfig& config);

    /// Offer a request. Returns false when the corresponding queue is full
    /// (caller must retry — hardware "ready" deasserted).
    [[nodiscard]] bool enqueue(const MemRequest& request);

    /// Pop one completion if available.
    [[nodiscard]] std::optional<MemResponse> pop_response();

    [[nodiscard]] bool idle() const {
        return reads_.empty() && writes_.empty() && in_flight_.empty() && responses_.empty();
    }
    [[nodiscard]] std::size_t read_queue_size() const { return reads_.size(); }
    [[nodiscard]] std::size_t write_queue_size() const { return writes_.size(); }

    void tick(Cycle now) override;
    [[nodiscard]] std::string name() const override { return name_; }

    [[nodiscard]] const ControllerStats& stats() const { return stats_; }
    [[nodiscard]] const TimingChecker& checker() const { return checker_; }
    [[nodiscard]] DramDevice& device() { return device_; }
    [[nodiscard]] const AddressMap& address_map() const { return map_; }

    /// DQ-bus utilization since cycle 0 (busy data cycles / elapsed cycles).
    [[nodiscard]] double dq_utilization(Cycle now) const {
        return now == 0 ? 0.0
                        : static_cast<double>(checker_.dq_busy_cycles()) / static_cast<double>(now);
    }

    /// Last Status from an internal protocol check; non-ok indicates a
    /// scheduler bug (tests assert this stays ok).
    [[nodiscard]] const Status& protocol_status() const { return protocol_status_; }

  private:
    struct Pending {
        MemRequest request;
        BurstAddress location;   ///< of the first burst.
        u32 issued_bursts = 0;   ///< RD/WR commands already sent.
        Cycle accepted_at = 0;
        bool classified = false; ///< row hit/miss/conflict already counted.
    };

    struct InFlight {
        MemResponse response;
        Cycle ready_at = 0;
    };

    void issue(const Command& cmd, Cycle now);
    bool try_refresh(Cycle now);
    [[nodiscard]] bool drain_writes_now(Cycle now) const;
    /// Pick and issue at most one command for the given queue; returns true
    /// if a command was issued.
    bool schedule_queue(std::deque<Pending>& queue, bool is_write, Cycle now);
    void complete(Pending&& pending, Cycle data_end, Cycle now);

    std::string name_;
    DramTimings timings_;
    ControllerConfig config_;
    TimingChecker checker_;
    DramDevice device_;
    AddressMap map_;

    std::deque<Pending> reads_;
    std::deque<Pending> writes_;
    std::vector<InFlight> in_flight_;
    std::deque<MemResponse> responses_;

    bool write_drain_mode_ = false;
    bool refresh_pending_ = false;
    Cycle next_refresh_ = 0;
    bool last_was_write_ = false;
    Cycle now_ = 0;  ///< last ticked memory cycle (for enqueue timestamps).

    ControllerStats stats_;
    Status protocol_status_;
};

}  // namespace flowcam::dram
