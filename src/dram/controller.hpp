// DDR3 memory controller model (the "DDR3 Controller" block of the paper's
// Fig. 4 — in the prototype an Altera UniPhy quarter-rate IP).
//
// Scheduling policy is FR-FCFS with explicit read/write phase grouping:
//  * row hits issue before row misses (first-ready),
//  * within a class, oldest first (FCFS),
//  * writes are buffered and drained in batches (high/low watermark or age
//    timeout) to amortize the DQ bus turnaround — the mechanism the paper's
//    Fig. 3 quantifies and BWr_Gen exploits from above,
//  * all-bank refresh every tREFI with precharge-all, unless disabled for
//    microbenchmarks.
//
// Every issued command is validated by the TimingChecker; a violation is a
// simulation bug and aborts via Status surfaced to the caller.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/ring_queue.hpp"
#include "common/types.hpp"
#include "dram/checker.hpp"
#include "dram/command.hpp"
#include "dram/device.hpp"
#include "dram/timing.hpp"
#include "sim/stats.hpp"
#include "sim/ticker.hpp"

namespace flowcam::dram {

struct MemRequest {
    u64 id = 0;
    bool is_write = false;
    u64 byte_address = 0;  ///< burst-aligned.
    u32 bursts = 1;        ///< consecutive BL bursts; must stay in one row.
    std::vector<u8> write_data;
};

struct MemResponse {
    u64 id = 0;
    bool is_write = false;
    std::vector<u8> data;     ///< read payload (empty for writes).
    Cycle accepted_at = 0;    ///< memory cycle the request entered the queue.
    Cycle completed_at = 0;   ///< memory cycle the last data beat transferred.
};

struct ControllerConfig {
    std::size_t read_queue_depth = 32;
    std::size_t write_queue_depth = 32;
    /// Enter write-drain when the write queue reaches this level...
    std::size_t write_drain_high = 16;
    /// ...and leave it at this level.
    std::size_t write_drain_low = 2;
    /// Drain writes anyway when the oldest write is older than this (cycles).
    Cycle write_age_limit = 512;
    bool refresh_enabled = true;
    MapPolicy map_policy = MapPolicy::kBankLow;
    /// Bank-rotation granule (0 = one burst). The Flow LUT sets this to its
    /// bucket size so a multi-burst bucket stays in one row of one bank.
    u64 interleave_bytes = 0;
};

struct ControllerStats {
    u64 reads_accepted = 0;
    u64 writes_accepted = 0;
    u64 reads_completed = 0;
    u64 writes_completed = 0;
    u64 activates = 0;
    u64 precharges = 0;
    u64 refreshes = 0;
    u64 row_hits = 0;       ///< RD/WR issued to an already-open row.
    u64 row_misses = 0;     ///< required ACT (bank idle).
    u64 row_conflicts = 0;  ///< required PRE of another row first.
    u64 rw_turnarounds = 0; ///< read<->write phase switches.
    sim::Histogram read_latency{4.0, 64};  ///< memory-clock cycles.
};

class DramController final : public sim::Ticker {
  public:
    DramController(std::string name, const DramTimings& timings, const Geometry& geometry,
                   const ControllerConfig& config);

    /// Offer a request. Returns false when the corresponding queue is full
    /// (caller must retry — hardware "ready" deasserted).
    [[nodiscard]] bool enqueue(MemRequest request);

    /// Pop one completion if available.
    [[nodiscard]] std::optional<MemResponse> pop_response();

    /// Response/write payload buffer pool: the consumer hands buffers back
    /// via recycle_buffer() once decoded, and take_buffer() reuses them for
    /// later requests — the steady-state data path then never allocates.
    [[nodiscard]] std::vector<u8> take_buffer() {
        if (spare_buffers_.empty()) return {};
        std::vector<u8> buffer = std::move(spare_buffers_.back());
        spare_buffers_.pop_back();
        buffer.clear();
        return buffer;
    }
    void recycle_buffer(std::vector<u8>&& buffer) {
        if (spare_buffers_.size() < 512) spare_buffers_.push_back(std::move(buffer));
    }

    [[nodiscard]] bool idle() const {
        return reads_.empty() && writes_.empty() && in_flight_.empty() && responses_.empty();
    }
    /// Memory cycle before which tick() is a proven no-op (see stall_until_);
    /// feeds the system-level batched fast-forward.
    [[nodiscard]] Cycle stalled_until() const { return stall_until_; }
    [[nodiscard]] std::size_t read_queue_size() const { return reads_.size(); }
    [[nodiscard]] std::size_t write_queue_size() const { return writes_.size(); }

    void tick(Cycle now) override;
    [[nodiscard]] std::string name() const override { return name_; }

    [[nodiscard]] const ControllerStats& stats() const { return stats_; }
    [[nodiscard]] const TimingChecker& checker() const { return checker_; }
    [[nodiscard]] DramDevice& device() { return device_; }
    [[nodiscard]] const AddressMap& address_map() const { return map_; }

    /// DQ-bus utilization since cycle 0 (busy data cycles / elapsed cycles).
    [[nodiscard]] double dq_utilization(Cycle now) const {
        return now == 0 ? 0.0
                        : static_cast<double>(checker_.dq_busy_cycles()) / static_cast<double>(now);
    }

    /// Last Status from an internal protocol check; non-ok indicates a
    /// scheduler bug (tests assert this stays ok).
    [[nodiscard]] const Status& protocol_status() const { return protocol_status_; }

  private:
    struct Pending {
        MemRequest request;
        BurstAddress location;   ///< of the first burst.
        u32 issued_bursts = 0;   ///< RD/WR commands already sent.
        Cycle accepted_at = 0;
        bool classified = false; ///< row hit/miss/conflict already counted.
    };

    /// Hot scan record: exactly what the FR-FCFS passes test per entry,
    /// packed to 8 bytes so scanning a full 32-deep queue touches four
    /// cache lines instead of one per entry. `slot` indexes the cold
    /// Pending pool; erase is an 8-byte-per-entry memmove, not a Pending
    /// move.
    struct Ref {
        u32 row = 0;
        u16 slot = 0;
        u8 bank = 0;
    };

    struct InFlight {
        MemResponse response;
        Cycle ready_at = 0;
    };

    void issue(const Command& cmd, Cycle now);
    bool try_refresh(Cycle now);
    [[nodiscard]] bool drain_writes_now(Cycle now) const;
    /// Pick and issue at most one command for the given queue; returns true
    /// if a command was issued.
    bool schedule_queue(std::vector<Ref>& queue, bool is_write, Cycle now);
    void complete(Pending&& pending, Cycle data_end, Cycle now);

    /// Per-bank count of queued requests that target the bank's currently
    /// open row — pass 3 must not close a row these still want. Maintained
    /// incrementally: +1 on enqueue-to-open-row, -1 on completion, recount
    /// on ACT (row changes), reset on PRE (no open row left).
    void recount_wanted(u32 bank, u32 row) {
        u32 count = 0;
        for (const Ref& r : reads_) count += (r.bank == bank && r.row == row) ? 1 : 0;
        for (const Ref& r : writes_) count += (r.bank == bank && r.row == row) ? 1 : 0;
        wanted_count_[bank] = count;
    }
    /// Direct-scan fallback for banks outside the wanted_count_ window.
    [[nodiscard]] bool open_row_wanted(u32 bank) const {
        const i64 open = checker_.open_row(bank);
        const auto wants = [&](const std::vector<Ref>& q) {
            for (const Ref& r : q) {
                if (r.bank == bank && static_cast<i64>(r.row) == open) return true;
            }
            return false;
        };
        return wants(reads_) || wants(writes_);
    }

    [[nodiscard]] u16 alloc_slot(Pending&& pending) {
        if (free_slots_.empty()) {
            slots_.push_back(std::move(pending));
            return static_cast<u16>(slots_.size() - 1);
        }
        const u16 slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot] = std::move(pending);
        return slot;
    }
    void free_slot(u16 slot) { free_slots_.push_back(slot); }

    /// Event-skip bookkeeping: a cycle at which the controller may next be
    /// able to act. Collected while a tick fails to issue anything; tick()
    /// early-returns until the earliest such cycle. Exact, not heuristic:
    /// every candidate is the precise earliest_issue of a considered command
    /// (or a response maturity / refresh deadline / write-age threshold), so
    /// the command stream is cycle-identical to the unskipped simulation.
    void note_candidate(Cycle cycle) { next_event_ = std::min(next_event_, cycle); }
    static constexpr Cycle kNever = ~Cycle{0};

    /// Earliest cycle at which `pending` could possibly issue any command,
    /// given current bank/rank state — used by enqueue() to tighten (not
    /// reset) an active stall: an arriving request can only add its own
    /// opportunity, never accelerate anyone else's.
    [[nodiscard]] Cycle entry_candidate(const Ref& ref, bool is_write, Cycle now) const;

    std::string name_;
    DramTimings timings_;
    ControllerConfig config_;
    TimingChecker checker_;
    DramDevice device_;
    AddressMap map_;

    /// Contiguous pending queues in FIFO order (hot Refs) over a slot pool
    /// of cold Pendings: depth is bounded (≤ 32 each) and the scheduler
    /// scans the Refs every evaluated cycle.
    std::vector<Ref> reads_;
    std::vector<Ref> writes_;
    std::vector<Pending> slots_;
    std::vector<u16> free_slots_;
    std::vector<InFlight> in_flight_;
    common::RingQueue<MemResponse> responses_;
    std::vector<std::vector<u8>> spare_buffers_;

    bool write_drain_mode_ = false;
    bool refresh_pending_ = false;
    Cycle next_refresh_ = 0;
    bool last_was_write_ = false;
    Cycle now_ = 0;  ///< last ticked memory cycle (for enqueue timestamps).
    Cycle stall_until_ = 0;   ///< tick() is a provable no-op before this cycle.
    Cycle next_event_ = kNever;  ///< candidate accumulator for the current tick.
    std::array<u32, 32> wanted_count_{};  ///< see recount_wanted().

    ControllerStats stats_;
    Status protocol_status_;
};

}  // namespace flowcam::dram
