// QDRII+ SRAM model — the technology the paper argues *against* for large
// flow tables (§I): "the memory densities of the latest QDRII+ SRAMs are
// restricted to a maximum of 144 Megabits", while DDR3 offers gigabytes.
// The authors' earlier design [11] used QDRII SRAM and topped out at 128 K
// entries.
//
// QDR (quad data rate) SRAM has separate read and write ports, each DDR,
// with fixed low latency and no banks/rows/refresh — every cycle can issue
// one read AND one write. The model is correspondingly simple: constant
// latency, per-port burst-of-2, deterministic throughput. Used by the
// memory-technology ablation bench to reproduce the paper's capacity-vs-
// speed trade-off quantitatively.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/ticker.hpp"

namespace flowcam::dram {

struct QdrConfig {
    double clock_mhz = 550.0;   ///< QDRII+ speed grade (e.g. Cypress 550 MHz).
    u32 bus_bytes = 4;          ///< x36 part ~ 4 data bytes per transfer.
    u32 burst_length = 4;       ///< BL4 per access (two clock edges x 2).
    u32 read_latency = 2;       ///< fixed cycles from command to data.
    u64 capacity_mbits = 144;   ///< the density ceiling the paper cites.
    std::size_t queue_depth = 16;
};

struct QdrStats {
    u64 reads = 0;
    u64 writes = 0;
    u64 rejected_capacity = 0;  ///< addresses beyond the 144 Mbit ceiling.
};

/// Constant-latency dual-port SRAM. Request/response interface mirrors
/// DramController so benches can drive both identically.
class QdrSram final : public sim::Ticker {
  public:
    explicit QdrSram(std::string name, const QdrConfig& config)
        : name_(std::move(name)), config_(config) {}

    /// Bytes of one access (per-port burst).
    [[nodiscard]] u32 access_bytes() const { return config_.bus_bytes * config_.burst_length; }
    [[nodiscard]] u64 capacity_bytes() const { return config_.capacity_mbits * 1024 * 1024 / 8; }

    /// One read and one write may be accepted per cycle (independent ports).
    [[nodiscard]] bool enqueue_read(u64 id, u64 byte_address) {
        if (byte_address + access_bytes() > capacity_bytes()) {
            ++stats_.rejected_capacity;
            return false;
        }
        if (reads_.size() >= config_.queue_depth) return false;
        reads_.push_back(Pending{id, byte_address});
        return true;
    }

    [[nodiscard]] bool enqueue_write(u64 id, u64 byte_address, std::vector<u8> data) {
        if (byte_address + access_bytes() > capacity_bytes()) {
            ++stats_.rejected_capacity;
            return false;
        }
        if (writes_.size() >= config_.queue_depth) return false;
        writes_.push_back(Pending{id, byte_address, std::move(data)});
        return true;
    }

    struct Response {
        u64 id;
        bool is_write;
        std::vector<u8> data;
    };

    [[nodiscard]] std::optional<Response> pop_response() {
        if (responses_.empty()) return std::nullopt;
        Response response = std::move(responses_.front());
        responses_.pop_front();
        return response;
    }

    void tick(Cycle now) override {
        // Deliver matured reads.
        while (!in_flight_.empty() && in_flight_.front().ready_at <= now) {
            responses_.push_back(std::move(in_flight_.front().response));
            in_flight_.pop_front();
        }
        // Read port: one access per cycle, fixed latency.
        if (!reads_.empty()) {
            Pending pending = std::move(reads_.front());
            reads_.pop_front();
            ++stats_.reads;
            Response response{pending.id, false, read_bytes(pending.address)};
            in_flight_.push_back(InFlight{now + config_.read_latency, std::move(response)});
        }
        // Write port: one access per cycle, immediate commit.
        if (!writes_.empty()) {
            Pending pending = std::move(writes_.front());
            writes_.pop_front();
            ++stats_.writes;
            write_bytes(pending.address, pending.data);
            responses_.push_back(Response{pending.id, true, {}});
        }
    }

    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] const QdrStats& stats() const { return stats_; }
    [[nodiscard]] bool idle() const {
        return reads_.empty() && writes_.empty() && in_flight_.empty() && responses_.empty();
    }

    /// Peak random-access rate in million accesses per second per port —
    /// the QDR selling point the paper concedes before rejecting it on
    /// capacity grounds.
    [[nodiscard]] double peak_maccess_per_s() const { return config_.clock_mhz; }

  private:
    struct Pending {
        u64 id;
        u64 address;
        std::vector<u8> data;
    };
    struct InFlight {
        Cycle ready_at;
        Response response;
    };

    [[nodiscard]] std::vector<u8> read_bytes(u64 address) const {
        std::vector<u8> out(access_bytes(), 0);
        const auto it = storage_.find(address / access_bytes());
        if (it != storage_.end()) out = it->second;
        return out;
    }

    void write_bytes(u64 address, const std::vector<u8>& data) {
        auto& cell = storage_[address / access_bytes()];
        cell = data;
        cell.resize(access_bytes(), 0);
    }

    std::string name_;
    QdrConfig config_;
    std::deque<Pending> reads_;
    std::deque<Pending> writes_;
    std::deque<InFlight> in_flight_;
    std::deque<Response> responses_;
    std::unordered_map<u64, std::vector<u8>> storage_;
    QdrStats stats_;
};

}  // namespace flowcam::dram
