// Functional DRAM array: sparse byte storage addressed in burst units.
// Timing lives in TimingChecker / DramController; this class only stores
// bits, so tests can verify data integrity end-to-end through the scheduler.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "dram/command.hpp"

namespace flowcam::dram {

class DramDevice {
  public:
    DramDevice(const Geometry& geometry, u32 burst_length)
        : geometry_(geometry), burst_bytes_(geometry.bus_bytes * burst_length) {}

    [[nodiscard]] u32 burst_bytes() const { return burst_bytes_; }
    [[nodiscard]] const Geometry& geometry() const { return geometry_; }

    /// Read `count` consecutive bursts starting at the burst containing
    /// `byte_address`. Unwritten memory reads as zero, as after init.
    [[nodiscard]] std::vector<u8> read(u64 byte_address, u32 count = 1) const {
        std::vector<u8> out;
        out.reserve(static_cast<std::size_t>(count) * burst_bytes_);
        const u64 first = byte_address / burst_bytes_;
        for (u64 burst = first; burst < first + count; ++burst) {
            const auto it = storage_.find(burst);
            if (it != storage_.end()) {
                out.insert(out.end(), it->second.begin(), it->second.end());
            } else {
                out.insert(out.end(), burst_bytes_, 0);
            }
        }
        return out;
    }

    /// Write bytes starting at a burst-aligned address; data shorter than a
    /// multiple of the burst size is zero-padded (models data-mask bits off).
    void write(u64 byte_address, std::span<const u8> data) {
        const u64 first = byte_address / burst_bytes_;
        std::size_t offset = 0;
        for (u64 burst = first; offset < data.size(); ++burst) {
            auto& cell = storage_[burst];
            cell.resize(burst_bytes_, 0);
            const std::size_t chunk = std::min<std::size_t>(burst_bytes_, data.size() - offset);
            std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(offset), chunk, cell.begin());
            offset += chunk;
        }
    }

    [[nodiscard]] std::size_t touched_bursts() const { return storage_.size(); }

  private:
    Geometry geometry_;
    u32 burst_bytes_;
    std::unordered_map<u64, std::vector<u8>> storage_;
};

}  // namespace flowcam::dram
