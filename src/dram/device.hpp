// Functional DRAM array: sparse page-granular byte storage addressed in
// burst units. Timing lives in TimingChecker / DramController; this class
// only stores bits, so tests can verify data integrity end-to-end through
// the scheduler.
//
// Storage is organized as zero-initialized 4 KB pages (one flat-map entry
// per page instead of one heap vector per 32-byte burst): a bucket read is
// one open-addressed page lookup plus one memcpy — every completed DDR
// access pays it, so the page table is a FlatU64Map rather than a
// node-based unordered_map — and read_into() lets the controller recycle
// response buffers, keeping the steady-state lookup path free of
// per-request allocation.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "dram/command.hpp"

namespace flowcam::dram {

class DramDevice {
  public:
    static constexpr u64 kPageBytes = 4096;

    DramDevice(const Geometry& geometry, u32 burst_length)
        : geometry_(geometry), burst_bytes_(geometry.bus_bytes * burst_length) {}

    [[nodiscard]] u32 burst_bytes() const { return burst_bytes_; }
    [[nodiscard]] const Geometry& geometry() const { return geometry_; }

    /// Read `count` consecutive bursts starting at the burst containing
    /// `byte_address` into `out` (resized; prior capacity is reused).
    /// Unwritten memory reads as zero, as after init.
    void read_into(u64 byte_address, u32 count, std::vector<u8>& out) const {
        const std::size_t total = static_cast<std::size_t>(count) * burst_bytes_;
        out.resize(total);
        u64 address = (byte_address / burst_bytes_) * burst_bytes_;
        std::size_t offset = 0;
        while (offset < total) {
            const std::size_t in_page = address % kPageBytes;
            const std::size_t chunk =
                std::min<std::size_t>(kPageBytes - in_page, total - offset);
            const std::vector<u8>* page = pages_.find(address / kPageBytes);
            if (page != nullptr) {
                std::memcpy(out.data() + offset, page->data() + in_page, chunk);
            } else {
                std::memset(out.data() + offset, 0, chunk);
            }
            offset += chunk;
            address += chunk;
        }
    }

    [[nodiscard]] std::vector<u8> read(u64 byte_address, u32 count = 1) const {
        std::vector<u8> out;
        read_into(byte_address, count, out);
        return out;
    }

    /// Write bytes starting at a burst-aligned address (partial trailing
    /// bursts leave the remainder of the burst untouched, matching DM bits).
    void write(u64 byte_address, std::span<const u8> data) {
        u64 address = (byte_address / burst_bytes_) * burst_bytes_;
        std::size_t offset = 0;
        while (offset < data.size()) {
            const std::size_t in_page = address % kPageBytes;
            const std::size_t chunk =
                std::min<std::size_t>(kPageBytes - in_page, data.size() - offset);
            std::vector<u8>& page = pages_[address / kPageBytes];
            if (page.empty()) page.assign(kPageBytes, 0);
            std::memcpy(page.data() + in_page, data.data() + offset, chunk);
            offset += chunk;
            address += chunk;
        }
    }

    /// Footprint at page granularity (bursts covered by touched pages).
    [[nodiscard]] std::size_t touched_bursts() const {
        return pages_.size() * (kPageBytes / burst_bytes_);
    }

  private:
    Geometry geometry_;
    u32 burst_bytes_;
    common::FlatU64Map<std::vector<u8>> pages_;
};

}  // namespace flowcam::dram
