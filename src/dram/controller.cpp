#include "dram/controller.hpp"

#include <algorithm>
#include <cassert>

namespace flowcam::dram {

DramController::DramController(std::string name, const DramTimings& timings,
                               const Geometry& geometry, const ControllerConfig& config)
    : name_(std::move(name)),
      timings_(timings),
      config_(config),
      checker_(timings, geometry),
      device_(geometry, timings.burst_length),
      map_(geometry, timings.burst_length, config.map_policy, config.interleave_bytes),
      next_refresh_(timings.trefi) {}

bool DramController::enqueue(const MemRequest& request) {
    auto& queue = request.is_write ? writes_ : reads_;
    const std::size_t depth =
        request.is_write ? config_.write_queue_depth : config_.read_queue_depth;
    if (queue.size() >= depth) return false;

    Pending pending;
    pending.request = request;
    pending.location = map_.decode(request.byte_address);
    pending.accepted_at = now_;
    queue.push_back(std::move(pending));
    if (request.is_write) {
        ++stats_.writes_accepted;
    } else {
        ++stats_.reads_accepted;
    }
    return true;
}

std::optional<MemResponse> DramController::pop_response() {
    if (responses_.empty()) return std::nullopt;
    MemResponse response = std::move(responses_.front());
    responses_.pop_front();
    return response;
}

void DramController::issue(const Command& cmd, Cycle now) {
    const Status status = checker_.record(cmd, now);
    if (!status.is_ok() && protocol_status_.is_ok()) protocol_status_ = status;
    switch (cmd.type) {
        case CommandType::kActivate: ++stats_.activates; break;
        case CommandType::kPrecharge: ++stats_.precharges; break;
        case CommandType::kRefresh: ++stats_.refreshes; break;
        default: break;
    }
}

bool DramController::try_refresh(Cycle now) {
    if (!config_.refresh_enabled) return false;
    if (!refresh_pending_ && now >= next_refresh_) refresh_pending_ = true;
    if (!refresh_pending_) return false;

    // Precharge any open bank first (one command per cycle).
    for (u32 bank = 0; bank < checker_.geometry().banks; ++bank) {
        if (checker_.bank_active(bank)) {
            const Command pre{CommandType::kPrecharge, bank, 0, 0};
            if (checker_.earliest_issue(pre, now) <= now) {
                issue(pre, now);
                return true;
            }
            return false;  // wait for tRAS/tWR to elapse.
        }
    }
    const Command ref{CommandType::kRefresh, 0, 0, 0};
    if (checker_.earliest_issue(ref, now) <= now) {
        issue(ref, now);
        refresh_pending_ = false;
        next_refresh_ += timings_.trefi;
        return true;
    }
    return false;
}

bool DramController::drain_writes_now(Cycle now) const {
    if (writes_.empty()) return false;
    if (write_drain_mode_) return true;
    if (writes_.size() >= config_.write_drain_high) return true;
    if (now >= writes_.front().accepted_at + config_.write_age_limit) return true;
    return reads_.empty();
}

void DramController::complete(Pending&& pending, Cycle data_end, Cycle now) {
    MemResponse response;
    response.id = pending.request.id;
    response.is_write = pending.request.is_write;
    response.accepted_at = pending.accepted_at;
    if (pending.request.is_write) {
        device_.write(pending.request.byte_address, pending.request.write_data);
        ++stats_.writes_completed;
    } else {
        response.data = device_.read(pending.request.byte_address, pending.request.bursts);
        ++stats_.reads_completed;
        stats_.read_latency.add(static_cast<double>(data_end - pending.accepted_at));
    }
    response.completed_at = data_end;
    in_flight_.push_back(InFlight{std::move(response), data_end});
    (void)now;
}

bool DramController::schedule_queue(std::deque<Pending>& queue, bool is_write, Cycle now) {
    if (queue.empty()) return false;
    const auto column_of = [&](const Pending& p, u32 burst) {
        return p.location.col + burst * timings_.burst_length;
    };

    // Pass 1 (first-ready): oldest request whose row is open and whose next
    // RD/WR may issue this cycle.
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (!checker_.row_open(it->location.bank, it->location.row)) continue;
        const auto type = is_write ? CommandType::kWrite : CommandType::kRead;
        const Command cmd{type, it->location.bank, it->location.row,
                          column_of(*it, it->issued_bursts)};
        if (checker_.earliest_issue(cmd, now) > now) continue;

        if (is_write != last_was_write_) {
            ++stats_.rw_turnarounds;
            last_was_write_ = is_write;
        }
        if (!it->classified) {
            ++stats_.row_hits;
            it->classified = true;
        }
        issue(cmd, now);
        ++it->issued_bursts;
        if (it->issued_bursts == it->request.bursts) {
            const Cycle latency = is_write ? timings_.cwl : timings_.cl;
            const Cycle data_end = now + latency + timings_.burst_cycles();
            complete(std::move(*it), data_end, now);
            queue.erase(it);
        }
        return true;
    }

    // Pass 2: oldest request whose bank is idle -> ACT.
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (checker_.bank_active(it->location.bank)) continue;
        const Command act{CommandType::kActivate, it->location.bank, it->location.row, 0};
        if (checker_.earliest_issue(act, now) > now) continue;
        if (!it->classified) {
            ++stats_.row_misses;
            it->classified = true;
        }
        issue(act, now);
        return true;
    }

    // Pass 3: oldest request blocked by a conflicting open row -> PRE.
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        const u32 bank = it->location.bank;
        if (!checker_.bank_active(bank) || checker_.row_open(bank, it->location.row)) continue;
        // Do not close a row that an older request in either queue still
        // wants (keep the hit streak alive).
        const auto wants_open_row = [&](const std::deque<Pending>& other) {
            return std::any_of(other.begin(), other.end(), [&](const Pending& p) {
                return p.location.bank == bank &&
                       static_cast<i64>(p.location.row) == checker_.open_row(bank);
            });
        };
        if (wants_open_row(reads_) || wants_open_row(writes_)) continue;
        const Command pre{CommandType::kPrecharge, bank, 0, 0};
        if (checker_.earliest_issue(pre, now) > now) continue;
        if (!it->classified) {
            ++stats_.row_conflicts;
            // Not marking classified: the follow-up ACT counts it as a miss
            // only if still unclassified — so mark here to count once.
            it->classified = true;
        }
        issue(pre, now);
        return true;
    }
    return false;
}

void DramController::tick(Cycle now) {
    now_ = now;
    // Deliver matured completions (data fully transferred).
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
        if (it->ready_at <= now) {
            responses_.push_back(std::move(it->response));
            it = in_flight_.erase(it);
        } else {
            ++it;
        }
    }

    // Refresh has absolute priority when due.
    if (try_refresh(now)) return;

    // Phase selection with hysteresis.
    if (write_drain_mode_) {
        if (writes_.size() <= config_.write_drain_low) write_drain_mode_ = false;
    } else if (writes_.size() >= config_.write_drain_high ||
               (!writes_.empty() && now >= writes_.front().accepted_at + config_.write_age_limit)) {
        write_drain_mode_ = true;
    }

    const bool write_phase = drain_writes_now(now);
    if (write_phase) {
        if (schedule_queue(writes_, true, now)) return;
        // Opportunistically serve reads when no write can issue this cycle.
        (void)schedule_queue(reads_, false, now);
    } else {
        if (schedule_queue(reads_, false, now)) return;
        (void)schedule_queue(writes_, true, now);
    }
}

}  // namespace flowcam::dram
