#include "dram/controller.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace flowcam::dram {

DramController::DramController(std::string name, const DramTimings& timings,
                               const Geometry& geometry, const ControllerConfig& config)
    : name_(std::move(name)),
      timings_(timings),
      config_(config),
      checker_(timings, geometry),
      device_(geometry, timings.burst_length),
      map_(geometry, timings.burst_length, config.map_policy, config.interleave_bytes),
      next_refresh_(timings.trefi) {}

bool DramController::enqueue(MemRequest request) {
    auto& queue = request.is_write ? writes_ : reads_;
    const std::size_t depth =
        request.is_write ? config_.write_queue_depth : config_.read_queue_depth;
    if (queue.size() >= depth) {
        // Caller retries next cycle with a fresh payload; keep the buffer.
        if (request.is_write) recycle_buffer(std::move(request.write_data));
        return false;
    }

    const bool is_write = request.is_write;
    Pending pending;
    pending.location = map_.decode(request.byte_address);
    pending.accepted_at = now_;
    pending.request = std::move(request);
    Ref ref;
    ref.row = pending.location.row;
    ref.bank = static_cast<u8>(pending.location.bank);
    ref.slot = alloc_slot(std::move(pending));
    queue.push_back(ref);
    if (ref.bank < wanted_count_.size() && checker_.row_open(ref.bank, ref.row)) {
        ++wanted_count_[ref.bank];
    }
    if (is_write) {
        ++stats_.writes_accepted;
    } else {
        ++stats_.reads_accepted;
    }
    if (stall_until_ > now_ + 1) {
        // Tighten the stall by the newcomer's own earliest opportunity; the
        // other entries' candidates are unchanged by an enqueue (a new
        // request can block a pass-3 precharge, never enable anything).
        const Cycle candidate = entry_candidate(ref, is_write, now_);
        stall_until_ = std::min(stall_until_, std::max(candidate, now_ + 1));
    }
    return true;
}

Cycle DramController::entry_candidate(const Ref& ref, bool is_write, Cycle now) const {
    if (checker_.row_open(ref.bank, ref.row)) {
        const Cycle rank =
            is_write ? checker_.write_rank_earliest(now) : checker_.read_rank_earliest(now);
        return std::max(rank, checker_.rcd_earliest(ref.bank, now));
    }
    if (!checker_.bank_active(ref.bank)) {
        return std::max(checker_.act_rank_earliest(now),
                        checker_.act_bank_earliest(ref.bank, now));
    }
    return checker_.earliest_issue(Command{CommandType::kPrecharge, ref.bank, 0, 0}, now);
}

std::optional<MemResponse> DramController::pop_response() {
    if (responses_.empty()) return std::nullopt;
    return responses_.pop_front();
}

void DramController::issue(const Command& cmd, Cycle now) {
    const Status status = checker_.record(cmd, now);
    if (!status.is_ok() && protocol_status_.is_ok()) protocol_status_ = status;
    switch (cmd.type) {
        case CommandType::kActivate:
            ++stats_.activates;
            if (cmd.bank < wanted_count_.size()) recount_wanted(cmd.bank, cmd.row);
            break;
        case CommandType::kPrecharge:
            ++stats_.precharges;
            if (cmd.bank < wanted_count_.size()) wanted_count_[cmd.bank] = 0;
            break;
        case CommandType::kRefresh: ++stats_.refreshes; break;
        default: break;
    }
}

bool DramController::try_refresh(Cycle now) {
    if (!config_.refresh_enabled) return false;
    if (!refresh_pending_) {
        if (now < next_refresh_) {
            note_candidate(next_refresh_);
            return false;
        }
        refresh_pending_ = true;
    }

    // Precharge any open bank first (one command per cycle).
    for (u32 bank = 0; bank < checker_.geometry().banks; ++bank) {
        if (checker_.bank_active(bank)) {
            const Command pre{CommandType::kPrecharge, bank, 0, 0};
            const Cycle earliest = checker_.earliest_issue(pre, now);
            if (earliest <= now) {
                issue(pre, now);
                return true;
            }
            note_candidate(earliest);  // wait for tRAS/tWR to elapse.
            return false;
        }
    }
    const Command ref{CommandType::kRefresh, 0, 0, 0};
    const Cycle earliest = checker_.earliest_issue(ref, now);
    if (earliest <= now) {
        issue(ref, now);
        refresh_pending_ = false;
        next_refresh_ += timings_.trefi;
        return true;
    }
    note_candidate(earliest);
    return false;
}

bool DramController::drain_writes_now(Cycle now) const {
    if (writes_.empty()) return false;
    if (write_drain_mode_) return true;
    if (writes_.size() >= config_.write_drain_high) return true;
    if (now >= slots_[writes_.front().slot].accepted_at + config_.write_age_limit) return true;
    return reads_.empty();
}

void DramController::complete(Pending&& pending, Cycle data_end, Cycle now) {
    MemResponse response;
    response.id = pending.request.id;
    response.is_write = pending.request.is_write;
    response.accepted_at = pending.accepted_at;
    if (pending.request.is_write) {
        device_.write(pending.request.byte_address, pending.request.write_data);
        recycle_buffer(std::move(pending.request.write_data));
        ++stats_.writes_completed;
    } else {
        response.data = take_buffer();
        device_.read_into(pending.request.byte_address, pending.request.bursts, response.data);
        ++stats_.reads_completed;
        stats_.read_latency.add(static_cast<double>(data_end - pending.accepted_at));
    }
    response.completed_at = data_end;
    in_flight_.push_back(InFlight{std::move(response), data_end});
    (void)now;
}

bool DramController::schedule_queue(std::vector<Ref>& queue, bool is_write, Cycle now) {
    if (queue.empty()) return false;

    const u32 banks = checker_.geometry().banks;
    const u32 active_banks = checker_.active_bank_count();

    // Pass 1 (first-ready): oldest request whose row is open and whose next
    // RD/WR may issue this cycle. The rank-wide gate (tCCD / turnaround /
    // tRFC) is shared by every candidate: when it blocks, skip the scan.
    const Cycle rank_ready =
        is_write ? checker_.write_rank_earliest(now) : checker_.read_rank_earliest(now);
    if (rank_ready > now) {
        note_candidate(rank_ready);
    } else if (active_banks != 0) {
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const Ref ref = queue[i];
            if (!checker_.row_open(ref.bank, ref.row)) continue;
            if (const Cycle earliest = checker_.rcd_earliest(ref.bank, now); earliest > now) {
                note_candidate(earliest);
                continue;
            }
            Pending& pending = slots_[ref.slot];
            const auto type = is_write ? CommandType::kWrite : CommandType::kRead;
            const Command cmd{type, ref.bank, ref.row,
                              pending.location.col + pending.issued_bursts * timings_.burst_length};

            if (is_write != last_was_write_) {
                ++stats_.rw_turnarounds;
                last_was_write_ = is_write;
            }
            if (!pending.classified) {
                ++stats_.row_hits;
                pending.classified = true;
            }
            issue(cmd, now);
            ++pending.issued_bursts;
            if (pending.issued_bursts == pending.request.bursts) {
                const Cycle latency = is_write ? timings_.cwl : timings_.cl;
                const Cycle data_end = now + latency + timings_.burst_cycles();
                complete(std::move(pending), data_end, now);
                free_slot(ref.slot);
                queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
                if (ref.bank < wanted_count_.size()) {
                    --wanted_count_[ref.bank];  // it wanted the open row (pass-1 criterion).
                }
            }
            return true;
        }
    }

    // Pass 2: oldest request whose bank is idle -> ACT. tRRD/tFAW/tRFC are
    // rank-wide (one blocked answer covers every candidate), and with all
    // banks active there is no candidate at all — the steady-state case.
    const Cycle act_rank = checker_.act_rank_earliest(now);
    if (act_rank > now) {
        note_candidate(act_rank);
    } else if (active_banks < banks) {
        for (const Ref& ref : queue) {
            if (checker_.bank_active(ref.bank)) continue;
            if (const Cycle earliest = checker_.act_bank_earliest(ref.bank, now);
                earliest > now) {
                note_candidate(earliest);
                continue;
            }
            const Command act{CommandType::kActivate, ref.bank, ref.row, 0};
            Pending& pending = slots_[ref.slot];
            if (!pending.classified) {
                ++stats_.row_misses;
                pending.classified = true;
            }
            issue(act, now);
            return true;
        }
    }

    // Pass 3: oldest request blocked by a conflicting open row -> PRE.
    // `wants_cache` memoizes the per-bank "an older request still wants the
    // open row" answer (turning the nested any_of into once-per-bank work),
    // and `pre_cache` the per-bank precharge bound — both are functions of
    // bank state only, constant across the scan.
    if (active_banks == 0) return false;  // no open row to conflict with.
    std::array<Cycle, 16> pre_cache;
    pre_cache.fill(kNever);
    for (const Ref& ref : queue) {
        const u32 bank = ref.bank;
        if (!checker_.bank_active(bank) || checker_.row_open(bank, ref.row)) continue;
        // Do not close a row that a request in either queue still wants
        // (keep the hit streak alive) — wanted_count_ is maintained
        // incrementally (see recount_wanted()); banks beyond its window
        // (none in DDR3/DDR4 geometries) fall back to a direct scan.
        if (bank < wanted_count_.size() ? wanted_count_[bank] != 0
                                        : open_row_wanted(bank)) {
            continue;
        }
        const Command pre{CommandType::kPrecharge, bank, 0, 0};
        Cycle pre_uncached = kNever;
        Cycle& earliest =
            bank < pre_cache.size() ? pre_cache[bank] : pre_uncached;
        if (earliest == kNever) earliest = checker_.earliest_issue(pre, now);
        if (earliest > now) {
            note_candidate(earliest);
            continue;
        }
        Pending& pending = slots_[ref.slot];
        if (!pending.classified) {
            ++stats_.row_conflicts;
            // Not marking classified: the follow-up ACT counts it as a miss
            // only if still unclassified — so mark here to count once.
            pending.classified = true;
        }
        issue(pre, now);
        return true;
    }
    return false;
}

void DramController::tick(Cycle now) {
    // Event skip: every cycle in [stall_until_ computation, stall_until_)
    // was proven to be a no-op — no response matures, no refresh comes due,
    // and no queued command's earliest_issue arrives. enqueue() resets the
    // stall, so external stimulus always re-evaluates. The resulting command
    // stream is cycle-identical to ticking every cycle (asserted by the
    // DRAM pattern tests and the timed-vs-functional property test).
    now_ = now;  // before the stall check: enqueue() timestamps off now_.
    if (now < stall_until_) return;
    stall_until_ = 0;
    next_event_ = kNever;

    // Deliver matured completions (data fully transferred).
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
        if (it->ready_at <= now) {
            responses_.push_back(std::move(it->response));
            it = in_flight_.erase(it);
        } else {
            note_candidate(it->ready_at);
            ++it;
        }
    }

    // Refresh has absolute priority when due.
    if (try_refresh(now)) return;

    // Phase selection with hysteresis.
    if (write_drain_mode_) {
        if (writes_.size() <= config_.write_drain_low) write_drain_mode_ = false;
    } else if (writes_.size() >= config_.write_drain_high ||
               (!writes_.empty() &&
                now >= slots_[writes_.front().slot].accepted_at + config_.write_age_limit)) {
        write_drain_mode_ = true;
    }
    if (!write_drain_mode_ && !writes_.empty()) {
        // Crossing the age limit flips the phase even with no other event.
        note_candidate(slots_[writes_.front().slot].accepted_at + config_.write_age_limit);
    }

    const bool write_phase = drain_writes_now(now);
    bool issued;
    if (write_phase) {
        // Opportunistically serve reads when no write can issue this cycle.
        issued = schedule_queue(writes_, true, now) || schedule_queue(reads_, false, now);
    } else {
        issued = schedule_queue(reads_, false, now) || schedule_queue(writes_, true, now);
    }
    if (!issued) stall_until_ = next_event_;
}

}  // namespace flowcam::dram
