#include "dram/controller.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace flowcam::dram {
namespace {

[[nodiscard]] u32 lowest_bank(u64 mask) { return static_cast<u32>(std::countr_zero(mask)); }

}  // namespace

DramController::DramController(std::string name, const DramTimings& timings,
                               const Geometry& geometry, const ControllerConfig& config)
    : name_(std::move(name)),
      timings_(timings),
      config_(config),
      checker_(timings, geometry),
      device_(geometry, timings.burst_length),
      map_(geometry, timings.burst_length, config.map_policy, config.interleave_bytes),
      next_refresh_(timings.trefi),
      wanted_count_(geometry.banks, 0) {
    assert(geometry.banks <= 64 && "per-bank candidate state uses u64 bitmasks");
    for (QueueState& qs : queues_) {
        qs.bank_head.assign(geometry.banks, kNil);
        qs.bank_tail.assign(geometry.banks, kNil);
        qs.hit_head.assign(geometry.banks, kNil);
        qs.hit_tail.assign(geometry.banks, kNil);
    }
}

void DramController::link_request(u32 q, u32 bank, u16 slot) {
    QueueState& qs = queues_[q];
    SlotLinks& links = links_[slot];
    links.q_prev = qs.tail;
    links.q_next = kNil;
    if (qs.tail != kNil) {
        links_[qs.tail].q_next = slot;
    } else {
        qs.head = slot;
    }
    qs.tail = slot;
    links.bank_prev = qs.bank_tail[bank];
    links.bank_next = kNil;
    if (qs.bank_tail[bank] != kNil) {
        links_[qs.bank_tail[bank]].bank_next = slot;
    } else {
        qs.bank_head[bank] = slot;
    }
    qs.bank_tail[bank] = slot;
    qs.pending_mask |= u64{1} << bank;
    ++qs.size;
}

void DramController::unlink_request(u32 q, u32 bank, u16 slot) {
    QueueState& qs = queues_[q];
    const SlotLinks& links = links_[slot];
    if (links.q_prev != kNil) {
        links_[links.q_prev].q_next = links.q_next;
    } else {
        qs.head = links.q_next;
    }
    if (links.q_next != kNil) {
        links_[links.q_next].q_prev = links.q_prev;
    } else {
        qs.tail = links.q_prev;
    }
    if (links.bank_prev != kNil) {
        links_[links.bank_prev].bank_next = links.bank_next;
    } else {
        qs.bank_head[bank] = links.bank_next;
    }
    if (links.bank_next != kNil) {
        links_[links.bank_next].bank_prev = links.bank_prev;
    } else {
        qs.bank_tail[bank] = links.bank_prev;
    }
    if (qs.bank_head[bank] == kNil) qs.pending_mask &= ~(u64{1} << bank);
    --qs.size;
}

void DramController::hit_push_back(QueueState& qs, u32 bank, u16 slot) {
    links_[slot].hit_next = kNil;
    if (qs.hit_tail[bank] != kNil) {
        links_[qs.hit_tail[bank]].hit_next = slot;
    } else {
        qs.hit_head[bank] = slot;
    }
    qs.hit_tail[bank] = slot;
    qs.hit_mask |= u64{1} << bank;
}

void DramController::rebuild_hits(u32 bank, u32 row) {
    // Paid once per ACT (the only time a bank's open row changes to a new
    // value) instead of rediscovering hits by scanning every evaluated
    // cycle. Bank lists preserve arrival order, so the rebuilt hit lists do
    // too.
    const u64 bit = u64{1} << bank;
    u32 count = 0;
    for (QueueState& qs : queues_) {
        qs.hit_head[bank] = kNil;
        qs.hit_tail[bank] = kNil;
        qs.hit_mask &= ~bit;
        for (u16 slot = qs.bank_head[bank]; slot != kNil; slot = links_[slot].bank_next) {
            if (slots_[slot].location.row != row) continue;
            hit_push_back(qs, bank, slot);
            ++count;
        }
    }
    wanted_count_[bank] = count;
    if (count != 0) {
        wanted_mask_ |= bit;
    } else {
        wanted_mask_ &= ~bit;
    }
}

void DramController::clear_hits(u32 bank) {
    const u64 bit = u64{1} << bank;
    for (QueueState& qs : queues_) {
        qs.hit_head[bank] = kNil;
        qs.hit_tail[bank] = kNil;
        qs.hit_mask &= ~bit;
    }
    wanted_count_[bank] = 0;
    wanted_mask_ &= ~bit;
}

bool DramController::enqueue(MemRequest request) {
    const bool is_write = request.is_write;
    const u32 q = is_write ? 1 : 0;
    const std::size_t depth =
        is_write ? config_.write_queue_depth : config_.read_queue_depth;
    if (enqueue_veto_ && enqueue_veto_(request)) {
        if (is_write) recycle_buffer(std::move(request.write_data));
        return false;
    }
    if (queues_[q].size >= depth) {
        // Caller retries next cycle with a fresh payload; keep the buffer.
        if (is_write) recycle_buffer(std::move(request.write_data));
        return false;
    }

    Pending pending;
    pending.location = map_.decode(request.byte_address);
    pending.accepted_at = now_;
    pending.seq = next_seq_++;
    pending.request = std::move(request);
    const u32 bank = pending.location.bank;
    const u32 row = pending.location.row;
    const u16 slot = alloc_slot(std::move(pending));
    link_request(q, bank, slot);
    if (checker_.row_open(bank, row)) {
        hit_push_back(queues_[q], bank, slot);
        ++wanted_count_[bank];
        wanted_mask_ |= u64{1} << bank;
    }
    if (is_write) {
        ++stats_.writes_accepted;
    } else {
        ++stats_.reads_accepted;
    }
    if (stall_until_ > now_ + 1) {
        // Tighten the stall by the newcomer's own earliest opportunity; the
        // other entries' candidates are unchanged by an enqueue (a new
        // request can block a pass-3 precharge, never enable anything).
        const Cycle candidate = entry_candidate(bank, row, is_write, now_);
        stall_until_ = std::min(stall_until_, std::max(candidate, now_ + 1));
    }
    return true;
}

Cycle DramController::entry_candidate(u32 bank, u32 row, bool is_write, Cycle now) const {
    if (checker_.row_open(bank, row)) {
        const Cycle rank =
            is_write ? checker_.write_rank_earliest(now) : checker_.read_rank_earliest(now);
        return std::max(rank, checker_.rcd_earliest(bank, now));
    }
    if (!checker_.bank_active(bank)) {
        return std::max(checker_.act_rank_earliest(now),
                        checker_.act_bank_earliest(bank, now));
    }
    return checker_.pre_bank_earliest(bank, now);
}

std::optional<MemResponse> DramController::pop_response() {
    if (responses_.empty()) return std::nullopt;
    return responses_.pop_front();
}

void DramController::set_recorder(obs::Recorder* recorder) {
    if (recorder == obs_) return;
    obs_ = recorder;
    if (obs_ == nullptr) return;
    obs_track_ = obs_->track(name_);
    // A name collision (two same-named controllers on one recorder) falls
    // back to the scrap cells: the bump sites stay valid, the duplicate's
    // numbers just don't reach the registry.
    const auto cell = [&](const std::string& name) {
        auto result = obs_->register_counter(name);
        return result ? result.value() : &obs_scrap_cell_;
    };
    const auto hist = [&](const std::string& name) {
        auto result = obs_->register_histogram(name);
        return result ? result.value() : &obs_scrap_hist_;
    };
    pass_picks_[0] = cell(name_ + ".pass1_rdwr");
    pass_picks_[1] = cell(name_ + ".pass2_act");
    pass_picks_[2] = cell(name_ + ".pass3_pre");
    rd_issue_lat_ = hist(name_ + ".rd_issue_ns");
    wr_issue_lat_ = hist(name_ + ".wr_issue_ns");
}

void DramController::issue(const Command& cmd, Cycle now) {
    const Status status = checker_.record(cmd, now);
    if (!status.is_ok() && protocol_status_.is_ok()) protocol_status_ = status;
    if (trace_ != nullptr) trace_->push_back(TracedCommand{cmd, now});
    if (obs_ != nullptr) {
        obs_->event_instant(obs_track_, to_string(cmd.type), obs_->mem_ns(now), "bank",
                            cmd.bank);
    }
    switch (cmd.type) {
        case CommandType::kActivate:
            ++stats_.activates;
            active_mask_ |= u64{1} << cmd.bank;
            rebuild_hits(cmd.bank, cmd.row);
            break;
        case CommandType::kPrecharge:
            ++stats_.precharges;
            active_mask_ &= ~(u64{1} << cmd.bank);
            clear_hits(cmd.bank);
            break;
        case CommandType::kRefresh: ++stats_.refreshes; break;
        default: break;
    }
}

bool DramController::try_refresh(Cycle now) {
    if (!config_.refresh_enabled) {
        refresh_gate_ = kNever;
        return false;
    }
    if (!refresh_pending_) {
        if (now < next_refresh_) {
            refresh_gate_ = next_refresh_;
            note_candidate(next_refresh_);
            return false;
        }
        refresh_pending_ = true;
        refresh_gate_ = 0;  // retry every evaluated tick until the REF lands.
    }

    // Precharge any open bank first (one command per cycle; lowest bank
    // number first, like the reference bank scan).
    if (active_mask_ != 0) {
        const u32 bank = lowest_bank(active_mask_);
        const Command pre{CommandType::kPrecharge, bank, 0, 0};
        const Cycle earliest = checker_.pre_bank_earliest(bank, now);
        if (earliest <= now) {
            issue(pre, now);
            return true;
        }
        note_candidate(earliest);  // wait for tRAS/tWR to elapse.
        return false;
    }
    const Command refresh{CommandType::kRefresh, 0, 0, 0};
    const Cycle earliest = checker_.earliest_issue(refresh, now);
    if (earliest <= now) {
        issue(refresh, now);
        refresh_pending_ = false;
        next_refresh_ += timings_.trefi;
        refresh_gate_ = next_refresh_;
        return true;
    }
    note_candidate(earliest);
    return false;
}

bool DramController::drain_writes_now(Cycle now) const {
    const QueueState& writes = queues_[1];
    if (writes.size == 0) return false;
    if (write_drain_mode_) return true;
    if (writes.size >= config_.write_drain_high) return true;
    if (now >= slots_[writes.head].accepted_at + config_.write_age_limit) return true;
    return queues_[0].size == 0;
}

void DramController::complete(Pending&& pending, Cycle data_end, Cycle now) {
    MemResponse response;
    response.id = pending.request.id;
    response.is_write = pending.request.is_write;
    response.accepted_at = pending.accepted_at;
    if (pending.request.is_write) {
        device_.write(pending.request.byte_address, pending.request.write_data);
        recycle_buffer(std::move(pending.request.write_data));
        ++stats_.writes_completed;
    } else {
        response.data = take_buffer();
        device_.read_into(pending.request.byte_address, pending.request.bursts, response.data);
        ++stats_.reads_completed;
        stats_.read_latency.add(data_end - pending.accepted_at);
    }
    response.completed_at = data_end;
    in_flight_.push_back(InFlight{std::move(response), data_end});
    in_flight_min_ = std::min(in_flight_min_, data_end);
    (void)now;
}

DramController::Decision DramController::decide_indexed(bool is_write, Cycle now,
                                                        Cycle& next) const {
    const u32 q = is_write ? 1 : 0;
    const QueueState& qs = queues_[q];
    const u32 banks = checker_.geometry().banks;
    const u32 active_banks = checker_.active_bank_count();

    struct Winner {
        u16 slot = kNil;
        u32 bank = 0;
    };
    // Shared winner selection of all three passes: walk the candidate-bank
    // mask, note the per-bank ready bound when it blocks, and pick the
    // min-seq list head among the ready banks — each head is its bank's
    // oldest request, so the min-seq head is the pass's FCFS winner.
    const auto pick = [&](u64 mask, auto&& bank_earliest, const std::vector<u16>& heads) {
        Winner winner;
        u64 best_seq = 0;
        for (; mask != 0; mask &= mask - 1) {
            const u32 bank = lowest_bank(mask);
            if (const Cycle earliest = bank_earliest(bank); earliest > now) {
                note(next, earliest);
                continue;
            }
            const u16 slot = heads[bank];
            if (winner.slot == kNil || slots_[slot].seq < best_seq) {
                winner = Winner{slot, bank};
                best_seq = slots_[slot].seq;
            }
        }
        return winner;
    };

    // Pass 1 (first-ready): oldest request whose row is open and whose next
    // RD/WR may issue this cycle. The rank-wide gate (tCCD / turnaround /
    // tRFC) is shared by every candidate: when it blocks, skip the pass.
    // hit_mask enumerates exactly the banks holding such a request.
    const Cycle rank_ready =
        is_write ? checker_.write_rank_earliest(now) : checker_.read_rank_earliest(now);
    if (rank_ready > now) {
        note(next, rank_ready);
    } else {
        const Winner winner = pick(
            qs.hit_mask, [&](u32 bank) { return checker_.rcd_earliest(bank, now); },
            qs.hit_head);
        if (winner.slot != kNil) {
            const Pending& pending = slots_[winner.slot];
            const auto type = is_write ? CommandType::kWrite : CommandType::kRead;
            return Decision{
                true, 1,
                Command{type, winner.bank, pending.location.row,
                        pending.location.col + pending.issued_bursts * timings_.burst_length},
                winner.slot};
        }
    }

    // Pass 2: oldest request whose bank is idle -> ACT. tRRD/tFAW/tRFC are
    // rank-wide (one blocked answer covers every candidate); the candidate
    // banks are exactly pending & ~active.
    const Cycle act_rank = checker_.act_rank_earliest(now);
    if (act_rank > now) {
        note(next, act_rank);
    } else if (active_banks < banks) {
        const Winner winner = pick(
            qs.pending_mask & ~active_mask_,
            [&](u32 bank) { return checker_.act_bank_earliest(bank, now); }, qs.bank_head);
        if (winner.slot != kNil) {
            return Decision{true, 2,
                            Command{CommandType::kActivate, winner.bank,
                                    slots_[winner.slot].location.row, 0},
                            winner.slot};
        }
    }

    // Pass 3: oldest request blocked by a conflicting open row -> PRE. A
    // bank qualifies iff it is active, holds a queued request of this
    // direction, and nobody (either direction) still wants its open row —
    // in which case *every* request it holds is a conflict, so the bank-list
    // head again represents the bank.
    if (active_banks == 0) return {};  // no open row to conflict with.
    const Winner winner = pick(
        qs.pending_mask & active_mask_ & ~wanted_mask_,
        [&](u32 bank) { return checker_.pre_bank_earliest(bank, now); }, qs.bank_head);
    if (winner.slot != kNil) {
        return Decision{true, 3, Command{CommandType::kPrecharge, winner.bank, 0, 0},
                        winner.slot};
    }
    return {};
}

DramController::Decision DramController::decide_reference(bool is_write, Cycle now,
                                                          Cycle& next) const {
    // The pre-index linear-scan FR-FCFS passes, verbatim over the global
    // FIFO list (which preserves the old queue-vector order). Kept as the
    // oracle for kCrossCheck and the scheduler-equivalence suite.
    const u32 q = is_write ? 1 : 0;
    const QueueState& qs = queues_[q];
    const u32 banks = checker_.geometry().banks;
    const u32 active_banks = checker_.active_bank_count();

    // Pass 1 (first-ready).
    const Cycle rank_ready =
        is_write ? checker_.write_rank_earliest(now) : checker_.read_rank_earliest(now);
    if (rank_ready > now) {
        note(next, rank_ready);
    } else if (active_banks != 0) {
        for (u16 slot = qs.head; slot != kNil; slot = links_[slot].q_next) {
            const Pending& pending = slots_[slot];
            const u32 bank = pending.location.bank;
            if (!checker_.row_open(bank, pending.location.row)) continue;
            if (const Cycle earliest = checker_.rcd_earliest(bank, now); earliest > now) {
                note(next, earliest);
                continue;
            }
            const auto type = is_write ? CommandType::kWrite : CommandType::kRead;
            return Decision{
                true, 1,
                Command{type, bank, pending.location.row,
                        pending.location.col + pending.issued_bursts * timings_.burst_length},
                slot};
        }
    }

    // Pass 2: oldest request whose bank is idle -> ACT.
    const Cycle act_rank = checker_.act_rank_earliest(now);
    if (act_rank > now) {
        note(next, act_rank);
    } else if (active_banks < banks) {
        for (u16 slot = qs.head; slot != kNil; slot = links_[slot].q_next) {
            const Pending& pending = slots_[slot];
            const u32 bank = pending.location.bank;
            if (checker_.bank_active(bank)) continue;
            if (const Cycle earliest = checker_.act_bank_earliest(bank, now); earliest > now) {
                note(next, earliest);
                continue;
            }
            return Decision{
                true, 2, Command{CommandType::kActivate, bank, pending.location.row, 0}, slot};
        }
    }

    // Pass 3: oldest request blocked by a conflicting open row -> PRE.
    if (active_banks == 0) return {};  // no open row to conflict with.
    for (u16 slot = qs.head; slot != kNil; slot = links_[slot].q_next) {
        const Pending& pending = slots_[slot];
        const u32 bank = pending.location.bank;
        if (!checker_.bank_active(bank) || checker_.row_open(bank, pending.location.row)) {
            continue;
        }
        // Do not close a row that a request in either queue still wants
        // (keep the hit streak alive).
        if (wanted_count_[bank] != 0) continue;
        if (const Cycle earliest = checker_.pre_bank_earliest(bank, now); earliest > now) {
            note(next, earliest);
            continue;
        }
        return Decision{true, 3, Command{CommandType::kPrecharge, bank, 0, 0}, slot};
    }
    return {};
}

void DramController::apply(const Decision& decision, bool is_write, Cycle now) {
    Pending& pending = slots_[decision.slot];
    if (obs_ != nullptr) ++*pass_picks_[decision.pass - 1];
    switch (decision.pass) {
        case 1: {
            if (is_write != last_was_write_) {
                ++stats_.rw_turnarounds;
                last_was_write_ = is_write;
            }
            if (!pending.classified) {
                ++stats_.row_hits;
                pending.classified = true;
            }
            if (obs_ != nullptr && pending.issued_bursts == 0) {
                // Issue latency: queue acceptance to the first RD/WR command.
                (is_write ? wr_issue_lat_ : rd_issue_lat_)
                    ->add(obs_->mem_ns(now - pending.accepted_at));
            }
            issue(decision.cmd, now);
            ++pending.issued_bursts;
            if (pending.issued_bursts == pending.request.bursts) {
                const u32 q = is_write ? 1 : 0;
                QueueState& qs = queues_[q];
                const u32 bank = pending.location.bank;
                const u64 bit = u64{1} << bank;
                const Cycle latency = is_write ? timings_.cwl : timings_.cl;
                const Cycle data_end = now + latency + timings_.burst_cycles();
                // Retire: the winner is always the oldest open-row request
                // of its bank, i.e. the bank's hit-list head.
                assert(qs.hit_head[bank] == decision.slot);
                qs.hit_head[bank] = links_[decision.slot].hit_next;
                if (qs.hit_head[bank] == kNil) {
                    qs.hit_tail[bank] = kNil;
                    qs.hit_mask &= ~bit;
                }
                --wanted_count_[bank];  // it wanted the open row (pass-1 criterion).
                if (wanted_count_[bank] == 0) wanted_mask_ &= ~bit;
                unlink_request(q, bank, decision.slot);
                complete(std::move(pending), data_end, now);
                free_slot(decision.slot);
            }
            break;
        }
        case 2: {
            if (!pending.classified) {
                ++stats_.row_misses;
                pending.classified = true;
            }
            issue(decision.cmd, now);
            break;
        }
        case 3: {
            if (!pending.classified) {
                ++stats_.row_conflicts;
                pending.classified = true;
            }
            issue(decision.cmd, now);
            break;
        }
        default: break;
    }
}

bool DramController::schedule_queue(bool is_write, Cycle now) {
    const u32 q = is_write ? 1 : 0;
    if (queues_[q].size == 0) return false;

    Decision decision;
    Cycle next = kNever;
    switch (config_.scheduler) {
        case SchedulerMode::kIndexed: decision = decide_indexed(is_write, now, next); break;
        case SchedulerMode::kReference: decision = decide_reference(is_write, now, next); break;
        case SchedulerMode::kCrossCheck: {
            Cycle next_indexed = kNever;
            const Decision indexed = decide_indexed(is_write, now, next_indexed);
            decision = decide_reference(is_write, now, next);
            // The candidate accumulators only matter (and only agree) when
            // nothing issues: the reference scan stops at the winning
            // request, so on issue ticks it skips noting younger blocked
            // candidates that the bank-mask walk still visits — and tick()
            // discards next_event_ on issue anyway.
            if (!(indexed == decision) || (!decision.issue && next_indexed != next)) {
                if (protocol_status_.is_ok()) {
                    protocol_status_ = Status(
                        StatusCode::kFailedPrecondition,
                        "indexed/reference scheduler divergence at memory cycle " +
                            std::to_string(now));
                }
            }
            break;
        }
    }
    next_event_ = std::min(next_event_, next);
    if (!decision.issue) return false;
    apply(decision, is_write, now);
    return true;
}

void DramController::tick(Cycle now) {
    // Event skip: every cycle in [stall_until_ computation, stall_until_)
    // was proven to be a no-op — no response matures, no refresh comes due,
    // and no queued command's earliest_issue arrives. enqueue() resets the
    // stall, so external stimulus always re-evaluates. The resulting command
    // stream is cycle-identical to ticking every cycle (asserted by the
    // DRAM pattern tests, the timed-vs-functional property test, and the
    // scheduler-equivalence suite).
    now_ = now;  // before the stall check: enqueue() timestamps off now_.
    if (now < stall_until_) return;
    stall_until_ = 0;
    next_event_ = kNever;

    // Deliver matured completions (data fully transferred). The cached
    // minimum maturity skips the scan on the (common) ticks where nothing
    // can mature yet; noting the minimum is equivalent to noting every
    // entry's maturity, since next_event_ only keeps the min anyway.
    if (!in_flight_.empty()) {
        if (in_flight_min_ > now) {
            note_candidate(in_flight_min_);
        } else {
            Cycle min_ready = kNever;
            for (auto it = in_flight_.begin(); it != in_flight_.end();) {
                if (it->ready_at <= now) {
                    responses_.push_back(std::move(it->response));
                    it = in_flight_.erase(it);
                } else {
                    min_ready = std::min(min_ready, it->ready_at);
                    ++it;
                }
            }
            in_flight_min_ = min_ready;
            if (min_ready != kNever) note_candidate(min_ready);
        }
    }

    // Refresh has absolute priority when due. The cached gate makes the
    // common not-yet-due case one compare; noting the gate reproduces the
    // note_candidate(next_refresh_) try_refresh would have made.
    if (now >= refresh_gate_) {
        if (try_refresh(now)) return;
    } else {
        note_candidate(refresh_gate_);
    }

    // Phase selection with hysteresis.
    const std::size_t write_count = queues_[1].size;
    if (write_drain_mode_) {
        if (write_count <= config_.write_drain_low) write_drain_mode_ = false;
    } else if (write_count >= config_.write_drain_high ||
               (write_count != 0 &&
                now >= slots_[queues_[1].head].accepted_at + config_.write_age_limit)) {
        write_drain_mode_ = true;
    }
    if (!write_drain_mode_ && write_count != 0) {
        // Crossing the age limit flips the phase even with no other event.
        note_candidate(slots_[queues_[1].head].accepted_at + config_.write_age_limit);
    }

    const bool write_phase = drain_writes_now(now);
    bool issued;
    if (write_phase) {
        // Opportunistically serve reads when no write can issue this cycle.
        issued = schedule_queue(true, now) || schedule_queue(false, now);
    } else {
        issued = schedule_queue(false, now) || schedule_queue(true, now);
    }
    if (!issued) stall_until_ = next_event_;
}

}  // namespace flowcam::dram
