#include "dram/timing.hpp"

#include <cmath>
#include <stdexcept>

namespace flowcam::dram {
namespace {

/// Convert a nanosecond constraint to clock cycles, with a floor in nCK
/// (JEDEC expresses many constraints as max(n nCK, t ns)).
constexpr u32 ns_to_ck(double ns, double tck_ns, u32 floor_ck = 0) {
    const auto ck = static_cast<u32>((ns + tck_ns - 1e-9) / tck_ns);  // ceil
    return ck > floor_ck ? ck : floor_ck;
}

}  // namespace

DramTimings ddr3_1066e() {
    constexpr double tck = 1.875;
    DramTimings t;
    t.grade = "DDR3-1066E";
    t.tck_ns = tck;
    t.burst_length = 8;
    t.cl = 7;
    t.cwl = 6;
    t.trcd = 7;                              // 13.125 ns
    t.trp = 7;                               // 13.125 ns
    t.tras = ns_to_ck(37.5, tck);            // 20
    t.trc = ns_to_ck(50.625, tck);           // 27
    t.tccd = 4;
    t.trtp = ns_to_ck(7.5, tck, 4);          // 4
    t.twr = ns_to_ck(15.0, tck);             // 8
    t.twtr = ns_to_ck(7.5, tck, 4);          // 4
    t.trrd = ns_to_ck(7.5, tck, 4);          // 4 (x8 devices)
    t.tfaw = ns_to_ck(37.5, tck);            // 20
    t.trefi = ns_to_ck(7800.0, tck);         // 4160
    t.trfc = ns_to_ck(110.0, tck);           // 59 (1 Gb density)
    return t;
}

DramTimings ddr3_1333() {
    constexpr double tck = 1.5;
    DramTimings t;
    t.grade = "DDR3-1333";
    t.tck_ns = tck;
    t.burst_length = 8;
    t.cl = 9;
    t.cwl = 7;
    t.trcd = 9;
    t.trp = 9;
    t.tras = ns_to_ck(36.0, tck);            // 24
    t.trc = ns_to_ck(49.5, tck);             // 33
    t.tccd = 4;
    t.trtp = ns_to_ck(7.5, tck, 4);          // 5
    t.twr = ns_to_ck(15.0, tck);             // 10
    t.twtr = ns_to_ck(7.5, tck, 4);          // 5
    t.trrd = ns_to_ck(7.5, tck, 4);          // 5
    t.tfaw = ns_to_ck(45.0, tck);            // 30
    t.trefi = ns_to_ck(7800.0, tck);         // 5200
    t.trfc = ns_to_ck(110.0, tck);           // 74
    return t;
}

DramTimings ddr3_1600() {
    constexpr double tck = 1.25;
    DramTimings t;
    t.grade = "DDR3-1600";
    t.tck_ns = tck;
    t.burst_length = 8;
    t.cl = 11;
    t.cwl = 8;
    t.trcd = 11;
    t.trp = 11;
    t.tras = ns_to_ck(35.0, tck);            // 28
    t.trc = ns_to_ck(48.75, tck);            // 39
    t.tccd = 4;
    t.trtp = ns_to_ck(7.5, tck, 4);          // 6
    t.twr = ns_to_ck(15.0, tck);             // 12
    t.twtr = ns_to_ck(7.5, tck, 4);          // 6
    t.trrd = ns_to_ck(7.5, tck, 4);          // 6
    t.tfaw = ns_to_ck(40.0, tck);            // 32
    t.trefi = ns_to_ck(7800.0, tck);         // 6240
    t.trfc = ns_to_ck(110.0, tck);           // 88
    return t;
}

DramTimings timings_by_name(const std::string& name) {
    if (name == "DDR3-1066" || name == "DDR3-1066E") return ddr3_1066e();
    if (name == "DDR3-1333") return ddr3_1333();
    if (name == "DDR3-1600") return ddr3_1600();
    throw std::invalid_argument("unknown DRAM speed grade: " + name);
}

}  // namespace flowcam::dram
