#include "dram/pattern_sim.hpp"

#include <cassert>
#include <vector>

#include "common/rng.hpp"
#include "dram/controller.hpp"

namespace flowcam::dram {
namespace {

PatternResult finish(const TimingChecker& checker, u64 per_direction, u64 total_bursts,
                     const DramTimings& timings) {
    PatternResult result;
    result.bursts_per_direction = per_direction;
    result.total_bursts = total_bursts;
    result.elapsed_cycles = checker.dq_last_end();
    result.dq_utilization = result.elapsed_cycles == 0
                                ? 0.0
                                : static_cast<double>(checker.dq_busy_cycles()) /
                                      static_cast<double>(result.elapsed_cycles);
    // Bytes moved = bursts * BL * bus_bytes over elapsed wall time.
    const double seconds =
        static_cast<double>(result.elapsed_cycles) * timings.tck_ns * 1e-9;
    const double bytes = static_cast<double>(total_bursts) * timings.burst_length *
                         checker.geometry().bus_bytes;
    result.bandwidth_mbytes_per_s = seconds == 0.0 ? 0.0 : bytes / seconds / 1e6;
    return result;
}

/// Issue one command as early as legal on a single command bus (one command
/// per cycle): the command issues at >= cursor and the cursor advances past
/// it. Asserts protocol correctness.
void issue_asap(TimingChecker& checker, const Command& cmd, Cycle& cursor, u32 extra = 0) {
    // `extra` models controller-pipeline delay applied ON TOP of the JEDEC
    // earliest-legal time (issuing later than required is always legal).
    const Cycle at = checker.earliest_issue(cmd, cursor) + extra;
    const Status status = checker.record(cmd, at);
    assert(status.is_ok());
    (void)status;
    cursor = at + 1;
}

}  // namespace

PatternResult run_same_row_rw_pattern(const DramTimings& timings, u32 bursts_per_direction,
                                      u32 rounds, u32 turnaround_penalty) {
    Geometry geometry;  // defaults: 8 banks
    TimingChecker checker(timings, geometry);

    // Open the measurement row once; Figure 3 measures steady-state bus
    // efficiency on an open row, so activation cost is excluded by running
    // enough rounds.
    Cycle cursor = 0;
    issue_asap(checker, Command{CommandType::kActivate, 0, 0, 0}, cursor);
    u64 total = 0;
    u32 col = 0;
    const auto next_col = [&]() {
        const u32 current = col;
        col = (col + timings.burst_length) % geometry.cols;
        return current;
    };
    for (u32 round = 0; round < rounds; ++round) {
        for (u32 burst = 0; burst < bursts_per_direction; ++burst) {
            const u32 extra = (burst == 0 && round > 0) ? turnaround_penalty : 0;  // WR->RD
            issue_asap(checker, Command{CommandType::kRead, 0, 0, next_col()}, cursor, extra);
            ++total;
        }
        for (u32 burst = 0; burst < bursts_per_direction; ++burst) {
            const u32 extra = burst == 0 ? turnaround_penalty : 0;  // RD->WR
            issue_asap(checker, Command{CommandType::kWrite, 0, 0, next_col()}, cursor, extra);
            ++total;
        }
    }
    return finish(checker, bursts_per_direction, total, timings);
}

PatternResult run_random_row_single_bank(const DramTimings& timings, u32 accesses, u64 seed) {
    Geometry geometry;
    TimingChecker checker(timings, geometry);
    Xoshiro256 rng(seed);

    Cycle cursor = 0;
    u32 open_row = ~0u;
    for (u32 i = 0; i < accesses; ++i) {
        const auto row = static_cast<u32>(rng.bounded(geometry.rows));
        if (open_row != ~0u) {
            issue_asap(checker, Command{CommandType::kPrecharge, 0, 0, 0}, cursor);
        }
        issue_asap(checker, Command{CommandType::kActivate, 0, row, 0}, cursor);
        issue_asap(checker, Command{CommandType::kRead, 0, row, 0}, cursor);
        open_row = row;
    }
    return finish(checker, 1, accesses, timings);
}

PatternResult run_random_row_banked(const DramTimings& timings, u32 banks, u32 accesses,
                                    u64 seed) {
    // A linear command stream cannot overlap one bank's tRCD/tRC with
    // another's — interleaving requires a scheduler. Drive the real FR-FCFS
    // controller with random single-bucket reads spread across banks (the
    // effect the paper's Bank Selector achieves by reordering) and measure
    // the DQ utilization its checker accounted.
    Geometry geometry;
    geometry.banks = banks;
    ControllerConfig config;
    config.refresh_enabled = false;
    config.interleave_bytes = 64;
    DramController controller("banked", timings, geometry, config);
    Xoshiro256 rng(seed);

    u64 issued = 0;
    u64 completed = 0;
    Cycle now = 0;
    while (completed < accesses && now < u64{200} * accesses + 100000) {
        if (issued < accesses) {
            MemRequest request;
            request.id = issued + 1;
            // Random bucket: random row, bank rotates with the low bits.
            request.byte_address = rng.bounded(u64{geometry.rows} * banks * 16) * 64;
            request.bursts = 1;
            if (controller.enqueue(request)) ++issued;
        }
        controller.tick(now++);
        while (controller.pop_response()) ++completed;
    }

    PatternResult result;
    result.bursts_per_direction = 1;
    result.total_bursts = completed;
    result.elapsed_cycles = controller.checker().dq_last_end();
    result.dq_utilization =
        result.elapsed_cycles == 0
            ? 0.0
            : static_cast<double>(controller.checker().dq_busy_cycles()) /
                  static_cast<double>(result.elapsed_cycles);
    const double seconds = static_cast<double>(result.elapsed_cycles) * timings.tck_ns * 1e-9;
    const double bytes =
        static_cast<double>(completed) * timings.burst_length * geometry.bus_bytes;
    result.bandwidth_mbytes_per_s = seconds == 0.0 ? 0.0 : bytes / seconds / 1e6;
    return result;
}

}  // namespace flowcam::dram
