// Reproduces the paper's Figure 3 experiment: DQ bandwidth utilization for
// alternating groups of N read bursts and N write bursts to the *same row*
// of one bank at BL = 8, computed against a given speed grade.
//
// Commands are issued as early as the TimingChecker allows, exactly like an
// ideal controller with an infinitely deep queue; utilization is data-busy
// cycles over elapsed cycles. Increasing N amortizes the read<->write bus
// turnaround, which is the entire point of the paper's burst-grouping
// machinery (BWr_Gen and the DLU's request grouping).
#pragma once

#include "common/types.hpp"
#include "dram/checker.hpp"
#include "dram/timing.hpp"

namespace flowcam::dram {

struct PatternResult {
    u64 bursts_per_direction = 0;
    u64 total_bursts = 0;
    Cycle elapsed_cycles = 0;
    double dq_utilization = 0.0;
    double bandwidth_mbytes_per_s = 0.0;  ///< for a 32-bit (4-byte) bus.
};

/// Run `rounds` repetitions of (N reads, N writes) on one open row.
///
/// `turnaround_penalty` models fixed controller-pipeline overhead added on
/// every read<->write direction switch beyond raw JEDEC timing. 0 gives the
/// pure JEDEC bound; ~10 cycles reproduces the absolute utilization floor of
/// the paper's Fig. 3 (20 % at N=1), which was computed for a quarter-rate
/// vendor controller front-end rather than bare DRAM timing.
[[nodiscard]] PatternResult run_same_row_rw_pattern(const DramTimings& timings,
                                                    u32 bursts_per_direction, u32 rounds = 64,
                                                    u32 turnaround_penalty = 0);

/// Alternative pattern: all accesses random rows in one bank (worst case the
/// paper mentions: "successive read accesses to different rows of a bank"
/// pay the full row cycle time tRC).
[[nodiscard]] PatternResult run_random_row_single_bank(const DramTimings& timings, u32 accesses,
                                                       u64 seed = 42);

/// Random rows spread over all `banks` with an ideal bank-interleaving
/// scheduler — what the DLU's Bank Selector approximates.
[[nodiscard]] PatternResult run_random_row_banked(const DramTimings& timings, u32 banks,
                                                  u32 accesses, u64 seed = 42);

}  // namespace flowcam::dram
