// DDR3 command vocabulary and device geometry.
#pragma once

#include <string>

#include "common/bitops.hpp"
#include "common/types.hpp"

namespace flowcam::dram {

enum class CommandType : u8 {
    kActivate,   ///< open a row in a bank
    kPrecharge,  ///< close the open row of a bank
    kRead,       ///< burst read from the open row
    kWrite,      ///< burst write to the open row
    kRefresh,    ///< all-bank refresh
};

[[nodiscard]] constexpr const char* to_string(CommandType type) {
    switch (type) {
        case CommandType::kActivate: return "ACT";
        case CommandType::kPrecharge: return "PRE";
        case CommandType::kRead: return "RD";
        case CommandType::kWrite: return "WR";
        case CommandType::kRefresh: return "REF";
    }
    return "?";
}

struct Command {
    CommandType type;
    u32 bank = 0;
    u32 row = 0;
    u32 col = 0;  ///< burst-aligned column (in bus words).

    friend constexpr bool operator==(const Command&, const Command&) = default;
};

/// Geometry of one channel's DRAM array.
struct Geometry {
    u32 banks = 8;
    u32 rows = 16384;
    u32 cols = 1024;      ///< columns per row, in bus words.
    u32 bus_bytes = 4;    ///< data-bus width (paper: two 32-bit channels).

    [[nodiscard]] constexpr u64 row_bytes() const { return u64{cols} * bus_bytes; }
    [[nodiscard]] constexpr u64 bank_bytes() const { return row_bytes() * rows; }
    [[nodiscard]] constexpr u64 channel_bytes() const { return bank_bytes() * banks; }
};

/// Physical location of one burst.
struct BurstAddress {
    u32 bank = 0;
    u32 row = 0;
    u32 col = 0;

    friend constexpr bool operator==(const BurstAddress&, const BurstAddress&) = default;
};

/// How linear byte addresses spread across banks — the knob behind the
/// paper's "bank selection" results (Table II(A)).
enum class MapPolicy : u8 {
    kBankLow,   ///< bank bits just above the burst offset: consecutive
                ///< buckets rotate across banks (the design intent).
    kBankHigh,  ///< bank bits at the top: consecutive buckets share a bank
                ///< (adversarial, serializes on tRC).
};

/// Decodes linear byte addresses into (bank, row, col) under a MapPolicy.
///
/// `interleave_bytes` is the granule at which banks rotate under kBankLow —
/// the Flow LUT sets it to its bucket size so one bucket (possibly several
/// bursts) stays inside a single row of a single bank while *consecutive*
/// buckets rotate across banks. Must be a multiple of the burst size and
/// divide the row size.
class AddressMap {
  public:
    AddressMap(const Geometry& geometry, u32 burst_length, MapPolicy policy,
               u64 interleave_bytes = 0)
        : geometry_(geometry),
          burst_bytes_(u64{burst_length} * geometry.bus_bytes),
          interleave_(interleave_bytes == 0 ? burst_bytes_ : interleave_bytes),
          policy_(policy) {}

    /// Byte address -> burst location of the burst containing the address.
    [[nodiscard]] BurstAddress decode(u64 byte_address) const {
        BurstAddress out;
        const u64 row_bytes = geometry_.row_bytes();
        switch (policy_) {
            case MapPolicy::kBankLow: {
                // chunk index = [row | chunk-in-row | bank]
                const u64 chunk = byte_address / interleave_;
                const u64 offset = byte_address % interleave_;
                out.bank = static_cast<u32>(chunk % geometry_.banks);
                const u64 rest = chunk / geometry_.banks;
                const u64 chunks_per_row = row_bytes / interleave_;
                const u64 row_offset = (rest % chunks_per_row) * interleave_ + offset;
                out.col = align_col(row_offset);
                out.row = static_cast<u32>((rest / chunks_per_row) % geometry_.rows);
                break;
            }
            case MapPolicy::kBankHigh: {
                // byte = [bank | row | col]
                const u64 row_offset = byte_address % row_bytes;
                out.col = align_col(row_offset);
                const u64 rest = byte_address / row_bytes;
                out.row = static_cast<u32>(rest % geometry_.rows);
                out.bank = static_cast<u32>((rest / geometry_.rows) % geometry_.banks);
                break;
            }
        }
        return out;
    }

    [[nodiscard]] const Geometry& geometry() const { return geometry_; }
    [[nodiscard]] MapPolicy policy() const { return policy_; }
    [[nodiscard]] u64 interleave_bytes() const { return interleave_; }

  private:
    /// Byte offset within a row -> burst-aligned column (in bus words).
    [[nodiscard]] u32 align_col(u64 row_offset) const {
        const u64 burst_words = burst_bytes_ / geometry_.bus_bytes;
        const u64 word = row_offset / geometry_.bus_bytes;
        return static_cast<u32>(word - word % burst_words);
    }

    Geometry geometry_;
    u64 burst_bytes_;
    u64 interleave_;
    MapPolicy policy_;
};

}  // namespace flowcam::dram
