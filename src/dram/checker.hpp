// DDR3 timing-constraint tracker.
//
// Dual use:
//  * the controller asks `earliest_issue(cmd)` to schedule commands as early
//    as legally possible;
//  * tests replay command streams through `record()` which returns an error
//    for any protocol violation, so the scheduler cannot fake bandwidth.
//
// Tracked constraints (single rank): tRCD, tRP, tRAS, tRC, tCCD, tRTP, tWR,
// tWTR (via write_to_read), read-to-write turnaround, tRRD, tFAW, tREFI/tRFC,
// row state per bank, and DQ-bus occupancy (one burst at a time).
//
// Ready-time calendar: every constraint is kept as a *cached absolute bound*
// (the earliest cycle the gated command may issue, 0 = unconstrained) that is
// advanced eagerly by record() — the only state-change point — instead of
// being recomputed from last-event timestamps on every query. All earliest_*
// queries are then a single max(now, bound) load, which is what lets the
// controller's scheduler treat them as a per-bank calendar it can consult
// for every candidate bank every evaluated cycle. Each bound is a running
// max of per-event terms; since event timestamps are monotone, the running
// max equals the from-scratch formula over the latest events, so the cached
// answers are bit-identical to the recomputed ones (asserted by the timing
// tests and the controller's scheduler-equivalence suite).
#pragma once

#include <algorithm>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "dram/command.hpp"
#include "dram/timing.hpp"

namespace flowcam::dram {

class TimingChecker {
  public:
    TimingChecker(const DramTimings& timings, const Geometry& geometry);

    /// Earliest cycle >= `now` at which `cmd` may legally issue.
    [[nodiscard]] Cycle earliest_issue(const Command& cmd, Cycle now) const;

    // Split constraint views for the scheduler's pass gates: the rank-wide
    // part is shared by every candidate of a pass, so one blocked answer
    // skips the whole pass; only the cheap bank-local part is then evaluated
    // per candidate bank. Each pair composes to exactly earliest_issue.
    /// Rank-wide RD gate: tCCD / write-to-read / tRFC.
    [[nodiscard]] Cycle read_rank_earliest(Cycle now) const { return std::max(now, read_bound_); }
    /// Rank-wide WR gate: tCCD / read-to-write / tRFC.
    [[nodiscard]] Cycle write_rank_earliest(Cycle now) const {
        return std::max(now, write_bound_);
    }
    /// Bank-local RD/WR gate: tRCD after the bank's ACT.
    [[nodiscard]] Cycle rcd_earliest(u32 bank, Cycle now) const {
        return std::max(now, banks_[bank].rcd_bound);
    }
    /// Rank-wide ACT gate: tRRD / tFAW / tRFC.
    [[nodiscard]] Cycle act_rank_earliest(Cycle now) const {
        return std::max(now, act_rank_bound_);
    }
    /// Bank-local ACT gate: tRP / tRC.
    [[nodiscard]] Cycle act_bank_earliest(u32 bank, Cycle now) const {
        return std::max(now, banks_[bank].act_bound);
    }
    /// Bank-local PRE gate: tRAS / tRTP / tWR (a PRE has no rank-wide part).
    [[nodiscard]] Cycle pre_bank_earliest(u32 bank, Cycle now) const {
        return std::max(now, banks_[bank].pre_bound);
    }

    /// Validate and record a command issued at `cycle`. Returns a non-ok
    /// Status naming the violated constraint if the command is illegal
    /// (state is not updated in that case). This is the single mutation
    /// point: every cached bound the command moves is advanced here.
    Status record(const Command& cmd, Cycle cycle);

    /// True iff `bank` has `row` open. Inline: the scheduler probes it for
    /// every queue entry every evaluated cycle.
    [[nodiscard]] bool row_open(u32 bank, u32 row) const {
        const BankState& state = banks_[bank];
        return state.active && state.row == row;
    }
    [[nodiscard]] bool bank_active(u32 bank) const { return banks_[bank].active; }
    /// Banks currently holding an open row — maintained incrementally so the
    /// scheduler's pass gates are O(1).
    [[nodiscard]] u32 active_bank_count() const { return active_bank_count_; }
    /// Open row of `bank`, or -1 when the bank is idle. (The ternary must
    /// not unify to u32: -1 would silently become 0xFFFFFFFF.)
    [[nodiscard]] i64 open_row(u32 bank) const {
        return banks_[bank].active ? static_cast<i64>(banks_[bank].row) : i64{-1};
    }

    /// DQ-bus busy cycles accumulated so far (read+write bursts).
    [[nodiscard]] u64 dq_busy_cycles() const { return dq_busy_; }
    /// End cycle of the last data burst on the bus.
    [[nodiscard]] Cycle dq_last_end() const { return dq_end_; }

    [[nodiscard]] const DramTimings& timings() const { return timings_; }
    [[nodiscard]] const Geometry& geometry() const { return geometry_; }

  private:
    struct BankState {
        bool active = false;
        u32 row = 0;
        // Cached per-bank calendar (absolute cycles, 0 = unconstrained).
        Cycle rcd_bound = 0;  ///< earliest RD/WR: last ACT + tRCD.
        Cycle act_bound = 0;  ///< earliest ACT: max(last PRE + tRP, last ACT + tRC).
        Cycle pre_bound = 0;  ///< earliest PRE: max(tRAS, tRTP, write data + tWR).
    };

    [[nodiscard]] Cycle refresh_earliest(Cycle now) const {
        return std::max(now, refresh_bound_);
    }

    DramTimings timings_;
    Geometry geometry_;
    std::vector<BankState> banks_;

    // Rank-level cached bounds (absolute cycles, 0 = unconstrained).
    Cycle read_bound_ = 0;      ///< earliest RD: tCCD / WTR / tRFC.
    Cycle write_bound_ = 0;     ///< earliest WR: tCCD / RTW / tRFC.
    Cycle act_rank_bound_ = 0;  ///< earliest ACT: tRRD / tFAW / tRFC.
    Cycle refresh_bound_ = 0;   ///< earliest REF: tRFC / all-banks tRP.

    /// Last up-to-8 ACT times for the tRRD/tFAW windows — a fixed ring, so
    /// recording a command never touches the heap.
    static constexpr u32 kActHistory = 8;
    [[nodiscard]] u32 act_count() const { return act_count_; }
    [[nodiscard]] Cycle act_at(u32 index_from_oldest) const {
        return act_history_[(act_head_ + index_from_oldest) % kActHistory];
    }
    void push_act(Cycle cycle) {
        act_history_[(act_head_ + act_count_) % kActHistory] = cycle;
        if (act_count_ < kActHistory) {
            ++act_count_;
        } else {
            act_head_ = (act_head_ + 1) % kActHistory;
        }
    }
    Cycle act_history_[kActHistory] = {};
    u32 act_head_ = 0;
    u32 act_count_ = 0;

    u64 dq_busy_ = 0;
    Cycle dq_end_ = 0;
    u32 active_bank_count_ = 0;
};

}  // namespace flowcam::dram
