// DDR3 timing-constraint tracker.
//
// Dual use:
//  * the controller asks `earliest_issue(cmd)` to schedule commands as early
//    as legally possible;
//  * tests replay command streams through `record()` which returns an error
//    for any protocol violation, so the scheduler cannot fake bandwidth.
//
// Tracked constraints (single rank): tRCD, tRP, tRAS, tRC, tCCD, tRTP, tWR,
// tWTR (via write_to_read), read-to-write turnaround, tRRD, tFAW, tREFI/tRFC,
// row state per bank, and DQ-bus occupancy (one burst at a time).
#pragma once

#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "dram/command.hpp"
#include "dram/timing.hpp"

namespace flowcam::dram {

class TimingChecker {
  public:
    TimingChecker(const DramTimings& timings, const Geometry& geometry);

    /// Earliest cycle >= `now` at which `cmd` may legally issue.
    [[nodiscard]] Cycle earliest_issue(const Command& cmd, Cycle now) const;

    // Split constraint views for the scheduler's pass gates: the rank-wide
    // part is shared by every candidate of a pass, so one blocked answer
    // skips the whole queue scan; only the cheap bank-local part is then
    // evaluated per entry. Each pair composes to exactly earliest_issue.
    /// Rank-wide RD gate: tCCD / write-to-read / tRFC.
    [[nodiscard]] Cycle read_rank_earliest(Cycle now) const { return read_earliest(now); }
    /// Rank-wide WR gate: tCCD / read-to-write / tRFC.
    [[nodiscard]] Cycle write_rank_earliest(Cycle now) const { return write_earliest(now); }
    /// Bank-local RD/WR gate: tRCD after the bank's ACT.
    [[nodiscard]] Cycle rcd_earliest(u32 bank, Cycle now) const;
    /// Rank-wide ACT gate: tRRD / tFAW / tRFC.
    [[nodiscard]] Cycle act_rank_earliest(Cycle now) const;
    /// Bank-local ACT gate: tRP / tRC.
    [[nodiscard]] Cycle act_bank_earliest(u32 bank, Cycle now) const;

    /// Validate and record a command issued at `cycle`. Returns a non-ok
    /// Status naming the violated constraint if the command is illegal
    /// (state is not updated in that case).
    Status record(const Command& cmd, Cycle cycle);

    /// True iff `bank` has `row` open. Inline: the scheduler probes it for
    /// every queue entry every evaluated cycle.
    [[nodiscard]] bool row_open(u32 bank, u32 row) const {
        const BankState& state = banks_[bank];
        return state.active && state.row == row;
    }
    [[nodiscard]] bool bank_active(u32 bank) const { return banks_[bank].active; }
    /// Banks currently holding an open row — maintained incrementally so the
    /// scheduler's pass gates are O(1).
    [[nodiscard]] u32 active_bank_count() const { return active_bank_count_; }
    /// Open row of `bank`, or -1 when the bank is idle. (The ternary must
    /// not unify to u32: -1 would silently become 0xFFFFFFFF.)
    [[nodiscard]] i64 open_row(u32 bank) const {
        return banks_[bank].active ? static_cast<i64>(banks_[bank].row) : i64{-1};
    }

    /// DQ-bus busy cycles accumulated so far (read+write bursts).
    [[nodiscard]] u64 dq_busy_cycles() const { return dq_busy_; }
    /// End cycle of the last data burst on the bus.
    [[nodiscard]] Cycle dq_last_end() const { return dq_end_; }

    [[nodiscard]] const DramTimings& timings() const { return timings_; }
    [[nodiscard]] const Geometry& geometry() const { return geometry_; }

  private:
    struct BankState {
        bool active = false;
        u32 row = 0;
        Cycle last_act = 0;
        Cycle last_pre = 0;
        Cycle last_read = 0;        ///< command time
        Cycle last_write = 0;       ///< command time
        bool ever_act = false;
        bool ever_pre = false;
        bool ever_read = false;
        bool ever_write = false;
    };

    [[nodiscard]] Cycle act_earliest(u32 bank, Cycle now) const;
    [[nodiscard]] Cycle pre_earliest(u32 bank, Cycle now) const;
    [[nodiscard]] Cycle read_earliest(Cycle now) const;
    [[nodiscard]] Cycle write_earliest(Cycle now) const;
    [[nodiscard]] Cycle refresh_earliest(Cycle now) const;

    DramTimings timings_;
    Geometry geometry_;
    std::vector<BankState> banks_;

    // Rank-level state.
    Cycle last_read_cmd_ = 0;
    Cycle last_write_cmd_ = 0;
    bool ever_read_ = false;
    bool ever_write_ = false;
    Cycle last_refresh_ = 0;
    bool ever_refresh_ = false;

    /// Last up-to-8 ACT times for the tRRD/tFAW windows — a fixed ring, so
    /// recording a command never touches the heap.
    static constexpr u32 kActHistory = 8;
    [[nodiscard]] u32 act_count() const { return act_count_; }
    [[nodiscard]] Cycle act_at(u32 index_from_oldest) const {
        return act_history_[(act_head_ + index_from_oldest) % kActHistory];
    }
    void push_act(Cycle cycle) {
        act_history_[(act_head_ + act_count_) % kActHistory] = cycle;
        if (act_count_ < kActHistory) {
            ++act_count_;
        } else {
            act_head_ = (act_head_ + 1) % kActHistory;
        }
    }
    Cycle act_history_[kActHistory] = {};
    u32 act_head_ = 0;
    u32 act_count_ = 0;

    u64 dq_busy_ = 0;
    Cycle dq_end_ = 0;
    u32 active_bank_count_ = 0;
};

}  // namespace flowcam::dram
