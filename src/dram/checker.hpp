// DDR3 timing-constraint tracker.
//
// Dual use:
//  * the controller asks `earliest_issue(cmd)` to schedule commands as early
//    as legally possible;
//  * tests replay command streams through `record()` which returns an error
//    for any protocol violation, so the scheduler cannot fake bandwidth.
//
// Tracked constraints (single rank): tRCD, tRP, tRAS, tRC, tCCD, tRTP, tWR,
// tWTR (via write_to_read), read-to-write turnaround, tRRD, tFAW, tREFI/tRFC,
// row state per bank, and DQ-bus occupancy (one burst at a time).
#pragma once

#include <deque>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "dram/command.hpp"
#include "dram/timing.hpp"

namespace flowcam::dram {

class TimingChecker {
  public:
    TimingChecker(const DramTimings& timings, const Geometry& geometry);

    /// Earliest cycle >= `now` at which `cmd` may legally issue.
    [[nodiscard]] Cycle earliest_issue(const Command& cmd, Cycle now) const;

    /// Validate and record a command issued at `cycle`. Returns a non-ok
    /// Status naming the violated constraint if the command is illegal
    /// (state is not updated in that case).
    Status record(const Command& cmd, Cycle cycle);

    /// True iff `bank` has `row` open.
    [[nodiscard]] bool row_open(u32 bank, u32 row) const;
    [[nodiscard]] bool bank_active(u32 bank) const { return banks_[bank].active; }
    [[nodiscard]] i64 open_row(u32 bank) const { return banks_[bank].active ? banks_[bank].row : -1; }

    /// DQ-bus busy cycles accumulated so far (read+write bursts).
    [[nodiscard]] u64 dq_busy_cycles() const { return dq_busy_; }
    /// End cycle of the last data burst on the bus.
    [[nodiscard]] Cycle dq_last_end() const { return dq_end_; }

    [[nodiscard]] const DramTimings& timings() const { return timings_; }
    [[nodiscard]] const Geometry& geometry() const { return geometry_; }

  private:
    struct BankState {
        bool active = false;
        u32 row = 0;
        Cycle last_act = 0;
        Cycle last_pre = 0;
        Cycle last_read = 0;        ///< command time
        Cycle last_write = 0;       ///< command time
        bool ever_act = false;
        bool ever_pre = false;
        bool ever_read = false;
        bool ever_write = false;
    };

    [[nodiscard]] Cycle act_earliest(u32 bank, Cycle now) const;
    [[nodiscard]] Cycle pre_earliest(u32 bank, Cycle now) const;
    [[nodiscard]] Cycle read_earliest(Cycle now) const;
    [[nodiscard]] Cycle write_earliest(Cycle now) const;
    [[nodiscard]] Cycle refresh_earliest(Cycle now) const;

    DramTimings timings_;
    Geometry geometry_;
    std::vector<BankState> banks_;

    // Rank-level state.
    Cycle last_read_cmd_ = 0;
    Cycle last_write_cmd_ = 0;
    bool ever_read_ = false;
    bool ever_write_ = false;
    Cycle last_refresh_ = 0;
    bool ever_refresh_ = false;
    std::deque<Cycle> act_history_;  ///< for the tFAW window (last 4 ACTs).

    u64 dq_busy_ = 0;
    Cycle dq_end_ = 0;
};

}  // namespace flowcam::dram
