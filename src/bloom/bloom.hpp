// Bloom filter substrates — the related-work baseline family ([2]-[5], [8]
// in the paper). Three variants:
//   * BloomFilter        — classic k-hash bit vector.
//   * CountingBloom      — 4-bit counters, supports deletion (flow timeout).
//   * ParallelBloom      — k independent banks probed concurrently, one hash
//                          each, as in the parallel bloom filter papers the
//                          related-work section cites; models on-chip BRAM
//                          banks with single-port access.
#pragma once

#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "common/bitops.hpp"
#include "common/types.hpp"
#include "hash/hash_function.hpp"

namespace flowcam::bloom {

/// Theoretical false-positive probability for an (m, n, k) Bloom filter.
[[nodiscard]] inline double theoretical_fpp(u64 bits, u64 items, u32 hashes) {
    if (bits == 0) return 1.0;
    const double exponent = -static_cast<double>(hashes) * static_cast<double>(items) /
                            static_cast<double>(bits);
    return std::pow(1.0 - std::exp(exponent), hashes);
}

/// Optimal hash count k = (m/n) ln 2, at least 1.
[[nodiscard]] inline u32 optimal_hash_count(u64 bits, u64 expected_items) {
    if (expected_items == 0) return 1;
    const double k = std::log(2.0) * static_cast<double>(bits) / static_cast<double>(expected_items);
    return std::max<u32>(1, static_cast<u32>(std::lround(k)));
}

class BloomFilter {
  public:
    BloomFilter(u64 bit_count, u32 hash_count, hash::HashKind kind = hash::HashKind::kH3,
                u64 seed = 1);

    void add(std::span<const u8> key);
    [[nodiscard]] bool maybe_contains(std::span<const u8> key) const;

    [[nodiscard]] u64 bit_count() const { return bits_.size() * 64; }
    [[nodiscard]] u32 hash_count() const { return static_cast<u32>(hashes_.size()); }
    [[nodiscard]] u64 items_added() const { return items_; }
    [[nodiscard]] u64 set_bit_count() const;
    void clear();

  private:
    [[nodiscard]] u64 position(std::size_t hash_index, std::span<const u8> key) const;

    std::vector<u64> bits_;
    u64 bit_mask_;  // bit_count - 1 (power of two)
    std::vector<std::unique_ptr<hash::HashFunction>> hashes_;
    u64 items_ = 0;
};

class CountingBloom {
  public:
    CountingBloom(u64 counter_count, u32 hash_count, hash::HashKind kind = hash::HashKind::kH3,
                  u64 seed = 1);

    void add(std::span<const u8> key);
    /// Decrement the key's counters; saturated counters are left untouched
    /// (the standard safe-deletion rule).
    void remove(std::span<const u8> key);
    [[nodiscard]] bool maybe_contains(std::span<const u8> key) const;

    [[nodiscard]] u64 counter_count() const { return counters_.size(); }
    [[nodiscard]] u64 saturation_events() const { return saturations_; }

  private:
    static constexpr u8 kMaxCount = 15;  // 4-bit counters, as in hardware.

    [[nodiscard]] u64 position(std::size_t hash_index, std::span<const u8> key) const;

    std::vector<u8> counters_;
    u64 mask_;
    std::vector<std::unique_ptr<hash::HashFunction>> hashes_;
    u64 saturations_ = 0;
};

/// k single-hash banks probed in parallel; a key is "present" iff every bank
/// agrees. Equivalent filtering power to a classic Bloom filter with k
/// hashes and m/k bits per bank, but each bank is an independently ported
/// memory — the property the parallel-bloom papers exploit for line rate.
class ParallelBloom {
  public:
    ParallelBloom(u32 banks, u64 bits_per_bank, hash::HashKind kind = hash::HashKind::kH3,
                  u64 seed = 1);

    void add(std::span<const u8> key);
    [[nodiscard]] bool maybe_contains(std::span<const u8> key) const;

    [[nodiscard]] u32 bank_count() const { return static_cast<u32>(banks_.size()); }

  private:
    std::vector<BloomFilter> banks_;
};

}  // namespace flowcam::bloom
