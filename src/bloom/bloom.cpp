#include "bloom/bloom.hpp"

#include <bit>
#include <cassert>

namespace flowcam::bloom {

BloomFilter::BloomFilter(u64 bit_count, u32 hash_count, hash::HashKind kind, u64 seed) {
    const u64 rounded = ceil_pow2(std::max<u64>(bit_count, 64));
    bits_.assign(rounded / 64, 0);
    bit_mask_ = rounded - 1;
    hashes_.reserve(hash_count);
    for (u32 i = 0; i < hash_count; ++i) {
        hashes_.push_back(hash::make_hash(kind, seed + 0x51ed2701 * (i + 1)));
    }
}

u64 BloomFilter::position(std::size_t hash_index, std::span<const u8> key) const {
    return hashes_[hash_index]->digest(key) & bit_mask_;
}

void BloomFilter::add(std::span<const u8> key) {
    for (std::size_t i = 0; i < hashes_.size(); ++i) {
        const u64 pos = position(i, key);
        bits_[pos / 64] |= u64{1} << (pos % 64);
    }
    ++items_;
}

bool BloomFilter::maybe_contains(std::span<const u8> key) const {
    for (std::size_t i = 0; i < hashes_.size(); ++i) {
        const u64 pos = position(i, key);
        if ((bits_[pos / 64] & (u64{1} << (pos % 64))) == 0) return false;
    }
    return true;
}

u64 BloomFilter::set_bit_count() const {
    u64 total = 0;
    for (const u64 word : bits_) total += static_cast<u64>(std::popcount(word));
    return total;
}

void BloomFilter::clear() {
    bits_.assign(bits_.size(), 0);
    items_ = 0;
}

CountingBloom::CountingBloom(u64 counter_count, u32 hash_count, hash::HashKind kind, u64 seed) {
    const u64 rounded = ceil_pow2(std::max<u64>(counter_count, 64));
    counters_.assign(rounded, 0);
    mask_ = rounded - 1;
    hashes_.reserve(hash_count);
    for (u32 i = 0; i < hash_count; ++i) {
        hashes_.push_back(hash::make_hash(kind, seed + 0x71d67fff * (i + 1)));
    }
}

u64 CountingBloom::position(std::size_t hash_index, std::span<const u8> key) const {
    return hashes_[hash_index]->digest(key) & mask_;
}

void CountingBloom::add(std::span<const u8> key) {
    for (std::size_t i = 0; i < hashes_.size(); ++i) {
        u8& counter = counters_[position(i, key)];
        if (counter == kMaxCount) {
            ++saturations_;
        } else {
            ++counter;
        }
    }
}

void CountingBloom::remove(std::span<const u8> key) {
    for (std::size_t i = 0; i < hashes_.size(); ++i) {
        u8& counter = counters_[position(i, key)];
        // A saturated counter can never be decremented safely; a zero counter
        // indicates a remove of a key that was never added (caller bug, but
        // we keep the filter sound rather than underflow).
        if (counter > 0 && counter < kMaxCount) --counter;
    }
}

bool CountingBloom::maybe_contains(std::span<const u8> key) const {
    for (std::size_t i = 0; i < hashes_.size(); ++i) {
        if (counters_[position(i, key)] == 0) return false;
    }
    return true;
}

ParallelBloom::ParallelBloom(u32 banks, u64 bits_per_bank, hash::HashKind kind, u64 seed) {
    assert(banks > 0);
    banks_.reserve(banks);
    for (u32 i = 0; i < banks; ++i) {
        banks_.emplace_back(bits_per_bank, 1, kind, seed + 0x2545f491 * (i + 1));
    }
}

void ParallelBloom::add(std::span<const u8> key) {
    for (auto& bank : banks_) bank.add(key);
}

bool ParallelBloom::maybe_contains(std::span<const u8> key) const {
    for (const auto& bank : banks_) {
        if (!bank.maybe_contains(key)) return false;
    }
    return true;
}

}  // namespace flowcam::bloom
