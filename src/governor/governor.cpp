#include "governor/governor.hpp"

namespace flowcam::governor {
namespace {

constexpr const char* kLevelNames[4] = {"L0", "L1", "L2", "L3"};

}  // namespace

OverloadGovernor::OverloadGovernor(const GovernorConfig& config,
                                   analyzer::TrafficAnalyzer& analyzer, obs::Recorder* recorder)
    : config_(config), analyzer_(analyzer), obs_(recorder) {
    // Self-healing threshold bands: enters ascend, each exit sits at or
    // below its enter and at or above the exit one level down — a crossed
    // band would make a level unreachable or oscillate without hysteresis.
    config_.enter_l2 = std::max(config_.enter_l2, config_.enter_l1);
    config_.enter_l3 = std::max(config_.enter_l3, config_.enter_l2);
    config_.exit_l1 = std::min(config_.exit_l1, config_.enter_l1);
    config_.exit_l2 = std::clamp(config_.exit_l2, config_.exit_l1, config_.enter_l2);
    config_.exit_l3 = std::clamp(config_.exit_l3, config_.exit_l2, config_.enter_l3);

    core::FlowLut& lut = analyzer_.lut();
    base_deadline_ = lut.config().reservation_deadline;
    lut.prepare_policy_switching(config_.eviction);
    apply_level(0);

    if (obs_ != nullptr) {
        const auto cell = [&](const char* name) {
            auto result = obs_->register_counter(name);
            return result ? result.value() : &obs_scrap_cell_;
        };
        obs_level_ = cell("governor.level");
        obs_up_ = cell("governor.transitions_up");
        obs_down_ = cell("governor.transitions_down");
        obs_track_ = obs_->track("governor");
    }
}

double OverloadGovernor::enter_threshold(u64 level) const {
    switch (level) {
        case 1: return config_.enter_l1;
        case 2: return config_.enter_l2;
        default: return config_.enter_l3;
    }
}

double OverloadGovernor::exit_threshold(u64 level) const {
    switch (level) {
        case 1: return config_.exit_l1;
        case 2: return config_.exit_l2;
        default: return config_.exit_l3;
    }
}

void OverloadGovernor::apply_level(u64 level) {
    using core::AdmissionPolicy;
    using core::EvictionPolicy;
    const AdmissionPolicy admission = level == 0   ? AdmissionPolicy::kAlways
                                      : level == 3 ? AdmissionPolicy::kRejectFull
                                                   : AdmissionPolicy::kProbabilistic;
    const EvictionPolicy eviction = level >= 2 ? config_.eviction : EvictionPolicy::kNone;
    const Cycle deadline = level >= 3 ? config_.reclaim_deadline : base_deadline_;
    analyzer_.lut().apply_overload_policies(admission, eviction, deadline);
}

void OverloadGovernor::transition_to(u64 level, Cycle now) {
    const u64 prev = level_;
    if (obs_ != nullptr && prev > 0) {
        // One span per escalated-level episode on the "governor" track, so
        // the staircase lines up against overlay/fault windows in Perfetto.
        obs_->event_span(obs_track_, kLevelNames[prev], obs_->sys_ns(level_since_),
                         obs_->sys_ns(now - level_since_), "level", prev);
    }
    ++stats_.transitions;
    if (level > prev) {
        ++stats_.transitions_up;
        ++*obs_up_;
    } else {
        ++stats_.transitions_down;
        ++*obs_down_;
    }
    stats_.max_level = std::max(stats_.max_level, level);
    if (level == 0 && prev > 0) {
        // Recovered: the walk-down is measured from the moment the score
        // last fell below the L1 exit threshold (pressure cleared), and the
        // SLO judges the worst episode of the run.
        const u64 walk = pressure_clear_ != kNever && now >= pressure_clear_
                             ? now - pressure_clear_
                             : 0;
        stats_.recovery_cycles = std::max(stats_.recovery_cycles, walk);
        pressure_clear_ = kNever;
    }
    level_ = level;
    level_since_ = now;
    *obs_level_ = level_;
    apply_level(level);
}

void OverloadGovernor::sample(Cycle now) {
    ++stats_.samples;
    const core::FlowLut& lut = analyzer_.lut();
    const core::FlowLutStats& stats = lut.stats();
    const core::FlowLutConfig& lut_config = lut.config();

    // Unified load fraction — the same definition under_pressure() uses:
    // whichever of the whole table and the collision CAM is fuller.
    const double capacity = static_cast<double>(lut_config.table_capacity());
    const double occ =
        capacity == 0.0 ? 0.0 : static_cast<double>(lut.table().size()) / capacity;
    const double cam_capacity = static_cast<double>(lut_config.cam_capacity);
    const double cam = cam_capacity == 0.0
                           ? 0.0
                           : static_cast<double>(lut.table().cam_entries()) / cam_capacity;
    const double load = std::max(occ, cam);

    if (have_prev_) {
        const double delta = load - prev_occupancy_;
        slope_ewma_ = (1.0 - config_.alpha) * slope_ewma_ + config_.alpha * delta;
    }
    const double interval = static_cast<double>(config_.interval);
    const auto rate = [interval](u64 current, u64 previous) {
        const double events = static_cast<double>(current - previous);
        return std::min(1.0, events / interval);
    };
    const double drop_rate = have_prev_ ? rate(stats.drops, prev_drops_) : 0.0;
    const double reclaim_rate =
        have_prev_ ? rate(stats.reservations_reclaimed, prev_reclaims_) : 0.0;
    const double buffer_depth = static_cast<double>(analyzer_.config().packet_buffer_depth);
    const double buffer_frac =
        buffer_depth == 0.0
            ? 0.0
            : static_cast<double>(analyzer_.packet_buffer_size()) / buffer_depth;

    score_ = load + config_.slope_gain * std::max(0.0, slope_ewma_) +
             config_.drop_weight * drop_rate + config_.reclaim_weight * reclaim_rate +
             config_.buffer_weight * buffer_frac;

    prev_occupancy_ = load;
    prev_drops_ = stats.drops;
    prev_reclaims_ = stats.reservations_reclaimed;
    have_prev_ = true;
    *obs_level_ = level_;

    // Recovery anchor before any transition: "pressure cleared" means the
    // score sits below the L1 exit threshold while still escalated.
    if (level_ > 0) {
        if (score_ < config_.exit_l1) {
            if (pressure_clear_ == kNever) pressure_clear_ = now;
        } else {
            pressure_clear_ = kNever;
        }
    }

    // Escalate straight to the highest level whose enter threshold the
    // score meets; de-escalate one level per elapsed dwell.
    u64 target = level_;
    for (u64 k = 3; k > level_; --k) {
        if (score_ >= enter_threshold(k)) {
            target = k;
            break;
        }
    }
    if (target > level_) {
        transition_to(target, now);
        below_since_ = kNever;
        return;
    }
    if (level_ == 0) return;
    if (score_ < exit_threshold(level_)) {
        if (below_since_ == kNever) below_since_ = now;
        if (now - below_since_ >= config_.dwell) {
            transition_to(level_ - 1, now);
            below_since_ = kNever;
        }
    } else {
        below_since_ = kNever;
    }
}

void OverloadGovernor::finish(Cycle now) {
    if (obs_ != nullptr && level_ > 0 && now > level_since_) {
        obs_->event_span(obs_track_, kLevelNames[level_], obs_->sys_ns(level_since_),
                         obs_->sys_ns(now - level_since_), "level", level_);
    }
}

}  // namespace flowcam::governor
