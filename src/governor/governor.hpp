// Adaptive overload governor: a deterministic closed-loop controller that
// samples the analyzer stack's pressure signals every `governor.interval`
// cycles and walks the Flow LUT through staged degradation levels —
//
//   L0  nominal        always-admit, no eviction, base reclaim deadline
//   L1  shedding       probabilistic admission with the Bloom re-admit
//                      front-end (one-shot flood keys lose the coin, real
//                      flows' second packets always return)
//   L2  recycling      L1 + the configured eviction policy engages
//   L3  survival       reject-full admission + the aggressive reclaim
//                      deadline (`governor.reclaim_deadline`)
//
// The composite pressure score is built from the same signals the obs
// sampler exposes as time series: bucket-table / collision-CAM occupancy
// fractions (the max of the two — the same unified definition
// FlowLut::under_pressure uses), an EWMA of the occupancy slope
// (anticipatory: a fast-filling table escalates before it is full), the
// drop rate and reservation-reclaim rate since the last sample, and the
// packet-buffer fill fraction.
//
// Transitions are hysteretic: escalation is immediate (straight to the
// highest level whose enter threshold the score meets), de-escalation walks
// down one level at a time and only after the score has stayed below the
// current level's exit threshold for `governor.dwell` consecutive cycles.
// Every transition bumps an obs counter and closes a trace span on the
// "governor" track, so a Perfetto load shows the level staircase against
// the fault/overlay windows.
//
// Recovery SLO: the governor timestamps the moment the score last fell
// below the L1 exit threshold while escalated ("pressure cleared") and, on
// reaching L0, records the walk-down time. The contract asserted by tests,
// check.sh and the CI chaos arm is `slo_ok()`: the run must end at L0 with
// the worst walk-down within `governor.recovery_budget` cycles.
//
// Everything here is opt-in (`governor.on`, default off): when off, no
// ticker is constructed and default-config runs stay byte-identical to the
// golden sweep. When on, the governor owns the admission/eviction levers —
// `lut.admission` / `lut.eviction` are overridden from the first cycle (L0
// is always nominal). All state is plain arithmetic over deterministic
// inputs, so governor runs are repeat-, lane-count- and thread-count-
// invariant like everything else in the simulator.
#pragma once

#include <algorithm>

#include "analyzer/analyzer.hpp"
#include "core/config.hpp"
#include "obs/obs.hpp"
#include "sim/ticker.hpp"

namespace flowcam::governor {

/// `governor.*` ConfigPatch keys. Defaults are tuned for the policy-grid
/// geometry (small tables under syn_flood); every knob is patchable.
struct GovernorConfig {
    bool on = false;    ///< master switch; off = no ticker, byte-identical runs.
    u64 interval = 256; ///< cycles between pressure samples.

    // --- Composite pressure score ----------------------------------------
    double alpha = 0.25;         ///< EWMA weight for the occupancy slope.
    double slope_gain = 64.0;    ///< score boost per unit positive slope.
    double drop_weight = 0.15;   ///< weight of the drop rate since last sample.
    double reclaim_weight = 0.05;///< weight of the reservation-reclaim rate.
    double buffer_weight = 0.10; ///< weight of the packet-buffer fill fraction.

    // --- Per-level enter/exit thresholds (hysteresis bands) ---------------
    double enter_l1 = 0.70;
    double enter_l2 = 0.85;
    double enter_l3 = 0.97;
    double exit_l1 = 0.55;
    double exit_l2 = 0.75;
    double exit_l3 = 0.90;

    /// Cycles the score must stay below the current level's exit threshold
    /// before one step down (per level, so a full L3->L0 walk costs 3 dwells).
    u64 dwell = 2048;
    /// Recovery SLO: worst allowed walk-down (pressure-clear -> L0) in cycles.
    u64 recovery_budget = 100'000;

    /// Eviction policy L2/L3 engage (the zoo's measured winners are
    /// cam-oldest and clock; clock needs no auxiliary order state).
    core::EvictionPolicy eviction = core::EvictionPolicy::kClock;
    /// Aggressive reservation-reclaim deadline applied at L3 (base deadline
    /// restored below L3). Inert unless `lut.reservation` is on.
    Cycle reclaim_deadline = 256;
};

/// Transition/outcome counters, harvested into ScenarioMetrics (summed in
/// slice order by the sharded merge; levels merge by max, slo by AND).
struct GovernorStats {
    u64 samples = 0;
    u64 transitions = 0;       ///< all level changes.
    u64 transitions_up = 0;
    u64 transitions_down = 0;
    u64 max_level = 0;         ///< highest level reached.
    u64 recovery_cycles = 0;   ///< worst pressure-clear -> L0 walk-down.
};

class OverloadGovernor {
  public:
    /// Binds to the analyzer stack, pre-arms the Flow LUT's runtime policy
    /// switching (Bloom front-end, CAM-order tracking — all allocation
    /// happens here, never mid-run) and applies the L0 nominal profile.
    /// `recorder` may be null (obs off).
    OverloadGovernor(const GovernorConfig& config, analyzer::TrafficAnalyzer& analyzer,
                     obs::Recorder* recorder);

    /// One closed-loop step: sample signals, update the score, transition.
    void sample(Cycle now);

    /// End-of-run: close the open trace span and the final level episode.
    void finish(Cycle now);

    [[nodiscard]] u64 level() const { return level_; }
    [[nodiscard]] double score() const { return score_; }
    [[nodiscard]] const GovernorStats& stats() const { return stats_; }

    /// The recovery-SLO verdict: the governor either never escalated, or it
    /// is back at L0 and its worst walk-down fit inside the budget.
    [[nodiscard]] bool slo_ok() const {
        return level_ == 0 && stats_.recovery_cycles <= config_.recovery_budget;
    }

  private:
    void transition_to(u64 level, Cycle now);
    void apply_level(u64 level);
    [[nodiscard]] double enter_threshold(u64 level) const;
    [[nodiscard]] double exit_threshold(u64 level) const;

    GovernorConfig config_;
    analyzer::TrafficAnalyzer& analyzer_;
    obs::Recorder* obs_ = nullptr;
    Cycle base_deadline_ = 0;  ///< lut.reservation_deadline before we touched it.

    u64 level_ = 0;
    double score_ = 0.0;
    double slope_ewma_ = 0.0;
    double prev_occupancy_ = 0.0;
    u64 prev_drops_ = 0;
    u64 prev_reclaims_ = 0;
    bool have_prev_ = false;

    static constexpr Cycle kNever = ~Cycle{0};
    Cycle below_since_ = kNever;     ///< dwell timer for the next step down.
    Cycle pressure_clear_ = kNever;  ///< recovery anchor: score < exit_l1 while escalated.
    Cycle level_since_ = 0;          ///< start of the current level episode (trace span).

    GovernorStats stats_;
    u64 obs_scrap_cell_ = 0;
    u64* obs_level_ = &obs_scrap_cell_;
    u64* obs_up_ = &obs_scrap_cell_;
    u64* obs_down_ = &obs_scrap_cell_;
    u16 obs_track_ = 0;
};

/// Engine adapter: samples every `interval` cycles and pins the idle
/// fast-forward to the sampling grid — unlike the obs sampler, the governor
/// must observe pressure decay during quiet stretches or it could never
/// walk back to L0, so stretching samples across idle jumps is not an
/// option. Governor-on runs therefore fast-forward in interval-sized hops;
/// governor-off runs don't construct the ticker at all.
class GovernorTicker final : public sim::Ticker {
  public:
    explicit GovernorTicker(OverloadGovernor& governor, u64 interval)
        : governor_(governor), interval_(interval == 0 ? 1 : interval) {}

    void tick(Cycle now) override {
        last_now_ = now;
        if (now < next_due_) return;
        governor_.sample(now);
        next_due_ = now + interval_;
    }

    [[nodiscard]] std::string name() const override { return "overload-governor"; }

    [[nodiscard]] u64 idle_cycles_hint() const override {
        return next_due_ > last_now_ + 1 ? next_due_ - last_now_ - 1 : 0;
    }
    void skip(u64 cycles) override { last_now_ += cycles; }

  private:
    OverloadGovernor& governor_;
    u64 interval_;
    Cycle next_due_ = 0;
    Cycle last_now_ = 0;
};

}  // namespace flowcam::governor
