#include "fpga/resource_model.hpp"

#include "common/bitops.hpp"

namespace flowcam::fpga {
namespace {

/// Dual-clock FIFO: M20K storage plus pointer/CDC logic.
BlockUsage fifo(const std::string& name, u64 depth, u64 width_bits) {
    BlockUsage usage;
    usage.block = name;
    usage.memory_bits = depth * width_bits;
    const u32 address_bits = log2_pow2(ceil_pow2(depth));
    usage.alms = 40 + 6ull * address_bits;              // pointers, compare, CDC
    usage.registers = 60 + 8ull * address_bits;
    return usage;
}

}  // namespace

ResourceReport estimate(const core::FlowLutConfig& config, u32 tuple_bits) {
    ResourceReport report;
    const u64 entry_bits = u64{config.entry_bytes} * 8;
    const u64 bucket_bits = entry_bits * config.ways;
    const u32 index_bits = log2_pow2(ceil_pow2(config.buckets_per_mem));
    const u64 fid_bits = 50;  // 48-bit slot + 2-bit where.

    // --- Two DDR3 UniPhy quarter-rate controllers -------------------------
    // Calibrated against Altera's published UniPhy utilization for 32-bit
    // quarter-rate DDR3 on Stratix V (~5 kALM, ~7 kregs, PHY read FIFOs).
    for (int channel = 0; channel < 2; ++channel) {
        BlockUsage controller;
        controller.block = std::string("ddr3-uniphy-") + (channel == 0 ? "A" : "B");
        controller.alms = 4500;
        controller.registers = 9500;
        controller.memory_bits = 147456;  // PHY read/write leveling FIFOs
        report.blocks.push_back(controller);
    }

    // --- Hash blocks (H3 XOR matrices, two per path) ----------------------
    BlockUsage hash;
    hash.block = "index-generation";
    // One XOR tree per index bit over tuple_bits inputs, 2 hashes x 2 paths.
    hash.alms = 4ull * index_bits * (tuple_bits / 6 + 1);
    hash.registers = 4ull * (tuple_bits + index_bits);
    report.blocks.push_back(hash);

    // --- Collision CAM -----------------------------------------------------
    // Register-based CAM: storage + one comparator per entry + encoder.
    BlockUsage cam;
    cam.block = "collision-cam";
    cam.registers = config.cam_capacity * 3;  // valid + aging + lock bits
    cam.memory_bits = config.cam_capacity * (tuple_bits + fid_bits);
    cam.alms = config.cam_capacity * (tuple_bits / 32 + 1);  // match trees
    report.blocks.push_back(cam);

    // --- Sequencer (load balancer + CAM stage arbitration) ----------------
    BlockUsage sequencer;
    sequencer.block = "sequencer";
    sequencer.alms = 450;
    sequencer.registers = 2ull * (tuple_bits + 2 * index_bits + 64);
    report.blocks.push_back(sequencer);
    report.blocks.push_back(fifo("input-fifo", config.input_depth,
                                 tuple_bits + 2ull * index_bits + 96));

    // --- Per path: DLU (Bank Sel + Req Filter + Mem Ctrl), Flow Match,
    //     Updt (Req_Arb + BWr_Gen) ------------------------------------------
    for (int path = 0; path < 2; ++path) {
        const std::string suffix = path == 0 ? "-A" : "-B";
        BlockUsage dlu;
        dlu.block = "dlu" + suffix;
        // Bank selector: per-bank queues' control + rotation pick network.
        dlu.alms = 300 + 70ull * config.geometry.banks;
        dlu.registers = 500 + 40ull * config.geometry.banks;
        report.blocks.push_back(dlu);
        report.blocks.push_back(fifo("dlu-bank-queues" + suffix,
                                     config.lu_queue_depth,
                                     tuple_bits + index_bits + 16));
        report.blocks.push_back(fifo("req-filter-waitlist" + suffix, 32,
                                     tuple_bits + index_bits + 16));

        BlockUsage match;
        match.block = "flow-match" + suffix;
        // K parallel tuple comparators against one bucket readback.
        match.alms = config.ways * (tuple_bits / 4 + 8);
        match.registers = bucket_bits / 4 + tuple_bits;
        report.blocks.push_back(match);
        report.blocks.push_back(
            fifo("readback-fifo" + suffix, config.match_queue_depth, bucket_bits / 2));

        BlockUsage updt;
        updt.block = "updt" + suffix;
        updt.alms = 350;  // Req_Arb priority logic + BWr_Gen counters/timers
        updt.registers = 420;
        report.blocks.push_back(updt);
        report.blocks.push_back(fifo("updt-queue" + suffix, config.update_queue_depth,
                                     tuple_bits + index_bits + 8));
    }

    // --- FID_GEN + Flow State interface ------------------------------------
    BlockUsage fid;
    fid.block = "fid-gen";
    fid.alms = 220;
    fid.registers = 2 * fid_bits + 64;
    report.blocks.push_back(fid);
    report.blocks.push_back(fifo("output-fifo", config.output_depth, fid_bits + 16));

    BlockUsage housekeeping;
    housekeeping.block = "flow-state-housekeeping";
    housekeeping.alms = 600;  // timeout compare + scan pointer + Del_req gen
    housekeeping.registers = 2000;
    // On-chip cache of per-flow timestamps for the scanner (the bulk of the
    // 512-bit records lives in DDR3, §V-C).
    housekeeping.memory_bits = 49152ull * 32;
    report.blocks.push_back(housekeeping);

    for (const BlockUsage& block : report.blocks) {
        report.total_alms += block.alms;
        report.total_memory_bits += block.memory_bits;
        report.total_registers += block.registers;
    }
    return report;
}

}  // namespace flowcam::fpga
