// Static FPGA resource estimator — the Table I substitute.
//
// Quartus synthesis is not reproducible without the RTL and toolchain, so
// we reproduce the *accounting*: a per-block resource model (ALMs, block
// memory bits, registers) whose constants are calibrated such that the
// paper's prototype configuration (8 M flows, two quarter-rate DDR3
// controllers, Stratix V 5SGXEA7N2F45C2) lands near Table I:
//   31,006 ALMs (13 %) | 2,604,288 block-memory bits (5 %) | 39,664 regs
//   2 PLLs | 2 DLLs.
// The value of the model is the breakdown — which block dominates which
// resource and how usage scales with CAM depth, queue sizes and tuple
// width — which is what a designer would use the paper's Table I for.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/config.hpp"

namespace flowcam::fpga {

struct BlockUsage {
    std::string block;
    u64 alms = 0;
    u64 memory_bits = 0;
    u64 registers = 0;
};

struct ResourceReport {
    std::vector<BlockUsage> blocks;
    u64 total_alms = 0;
    u64 total_memory_bits = 0;
    u64 total_registers = 0;
    u32 plls = 2;  ///< system + memory reference clocks.
    u32 dlls = 2;  ///< one per DDR3 interface.

    /// Device capacities of the Stratix V 5SGXEA7N2F45C2.
    static constexpr u64 kDeviceAlms = 234720;
    static constexpr u64 kDeviceMemoryBits = 52428800;  ///< 50 Mbit M20K.

    [[nodiscard]] double alm_fraction() const {
        return static_cast<double>(total_alms) / kDeviceAlms;
    }
    [[nodiscard]] double memory_fraction() const {
        return static_cast<double>(total_memory_bits) / kDeviceMemoryBits;
    }
};

/// Estimate resources for a Flow LUT configuration. `tuple_bits` is the
/// widest key the comparators must handle (104 for an IPv4 5-tuple).
[[nodiscard]] ResourceReport estimate(const core::FlowLutConfig& config, u32 tuple_bits = 104);

}  // namespace flowcam::fpga
