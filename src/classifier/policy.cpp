#include "classifier/policy.hpp"

namespace flowcam::classifier {

const char* to_string(Action action) {
    switch (action) {
        case Action::kPermit: return "permit";
        case Action::kDeny: return "deny";
        case Action::kRateLimit: return "rate-limit";
        case Action::kMirror: return "mirror";
        case Action::kLog: return "log";
    }
    return "?";
}

PolicyEngine::PolicyEngine(std::size_t tcam_capacity, Action default_action)
    : tcam_(tcam_capacity), default_action_(default_action) {}

cam::TcamEntry PolicyEngine::encode(const Rule& rule, u64 payload) {
    // Build the 13-byte value/mask pair matching FiveTuple::key_bytes():
    // [0..3] src ip | [4..7] dst ip | [8..9] src port | [10..11] dst port
    // | [12] protocol.
    net::FiveTuple value_tuple;
    value_tuple.src_ip = rule.src_ip;
    value_tuple.dst_ip = rule.dst_ip;
    value_tuple.src_port = rule.src_port;
    value_tuple.dst_port = rule.dst_port;
    value_tuple.protocol = rule.protocol;
    const auto value_bytes = value_tuple.key_bytes();

    std::array<u8, net::FiveTuple::kKeyBytes> mask_bytes{};
    const auto prefix_mask = [](u8 prefix) -> u32 {
        return prefix == 0 ? 0u : ~u32{0} << (32 - prefix);
    };
    const u32 src_mask = prefix_mask(rule.src_prefix);
    const u32 dst_mask = prefix_mask(rule.dst_prefix);
    for (int i = 0; i < 4; ++i) {
        mask_bytes[i] = static_cast<u8>(src_mask >> (8 * (3 - i)));
        mask_bytes[4 + i] = static_cast<u8>(dst_mask >> (8 * (3 - i)));
    }
    if (rule.src_port != 0) mask_bytes[8] = mask_bytes[9] = 0xFF;
    if (rule.dst_port != 0) mask_bytes[10] = mask_bytes[11] = 0xFF;
    if (rule.protocol != 0) mask_bytes[12] = 0xFF;

    cam::TcamEntry entry;
    entry.value = cam::CamKey::from_span({value_bytes.data(), value_bytes.size()});
    entry.mask = cam::CamKey::from_span({mask_bytes.data(), mask_bytes.size()});
    entry.priority = rule.priority;
    entry.payload = payload;
    return entry;
}

Status PolicyEngine::add_rule(const Rule& rule) {
    const Status status = tcam_.insert(encode(rule, rules_.size()));
    if (!status.is_ok()) return status;
    rules_.push_back(rule);
    return Status::ok();
}

Verdict PolicyEngine::classify(const net::FiveTuple& tuple) {
    ++stats_.classified;
    const auto key = tuple.key_bytes();
    Verdict verdict;
    if (const auto hit = tcam_.lookup({key.data(), key.size()})) {
        const Rule& rule = rules_.at(*hit);
        verdict.action = rule.action;
        verdict.rule = rule.name;
    } else {
        verdict.action = default_action_;
        verdict.rule = "default";
    }
    ++stats_.by_action[static_cast<u8>(verdict.action)];
    return verdict;
}

Verdict PolicyEngine::verdict_for(FlowId fid, const net::FiveTuple& tuple) {
    const auto it = cache_.find(fid);
    if (it != cache_.end()) {
        ++stats_.cache_hits;
        return it->second;
    }
    const Verdict verdict = classify(tuple);
    cache_.emplace(fid, verdict);
    return verdict;
}

}  // namespace flowcam::classifier
