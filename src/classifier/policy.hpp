// Flow policy classifier — the "security policy enforcement" application
// from the paper's introduction, built on the TCAM substrate.
//
// A RuleSet holds prioritized wildcard rules over the 5-tuple (prefix masks
// on addresses, exact-or-any ports/protocol) mapped to actions. The
// PolicyEngine classifies each *new flow* once (rules are flow-granular, so
// per-packet work stays in the Flow LUT) and caches the verdict per FID —
// exactly how hardware separates the slow classification path from the
// fast flow-match path.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cam/tcam.hpp"
#include "common/result.hpp"
#include "common/types.hpp"
#include "net/tuple.hpp"

namespace flowcam::classifier {

enum class Action : u8 {
    kPermit,
    kDeny,
    kRateLimit,
    kMirror,   ///< copy to the inspection engine (paper §V-C's second FPGA).
    kLog,
};

[[nodiscard]] const char* to_string(Action action);

/// One wildcard rule over the IPv4 5-tuple.
struct Rule {
    std::string name;
    u32 priority = 0;  ///< higher wins.
    Action action = Action::kPermit;

    // Address prefixes: (value, prefix_len). prefix_len 0 = any.
    u32 src_ip = 0;
    u8 src_prefix = 0;
    u32 dst_ip = 0;
    u8 dst_prefix = 0;
    // Ports/protocol: 0 = any (ports 0 are not classifiable anyway).
    u16 src_port = 0;
    u16 dst_port = 0;
    u8 protocol = 0;
};

struct Verdict {
    Action action = Action::kPermit;
    std::string rule;  ///< matching rule name ("default" if none).
};

struct PolicyStats {
    u64 classified = 0;
    u64 cache_hits = 0;
    std::unordered_map<u8, u64> by_action;
};

class PolicyEngine {
  public:
    /// `tcam_capacity` bounds the rule table, as in hardware.
    /// `default_action` applies when no rule matches.
    explicit PolicyEngine(std::size_t tcam_capacity = 256,
                          Action default_action = Action::kPermit);

    /// Install a rule; kCapacityExceeded when the TCAM is full.
    Status add_rule(const Rule& rule);

    /// Classify a tuple against the rule TCAM (the slow path).
    [[nodiscard]] Verdict classify(const net::FiveTuple& tuple);

    /// Per-flow fast path: first call for a FID classifies and caches;
    /// later calls return the cached verdict.
    [[nodiscard]] Verdict verdict_for(FlowId fid, const net::FiveTuple& tuple);

    /// Drop the cached verdict (flow expired / rules changed).
    void invalidate(FlowId fid) { cache_.erase(fid); }
    void invalidate_all() { cache_.clear(); }

    [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }
    [[nodiscard]] const PolicyStats& stats() const { return stats_; }

  private:
    /// Encode a rule into TCAM value/mask over the 13-byte 5-tuple key.
    [[nodiscard]] static cam::TcamEntry encode(const Rule& rule, u64 payload);

    cam::Tcam tcam_;
    Action default_action_;
    std::vector<Rule> rules_;  ///< payloads index into this.
    std::unordered_map<FlowId, Verdict> cache_;
    PolicyStats stats_;
};

}  // namespace flowcam::classifier
