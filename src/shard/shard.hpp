// RSS-style sharding of the table model: the packet stream is partitioned
// into a fixed number of virtual slices by a stable function of the
// pre-hashed FlowKey (the top bits of the fully-avalanched digest, like an
// RSS indirection table), and `lanes` groups those slices onto execution
// lanes. The *simulation unit is the slice*, never the lane: lanes=2, 4 and
// 8 all run the same eight slice simulations and merge them in slice order,
// so their merged metrics are bit-identical by construction and independent
// of thread count or scheduling. lanes=1 bypasses sharding entirely and is
// byte-identical to the monolithic path.
#pragma once

#include "common/result.hpp"
#include "core/flow_key.hpp"

namespace flowcam::shard {

/// Fixed virtual-slice count (the RSS indirection table size). Eight slices
/// match the widest supported lane count; intermediate lane counts own
/// kShardSlices / lanes contiguous slices each.
inline constexpr u32 kShardSlices = 8;

/// Stable slice assignment: the top three bits of the FlowKey digest. The
/// digest is fully avalanched (MurmurHash3 finalizer), so the top bits are
/// as uniform as the low bits the table indexes with — and independent of
/// them, which keeps per-slice bucket indexing unbiased.
[[nodiscard]] inline u32 slice_of(const core::FlowKey& key) {
    return static_cast<u32>(key.hash >> 61);
}

/// Sharded-execution knobs. `lanes` and `epoch_cycles` are semantic
/// (ConfigPatch keys `shard.lanes` / `shard.epoch_cycles` — they change the
/// simulated model); `jobs` is pure runtime parallelism (how many OS threads
/// run the lanes) and must never change any result — the determinism suite
/// asserts serial-vs-threaded byte identity.
struct ShardConfig {
    /// 1 = monolithic (sharding off); 2/4/8 = sharded over kShardSlices
    /// virtual slices grouped onto this many lanes.
    u32 lanes = 1;
    /// Cross-lane epoch barrier interval in system cycles: every epoch all
    /// lanes synchronize and the global stream-time floor (the laggard
    /// slice's stream position) is pushed into every slice's expiry clock,
    /// so time-based housekeeping observes a consistent global clock.
    u64 epoch_cycles = 4096;
    /// Threads used to run the lanes (<= lanes is useful; 0 or 1 = serial).
    /// Not a ConfigPatch key: thread count is runtime, not semantics.
    std::size_t jobs = 1;

    [[nodiscard]] bool active() const { return lanes > 1; }

    [[nodiscard]] Status validate() const {
        if (lanes == 0 || lanes > kShardSlices || kShardSlices % lanes != 0) {
            return Status(StatusCode::kInvalidArgument,
                          "shard.lanes must be 1, 2, 4 or 8 (got " +
                              std::to_string(lanes) + ")");
        }
        if (epoch_cycles == 0) {
            return Status(StatusCode::kInvalidArgument,
                          "shard.epoch_cycles must be positive");
        }
        return Status::ok();
    }
};

}  // namespace flowcam::shard
