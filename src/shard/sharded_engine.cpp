#include "shard/sharded_engine.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "common/thread_pool.hpp"
#include "governor/governor.hpp"
#include "net/linerate.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/ticker.hpp"
#include "workload/compose.hpp"
#include "workload/tickers.hpp"

namespace flowcam::shard {

namespace {

using workload::ScenarioMetrics;

/// The slice-filtered source: draws the FULL global stream from its own
/// scenario instance (generators are pure deterministic streams, so every
/// slice sees identical records and identical scaled timestamps) and offers
/// only the records whose key hashes to this slice. Record k is offered no
/// earlier than cycle k * cycles_per_packet — the offer slot the monolithic
/// source would use — so pacing, idle gaps and the input-rate divider carry
/// over; backpressure holds the frame and retries, exactly like the
/// monolithic SourceTicker.
class SliceSource final : public sim::Ticker {
  public:
    SliceSource(workload::Scenario& scenario, analyzer::TrafficAnalyzer& analyzer, u32 slice,
                u64 packet_budget, u32 cycles_per_packet, double time_scale,
                ScenarioMetrics& metrics, obs::Recorder* obs)
        : scenario_(scenario),
          analyzer_(analyzer),
          slice_(slice),
          budget_(packet_budget),
          cycles_per_packet_(cycles_per_packet == 0 ? 1 : cycles_per_packet),
          time_scale_(time_scale > 0.0 ? time_scale : 1.0),
          metrics_(metrics),
          obs_(obs) {
        if (obs_ != nullptr) {
            auto cell = obs_->register_counter("source.backpressure_retries");
            obs_retries_ = cell ? cell.value() : &obs_scrap_cell_;
        }
    }

    void tick(Cycle now) override {
        last_now_ = now;
        if (!have_held_ && !exhausted_) draw_until_kept();
        if (!have_held_) return;
        if (now < due_) return;
        // Align fresh offers to the input-rate divider; a backpressured
        // frame retries every cycle (the line side cannot drop it).
        if (!retrying_ && now % cycles_per_packet_ != 0) return;
        if (!analyzer_.feed_record(held_)) {
            if (obs_ != nullptr) {
                if (burst_retries_ == 0) burst_start_ = now;
                ++burst_retries_;
                ++*obs_retries_;
            }
            retrying_ = true;
            return;
        }
        if (obs_ != nullptr && burst_retries_ > 0) {
            obs_->event_span(obs::Recorder::kTrackSource, "backpressure",
                             obs_->sys_ns(burst_start_), obs_->sys_ns(now - burst_start_),
                             "retries", burst_retries_);
            burst_retries_ = 0;
        }
        retrying_ = false;
        ++metrics_.packets;
        metrics_.bytes += held_.frame_bytes;
        flows_.insert(held_.flow_index);
        if (held_.flow_index >= workload::kOverlayFlowBase) {
            ++metrics_.overlay_packets;
            if (!overlay_seen_) {
                overlay_seen_ = true;
                overlay_first_ = now;
            }
            overlay_last_ = now;
        }
        if (metrics_.packets == 1) first_ns_ = held_.timestamp_ns;
        last_ns_ = held_.timestamp_ns;
        have_held_ = false;
    }

    [[nodiscard]] std::string name() const override { return "shard-slice-source"; }

    [[nodiscard]] u64 idle_cycles_hint() const override {
        if (done()) return ~u64{0};  // exhausted: idle forever.
        if (!have_held_) return 0;   // next tick must draw.
        if (retrying_) return 0;     // retrying a backpressured frame.
        const Cycle next = last_now_ + 1;
        // Idle until the held record's due slot, then align to the divider.
        if (due_ > next) return due_ - next;
        return (cycles_per_packet_ - (next % cycles_per_packet_)) % cycles_per_packet_;
    }

    /// The full global stream has been drawn and every kept record offered.
    [[nodiscard]] bool done() const { return exhausted_ && !have_held_; }

    /// Global stream time at this slice's draw cursor (scaled ns of the last
    /// drawn record, kept or not) — the epoch barrier takes the minimum over
    /// slices as the consistent global expiry clock.
    [[nodiscard]] u64 stream_position_ns() const { return last_scaled_ns_; }

    [[nodiscard]] u64 first_ns() const { return first_ns_; }
    [[nodiscard]] u64 last_ns() const { return last_ns_; }

    void finalize() {
        metrics_.distinct_flows = flows_.size();
        metrics_.trace_span_ns = last_ns_ - first_ns_;
        if (obs_ == nullptr) return;
        if (burst_retries_ > 0) {  // run ended mid-burst; close the span.
            obs_->event_span(obs::Recorder::kTrackSource, "backpressure",
                             obs_->sys_ns(burst_start_), obs_->sys_ns(last_now_ - burst_start_),
                             "retries", burst_retries_);
            burst_retries_ = 0;
        }
        if (overlay_seen_) {
            obs_->event_span(obs::Recorder::kTrackScenario, "overlay-window",
                             obs_->sys_ns(overlay_first_),
                             obs_->sys_ns(overlay_last_ - overlay_first_ + 1), "packets",
                             metrics_.overlay_packets);
        }
    }

  private:
    /// Identical to the monolithic source's timestamp treatment, applied in
    /// global draw order — every slice computes the same scaled stream.
    void scale_timestamp(net::PacketRecord& record, bool not_first) {
        if (time_scale_ != 1.0) {
            constexpr double kMaxScaledNs = 9.2e18;  // < 2^63: cast-safe.
            const double scaled = static_cast<double>(record.timestamp_ns) * time_scale_;
            record.timestamp_ns = scaled >= kMaxScaledNs ? static_cast<u64>(kMaxScaledNs)
                                                         : static_cast<u64>(scaled);
        }
        if (record.timestamp_ns <= last_scaled_ns_ && not_first) {
            record.timestamp_ns = last_scaled_ns_ + 1;
        }
        last_scaled_ns_ = record.timestamp_ns;
    }

    /// Advance the global draw cursor until a record for this slice is held
    /// (with its offer slot) or the budget is exhausted. Skipped records are
    /// other slices' traffic; they still advance the scaled stream clock.
    void draw_until_kept() {
        while (drawn_ < budget_) {
            net::PacketRecord record = scenario_.next();
            scale_timestamp(record, drawn_ > 0);
            const u64 index = drawn_;
            ++drawn_;
            const core::FlowKey key =
                record.key_override.empty()
                    ? core::FlowKey(net::NTuple::from_five_tuple(record.tuple))
                    : core::FlowKey(record.key_override);
            if (slice_of(key) != slice_) continue;
            held_ = record;
            due_ = static_cast<Cycle>(index) * cycles_per_packet_;
            have_held_ = true;
            return;
        }
        exhausted_ = true;
    }

    workload::Scenario& scenario_;
    analyzer::TrafficAnalyzer& analyzer_;
    u32 slice_;
    u64 budget_;
    u32 cycles_per_packet_;
    double time_scale_;
    ScenarioMetrics& metrics_;
    u64 drawn_ = 0;  ///< global draw cursor (all slices' records).
    u64 last_scaled_ns_ = 0;
    net::PacketRecord held_;
    Cycle due_ = 0;
    bool have_held_ = false;
    bool retrying_ = false;
    bool exhausted_ = false;
    Cycle last_now_ = 0;
    std::unordered_set<u64> flows_;
    u64 first_ns_ = 0;
    u64 last_ns_ = 0;
    obs::Recorder* obs_;
    u64* obs_retries_ = nullptr;
    u64 obs_scrap_cell_ = 0;
    Cycle burst_start_ = 0;
    u64 burst_retries_ = 0;
    bool overlay_seen_ = false;
    Cycle overlay_first_ = 0;
    Cycle overlay_last_ = 0;
};

/// One slice's whole simulation stack. Heap-allocated once and never moved:
/// the engine holds references into it.
struct Slice {
    std::unique_ptr<workload::Scenario> scenario;
    std::unique_ptr<analyzer::TrafficAnalyzer> analyzer;
    std::unique_ptr<obs::Recorder> recorder;
    std::unique_ptr<faults::FaultInjector> injector;
    std::unique_ptr<SliceSource> source;
    std::unique_ptr<workload::detail::AnalyzerTicker> sink;
    std::unique_ptr<workload::detail::SamplerTicker> sampler;
    std::unique_ptr<workload::detail::AuditorTicker> auditor;
    std::unique_ptr<governor::OverloadGovernor> governor;
    std::unique_ptr<governor::GovernorTicker> governor_ticker;
    sim::Engine engine;
    ScenarioMetrics metrics;
    bool finished = false;
    bool drained = false;
};

bool slice_done(const Slice& slice) {
    return slice.source->done() &&
           slice.analyzer->stats().packets >= slice.metrics.packets &&
           slice.analyzer->lut().drained();
}

}  // namespace

ShardedEngine::ShardedEngine(workload::RunnerConfig config) : config_(std::move(config)) {}

Result<ScenarioMetrics> ShardedEngine::run(const std::string& spec,
                                           const workload::ScenarioConfig& scenario_config,
                                           const workload::Registry& registry) {
    if (Status status = config_.shard.validate(); !status.is_ok()) return status;
    const u32 lanes = config_.shard.lanes;
    const u32 per_lane = kShardSlices / lanes;

    // Slice geometry: each slice owns 1/kShardSlices of the buckets and the
    // CAM (total capacity conserved); queue depths, clocks and policies are
    // per-stack resources and stay as configured.
    analyzer::AnalyzerConfig slice_config = config_.analyzer;
    slice_config.lut.buckets_per_mem =
        std::max<u64>(1, config_.analyzer.lut.buckets_per_mem / kShardSlices);
    slice_config.lut.cam_capacity =
        std::max<std::size_t>(1, config_.analyzer.lut.cam_capacity / kShardSlices);

    std::vector<std::unique_ptr<Slice>> slices;
    slices.reserve(kShardSlices);
    for (u32 s = 0; s < kShardSlices; ++s) {
        auto scenario = workload::make_scenario(spec, scenario_config, registry);
        if (!scenario) return scenario.status();
        auto slice = std::make_unique<Slice>();
        slice->scenario = std::move(scenario).value();
        slice->analyzer = std::make_unique<analyzer::TrafficAnalyzer>(slice_config);
        if (config_.obs.enabled()) {
            slice->recorder = std::make_unique<obs::Recorder>(config_.obs);
            slice->recorder->set_clock(slice_config.lut.system_clock_hz,
                                       slice_config.lut.memory_clock_ratio);
            slice->analyzer->set_recorder(slice->recorder.get());
        }
        if (config_.fault.enabled()) {
            // Per-slice fault stream: a deterministically derived seed per
            // slice, so fault schedules are independent across slices but
            // identical across lane counts and thread counts.
            faults::FaultConfig fault = config_.fault;
            fault.seed = core::detail::mix64(fault.seed ^ (0x5eed5a1cull + s));
            slice->injector = std::make_unique<faults::FaultInjector>(fault);
            slice->analyzer->set_faults(slice->injector.get());
        }
        slice->metrics.scenario = slice->scenario->name();
        slice->source = std::make_unique<SliceSource>(
            *slice->scenario, *slice->analyzer, s, config_.packets, config_.cycles_per_packet,
            config_.time_scale, slice->metrics, slice->recorder.get());
        slice->sink = std::make_unique<workload::detail::AnalyzerTicker>(*slice->analyzer);
        slice->engine.set_recorder(slice->recorder.get());
        slice->engine.add(*slice->source);  // pipeline order: source first.
        slice->engine.add(*slice->sink);
        if (slice->recorder != nullptr && config_.obs.sample_interval > 0) {
            slice->sampler = std::make_unique<workload::detail::SamplerTicker>(
                *slice->recorder, config_.obs.sample_interval);
            slice->engine.add(*slice->sampler);
        }
        if (slice->injector != nullptr && config_.fault.audit) {
            slice->auditor =
                std::make_unique<workload::detail::AuditorTicker>(slice->analyzer->lut());
            slice->engine.add(*slice->auditor);
        }
        if (config_.governor.on) {
            // One governor per slice: each watches only its own stack's
            // pressure, so transitions are a pure function of slice traffic
            // and the merge stays lane-count-invariant.
            slice->governor = std::make_unique<governor::OverloadGovernor>(
                config_.governor, *slice->analyzer, slice->recorder.get());
            slice->governor_ticker = std::make_unique<governor::GovernorTicker>(
                *slice->governor, config_.governor.interval);
            slice->engine.add(*slice->governor_ticker);
        }
        slices.push_back(std::move(slice));
    }

    // The epoch loop. Every slice simulates independently inside an epoch
    // (no shared state whatsoever), then all lanes synchronize: unfinished
    // slices sit exactly at the epoch boundary (run_until never overshoots
    // its budget), and the barrier pushes the laggard slice's stream
    // position into every live slice's expiry clock so time-based
    // housekeeping observes a consistent global clock. Slice state at each
    // barrier is therefore a pure function of the epoch schedule — never of
    // lane grouping or thread scheduling.
    u64 epoch_start = 0;
    while (epoch_start < config_.max_cycles) {
        bool all_finished = true;
        for (const auto& slice : slices) all_finished = all_finished && slice->finished;
        if (all_finished) break;
        const u64 epoch_end =
            std::min(epoch_start + config_.shard.epoch_cycles, config_.max_cycles);
        common::ThreadPool::parallel_for_indexed(
            lanes, config_.shard.jobs, [&](std::size_t lane) {
                const u32 begin = static_cast<u32>(lane) * per_lane;
                for (u32 s = begin; s < begin + per_lane; ++s) {
                    Slice& slice = *slices[s];
                    if (slice.finished) continue;
                    slice.drained = slice.engine.run_until(
                        [&slice] { return slice_done(slice); },
                        epoch_end - slice.engine.now());
                    if (slice.drained) slice.finished = true;
                }
            });
        u64 floor = ~u64{0};
        for (const auto& slice : slices) {
            floor = std::min(floor, slice->source->stream_position_ns());
        }
        if (floor != 0 && floor != ~u64{0}) {
            for (const auto& slice : slices) {
                if (!slice->finished) slice->analyzer->lut().advance_stream_floor(floor);
            }
        }
        epoch_start = epoch_end;
    }

    // Per-slice harvest (same shape as the monolithic runner's), then the
    // deterministic merge: a slice-order reduction — additive counters sum,
    // cycles take the max, drained ANDs, spans take min/max of the slice
    // endpoints, histograms merge — so the result is independent of lane
    // grouping and thread scheduling by construction.
    ScenarioMetrics merged;
    merged.drained = true;
    u64 span_first = ~u64{0};
    u64 span_last = 0;
    obs::Histogram latency;
    for (u32 s = 0; s < kShardSlices; ++s) {
        Slice& slice = *slices[s];
        slice.source->finalize();
        workload::detail::harvest_counters(slice.metrics, *slice.analyzer);
        if (slice.governor != nullptr) {
            slice.governor->finish(slice.engine.now());
            const governor::GovernorStats& gstats = slice.governor->stats();
            slice.metrics.governor_transitions = gstats.transitions;
            slice.metrics.governor_max_level = gstats.max_level;
            slice.metrics.governor_final_level = slice.governor->level();
            slice.metrics.governor_recovery_cycles = gstats.recovery_cycles;
            slice.metrics.governor_slo_ok = slice.governor->slo_ok() ? 1 : 0;
        }
        if (slice.injector != nullptr) {
            slice.metrics.faults_injected = slice.injector->stats().total();
            slice.metrics.fault_campaign_windows = slice.injector->stats().campaign_windows;
            if (config_.fault.audit) {
                slice.metrics.audit_violations =
                    (slice.auditor != nullptr ? slice.auditor->violations() : 0) +
                    slice.analyzer->lut().audit(/*final_pass=*/slice.drained) +
                    (slice.drained ? 0 : 1);
            }
        }
        slice.metrics.cycles = slice.engine.now();
        slice.metrics.drained = slice.drained;
        if (slice.recorder != nullptr) {
            const std::string suffix = ".slice" + std::to_string(s);
            if (config_.obs.sample_interval > 0) {
                slice.recorder->sample(slice.engine.now());
                workload::detail::write_file(config_.obs.sample_path + suffix,
                                             slice.recorder->samples_jsonl());
            }
            if (config_.obs.trace) {
                workload::detail::write_file(config_.obs.trace_path + suffix,
                                             slice.recorder->trace_json());
            }
            if (const obs::Histogram* hist = slice.analyzer->lut().latency_histogram();
                hist != nullptr) {
                latency.merge(*hist);
            }
        }

        const ScenarioMetrics& m = slice.metrics;
        if (s == 0) merged.scenario = m.scenario;
        merged.packets += m.packets;
        merged.bytes += m.bytes;
        merged.distinct_flows += m.distinct_flows;  // keys never span slices.
        merged.overlay_packets += m.overlay_packets;
        merged.completions += m.completions;
        merged.cam_hits += m.cam_hits;
        merged.lu1_hits += m.lu1_hits;
        merged.lu2_hits += m.lu2_hits;
        merged.new_flows += m.new_flows;
        merged.drops += m.drops;
        merged.buffer_retries += m.buffer_retries;
        merged.flows_expired += m.flows_expired;
        merged.hash_batches += m.hash_batches;
        merged.admission_rejects += m.admission_rejects;
        merged.evictions_lru += m.evictions_lru;
        merged.evictions_cam += m.evictions_cam;
        merged.evictions_clock += m.evictions_clock;
        merged.reservations_granted += m.reservations_granted;
        merged.reservations_confirmed += m.reservations_confirmed;
        merged.reservations_reclaimed += m.reservations_reclaimed;
        merged.drops_real += m.drops_real;
        merged.drops_overlay += m.drops_overlay;
        merged.faults_injected += m.faults_injected;
        merged.audit_violations += m.audit_violations;
        merged.fault_campaign_windows += m.fault_campaign_windows;
        // Governor merge: transitions sum; levels and the recovery walk take
        // the worst slice; the SLO verdict is the AND over slices.
        merged.governor_transitions += m.governor_transitions;
        merged.governor_max_level = std::max(merged.governor_max_level, m.governor_max_level);
        merged.governor_final_level =
            std::max(merged.governor_final_level, m.governor_final_level);
        merged.governor_recovery_cycles =
            std::max(merged.governor_recovery_cycles, m.governor_recovery_cycles);
        merged.governor_slo_ok = merged.governor_slo_ok & m.governor_slo_ok;
        merged.events_port_scan += m.events_port_scan;
        merged.events_heavy_hitter += m.events_heavy_hitter;
        merged.events_table_pressure += m.events_table_pressure;
        merged.events_flow_expired += m.events_flow_expired;
        merged.cycles = std::max(merged.cycles, m.cycles);
        merged.drained = merged.drained && m.drained;
        if (m.packets > 0) {
            span_first = std::min(span_first, slice.source->first_ns());
            span_last = std::max(span_last, slice.source->last_ns());
        }
    }
    merged.trace_span_ns = span_last > span_first ? span_last - span_first : 0;
    merged.new_flow_ratio = merged.completions == 0
                                ? 0.0
                                : static_cast<double>(merged.new_flows) /
                                      static_cast<double>(merged.completions);
    merged.mdesc_per_s = sim::mega_per_second(merged.completions, merged.cycles,
                                              config_.analyzer.lut.system_clock_hz);
    merged.sustained_gbps = net::supported_gbps(merged.mdesc_per_s);
    merged.offered_gbps = merged.trace_span_ns == 0
                              ? 0.0
                              : static_cast<double>(merged.bytes) * 8.0 /
                                    static_cast<double>(merged.trace_span_ns);
    if (latency.count() > 0) {
        merged.lat_p50_ns = latency.percentile(0.50);
        merged.lat_p95_ns = latency.percentile(0.95);
        merged.lat_p99_ns = latency.percentile(0.99);
        merged.lat_max_ns = latency.max();
    }
    return merged;
}

}  // namespace flowcam::shard
