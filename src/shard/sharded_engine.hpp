// ShardedEngine: runs one scenario as kShardSlices independent slice
// simulations — each slice owning its own analyzer stack (bucket/CAM slice,
// DDR controllers, flow state, engine clock, fault stream, obs recorder) —
// synchronized by a cross-lane epoch barrier and merged deterministically in
// slice order. See shard.hpp for the slicing function and the lanes/jobs
// contract, and the README "Sharded execution" note for the model's
// relationship to the monolithic path.
#pragma once

#include <string>

#include "common/result.hpp"
#include "shard/shard.hpp"
#include "workload/registry.hpp"
#include "workload/runner.hpp"

namespace flowcam::shard {

class ShardedEngine {
  public:
    /// `config.shard` selects lanes/epoch/jobs; the rest of the RunnerConfig
    /// is interpreted exactly as the monolithic ScenarioRunner interprets it,
    /// except that table geometry (buckets_per_mem, cam_capacity) is divided
    /// across the kShardSlices slices.
    explicit ShardedEngine(workload::RunnerConfig config);

    /// Instantiate `spec` (full compose grammar) once per slice — scenario
    /// generators are pure deterministic streams, so every slice draws the
    /// identical global stream and keeps only its own records — and run all
    /// slices to completion under the epoch barrier.
    [[nodiscard]] Result<workload::ScenarioMetrics> run(
        const std::string& spec, const workload::ScenarioConfig& scenario_config,
        const workload::Registry& registry = workload::builtin_registry());

    [[nodiscard]] const workload::RunnerConfig& config() const { return config_; }

  private:
    workload::RunnerConfig config_;
};

}  // namespace flowcam::shard
