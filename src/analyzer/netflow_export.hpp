// NetFlow v5 export codec.
//
// The prototype targets "the NetFlow application" (paper §II); the stats
// engine's natural output is therefore NetFlow v5 export datagrams: a
// 24-byte header plus up to 30 fixed 48-byte flow records. This module
// serializes expired FlowRecords into wire-format datagrams and parses
// them back (for the tests and for downstream collectors).
//
// IPv6 flows cannot be represented in v5 (32-bit address fields); they are
// counted and skipped, as real v5 exporters do.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/flow_state.hpp"
#include "net/tuple.hpp"

namespace flowcam::analyzer {

inline constexpr u16 kNetflowV5Version = 5;
inline constexpr std::size_t kNetflowV5HeaderBytes = 24;
inline constexpr std::size_t kNetflowV5RecordBytes = 48;
inline constexpr std::size_t kNetflowV5MaxRecords = 30;

struct NetflowV5Header {
    u16 version = kNetflowV5Version;
    u16 count = 0;            ///< records in this datagram (1..30).
    u32 sys_uptime_ms = 0;
    u32 unix_secs = 0;
    u32 unix_nsecs = 0;
    u32 flow_sequence = 0;    ///< cumulative exported-flow count.
    u8 engine_type = 0;
    u8 engine_id = 0;
    u16 sampling = 0;
};

struct NetflowV5Record {
    u32 src_addr = 0;
    u32 dst_addr = 0;
    u32 next_hop = 0;
    u16 input_snmp = 0;
    u16 output_snmp = 0;
    u32 packets = 0;
    u32 bytes = 0;
    u32 first_ms = 0;  ///< sys-uptime at first packet.
    u32 last_ms = 0;   ///< sys-uptime at last packet.
    u16 src_port = 0;
    u16 dst_port = 0;
    u8 tcp_flags = 0;
    u8 protocol = 0;
    u8 tos = 0;
    u16 src_as = 0;
    u16 dst_as = 0;
    u8 src_mask = 0;
    u8 dst_mask = 0;
};

struct NetflowV5Datagram {
    NetflowV5Header header;
    std::vector<NetflowV5Record> records;
};

/// Accumulates expired flows and emits full datagrams (30 records) —
/// call flush() for a final partial one.
class NetflowV5Exporter {
  public:
    explicit NetflowV5Exporter(u8 engine_id = 1) : engine_id_(engine_id) {}

    /// Add one dead flow. Returns a serialized datagram when one fills up.
    /// IPv6 / non-IPv4 keys are counted in skipped_non_v4() and dropped.
    [[nodiscard]] std::vector<std::vector<u8>> add(const core::FlowRecord& record);

    /// Serialize whatever is pending (possibly empty).
    [[nodiscard]] std::vector<u8> flush();

    [[nodiscard]] u64 flows_exported() const { return flow_sequence_; }
    [[nodiscard]] u64 skipped_non_v4() const { return skipped_; }
    [[nodiscard]] std::size_t pending() const { return pending_.size(); }

  private:
    std::vector<NetflowV5Record> pending_;
    u32 flow_sequence_ = 0;
    u64 skipped_ = 0;
    u8 engine_id_;
};

/// Serialize one datagram (big-endian wire format).
[[nodiscard]] std::vector<u8> serialize(const NetflowV5Datagram& datagram);

/// Parse a datagram; nullopt on malformed input (wrong version, short
/// buffer, count mismatch).
[[nodiscard]] std::optional<NetflowV5Datagram> parse_netflow_v5(std::span<const u8> bytes);

}  // namespace flowcam::analyzer
