// Traffic analyzer — the §V-C system integration around the Flow LUT:
// a packet buffer feeding the flow processor, an event engine raising
// security-relevant events, and a stats engine aggregating per-flow and
// per-port statistics (the NetFlow application the prototype targets).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/flow_lut.hpp"
#include "faults/faults.hpp"
#include "net/headers.hpp"
#include "net/trace.hpp"

namespace flowcam::analyzer {

/// Events the event engine raises.
enum class EventKind : u8 {
    kNewFlow,
    kFlowExpired,
    kHeavyHitter,    ///< flow crossed the byte threshold.
    kPortScan,       ///< one source touched many distinct destination ports.
    kTablePressure,  ///< lookup structure approaching capacity.
};

[[nodiscard]] const char* to_string(EventKind kind);

struct Event {
    EventKind kind;
    net::FiveTuple tuple;
    u64 value = 0;  ///< bytes for heavy hitter, port count for scan, etc.
    u64 timestamp_ns = 0;
};

struct AnalyzerConfig {
    core::FlowLutConfig lut;
    u64 heavy_hitter_bytes = 10u << 20;  ///< 10 MB
    u32 port_scan_threshold = 64;        ///< distinct dst ports per src IP.
    double table_pressure = 0.9;         ///< of total capacity.
    std::size_t packet_buffer_depth = 256;
    /// Generator flow indices at or above this are attack-overlay traffic
    /// (workload::kOverlayFlowBase); used to split drops into real vs
    /// overlay when completions carry the flow index as their tag.
    u64 overlay_flow_base = u64{1} << 40;
};

/// Aggregated statistics the stats engine maintains.
struct TrafficStats {
    u64 packets = 0;
    u64 bytes = 0;
    u64 unparseable = 0;
    u64 dropped_buffer_full = 0;
    /// Completions that retired without a table slot (admission reject or
    /// table full), split by whether the offered packet was background
    /// ("real") traffic or attack overlay (see overlay_flow_base).
    u64 drops_real = 0;
    u64 drops_overlay = 0;
    std::map<u8, u64> packets_by_protocol;
    std::map<u16, u64> bytes_by_dst_port;

    [[nodiscard]] double mean_packet_bytes() const {
        return packets == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(packets);
    }
};

class TrafficAnalyzer {
  public:
    explicit TrafficAnalyzer(const AnalyzerConfig& config);

    /// Feed one raw Ethernet frame (the packet-buffer FPGA's input).
    /// Returns false if the packet buffer is full (tail drop).
    [[nodiscard]] bool feed_frame(std::span<const u8> frame, u64 timestamp_ns);

    /// Feed a pre-parsed trace record (bypasses the header parser).
    [[nodiscard]] bool feed_record(const net::PacketRecord& record);

    /// feed_record() with the key and hashes the caller already computed —
    /// the batched source pushes whole groups of keys through the multi-key
    /// hash kernel, then admits them one by one through this. The admission
    /// check (buffer-full OR fault veto, in that short-circuit order) is
    /// replicated from feed_record exactly so fault-RNG draw counts match
    /// scalar dispatch per attempt.
    [[nodiscard]] bool feed_prepared(const net::PacketRecord& record, const core::FlowKey& key,
                                     u64 index_a, u64 index_b, u64 digest);

    /// Advance the whole system by one system-clock cycle.
    void step();

    /// Batched fast-forward: upcoming cycles step() is provably a no-op for
    /// (buffer empty, no completions waiting to be pumped, and the Flow LUT
    /// idle-stalled); skip_idle() jumps them.
    [[nodiscard]] u64 idle_cycles_hint() const {
        if (!packet_buffer_.empty() || lut_.completions_pending()) return 0;
        return lut_.idle_cycles_hint();
    }
    void skip_idle(u64 cycles) { lut_.skip_idle(cycles); }

    /// Run until everything offered has been processed.
    bool drain(u64 max_cycles = 10'000'000);

    /// Attach a flight recorder: registers the packet-buffer high-water
    /// counter and forwards the recorder to the Flow LUT (which in turn
    /// attaches both DDR3 controllers). nullptr detaches.
    void set_recorder(obs::Recorder* recorder);

    /// Attach a fault injector: packet-buffer storm vetoes fire here, and
    /// the injector is forwarded to the Flow LUT (DDR rejects, response
    /// delay/duplication, expiry skew). nullptr detaches.
    void set_faults(faults::FaultInjector* faults);

    [[nodiscard]] const TrafficStats& stats() const { return stats_; }
    [[nodiscard]] const std::vector<Event>& events() const { return events_; }
    [[nodiscard]] core::FlowLut& lut() { return lut_; }
    [[nodiscard]] const AnalyzerConfig& config() const { return config_; }
    /// Instantaneous packet-buffer fill (the governor's backpressure signal).
    [[nodiscard]] std::size_t packet_buffer_size() const { return packet_buffer_.size(); }

    /// Top `n` live flows by bytes.
    [[nodiscard]] std::vector<core::FlowRecord> top_flows(std::size_t n) const;

    /// Render a human-readable report.
    [[nodiscard]] std::string report(std::size_t top_n = 10) const;

  private:
    /// A buffered packet with its flow key hashed once at admission — the
    /// packet buffer hands the Flow LUT pre-hashed keys and bucket indices,
    /// so backpressure retries never re-hash (hardware hashes at arrival).
    struct PreparedPacket {
        net::PacketRecord record;
        core::FlowKey key;
        u64 index_a = 0;
        u64 index_b = 0;
        u64 digest = 0;
    };

    void pump_buffer();
    void pump_completions();
    void raise(EventKind kind, const net::FiveTuple& tuple, u64 value, u64 timestamp_ns);

    AnalyzerConfig config_;
    core::FlowLut lut_;
    std::deque<PreparedPacket> packet_buffer_;
    TrafficStats stats_;
    std::vector<Event> events_;
    std::map<u32, std::set<u16>> ports_touched_;  ///< src ip -> dst ports.
    std::set<FlowId> heavy_reported_;
    bool pressure_reported_ = false;
    obs::Recorder* obs_ = nullptr;
    u64* obs_hwm_buffer_ = nullptr;  ///< packet-buffer occupancy high-water.
    u64 obs_scrap_cell_ = 0;
    faults::FaultInjector* faults_ = nullptr;
};

}  // namespace flowcam::analyzer
