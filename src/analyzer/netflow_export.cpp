#include "analyzer/netflow_export.hpp"

#include <optional>

namespace flowcam::analyzer {
namespace {

void put_be(std::vector<u8>& out, u64 value, std::size_t bytes) {
    for (std::size_t i = 0; i < bytes; ++i) {
        out.push_back(static_cast<u8>(value >> (8 * (bytes - 1 - i))));
    }
}

u64 get_be(std::span<const u8> data, std::size_t offset, std::size_t bytes) {
    u64 value = 0;
    for (std::size_t i = 0; i < bytes; ++i) value = (value << 8) | data[offset + i];
    return value;
}

NetflowV5Record record_from(const core::FlowRecord& flow, const net::FiveTuple& tuple) {
    NetflowV5Record record;
    record.src_addr = tuple.src_ip;
    record.dst_addr = tuple.dst_ip;
    record.src_port = tuple.src_port;
    record.dst_port = tuple.dst_port;
    record.protocol = tuple.protocol;
    record.packets = static_cast<u32>(std::min<u64>(flow.packets, 0xFFFFFFFFull));
    record.bytes = static_cast<u32>(std::min<u64>(flow.bytes, 0xFFFFFFFFull));
    record.first_ms = static_cast<u32>(flow.first_ns / 1'000'000);
    record.last_ms = static_cast<u32>(flow.last_ns / 1'000'000);
    return record;
}

}  // namespace

std::vector<std::vector<u8>> NetflowV5Exporter::add(const core::FlowRecord& record) {
    std::vector<std::vector<u8>> out;
    if (record.key.size() != net::FiveTuple::kKeyBytes) {
        ++skipped_;  // v5 cannot carry IPv6 / wider n-tuples.
        return out;
    }
    pending_.push_back(
        record_from(record, net::FiveTuple::from_key_bytes(record.key.view())));
    if (pending_.size() >= kNetflowV5MaxRecords) {
        out.push_back(flush());
    }
    return out;
}

std::vector<u8> NetflowV5Exporter::flush() {
    NetflowV5Datagram datagram;
    datagram.header.count = static_cast<u16>(pending_.size());
    datagram.header.flow_sequence = flow_sequence_;
    datagram.header.engine_id = engine_id_;
    if (!pending_.empty()) {
        datagram.header.sys_uptime_ms = pending_.back().last_ms;
    }
    datagram.records = std::move(pending_);
    pending_.clear();
    flow_sequence_ += datagram.header.count;
    return serialize(datagram);
}

std::vector<u8> serialize(const NetflowV5Datagram& datagram) {
    std::vector<u8> out;
    out.reserve(kNetflowV5HeaderBytes + datagram.records.size() * kNetflowV5RecordBytes);
    const NetflowV5Header& header = datagram.header;
    put_be(out, header.version, 2);
    put_be(out, datagram.records.size(), 2);
    put_be(out, header.sys_uptime_ms, 4);
    put_be(out, header.unix_secs, 4);
    put_be(out, header.unix_nsecs, 4);
    put_be(out, header.flow_sequence, 4);
    out.push_back(header.engine_type);
    out.push_back(header.engine_id);
    put_be(out, header.sampling, 2);

    for (const NetflowV5Record& record : datagram.records) {
        put_be(out, record.src_addr, 4);
        put_be(out, record.dst_addr, 4);
        put_be(out, record.next_hop, 4);
        put_be(out, record.input_snmp, 2);
        put_be(out, record.output_snmp, 2);
        put_be(out, record.packets, 4);
        put_be(out, record.bytes, 4);
        put_be(out, record.first_ms, 4);
        put_be(out, record.last_ms, 4);
        put_be(out, record.src_port, 2);
        put_be(out, record.dst_port, 2);
        out.push_back(0);  // pad1
        out.push_back(record.tcp_flags);
        out.push_back(record.protocol);
        out.push_back(record.tos);
        put_be(out, record.src_as, 2);
        put_be(out, record.dst_as, 2);
        out.push_back(record.src_mask);
        out.push_back(record.dst_mask);
        put_be(out, 0, 2);  // pad2
    }
    return out;
}

std::optional<NetflowV5Datagram> parse_netflow_v5(std::span<const u8> bytes) {
    if (bytes.size() < kNetflowV5HeaderBytes) return std::nullopt;
    NetflowV5Datagram datagram;
    NetflowV5Header& header = datagram.header;
    header.version = static_cast<u16>(get_be(bytes, 0, 2));
    if (header.version != kNetflowV5Version) return std::nullopt;
    header.count = static_cast<u16>(get_be(bytes, 2, 2));
    if (header.count > kNetflowV5MaxRecords) return std::nullopt;
    if (bytes.size() < kNetflowV5HeaderBytes + header.count * kNetflowV5RecordBytes) {
        return std::nullopt;
    }
    header.sys_uptime_ms = static_cast<u32>(get_be(bytes, 4, 4));
    header.unix_secs = static_cast<u32>(get_be(bytes, 8, 4));
    header.unix_nsecs = static_cast<u32>(get_be(bytes, 12, 4));
    header.flow_sequence = static_cast<u32>(get_be(bytes, 16, 4));
    header.engine_type = bytes[20];
    header.engine_id = bytes[21];
    header.sampling = static_cast<u16>(get_be(bytes, 22, 2));

    datagram.records.reserve(header.count);
    for (u16 i = 0; i < header.count; ++i) {
        const std::size_t base = kNetflowV5HeaderBytes + i * kNetflowV5RecordBytes;
        NetflowV5Record record;
        record.src_addr = static_cast<u32>(get_be(bytes, base + 0, 4));
        record.dst_addr = static_cast<u32>(get_be(bytes, base + 4, 4));
        record.next_hop = static_cast<u32>(get_be(bytes, base + 8, 4));
        record.input_snmp = static_cast<u16>(get_be(bytes, base + 12, 2));
        record.output_snmp = static_cast<u16>(get_be(bytes, base + 14, 2));
        record.packets = static_cast<u32>(get_be(bytes, base + 16, 4));
        record.bytes = static_cast<u32>(get_be(bytes, base + 20, 4));
        record.first_ms = static_cast<u32>(get_be(bytes, base + 24, 4));
        record.last_ms = static_cast<u32>(get_be(bytes, base + 28, 4));
        record.src_port = static_cast<u16>(get_be(bytes, base + 32, 2));
        record.dst_port = static_cast<u16>(get_be(bytes, base + 34, 2));
        record.tcp_flags = bytes[base + 37];
        record.protocol = bytes[base + 38];
        record.tos = bytes[base + 39];
        record.src_as = static_cast<u16>(get_be(bytes, base + 40, 2));
        record.dst_as = static_cast<u16>(get_be(bytes, base + 42, 2));
        record.src_mask = bytes[base + 44];
        record.dst_mask = bytes[base + 45];
        datagram.records.push_back(record);
    }
    return datagram;
}

}  // namespace flowcam::analyzer
