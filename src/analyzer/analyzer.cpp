#include "analyzer/analyzer.hpp"

#include <algorithm>
#include <sstream>

namespace flowcam::analyzer {

const char* to_string(EventKind kind) {
    switch (kind) {
        case EventKind::kNewFlow: return "new-flow";
        case EventKind::kFlowExpired: return "flow-expired";
        case EventKind::kHeavyHitter: return "heavy-hitter";
        case EventKind::kPortScan: return "port-scan";
        case EventKind::kTablePressure: return "table-pressure";
    }
    return "?";
}

TrafficAnalyzer::TrafficAnalyzer(const AnalyzerConfig& config)
    : config_(config), lut_(config.lut) {
    lut_.flow_state().set_export_callback([this](const core::FlowRecord& record) {
        raise(EventKind::kFlowExpired, net::FiveTuple::from_key_bytes(record.key.view()),
              record.bytes, record.last_ns);
    });
}

bool TrafficAnalyzer::feed_frame(std::span<const u8> frame, u64 timestamp_ns) {
    const auto parsed = net::parse_packet(frame);
    if (!parsed) {
        ++stats_.unparseable;
        return true;  // consumed (dropped to the slow path in hardware).
    }
    net::PacketRecord record;
    record.timestamp_ns = timestamp_ns;
    record.tuple = parsed->tuple;
    record.frame_bytes = parsed->frame_bytes;
    return feed_record(record);
}

bool TrafficAnalyzer::feed_record(const net::PacketRecord& record) {
    if (packet_buffer_.size() >= config_.packet_buffer_depth ||
        (faults_ != nullptr && faults_->veto_feed())) {
        // Real buffer-full and injected backpressure storms look identical
        // to the source: it holds the frame and retries.
        ++stats_.dropped_buffer_full;
        return false;
    }
    PreparedPacket prepared;
    prepared.record = record;
    prepared.key = record.key_override.empty()
                       ? core::FlowKey(net::NTuple::from_five_tuple(record.tuple))
                       : core::FlowKey(record.key_override);
    const hash::IndexGenerator& indexer = lut_.table().indexer();
    prepared.digest = indexer.digest(0, prepared.key.view());
    prepared.index_a = indexer.index_of_digest(prepared.digest);
    prepared.index_b = indexer.index(1, prepared.key.view());
    packet_buffer_.push_back(std::move(prepared));
    if (obs_ != nullptr) obs::Recorder::high_water(obs_hwm_buffer_, packet_buffer_.size());
    return true;
}

bool TrafficAnalyzer::feed_prepared(const net::PacketRecord& record, const core::FlowKey& key,
                                    u64 index_a, u64 index_b, u64 digest) {
    if (packet_buffer_.size() >= config_.packet_buffer_depth ||
        (faults_ != nullptr && faults_->veto_feed())) {
        ++stats_.dropped_buffer_full;
        return false;
    }
    PreparedPacket prepared;
    prepared.record = record;
    prepared.key = key;
    prepared.index_a = index_a;
    prepared.index_b = index_b;
    prepared.digest = digest;
    packet_buffer_.push_back(std::move(prepared));
    if (obs_ != nullptr) obs::Recorder::high_water(obs_hwm_buffer_, packet_buffer_.size());
    return true;
}

void TrafficAnalyzer::set_recorder(obs::Recorder* recorder) {
    if (recorder == obs_) return;
    obs_ = recorder;
    lut_.set_recorder(recorder);
    if (obs_ == nullptr) return;
    auto cell = obs_->register_counter("analyzer.hwm_packet_buffer");
    obs_hwm_buffer_ = cell ? cell.value() : &obs_scrap_cell_;
}

void TrafficAnalyzer::set_faults(faults::FaultInjector* faults) {
    faults_ = faults;
    lut_.set_faults(faults);
}

void TrafficAnalyzer::pump_buffer() {
    while (!packet_buffer_.empty()) {
        const PreparedPacket& prepared = packet_buffer_.front();
        const net::PacketRecord& record = prepared.record;
        if (!lut_.offer_prepared(prepared.key, prepared.index_a, prepared.index_b,
                                 prepared.digest, record.timestamp_ns, record.frame_bytes,
                                 /*tag=*/record.flow_index)) {
            return;  // Flow LUT backpressure; retry next cycle.
        }
        ++stats_.packets;
        stats_.bytes += record.frame_bytes;
        ++stats_.packets_by_protocol[record.tuple.protocol];
        stats_.bytes_by_dst_port[record.tuple.dst_port] += record.frame_bytes;
        packet_buffer_.pop_front();
    }
}

void TrafficAnalyzer::pump_completions() {
    while (const auto completion = lut_.pop_completion()) {
        // The FiveTuple is only materialized on event paths (new flow /
        // heavy hitter) — the steady-state completion stream skips the
        // byte-unpacking entirely.
        if (completion->is_new_flow) {
            const auto tuple = net::FiveTuple::from_key_bytes(completion->key.view());
            raise(EventKind::kNewFlow, tuple, completion->fid, completion->timestamp_ns);
            auto& ports = ports_touched_[tuple.src_ip];
            ports.insert(tuple.dst_port);
            if (ports.size() == config_.port_scan_threshold) {
                raise(EventKind::kPortScan, tuple, ports.size(), completion->timestamp_ns);
            }
        }
        if (completion->fid == kInvalidFlowId) {
            // No table slot (admission reject or table full): which side of
            // the overload did we shed? The tag carries the generator's
            // flow index; overlay indices sit above overlay_flow_base.
            if (completion->tag >= config_.overlay_flow_base) {
                ++stats_.drops_overlay;
            } else {
                ++stats_.drops_real;
            }
        }
        if (completion->fid != kInvalidFlowId) {
            const core::FlowRecord* record = lut_.flow_state().find(completion->fid);
            if (record != nullptr && record->bytes >= config_.heavy_hitter_bytes &&
                !heavy_reported_.contains(completion->fid)) {
                heavy_reported_.insert(completion->fid);
                raise(EventKind::kHeavyHitter,
                      net::FiveTuple::from_key_bytes(completion->key.view()), record->bytes,
                      completion->timestamp_ns);
            }
        }
    }
    const double load = static_cast<double>(lut_.table().size()) /
                        static_cast<double>(lut_.table().capacity());
    if (!pressure_reported_ && load >= config_.table_pressure) {
        pressure_reported_ = true;
        raise(EventKind::kTablePressure, net::FiveTuple{},
              static_cast<u64>(load * 100.0), 0);
    }
}

void TrafficAnalyzer::step() {
    pump_buffer();
    lut_.step();
    pump_completions();
}

bool TrafficAnalyzer::drain(u64 max_cycles) {
    for (u64 i = 0; i < max_cycles; ++i) {
        if (packet_buffer_.empty() && lut_.drained()) {
            pump_completions();
            return true;
        }
        step();
    }
    return packet_buffer_.empty() && lut_.drained();
}

void TrafficAnalyzer::raise(EventKind kind, const net::FiveTuple& tuple, u64 value,
                            u64 timestamp_ns) {
    events_.push_back(Event{kind, tuple, value, timestamp_ns});
}

std::vector<core::FlowRecord> TrafficAnalyzer::top_flows(std::size_t n) const {
    auto flows = lut_.flow_state().snapshot();
    std::partial_sort(flows.begin(), flows.begin() + std::min(n, flows.size()), flows.end(),
                      [](const core::FlowRecord& a, const core::FlowRecord& b) {
                          return a.bytes > b.bytes;
                      });
    flows.resize(std::min(n, flows.size()));
    return flows;
}

std::string TrafficAnalyzer::report(std::size_t top_n) const {
    std::ostringstream os;
    os << "=== traffic analyzer report ===\n";
    os << "packets: " << stats_.packets << "  bytes: " << stats_.bytes
       << "  mean size: " << stats_.mean_packet_bytes() << " B\n";
    os << "active flows: " << lut_.flow_state().active_flows()
       << "  new flows: " << lut_.stats().new_flows
       << "  expired: " << lut_.flow_state().expired_total() << "\n";
    os << "lookup rate: " << lut_.mdesc_per_second() << " Mdesc/s\n";
    os << "events: " << events_.size() << "\n";
    os << "--- top " << top_n << " flows by bytes ---\n";
    for (const auto& record : top_flows(top_n)) {
        os << "  " << net::FiveTuple::from_key_bytes(record.key.view()).to_string() << "  "
           << record.bytes << " B in " << record.packets << " pkts\n";
    }
    return os.str();
}

}  // namespace flowcam::analyzer
