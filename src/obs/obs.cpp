#include "obs/obs.hpp"

#include <charconv>
#include <cmath>

namespace flowcam::obs {

namespace {

/// Shortest exact round-trip rendering (the same contract as the workload
/// metric emitters; duplicated here because obs sits below workload in the
/// layering).
std::string shortest(double value) {
    char buffer[64];
    const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
    return ec == std::errc() ? std::string(buffer, ptr) : std::to_string(value);
}

std::string json_string(const std::string& raw) {
    std::string out = "\"";
    for (const char c : raw) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    out += "\"";
    return out;
}

}  // namespace

u64 Histogram::percentile(double fraction) const {
    if (count_ == 0) return 0;
    const auto target =
        static_cast<u64>(std::ceil(fraction * static_cast<double>(count_)));
    u64 seen = 0;
    for (u32 bucket = 0; bucket < kBuckets; ++bucket) {
        seen += buckets_[bucket];
        if (seen >= target) return std::min(upper_bound_of(bucket), max_);
    }
    return max_;
}

Recorder::Recorder(const ObsConfig& config) : config_(config), trace_on_(config.trace) {
    if (trace_on_) {
        ring_.resize(config_.ring_events == 0 ? 1 : config_.ring_events);
    }
    // Canonical tracks (see kTrack*); order defines the tid values.
    track_names_ = {"engine", "scenario", "source"};
}

void Recorder::set_clock(double system_clock_hz, u32 memory_clock_ratio) {
    if (system_clock_hz <= 0.0) return;
    ns_per_sys_cycle_ = 1e9 / system_clock_hz;
    ns_per_mem_cycle_ =
        ns_per_sys_cycle_ / static_cast<double>(memory_clock_ratio == 0 ? 1 : memory_clock_ratio);
}

Result<u64*> Recorder::register_counter(const std::string& name) {
    if (counters_by_name_.contains(name)) {
        return Status(StatusCode::kAlreadyExists,
                      "obs counter '" + name + "' is already registered");
    }
    counter_cells_.emplace_back();
    u64* cell = &counter_cells_.back().value;
    counters_by_name_[name] = cell;
    counter_order_.emplace_back(name, cell);
    return cell;
}

Result<Histogram*> Recorder::register_histogram(const std::string& name) {
    if (histograms_by_name_.contains(name)) {
        return Status(StatusCode::kAlreadyExists,
                      "obs histogram '" + name + "' is already registered");
    }
    histograms_.emplace_back();
    Histogram* histogram = &histograms_.back();
    histograms_by_name_[name] = histogram;
    return histogram;
}

const u64* Recorder::find_counter(const std::string& name) const {
    const auto it = counters_by_name_.find(name);
    return it == counters_by_name_.end() ? nullptr : it->second;
}

const Histogram* Recorder::find_histogram(const std::string& name) const {
    const auto it = histograms_by_name_.find(name);
    return it == histograms_by_name_.end() ? nullptr : it->second;
}

u16 Recorder::track(const std::string& name) {
    for (std::size_t i = 0; i < track_names_.size(); ++i) {
        if (track_names_[i] == name) return static_cast<u16>(i);
    }
    track_names_.push_back(name);
    return static_cast<u16>(track_names_.size() - 1);
}

std::string Recorder::trace_json() const {
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    const auto append = [&](const std::string& event) {
        if (!first) out += ",";
        first = false;
        out += "\n";
        out += event;
    };
    // thread_name metadata gives every track a human label in the Perfetto
    // timeline (pid 1 = the simulation process).
    for (std::size_t tid = 0; tid < track_names_.size(); ++tid) {
        append("{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":" +
               std::to_string(tid) + ",\"args\":{\"name\":" + json_string(track_names_[tid]) +
               "}}");
    }
    // Oldest retained event first. ts is microseconds per the trace-event
    // spec; sub-us resolution survives as the fractional part.
    const std::size_t start = filled_ == ring_.size() ? next_ : 0;
    for (std::size_t i = 0; i < filled_; ++i) {
        const TraceEvent& event = ring_[(start + i) % ring_.size()];
        std::string line = "{\"name\":\"";
        line += event.name;
        line += "\",\"ph\":\"";
        line += event.phase;
        line += "\",\"ts\":" + shortest(static_cast<double>(event.ts_ns) / 1000.0);
        if (event.phase == 'X') {
            line += ",\"dur\":" + shortest(static_cast<double>(event.dur_ns) / 1000.0);
        }
        line += ",\"pid\":1,\"tid\":" + std::to_string(event.track);
        if (event.phase == 'i') line += ",\"s\":\"t\"";  // thread-scoped instant.
        if (event.arg_name != nullptr) {
            line += ",\"args\":{\"";
            line += event.arg_name;
            line += "\":" + std::to_string(event.arg) + "}";
        }
        line += "}";
        append(line);
    }
    out += "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"events_recorded\":" +
           std::to_string(events_recorded_) +
           ",\"events_dropped\":" + std::to_string(events_dropped_) + "}}";
    out += "\n";
    return out;
}

void Recorder::sample(Cycle now) {
    if (samples_.size() < kMaxSamples) {
        samples_.emplace_back();
    }
    SampleRow& row = samples_[sample_next_];
    sample_next_ = (sample_next_ + 1) % kMaxSamples;
    if (sample_filled_ < kMaxSamples) ++sample_filled_;
    row.cycle = now;
    row.values.resize(counter_order_.size());
    for (std::size_t i = 0; i < counter_order_.size(); ++i) {
        row.values[i] = *counter_order_[i].second;
    }
    ++samples_recorded_;
}

std::string Recorder::samples_jsonl() const {
    std::string out;
    const std::size_t start = sample_filled_ == kMaxSamples ? sample_next_ : 0;
    for (std::size_t i = 0; i < sample_filled_; ++i) {
        const SampleRow& row = samples_[(start + i) % kMaxSamples];
        out += "{\"cycle\":" + std::to_string(row.cycle);
        for (std::size_t c = 0; c < row.values.size() && c < counter_order_.size(); ++c) {
            out += "," + json_string(counter_order_[c].first) + ":" +
                   std::to_string(row.values[c]);
        }
        out += "}\n";
    }
    return out;
}

}  // namespace flowcam::obs
