// Flight recorder: the always-available observability layer the tuning and
// sharding work is judged with. Three pieces, all passive (attaching a
// Recorder never changes a simulation's decisions, only records them):
//
//  * a registry of named u64 counters (cache-line-aligned cells, stable
//    addresses) and log-bucketed Histograms (p50/p95/p99/max) — components
//    register once at attach time and bump through a raw pointer with a
//    single inlined add;
//  * a periodic Sampler snapshotting every registered counter into a bounded
//    ring every N sim-cycles, emitted as a JSONL time series so intensity
//    ramps can be correlated with drops/occupancy over time;
//  * a TraceSink recording engine/DDR/scenario events into a bounded
//    in-memory ring, serialized as Chrome trace-event JSON loadable in
//    Perfetto / chrome://tracing.
//
// Cost model: components hold a nullable `Recorder*`; every event site is
// one predictable branch when observability is off, and allocation-free
// stores into preallocated storage when it is on (the trace ring and all
// histogram buckets are sized at construction — bench_hotpath's allocation
// counter gates both arms).
#pragma once

#include <array>
#include <bit>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace flowcam::obs {

/// Observability knobs, patchable through the ConfigPatch registry
/// (`obs.trace=1 obs.sample_interval=512 ...`). Default-constructed = fully
/// off: the hot path stays allocation-free and within noise of a build
/// without the layer.
struct ObsConfig {
    /// Snapshot every registered counter each N system cycles (0 = off).
    u64 sample_interval = 0;
    /// Where the sampler's JSONL time series lands when sampling is on.
    std::string sample_path = "obs-samples.jsonl";
    /// Record engine/DDR/scenario events into the trace ring.
    bool trace = false;
    /// Where the Chrome trace-event JSON lands when tracing is on.
    std::string trace_path = "obs-trace.json";
    /// Trace ring capacity (flight-recorder semantics: when full, the oldest
    /// events are overwritten and counted as dropped).
    u64 ring_events = u64{1} << 16;

    [[nodiscard]] bool enabled() const { return trace || sample_interval > 0; }
};

/// Log-bucketed latency histogram: 2 significant bits per bucket (HDR
/// style), so any u64 sample lands in one of <= 256 buckets with <= 25%
/// relative bucket width. Count/sum/min/max are exact; percentiles are
/// bucket-granular (the reported value is the bucket's upper bound, clamped
/// to the exact max). add() is a handful of ALU ops and two stores — cheap
/// enough for per-descriptor and per-DDR-command call sites.
class Histogram {
  public:
    static constexpr std::size_t kBuckets = 256;

    void add(u64 sample) {
        ++buckets_[bucket_of(sample)];
        ++count_;
        sum_ += sample;
        if (sample < min_) min_ = sample;
        if (sample > max_) max_ = sample;
    }

    [[nodiscard]] u64 count() const { return count_; }
    [[nodiscard]] u64 sum() const { return sum_; }
    [[nodiscard]] u64 min() const { return count_ == 0 ? 0 : min_; }
    [[nodiscard]] u64 max() const { return max_; }
    [[nodiscard]] double mean() const {
        return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
    }

    /// Smallest recorded-value bound below which >= `fraction` of samples
    /// fall (bucket upper bound, clamped to the exact max).
    [[nodiscard]] u64 percentile(double fraction) const;

    /// Fold another histogram into this one (the sharded-lane merge):
    /// buckets add elementwise, count/sum accumulate, min/max widen. The
    /// result is exactly the histogram a single Recorder would have built
    /// from the union of both sample streams.
    void merge(const Histogram& other) {
        for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.count_ != 0 && other.min_ < min_) min_ = other.min_;
        if (other.max_ > max_) max_ = other.max_;
    }

    [[nodiscard]] static constexpr u32 bucket_of(u64 value) {
        if (value < 4) return static_cast<u32>(value);
        const int width = std::bit_width(value);  // >= 3.
        return static_cast<u32>(4 + (width - 3) * 4 + ((value >> (width - 3)) & 3));
    }
    /// Largest value mapping to `bucket` (inverse of bucket_of).
    [[nodiscard]] static constexpr u64 upper_bound_of(u32 bucket) {
        if (bucket < 4) return bucket;
        const u32 width = 3 + (bucket - 4) / 4;
        const u64 sub = (bucket - 4) % 4;
        return ((sub + 5) << (width - 3)) - 1;
    }

  private:
    std::array<u64, kBuckets> buckets_{};
    u64 count_ = 0;
    u64 sum_ = 0;
    u64 min_ = ~u64{0};
    u64 max_ = 0;
};

/// One recorded trace event. Names are interned string literals (call sites
/// pass `"ACT"`, `"fast-forward"`, ...), so recording is a fixed-size store.
struct TraceEvent {
    u64 ts_ns = 0;
    u64 dur_ns = 0;               ///< 'X' (complete) events only.
    const char* name = nullptr;
    const char* arg_name = nullptr;  ///< nullptr = no args object.
    u64 arg = 0;
    u16 track = 0;                ///< Perfetto tid; named via track().
    char phase = 'i';             ///< 'i' instant, 'X' complete.
};

/// The flight recorder one simulation stack (engine + analyzer + Flow LUT +
/// DDR controllers) attaches to. Not thread-safe by design — experiment
/// cells each own a private Recorder, matching their private engine.
class Recorder {
  public:
    explicit Recorder(const ObsConfig& config);

    [[nodiscard]] const ObsConfig& config() const { return config_; }

    // ---- Clock domains ---------------------------------------------------
    /// Trace/sample timestamps are sim-ns derived from the system clock;
    /// memory-domain call sites convert their (ratio x faster) cycles.
    void set_clock(double system_clock_hz, u32 memory_clock_ratio);
    [[nodiscard]] u64 sys_ns(Cycle cycle) const {
        return static_cast<u64>(static_cast<double>(cycle) * ns_per_sys_cycle_);
    }
    [[nodiscard]] u64 mem_ns(Cycle memory_cycle) const {
        return static_cast<u64>(static_cast<double>(memory_cycle) * ns_per_mem_cycle_);
    }

    // ---- Counter / histogram registry ------------------------------------
    /// Register a named counter; the returned cell pointer is stable for the
    /// Recorder's lifetime and bumped directly (`++*cell`).
    /// kAlreadyExists when the name is taken — names are the JSONL schema,
    /// so a collision means two components would silently share a cell.
    [[nodiscard]] Result<u64*> register_counter(const std::string& name);
    [[nodiscard]] Result<Histogram*> register_histogram(const std::string& name);

    /// Read-side lookups (reporting; nullptr when absent).
    [[nodiscard]] const u64* find_counter(const std::string& name) const;
    [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

    /// High-water-mark update for occupancy gauges.
    static void high_water(u64* cell, u64 value) {
        if (value > *cell) *cell = value;
    }

    // ---- Trace sink ------------------------------------------------------
    /// Canonical tracks, registered by the constructor; components with
    /// several instances (the DDR controllers) register their own by name.
    static constexpr u16 kTrackEngine = 0;
    static constexpr u16 kTrackScenario = 1;
    static constexpr u16 kTrackSource = 2;

    /// Register-or-get a named track (Perfetto thread) id.
    [[nodiscard]] u16 track(const std::string& name);

    void event_instant(u16 track, const char* name, u64 ts_ns,
                       const char* arg_name = nullptr, u64 arg = 0) {
        if (!trace_on_) return;
        push_event(TraceEvent{ts_ns, 0, name, arg_name, arg, track, 'i'});
    }
    void event_span(u16 track, const char* name, u64 ts_ns, u64 dur_ns,
                    const char* arg_name = nullptr, u64 arg = 0) {
        if (!trace_on_) return;
        push_event(TraceEvent{ts_ns, dur_ns, name, arg_name, arg, track, 'X'});
    }

    [[nodiscard]] bool tracing() const { return trace_on_; }
    [[nodiscard]] u64 events_recorded() const { return events_recorded_; }
    /// Events overwritten because the ring was full (flight-recorder drop).
    [[nodiscard]] u64 events_dropped() const { return events_dropped_; }

    /// Chrome trace-event JSON: `{"traceEvents":[...]}` with thread_name
    /// metadata per track; `ts` in microseconds as Perfetto expects.
    [[nodiscard]] std::string trace_json() const;

    // ---- Sampler ---------------------------------------------------------
    /// Snapshot every registered counter at `now` into the sample ring
    /// (bounded; oldest rows overwritten). Driven by the runner's sampler
    /// ticker every `sample_interval` cycles.
    void sample(Cycle now);

    [[nodiscard]] u64 samples_recorded() const { return samples_recorded_; }

    /// One JSONL object per retained sample, oldest first:
    /// `{"cycle":N,"<counter>":v,...}`.
    [[nodiscard]] std::string samples_jsonl() const;

  private:
    struct alignas(64) CounterCell {
        u64 value = 0;
    };
    struct SampleRow {
        Cycle cycle = 0;
        std::vector<u64> values;
    };

    void push_event(const TraceEvent& event) {
        if (ring_.empty()) return;
        if (filled_ == ring_.size()) {
            ++events_dropped_;  // overwrite the oldest retained event.
        } else {
            ++filled_;
        }
        ring_[next_] = event;
        next_ = (next_ + 1) % ring_.size();
        ++events_recorded_;
    }

    /// The sampler ring is bounded independently of the (much larger) trace
    /// ring: a row carries every counter, so 4k rows of ~30 counters is
    /// already a ~1 MB flight recording.
    static constexpr std::size_t kMaxSamples = 4096;

    ObsConfig config_;
    double ns_per_sys_cycle_ = 5.0;   ///< 200 MHz default system clock.
    double ns_per_mem_cycle_ = 1.25;  ///< x4 memory clock ratio default.

    // Registry. Deques give stable cell addresses across registrations.
    std::deque<CounterCell> counter_cells_;
    std::deque<Histogram> histograms_;
    std::map<std::string, u64*> counters_by_name_;
    std::map<std::string, Histogram*> histograms_by_name_;
    std::vector<std::pair<std::string, const u64*>> counter_order_;

    // Trace ring (preallocated when tracing; recording never allocates).
    bool trace_on_ = false;
    std::vector<TraceEvent> ring_;
    std::size_t next_ = 0;
    std::size_t filled_ = 0;
    u64 events_recorded_ = 0;
    u64 events_dropped_ = 0;
    std::vector<std::string> track_names_;

    // Sample ring.
    std::vector<SampleRow> samples_;
    std::size_t sample_next_ = 0;
    std::size_t sample_filled_ = 0;
    u64 samples_recorded_ = 0;
};

}  // namespace flowcam::obs
