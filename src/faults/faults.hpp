// Fault-injection harness: seeded, deterministic fault schedules that drive
// the Flow LUT's retry / backpressure / expiry machinery through states
// normal runs never reach. Four injectable fault families, all patchable
// through `fault.*` ConfigPatch keys:
//
//  * DDR queue-full bursts — the controller's enqueue is vetoed for a run of
//    requests, exercising the issue-retry paths (including the PR 2
//    delete-retry exactly-once guard);
//  * delayed completions — a DDR response is held for N memory cycles before
//    delivery (ordering is preserved per path), stretching the in-flight
//    windows the Req Filter protects;
//  * duplicated completions — a response is delivered twice; the second is a
//    spurious unknown-id response the LUT must ignore, not crash on;
//  * packet-buffer backpressure storms — feed_record force-rejects a run of
//    packets, exercising the source hold/retry loop;
//  * clock-skewed expiry — the housekeeping expiry clock runs ahead of the
//    stream clock by a fixed skew, forcing early expiries that race live
//    lookups.
//
// On top of the independent per-site knobs sits the **correlated fault
// campaign** (`fault.campaign_*`): piecewise cycle windows during which
// every probabilistic family fires with at least `fault.campaign_intensity`
// simultaneously — the coordinated-failure mode (memory pressure + slow
// responses + input backpressure arriving together) that independent knobs
// cannot produce. The Flow LUT advances the campaign clock at the top of
// every tick; sharded runs salt the campaign seed per slice, so campaigns
// are lane-count-invariant like every other fault.
//
// The injector is owned by the workload runner and threaded down to the
// analyzer / LUT / DDR controllers. Like the obs layer, components hold a
// nullable pointer: faults off = one branch per site.
//
// Alongside injection sits the invariant auditor (FlowLut::audit): a
// cross-check mode in the spirit of PR 5's SchedulerMode::kCrossCheck that
// asserts conservation laws (completions == packets, occupancy ==
// inserts - removals, reservation grants == confirms + reclaims + open, no
// parked-forever buckets) both periodically and after drain.
#pragma once

#include <algorithm>
#include <array>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace flowcam::faults {

/// Fault-injection knobs. Default-constructed = fully off; `audit` alone
/// turns on the invariant auditor without injecting anything.
struct FaultConfig {
    u64 seed = 0xfa17;  ///< injector PRNG seed (independent of workload seeds).

    /// Per-enqueue probability that a DDR queue-full burst starts; once
    /// started, the next `ddr_reject_len` enqueues on that channel are
    /// force-rejected.
    double ddr_reject_p = 0.0;
    u32 ddr_reject_len = 8;

    /// Per-response probability that a DDR completion is held for
    /// `resp_delay_cycles` memory cycles before the LUT sees it.
    double resp_delay_p = 0.0;
    u32 resp_delay_cycles = 32;

    /// Per-response probability that a completion is delivered twice (the
    /// duplicate arrives as a spurious unknown-id response).
    double resp_dup_p = 0.0;

    /// Per-packet probability that a packet-buffer backpressure storm
    /// starts; once started, the next `buffer_storm_len` feed_record calls
    /// are force-rejected (the source holds and re-offers).
    double buffer_storm_p = 0.0;
    u32 buffer_storm_len = 16;

    /// Fixed skew added to the expiry clock only: housekeeping sees
    /// stream_time + skew, so flows expire early and deletes race lookups.
    u64 expiry_skew_ns = 0;

    /// Run the invariant auditor (periodic + final conservation checks).
    bool audit = false;

    // --- Correlated fault campaign ---------------------------------------
    // A piecewise fault timeline (windows like the workload's
    // IntensitySchedule): inside a campaign window EVERY probabilistic fault
    // family fires with at least `campaign_intensity` — DDR queue-full
    // bursts, delayed/dup completions and backpressure storms arrive
    // *together*, the correlated failure mode independent per-site knobs
    // can't produce. Windows are cycle-based: the first opens at
    // `campaign_onset`, lasts `campaign_len` cycles, and repeats every
    // `campaign_period` cycles (`0` = one-shot) for `campaign_count`
    // repetitions (`0` = unbounded). `campaign_len == 0` disables the whole
    // feature (the default path pays one dead branch).
    u64 campaign_onset = 0;
    u64 campaign_len = 0;
    u64 campaign_period = 0;
    u64 campaign_count = 1;
    double campaign_intensity = 0.25;

    [[nodiscard]] bool campaign_enabled() const {
        return campaign_len > 0 && campaign_intensity > 0.0;
    }

    [[nodiscard]] bool any() const {
        return ddr_reject_p > 0.0 || resp_delay_p > 0.0 || resp_dup_p > 0.0 ||
               buffer_storm_p > 0.0 || expiry_skew_ns != 0 || campaign_enabled();
    }
    [[nodiscard]] bool enabled() const { return any() || audit; }
};

/// How often each fault family actually fired (harvested into metrics so CI
/// can assert every configured fault fired at least once).
struct FaultStats {
    u64 ddr_rejects = 0;
    u64 resp_delays = 0;
    u64 resp_dups = 0;
    u64 storm_rejects = 0;
    u64 campaign_windows = 0;  ///< campaign windows actually entered.

    [[nodiscard]] u64 total() const {
        return ddr_rejects + resp_delays + resp_dups + storm_rejects;
    }
};

/// One PRNG, one stats block, per-site burst counters. Draw order is
/// deterministic because the simulator is single-threaded; a given
/// (config, workload) pair replays byte-identically.
class FaultInjector {
  public:
    static constexpr u32 kMaxDdrSites = 4;  ///< 2 paths suffice today.

    explicit FaultInjector(const FaultConfig& config)
        : config_(config), rng_(config.seed) {}

    /// Advance the campaign clock (the Flow LUT calls this once at the top
    /// of every tick). Rising edges count windows; fault sites consulted
    /// after this call all see the same verdict for cycle `now`.
    void advance_to(u64 now) {
        const bool in = in_campaign(now);
        if (in && !in_window_) ++stats_.campaign_windows;
        in_window_ = in;
    }

    /// True while the current cycle sits inside a campaign window.
    [[nodiscard]] bool in_campaign() const { return in_window_; }

    /// DDR enqueue veto for channel `site`. True = force-reject this request.
    [[nodiscard]] bool veto_ddr_enqueue(u32 site) {
        auto& burst_left = reject_burst_left_.at(site % kMaxDdrSites);
        if (burst_left == 0) {
            const double p = boosted(config_.ddr_reject_p);
            if (p <= 0.0 || !rng_.chance(p)) return false;
            burst_left = config_.ddr_reject_len == 0 ? 1 : config_.ddr_reject_len;
        }
        --burst_left;
        ++stats_.ddr_rejects;
        return true;
    }

    /// Hold cycles for a DDR response about to be delivered (0 = deliver now).
    [[nodiscard]] u32 response_delay() {
        const double p = boosted(config_.resp_delay_p);
        if (p <= 0.0 || !rng_.chance(p)) return 0;
        ++stats_.resp_delays;
        return config_.resp_delay_cycles == 0 ? 1 : config_.resp_delay_cycles;
    }

    /// True = deliver this response a second time (as a spurious duplicate).
    [[nodiscard]] bool duplicate_response() {
        const double p = boosted(config_.resp_dup_p);
        if (p <= 0.0 || !rng_.chance(p)) return false;
        ++stats_.resp_dups;
        return true;
    }

    /// Packet-buffer storm veto. True = force-reject this feed_record call.
    [[nodiscard]] bool veto_feed() {
        if (storm_left_ == 0) {
            const double p = boosted(config_.buffer_storm_p);
            if (p <= 0.0 || !rng_.chance(p)) return false;
            storm_left_ = config_.buffer_storm_len == 0 ? 1 : config_.buffer_storm_len;
        }
        --storm_left_;
        ++stats_.storm_rejects;
        return true;
    }

    [[nodiscard]] u64 expiry_skew_ns() const { return config_.expiry_skew_ns; }

    [[nodiscard]] const FaultConfig& config() const { return config_; }
    [[nodiscard]] const FaultStats& stats() const { return stats_; }

  private:
    /// Inside a campaign window every probabilistic family fires with at
    /// least the campaign intensity; outside, base knobs apply unchanged.
    /// Zero-probability families draw nothing outside windows, so a
    /// campaign config replays byte-identically regardless of which other
    /// fault knobs are set.
    [[nodiscard]] double boosted(double p) const {
        return in_window_ ? std::max(p, config_.campaign_intensity) : p;
    }

    [[nodiscard]] bool in_campaign(u64 now) const {
        if (!config_.campaign_enabled()) return false;
        if (now < config_.campaign_onset) return false;
        const u64 t = now - config_.campaign_onset;
        if (config_.campaign_period == 0) return t < config_.campaign_len;
        const u64 window = t / config_.campaign_period;
        if (config_.campaign_count != 0 && window >= config_.campaign_count) return false;
        return t % config_.campaign_period < config_.campaign_len;
    }

    FaultConfig config_;
    Xoshiro256 rng_;
    FaultStats stats_;
    std::array<u32, kMaxDdrSites> reject_burst_left_{};
    u32 storm_left_ = 0;
    bool in_window_ = false;
};

}  // namespace flowcam::faults
