// Fault-injection harness: seeded, deterministic fault schedules that drive
// the Flow LUT's retry / backpressure / expiry machinery through states
// normal runs never reach. Four injectable fault families, all patchable
// through `fault.*` ConfigPatch keys:
//
//  * DDR queue-full bursts — the controller's enqueue is vetoed for a run of
//    requests, exercising the issue-retry paths (including the PR 2
//    delete-retry exactly-once guard);
//  * delayed completions — a DDR response is held for N memory cycles before
//    delivery (ordering is preserved per path), stretching the in-flight
//    windows the Req Filter protects;
//  * duplicated completions — a response is delivered twice; the second is a
//    spurious unknown-id response the LUT must ignore, not crash on;
//  * packet-buffer backpressure storms — feed_record force-rejects a run of
//    packets, exercising the source hold/retry loop;
//  * clock-skewed expiry — the housekeeping expiry clock runs ahead of the
//    stream clock by a fixed skew, forcing early expiries that race live
//    lookups.
//
// The injector is owned by the workload runner and threaded down to the
// analyzer / LUT / DDR controllers. Like the obs layer, components hold a
// nullable pointer: faults off = one branch per site.
//
// Alongside injection sits the invariant auditor (FlowLut::audit): a
// cross-check mode in the spirit of PR 5's SchedulerMode::kCrossCheck that
// asserts conservation laws (completions == packets, occupancy ==
// inserts - removals, reservation grants == confirms + reclaims + open, no
// parked-forever buckets) both periodically and after drain.
#pragma once

#include <array>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace flowcam::faults {

/// Fault-injection knobs. Default-constructed = fully off; `audit` alone
/// turns on the invariant auditor without injecting anything.
struct FaultConfig {
    u64 seed = 0xfa17;  ///< injector PRNG seed (independent of workload seeds).

    /// Per-enqueue probability that a DDR queue-full burst starts; once
    /// started, the next `ddr_reject_len` enqueues on that channel are
    /// force-rejected.
    double ddr_reject_p = 0.0;
    u32 ddr_reject_len = 8;

    /// Per-response probability that a DDR completion is held for
    /// `resp_delay_cycles` memory cycles before the LUT sees it.
    double resp_delay_p = 0.0;
    u32 resp_delay_cycles = 32;

    /// Per-response probability that a completion is delivered twice (the
    /// duplicate arrives as a spurious unknown-id response).
    double resp_dup_p = 0.0;

    /// Per-packet probability that a packet-buffer backpressure storm
    /// starts; once started, the next `buffer_storm_len` feed_record calls
    /// are force-rejected (the source holds and re-offers).
    double buffer_storm_p = 0.0;
    u32 buffer_storm_len = 16;

    /// Fixed skew added to the expiry clock only: housekeeping sees
    /// stream_time + skew, so flows expire early and deletes race lookups.
    u64 expiry_skew_ns = 0;

    /// Run the invariant auditor (periodic + final conservation checks).
    bool audit = false;

    [[nodiscard]] bool any() const {
        return ddr_reject_p > 0.0 || resp_delay_p > 0.0 || resp_dup_p > 0.0 ||
               buffer_storm_p > 0.0 || expiry_skew_ns != 0;
    }
    [[nodiscard]] bool enabled() const { return any() || audit; }
};

/// How often each fault family actually fired (harvested into metrics so CI
/// can assert every configured fault fired at least once).
struct FaultStats {
    u64 ddr_rejects = 0;
    u64 resp_delays = 0;
    u64 resp_dups = 0;
    u64 storm_rejects = 0;

    [[nodiscard]] u64 total() const {
        return ddr_rejects + resp_delays + resp_dups + storm_rejects;
    }
};

/// One PRNG, one stats block, per-site burst counters. Draw order is
/// deterministic because the simulator is single-threaded; a given
/// (config, workload) pair replays byte-identically.
class FaultInjector {
  public:
    static constexpr u32 kMaxDdrSites = 4;  ///< 2 paths suffice today.

    explicit FaultInjector(const FaultConfig& config)
        : config_(config), rng_(config.seed) {}

    /// DDR enqueue veto for channel `site`. True = force-reject this request.
    [[nodiscard]] bool veto_ddr_enqueue(u32 site) {
        auto& burst_left = reject_burst_left_.at(site % kMaxDdrSites);
        if (burst_left == 0) {
            if (config_.ddr_reject_p <= 0.0 || !rng_.chance(config_.ddr_reject_p)) {
                return false;
            }
            burst_left = config_.ddr_reject_len == 0 ? 1 : config_.ddr_reject_len;
        }
        --burst_left;
        ++stats_.ddr_rejects;
        return true;
    }

    /// Hold cycles for a DDR response about to be delivered (0 = deliver now).
    [[nodiscard]] u32 response_delay() {
        if (config_.resp_delay_p <= 0.0 || !rng_.chance(config_.resp_delay_p)) return 0;
        ++stats_.resp_delays;
        return config_.resp_delay_cycles == 0 ? 1 : config_.resp_delay_cycles;
    }

    /// True = deliver this response a second time (as a spurious duplicate).
    [[nodiscard]] bool duplicate_response() {
        if (config_.resp_dup_p <= 0.0 || !rng_.chance(config_.resp_dup_p)) return false;
        ++stats_.resp_dups;
        return true;
    }

    /// Packet-buffer storm veto. True = force-reject this feed_record call.
    [[nodiscard]] bool veto_feed() {
        if (storm_left_ == 0) {
            if (config_.buffer_storm_p <= 0.0 || !rng_.chance(config_.buffer_storm_p)) {
                return false;
            }
            storm_left_ = config_.buffer_storm_len == 0 ? 1 : config_.buffer_storm_len;
        }
        --storm_left_;
        ++stats_.storm_rejects;
        return true;
    }

    [[nodiscard]] u64 expiry_skew_ns() const { return config_.expiry_skew_ns; }

    [[nodiscard]] const FaultConfig& config() const { return config_; }
    [[nodiscard]] const FaultStats& stats() const { return stats_; }

  private:
    FaultConfig config_;
    Xoshiro256 rng_;
    FaultStats stats_;
    std::array<u32, kMaxDdrSites> reject_burst_left_{};
    u32 storm_left_ = 0;
};

}  // namespace flowcam::faults
