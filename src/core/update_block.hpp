// The Update block (paper Fig. 5): a request arbitrator (Req_Arb) feeding a
// burst write generator (BWr_Gen).
//
// Req_Arb classifies incoming requests into deletions (from the Flow State
// housekeeping) and insertions (from Flow Match misses), de-duplicates
// same-key requests, and "schedules the input deletion/insertion requests
// and forwards them as update requests in an optimized sequence".
//
// BWr_Gen "monitor[s] both the time gap since the last update and the
// number of ongoing update requests, in order to issue burst write requests
// at timeout or at the time when the request count reaches the target
// limit" — this is the knob that turns scattered single writes into long
// write bursts, exploiting the Fig. 3 bandwidth curve.
#pragma once

#include <vector>

#include "common/ring_queue.hpp"
#include "common/types.hpp"
#include "core/blocks.hpp"
#include "core/flow_key.hpp"

namespace flowcam::core {

struct UpdateBlockStats {
    u64 inserts_accepted = 0;
    u64 deletes_accepted = 0;
    u64 duplicates_merged = 0;
    u64 inserts_cancelled = 0;
    u64 bursts_released = 0;
    u64 requests_released = 0;
    u64 releases_on_timeout = 0;
    u64 releases_on_threshold = 0;

    [[nodiscard]] double mean_burst_length() const {
        return bursts_released == 0
                   ? 0.0
                   : static_cast<double>(requests_released) / static_cast<double>(bursts_released);
    }
};

class UpdateBlock {
  public:
    UpdateBlock(u32 burst_threshold, Cycle timeout, std::size_t depth)
        : burst_threshold_(burst_threshold), timeout_(timeout), depth_(depth) {}

    [[nodiscard]] bool can_accept() const { return queue_.size() < depth_; }

    /// Req_Arb entry point. Duplicate keys (same kind) are merged.
    /// Returns false when the queue is full.
    [[nodiscard]] bool submit(UpdateRequest request, Cycle now);

    /// BWr_Gen: returns the batch to issue this cycle (empty most cycles).
    /// A batch is released when the queue reaches the threshold or the
    /// oldest request exceeds the timeout.
    [[nodiscard]] std::vector<UpdateRequest> release(Cycle now);

    /// True if a delete for this key is already queued (housekeeping guard).
    [[nodiscard]] bool delete_pending(const FlowKey& key) const {
        return pending_deletes_.find(key) != nullptr;
    }
    [[nodiscard]] bool delete_pending(std::span<const u8> key) const {
        return delete_pending(FlowKey(key));
    }

    /// Revoke a still-queued insert (reservation reclaim, the "nack" arm of
    /// the grant protocol). Returns true if the insert was queued and is now
    /// marked cancelled: the request still flows through release() (tagged
    /// `cancelled`) so the caller can drop its Req Filter pending-update
    /// hold exactly once — erasing it from the queue here would leak that
    /// hold, the PR 2 bug class. Returns false if the insert already left
    /// the queue (the write may be in flight or done).
    [[nodiscard]] bool cancel_insert(const FlowKey& key);

    [[nodiscard]] std::size_t backlog() const { return queue_.size(); }
    [[nodiscard]] const UpdateBlockStats& stats() const { return stats_; }

  private:
    u32 burst_threshold_;
    Cycle timeout_;
    std::size_t depth_;
    common::RingQueue<UpdateRequest> queue_;
    /// Pending keys per kind (sets: the u8 value is unused) — the Req_Arb
    /// duplicate filter, now alloc-free per request.
    FlowKeyMap<u8> pending_inserts_;
    FlowKeyMap<u8> pending_deletes_;
    /// Inserts revoked while queued, by key (a count: a key can in theory be
    /// cancelled, re-inserted and cancelled again before a release). Marked
    /// onto the matching request(s) as they leave the queue.
    FlowKeyMap<u32> cancelled_;
    UpdateBlockStats stats_;
};

}  // namespace flowcam::core
