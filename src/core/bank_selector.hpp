// The DLU's Bank Selector (paper Fig. 4): queues incoming lookup requests
// "and order[s] them based on the bank information in the DDR SDRAM that
// they intend to access".
//
// Model: one FIFO per DDR bank; issue picks the next non-empty bank in
// round-robin order starting after the last issued bank. Requests to the
// same bank (hence same flow, which always maps to one address) never
// reorder; requests to different banks spread so consecutive activations
// land on different banks and tRC/tRRD overlap — the effect Table II(A)
// measures ("there is no distinct degradation ... with random hash values
// as the bank selector works to re-organize the input data into 8 banks").
#pragma once

#include <optional>
#include <vector>

#include "common/ring_queue.hpp"
#include "common/types.hpp"

namespace flowcam::core {

template <typename Job>
class BankSelector {
  public:
    explicit BankSelector(u32 banks) : queues_(banks) {}

    void push(u32 bank, Job job) {
        queues_[bank % queues_.size()].push_back(std::move(job));
        ++size_;
        peak_ = std::max(peak_, size_);
    }

    /// Pop the head of the next non-empty bank queue after the last pick.
    [[nodiscard]] std::optional<Job> pop_rotating() {
        if (size_ == 0) return std::nullopt;
        const auto banks = static_cast<u32>(queues_.size());
        for (u32 step = 1; step <= banks; ++step) {
            const u32 bank = (rotor_ + step) % banks;
            if (!queues_[bank].empty()) {
                rotor_ = bank;
                --size_;
                return queues_[bank].pop_front();
            }
        }
        return std::nullopt;
    }

    /// Peek without popping (used when downstream may refuse the job).
    [[nodiscard]] const Job* peek_rotating() const {
        if (size_ == 0) return nullptr;
        const auto banks = static_cast<u32>(queues_.size());
        for (u32 step = 1; step <= banks; ++step) {
            const u32 bank = (rotor_ + step) % banks;
            if (!queues_[bank].empty()) return &queues_[bank].front();
        }
        return nullptr;
    }

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] std::size_t peak_size() const { return peak_; }
    [[nodiscard]] u32 bank_count() const { return static_cast<u32>(queues_.size()); }
    [[nodiscard]] std::size_t bank_depth(u32 bank) const { return queues_[bank].size(); }

  private:
    std::vector<common::RingQueue<Job>> queues_;
    u32 rotor_ = 0;
    std::size_t size_ = 0;
    std::size_t peak_ = 0;
};

}  // namespace flowcam::core
