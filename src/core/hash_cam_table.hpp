// The functional Hash-CAM table of the paper's Fig. 1: a two-choice hash
// table over two independent memory sets (Mem1/Mem2, each bucket holding K
// entries) plus a collision CAM.
//
// Search order is the paper's three-stage short-circuit pipeline:
//   CAM  ->  Hash1/Mem1  ->  Hash2/Mem2
// A match at any stage answers without touching later stages — that is what
// lets the dual-path engine start the next search early.
//
// This class is the *functional* model (authoritative contents + placement
// decisions). The timed engine (FlowLut) wraps it with DDR traffic, and a
// property test asserts timed results always equal functional results.
// It also implements table::LookupTable so the baseline bench can compare
// the scheme head-to-head with the related-work structures.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cam/cam.hpp"
#include "common/result.hpp"
#include "common/types.hpp"
#include "core/config.hpp"
#include "hash/index_gen.hpp"
#include "table/lookup_table.hpp"

namespace flowcam::core {

/// Which pipeline stage answered a search (for stage-occupancy statistics).
enum class MatchStage : u8 { kMiss = 0, kCam = 1, kMem1 = 2, kMem2 = 3 };

struct SearchResult {
    MatchStage stage = MatchStage::kMiss;
    TableIndex location;
    u64 payload = 0;

    [[nodiscard]] bool hit() const { return stage != MatchStage::kMiss; }
};

/// One key of a batched probe: the caller carries the precomputed bucket
/// indices exactly as search_indexed does.
struct SearchProbe {
    std::span<const u8> key;
    u64 index_a = 0;
    u64 index_b = 0;
};

class HashCamTable final : public table::LookupTable {
  public:
    explicit HashCamTable(const FlowLutConfig& config);

    // --- table::LookupTable interface ------------------------------------
    [[nodiscard]] std::optional<u64> lookup(std::span<const u8> key) override;
    Status insert(std::span<const u8> key, u64 payload) override;
    Status erase(std::span<const u8> key) override;
    [[nodiscard]] u64 size() const override { return size_; }
    [[nodiscard]] u64 capacity() const override { return config_.table_capacity(); }
    [[nodiscard]] std::string name() const override { return "hash-cam"; }

    // --- Detailed API used by the timed engine ---------------------------
    /// Full three-stage search with stage/location detail.
    [[nodiscard]] SearchResult search(std::span<const u8> key);

    /// search() with the caller's precomputed bucket indices — valid only
    /// when they equal the indexer's values for `key` (the timed engine's
    /// descriptors carry them from packet arrival, so the functional
    /// re-check after an LU2 miss does not re-hash).
    [[nodiscard]] SearchResult search_indexed(std::span<const u8> key, u64 index_a, u64 index_b);

    /// The stat-free core of search_indexed: identical answer, no counter
    /// updates. Batched paths probe speculatively through this and then
    /// replay the exact counter increments with record_search() for the
    /// probes they actually consume, so statistics stay byte-identical to
    /// scalar dispatch.
    [[nodiscard]] SearchResult search_core(std::span<const u8> key, u64 index_a,
                                           u64 index_b) const;

    /// Apply the statistics that search_indexed would have recorded for
    /// `result` (per-stage short-circuit costs included).
    void record_search(const SearchResult& result);

    /// Batched stat-free probes: out[i] = search_core(probes[i]), with the
    /// next probe's bucket lines prefetched while the current one compares.
    void search_indexed_multi(const SearchProbe* probes, std::size_t count,
                              SearchResult* out) const;

    /// Hint the cache that both candidate buckets are about to be searched.
    void prefetch_buckets(u64 index_a, u64 index_b) const;

    /// Search only one memory set (one path's Flow Match does exactly this).
    [[nodiscard]] SearchResult search_mem(u32 mem, std::span<const u8> key) const;
    [[nodiscard]] SearchResult search_mem_at(u32 mem, u64 bucket_index,
                                             std::span<const u8> key) const;

    /// CAM-only search (the sequencer's stage-1 check).
    [[nodiscard]] std::optional<SearchResult> search_cam(std::span<const u8> key);

    /// Decide where a new key would be stored, without storing it:
    /// Mem1/Mem2 bucket way per the insert policy, CAM as last resort.
    [[nodiscard]] Result<TableIndex> choose_placement(std::span<const u8> key) const;
    /// choose_placement() with precomputed bucket indices (same contract as
    /// search_indexed).
    [[nodiscard]] Result<TableIndex> choose_placement_indexed(std::span<const u8> key,
                                                              u64 index_a, u64 index_b) const;

    /// Write `key`->`payload` at a previously chosen location.
    Status insert_at(TableIndex location, std::span<const u8> key, u64 payload);

    /// Remove whatever is stored at `location` (must match `key`).
    Status erase_at(TableIndex location, std::span<const u8> key);

    /// Location of `key` if present.
    [[nodiscard]] std::optional<TableIndex> locate(std::span<const u8> key) const;

    // --- DDR mirroring helpers --------------------------------------------
    /// Serialized bytes of one bucket (what the hardware stores in DDR).
    [[nodiscard]] std::vector<u8> serialize_bucket(u32 mem, u64 bucket_index) const;
    /// Same, into a caller-provided buffer (the hot write path recycles
    /// payload buffers through the controller pool).
    void serialize_bucket_into(u32 mem, u64 bucket_index, std::vector<u8>& out) const;

    /// Compare a key against raw bucket bytes read back from DDR; returns
    /// the matching way. This is the Flow Match comparator and is
    /// deliberately independent of the functional arrays.
    [[nodiscard]] static std::optional<u32> match_in_bucket_bytes(
        std::span<const u8> bucket_bytes, u32 ways, u32 entry_bytes, std::span<const u8> key);

    // --- Introspection -----------------------------------------------------
    /// The stored entry at a memory-set slot (eviction policies read victim
    /// keys through this; check `valid` before use).
    [[nodiscard]] const table::Entry& mem_entry(u32 mem, u64 slot) const {
        return entry_at(mem, slot);
    }
    [[nodiscard]] const hash::IndexGenerator& indexer() const { return indexer_; }
    [[nodiscard]] const cam::Cam& collision_cam() const { return cam_; }
    [[nodiscard]] u64 cam_entries() const { return cam_.size(); }
    [[nodiscard]] u32 bucket_occupancy(u32 mem, u64 bucket_index) const;
    [[nodiscard]] const FlowLutConfig& config() const { return config_; }

    /// Count of searches answered per stage (pipeline statistics).
    struct StageStats {
        u64 cam_hits = 0;
        u64 mem1_hits = 0;
        u64 mem2_hits = 0;
        u64 misses = 0;
    };
    [[nodiscard]] const StageStats& stage_stats() const { return stage_stats_; }

    /// Entry wire format: [0] = flags (bit0 valid, bits 1-6 key length),
    /// [1 .. 1+len) key bytes, remainder zero.
    static constexpr u32 kEntryHeaderBytes = 1;

  private:
    [[nodiscard]] const table::Entry& entry_at(u32 mem, u64 slot) const {
        return mems_[mem][slot];
    }
    [[nodiscard]] u64 slot_of(u64 bucket_index, u32 way) const {
        return bucket_index * config_.ways + way;
    }

    FlowLutConfig config_;
    hash::IndexGenerator indexer_;
    std::vector<table::Entry> mems_[2];
    cam::Cam cam_;
    u64 size_ = 0;
    StageStats stage_stats_;
};

}  // namespace flowcam::core
