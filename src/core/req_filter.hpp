// The DLU's Request Filter (paper Fig. 4): "manage[s] the proceeding
// requests and group[s] certain requests into a waiting list if necessary.
// This is to avoid the corner cases, for instance if one request is updating
// the memory while another request is trying to access the same location."
//
// Concretely, per bucket address it tracks:
//  * pending updates (insert/delete writes not yet completed in DDR) — new
//    lookups to that address are parked until the write retires, so a read
//    never observes half-applied state;
//  * in-flight reads — delete writes wait for them, so a read never returns
//    an entry that was already functionally erased (stale-hit hazard).
//
// Parking is FIFO per address: once any lookup for an address is parked,
// later lookups for the same address park behind it even if the block
// clears in between. That preserves per-flow order (same flow => same
// bucket address on a given path).
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace flowcam::core {

template <typename Job>
class ReqFilter {
  public:
    /// True if a lookup for `addr` must be parked right now.
    [[nodiscard]] bool read_blocked(u64 addr) const {
        const auto it = state_.find(addr);
        return it != state_.end() &&
               (it->second.pending_updates > 0 || !it->second.parked.empty());
    }

    /// Park a lookup until the blocking update retires.
    void park(u64 addr, Job job) {
        state_[addr].parked.push_back(std::move(job));
        ++parked_total_;
        ++parked_now_;
    }

    /// An update write targeting `addr` was created (insert decision or
    /// delete issue). Blocks new reads.
    void update_created(u64 addr) { ++state_[addr].pending_updates; }

    /// The update write completed in DDR. Returns lookups now released, in
    /// FIFO order; the caller re-injects them into the bank selector.
    [[nodiscard]] std::vector<Job> update_retired(u64 addr) {
        const auto it = state_.find(addr);
        if (it == state_.end()) return {};
        if (it->second.pending_updates > 0) --it->second.pending_updates;
        std::vector<Job> released;
        if (it->second.pending_updates == 0) {
            released.reserve(it->second.parked.size());
            parked_now_ -= it->second.parked.size();
            while (!it->second.parked.empty()) {
                released.push_back(std::move(it->second.parked.front()));
                it->second.parked.pop_front();
            }
        }
        reclaim_if_crowded(it);
        return released;
    }

    /// Read issued to / retired from the memory controller.
    void read_issued(u64 addr) { ++state_[addr].inflight_reads; }
    void read_retired(u64 addr) {
        const auto it = state_.find(addr);
        if (it == state_.end()) return;
        if (it->second.inflight_reads > 0) --it->second.inflight_reads;
        reclaim_if_crowded(it);
    }

    /// True if a *delete* write to `addr` must wait (reads in flight).
    [[nodiscard]] bool delete_blocked(u64 addr) const {
        const auto it = state_.find(addr);
        return it != state_.end() && it->second.inflight_reads > 0;
    }

    [[nodiscard]] u64 parked_total() const { return parked_total_; }
    /// Addresses with live filter state. Idle nodes are retained (and
    /// reused on the next touch — no per-read allocation churn) but do not
    /// count as tracked.
    [[nodiscard]] std::size_t tracked_addresses() const {
        std::size_t count = 0;
        for (const auto& [addr, entry] : state_) {
            if (entry.pending_updates != 0 || entry.inflight_reads != 0 ||
                !entry.parked.empty()) {
                ++count;
            }
        }
        return count;
    }
    /// Currently parked jobs — O(1), it gates the engine's idle detection
    /// every cycle.
    [[nodiscard]] std::size_t parked_now() const { return parked_now_; }

  private:
    struct AddrState {
        u32 pending_updates = 0;
        u32 inflight_reads = 0;
        std::deque<Job> parked;
    };

    /// Idle entries are normally retained so the per-address node (and its
    /// parked deque's storage) is reused on the next touch — no per-read
    /// allocation churn. Retention is bounded: past this many entries,
    /// idle nodes are reclaimed again (large-table configs sweep millions
    /// of distinct bucket addresses).
    static constexpr std::size_t kMaxRetainedAddresses = 4096;

    void reclaim_if_crowded(typename std::unordered_map<u64, AddrState>::iterator it) {
        if (state_.size() <= kMaxRetainedAddresses) return;
        if (it->second.pending_updates == 0 && it->second.inflight_reads == 0 &&
            it->second.parked.empty()) {
            state_.erase(it);
        }
    }

    std::unordered_map<u64, AddrState> state_;
    u64 parked_total_ = 0;
    std::size_t parked_now_ = 0;
};

}  // namespace flowcam::core
