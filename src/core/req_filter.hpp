// The DLU's Request Filter (paper Fig. 4): "manage[s] the proceeding
// requests and group[s] certain requests into a waiting list if necessary.
// This is to avoid the corner cases, for instance if one request is updating
// the memory while another request is trying to access the same location."
//
// Concretely, per bucket address it tracks:
//  * pending updates (insert/delete writes not yet completed in DDR) — new
//    lookups to that address are parked until the write retires, so a read
//    never observes half-applied state;
//  * in-flight reads — delete writes wait for them, so a read never returns
//    an entry that was already functionally erased (stale-hit hazard).
//
// Parking is FIFO per address: once any lookup for an address is parked,
// later lookups for the same address park behind it even if the block
// clears in between. That preserves per-flow order (same flow => same
// bucket address on a given path).
//
// The filter sits on the per-lookup dispatch path (blocked-check + issue +
// retire per DDR read), so its address table is a flat open-addressed map
// and parked jobs live on intrusive FIFO lists over one shared node pool —
// no node-based containers, no allocation at steady state.
#pragma once

#include <vector>

#include "common/flat_map.hpp"
#include "common/types.hpp"

namespace flowcam::core {

template <typename Job>
class ReqFilter {
  public:
    /// True if a lookup for `addr` must be parked right now.
    [[nodiscard]] bool read_blocked(u64 addr) const {
        const AddrState* state = state_.find(addr);
        return state != nullptr && (state->pending_updates > 0 || state->parked_count > 0);
    }

    /// Park a lookup until the blocking update retires.
    void park(u64 addr, Job job) {
        AddrState& state = state_[addr];
        const bool was_live = live(state);
        const u32 node = alloc_node(std::move(job));
        if (state.parked_tail == kNone) {
            state.parked_head = node;
        } else {
            pool_[state.parked_tail].next = node;
        }
        state.parked_tail = node;
        ++state.parked_count;
        ++parked_total_;
        ++parked_now_;
        if (!was_live) ++tracked_;
    }

    /// An update write targeting `addr` was created (insert decision or
    /// delete issue). Blocks new reads.
    void update_created(u64 addr) {
        AddrState& state = state_[addr];
        if (!live(state)) ++tracked_;
        ++state.pending_updates;
        ++pending_updates_now_;
    }

    /// An update was revoked before its DDR write was issued (reservation
    /// reclaim cancelled a still-queued insert). Identical release semantics
    /// to update_retired — the pending count must drop exactly once and any
    /// parked lookups must come free — only the name documents that no DDR
    /// write ever happened.
    [[nodiscard]] std::vector<Job> update_cancelled(u64 addr) {
        return update_retired(addr);
    }

    /// The update write completed in DDR. Returns lookups now released, in
    /// FIFO order; the caller re-injects them into the bank selector.
    [[nodiscard]] std::vector<Job> update_retired(u64 addr) {
        AddrState* state = state_.find(addr);
        if (state == nullptr) return {};
        const bool was_live = live(*state);
        if (state->pending_updates > 0) {
            --state->pending_updates;
            --pending_updates_now_;
        }
        std::vector<Job> released;
        if (state->pending_updates == 0 && state->parked_count != 0) {
            released.reserve(state->parked_count);
            parked_now_ -= state->parked_count;
            for (u32 node = state->parked_head; node != kNone;) {
                released.push_back(std::move(pool_[node].job));
                const u32 next = pool_[node].next;
                free_nodes_.push_back(node);
                node = next;
            }
            state->parked_head = kNone;
            state->parked_tail = kNone;
            state->parked_count = 0;
        }
        settle(addr, *state, was_live);
        return released;
    }

    /// Read issued to / retired from the memory controller.
    void read_issued(u64 addr) {
        AddrState& state = state_[addr];
        if (!live(state)) ++tracked_;
        ++state.inflight_reads;
    }
    void read_retired(u64 addr) {
        AddrState* state = state_.find(addr);
        if (state == nullptr) return;
        const bool was_live = live(*state);
        if (state->inflight_reads > 0) --state->inflight_reads;
        settle(addr, *state, was_live);
    }

    /// True if a *delete* write to `addr` must wait (reads in flight).
    [[nodiscard]] bool delete_blocked(u64 addr) const {
        const AddrState* state = state_.find(addr);
        return state != nullptr && state->inflight_reads > 0;
    }

    [[nodiscard]] u64 parked_total() const { return parked_total_; }
    /// Addresses with live filter state. Idle entries are retained (and
    /// reused on the next touch — no per-read allocation churn) but do not
    /// count as tracked.
    [[nodiscard]] std::size_t tracked_addresses() const { return tracked_; }
    /// Currently parked jobs — O(1), it gates the engine's idle detection
    /// every cycle.
    [[nodiscard]] std::size_t parked_now() const { return parked_now_; }
    /// Total pending updates across all addresses — O(1); the invariant
    /// auditor checks this drains to zero (a leak here is the PR 2
    /// parked-forever-bucket bug class).
    [[nodiscard]] u64 pending_update_count() const { return pending_updates_now_; }

  private:
    static constexpr u32 kNone = ~u32{0};

    struct AddrState {
        u32 pending_updates = 0;
        u32 inflight_reads = 0;
        u32 parked_head = kNone;
        u32 parked_tail = kNone;
        u32 parked_count = 0;
    };

    struct Node {
        Job job{};
        u32 next = kNone;
    };

    [[nodiscard]] static bool live(const AddrState& state) {
        return state.pending_updates != 0 || state.inflight_reads != 0 ||
               state.parked_count != 0;
    }

    /// Idle entries are normally retained so the table slot is reused on the
    /// next touch. Retention is bounded: past this many entries, idle nodes
    /// are reclaimed again (large-table configs sweep millions of distinct
    /// bucket addresses).
    static constexpr std::size_t kMaxRetainedAddresses = 4096;

    /// Account an entry that may just have gone idle (only live -> idle
    /// transitions move the tracked count), reclaiming it when the table is
    /// crowded.
    void settle(u64 addr, AddrState& state, bool was_live) {
        if (live(state)) return;
        if (was_live) --tracked_;
        if (state_.size() > kMaxRetainedAddresses) state_.erase(addr);
    }

    [[nodiscard]] u32 alloc_node(Job&& job) {
        if (free_nodes_.empty()) {
            pool_.push_back(Node{std::move(job), kNone});
            return static_cast<u32>(pool_.size() - 1);
        }
        const u32 node = free_nodes_.back();
        free_nodes_.pop_back();
        pool_[node].job = std::move(job);
        pool_[node].next = kNone;
        return node;
    }

    common::FlatU64Map<AddrState> state_;
    std::vector<Node> pool_;
    std::vector<u32> free_nodes_;
    u64 parked_total_ = 0;
    std::size_t parked_now_ = 0;
    std::size_t tracked_ = 0;
    u64 pending_updates_now_ = 0;
};

}  // namespace flowcam::core
