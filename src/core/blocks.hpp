// The messages that flow between the Flow LUT's hardware blocks (Fig. 2):
// packet descriptors, lookup jobs, match verdicts, update requests and flow
// ID completions.
#pragma once

#include "common/types.hpp"
#include "core/flow_key.hpp"
#include "net/tuple.hpp"

namespace flowcam::core {

/// Which memory set / lookup path. The paper's scheme is symmetric in A/B.
enum class Path : u8 { kA = 0, kB = 1 };

[[nodiscard]] constexpr Path other(Path path) {
    return path == Path::kA ? Path::kB : Path::kA;
}
[[nodiscard]] constexpr u32 index_of(Path path) { return static_cast<u32>(path); }
[[nodiscard]] constexpr const char* to_string(Path path) {
    return path == Path::kA ? "A" : "B";
}

/// Lookup stage: LU1 = first lookup (from the sequencer), LU2 = second
/// lookup (redirected after an LU1 miss on the other path).
enum class Stage : u8 { kLu1 = 1, kLu2 = 2 };

/// A packet descriptor entering the Flow LUT: the extracted n-tuple (as a
/// pre-hashed FlowKey) plus both precomputed bucket indices (the hardware
/// hashes at packet arrival — descriptors never re-hash downstream).
struct Descriptor {
    u64 seq = 0;  ///< arrival order, for ordering checks.
    FlowKey key;
    u64 index_a = 0;  ///< bucket index in memory set A (Hash1).
    u64 index_b = 0;  ///< bucket index in memory set B (Hash2).
    u64 digest = 0;   ///< 64-bit digest used for balancing decisions.
    u64 timestamp_ns = 0;
    Cycle offered_at = 0;  ///< system cycle the descriptor entered the LUT
                           ///< (end-to-end latency = retired_at - offered_at).
    u32 frame_bytes = 0;
    /// Opaque caller tag carried through to the Completion. The workload
    /// layer threads the generator flow index here so drops can be
    /// classified as real vs. attack-overlay traffic.
    u64 tag = 0;
    /// True when index_a/index_b are the indexer's values for `key` (the
    /// offer() path); false for synthetic raw-pattern stimuli. Gates whether
    /// the functional model may reuse them instead of re-hashing.
    bool hashed_indices = false;
};

/// One in-flight lookup on one path.
struct LookupJob {
    Descriptor descriptor;
    Stage stage = Stage::kLu1;
    [[nodiscard]] u64 bucket_index(Path path) const {
        return path == Path::kA ? descriptor.index_a : descriptor.index_b;
    }
};

/// Update request handed to an Updt block (paper Fig. 5 inputs).
enum class UpdateKind : u8 { kInsert, kDelete };

struct UpdateRequest {
    UpdateKind kind = UpdateKind::kInsert;
    FlowKey key;
    u64 bucket_index = 0;  ///< target bucket in the owning path's memory.
    u32 way = 0;           ///< slot within the bucket.
    Cycle enqueued_at = 0;
    /// Delete already applied functionally (and announced to the Req
    /// Filter). Guards the issue-retry path: a delete whose DDR write was
    /// rejected by a full controller queue must not re-apply on retry, or
    /// the filter's pending-update count leaks and parks the bucket forever.
    bool applied = false;
    /// Insert revoked while still queued (reservation reclaim won the race
    /// against the burst-write release). The write is skipped at pump time,
    /// but the Req Filter pending-update count it holds must still be
    /// released exactly once via update_cancelled().
    bool cancelled = false;
};

/// What FID_GEN emits: one completion per descriptor, in retirement order.
struct Completion {
    u64 seq = 0;
    FlowId fid = kInvalidFlowId;
    bool is_new_flow = false;
    bool via_cam = false;
    /// FID decoded from DDR bucket bytes rather than the functional table.
    /// The read data can trail a functional erase of the same bucket (a
    /// delete racing the match queue), so the flow-state touch must not
    /// resurrect a record the exporter already saw die.
    bool snapshot_fid = false;
    Cycle retired_at = 0;   ///< system-clock cycle.
    Cycle offered_at = 0;   ///< copied from the descriptor (latency metric).
    u64 timestamp_ns = 0;
    u32 frame_bytes = 0;
    FlowKey key;
    u64 tag = 0;  ///< copied from the descriptor (drop classification).
};

/// FID encoding: location-derived flow IDs, as the paper's FID_GEN creates
/// them "based on the search result" (a match index value).
[[nodiscard]] constexpr FlowId make_fid(TableIndex location) {
    // 2 bits of "where" | 48 bits of slot, +1 so 0 stays invalid.
    return (static_cast<u64>(location.where) << 48 | location.slot) + 1;
}

[[nodiscard]] constexpr TableIndex fid_location(FlowId fid) {
    TableIndex location;
    if (fid == kInvalidFlowId) return location;
    const u64 raw = fid - 1;
    location.where = static_cast<TableIndex::Where>(raw >> 48);
    location.slot = raw & ((u64{1} << 48) - 1);
    return location;
}

}  // namespace flowcam::core
