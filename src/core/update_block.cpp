#include "core/update_block.hpp"

namespace flowcam::core {

bool UpdateBlock::submit(UpdateRequest request, Cycle now) {
    if (!can_accept()) return false;
    auto& pending =
        request.kind == UpdateKind::kInsert ? pending_inserts_ : pending_deletes_;
    if (pending.find(request.key) != nullptr) {
        ++stats_.duplicates_merged;
        return true;  // merged into the already-queued request.
    }
    pending[request.key] = 1;
    if (request.kind == UpdateKind::kInsert) {
        ++stats_.inserts_accepted;
    } else {
        ++stats_.deletes_accepted;
    }
    request.enqueued_at = now;
    queue_.push_back(std::move(request));
    return true;
}

std::vector<UpdateRequest> UpdateBlock::release(Cycle now) {
    if (queue_.empty()) return {};
    const bool threshold_hit = queue_.size() >= burst_threshold_;
    const bool timed_out = now >= queue_.front().enqueued_at + timeout_;
    if (!threshold_hit && !timed_out) return {};

    (threshold_hit ? stats_.releases_on_threshold : stats_.releases_on_timeout) += 1;

    std::vector<UpdateRequest> batch;
    const std::size_t take = std::min<std::size_t>(queue_.size(), burst_threshold_);
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        UpdateRequest request = queue_.pop_front();
        if (request.kind == UpdateKind::kInsert) {
            if (u32* cancels = cancelled_.find(request.key); cancels != nullptr) {
                // cancel_insert() already removed the pending_inserts_ entry.
                request.cancelled = true;
                if (--*cancels == 0) cancelled_.erase(request.key);
            } else {
                pending_inserts_.erase(request.key);
            }
        } else {
            pending_deletes_.erase(request.key);
        }
        batch.push_back(std::move(request));
    }
    ++stats_.bursts_released;
    stats_.requests_released += batch.size();
    return batch;
}

bool UpdateBlock::cancel_insert(const FlowKey& key) {
    if (pending_inserts_.find(key) == nullptr) return false;
    pending_inserts_.erase(key);
    ++cancelled_[key];
    ++stats_.inserts_cancelled;
    return true;
}

}  // namespace flowcam::core
