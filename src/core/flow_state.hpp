// The Flow State block: per-flow records (NetFlow-style counters) plus the
// housekeeping function that "periodically checks and removes timeout flow
// entries to allow new flow entries to be stored" (paper §IV-B) — the
// source of Del_req into the Update block.
//
// The prototype stores 512 bits of per-flow state in DDR3; we keep the
// record host-side (it is substrate for the lookup experiments, not their
// subject) but preserve the architectural interface: records are keyed by
// the location-derived FID, expiry emits Del_req(key, location), and an
// export callback hands the dead record to the stats engine.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/blocks.hpp"
#include "net/tuple.hpp"

namespace flowcam::core {

struct FlowRecord {
    FlowId fid = kInvalidFlowId;
    net::NTuple key;
    u64 packets = 0;
    u64 bytes = 0;
    u64 first_ns = 0;
    u64 last_ns = 0;
    /// Second-chance bit: set on every touch, cleared by the clock eviction
    /// sweep (EvictionPolicy::kClock). A flow is evictable once the hand has
    /// passed it a full revolution without a new packet.
    bool referenced = false;

    [[nodiscard]] double duration_s() const {
        return static_cast<double>(last_ns - first_ns) / 1e9;
    }
};

/// One deferred flow-state update in a dispatch batch. The key is held by
/// value: the touch outlives the retire that produced it (the completion has
/// already moved on), so a span would dangle.
struct FlowTouch {
    FlowId fid = kInvalidFlowId;
    FlowKey key;
    u64 timestamp_ns = 0;
    u32 frame_bytes = 0;
    bool snapshot = false;  ///< see Completion::snapshot_fid.
};

class FlowStateBlock {
  public:
    /// `timeout_ns`: idle time after which a flow expires.
    /// `scan_per_cycle`: records examined per housekeeping tick.
    FlowStateBlock(u64 timeout_ns, u32 scan_per_cycle)
        : timeout_ns_(timeout_ns), scan_per_cycle_(scan_per_cycle) {}

    /// Record a packet for `fid` (creates the record on first sight). The
    /// span overload is the hot path: the NTuple is materialized only when
    /// a record is created or restarted. With `snapshot` set the touch is
    /// best-effort: it applies only to an existing record whose key matches
    /// — a FID decoded from stale DDR read data must neither resurrect a
    /// dead flow's record nor clobber a successor's (see
    /// Completion::snapshot_fid).
    void on_packet(FlowId fid, std::span<const u8> key, u64 timestamp_ns, u32 frame_bytes,
                   bool snapshot = false);
    void on_packet(FlowId fid, const net::NTuple& key, u64 timestamp_ns, u32 frame_bytes) {
        on_packet(fid, key.view(), timestamp_ns, frame_bytes);
    }

    /// Apply a batch of touches in order. Equivalent to calling on_packet()
    /// per touch — the per-touch expiry-bound store is hoisted into one
    /// accumulated min (std::min is associative), nothing else differs.
    void on_packet_multi(const FlowTouch* touches, std::size_t count);

    /// The flow's entry was removed from the table; drop and export the
    /// record.
    void on_deleted(FlowId fid);

    /// Housekeeping tick: scan a few records; expired flows are returned so
    /// the Flow LUT can turn them into Del_req. `now_ns` is stream time.
    [[nodiscard]] std::vector<FlowRecord> scan_expired(u64 now_ns);

    /// Export hook: called with each record when its flow dies.
    void set_export_callback(std::function<void(const FlowRecord&)> callback) {
        export_ = std::move(callback);
    }

    [[nodiscard]] const FlowRecord* find(FlowId fid) const;

    /// Clock-eviction support: report whether `fid`'s record carried the
    /// second-chance bit, clearing it as a side effect (the hand passed).
    /// Missing records read as unreferenced (immediately evictable).
    [[nodiscard]] bool consume_referenced(FlowId fid);
    [[nodiscard]] std::size_t active_flows() const { return records_.size(); }
    [[nodiscard]] u64 expired_total() const { return expired_total_; }

    /// True when scan_expired(now_ns) is provably a no-op (no records, or a
    /// full clean pass established that nothing can expire before stream
    /// time `now_ns`) — lets the Flow LUT fast-forward idle cycles.
    [[nodiscard]] bool expiry_idle(u64 now_ns) const {
        return scan_ring_.empty() || now_ns < scan_skip_below_ns_;
    }

    /// Snapshot of live records (for top-N reports).
    [[nodiscard]] std::vector<FlowRecord> snapshot() const;

  private:
    /// The shared body of on_packet / on_packet_multi: updates the record
    /// and returns its expiry bound (last_ns + timeout) for the caller to
    /// fold into scan_skip_below_ns_ (~0 when a snapshot touch is dropped).
    u64 apply_touch(FlowId fid, std::span<const u8> key, u64 timestamp_ns, u32 frame_bytes,
                    bool snapshot);

    u64 timeout_ns_;
    u32 scan_per_cycle_;
    std::unordered_map<FlowId, FlowRecord> records_;
    std::vector<FlowId> scan_ring_;  ///< insertion-ordered fids for scanning.
    std::size_t scan_cursor_ = 0;
    u64 expired_total_ = 0;
    std::function<void(const FlowRecord&)> export_;

    /// Expiry fast-forward: after one full clean ring pass (nothing expired),
    /// no record can expire before min(last_ns seen) + timeout. Updates only
    /// raise a record's last_ns, and on_packet() lowers the bound whenever a
    /// record's last_ns sits below it (covers packets carrying out-of-order
    /// timestamps), so the bound stays conservative. scan_expired() is then
    /// O(1) per cycle until stream time reaches the bound; with microsecond
    /// traces against the 30 s default timeout, that is the whole run.
    u64 scan_skip_below_ns_ = 0;
    u64 pass_min_last_ns_ = ~u64{0};
    bool pass_clean_ = true;
};

}  // namespace flowcam::core
