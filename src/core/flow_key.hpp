// FlowKey: the hot-path flow identity — a fixed-size, trivially-copyable
// n-tuple key with a precomputed 64-bit hash — plus FlowKeyMap, a flat
// open-addressed table keyed by it.
//
// The timed engine touches the per-flow interlock (and the Update block's
// pending-request filter) for every dispatched packet. Keying those maps by
// std::string meant one heap allocation plus a byte-wise re-hash per packet;
// FlowKey hashes once at packet admission (word-at-a-time over the
// zero-padded key register) and every later map probe is an integer compare
// plus at most one 40-byte memcmp. FlowKeyMap stores everything in two flat
// arrays — no per-entry nodes, so the steady-state dispatch path performs no
// heap allocation at all (asserted by bench_hotpath's allocation counter).
#pragma once

#include <array>
#include <cstring>
#include <span>

#include "common/open_map.hpp"
#include "common/types.hpp"
#include "net/tuple.hpp"

namespace flowcam::core {

namespace detail {
/// Final avalanche of MurmurHash3 (public domain): full 64-bit diffusion so
/// low bits are usable directly as open-table indices.
[[nodiscard]] constexpr u64 mix64(u64 x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}
}  // namespace detail

struct FlowKey {
    /// Same width as the hardware key register (covers IPv6 5-tuples).
    static constexpr std::size_t kMaxBytes = net::NTuple::kMaxBytes;

    std::array<u8, kMaxBytes> bytes{};  ///< zero-padded beyond `length`.
    u32 length = 0;
    u64 hash = 0;

    FlowKey() = default;
    /// Implicit on purpose: cold call sites (tests, preload, housekeeping)
    /// keep passing NTuples; hot paths construct a FlowKey once and reuse it.
    FlowKey(const net::NTuple& tuple) : FlowKey(tuple.view()) {}  // NOLINT
    explicit FlowKey(std::span<const u8> data) {
        length = static_cast<u32>(data.size() < kMaxBytes ? data.size() : kMaxBytes);
        std::memcpy(bytes.data(), data.data(), length);
        // Word-at-a-time over the zero padding: always in-bounds, and equal
        // keys hash equally regardless of what preceded them in the register.
        u64 h = 0x9e3779b97f4a7c15ull + length;
        for (u32 i = 0; i < length; i += 8) {
            u64 word;
            std::memcpy(&word, bytes.data() + i, 8);
            h = detail::mix64(h ^ word) + 0x9e3779b97f4a7c15ull;
        }
        hash = detail::mix64(h);
    }

    [[nodiscard]] std::span<const u8> view() const { return {bytes.data(), length}; }
    [[nodiscard]] bool empty() const { return length == 0; }
    [[nodiscard]] net::NTuple tuple() const { return net::NTuple(view()); }

    friend bool operator==(const FlowKey& a, const FlowKey& b) {
        return a.hash == b.hash && a.length == b.length &&
               std::memcmp(a.bytes.data(), b.bytes.data(), a.length) == 0;
    }
};

static_assert(std::is_trivially_copyable_v<FlowKey>);

/// FlowKey hashes once at construction, so the map hasher just forwards the
/// precomputed (already fully mixed) value.
struct FlowKeyHash {
    [[nodiscard]] u64 operator()(const FlowKey& key) const { return key.hash; }
};

/// The FlowKey-keyed instance of common::OpenMap (see open_map.hpp for the
/// open-addressing scheme and the steady-state no-allocation guarantee).
/// Sized for the Flow LUT's interlock working set (hundreds of live flows),
/// not for millions of entries.
template <typename V>
using FlowKeyMap = common::OpenMap<FlowKey, V, FlowKeyHash>;

}  // namespace flowcam::core
