// FlowKey: the hot-path flow identity — a fixed-size, trivially-copyable
// n-tuple key with a precomputed 64-bit hash — plus FlowKeyMap, a flat
// open-addressed table keyed by it.
//
// The timed engine touches the per-flow interlock (and the Update block's
// pending-request filter) for every dispatched packet. Keying those maps by
// std::string meant one heap allocation plus a byte-wise re-hash per packet;
// FlowKey hashes once at packet admission (word-at-a-time over the
// zero-padded key register) and every later map probe is an integer compare
// plus at most one 40-byte memcmp. FlowKeyMap stores everything in two flat
// arrays — no per-entry nodes, so the steady-state dispatch path performs no
// heap allocation at all (asserted by bench_hotpath's allocation counter).
#pragma once

#include <array>
#include <cassert>
#include <cstring>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/tuple.hpp"

namespace flowcam::core {

namespace detail {
/// Final avalanche of MurmurHash3 (public domain): full 64-bit diffusion so
/// low bits are usable directly as open-table indices.
[[nodiscard]] constexpr u64 mix64(u64 x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}
}  // namespace detail

struct FlowKey {
    /// Same width as the hardware key register (covers IPv6 5-tuples).
    static constexpr std::size_t kMaxBytes = net::NTuple::kMaxBytes;

    std::array<u8, kMaxBytes> bytes{};  ///< zero-padded beyond `length`.
    u32 length = 0;
    u64 hash = 0;

    FlowKey() = default;
    /// Implicit on purpose: cold call sites (tests, preload, housekeeping)
    /// keep passing NTuples; hot paths construct a FlowKey once and reuse it.
    FlowKey(const net::NTuple& tuple) : FlowKey(tuple.view()) {}  // NOLINT
    explicit FlowKey(std::span<const u8> data) {
        length = static_cast<u32>(data.size() < kMaxBytes ? data.size() : kMaxBytes);
        std::memcpy(bytes.data(), data.data(), length);
        // Word-at-a-time over the zero padding: always in-bounds, and equal
        // keys hash equally regardless of what preceded them in the register.
        u64 h = 0x9e3779b97f4a7c15ull + length;
        for (u32 i = 0; i < length; i += 8) {
            u64 word;
            std::memcpy(&word, bytes.data() + i, 8);
            h = detail::mix64(h ^ word) + 0x9e3779b97f4a7c15ull;
        }
        hash = detail::mix64(h);
    }

    [[nodiscard]] std::span<const u8> view() const { return {bytes.data(), length}; }
    [[nodiscard]] bool empty() const { return length == 0; }
    [[nodiscard]] net::NTuple tuple() const { return net::NTuple(view()); }

    friend bool operator==(const FlowKey& a, const FlowKey& b) {
        return a.hash == b.hash && a.length == b.length &&
               std::memcmp(a.bytes.data(), b.bytes.data(), a.length) == 0;
    }
};

static_assert(std::is_trivially_copyable_v<FlowKey>);

/// Flat open-addressed hash map keyed by FlowKey (linear probing, power-of-2
/// capacity, tombstone deletion with rehash on dirt buildup). Value type must
/// be cheap to move; pointers returned by find() are invalidated by any
/// insert. Sized for the Flow LUT's interlock working set (hundreds of live
/// flows), not for millions of entries.
template <typename V>
class FlowKeyMap {
  public:
    explicit FlowKeyMap(std::size_t initial_capacity = 64) { rehash(initial_capacity); }

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    /// Value for `key` or nullptr. Never allocates.
    [[nodiscard]] V* find(const FlowKey& key) {
        const std::size_t slot = find_slot(key);
        return slot == kNoSlot ? nullptr : &slots_[slot].value;
    }
    [[nodiscard]] const V* find(const FlowKey& key) const {
        const std::size_t slot = const_cast<FlowKeyMap*>(this)->find_slot(key);
        return slot == kNoSlot ? nullptr : &slots_[slot].value;
    }

    /// Value for `key`, default-constructed and inserted if absent.
    /// Allocates only when the table grows (amortized; never at steady state).
    V& operator[](const FlowKey& key) {
        if (occupied_next_insert() * 4 >= state_.size() * 3) {
            // Grow only under live-entry pressure; erase/insert churn just
            // flushes tombstones at the same capacity (reusing the arrays).
            rehash((size_ + 1) * 4 >= state_.size() * 2 ? state_.size() * 2 : state_.size());
        }
        std::size_t index = key.hash & mask_;
        std::size_t first_tombstone = kNoSlot;
        while (true) {
            const u8 state = state_[index];
            if (state == kEmpty) {
                const std::size_t target = first_tombstone != kNoSlot ? first_tombstone : index;
                if (first_tombstone != kNoSlot) --tombstones_;
                state_[target] = kFull;
                slots_[target].key = key;
                slots_[target].value = V{};
                ++size_;
                return slots_[target].value;
            }
            if (state == kTombstone) {
                if (first_tombstone == kNoSlot) first_tombstone = index;
            } else if (slots_[index].key == key) {
                return slots_[index].value;
            }
            index = (index + 1) & mask_;
        }
    }

    bool erase(const FlowKey& key) {
        const std::size_t slot = find_slot(key);
        if (slot == kNoSlot) return false;
        state_[slot] = kTombstone;
        slots_[slot].value = V{};
        --size_;
        ++tombstones_;
        return true;
    }

    void reserve(std::size_t entries) {
        std::size_t capacity = state_.size();
        while (entries * 4 >= capacity * 3) capacity *= 2;
        if (capacity != state_.size()) rehash(capacity);
    }

  private:
    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
    static constexpr u8 kEmpty = 0, kFull = 1, kTombstone = 2;

    struct Slot {
        FlowKey key;
        V value;
    };

    [[nodiscard]] std::size_t occupied_next_insert() const {
        return size_ + tombstones_ + 1;
    }

    [[nodiscard]] std::size_t find_slot(const FlowKey& key) {
        std::size_t index = key.hash & mask_;
        while (true) {
            const u8 state = state_[index];
            if (state == kEmpty) return kNoSlot;
            if (state == kFull && slots_[index].key == key) return index;
            index = (index + 1) & mask_;
        }
    }

    void rehash(std::size_t new_capacity) {
        assert((new_capacity & (new_capacity - 1)) == 0 && new_capacity > 0);
        // Swap into persistent scratch arrays: a same-capacity rehash (the
        // steady-state tombstone flush) then reuses their storage and
        // performs no allocation at all.
        std::swap(state_, scratch_state_);
        std::swap(slots_, scratch_slots_);
        state_.assign(new_capacity, kEmpty);
        slots_.assign(new_capacity, Slot{});
        mask_ = new_capacity - 1;
        size_ = 0;
        tombstones_ = 0;
        for (std::size_t i = 0; i < scratch_state_.size(); ++i) {
            if (scratch_state_[i] != kFull) continue;
            (*this)[scratch_slots_[i].key] = std::move(scratch_slots_[i].value);
        }
    }

    std::vector<u8> state_, scratch_state_;
    std::vector<Slot> slots_, scratch_slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    std::size_t tombstones_ = 0;
};

}  // namespace flowcam::core
