// Configuration of the Flow LUT (paper Figs. 1-2) and its prototype-derived
// defaults: 200 MHz system clock, quarter-rate controllers in front of two
// 32-bit DDR3 channels at an 800 MHz command clock (DDR3-1600 grade).
#pragma once

#include <cstddef>

#include "common/bitops.hpp"
#include "common/types.hpp"
#include "dram/controller.hpp"
#include "dram/timing.hpp"
#include "hash/hash_function.hpp"

namespace flowcam::core {

/// Load-balancer policy of the Sequencer (paper Fig. 2). Hash-affine
/// policies preserve per-flow ordering by construction; kWeightedHash with
/// weight 0 reproduces the paper's "all data through path B" experiment.
enum class BalancePolicy : u8 {
    kHashBit,       ///< path = one digest bit; ~50 % split, flow-affine.
    kWeightedHash,  ///< path A with probability `weight_a` (flow-affine:
                    ///< derived from the key digest, not a coin flip).
    kAlternate,     ///< strict round-robin (NOT flow-affine; ablation only).
    kLeastLoaded,   ///< shorter DLU queue wins (NOT flow-affine; ablation).
};

[[nodiscard]] constexpr const char* to_string(BalancePolicy policy) {
    switch (policy) {
        case BalancePolicy::kHashBit: return "hash-bit";
        case BalancePolicy::kWeightedHash: return "weighted-hash";
        case BalancePolicy::kAlternate: return "alternate";
        case BalancePolicy::kLeastLoaded: return "least-loaded";
    }
    return "?";
}

/// Where a new entry goes when both candidate buckets have room.
enum class InsertPolicy : u8 {
    kFirstFit,     ///< Mem1 bucket, then Mem2 bucket, then CAM (Fig. 1 text).
    kLeastLoaded,  ///< emptier bucket first (balanced-allocations flavor).
};

/// Whether a genuinely-new flow is admitted when the table is under
/// pressure (load >= admission_pressure). kAlways reproduces the original
/// drop-on-full behavior exactly; the other two trade new-flow admission
/// for established-flow retention under floods.
enum class AdmissionPolicy : u8 {
    kAlways,         ///< admit whenever a slot exists (drop only when full).
    kProbabilistic,  ///< Bloom front-end: keys seen before are admitted;
                     ///< never-seen keys are admitted with probability
                     ///< admission_p (flow-affine, digest-derived).
    kRejectFull,     ///< refuse all new flows while under pressure.
};

[[nodiscard]] constexpr const char* to_string(AdmissionPolicy policy) {
    switch (policy) {
        case AdmissionPolicy::kAlways: return "always";
        case AdmissionPolicy::kProbabilistic: return "probabilistic";
        case AdmissionPolicy::kRejectFull: return "reject-full";
    }
    return "?";
}

/// What happens when a new flow is admitted but no slot is free.
enum class EvictionPolicy : u8 {
    kNone,       ///< drop the new flow (original behavior).
    kLru,        ///< evict the idlest entry among the two candidate buckets.
    kCamOldest,  ///< evict the oldest collision-CAM entry.
    kClock,      ///< second-chance sweep over the candidate buckets.
};

[[nodiscard]] constexpr const char* to_string(EvictionPolicy policy) {
    switch (policy) {
        case EvictionPolicy::kNone: return "none";
        case EvictionPolicy::kLru: return "lru";
        case EvictionPolicy::kCamOldest: return "cam-oldest";
        case EvictionPolicy::kClock: return "clock";
    }
    return "?";
}

struct FlowLutConfig {
    // --- Geometry of the lookup structure -------------------------------
    u64 buckets_per_mem = u64{1} << 16;  ///< hash locations per memory set.
    u32 ways = 4;                        ///< K entries per hash location.
    u32 entry_bytes = 16;                ///< serialized entry footprint.
    std::size_t cam_capacity = 1024;     ///< collision CAM depth.

    // --- Hashing ---------------------------------------------------------
    hash::HashKind hash_kind = hash::HashKind::kH3;
    u64 hash_seed = 0x5eed;

    // --- Clocking --------------------------------------------------------
    double system_clock_hz = 200e6;  ///< Flow LUT fabric clock.
    u32 memory_clock_ratio = 4;      ///< quarter-rate controller.

    // --- DRAM ------------------------------------------------------------
    dram::DramTimings timings = dram::ddr3_1600();
    dram::Geometry geometry{};  ///< per channel; defaults 8 banks.
    dram::ControllerConfig controller{};

    // --- Policies --------------------------------------------------------
    BalancePolicy balance = BalancePolicy::kHashBit;
    double weight_a = 0.5;  ///< for kWeightedHash.
    InsertPolicy insert_policy = InsertPolicy::kLeastLoaded;

    // --- Batched dispatch --------------------------------------------------
    /// Descriptors per host-side dispatch batch. 0 (default) = scalar
    /// dispatch. N > 0 turns on the batched fast paths end-to-end: the
    /// workload source hashes N keys at a time through the multi-key H3
    /// kernel, the LUT prefetches the next descriptor's bucket lines while
    /// dispatching the current one, waiter resolution probes the table in
    /// batch, and flow-state touches are applied through the batch entry
    /// point. Pure host-side amortization: results (completion order,
    /// cycles, every metric) are byte-identical to scalar dispatch — the
    /// batched-vs-scalar equivalence suite enforces it.
    u32 batch = 0;

    // --- Queue depths (hardware FIFOs) ------------------------------------
    std::size_t input_depth = 64;
    std::size_t lu_queue_depth = 64;
    std::size_t match_queue_depth = 64;
    std::size_t update_queue_depth = 64;
    std::size_t output_depth = 128;

    // --- Update block (BWr_Gen, Fig. 5) -----------------------------------
    u32 burst_write_threshold = 8;   ///< release when this many updates wait.
    Cycle burst_write_timeout = 64;  ///< ...or when the oldest is this stale.

    // --- Flow state housekeeping ------------------------------------------
    u64 flow_timeout_ns = 30'000'000'000ull;  ///< 30 s idle timeout.
    u32 housekeeping_scan_per_cycle = 4;      ///< records scanned per cycle.

    // --- Overload resilience (admission / eviction / reservation) ---------
    AdmissionPolicy admission = AdmissionPolicy::kAlways;
    EvictionPolicy eviction = EvictionPolicy::kNone;
    /// Table load fraction above which admission control engages and new
    /// flows get reservation-grant (provisional) slots instead of firm ones.
    double admission_pressure = 0.9;
    /// Probability a never-seen key is admitted under pressure
    /// (admission=probabilistic). Flow-affine: derived from the key digest.
    double admission_p = 0.1;
    /// Bloom front-end sizing for admission=probabilistic.
    u64 admission_bloom_bits = u64{1} << 18;
    u32 admission_bloom_hashes = 4;
    /// Reservation path: a new flow admitted under pressure holds only a
    /// provisional slot; a second packet confirms it, otherwise the slot is
    /// reclaimed after reservation_deadline cycles (booksim2-style
    /// ack/nack/grant over the insert machinery).
    bool reservation = false;
    Cycle reservation_deadline = 4096;

    /// TEST ONLY: reintroduce the PR 2 delete-retry double-apply bug (the
    /// Req Filter pending-update leak) so the fault-injection harness can
    /// prove its invariant auditor detects that bug class. Never set
    /// outside tests.
    bool debug_double_apply_delete = false;

    // --- Derived ----------------------------------------------------------
    [[nodiscard]] u64 bucket_bytes() const { return u64{ways} * entry_bytes; }
    [[nodiscard]] u64 burst_bytes() const {
        return u64{geometry.bus_bytes} * timings.burst_length;
    }
    [[nodiscard]] u32 bursts_per_bucket() const {
        return static_cast<u32>(ceil_div(bucket_bytes(), burst_bytes()));
    }
    /// DDR footprint of one bucket, padded up to whole bursts so no two
    /// buckets ever share a burst (a burst is the write granularity).
    [[nodiscard]] u64 bucket_stride() const {
        return u64{bursts_per_bucket()} * burst_bytes();
    }
    [[nodiscard]] u64 bucket_address(u64 bucket_index) const {
        return bucket_index * bucket_stride();
    }
    [[nodiscard]] u64 table_capacity() const {
        return buckets_per_mem * ways * 2 + cam_capacity;
    }
    /// DDR bytes needed per memory set.
    [[nodiscard]] u64 mem_bytes() const { return buckets_per_mem * bucket_stride(); }

    /// The published prototype configuration: 8 M flow entries over two
    /// 512 MB channels (paper §IV-C).
    [[nodiscard]] static FlowLutConfig prototype_8m() {
        FlowLutConfig config;
        config.buckets_per_mem = u64{1} << 20;  // 1 M buckets x 4 ways x 2 = 8 M
        config.ways = 4;
        config.cam_capacity = 4096;
        config.geometry.rows = 65536;
        return config;
    }
};

}  // namespace flowcam::core
