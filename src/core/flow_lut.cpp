#include "core/flow_lut.hpp"

#include <cassert>

namespace flowcam::core {
namespace {

/// Request-id tag bits so read and write completions demultiplex cleanly.
constexpr u64 kWriteTag = u64{1} << 63;

}  // namespace

FlowLut::PathState::PathState(const FlowLutConfig& config, const std::string& name)
    : ready(config.geometry.banks),
      updates(config.burst_write_threshold, config.burst_write_timeout,
              config.update_queue_depth) {
    dram::ControllerConfig controller_config = config.controller;
    controller_config.interleave_bytes = config.bucket_stride();
    controller = std::make_unique<dram::DramController>(name, config.timings, config.geometry,
                                                        controller_config);
}

FlowLut::FlowLut(const FlowLutConfig& config)
    : config_(config),
      table_(config),
      flow_state_(config.flow_timeout_ns, config.housekeeping_scan_per_cycle),
      paths_{PathState(config, "ddr3-A"), PathState(config, "ddr3-B")},
      rng_(config.hash_seed ^ 0x5e00beefull) {}

bool FlowLut::offer(const FlowKey& key, u64 timestamp_ns, u32 frame_bytes) {
    const auto view = key.view();
    const hash::IndexGenerator& indexer = table_.indexer();
    // One digest per path; the path-0 digest doubles as the balancing
    // digest (the hardware computes each hash exactly once per packet).
    const u64 digest_a = indexer.digest(0, view);
    const u64 digest_b = indexer.digest(1, view);
    return offer_prepared(key, indexer.index_of_digest(digest_a),
                          indexer.index_of_digest(digest_b), digest_a, timestamp_ns,
                          frame_bytes, /*hashed_indices=*/true);
}

bool FlowLut::offer_prepared(const FlowKey& key, u64 index_a, u64 index_b, u64 digest,
                             u64 timestamp_ns, u32 frame_bytes, bool hashed_indices) {
    if (input_full()) {
        ++stats_.rejected_input_full;
        return false;
    }
    ++stats_.offered;
    Descriptor descriptor;
    descriptor.seq = next_seq_++;
    descriptor.key = key;
    descriptor.index_a = index_a % config_.buckets_per_mem;
    descriptor.index_b = index_b % config_.buckets_per_mem;
    descriptor.digest = digest;
    descriptor.timestamp_ns = timestamp_ns;
    descriptor.offered_at = now_;
    descriptor.frame_bytes = frame_bytes;
    descriptor.hashed_indices = hashed_indices;
    stream_time_ns_ = std::max(stream_time_ns_, timestamp_ns);
    input_.push_back(std::move(descriptor));
    if (obs_ != nullptr) obs::Recorder::high_water(obs_hwm_input_, input_.size());
    return true;
}

void FlowLut::set_recorder(obs::Recorder* recorder) {
    if (recorder == obs_) return;
    obs_ = recorder;
    paths_[0].controller->set_recorder(recorder);
    paths_[1].controller->set_recorder(recorder);
    if (obs_ == nullptr) {
        obs_latency_ = nullptr;
        return;
    }
    // Registration collisions (a second LUT on the same recorder) fall back
    // to private scrap cells so the bump sites stay branchless-valid.
    const auto cell = [&](const char* name) {
        auto result = obs_->register_counter(name);
        return result ? result.value() : &obs_scrap_cell_;
    };
    auto latency = obs_->register_histogram("lut.desc_latency_ns");
    obs_latency_ = latency ? latency.value() : &obs_scrap_hist_;
    obs_completions_ = cell("lut.completions");
    obs_new_flows_ = cell("lut.new_flows");
    obs_drops_ = cell("lut.drops");
    obs_cam_hits_ = cell("lut.cam_hits");
    obs_table_size_ = cell("lut.table_size");
    obs_cam_size_ = cell("lut.cam_size");
    obs_hwm_input_ = cell("lut.hwm_input");
    obs_hwm_waiting_ = cell("lut.hwm_waiting");
    obs_hwm_table_ = cell("lut.hwm_table");
    obs_hwm_cam_ = cell("lut.hwm_cam");
}

std::optional<Completion> FlowLut::pop_completion() {
    if (output_.empty()) return std::nullopt;
    return output_.pop_front();
}

Path FlowLut::balance(const Descriptor& descriptor) const {
    switch (config_.balance) {
        case BalancePolicy::kHashBit:
            return (descriptor.digest >> 17 & 1u) ? Path::kB : Path::kA;
        case BalancePolicy::kWeightedHash: {
            // Flow-affine weighting: a digest-derived uniform in [0,1).
            const double unit =
                static_cast<double>(descriptor.digest >> 11) * 0x1.0p-53;
            return unit < config_.weight_a ? Path::kA : Path::kB;
        }
        case BalancePolicy::kAlternate:
            return (alternate_rotor_++ & 1u) ? Path::kB : Path::kA;
        case BalancePolicy::kLeastLoaded:
            return paths_[0].ready.size() <= paths_[1].ready.size() ? Path::kA : Path::kB;
    }
    return Path::kA;
}

u32 FlowLut::bank_of(Path path, u64 address) const {
    return paths_[index_of(path)].controller->address_map().decode(address).bank;
}

void FlowLut::enqueue_lookup(Path path, LookupJob job) {
    PathState& state = paths_[index_of(path)];
    const u64 address = bucket_address(job.bucket_index(path));
    if (state.filter.read_blocked(address)) {
        state.filter.park(address, std::move(job));
        return;
    }
    state.ready.push(bank_of(path, address), std::move(job));
}

void FlowLut::dispatch_inputs(Cycle now) {
    bool path_used[2] = {false, false};
    // Up to two descriptors per cycle — one entering each path — matching
    // the paper's "process two lookup requests simultaneously".
    for (u32 round = 0; round < 2 && !input_.empty(); ++round) {
        Descriptor& descriptor = input_.front();

        // Per-flow interlock: while an older packet of this flow is still
        // in the pipeline, later packets wait in the per-key waiting room
        // (the flow-granularity Req Filter waiting list) and resolve when
        // the elder retires — otherwise a younger packet could retire
        // first (paper §IV-A ordering promise).
        if (FlowGate* gate = flow_gate_.find(descriptor.key); gate != nullptr) {
            assert(gate->inflight > 0);
            park_waiter(*gate, std::move(descriptor));
            (void)input_.pop_front();
            ++stats_.dispatched;
            continue;
        }

        // Sequencer stage 1: the collision CAM answers immediately.
        if (const auto cam_hit = table_.search_cam(descriptor.key.view())) {
            Completion completion;
            completion.seq = descriptor.seq;
            completion.fid = cam_hit->payload;
            completion.via_cam = true;
            completion.retired_at = now;
            completion.offered_at = descriptor.offered_at;
            completion.timestamp_ns = descriptor.timestamp_ns;
            completion.frame_bytes = descriptor.frame_bytes;
            completion.key = descriptor.key;
            ++stats_.cam_hits;
            if (obs_ != nullptr) ++*obs_cam_hits_;
            retire(std::move(completion));
            input_.pop_front();
            ++stats_.dispatched;
            continue;
        }

        const Path path = balance(descriptor);
        const u32 path_index = index_of(path);
        if (path_used[path_index]) break;  // that path's LU1 port is taken.
        PathState& state = paths_[path_index];
        if (state.ready.size() >= config_.lu_queue_depth) break;  // backpressure.

        path_used[path_index] = true;
        ++stats_.path_dispatch[path_index];
        ++stats_.dispatched;
        flow_gate_[descriptor.key].inflight = 1;
        LookupJob job;
        job.descriptor = std::move(descriptor);
        job.stage = Stage::kLu1;
        input_.pop_front();
        enqueue_lookup(path, std::move(job));
    }
}

void FlowLut::pump_responses(Path path) {
    PathState& state = paths_[index_of(path)];
    while (auto response = state.controller->pop_response()) {
        if ((response->id & kWriteTag) != 0) {
            const u64 address = state.outstanding_writes.take(response->id);
            for (LookupJob& job : state.filter.update_retired(address)) {
                state.ready.push(bank_of(path, address), std::move(job));
            }
        } else {
            LookupJob job = state.outstanding_reads.take(response->id);
            const u64 address = bucket_address(job.bucket_index(path));
            state.filter.read_retired(address);
            state.match_queue.emplace_back(std::move(job), std::move(response->data));
        }
    }
}

void FlowLut::run_flow_match(Path path, Cycle now) {
    PathState& state = paths_[index_of(path)];
    // The Flow Match comparator handles one bucket per cycle per path
    // (K parallel comparators in hardware).
    if (state.match_queue.empty()) return;
    auto [job, data] = state.match_queue.pop_front();

    const auto way = HashCamTable::match_in_bucket_bytes(data, config_.ways,
                                                         config_.entry_bytes,
                                                         job.descriptor.key.view());
    state.controller->recycle_buffer(std::move(data));  // decoded; reuse for later reads.
    if (way) {
        const u64 bucket = job.bucket_index(path);
        TableIndex location;
        location.where =
            path == Path::kA ? TableIndex::Where::kMem1 : TableIndex::Where::kMem2;
        location.slot = bucket * config_.ways + *way;
        Completion completion;
        completion.seq = job.descriptor.seq;
        completion.fid = make_fid(location);
        completion.retired_at = now;
        completion.offered_at = job.descriptor.offered_at;
        completion.timestamp_ns = job.descriptor.timestamp_ns;
        completion.frame_bytes = job.descriptor.frame_bytes;
        completion.key = job.descriptor.key;
        (job.stage == Stage::kLu1 ? stats_.lu1_hits : stats_.lu2_hits) += 1;
        retire_pipelined(std::move(completion), now);
        return;
    }

    if (job.stage == Stage::kLu1) {
        // Redirect to the other path for the second lookup (Fig. 2 step 2).
        job.stage = Stage::kLu2;
        enqueue_lookup(other(path), std::move(job));
        return;
    }
    handle_lu2_miss(path, job, now);
}

void FlowLut::handle_lu2_miss(Path /*path*/, const LookupJob& job, Cycle now) {
    const auto key = job.descriptor.key.view();

    // A concurrent packet of the same flow may have inserted the key while
    // this lookup was in flight (its DDR write not yet visible to our read).
    // The functional re-check — in hardware, a comparison against the
    // pending-update list in the Updt block — resolves it.
    const Descriptor& d = job.descriptor;
    const SearchResult existing = d.hashed_indices
                                      ? table_.search_indexed(key, d.index_a, d.index_b)
                                      : table_.search(key);
    Completion completion;
    completion.seq = job.descriptor.seq;
    completion.retired_at = now;
    completion.offered_at = job.descriptor.offered_at;
    completion.timestamp_ns = job.descriptor.timestamp_ns;
    completion.frame_bytes = job.descriptor.frame_bytes;
    completion.key = job.descriptor.key;
    if (existing.hit()) {
        completion.fid = existing.payload;
        completion.via_cam = existing.stage == MatchStage::kCam;
        ++stats_.resolved_inflight;
        retire_pipelined(std::move(completion), now);
        return;
    }

    // Genuinely new flow: choose a location, create the entry functionally,
    // emit the FID now (the paper's Mem Updt "output[s] the corresponding
    // location index for that entry"), and schedule the DDR write.
    auto placement = d.hashed_indices
                         ? table_.choose_placement_indexed(key, d.index_a, d.index_b)
                         : table_.choose_placement(key);
    if (!placement) {
        completion.fid = kInvalidFlowId;
        ++stats_.drops;
        retire_pipelined(std::move(completion), now);
        return;
    }
    TableIndex location = placement.value();
    if (location.where == TableIndex::Where::kCam) {
        // The CAM's priority encoder determines the slot, hence the FID,
        // before the entry is written.
        const auto slot = table_.collision_cam().next_free_slot();
        assert(slot.has_value());
        location.slot = *slot;
        const FlowId fid = make_fid(location);
        const Status status = table_.insert_at(location, key, fid);
        assert(status.is_ok());
        (void)status;
        completion.fid = fid;
        completion.via_cam = true;
        completion.is_new_flow = true;
        ++stats_.new_flows;
        retire_pipelined(std::move(completion), now);
        return;
    }

    const FlowId fid = make_fid(location);
    const Status status = table_.insert_at(location, key, fid);
    assert(status.is_ok());
    (void)status;
    completion.fid = fid;
    completion.is_new_flow = true;
    ++stats_.new_flows;

    // Register the pending DDR write with the owning path's Req Filter and
    // queue the update through Req_Arb/BWr_Gen.
    const Path owner =
        location.where == TableIndex::Where::kMem1 ? Path::kA : Path::kB;
    PathState& owner_state = paths_[index_of(owner)];
    const u64 bucket = location.slot / config_.ways;
    owner_state.filter.update_created(bucket_address(bucket));
    UpdateRequest update;
    update.kind = UpdateKind::kInsert;
    update.key = job.descriptor.key;
    update.bucket_index = bucket;
    update.way = static_cast<u32>(location.slot % config_.ways);
    const bool accepted = owner_state.updates.submit(std::move(update), now);
    assert(accepted);  // update_queue_depth sized to make overflow impossible
    (void)accepted;
    retire_pipelined(std::move(completion), now);
}

void FlowLut::pump_updates(Path path, Cycle now) {
    PathState& state = paths_[index_of(path)];
    for (UpdateRequest& request : state.updates.release(now)) {
        state.write_queue.push_back(std::move(request));
    }
}

void FlowLut::issue_memory(Path path, Cycle now) {
    PathState& state = paths_[index_of(path)];
    (void)now;

    // One memory request per user-clock cycle per path (quarter-rate user
    // interface width). Writes first: BWr_Gen released them as a batch so
    // consecutive cycles issue consecutive writes — a long write burst.
    if (!state.write_queue.empty()) {
        UpdateRequest& request = state.write_queue.front();
        const u64 address = bucket_address(request.bucket_index);
        if (request.kind == UpdateKind::kDelete && state.filter.delete_blocked(address)) {
            return;  // wait for in-flight reads of this bucket to drain.
        }
        if (request.kind == UpdateKind::kDelete && !request.applied) {
            // Apply the functional erase at issue time so reads accepted
            // before this instant still matched the old contents. Applied
            // exactly once even if the controller rejects the write below
            // (the retry must not bump the filter's pending count again).
            TableIndex location;
            location.where =
                path == Path::kA ? TableIndex::Where::kMem1 : TableIndex::Where::kMem2;
            location.slot = request.bucket_index * config_.ways + request.way;
            const FlowId fid = make_fid(location);
            if (table_.erase_at(location, request.key.view()).is_ok()) {
                flow_state_.on_deleted(fid);
                ++stats_.deletes_applied;
            }
            state.filter.update_created(address);
            request.applied = true;
        }
        dram::MemRequest mem_request;
        mem_request.id = kWriteTag | state.next_request_id++;
        mem_request.is_write = true;
        mem_request.byte_address = address;
        mem_request.bursts = config_.bursts_per_bucket();
        mem_request.write_data = state.controller->take_buffer();
        table_.serialize_bucket_into(mem_of(path), request.bucket_index, mem_request.write_data);
        const u64 id = mem_request.id;
        if (state.controller->enqueue(std::move(mem_request))) {
            state.outstanding_writes[id] = address;
            state.write_queue.pop_front();
        } else {
            --state.next_request_id;  // retry next cycle with the same id.
        }
        return;
    }

    // Otherwise issue the next bank-selected lookup.
    const LookupJob* next = state.ready.peek_rotating();
    if (next == nullptr) return;
    const u64 address = bucket_address(next->bucket_index(path));
    dram::MemRequest mem_request;
    mem_request.id = state.next_request_id++;
    mem_request.is_write = false;
    mem_request.byte_address = address;
    mem_request.bursts = config_.bursts_per_bucket();
    if (state.controller->enqueue(mem_request)) {
        auto job = state.ready.pop_rotating();
        assert(job.has_value());
        state.filter.read_issued(address);
        state.outstanding_reads[mem_request.id] = std::move(*job);
    }
}

void FlowLut::housekeeping(Cycle now) {
    for (const FlowRecord& record : flow_state_.scan_expired(stream_time_ns_)) {
        const auto key = record.key.view();
        const auto location = table_.locate(key);
        if (!location) continue;  // already gone.
        if (location->where == TableIndex::Where::kCam) {
            // On-chip CAM entries die immediately.
            if (table_.erase_at(*location, key).is_ok()) {
                flow_state_.on_deleted(record.fid);
                ++stats_.deletes_applied;
            }
            continue;
        }
        const Path owner =
            location->where == TableIndex::Where::kMem1 ? Path::kA : Path::kB;
        PathState& state = paths_[index_of(owner)];
        const FlowKey flow_key(record.key);
        if (state.updates.delete_pending(flow_key)) continue;
        UpdateRequest request;
        request.kind = UpdateKind::kDelete;
        request.key = flow_key;
        request.bucket_index = location->slot / config_.ways;
        request.way = static_cast<u32>(location->slot % config_.ways);
        (void)state.updates.submit(std::move(request), now);
    }
}

u32 FlowLut::alloc_wait_node() {
    if (wait_free_ != kNilNode) {
        const u32 node = wait_free_;
        wait_free_ = wait_pool_[node].next;
        return node;
    }
    wait_pool_.emplace_back();  // pool grows to high-water mark, then reuses.
    return static_cast<u32>(wait_pool_.size() - 1);
}

void FlowLut::free_wait_node(u32 node) {
    wait_pool_[node].next = wait_free_;
    wait_free_ = node;
}

void FlowLut::park_waiter(FlowGate& gate, Descriptor&& descriptor) {
    const u32 node = alloc_wait_node();
    wait_pool_[node].descriptor = std::move(descriptor);
    wait_pool_[node].next = kNilNode;
    if (gate.waiter_tail != kNilNode) {
        wait_pool_[gate.waiter_tail].next = node;
    } else {
        gate.waiter_head = node;
    }
    gate.waiter_tail = node;
    ++waiting_now_;
}

void FlowLut::retire_pipelined(Completion completion, Cycle now) {
    const FlowKey key = completion.key;
    retire(std::move(completion));
    release_inflight(key, now);
}

void FlowLut::release_inflight(const FlowKey& key, Cycle now) {
    FlowGate* gate = flow_gate_.find(key);
    if (gate == nullptr) return;
    if (--gate->inflight > 0) return;

    // Resolve waiters for this flow, oldest first. A waiter whose key now
    // exists retires immediately (after its elder — we are past the elder's
    // retire). If the flow is still absent (elder dropped or was deleted),
    // the waiter enters the pipeline as the new elder and the rest keep
    // waiting on it.
    while (gate->waiter_head != kNilNode) {
        const u32 node = gate->waiter_head;
        const Descriptor& waiting = wait_pool_[node].descriptor;
        const SearchResult existing =
            waiting.hashed_indices
                ? table_.search_indexed(waiting.key.view(), waiting.index_a, waiting.index_b)
                : table_.search(waiting.key.view());
        Descriptor descriptor = std::move(wait_pool_[node].descriptor);
        gate->waiter_head = wait_pool_[node].next;
        if (gate->waiter_head == kNilNode) gate->waiter_tail = kNilNode;
        free_wait_node(node);
        --waiting_now_;
        if (existing.hit()) {
            Completion completion;
            completion.seq = descriptor.seq;
            completion.fid = existing.payload;
            completion.via_cam = existing.stage == MatchStage::kCam;
            completion.retired_at = now;
            completion.offered_at = descriptor.offered_at;
            completion.timestamp_ns = descriptor.timestamp_ns;
            completion.frame_bytes = descriptor.frame_bytes;
            completion.key = descriptor.key;
            retire(std::move(completion));
            continue;
        }
        gate->inflight = 1;
        LookupJob job;
        job.descriptor = std::move(descriptor);
        job.stage = Stage::kLu1;
        enqueue_lookup(balance(job.descriptor), std::move(job));
        break;
    }
    if (gate->inflight == 0 && gate->waiter_head == kNilNode) flow_gate_.erase(key);
}

void FlowLut::retire(Completion completion) {
    if (completion.fid != kInvalidFlowId) {
        flow_state_.on_packet(completion.fid, completion.key.view(), completion.timestamp_ns,
                              completion.frame_bytes);
    }
    ++stats_.completions;
    if (obs_ != nullptr) {
        obs_latency_->add(obs_->sys_ns(completion.retired_at - completion.offered_at));
        ++*obs_completions_;
        if (completion.is_new_flow) ++*obs_new_flows_;
        if (completion.fid == kInvalidFlowId) ++*obs_drops_;
        *obs_table_size_ = table_.size();
        *obs_cam_size_ = table_.cam_entries();
        obs::Recorder::high_water(obs_hwm_table_, table_.size());
        obs::Recorder::high_water(obs_hwm_cam_, table_.cam_entries());
        obs::Recorder::high_water(obs_hwm_waiting_, waiting_now_);
    }
    // The output queue is unbounded on purpose: the hardware FID stream
    // sinks into the Flow State pipeline at line rate, and dropping
    // completions here would silently lose descriptors (output_depth only
    // sizes the modeled FIFO for the resource estimator).
    output_.push_back(std::move(completion));
}

void FlowLut::tick(Cycle now) {
    // Response-side first so freed resources are visible to the issue side
    // within the same cycle (hardware would pipeline; order only affects
    // latency by one cycle, not correctness).
    pump_responses(Path::kA);
    pump_responses(Path::kB);
    run_flow_match(Path::kA, now);
    run_flow_match(Path::kB, now);
    dispatch_inputs(now);
    housekeeping(now);
    pump_updates(Path::kA, now);
    pump_updates(Path::kB, now);
    issue_memory(Path::kA, now);
    issue_memory(Path::kB, now);
}

void FlowLut::step() {
    for (u32 sub = 0; sub < config_.memory_clock_ratio; ++sub) {
        const Cycle memory_cycle = now_ * config_.memory_clock_ratio + sub;
        paths_[0].controller->tick(memory_cycle);
        paths_[1].controller->tick(memory_cycle);
    }
    tick(now_);
    ++now_;
}

void FlowLut::run(u64 cycles) {
    for (u64 i = 0; i < cycles;) {
        step();
        ++i;
        if (const u64 hint = idle_cycles_hint(); hint > 0) {
            const u64 skipped = std::min<u64>(hint, cycles - i);
            skip_idle(skipped);
            i += skipped;
        }
    }
}

u64 FlowLut::idle_cycles_hint() const {
    // Idle means: no descriptor anywhere in the pipeline, housekeeping
    // provably quiescent at the current (frozen) stream time, and both
    // controllers stalled on a known future event. Then every step() until
    // the earliest controller event only advances clocks.
    if (!drained()) return 0;
    if (!flow_state_.expiry_idle(stream_time_ns_)) return 0;
    u64 hint = ~u64{0};
    for (const PathState& state : paths_) {
        // The next step() ticks memory cycles [now_*ratio, now_*ratio+ratio).
        const Cycle next_mem = now_ * config_.memory_clock_ratio;
        const Cycle stalled = state.controller->stalled_until();
        if (stalled <= next_mem) return 0;
        hint = std::min(hint, (stalled - next_mem) / config_.memory_clock_ratio);
    }
    return hint;
}

bool FlowLut::drained() const {
    const auto path_idle = [](const PathState& state) {
        return state.ready.empty() && state.match_queue.empty() && state.write_queue.empty() &&
               state.outstanding_reads.empty() && state.outstanding_writes.empty() &&
               state.updates.backlog() == 0 && state.filter.parked_now() == 0;
    };
    return input_.empty() && waiting_now_ == 0 && path_idle(paths_[0]) && path_idle(paths_[1]);
}

bool FlowLut::drain(u64 max_cycles) {
    for (u64 i = 0; i < max_cycles; ++i) {
        if (drained()) return true;
        step();
    }
    return drained();
}

Result<FlowId> FlowLut::preload(const net::NTuple& key) {
    const auto view = key.view();
    if (const SearchResult existing = table_.search(view); existing.hit()) {
        return Status(StatusCode::kAlreadyExists);
    }
    auto placement = table_.choose_placement(view);
    if (!placement) return placement.status();
    TableIndex location = placement.value();

    if (location.where == TableIndex::Where::kCam) {
        const auto slot = table_.collision_cam().next_free_slot();
        location.slot = slot.value_or(0);
        const FlowId fid = make_fid(location);
        const Status status = table_.insert_at(location, view, fid);
        if (!status.is_ok()) return status;
        return fid;
    }

    const FlowId fid = make_fid(location);
    const Status status = table_.insert_at(location, view, fid);
    if (!status.is_ok()) return status;
    const Path owner = location.where == TableIndex::Where::kMem1 ? Path::kA : Path::kB;
    const u64 bucket = location.slot / config_.ways;
    paths_[index_of(owner)].controller->device().write(
        bucket_address(bucket), table_.serialize_bucket(mem_of(owner), bucket));
    return fid;
}

}  // namespace flowcam::core
