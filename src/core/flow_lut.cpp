#include "core/flow_lut.hpp"

#include <algorithm>
#include <cassert>

namespace flowcam::core {
namespace {

/// Request-id tag bits so read and write completions demultiplex cleanly.
constexpr u64 kWriteTag = u64{1} << 63;

}  // namespace

FlowLut::PathState::PathState(const FlowLutConfig& config, const std::string& name)
    : ready(config.geometry.banks),
      updates(config.burst_write_threshold, config.burst_write_timeout,
              config.update_queue_depth) {
    dram::ControllerConfig controller_config = config.controller;
    controller_config.interleave_bytes = config.bucket_stride();
    controller = std::make_unique<dram::DramController>(name, config.timings, config.geometry,
                                                        controller_config);
}

FlowLut::FlowLut(const FlowLutConfig& config)
    : config_(config),
      table_(config),
      flow_state_(config.flow_timeout_ns, config.housekeeping_scan_per_cycle),
      paths_{PathState(config, "ddr3-A"), PathState(config, "ddr3-B")},
      rng_(config.hash_seed ^ 0x5e00beefull) {
    if (config_.admission == AdmissionPolicy::kProbabilistic) {
        admission_bloom_ = std::make_unique<bloom::BloomFilter>(
            config_.admission_bloom_bits, config_.admission_bloom_hashes,
            config_.hash_kind, config_.hash_seed ^ 0xb100full);
    }
}

bool FlowLut::offer(const FlowKey& key, u64 timestamp_ns, u32 frame_bytes) {
    const auto view = key.view();
    const hash::IndexGenerator& indexer = table_.indexer();
    // One digest per path; the path-0 digest doubles as the balancing
    // digest (the hardware computes each hash exactly once per packet).
    const u64 digest_a = indexer.digest(0, view);
    const u64 digest_b = indexer.digest(1, view);
    return offer_prepared(key, indexer.index_of_digest(digest_a),
                          indexer.index_of_digest(digest_b), digest_a, timestamp_ns,
                          frame_bytes, /*hashed_indices=*/true);
}

bool FlowLut::offer_prepared(const FlowKey& key, u64 index_a, u64 index_b, u64 digest,
                             u64 timestamp_ns, u32 frame_bytes, bool hashed_indices,
                             u64 tag) {
    if (input_full()) {
        ++stats_.rejected_input_full;
        return false;
    }
    ++stats_.offered;
    Descriptor descriptor;
    descriptor.seq = next_seq_++;
    descriptor.key = key;
    descriptor.index_a = index_a % config_.buckets_per_mem;
    descriptor.index_b = index_b % config_.buckets_per_mem;
    descriptor.digest = digest;
    descriptor.timestamp_ns = timestamp_ns;
    descriptor.offered_at = now_;
    descriptor.frame_bytes = frame_bytes;
    descriptor.hashed_indices = hashed_indices;
    descriptor.tag = tag;
    stream_time_ns_ = std::max(stream_time_ns_, timestamp_ns);
    input_.push_back(std::move(descriptor));
    if (obs_ != nullptr) obs::Recorder::high_water(obs_hwm_input_, input_.size());
    return true;
}

void FlowLut::set_recorder(obs::Recorder* recorder) {
    if (recorder == obs_) return;
    obs_ = recorder;
    paths_[0].controller->set_recorder(recorder);
    paths_[1].controller->set_recorder(recorder);
    if (obs_ == nullptr) {
        obs_latency_ = nullptr;
        return;
    }
    // Registration collisions (a second LUT on the same recorder) fall back
    // to private scrap cells so the bump sites stay branchless-valid.
    const auto cell = [&](const char* name) {
        auto result = obs_->register_counter(name);
        return result ? result.value() : &obs_scrap_cell_;
    };
    auto latency = obs_->register_histogram("lut.desc_latency_ns");
    obs_latency_ = latency ? latency.value() : &obs_scrap_hist_;
    obs_completions_ = cell("lut.completions");
    obs_new_flows_ = cell("lut.new_flows");
    obs_drops_ = cell("lut.drops");
    obs_cam_hits_ = cell("lut.cam_hits");
    obs_table_size_ = cell("lut.table_size");
    obs_cam_size_ = cell("lut.cam_size");
    obs_hwm_input_ = cell("lut.hwm_input");
    obs_hwm_waiting_ = cell("lut.hwm_waiting");
    obs_hwm_table_ = cell("lut.hwm_table");
    obs_hwm_cam_ = cell("lut.hwm_cam");
    obs_admission_rejects_ = cell("lut.admission_rejects");
    obs_evictions_lru_ = cell("lut.evictions_lru");
    obs_evictions_cam_ = cell("lut.evictions_cam");
    obs_evictions_clock_ = cell("lut.evictions_clock");
    obs_res_granted_ = cell("lut.reservations_granted");
    obs_res_confirmed_ = cell("lut.reservations_confirmed");
    obs_res_reclaimed_ = cell("lut.reservations_reclaimed");
}

void FlowLut::prepare_policy_switching(EvictionPolicy eviction) {
    if (admission_bloom_ == nullptr) {
        admission_bloom_ = std::make_unique<bloom::BloomFilter>(
            config_.admission_bloom_bits, config_.admission_bloom_hashes,
            config_.hash_kind, config_.hash_seed ^ 0xb100full);
    }
    if (eviction == EvictionPolicy::kCamOldest) track_cam_order_ = true;
}

void FlowLut::apply_overload_policies(AdmissionPolicy admission, EvictionPolicy eviction,
                                      Cycle reservation_deadline) {
    config_.admission = admission;
    config_.eviction = eviction;
    config_.reservation_deadline = reservation_deadline;
}

void FlowLut::set_faults(faults::FaultInjector* faults) {
    faults_ = faults;
    for (u32 path = 0; path < 2; ++path) {
        if (faults != nullptr &&
            (faults->config().ddr_reject_p > 0.0 || faults->config().campaign_enabled())) {
            paths_[path].controller->set_enqueue_veto(
                [faults, path](const dram::MemRequest&) {
                    return faults->veto_ddr_enqueue(path);
                });
        } else {
            paths_[path].controller->set_enqueue_veto(nullptr);
        }
    }
}

std::optional<Completion> FlowLut::pop_completion() {
    if (output_.empty()) return std::nullopt;
    return output_.pop_front();
}

Path FlowLut::balance(const Descriptor& descriptor) const {
    switch (config_.balance) {
        case BalancePolicy::kHashBit:
            return (descriptor.digest >> 17 & 1u) ? Path::kB : Path::kA;
        case BalancePolicy::kWeightedHash: {
            // Flow-affine weighting: a digest-derived uniform in [0,1).
            const double unit =
                static_cast<double>(descriptor.digest >> 11) * 0x1.0p-53;
            return unit < config_.weight_a ? Path::kA : Path::kB;
        }
        case BalancePolicy::kAlternate:
            return (alternate_rotor_++ & 1u) ? Path::kB : Path::kA;
        case BalancePolicy::kLeastLoaded:
            return paths_[0].ready.size() <= paths_[1].ready.size() ? Path::kA : Path::kB;
    }
    return Path::kA;
}

u32 FlowLut::bank_of(Path path, u64 address) const {
    return paths_[index_of(path)].controller->address_map().decode(address).bank;
}

void FlowLut::enqueue_lookup(Path path, LookupJob job) {
    PathState& state = paths_[index_of(path)];
    const u64 address = bucket_address(job.bucket_index(path));
    if (state.filter.read_blocked(address)) {
        state.filter.park(address, std::move(job));
        return;
    }
    state.ready.push(bank_of(path, address), std::move(job));
}

void FlowLut::dispatch_inputs(Cycle now) {
    bool path_used[2] = {false, false};
    // Up to two descriptors per cycle — one entering each path — matching
    // the paper's "process two lookup requests simultaneously".
    for (u32 round = 0; round < 2 && !input_.empty(); ++round) {
        if (config_.batch > 0 && input_.size() > 1) {
            // Pull the following descriptor's candidate bucket lines toward
            // the cache while this one dispatches (pure timing hint — no
            // architectural effect).
            const Descriptor& upcoming = input_.at(1);
            table_.prefetch_buckets(upcoming.index_a, upcoming.index_b);
        }
        Descriptor& descriptor = input_.front();

        // Per-flow interlock: while an older packet of this flow is still
        // in the pipeline, later packets wait in the per-key waiting room
        // (the flow-granularity Req Filter waiting list) and resolve when
        // the elder retires — otherwise a younger packet could retire
        // first (paper §IV-A ordering promise).
        if (FlowGate* gate = flow_gate_.find(descriptor.key); gate != nullptr) {
            assert(gate->inflight > 0);
            park_waiter(*gate, std::move(descriptor));
            (void)input_.pop_front();
            ++stats_.dispatched;
            continue;
        }

        // Sequencer stage 1: the collision CAM answers immediately.
        if (const auto cam_hit = table_.search_cam(descriptor.key.view())) {
            Completion completion;
            completion.seq = descriptor.seq;
            completion.fid = cam_hit->payload;
            completion.via_cam = true;
            completion.retired_at = now;
            completion.offered_at = descriptor.offered_at;
            completion.timestamp_ns = descriptor.timestamp_ns;
            completion.frame_bytes = descriptor.frame_bytes;
            completion.key = descriptor.key;
            completion.tag = descriptor.tag;
            ++stats_.cam_hits;
            if (obs_ != nullptr) ++*obs_cam_hits_;
            retire(std::move(completion));
            input_.pop_front();
            ++stats_.dispatched;
            continue;
        }

        const Path path = balance(descriptor);
        const u32 path_index = index_of(path);
        if (path_used[path_index]) break;  // that path's LU1 port is taken.
        PathState& state = paths_[path_index];
        if (state.ready.size() >= config_.lu_queue_depth) break;  // backpressure.

        path_used[path_index] = true;
        ++stats_.path_dispatch[path_index];
        ++stats_.dispatched;
        flow_gate_[descriptor.key].inflight = 1;
        LookupJob job;
        job.descriptor = std::move(descriptor);
        job.stage = Stage::kLu1;
        input_.pop_front();
        enqueue_lookup(path, std::move(job));
    }
}

void FlowLut::pump_responses(Path path) {
    PathState& state = paths_[index_of(path)];
    if (faults_ != nullptr) {
        // Deliver matured held-back responses first (FIFO per path).
        while (!state.delayed.empty() && state.delayed.front().release_at <= now_) {
            deliver_response(path, std::move(state.delayed.front().response));
            state.delayed.pop_front();
        }
    }
    while (auto response = state.controller->pop_response()) {
        if (faults_ != nullptr) {
            if (const u32 hold = faults_->response_delay(); hold > 0) {
                state.delayed.push_back({std::move(*response), now_ + hold});
                continue;
            }
            if (faults_->duplicate_response()) {
                dram::MemResponse duplicate = *response;
                deliver_response(path, std::move(*response));
                // The second delivery is a spurious unknown-id response the
                // demux must ignore, not crash on.
                deliver_response(path, std::move(duplicate));
                continue;
            }
        }
        deliver_response(path, std::move(*response));
    }
}

void FlowLut::deliver_response(Path path, dram::MemResponse&& response) {
    PathState& state = paths_[index_of(path)];
    if ((response.id & kWriteTag) != 0) {
        const u64* address_slot = state.outstanding_writes.find(response.id);
        if (address_slot == nullptr) {
            ++stats_.spurious_responses;
            return;
        }
        const u64 address = *address_slot;
        state.outstanding_writes.erase(response.id);
        for (LookupJob& job : state.filter.update_retired(address)) {
            state.ready.push(bank_of(path, address), std::move(job));
        }
    } else {
        LookupJob* job_slot = state.outstanding_reads.find(response.id);
        if (job_slot == nullptr) {
            ++stats_.spurious_responses;
            return;
        }
        LookupJob job = std::move(*job_slot);
        state.outstanding_reads.erase(response.id);
        const u64 address = bucket_address(job.bucket_index(path));
        state.filter.read_retired(address);
        state.match_queue.emplace_back(std::move(job), std::move(response.data));
    }
}

void FlowLut::run_flow_match(Path path, Cycle now) {
    PathState& state = paths_[index_of(path)];
    // The Flow Match comparator handles one bucket per cycle per path
    // (K parallel comparators in hardware).
    if (state.match_queue.empty()) return;
    auto [job, data] = state.match_queue.pop_front();

    const auto way = HashCamTable::match_in_bucket_bytes(data, config_.ways,
                                                         config_.entry_bytes,
                                                         job.descriptor.key.view());
    state.controller->recycle_buffer(std::move(data));  // decoded; reuse for later reads.
    if (way) {
        const u64 bucket = job.bucket_index(path);
        TableIndex location;
        location.where =
            path == Path::kA ? TableIndex::Where::kMem1 : TableIndex::Where::kMem2;
        location.slot = bucket * config_.ways + *way;
        // The match ran against read data snapshotted at response delivery; a
        // functional erase of this bucket (delete/expiry racing the match
        // queue) may have landed since. Check the live entry — one array
        // probe — and mark raced completions so the flow-state touch can't
        // resurrect a record the exporter already saw die.
        const auto key_view = job.descriptor.key.view();
        const table::Entry& live = table_.mem_entry(index_of(path), location.slot);
        const bool still_live =
            live.valid && live.key_length == key_view.size() &&
            std::equal(live.key.data(), live.key.data() + live.key_length, key_view.begin());
        Completion completion;
        completion.seq = job.descriptor.seq;
        completion.fid = make_fid(location);
        completion.snapshot_fid = !still_live;
        completion.retired_at = now;
        completion.offered_at = job.descriptor.offered_at;
        completion.timestamp_ns = job.descriptor.timestamp_ns;
        completion.frame_bytes = job.descriptor.frame_bytes;
        completion.key = job.descriptor.key;
        completion.tag = job.descriptor.tag;
        (job.stage == Stage::kLu1 ? stats_.lu1_hits : stats_.lu2_hits) += 1;
        retire_pipelined(std::move(completion), now);
        return;
    }

    if (job.stage == Stage::kLu1) {
        // Redirect to the other path for the second lookup (Fig. 2 step 2).
        job.stage = Stage::kLu2;
        enqueue_lookup(other(path), std::move(job));
        return;
    }
    handle_lu2_miss(path, job, now);
}

void FlowLut::handle_lu2_miss(Path /*path*/, const LookupJob& job, Cycle now) {
    const auto key = job.descriptor.key.view();

    // A concurrent packet of the same flow may have inserted the key while
    // this lookup was in flight (its DDR write not yet visible to our read).
    // The functional re-check — in hardware, a comparison against the
    // pending-update list in the Updt block — resolves it.
    const Descriptor& d = job.descriptor;
    const SearchResult existing = d.hashed_indices
                                      ? table_.search_indexed(key, d.index_a, d.index_b)
                                      : table_.search(key);
    Completion completion;
    completion.seq = job.descriptor.seq;
    completion.retired_at = now;
    completion.offered_at = job.descriptor.offered_at;
    completion.timestamp_ns = job.descriptor.timestamp_ns;
    completion.frame_bytes = job.descriptor.frame_bytes;
    completion.key = job.descriptor.key;
    completion.tag = job.descriptor.tag;
    if (existing.hit()) {
        completion.fid = existing.payload;
        completion.via_cam = existing.stage == MatchStage::kCam;
        ++stats_.resolved_inflight;
        retire_pipelined(std::move(completion), now);
        return;
    }

    // Genuinely new flow. Under pressure, admission control decides whether
    // it even earns a slot; a surviving new flow then gets its placement,
    // stealing one via the eviction policy when the table is out of room.
    // A reject is a drop (the packet retires with an invalid FID, like a
    // capacity-full drop) and additionally counted as admission_rejects so
    // policy-chosen drops stay distinguishable from out-of-room drops.
    const bool pressured = under_pressure();
    if (config_.admission != AdmissionPolicy::kAlways && pressured && !admit_new_flow(d)) {
        completion.fid = kInvalidFlowId;
        ++stats_.admission_rejects;
        ++stats_.drops;
        if (obs_ != nullptr) {
            ++*obs_admission_rejects_;
            ++*obs_drops_;
        }
        retire_pipelined(std::move(completion), now);
        return;
    }

    // Choose a location, create the entry functionally, emit the FID now
    // (the paper's Mem Updt "output[s] the corresponding location index for
    // that entry"), and schedule the DDR write.
    auto placement = d.hashed_indices
                         ? table_.choose_placement_indexed(key, d.index_a, d.index_b)
                         : table_.choose_placement(key);
    TableIndex location;
    bool evicted_slot = false;
    if (placement) {
        location = placement.value();
    } else {
        std::optional<TableIndex> freed;
        if (config_.eviction != EvictionPolicy::kNone) freed = try_evict_for(d);
        if (!freed) {
            completion.fid = kInvalidFlowId;
            ++stats_.drops;
            retire_pipelined(std::move(completion), now);
            return;
        }
        location = *freed;
        evicted_slot = true;
    }
    if (location.where == TableIndex::Where::kCam) {
        if (!evicted_slot) {
            // The CAM's priority encoder determines the slot, hence the FID,
            // before the entry is written.
            const auto slot = table_.collision_cam().next_free_slot();
            assert(slot.has_value());
            location.slot = *slot;
        }
        const FlowId fid = make_fid(location);
        const Status status = table_.insert_at(location, key, fid);
        assert(status.is_ok());
        (void)status;
        ++stats_.table_inserts;
        if (config_.eviction == EvictionPolicy::kCamOldest || track_cam_order_) {
            cam_order_.push_back(job.descriptor.key);
        }
        completion.fid = fid;
        completion.via_cam = true;
        completion.is_new_flow = true;
        ++stats_.new_flows;
        if (config_.reservation && pressured) grant_reservation(job.descriptor.key, now);
        retire_pipelined(std::move(completion), now);
        return;
    }

    const FlowId fid = make_fid(location);
    const Status status = table_.insert_at(location, key, fid);
    assert(status.is_ok());
    (void)status;
    ++stats_.table_inserts;
    completion.fid = fid;
    completion.is_new_flow = true;
    ++stats_.new_flows;

    // Register the pending DDR write with the owning path's Req Filter and
    // queue the update through Req_Arb/BWr_Gen. When the slot was freed by
    // an eviction, this one write also covers the victim's removal (the
    // whole bucket is re-serialized from the authoritative table at issue).
    const Path owner =
        location.where == TableIndex::Where::kMem1 ? Path::kA : Path::kB;
    PathState& owner_state = paths_[index_of(owner)];
    const u64 bucket = location.slot / config_.ways;
    owner_state.filter.update_created(bucket_address(bucket));
    UpdateRequest update;
    update.kind = UpdateKind::kInsert;
    update.key = job.descriptor.key;
    update.bucket_index = bucket;
    update.way = static_cast<u32>(location.slot % config_.ways);
    const bool accepted = owner_state.updates.submit(std::move(update), now);
    assert(accepted);  // update_queue_depth sized to make overflow impossible
    (void)accepted;
    if (config_.reservation && pressured) grant_reservation(job.descriptor.key, now);
    retire_pipelined(std::move(completion), now);
}

bool FlowLut::admit_new_flow(const Descriptor& descriptor) {
    switch (config_.admission) {
        case AdmissionPolicy::kAlways:
            return true;
        case AdmissionPolicy::kRejectFull:
            return false;
        case AdmissionPolicy::kProbabilistic: {
            if (admission_bloom_ == nullptr) return true;  // defensive.
            const auto key = descriptor.key.view();
            // A key seen before is a returning flow proving liveness by its
            // second packet — always admit. Never-seen keys draw a
            // digest-derived (flow-affine) coin: one-shot flood keys lose
            // with probability 1 - admission_p, and the shared rng_ stream
            // stays untouched so default runs are unaffected.
            if (admission_bloom_->maybe_contains(key)) return true;
            admission_bloom_->add(key);
            u64 mixed = descriptor.digest * 0x9e3779b97f4a7c15ull;
            mixed ^= mixed >> 29;
            const double unit = static_cast<double>(mixed >> 11) * 0x1.0p-53;
            return unit < config_.admission_p;
        }
    }
    return true;
}

std::optional<TableIndex> FlowLut::try_evict_for(const Descriptor& descriptor) {
    // The LRU policy reads flow records' last_ns below; deferred touches
    // from retires earlier this tick must land first.
    flush_touches();
    if (config_.eviction == EvictionPolicy::kLru) {
        // Victim = idlest valid entry across the two candidate buckets,
        // skipping anything the timed machinery still has in motion: buckets
        // with in-flight reads (an evicted victim would stale-hit), keys
        // with a pending delete, keys with packets mid-pipeline, and keys
        // holding a provisional reservation.
        std::optional<TableIndex> victim;
        const table::Entry* victim_entry = nullptr;
        FlowId victim_fid = kInvalidFlowId;
        u64 victim_last = ~u64{0};
        for (u32 mem = 0; mem < 2; ++mem) {
            const u64 bucket = mem == 0 ? descriptor.index_a : descriptor.index_b;
            PathState& state = paths_[mem];
            if (state.filter.delete_blocked(bucket_address(bucket))) continue;
            for (u32 way = 0; way < config_.ways; ++way) {
                const u64 slot = bucket * config_.ways + way;
                const table::Entry& entry = table_.mem_entry(mem, slot);
                if (!entry.valid) continue;
                const FlowKey entry_key(
                    std::span<const u8>(entry.key.data(), entry.key_length));
                if (state.updates.delete_pending(entry_key)) continue;
                if (flow_gate_.find(entry_key) != nullptr) continue;
                if (reserved_.find(entry_key) != nullptr) continue;
                TableIndex location;
                location.where = mem == 0 ? TableIndex::Where::kMem1
                                          : TableIndex::Where::kMem2;
                location.slot = slot;
                const FlowId fid = make_fid(location);
                const FlowRecord* record = flow_state_.find(fid);
                const u64 last_ns = record == nullptr ? 0 : record->last_ns;
                if (!victim.has_value() || last_ns < victim_last) {
                    victim = location;
                    victim_entry = &entry;
                    victim_fid = fid;
                    victim_last = last_ns;
                }
            }
        }
        if (!victim.has_value()) return std::nullopt;
        const std::span<const u8> victim_key(victim_entry->key.data(),
                                             victim_entry->key_length);
        if (!table_.erase_at(*victim, victim_key).is_ok()) return std::nullopt;
        flow_state_.on_deleted(victim_fid);
        ++stats_.evictions_lru;
        ++stats_.table_removals;
        if (obs_ != nullptr) ++*obs_evictions_lru_;
        return victim;
    }

    if (config_.eviction == EvictionPolicy::kClock) {
        // Second-chance sweep over the two candidate buckets: the hand walks
        // the combined [mem0 ways | mem1 ways] window, clearing each passed
        // entry's referenced bit; the first unreferenced entry not in motion
        // (same guards as the LRU arm) is the victim. Two revolutions bound
        // the walk: everything evictable is unreferenced by the second.
        const u32 positions = 2 * config_.ways;
        for (u32 step = 0; step < 2 * positions; ++step) {
            const u32 pos = clock_hand_;
            clock_hand_ = (clock_hand_ + 1) % positions;
            const u32 mem = pos / config_.ways;
            const u32 way = pos % config_.ways;
            const u64 bucket = mem == 0 ? descriptor.index_a : descriptor.index_b;
            PathState& state = paths_[mem];
            if (state.filter.delete_blocked(bucket_address(bucket))) continue;
            const u64 slot = bucket * config_.ways + way;
            const table::Entry& entry = table_.mem_entry(mem, slot);
            if (!entry.valid) continue;
            const FlowKey entry_key(
                std::span<const u8>(entry.key.data(), entry.key_length));
            if (state.updates.delete_pending(entry_key)) continue;
            if (flow_gate_.find(entry_key) != nullptr) continue;
            if (reserved_.find(entry_key) != nullptr) continue;
            TableIndex location;
            location.where =
                mem == 0 ? TableIndex::Where::kMem1 : TableIndex::Where::kMem2;
            location.slot = slot;
            const FlowId fid = make_fid(location);
            if (flow_state_.consume_referenced(fid)) continue;  // second chance.
            if (!table_.erase_at(location, entry_key.view()).is_ok()) continue;
            flow_state_.on_deleted(fid);
            ++stats_.evictions_clock;
            ++stats_.table_removals;
            if (obs_ != nullptr) ++*obs_evictions_clock_;
            return location;
        }
        return std::nullopt;
    }

    // kCamOldest: the oldest CAM entry still present and not in motion.
    // Stale order entries (already expired/moved) are dropped lazily; busy
    // entries recycle to the back, bounded by one full rotation.
    std::size_t recycled = 0;
    while (!cam_order_.empty()) {
        if (recycled >= cam_order_.size()) return std::nullopt;  // all busy.
        FlowKey victim_key = std::move(cam_order_.front());
        cam_order_.pop_front();
        const auto location = table_.locate(victim_key.view());
        if (!location || location->where != TableIndex::Where::kCam) continue;
        if (flow_gate_.find(victim_key) != nullptr ||
            reserved_.find(victim_key) != nullptr) {
            cam_order_.push_back(std::move(victim_key));
            ++recycled;
            continue;
        }
        const FlowId fid = make_fid(*location);
        if (!table_.erase_at(*location, victim_key.view()).is_ok()) continue;
        flow_state_.on_deleted(fid);
        ++stats_.evictions_cam;
        ++stats_.table_removals;
        if (obs_ != nullptr) ++*obs_evictions_cam_;
        return *location;
    }
    return std::nullopt;
}

void FlowLut::grant_reservation(const FlowKey& key, Cycle now) {
    const Cycle deadline = now + config_.reservation_deadline;
    if (Cycle* open = reserved_.find(key); open != nullptr) {
        // Regranted while an earlier grant is still open (the flow expired
        // and re-inserted before its deadline) — extend, one ledger entry.
        *open = deadline;
        return;
    }
    reserved_[key] = deadline;
    reservations_.push_back({key, deadline});
    ++stats_.reservations_granted;
    if (obs_ != nullptr) ++*obs_res_granted_;
}

void FlowLut::reclaim_reservations(Cycle now) {
    while (!reservations_.empty() && reservations_.front().deadline <= now) {
        Reservation entry = std::move(reservations_.front());
        reservations_.pop_front();
        Cycle* current = reserved_.find(entry.key);
        if (current == nullptr) continue;  // confirmed.
        if (*current > entry.deadline) {
            // Extended meanwhile: this ledger entry matures later.
            reservations_.push_back({std::move(entry.key), *current});
            continue;
        }
        if (flow_gate_.find(entry.key) != nullptr) {
            // Packets of this flow are mid-pipeline; their retire is about
            // to confirm. Don't race them — extend instead.
            const Cycle extended = now + config_.reservation_deadline;
            *current = extended;
            reservations_.push_back({std::move(entry.key), extended});
            continue;
        }
        const auto location = table_.locate(entry.key.view());
        if (!location) {
            // Entry already gone (skew-expired, evicted): the grant still
            // ended unconfirmed.
            finish_reclaim(entry.key);
            continue;
        }
        const FlowId fid = make_fid(*location);
        if (location->where == TableIndex::Where::kCam) {
            if (table_.erase_at(*location, entry.key.view()).is_ok()) {
                flow_state_.on_deleted(fid);
                ++stats_.table_removals;
            }
            finish_reclaim(entry.key);
            continue;
        }
        const Path owner =
            location->where == TableIndex::Where::kMem1 ? Path::kA : Path::kB;
        PathState& state = paths_[index_of(owner)];
        if (state.updates.cancel_insert(entry.key)) {
            // The nack won the race against the burst-write release: revoke
            // the still-queued insert and erase functionally now. The Req
            // Filter's pending hold is dropped exactly once when the
            // cancelled request flows out of BWr_Gen (pump_updates) — NOT
            // here, or a parked bucket would leak (the PR 2 bug class).
            if (table_.erase_at(*location, entry.key.view()).is_ok()) {
                flow_state_.on_deleted(fid);
                ++stats_.table_removals;
            }
        } else if (!state.updates.delete_pending(entry.key)) {
            // The insert write already left Req_Arb (possibly in flight or
            // retrying against a full controller queue): retire the slot
            // through the normal delete machinery, whose issue-time
            // exactly-once apply already survives rejected writes.
            UpdateRequest request;
            request.kind = UpdateKind::kDelete;
            request.key = entry.key;
            request.bucket_index = location->slot / config_.ways;
            request.way = static_cast<u32>(location->slot % config_.ways);
            if (!state.updates.submit(std::move(request), now)) {
                // Update queue full: extend and retry next deadline.
                const Cycle extended = now + config_.reservation_deadline;
                *current = extended;
                reservations_.push_back({std::move(entry.key), extended});
                continue;
            }
        }
        finish_reclaim(entry.key);
    }
}

void FlowLut::finish_reclaim(const FlowKey& key) {
    reserved_.erase(key);
    ++stats_.reservations_reclaimed;
    if (obs_ != nullptr) ++*obs_res_reclaimed_;
}

void FlowLut::pump_updates(Path path, Cycle now) {
    PathState& state = paths_[index_of(path)];
    for (UpdateRequest& request : state.updates.release(now)) {
        if (request.cancelled) {
            // A reclaim revoked this insert while it was queued: no DDR
            // write happens, but the Req Filter hold it created must be
            // released here — exactly once — and anything it parked
            // re-dispatched, or the bucket wedges forever (PR 2 bug class).
            const u64 address = bucket_address(request.bucket_index);
            for (LookupJob& job : state.filter.update_cancelled(address)) {
                state.ready.push(bank_of(path, address), std::move(job));
            }
            continue;
        }
        state.write_queue.push_back(std::move(request));
    }
}

void FlowLut::issue_memory(Path path, Cycle now) {
    PathState& state = paths_[index_of(path)];
    (void)now;

    // One memory request per user-clock cycle per path (quarter-rate user
    // interface width). Writes first: BWr_Gen released them as a batch so
    // consecutive cycles issue consecutive writes — a long write burst.
    if (!state.write_queue.empty()) {
        UpdateRequest& request = state.write_queue.front();
        const u64 address = bucket_address(request.bucket_index);
        if (request.kind == UpdateKind::kDelete && state.filter.delete_blocked(address)) {
            return;  // wait for in-flight reads of this bucket to drain.
        }
        if (request.kind == UpdateKind::kDelete && !request.applied) {
            // Apply the functional erase at issue time so reads accepted
            // before this instant still matched the old contents. Applied
            // exactly once even if the controller rejects the write below
            // (the retry must not bump the filter's pending count again).
            TableIndex location;
            location.where =
                path == Path::kA ? TableIndex::Where::kMem1 : TableIndex::Where::kMem2;
            location.slot = request.bucket_index * config_.ways + request.way;
            const FlowId fid = make_fid(location);
            if (table_.erase_at(location, request.key.view()).is_ok()) {
                flow_state_.on_deleted(fid);
                ++stats_.deletes_applied;
                ++stats_.table_removals;
            }
            state.filter.update_created(address);
            request.applied = true;
        }
        dram::MemRequest mem_request;
        mem_request.id = kWriteTag | state.next_request_id++;
        mem_request.is_write = true;
        mem_request.byte_address = address;
        mem_request.bursts = config_.bursts_per_bucket();
        mem_request.write_data = state.controller->take_buffer();
        table_.serialize_bucket_into(mem_of(path), request.bucket_index, mem_request.write_data);
        const u64 id = mem_request.id;
        if (state.controller->enqueue(std::move(mem_request))) {
            state.outstanding_writes[id] = address;
            state.write_queue.pop_front();
        } else {
            --state.next_request_id;  // retry next cycle with the same id.
            if (config_.debug_double_apply_delete && request.kind == UpdateKind::kDelete) {
                // DELIBERATE BUG (test-only flag): forget the exactly-once
                // guard so the retry re-applies — the filter's pending count
                // leaks and the invariant auditor must catch it.
                request.applied = false;
            }
        }
        return;
    }

    // Otherwise issue the next bank-selected lookup.
    const LookupJob* next = state.ready.peek_rotating();
    if (next == nullptr) return;
    const u64 address = bucket_address(next->bucket_index(path));
    dram::MemRequest mem_request;
    mem_request.id = state.next_request_id++;
    mem_request.is_write = false;
    mem_request.byte_address = address;
    mem_request.bursts = config_.bursts_per_bucket();
    if (state.controller->enqueue(mem_request)) {
        auto job = state.ready.pop_rotating();
        assert(job.has_value());
        state.filter.read_issued(address);
        state.outstanding_reads[mem_request.id] = std::move(*job);
    }
}

void FlowLut::housekeeping(Cycle now) {
    // All retire sources (flow match, CAM-hit dispatch, waiter resolution)
    // ran earlier this tick; apply their deferred touches before anything
    // below reads or deletes flow records.
    flush_touches();
    if (config_.reservation && !reservations_.empty()) reclaim_reservations(now);
    for (const FlowRecord& record : flow_state_.scan_expired(effective_expiry_time())) {
        const auto key = record.key.view();
        const auto location = table_.locate(key);
        if (!location) continue;  // already gone.
        if (location->where == TableIndex::Where::kCam) {
            // On-chip CAM entries die immediately.
            if (table_.erase_at(*location, key).is_ok()) {
                flow_state_.on_deleted(record.fid);
                ++stats_.deletes_applied;
                ++stats_.table_removals;
            }
            continue;
        }
        const Path owner =
            location->where == TableIndex::Where::kMem1 ? Path::kA : Path::kB;
        PathState& state = paths_[index_of(owner)];
        const FlowKey flow_key(record.key);
        if (state.updates.delete_pending(flow_key)) continue;
        UpdateRequest request;
        request.kind = UpdateKind::kDelete;
        request.key = flow_key;
        request.bucket_index = location->slot / config_.ways;
        request.way = static_cast<u32>(location->slot % config_.ways);
        (void)state.updates.submit(std::move(request), now);
    }
}

u32 FlowLut::alloc_wait_node() {
    if (wait_free_ != kNilNode) {
        const u32 node = wait_free_;
        wait_free_ = wait_pool_[node].next;
        return node;
    }
    wait_pool_.emplace_back();  // pool grows to high-water mark, then reuses.
    return static_cast<u32>(wait_pool_.size() - 1);
}

void FlowLut::free_wait_node(u32 node) {
    wait_pool_[node].next = wait_free_;
    wait_free_ = node;
}

void FlowLut::park_waiter(FlowGate& gate, Descriptor&& descriptor) {
    const u32 node = alloc_wait_node();
    wait_pool_[node].descriptor = std::move(descriptor);
    wait_pool_[node].next = kNilNode;
    if (gate.waiter_tail != kNilNode) {
        wait_pool_[gate.waiter_tail].next = node;
    } else {
        gate.waiter_head = node;
    }
    gate.waiter_tail = node;
    ++waiting_now_;
}

void FlowLut::retire_pipelined(Completion completion, Cycle now) {
    const FlowKey key = completion.key;
    retire(std::move(completion));
    release_inflight(key, now);
}

void FlowLut::release_inflight(const FlowKey& key, Cycle now) {
    FlowGate* gate = flow_gate_.find(key);
    if (gate == nullptr) return;
    if (--gate->inflight > 0) return;

    if (config_.batch > 0) {
        release_waiters_batched(*gate, now);
        if (gate->inflight == 0 && gate->waiter_head == kNilNode) flow_gate_.erase(key);
        return;
    }

    // Resolve waiters for this flow, oldest first. A waiter whose key now
    // exists retires immediately (after its elder — we are past the elder's
    // retire). If the flow is still absent (elder dropped or was deleted),
    // the waiter enters the pipeline as the new elder and the rest keep
    // waiting on it.
    while (gate->waiter_head != kNilNode) {
        const u32 node = gate->waiter_head;
        const Descriptor& waiting = wait_pool_[node].descriptor;
        const SearchResult existing =
            waiting.hashed_indices
                ? table_.search_indexed(waiting.key.view(), waiting.index_a, waiting.index_b)
                : table_.search(waiting.key.view());
        Descriptor descriptor = std::move(wait_pool_[node].descriptor);
        gate->waiter_head = wait_pool_[node].next;
        if (gate->waiter_head == kNilNode) gate->waiter_tail = kNilNode;
        free_wait_node(node);
        --waiting_now_;
        if (existing.hit()) {
            Completion completion;
            completion.seq = descriptor.seq;
            completion.fid = existing.payload;
            completion.via_cam = existing.stage == MatchStage::kCam;
            completion.retired_at = now;
            completion.offered_at = descriptor.offered_at;
            completion.timestamp_ns = descriptor.timestamp_ns;
            completion.frame_bytes = descriptor.frame_bytes;
            completion.key = descriptor.key;
            completion.tag = descriptor.tag;
            retire(std::move(completion));
            continue;
        }
        gate->inflight = 1;
        LookupJob job;
        job.descriptor = std::move(descriptor);
        job.stage = Stage::kLu1;
        enqueue_lookup(balance(job.descriptor), std::move(job));
        break;
    }
    if (gate->inflight == 0 && gate->waiter_head == kNilNode) flow_gate_.erase(key);
}

void FlowLut::release_waiters_batched(FlowGate& gate, Cycle now) {
    // Same resolution semantics as the scalar waiter loop, but the table
    // probes run speculatively in batch: nothing in the consume loop below
    // mutates the table (retire never touches it), so every precomputed
    // result stays exact for the prefix actually consumed — the hits plus
    // the first miss. Statistics are replayed per consumed probe through
    // record_search(), so counters match scalar dispatch bit for bit.
    while (gate.waiter_head != kNilNode) {
        std::array<SearchProbe, kMaxDispatchBatch> probes;
        std::array<SearchResult, kMaxDispatchBatch> results;
        std::array<u32, kMaxDispatchBatch> nodes;
        std::size_t count = 0;
        for (u32 node = gate.waiter_head; node != kNilNode && count < kMaxDispatchBatch;
             node = wait_pool_[node].next) {
            const Descriptor& waiting = wait_pool_[node].descriptor;
            nodes[count] = node;
            probes[count].key = waiting.key.view();
            if (waiting.hashed_indices) {
                probes[count].index_a = waiting.index_a;
                probes[count].index_b = waiting.index_b;
            } else {
                probes[count].index_a = table_.indexer().index(0, waiting.key.view());
                probes[count].index_b = table_.indexer().index(1, waiting.key.view());
            }
            ++count;
        }
        table_.search_indexed_multi(probes.data(), count, results.data());

        for (std::size_t i = 0; i < count; ++i) {
            const SearchResult& existing = results[i];
            table_.record_search(existing);
            const u32 node = nodes[i];
            Descriptor descriptor = std::move(wait_pool_[node].descriptor);
            gate.waiter_head = wait_pool_[node].next;
            if (gate.waiter_head == kNilNode) gate.waiter_tail = kNilNode;
            free_wait_node(node);
            --waiting_now_;
            if (existing.hit()) {
                Completion completion;
                completion.seq = descriptor.seq;
                completion.fid = existing.payload;
                completion.via_cam = existing.stage == MatchStage::kCam;
                completion.retired_at = now;
                completion.offered_at = descriptor.offered_at;
                completion.timestamp_ns = descriptor.timestamp_ns;
                completion.frame_bytes = descriptor.frame_bytes;
                completion.key = descriptor.key;
                completion.tag = descriptor.tag;
                retire(std::move(completion));
                continue;
            }
            // First miss: this waiter enters the pipeline as the new elder;
            // the remaining probes are discarded unconsumed (scalar never
            // searched them either).
            gate.inflight = 1;
            LookupJob job;
            job.descriptor = std::move(descriptor);
            job.stage = Stage::kLu1;
            enqueue_lookup(balance(job.descriptor), std::move(job));
            return;
        }
        // Every gathered probe hit; keep going if waiters remain.
    }
}

void FlowLut::flush_touches() {
    if (touch_count_ == 0) return;
    flow_state_.on_packet_multi(touch_batch_.data(), touch_count_);
    touch_count_ = 0;
}

void FlowLut::retire(Completion completion) {
    if (completion.fid != kInvalidFlowId) {
        if (config_.batch > 0) {
            // Defer the flow-state touch into the dispatch batch. Safe while
            // nothing reads or deletes flow records before the next flush —
            // flush_touches() sits at every such point.
            FlowTouch& touch = touch_batch_[touch_count_++];
            touch.fid = completion.fid;
            touch.key = completion.key;
            touch.timestamp_ns = completion.timestamp_ns;
            touch.frame_bytes = completion.frame_bytes;
            touch.snapshot = completion.snapshot_fid;
            if (touch_count_ == kMaxDispatchBatch) flush_touches();
        } else {
            flow_state_.on_packet(completion.fid, completion.key.view(),
                                  completion.timestamp_ns, completion.frame_bytes,
                                  completion.snapshot_fid);
        }
        if (config_.reservation && !completion.is_new_flow &&
            reserved_.find(completion.key) != nullptr) {
            // The ack: a second packet of a provisionally-granted flow
            // confirms the slot.
            reserved_.erase(completion.key);
            ++stats_.reservations_confirmed;
            if (obs_ != nullptr) ++*obs_res_confirmed_;
        }
    }
    ++stats_.completions;
    if (obs_ != nullptr) {
        obs_latency_->add(obs_->sys_ns(completion.retired_at - completion.offered_at));
        ++*obs_completions_;
        if (completion.is_new_flow) ++*obs_new_flows_;
        if (completion.fid == kInvalidFlowId) ++*obs_drops_;
        *obs_table_size_ = table_.size();
        *obs_cam_size_ = table_.cam_entries();
        obs::Recorder::high_water(obs_hwm_table_, table_.size());
        obs::Recorder::high_water(obs_hwm_cam_, table_.cam_entries());
        obs::Recorder::high_water(obs_hwm_waiting_, waiting_now_);
    }
    // The output queue is unbounded on purpose: the hardware FID stream
    // sinks into the Flow State pipeline at line rate, and dropping
    // completions here would silently lose descriptors (output_depth only
    // sizes the modeled FIFO for the resource estimator).
    output_.push_back(std::move(completion));
}

void FlowLut::tick(Cycle now) {
    // Advance the fault injector's campaign clock first: every fault site
    // consulted this cycle sees a consistent window verdict.
    if (faults_ != nullptr) faults_->advance_to(now);
    // Response-side first so freed resources are visible to the issue side
    // within the same cycle (hardware would pipeline; order only affects
    // latency by one cycle, not correctness).
    pump_responses(Path::kA);
    pump_responses(Path::kB);
    run_flow_match(Path::kA, now);
    run_flow_match(Path::kB, now);
    dispatch_inputs(now);
    housekeeping(now);
    pump_updates(Path::kA, now);
    pump_updates(Path::kB, now);
    issue_memory(Path::kA, now);
    issue_memory(Path::kB, now);
}

void FlowLut::step() {
    for (u32 sub = 0; sub < config_.memory_clock_ratio; ++sub) {
        const Cycle memory_cycle = now_ * config_.memory_clock_ratio + sub;
        paths_[0].controller->tick(memory_cycle);
        paths_[1].controller->tick(memory_cycle);
    }
    tick(now_);
    ++now_;
}

void FlowLut::run(u64 cycles) {
    for (u64 i = 0; i < cycles;) {
        step();
        ++i;
        if (const u64 hint = idle_cycles_hint(); hint > 0) {
            const u64 skipped = std::min<u64>(hint, cycles - i);
            skip_idle(skipped);
            i += skipped;
        }
    }
}

u64 FlowLut::idle_cycles_hint() const {
    // Idle means: no descriptor anywhere in the pipeline, housekeeping
    // provably quiescent at the current (frozen) stream time, and both
    // controllers stalled on a known future event. Then every step() until
    // the earliest controller event only advances clocks.
    if (!drained()) return 0;
    if (!flow_state_.expiry_idle(effective_expiry_time())) return 0;
    u64 hint = ~u64{0};
    if (config_.reservation && !reservations_.empty()) {
        // Don't skip past the next reclaim deadline.
        const Cycle deadline = reservations_.front().deadline;
        if (deadline <= now_) return 0;
        hint = deadline - now_;
    }
    for (const PathState& state : paths_) {
        // The next step() ticks memory cycles [now_*ratio, now_*ratio+ratio).
        const Cycle next_mem = now_ * config_.memory_clock_ratio;
        const Cycle stalled = state.controller->stalled_until();
        if (stalled <= next_mem) return 0;
        hint = std::min(hint, (stalled - next_mem) / config_.memory_clock_ratio);
    }
    return hint;
}

bool FlowLut::drained() const {
    const auto path_idle = [](const PathState& state) {
        return state.ready.empty() && state.match_queue.empty() && state.write_queue.empty() &&
               state.outstanding_reads.empty() && state.outstanding_writes.empty() &&
               state.updates.backlog() == 0 && state.filter.parked_now() == 0;
    };
    return input_.empty() && waiting_now_ == 0 && path_idle(paths_[0]) && path_idle(paths_[1]);
}

bool FlowLut::drain(u64 max_cycles) {
    for (u64 i = 0; i < max_cycles; ++i) {
        if (drained()) return true;
        step();
    }
    return drained();
}

u64 FlowLut::audit(bool final_pass, std::string* detail) const {
    u64 violations = 0;
    const auto fail = [&](std::string message) {
        ++violations;
        if (detail != nullptr) {
            detail->append(message);
            detail->push_back('\n');
        }
    };

    // Occupancy conservation: every live entry entered through a counted
    // insert and left through a counted removal.
    if (table_.size() != stats_.table_inserts - stats_.table_removals) {
        fail("occupancy " + std::to_string(table_.size()) + " != inserts " +
             std::to_string(stats_.table_inserts) + " - removals " +
             std::to_string(stats_.table_removals));
    }
    // Reservation ledger: every grant is confirmed, reclaimed, or still open.
    if (config_.reservation &&
        stats_.reservations_granted != stats_.reservations_confirmed +
                                           stats_.reservations_reclaimed +
                                           reserved_.size()) {
        fail("reservation ledger: granted " + std::to_string(stats_.reservations_granted) +
             " != confirmed " + std::to_string(stats_.reservations_confirmed) +
             " + reclaimed " + std::to_string(stats_.reservations_reclaimed) +
             " + open " + std::to_string(reserved_.size()));
    }
    if (!final_pass) return violations;

    // Post-drain checks: every accepted descriptor completed, and nothing
    // is parked or held forever (the PR 2 parked-bucket leak shows up here).
    if (stats_.completions != stats_.offered) {
        fail("completions " + std::to_string(stats_.completions) + " != offered " +
             std::to_string(stats_.offered));
    }
    if (waiting_now_ != 0) {
        fail("flow-gate waiting room not empty: " + std::to_string(waiting_now_));
    }
    for (u32 path = 0; path < 2; ++path) {
        const PathState& state = paths_[path];
        const std::string tag = std::string(" (path ") + (path == 0 ? "A)" : "B)");
        if (state.filter.parked_now() != 0) {
            fail("lookups parked forever: " + std::to_string(state.filter.parked_now()) + tag);
        }
        if (state.filter.pending_update_count() != 0) {
            fail("pending filter updates leaked: " +
                 std::to_string(state.filter.pending_update_count()) + tag);
        }
        if (state.updates.backlog() != 0) {
            fail("update backlog not drained: " + std::to_string(state.updates.backlog()) + tag);
        }
        if (!state.write_queue.empty()) fail("write queue not drained" + tag);
        if (!state.outstanding_reads.empty() || !state.outstanding_writes.empty()) {
            fail("outstanding DDR requests after drain" + tag);
        }
        if (!state.delayed.empty()) fail("undelivered delayed responses" + tag);
    }
    // Ghost-record scan: every live flow record must point at a live table
    // entry whose location-derived FID matches (an evicted-then-recreated
    // record would betray a stale-hit bug).
    for (const FlowRecord& record : flow_state_.snapshot()) {
        const auto location = table_.locate(record.key.view());
        if (!location || make_fid(*location) != record.fid) {
            fail("ghost flow record: fid " + std::to_string(record.fid) +
                 (location ? " points at a different entry" : " has no table entry"));
        }
    }
    return violations;
}

Result<FlowId> FlowLut::preload(const net::NTuple& key) {
    const auto view = key.view();
    if (const SearchResult existing = table_.search(view); existing.hit()) {
        return Status(StatusCode::kAlreadyExists);
    }
    auto placement = table_.choose_placement(view);
    if (!placement) return placement.status();
    TableIndex location = placement.value();

    if (location.where == TableIndex::Where::kCam) {
        const auto slot = table_.collision_cam().next_free_slot();
        location.slot = slot.value_or(0);
        const FlowId fid = make_fid(location);
        const Status status = table_.insert_at(location, view, fid);
        if (!status.is_ok()) return status;
        ++stats_.table_inserts;
        if (config_.eviction == EvictionPolicy::kCamOldest || track_cam_order_) {
            cam_order_.push_back(FlowKey(view));
        }
        return fid;
    }

    const FlowId fid = make_fid(location);
    const Status status = table_.insert_at(location, view, fid);
    if (!status.is_ok()) return status;
    ++stats_.table_inserts;
    const Path owner = location.where == TableIndex::Where::kMem1 ? Path::kA : Path::kB;
    const u64 bucket = location.slot / config_.ways;
    paths_[index_of(owner)].controller->device().write(
        bucket_address(bucket), table_.serialize_bucket(mem_of(owner), bucket));
    return fid;
}

}  // namespace flowcam::core
