#include "core/flow_lut.hpp"

#include <cassert>

namespace flowcam::core {
namespace {

/// Request-id tag bits so read and write completions demultiplex cleanly.
constexpr u64 kWriteTag = u64{1} << 63;

/// Map key for the in-flight tracker.
std::string key_string(const net::NTuple& key) {
    const auto view = key.view();
    return {reinterpret_cast<const char*>(view.data()), view.size()};
}

}  // namespace

FlowLut::PathState::PathState(const FlowLutConfig& config, const std::string& name)
    : ready(config.geometry.banks),
      updates(config.burst_write_threshold, config.burst_write_timeout,
              config.update_queue_depth) {
    dram::ControllerConfig controller_config = config.controller;
    controller_config.interleave_bytes = config.bucket_stride();
    controller = std::make_unique<dram::DramController>(name, config.timings, config.geometry,
                                                        controller_config);
}

FlowLut::FlowLut(const FlowLutConfig& config)
    : config_(config),
      table_(config),
      flow_state_(config.flow_timeout_ns, config.housekeeping_scan_per_cycle),
      paths_{PathState(config, "ddr3-A"), PathState(config, "ddr3-B")},
      rng_(config.hash_seed ^ 0x5e00beefull) {}

bool FlowLut::offer(const net::NTuple& key, u64 timestamp_ns, u32 frame_bytes) {
    const auto view = key.view();
    return offer_raw(key, table_.indexer().index(0, view), table_.indexer().index(1, view),
                     table_.indexer().digest(0, view), timestamp_ns, frame_bytes);
}

bool FlowLut::offer_raw(const net::NTuple& key, u64 index_a, u64 index_b, u64 digest,
                        u64 timestamp_ns, u32 frame_bytes) {
    ++stats_.offered;
    if (input_full()) {
        ++stats_.rejected_input_full;
        --stats_.offered;
        return false;
    }
    Descriptor descriptor;
    descriptor.seq = next_seq_++;
    descriptor.key = key;
    descriptor.index_a = index_a % config_.buckets_per_mem;
    descriptor.index_b = index_b % config_.buckets_per_mem;
    descriptor.digest = digest;
    descriptor.timestamp_ns = timestamp_ns;
    descriptor.frame_bytes = frame_bytes;
    stream_time_ns_ = std::max(stream_time_ns_, timestamp_ns);
    input_.push_back(std::move(descriptor));
    return true;
}

std::optional<Completion> FlowLut::pop_completion() {
    if (output_.empty()) return std::nullopt;
    Completion completion = std::move(output_.front());
    output_.pop_front();
    return completion;
}

Path FlowLut::balance(const Descriptor& descriptor) const {
    switch (config_.balance) {
        case BalancePolicy::kHashBit:
            return (descriptor.digest >> 17 & 1u) ? Path::kB : Path::kA;
        case BalancePolicy::kWeightedHash: {
            // Flow-affine weighting: a digest-derived uniform in [0,1).
            const double unit =
                static_cast<double>(descriptor.digest >> 11) * 0x1.0p-53;
            return unit < config_.weight_a ? Path::kA : Path::kB;
        }
        case BalancePolicy::kAlternate:
            return (alternate_rotor_++ & 1u) ? Path::kB : Path::kA;
        case BalancePolicy::kLeastLoaded:
            return paths_[0].ready.size() <= paths_[1].ready.size() ? Path::kA : Path::kB;
    }
    return Path::kA;
}

u32 FlowLut::bank_of(Path path, u64 address) const {
    return paths_[index_of(path)].controller->address_map().decode(address).bank;
}

void FlowLut::enqueue_lookup(Path path, LookupJob job) {
    PathState& state = paths_[index_of(path)];
    const u64 address = bucket_address(job.bucket_index(path));
    if (state.filter.read_blocked(address)) {
        state.filter.park(address, std::move(job));
        return;
    }
    state.ready.push(bank_of(path, address), std::move(job));
}

void FlowLut::dispatch_inputs(Cycle now) {
    bool path_used[2] = {false, false};
    // Up to two descriptors per cycle — one entering each path — matching
    // the paper's "process two lookup requests simultaneously".
    for (u32 round = 0; round < 2 && !input_.empty(); ++round) {
        Descriptor& descriptor = input_.front();

        // Per-flow interlock: while an older packet of this flow is still
        // in the pipeline, later packets wait in the per-key waiting room
        // (the flow-granularity Req Filter waiting list) and resolve when
        // the elder retires — otherwise a younger packet could retire
        // first (paper §IV-A ordering promise).
        const std::string flow_key = key_string(descriptor.key);
        if (inflight_keys_.contains(flow_key)) {
            waiting_room_[flow_key].push_back(std::move(descriptor));
            ++waiting_now_;
            input_.pop_front();
            ++stats_.dispatched;
            continue;
        }

        // Sequencer stage 1: the collision CAM answers immediately.
        if (const auto cam_hit = table_.search_cam(descriptor.key.view())) {
            Completion completion;
            completion.seq = descriptor.seq;
            completion.fid = cam_hit->payload;
            completion.via_cam = true;
            completion.retired_at = now;
            completion.timestamp_ns = descriptor.timestamp_ns;
            completion.frame_bytes = descriptor.frame_bytes;
            completion.key = descriptor.key;
            ++stats_.cam_hits;
            retire(std::move(completion));
            input_.pop_front();
            ++stats_.dispatched;
            continue;
        }

        const Path path = balance(descriptor);
        const u32 path_index = index_of(path);
        if (path_used[path_index]) break;  // that path's LU1 port is taken.
        PathState& state = paths_[path_index];
        if (state.ready.size() >= config_.lu_queue_depth) break;  // backpressure.

        path_used[path_index] = true;
        ++stats_.path_dispatch[path_index];
        ++stats_.dispatched;
        ++inflight_keys_[flow_key];
        LookupJob job;
        job.descriptor = std::move(descriptor);
        job.stage = Stage::kLu1;
        input_.pop_front();
        enqueue_lookup(path, std::move(job));
    }
}

void FlowLut::pump_responses(Path path) {
    PathState& state = paths_[index_of(path)];
    while (auto response = state.controller->pop_response()) {
        if ((response->id & kWriteTag) != 0) {
            const auto it = state.outstanding_writes.find(response->id);
            assert(it != state.outstanding_writes.end());
            const u64 address = it->second;
            state.outstanding_writes.erase(it);
            for (LookupJob& job : state.filter.update_retired(address)) {
                state.ready.push(bank_of(path, address), std::move(job));
            }
        } else {
            const auto it = state.outstanding_reads.find(response->id);
            assert(it != state.outstanding_reads.end());
            LookupJob job = std::move(it->second);
            state.outstanding_reads.erase(it);
            const u64 address = bucket_address(job.bucket_index(path));
            state.filter.read_retired(address);
            state.match_queue.emplace_back(std::move(job), std::move(response->data));
        }
    }
}

void FlowLut::run_flow_match(Path path, Cycle now) {
    PathState& state = paths_[index_of(path)];
    // The Flow Match comparator handles one bucket per cycle per path
    // (K parallel comparators in hardware).
    if (state.match_queue.empty()) return;
    auto [job, data] = std::move(state.match_queue.front());
    state.match_queue.pop_front();

    const auto way = HashCamTable::match_in_bucket_bytes(data, config_.ways,
                                                         config_.entry_bytes,
                                                         job.descriptor.key.view());
    if (way) {
        const u64 bucket = job.bucket_index(path);
        TableIndex location;
        location.where =
            path == Path::kA ? TableIndex::Where::kMem1 : TableIndex::Where::kMem2;
        location.slot = bucket * config_.ways + *way;
        Completion completion;
        completion.seq = job.descriptor.seq;
        completion.fid = make_fid(location);
        completion.retired_at = now;
        completion.timestamp_ns = job.descriptor.timestamp_ns;
        completion.frame_bytes = job.descriptor.frame_bytes;
        completion.key = job.descriptor.key;
        (job.stage == Stage::kLu1 ? stats_.lu1_hits : stats_.lu2_hits) += 1;
        retire_pipelined(std::move(completion), now);
        return;
    }

    if (job.stage == Stage::kLu1) {
        // Redirect to the other path for the second lookup (Fig. 2 step 2).
        job.stage = Stage::kLu2;
        enqueue_lookup(other(path), std::move(job));
        return;
    }
    handle_lu2_miss(path, job, now);
}

void FlowLut::handle_lu2_miss(Path /*path*/, const LookupJob& job, Cycle now) {
    const auto key = job.descriptor.key.view();

    // A concurrent packet of the same flow may have inserted the key while
    // this lookup was in flight (its DDR write not yet visible to our read).
    // The functional re-check — in hardware, a comparison against the
    // pending-update list in the Updt block — resolves it.
    const SearchResult existing = table_.search(key);
    Completion completion;
    completion.seq = job.descriptor.seq;
    completion.retired_at = now;
    completion.timestamp_ns = job.descriptor.timestamp_ns;
    completion.frame_bytes = job.descriptor.frame_bytes;
    completion.key = job.descriptor.key;
    if (existing.hit()) {
        completion.fid = existing.payload;
        completion.via_cam = existing.stage == MatchStage::kCam;
        ++stats_.resolved_inflight;
        retire_pipelined(std::move(completion), now);
        return;
    }

    // Genuinely new flow: choose a location, create the entry functionally,
    // emit the FID now (the paper's Mem Updt "output[s] the corresponding
    // location index for that entry"), and schedule the DDR write.
    auto placement = table_.choose_placement(key);
    if (!placement) {
        completion.fid = kInvalidFlowId;
        ++stats_.drops;
        retire_pipelined(std::move(completion), now);
        return;
    }
    TableIndex location = placement.value();
    if (location.where == TableIndex::Where::kCam) {
        // The CAM's priority encoder determines the slot, hence the FID,
        // before the entry is written.
        const auto slot = table_.collision_cam().next_free_slot();
        assert(slot.has_value());
        location.slot = *slot;
        const FlowId fid = make_fid(location);
        const Status status = table_.insert_at(location, key, fid);
        assert(status.is_ok());
        (void)status;
        completion.fid = fid;
        completion.via_cam = true;
        completion.is_new_flow = true;
        ++stats_.new_flows;
        retire_pipelined(std::move(completion), now);
        return;
    }

    const FlowId fid = make_fid(location);
    const Status status = table_.insert_at(location, key, fid);
    assert(status.is_ok());
    (void)status;
    completion.fid = fid;
    completion.is_new_flow = true;
    ++stats_.new_flows;

    // Register the pending DDR write with the owning path's Req Filter and
    // queue the update through Req_Arb/BWr_Gen.
    const Path owner =
        location.where == TableIndex::Where::kMem1 ? Path::kA : Path::kB;
    PathState& owner_state = paths_[index_of(owner)];
    const u64 bucket = location.slot / config_.ways;
    owner_state.filter.update_created(bucket_address(bucket));
    UpdateRequest update;
    update.kind = UpdateKind::kInsert;
    update.key = job.descriptor.key;
    update.bucket_index = bucket;
    update.way = static_cast<u32>(location.slot % config_.ways);
    const bool accepted = owner_state.updates.submit(std::move(update), now);
    assert(accepted);  // update_queue_depth sized to make overflow impossible
    (void)accepted;
    retire_pipelined(std::move(completion), now);
}

void FlowLut::pump_updates(Path path, Cycle now) {
    PathState& state = paths_[index_of(path)];
    for (UpdateRequest& request : state.updates.release(now)) {
        state.write_queue.push_back(std::move(request));
    }
}

void FlowLut::issue_memory(Path path, Cycle now) {
    PathState& state = paths_[index_of(path)];
    (void)now;

    // One memory request per user-clock cycle per path (quarter-rate user
    // interface width). Writes first: BWr_Gen released them as a batch so
    // consecutive cycles issue consecutive writes — a long write burst.
    if (!state.write_queue.empty()) {
        UpdateRequest& request = state.write_queue.front();
        const u64 address = bucket_address(request.bucket_index);
        if (request.kind == UpdateKind::kDelete && state.filter.delete_blocked(address)) {
            return;  // wait for in-flight reads of this bucket to drain.
        }
        if (request.kind == UpdateKind::kDelete) {
            // Apply the functional erase at issue time so reads accepted
            // before this instant still matched the old contents.
            TableIndex location;
            location.where =
                path == Path::kA ? TableIndex::Where::kMem1 : TableIndex::Where::kMem2;
            location.slot = request.bucket_index * config_.ways + request.way;
            const FlowId fid = make_fid(location);
            if (table_.erase_at(location, request.key.view()).is_ok()) {
                flow_state_.on_deleted(fid);
                ++stats_.deletes_applied;
            }
            state.filter.update_created(address);
        }
        dram::MemRequest mem_request;
        mem_request.id = kWriteTag | state.next_request_id++;
        mem_request.is_write = true;
        mem_request.byte_address = address;
        mem_request.bursts = config_.bursts_per_bucket();
        mem_request.write_data = table_.serialize_bucket(mem_of(path), request.bucket_index);
        if (state.controller->enqueue(mem_request)) {
            state.outstanding_writes.emplace(mem_request.id, address);
            state.write_queue.pop_front();
        }
        return;
    }

    // Otherwise issue the next bank-selected lookup.
    const LookupJob* next = state.ready.peek_rotating();
    if (next == nullptr) return;
    const u64 address = bucket_address(next->bucket_index(path));
    dram::MemRequest mem_request;
    mem_request.id = state.next_request_id++;
    mem_request.is_write = false;
    mem_request.byte_address = address;
    mem_request.bursts = config_.bursts_per_bucket();
    if (state.controller->enqueue(mem_request)) {
        auto job = state.ready.pop_rotating();
        assert(job.has_value());
        state.filter.read_issued(address);
        state.outstanding_reads.emplace(mem_request.id, std::move(*job));
    }
}

void FlowLut::housekeeping(Cycle now) {
    for (const FlowRecord& record : flow_state_.scan_expired(stream_time_ns_)) {
        const auto key = record.key.view();
        const auto location = table_.locate(key);
        if (!location) continue;  // already gone.
        if (location->where == TableIndex::Where::kCam) {
            // On-chip CAM entries die immediately.
            if (table_.erase_at(*location, key).is_ok()) {
                flow_state_.on_deleted(record.fid);
                ++stats_.deletes_applied;
            }
            continue;
        }
        const Path owner =
            location->where == TableIndex::Where::kMem1 ? Path::kA : Path::kB;
        PathState& state = paths_[index_of(owner)];
        if (state.updates.delete_pending(key)) continue;
        UpdateRequest request;
        request.kind = UpdateKind::kDelete;
        request.key = record.key;
        request.bucket_index = location->slot / config_.ways;
        request.way = static_cast<u32>(location->slot % config_.ways);
        (void)state.updates.submit(std::move(request), now);
    }
}

void FlowLut::retire_pipelined(Completion completion, Cycle now) {
    const net::NTuple key = completion.key;
    retire(std::move(completion));
    release_inflight(key, now);
}

void FlowLut::release_inflight(const net::NTuple& key, Cycle now) {
    const std::string flow_key = key_string(key);
    const auto it = inflight_keys_.find(flow_key);
    if (it == inflight_keys_.end()) return;
    if (--it->second > 0) return;
    inflight_keys_.erase(it);

    // Resolve waiters for this flow, oldest first. A waiter whose key now
    // exists retires immediately (after its elder — we are past the elder's
    // retire). If the flow is still absent (elder dropped or was deleted),
    // the waiter enters the pipeline as the new elder and the rest keep
    // waiting on it.
    const auto room = waiting_room_.find(flow_key);
    if (room == waiting_room_.end()) return;
    while (!room->second.empty()) {
        const SearchResult existing = table_.search(room->second.front().key.view());
        if (existing.hit()) {
            Descriptor descriptor = std::move(room->second.front());
            room->second.pop_front();
            --waiting_now_;
            Completion completion;
            completion.seq = descriptor.seq;
            completion.fid = existing.payload;
            completion.via_cam = existing.stage == MatchStage::kCam;
            completion.retired_at = now;
            completion.timestamp_ns = descriptor.timestamp_ns;
            completion.frame_bytes = descriptor.frame_bytes;
            completion.key = std::move(descriptor.key);
            retire(std::move(completion));
            continue;
        }
        Descriptor descriptor = std::move(room->second.front());
        room->second.pop_front();
        --waiting_now_;
        ++inflight_keys_[flow_key];
        LookupJob job;
        job.descriptor = std::move(descriptor);
        job.stage = Stage::kLu1;
        enqueue_lookup(balance(job.descriptor), std::move(job));
        break;
    }
    if (room->second.empty()) waiting_room_.erase(room);
}

void FlowLut::retire(Completion completion) {
    if (completion.fid != kInvalidFlowId) {
        flow_state_.on_packet(completion.fid, completion.key, completion.timestamp_ns,
                              completion.frame_bytes);
    }
    ++stats_.completions;
    // The output queue is unbounded on purpose: the hardware FID stream
    // sinks into the Flow State pipeline at line rate, and dropping
    // completions here would silently lose descriptors (output_depth only
    // sizes the modeled FIFO for the resource estimator).
    output_.push_back(std::move(completion));
}

void FlowLut::tick(Cycle now) {
    // Response-side first so freed resources are visible to the issue side
    // within the same cycle (hardware would pipeline; order only affects
    // latency by one cycle, not correctness).
    pump_responses(Path::kA);
    pump_responses(Path::kB);
    run_flow_match(Path::kA, now);
    run_flow_match(Path::kB, now);
    dispatch_inputs(now);
    housekeeping(now);
    pump_updates(Path::kA, now);
    pump_updates(Path::kB, now);
    issue_memory(Path::kA, now);
    issue_memory(Path::kB, now);
}

void FlowLut::step() {
    for (u32 sub = 0; sub < config_.memory_clock_ratio; ++sub) {
        const Cycle memory_cycle = now_ * config_.memory_clock_ratio + sub;
        paths_[0].controller->tick(memory_cycle);
        paths_[1].controller->tick(memory_cycle);
    }
    tick(now_);
    ++now_;
}

void FlowLut::run(u64 cycles) {
    for (u64 i = 0; i < cycles; ++i) step();
}

bool FlowLut::drained() const {
    const auto path_idle = [](const PathState& state) {
        return state.ready.empty() && state.match_queue.empty() && state.write_queue.empty() &&
               state.outstanding_reads.empty() && state.outstanding_writes.empty() &&
               state.updates.backlog() == 0 && state.filter.parked_now() == 0;
    };
    return input_.empty() && waiting_now_ == 0 && path_idle(paths_[0]) && path_idle(paths_[1]);
}

bool FlowLut::drain(u64 max_cycles) {
    for (u64 i = 0; i < max_cycles; ++i) {
        if (drained()) return true;
        step();
    }
    return drained();
}

Result<FlowId> FlowLut::preload(const net::NTuple& key) {
    const auto view = key.view();
    if (const SearchResult existing = table_.search(view); existing.hit()) {
        return Status(StatusCode::kAlreadyExists);
    }
    auto placement = table_.choose_placement(view);
    if (!placement) return placement.status();
    TableIndex location = placement.value();

    if (location.where == TableIndex::Where::kCam) {
        const auto slot = table_.collision_cam().next_free_slot();
        location.slot = slot.value_or(0);
        const FlowId fid = make_fid(location);
        const Status status = table_.insert_at(location, view, fid);
        if (!status.is_ok()) return status;
        return fid;
    }

    const FlowId fid = make_fid(location);
    const Status status = table_.insert_at(location, view, fid);
    if (!status.is_ok()) return status;
    const Path owner = location.where == TableIndex::Where::kMem1 ? Path::kA : Path::kB;
    const u64 bucket = location.slot / config_.ways;
    paths_[index_of(owner)].controller->device().write(
        bucket_address(bucket), table_.serialize_bucket(mem_of(owner), bucket));
    return fid;
}

}  // namespace flowcam::core
