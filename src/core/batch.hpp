// Batched-dispatch support: the fixed batch geometry shared by the Flow
// LUT's internal batch paths, and a small helper that amortizes per-packet
// hashing by pushing groups of keys through the multi-key H3 kernel.
//
// Everything here is host-side amortization of work whose *results* are
// already determined per packet — batching never changes a simulated
// decision, a cycle count or a metric (the batched-vs-scalar equivalence
// suite pins that down).
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "common/types.hpp"
#include "hash/index_gen.hpp"

namespace flowcam::core {

/// Upper bound on every internal dispatch batch (flow-state touches, waiter
/// probes, hash groups). Sized for the worst case — a waiting room drained
/// in one retire — while keeping all batch state in fixed arrays so the
/// steady-state dispatch path stays allocation-free.
inline constexpr std::size_t kMaxDispatchBatch = 64;

/// Hashes up to kMaxDispatchBatch keys per prepare() call: both per-path
/// digests through IndexGenerator::digest_multi (the vector kernel for H3)
/// plus the folded bucket indices. One prepare() replaces 2·N scalar digest
/// calls on the admission path.
class BatchHasher {
  public:
    struct Prepared {
        u64 digest_a = 0;
        u64 digest_b = 0;
        u64 index_a = 0;
        u64 index_b = 0;
    };

    /// Fill `out[0..count)` for `keys[0..count)`. `count` is clamped to
    /// kMaxDispatchBatch by contract (callers size their batches to it).
    static void prepare(const hash::IndexGenerator& indexer, const std::span<const u8>* keys,
                        std::size_t count, Prepared* out) {
        std::array<u64, kMaxDispatchBatch> digests_a;
        std::array<u64, kMaxDispatchBatch> digests_b;
        indexer.digest_multi(0, keys, count, digests_a.data());
        indexer.digest_multi(1, keys, count, digests_b.data());
        for (std::size_t i = 0; i < count; ++i) {
            out[i].digest_a = digests_a[i];
            out[i].digest_b = digests_b[i];
            out[i].index_a = indexer.index_of_digest(digests_a[i]);
            out[i].index_b = indexer.index_of_digest(digests_b[i]);
        }
    }
};

}  // namespace flowcam::core
