// The timed Flow LUT engine — the paper's Fig. 2 assembled:
//
//              +-----------+        +-----------+
//   input ---> | SEQUENCER | -----> |  DLU A/B  | <---> DDR3 ctrl A/B
//              | (+ CAM)   |  LU1   | BankSel   |
//              +-----------+        | ReqFilter |
//                    ^              | MemCtrl   |
//                    |              +-----+-----+
//                    |                    | read data
//                    |              +-----v-----+   miss(LU1): redirect to
//              FID_GEN <---match--- | FlowMatch |-> other path as LU2
//                    |              +-----+-----+   miss(LU2): Ins_req
//                    v                    |
//               completions         +-----v-----+
//                                   |   Updt    |  (Req_Arb + BWr_Gen)
//               FlowState --Del_req>| burst wr  | --> DLU write path
//              (housekeeping)       +-----------+
//
// Timing model: FlowLut ticks at the system clock (200 MHz default); each
// DDR3 controller ticks `memory_clock_ratio` (4) times per system cycle,
// modeling the quarter-rate UniPhy front-end. All lookup data is read back
// from the simulated DDR3 device bytes and compared by Flow Match — the
// functional HashCamTable is authoritative for placement decisions, and a
// property test asserts timed answers always match functional answers
// (which is precisely the Request Filter's job to guarantee).
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <optional>

#include "bloom/bloom.hpp"
#include "common/flat_map.hpp"
#include "common/ring_queue.hpp"
#include "common/rng.hpp"
#include "core/bank_selector.hpp"
#include "core/batch.hpp"
#include "core/blocks.hpp"
#include "core/config.hpp"
#include "core/flow_state.hpp"
#include "core/hash_cam_table.hpp"
#include "core/req_filter.hpp"
#include "core/update_block.hpp"
#include "dram/controller.hpp"
#include "faults/faults.hpp"
#include "obs/obs.hpp"
#include "sim/fifo.hpp"
#include "sim/stats.hpp"
#include "sim/ticker.hpp"

namespace flowcam::core {

struct FlowLutStats {
    u64 offered = 0;
    u64 rejected_input_full = 0;
    u64 dispatched = 0;
    u64 completions = 0;
    u64 cam_hits = 0;       ///< answered at the sequencer's CAM stage.
    u64 lu1_hits = 0;       ///< answered by the first memory lookup.
    u64 lu2_hits = 0;       ///< answered by the redirected second lookup.
    u64 resolved_inflight = 0;  ///< LU2 miss resolved by re-search (race with
                                ///< a concurrent insert of the same key).
    u64 new_flows = 0;
    u64 drops = 0;          ///< table completely full (and no eviction helped).
    u64 deletes_applied = 0;
    u64 path_dispatch[2] = {0, 0};  ///< LU1 sent to path A / B.

    // Overload-resilience layer (all zero under the default config).
    u64 admission_rejects = 0;    ///< new flows refused by admission policy.
    u64 evictions_lru = 0;        ///< idle entries evicted to make room.
    u64 evictions_cam = 0;        ///< oldest CAM entries evicted to make room.
    u64 evictions_clock = 0;      ///< second-chance sweep evictions.
    u64 reservations_granted = 0;
    u64 reservations_confirmed = 0;
    u64 reservations_reclaimed = 0;
    u64 spurious_responses = 0;   ///< unknown-id DDR responses ignored
                                  ///< (duplicate-completion fault).
    /// Occupancy conservation ledger for the invariant auditor:
    /// table size must always equal inserts - removals.
    u64 table_inserts = 0;
    u64 table_removals = 0;

    [[nodiscard]] double load_fraction_a() const {
        const u64 total = path_dispatch[0] + path_dispatch[1];
        return total == 0 ? 0.0
                          : static_cast<double>(path_dispatch[0]) / static_cast<double>(total);
    }
};

class FlowLut final : public sim::Ticker {
  public:
    explicit FlowLut(const FlowLutConfig& config);

    // ---- Input side ------------------------------------------------------
    /// Offer one packet descriptor; false when the input FIFO is full
    /// (line-side backpressure). Hash indices are computed here, as the
    /// hardware hashes at packet arrival. The FlowKey overload is the hot
    /// path: callers that hold a pre-hashed key (the analyzer's packet
    /// buffer, the scenario runner) avoid re-hashing on every retry.
    [[nodiscard]] bool offer(const FlowKey& key, u64 timestamp_ns = 0, u32 frame_bytes = 64);
    [[nodiscard]] bool offer(const net::NTuple& key, u64 timestamp_ns = 0, u32 frame_bytes = 64) {
        return offer(FlowKey(key), timestamp_ns, frame_bytes);
    }

    /// Offer a raw descriptor with explicit bucket indices — the Table II(A)
    /// "hash pattern" stimulus where the DUT is driven by synthetic hash
    /// sequences instead of real tuples.
    [[nodiscard]] bool offer_raw(const FlowKey& key, u64 index_a, u64 index_b, u64 digest,
                                 u64 timestamp_ns = 0, u32 frame_bytes = 64) {
        return offer_prepared(key, index_a, index_b, digest, timestamp_ns, frame_bytes,
                              /*hashed_indices=*/false);
    }
    [[nodiscard]] bool offer_raw(const net::NTuple& key, u64 index_a, u64 index_b, u64 digest,
                                 u64 timestamp_ns = 0, u32 frame_bytes = 64) {
        return offer_raw(FlowKey(key), index_a, index_b, digest, timestamp_ns, frame_bytes);
    }

    /// Offer with indices the caller computed from this LUT's own indexer
    /// (digest = path-0 digest) — behaviorally identical to offer(), but
    /// lets a buffering front-end hash once at admission and retry under
    /// backpressure for free. `tag` is an opaque caller value copied onto
    /// the eventual Completion (drop classification).
    [[nodiscard]] bool offer_prepared(const FlowKey& key, u64 index_a, u64 index_b, u64 digest,
                                      u64 timestamp_ns, u32 frame_bytes, u64 tag = 0) {
        return offer_prepared(key, index_a, index_b, digest, timestamp_ns, frame_bytes,
                              /*hashed_indices=*/true, tag);
    }

    [[nodiscard]] bool input_full() const { return input_.size() >= config_.input_depth; }

    // ---- Output side -----------------------------------------------------
    [[nodiscard]] std::optional<Completion> pop_completion();
    [[nodiscard]] bool completions_pending() const { return !output_.empty(); }

    // ---- Clocking --------------------------------------------------------
    /// Advance one system-clock cycle (controllers tick 4x inside).
    void step();
    void run(u64 cycles);
    /// Run until all offered descriptors have retired (or budget exhausted);
    /// returns true when fully drained.
    bool drain(u64 max_cycles = 10'000'000);

    void tick(Cycle now) override;  // sim::Ticker (system clock domain)
    [[nodiscard]] std::string name() const override { return "flow-lut"; }

    /// Batched fast-forward (sim::Ticker contract): when the whole pipeline
    /// is drained, housekeeping proved quiescent and both DDR controllers
    /// are event-stalled, step()/tick() is a no-op for this many upcoming
    /// system cycles. skip_idle() advances the clock past them in one call.
    [[nodiscard]] u64 idle_cycles_hint() const override;
    void skip_idle(u64 cycles) { now_ += cycles; }
    void skip(u64 cycles) override { skip_idle(cycles); }

    /// Sharded-execution epoch barrier: raise the expiry stream clock to the
    /// global floor (the laggard slice's stream position) so time-based
    /// housekeeping observes a consistent global clock across lanes. Never
    /// lowers the clock; monolithic runs never call this.
    void advance_stream_floor(u64 ns) {
        if (ns > stream_time_ns_) stream_time_ns_ = ns;
    }

    [[nodiscard]] Cycle now() const { return now_; }
    [[nodiscard]] bool drained() const;

    // ---- Maintenance / instrumentation ------------------------------------
    /// Instant insert bypassing timing (test/bench preload): functional
    /// entry + DDR device bytes are both written. Returns the FID.
    Result<FlowId> preload(const net::NTuple& key);

    [[nodiscard]] HashCamTable& table() { return table_; }
    [[nodiscard]] const HashCamTable& table() const { return table_; }
    [[nodiscard]] FlowStateBlock& flow_state() { return flow_state_; }
    [[nodiscard]] const FlowStateBlock& flow_state() const { return flow_state_; }
    [[nodiscard]] dram::DramController& controller(Path path) {
        return *paths_[index_of(path)].controller;
    }
    [[nodiscard]] const FlowLutStats& stats() const { return stats_; }
    [[nodiscard]] const UpdateBlock& update_block(Path path) const {
        return paths_[index_of(path)].updates;
    }
    [[nodiscard]] const FlowLutConfig& config() const { return config_; }

    /// Attach the flight recorder: descriptor end-to-end latency histogram,
    /// completion/drop/new-flow/CAM-hit counters (the sampler's time series),
    /// and input/waiting/table/CAM occupancy high-water marks; forwarded to
    /// both DDR controllers. Passive — never changes a decision. nullptr
    /// detaches (event sites return to one predictable dead branch).
    void set_recorder(obs::Recorder* recorder);
    /// The attached recorder's descriptor-latency histogram, in sim-ns
    /// (nullptr when detached) — the source of the lat_p* metrics.
    [[nodiscard]] const obs::Histogram* latency_histogram() const { return obs_latency_; }

    /// Attach the fault injector: DDR enqueue vetoes, delayed/duplicated
    /// completions and expiry clock skew all key off it. nullptr detaches
    /// (every fault site returns to one predictable dead branch).
    void set_faults(faults::FaultInjector* faults);

    // ---- Runtime overload-policy switching (the governor's lever) ---------
    /// Pre-arm runtime policy switching: builds the admission Bloom
    /// front-end if absent and, when `eviction` is cam-oldest, starts
    /// tracking CAM insert order from now on — every allocation happens
    /// here, before the run, never inside a mid-run switch.
    void prepare_policy_switching(EvictionPolicy eviction);
    /// Swap the active admission/eviction policies and reservation-reclaim
    /// deadline; takes effect at the next dispatch/housekeeping. Open
    /// reservation grants keep their original deadlines (the ledger the
    /// auditor checks is unaffected), new grants and extensions use the new
    /// one.
    void apply_overload_policies(AdmissionPolicy admission, EvictionPolicy eviction,
                                 Cycle reservation_deadline);
    /// True when the table load is at/above the admission-pressure knee.
    /// Whole-table and collision-CAM occupancy are judged jointly: a
    /// saturated CAM engages the policies even while the buckets have room
    /// (the CAM is tiny, so a hash-skewed flood fills it long before the
    /// overall fraction moves — exactly when shedding should start).
    [[nodiscard]] bool under_pressure() const {
        const double knee = config_.admission_pressure;
        if (static_cast<double>(table_.size()) >=
            knee * static_cast<double>(config_.table_capacity())) {
            return true;
        }
        return config_.cam_capacity != 0 &&
               static_cast<double>(table_.cam_entries()) >=
                   knee * static_cast<double>(config_.cam_capacity);
    }

    /// Invariant auditor (the robustness cross-check, in the spirit of
    /// SchedulerMode::kCrossCheck): verifies conservation laws and returns
    /// the number of violations (0 = healthy), appending one line per
    /// violation to `detail` when given. Cheap O(1) checks always run;
    /// `final_pass` adds the post-drain checks (completions == offered, no
    /// parked-forever buckets, no leaked pending updates, no ghost flow
    /// records) — call it after drain() only.
    [[nodiscard]] u64 audit(bool final_pass, std::string* detail = nullptr) const;

    /// Throughput in Mdesc/s over the cycles elapsed so far (paper Table II
    /// metric) at the configured system clock.
    [[nodiscard]] double mdesc_per_second() const {
        return sim::mega_per_second(stats_.completions, now_, config_.system_clock_hz);
    }

  private:
    struct PathState {
        std::unique_ptr<dram::DramController> controller;
        BankSelector<LookupJob> ready;  ///< bank-ordered lookups (Bank Sel).
        ReqFilter<LookupJob> filter;    ///< Req Filter.
        common::RingQueue<std::pair<LookupJob, std::vector<u8>>> match_queue;
        UpdateBlock updates;            ///< Req_Arb + BWr_Gen.
        common::RingQueue<UpdateRequest> write_queue;  ///< released, awaiting issue.
        common::FlatU64Map<LookupJob> outstanding_reads;
        common::FlatU64Map<u64> outstanding_writes;  ///< id -> address.
        u64 next_request_id = 1;
        /// Responses held back by the delayed-completion fault (empty and
        /// untouched when no injector is attached).
        struct DelayedResponse {
            dram::MemResponse response;
            Cycle release_at = 0;  ///< system cycle.
        };
        std::deque<DelayedResponse> delayed;

        PathState(const FlowLutConfig& config, const std::string& name);
    };

    [[nodiscard]] bool offer_prepared(const FlowKey& key, u64 index_a, u64 index_b, u64 digest,
                                      u64 timestamp_ns, u32 frame_bytes, bool hashed_indices,
                                      u64 tag = 0);

    // Pipeline phases, one call each per system cycle.
    void pump_responses(Path path);
    /// Demux one DDR response (write retire / read -> Flow Match). Unknown
    /// ids are counted and ignored (the duplicate-completion fault must not
    /// crash the pipeline).
    void deliver_response(Path path, dram::MemResponse&& response);
    void run_flow_match(Path path, Cycle now);
    void dispatch_inputs(Cycle now);
    void pump_updates(Path path, Cycle now);
    void issue_memory(Path path, Cycle now);
    void housekeeping(Cycle now);

    void enqueue_lookup(Path path, LookupJob job);
    void handle_lu2_miss(Path path, const LookupJob& job, Cycle now);
    void retire(Completion completion);
    /// Retire a pipelined descriptor's completion, then release its key and
    /// resolve any same-flow packets parked in the waiting room.
    void retire_pipelined(Completion completion, Cycle now);
    /// A pipelined descriptor for `key` left the pipeline; resolve waiters.
    void release_inflight(const FlowKey& key, Cycle now);
    [[nodiscard]] Path balance(const Descriptor& descriptor) const;
    [[nodiscard]] u32 bank_of(Path path, u64 address) const;
    [[nodiscard]] u64 bucket_address(u64 bucket_index) const {
        return config_.bucket_address(bucket_index);
    }
    [[nodiscard]] u32 mem_of(Path path) const { return index_of(path); }
    /// Submit one update request; applies functional delete at issue time.
    void submit_update(Path path, UpdateRequest request, Cycle now);

    // ---- Overload-resilience internals -----------------------------------
    /// Expiry clock as housekeeping sees it (stream time + injected skew).
    [[nodiscard]] u64 effective_expiry_time() const {
        return faults_ == nullptr ? stream_time_ns_
                                  : stream_time_ns_ + faults_->expiry_skew_ns();
    }
    /// Admission policy verdict for a genuinely-new flow (true = admit).
    [[nodiscard]] bool admit_new_flow(const Descriptor& descriptor);
    /// Try to free a slot for `descriptor` per the eviction policy; returns
    /// the freed location (exact slot) or nullopt when nothing evictable.
    [[nodiscard]] std::optional<TableIndex> try_evict_for(const Descriptor& descriptor);
    /// Record a provisional (reservation) grant for a just-inserted flow.
    void grant_reservation(const FlowKey& key, Cycle now);
    /// Reclaim unconfirmed reservations whose deadline passed.
    void reclaim_reservations(Cycle now);
    /// Close one grant's ledger entry as reclaimed.
    void finish_reclaim(const FlowKey& key);

    FlowLutConfig config_;
    HashCamTable table_;
    FlowStateBlock flow_state_;
    PathState paths_[2];
    common::RingQueue<Descriptor> input_;
    common::RingQueue<Completion> output_;
    /// Per-flow interlock gate: keys currently inside the lookup pipeline
    /// (dispatched, not retired) plus their waiting room. A later packet of
    /// a flow with an in-flight elder must not enter the pipeline at all:
    /// depending on timing it could resolve faster than the elder (e.g. its
    /// bucket read lands after the elder's insert write while the elder is
    /// still on its second-lookup detour) and retire out of order. Such
    /// packets wait per key — the flow-granularity instance of the paper's
    /// Req Filter "waiting list" — and resolve when their elder retires.
    ///
    /// Waiters live in `wait_pool_`, an index-linked free-list pool, so the
    /// steady-state dispatch path allocates nothing: the gate table and the
    /// pool both reuse their high-water storage.
    static constexpr u32 kNilNode = 0xffffffffu;
    struct FlowGate {
        u32 inflight = 0;           ///< elder packets in the pipeline (0 or 1 in practice).
        u32 waiter_head = kNilNode; ///< oldest parked descriptor.
        u32 waiter_tail = kNilNode;
    };
    struct WaitNode {
        Descriptor descriptor;
        u32 next = kNilNode;
    };
    [[nodiscard]] u32 alloc_wait_node();
    void free_wait_node(u32 node);
    void park_waiter(FlowGate& gate, Descriptor&& descriptor);

    // ---- Batched dispatch internals (active when config_.batch > 0) ------
    /// Resolve a retired elder's waiters through batched speculative table
    /// probes (search_indexed_multi) instead of one search per waiter.
    void release_waiters_batched(FlowGate& gate, Cycle now);
    /// Apply every deferred flow-state touch. Called at batch-full, at the
    /// top of housekeeping (before anything reads or deletes flow records),
    /// and on entry to try_evict_for (LRU reads last_ns) — so the batch is
    /// provably empty at the end of every tick (all retire sources precede
    /// housekeeping in tick()).
    void flush_touches();

    FlowKeyMap<FlowGate> flow_gate_;
    std::vector<WaitNode> wait_pool_;
    u32 wait_free_ = kNilNode;
    std::size_t waiting_now_ = 0;
    /// Deferred flow-state touches (batched dispatch only): retire() appends
    /// here instead of calling on_packet per completion. Fixed storage —
    /// the steady-state path never allocates.
    std::array<FlowTouch, kMaxDispatchBatch> touch_batch_;
    std::size_t touch_count_ = 0;
    /// Flight recorder (nullable): histogram/counter cells registered once
    /// at attach, bumped behind a single `obs_ != nullptr` branch.
    obs::Recorder* obs_ = nullptr;
    obs::Histogram* obs_latency_ = nullptr;
    u64* obs_completions_ = nullptr;
    u64* obs_new_flows_ = nullptr;
    u64* obs_drops_ = nullptr;
    u64* obs_cam_hits_ = nullptr;
    u64* obs_table_size_ = nullptr;  ///< gauge: live table entries.
    u64* obs_cam_size_ = nullptr;    ///< gauge: live collision-CAM entries.
    u64* obs_hwm_input_ = nullptr;
    u64* obs_hwm_waiting_ = nullptr;
    u64* obs_hwm_table_ = nullptr;
    u64* obs_hwm_cam_ = nullptr;
    u64* obs_admission_rejects_ = nullptr;
    u64* obs_evictions_lru_ = nullptr;
    u64* obs_evictions_cam_ = nullptr;
    u64* obs_evictions_clock_ = nullptr;
    u64* obs_res_granted_ = nullptr;
    u64* obs_res_confirmed_ = nullptr;
    u64* obs_res_reclaimed_ = nullptr;
    u64 obs_scrap_cell_ = 0;
    obs::Histogram obs_scrap_hist_;  ///< fallback on registration collision.

    // ---- Overload-resilience state (all empty under the default config) --
    /// Fault injector (nullable; owned by the workload runner).
    faults::FaultInjector* faults_ = nullptr;
    /// Bloom front-end for probabilistic admission (constructed only when
    /// the policy is selected — the default path pays nothing).
    std::unique_ptr<bloom::BloomFilter> admission_bloom_;
    /// Keys holding a provisional (unconfirmed) slot -> current deadline.
    FlowKeyMap<Cycle> reserved_;
    /// Grant deadlines, FIFO by grant time (confirmed entries are skipped
    /// lazily — reserved_ is authoritative).
    struct Reservation {
        FlowKey key;
        Cycle deadline = 0;
    };
    std::deque<Reservation> reservations_;
    /// CAM insertion order for EvictionPolicy::kCamOldest (stale entries —
    /// already erased or moved — are skipped lazily).
    std::deque<FlowKey> cam_order_;
    /// Keep cam_order_ maintained even while eviction != kCamOldest, so the
    /// governor can switch to cam-oldest mid-run without a stale (or empty)
    /// order book. Set by prepare_policy_switching; never cleared.
    bool track_cam_order_ = false;
    /// Clock hand for EvictionPolicy::kClock: a position in the combined
    /// [mem0 ways | mem1 ways] candidate window of whichever descriptor is
    /// evicting. Persisting the hand across evictions is what makes the
    /// sweep a rotation rather than a fixed-priority scan.
    u32 clock_hand_ = 0;
    FlowLutStats stats_;
    Cycle now_ = 0;
    u64 next_seq_ = 0;
    u64 stream_time_ns_ = 0;
    mutable Xoshiro256 rng_;  ///< reserved for randomized policies.
    mutable u32 alternate_rotor_ = 0;
};

}  // namespace flowcam::core
