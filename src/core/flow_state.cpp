#include "core/flow_state.hpp"

#include <algorithm>

namespace flowcam::core {

u64 FlowStateBlock::apply_touch(FlowId fid, std::span<const u8> key, u64 timestamp_ns,
                                u32 frame_bytes, bool snapshot) {
    const auto same_key = [&](const FlowRecord& record) {
        const auto held = record.key.view();
        return held.size() == key.size() &&
               std::equal(held.begin(), held.end(), key.begin());
    };
    FlowRecord* record = nullptr;
    if (snapshot) {
        // The FID was decoded from DDR bucket bytes that can trail a
        // functional erase of the same bucket (a delete or expiry racing the
        // match queue). The packet still completes — the hardware matched
        // what it read — but a dropped touch is the only sound outcome when
        // the record is gone or the slot was reused: resurrecting it would
        // double-export the flow and leave a ghost record behind.
        const auto it = records_.find(fid);
        if (it == records_.end() || !same_key(it->second)) return ~u64{0};
        record = &it->second;
    } else {
        auto [it, inserted] = records_.try_emplace(fid);
        record = &it->second;
        if (inserted) {
            record->fid = fid;
            record->key = net::NTuple(key);
            record->first_ns = timestamp_ns;
            scan_ring_.push_back(fid);
        } else if (!same_key(*record)) {
            // The location-derived FID was reused by a different flow after a
            // delete: export the stale record and restart it for the new key.
            if (export_) export_(*record);
            *record = FlowRecord{};
            record->fid = fid;
            record->key = net::NTuple(key);
            record->first_ns = timestamp_ns;
        }
    }
    ++record->packets;
    record->bytes += frame_bytes;
    record->last_ns = std::max(record->last_ns, timestamp_ns);
    record->referenced = true;
    return record->last_ns + timeout_ns_;
}

void FlowStateBlock::on_packet(FlowId fid, std::span<const u8> key, u64 timestamp_ns,
                               u32 frame_bytes, bool snapshot) {
    // Keep the expiry fast-forward bound conservative even for records
    // stamped with out-of-order (older) timestamps: nothing may expire
    // before this record can.
    scan_skip_below_ns_ = std::min(scan_skip_below_ns_,
                                   apply_touch(fid, key, timestamp_ns, frame_bytes, snapshot));
}

void FlowStateBlock::on_packet_multi(const FlowTouch* touches, std::size_t count) {
    u64 bound = scan_skip_below_ns_;
    for (std::size_t i = 0; i < count; ++i) {
        const FlowTouch& touch = touches[i];
        bound = std::min(bound, apply_touch(touch.fid, touch.key.view(), touch.timestamp_ns,
                                            touch.frame_bytes, touch.snapshot));
    }
    scan_skip_below_ns_ = bound;
}

void FlowStateBlock::on_deleted(FlowId fid) {
    const auto it = records_.find(fid);
    if (it == records_.end()) return;
    if (export_) export_(it->second);
    records_.erase(it);
    // scan_ring_ keeps the stale fid; scan_expired() skips missing records.
}

std::vector<FlowRecord> FlowStateBlock::scan_expired(u64 now_ns) {
    std::vector<FlowRecord> expired;
    if (scan_ring_.empty() || now_ns < scan_skip_below_ns_) return expired;
    // At most one full pass over the ring per call: an expired record is
    // reported once per call, and again on later calls until it is deleted
    // (the Update block's Req_Arb de-duplicates the resulting Del_reqs).
    const u32 budget =
        static_cast<u32>(std::min<std::size_t>(scan_per_cycle_, scan_ring_.size()));
    for (u32 i = 0; i < budget; ++i) {
        if (scan_cursor_ >= scan_ring_.size()) {
            scan_cursor_ = 0;
            // A full clean pass proves nothing can expire before the oldest
            // observed activity plus the timeout — skip until then.
            if (pass_clean_ && pass_min_last_ns_ != ~u64{0}) {
                scan_skip_below_ns_ = pass_min_last_ns_ + timeout_ns_;
            }
            pass_clean_ = true;
            pass_min_last_ns_ = ~u64{0};
            // Compact the ring occasionally: drop fids without records.
            if (scan_ring_.size() > records_.size() * 2) {
                std::erase_if(scan_ring_, [&](FlowId fid) { return !records_.contains(fid); });
            }
            if (scan_ring_.empty()) break;
        }
        const FlowId fid = scan_ring_[scan_cursor_++];
        const auto it = records_.find(fid);
        if (it == records_.end()) continue;
        pass_min_last_ns_ = std::min(pass_min_last_ns_, it->second.last_ns);
        if (now_ns >= it->second.last_ns && now_ns - it->second.last_ns >= timeout_ns_) {
            expired.push_back(it->second);
            ++expired_total_;
            pass_clean_ = false;
        }
    }
    return expired;
}

const FlowRecord* FlowStateBlock::find(FlowId fid) const {
    const auto it = records_.find(fid);
    return it == records_.end() ? nullptr : &it->second;
}

bool FlowStateBlock::consume_referenced(FlowId fid) {
    const auto it = records_.find(fid);
    if (it == records_.end()) return false;
    const bool was = it->second.referenced;
    it->second.referenced = false;
    return was;
}

std::vector<FlowRecord> FlowStateBlock::snapshot() const {
    std::vector<FlowRecord> out;
    out.reserve(records_.size());
    for (const auto& [fid, record] : records_) out.push_back(record);
    return out;
}

}  // namespace flowcam::core
