#include "core/flow_state.hpp"

#include <algorithm>

namespace flowcam::core {

void FlowStateBlock::on_packet(FlowId fid, const net::NTuple& key, u64 timestamp_ns,
                               u32 frame_bytes) {
    auto [it, inserted] = records_.try_emplace(fid);
    FlowRecord& record = it->second;
    if (inserted) {
        record.fid = fid;
        record.key = key;
        record.first_ns = timestamp_ns;
        scan_ring_.push_back(fid);
    } else if (!(record.key == key)) {
        // The location-derived FID was reused by a different flow after a
        // delete: export the stale record and restart it for the new key.
        if (export_) export_(record);
        record = FlowRecord{};
        record.fid = fid;
        record.key = key;
        record.first_ns = timestamp_ns;
    }
    ++record.packets;
    record.bytes += frame_bytes;
    record.last_ns = std::max(record.last_ns, timestamp_ns);
}

void FlowStateBlock::on_deleted(FlowId fid) {
    const auto it = records_.find(fid);
    if (it == records_.end()) return;
    if (export_) export_(it->second);
    records_.erase(it);
    // scan_ring_ keeps the stale fid; scan_expired() skips missing records.
}

std::vector<FlowRecord> FlowStateBlock::scan_expired(u64 now_ns) {
    std::vector<FlowRecord> expired;
    if (scan_ring_.empty()) return expired;
    // At most one full pass over the ring per call: an expired record is
    // reported once per call, and again on later calls until it is deleted
    // (the Update block's Req_Arb de-duplicates the resulting Del_reqs).
    const u32 budget =
        static_cast<u32>(std::min<std::size_t>(scan_per_cycle_, scan_ring_.size()));
    for (u32 i = 0; i < budget; ++i) {
        if (scan_cursor_ >= scan_ring_.size()) {
            scan_cursor_ = 0;
            // Compact the ring occasionally: drop fids without records.
            if (scan_ring_.size() > records_.size() * 2) {
                std::erase_if(scan_ring_, [&](FlowId fid) { return !records_.contains(fid); });
            }
            if (scan_ring_.empty()) break;
        }
        const FlowId fid = scan_ring_[scan_cursor_++];
        const auto it = records_.find(fid);
        if (it == records_.end()) continue;
        if (now_ns >= it->second.last_ns && now_ns - it->second.last_ns >= timeout_ns_) {
            expired.push_back(it->second);
            ++expired_total_;
        }
    }
    return expired;
}

const FlowRecord* FlowStateBlock::find(FlowId fid) const {
    const auto it = records_.find(fid);
    return it == records_.end() ? nullptr : &it->second;
}

std::vector<FlowRecord> FlowStateBlock::snapshot() const {
    std::vector<FlowRecord> out;
    out.reserve(records_.size());
    for (const auto& [fid, record] : records_) out.push_back(record);
    return out;
}

}  // namespace flowcam::core
