#include "core/hash_cam_table.hpp"

#include <cassert>

#include "core/blocks.hpp"

namespace flowcam::core {

HashCamTable::HashCamTable(const FlowLutConfig& config)
    : config_(config),
      indexer_(config.hash_kind, config.hash_seed, config.buckets_per_mem, /*paths=*/2),
      cam_(config.cam_capacity) {
    // The entry wire format must at least hold an IPv4 5-tuple key.
    assert(config.entry_bytes >= kEntryHeaderBytes + net::FiveTuple::kKeyBytes);
    for (auto& mem : mems_) {
        mem.assign(static_cast<std::size_t>(config.buckets_per_mem) * config.ways,
                   table::Entry{});
    }
}

SearchResult HashCamTable::search(std::span<const u8> key) {
    return search_indexed(key, indexer_.index(0, key), indexer_.index(1, key));
}

SearchResult HashCamTable::search_indexed(std::span<const u8> key, u64 index_a, u64 index_b) {
    const SearchResult result = search_core(key, index_a, index_b);
    record_search(result);
    return result;
}

SearchResult HashCamTable::search_core(std::span<const u8> key, u64 index_a,
                                       u64 index_b) const {
    // Stage 1: CAM. An empty CAM cannot hit, so skip the software index
    // probe entirely (the hardware match lines are free either way).
    if (cam_.size() != 0) {
        if (const auto slot = cam_.slot_of(key)) {
            SearchResult result;
            result.stage = MatchStage::kCam;
            result.location = TableIndex{TableIndex::Where::kCam, *slot};
            result.payload = *cam_.peek(key);
            return result;
        }
    }
    // Stages 2 and 3: the two memory sets, short-circuit.
    const u64 indices[2] = {index_a, index_b};
    for (u32 mem = 0; mem < 2; ++mem) {
        SearchResult result = search_mem_at(mem, indices[mem], key);
        if (result.hit()) return result;
    }
    return SearchResult{};
}

void HashCamTable::record_search(const SearchResult& result) {
    // Mirrors exactly what the inline counting in a monolithic
    // search_indexed would do: every search costs one lookup and one CAM
    // search; each memory stage reached costs one bucket read.
    ++stats_.lookups;
    ++stats_.cam_searches;
    switch (result.stage) {
        case MatchStage::kCam:
            ++stage_stats_.cam_hits;
            ++stats_.hits;
            break;
        case MatchStage::kMem1:
            ++stats_.bucket_reads;
            ++stage_stats_.mem1_hits;
            ++stats_.hits;
            break;
        case MatchStage::kMem2:
            stats_.bucket_reads += 2;
            ++stage_stats_.mem2_hits;
            ++stats_.hits;
            break;
        case MatchStage::kMiss:
            stats_.bucket_reads += 2;
            ++stage_stats_.misses;
            break;
    }
}

void HashCamTable::search_indexed_multi(const SearchProbe* probes, std::size_t count,
                                        SearchResult* out) const {
    for (std::size_t i = 0; i < count; ++i) {
        if (i + 1 < count) prefetch_buckets(probes[i + 1].index_a, probes[i + 1].index_b);
        out[i] = search_core(probes[i].key, probes[i].index_a, probes[i].index_b);
    }
}

void HashCamTable::prefetch_buckets(u64 index_a, u64 index_b) const {
#if defined(__GNUC__) || defined(__clang__)
    // First and last way of each candidate bucket: a bucket spans a couple
    // of cache lines, so this touches both ends of the range.
    const u32 last = config_.ways - 1;
    __builtin_prefetch(&mems_[0][slot_of(index_a, 0)], 0, 1);
    __builtin_prefetch(&mems_[0][slot_of(index_a, last)], 0, 1);
    __builtin_prefetch(&mems_[1][slot_of(index_b, 0)], 0, 1);
    __builtin_prefetch(&mems_[1][slot_of(index_b, last)], 0, 1);
#else
    (void)index_a;
    (void)index_b;
#endif
}

SearchResult HashCamTable::search_mem(u32 mem, std::span<const u8> key) const {
    return search_mem_at(mem, indexer_.index(mem, key), key);
}

SearchResult HashCamTable::search_mem_at(u32 mem, u64 bucket_index,
                                         std::span<const u8> key) const {
    for (u32 way = 0; way < config_.ways; ++way) {
        const u64 slot = slot_of(bucket_index, way);
        const table::Entry& entry = entry_at(mem, slot);
        if (entry.matches(key)) {
            SearchResult result;
            result.stage = mem == 0 ? MatchStage::kMem1 : MatchStage::kMem2;
            result.location =
                TableIndex{mem == 0 ? TableIndex::Where::kMem1 : TableIndex::Where::kMem2, slot};
            result.payload = entry.payload;
            return result;
        }
    }
    return SearchResult{};
}

std::optional<SearchResult> HashCamTable::search_cam(std::span<const u8> key) {
    ++stats_.cam_searches;
    if (cam_.size() == 0) return std::nullopt;
    const auto slot = cam_.slot_of(key);
    if (!slot) return std::nullopt;
    SearchResult result;
    result.stage = MatchStage::kCam;
    result.location = TableIndex{TableIndex::Where::kCam, *slot};
    result.payload = *cam_.peek(key);
    return result;
}

std::optional<u64> HashCamTable::lookup(std::span<const u8> key) {
    const SearchResult result = search(key);
    if (!result.hit()) return std::nullopt;
    return result.payload;
}

Result<TableIndex> HashCamTable::choose_placement(std::span<const u8> key) const {
    return choose_placement_indexed(key, indexer_.index(0, key), indexer_.index(1, key));
}

Result<TableIndex> HashCamTable::choose_placement_indexed(std::span<const u8> key, u64 index_a,
                                                          u64 index_b) const {
    (void)key;
    const u64 idx[2] = {index_a, index_b};

    const auto first_free_way = [&](u32 mem) -> std::optional<u32> {
        for (u32 way = 0; way < config_.ways; ++way) {
            if (!entry_at(mem, slot_of(idx[mem], way)).valid) return way;
        }
        return std::nullopt;
    };

    u32 order[2] = {0, 1};
    if (config_.insert_policy == InsertPolicy::kLeastLoaded &&
        bucket_occupancy(1, idx[1]) < bucket_occupancy(0, idx[0])) {
        order[0] = 1;
        order[1] = 0;
    }
    for (const u32 mem : order) {
        if (const auto way = first_free_way(mem)) {
            return TableIndex{mem == 0 ? TableIndex::Where::kMem1 : TableIndex::Where::kMem2,
                              slot_of(idx[mem], *way)};
        }
    }
    // Both buckets full: collision goes to the CAM (Fig. 1).
    if (!cam_.full()) {
        // Slot is assigned by the CAM itself at insert; report a placeholder
        // location — insert_at(kCam, ...) resolves the real slot.
        return TableIndex{TableIndex::Where::kCam, 0};
    }
    return Status(StatusCode::kCapacityExceeded, "buckets and CAM full");
}

Status HashCamTable::insert_at(TableIndex location, std::span<const u8> key, u64 payload) {
    switch (location.where) {
        case TableIndex::Where::kCam: {
            const Status status = cam_.insert(key, payload);
            if (status.is_ok()) {
                ++stats_.cam_inserts;
                ++size_;
            }
            return status;
        }
        case TableIndex::Where::kMem1:
        case TableIndex::Where::kMem2: {
            const u32 mem = location.where == TableIndex::Where::kMem1 ? 0 : 1;
            table::Entry& entry = mems_[mem][location.slot];
            if (entry.valid) {
                return Status(StatusCode::kFailedPrecondition, "slot already occupied");
            }
            entry.assign(key, payload);
            ++stats_.bucket_writes;
            ++size_;
            return Status::ok();
        }
        case TableIndex::Where::kNone: break;
    }
    return Status(StatusCode::kInvalidArgument, "invalid placement");
}

Status HashCamTable::insert(std::span<const u8> key, u64 payload) {
    ++stats_.inserts;
    // Duplicate check via locate() so the internal probe does not inflate
    // the lookup statistics.
    if (locate(key)) return Status(StatusCode::kAlreadyExists);
    auto placement = choose_placement(key);
    if (!placement) {
        ++stats_.insert_failures;
        return placement.status();
    }
    return insert_at(placement.value(), key, payload);
}

Status HashCamTable::erase_at(TableIndex location, std::span<const u8> key) {
    switch (location.where) {
        case TableIndex::Where::kCam:
            if (cam_.erase(key).is_ok()) {
                --size_;
                return Status::ok();
            }
            return Status(StatusCode::kNotFound);
        case TableIndex::Where::kMem1:
        case TableIndex::Where::kMem2: {
            const u32 mem = location.where == TableIndex::Where::kMem1 ? 0 : 1;
            table::Entry& entry = mems_[mem][location.slot];
            if (!entry.matches(key)) return Status(StatusCode::kNotFound);
            entry.valid = false;
            ++stats_.bucket_writes;
            --size_;
            return Status::ok();
        }
        case TableIndex::Where::kNone: break;
    }
    return Status(StatusCode::kInvalidArgument, "invalid location");
}

Status HashCamTable::erase(std::span<const u8> key) {
    ++stats_.erases;
    const auto location = locate(key);
    if (!location) return Status(StatusCode::kNotFound);
    return erase_at(*location, key);
}

std::optional<TableIndex> HashCamTable::locate(std::span<const u8> key) const {
    if (const auto slot = cam_.slot_of(key)) {
        return TableIndex{TableIndex::Where::kCam, *slot};
    }
    for (u32 mem = 0; mem < 2; ++mem) {
        const SearchResult result = search_mem(mem, key);
        if (result.hit()) return result.location;
    }
    return std::nullopt;
}

std::vector<u8> HashCamTable::serialize_bucket(u32 mem, u64 bucket_index) const {
    std::vector<u8> bytes;
    serialize_bucket_into(mem, bucket_index, bytes);
    return bytes;
}

void HashCamTable::serialize_bucket_into(u32 mem, u64 bucket_index,
                                         std::vector<u8>& out) const {
    out.assign(config_.bucket_bytes(), 0);
    for (u32 way = 0; way < config_.ways; ++way) {
        const table::Entry& entry = entry_at(mem, slot_of(bucket_index, way));
        u8* cell = out.data() + static_cast<std::size_t>(way) * config_.entry_bytes;
        if (!entry.valid) continue;
        cell[0] = static_cast<u8>(1u | (entry.key_length << 1));
        std::copy_n(entry.key.begin(), entry.key_length, cell + kEntryHeaderBytes);
    }
}

std::optional<u32> HashCamTable::match_in_bucket_bytes(std::span<const u8> bucket_bytes,
                                                       u32 ways, u32 entry_bytes,
                                                       std::span<const u8> key) {
    for (u32 way = 0; way < ways; ++way) {
        const std::size_t base = static_cast<std::size_t>(way) * entry_bytes;
        if (base + entry_bytes > bucket_bytes.size()) break;
        const u8 flags = bucket_bytes[base];
        if ((flags & 1u) == 0) continue;
        const u32 length = flags >> 1;
        if (length != key.size()) continue;
        if (std::equal(key.begin(), key.end(), bucket_bytes.begin() + base + kEntryHeaderBytes)) {
            return way;
        }
    }
    return std::nullopt;
}

u32 HashCamTable::bucket_occupancy(u32 mem, u64 bucket_index) const {
    u32 count = 0;
    for (u32 way = 0; way < config_.ways; ++way) {
        if (entry_at(mem, slot_of(bucket_index, way)).valid) ++count;
    }
    return count;
}

}  // namespace flowcam::core
