#include "net/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>

namespace flowcam::net {
namespace {

constexpr std::size_t kRecordBytes = 24;

void put_le(u8* out, u64 value, std::size_t bytes) {
    for (std::size_t i = 0; i < bytes; ++i) out[i] = static_cast<u8>(value >> (8 * i));
}

u64 get_le(const u8* in, std::size_t bytes) {
    u64 value = 0;
    for (std::size_t i = 0; i < bytes; ++i) value |= static_cast<u64>(in[i]) << (8 * i);
    return value;
}

}  // namespace

Status write_trace(const std::string& path, const std::vector<PacketRecord>& records) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status(StatusCode::kUnavailable, "cannot open " + path);

    std::array<u8, 8> header{};
    std::memcpy(header.data(), kTraceMagic, 4);
    put_le(header.data() + 4, records.size(), 4);
    out.write(reinterpret_cast<const char*>(header.data()), header.size());

    std::array<u8, kRecordBytes> record{};
    for (const PacketRecord& packet : records) {
        put_le(record.data(), packet.timestamp_ns, 8);
        put_le(record.data() + 8, packet.tuple.src_ip, 4);
        put_le(record.data() + 12, packet.tuple.dst_ip, 4);
        put_le(record.data() + 16, packet.tuple.src_port, 2);
        put_le(record.data() + 18, packet.tuple.dst_port, 2);
        record[20] = packet.tuple.protocol;
        record[21] = 0;
        put_le(record.data() + 22, packet.frame_bytes, 2);
        out.write(reinterpret_cast<const char*>(record.data()), record.size());
    }
    if (!out) return Status(StatusCode::kUnavailable, "short write to " + path);
    return Status::ok();
}

Result<std::vector<PacketRecord>> read_trace(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status(StatusCode::kUnavailable, "cannot open " + path);

    std::array<u8, 8> header{};
    in.read(reinterpret_cast<char*>(header.data()), header.size());
    if (!in || std::memcmp(header.data(), kTraceMagic, 4) != 0) {
        return Status(StatusCode::kInvalidArgument, "bad trace magic in " + path);
    }
    const u64 count = get_le(header.data() + 4, 4);

    std::vector<PacketRecord> records;
    records.reserve(count);
    std::array<u8, kRecordBytes> record{};
    for (u64 i = 0; i < count; ++i) {
        in.read(reinterpret_cast<char*>(record.data()), record.size());
        if (!in) return Status(StatusCode::kInvalidArgument, "truncated trace " + path);
        PacketRecord packet;
        packet.timestamp_ns = get_le(record.data(), 8);
        packet.tuple.src_ip = static_cast<u32>(get_le(record.data() + 8, 4));
        packet.tuple.dst_ip = static_cast<u32>(get_le(record.data() + 12, 4));
        packet.tuple.src_port = static_cast<u16>(get_le(record.data() + 16, 2));
        packet.tuple.dst_port = static_cast<u16>(get_le(record.data() + 18, 2));
        packet.tuple.protocol = record[20];
        packet.frame_bytes = static_cast<u16>(get_le(record.data() + 22, 2));
        records.push_back(packet);
    }
    return records;
}

}  // namespace flowcam::net
