#include "net/headers.hpp"

#include <algorithm>

namespace flowcam::net {
namespace {

void put16(std::vector<u8>& out, u16 value) {
    out.push_back(static_cast<u8>(value >> 8));
    out.push_back(static_cast<u8>(value));
}

void put32(std::vector<u8>& out, u32 value) {
    put16(out, static_cast<u16>(value >> 16));
    put16(out, static_cast<u16>(value));
}

u16 get16(std::span<const u8> data, std::size_t offset) {
    return static_cast<u16>((data[offset] << 8) | data[offset + 1]);
}

u32 get32(std::span<const u8> data, std::size_t offset) {
    return (static_cast<u32>(get16(data, offset)) << 16) | get16(data, offset + 2);
}

}  // namespace

u16 ipv4_header_checksum(std::span<const u8> header) {
    u32 sum = 0;
    for (std::size_t i = 0; i + 1 < header.size(); i += 2) {
        sum += get16(header, i);
    }
    if (header.size() % 2 == 1) sum += static_cast<u32>(header.back()) << 8;
    while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
    return static_cast<u16>(~sum);
}

std::vector<u8> build_packet(const PacketSpec& spec) {
    std::vector<u8> frame;
    const bool is_tcp = spec.tuple.protocol == kProtoTcp;
    const std::size_t l4_bytes = is_tcp ? 20 : 8;
    const auto ip_total =
        static_cast<u16>(kIpv4MinHeaderBytes + l4_bytes + spec.payload_bytes);
    frame.reserve(kEthHeaderBytes + ip_total + 4);

    // Ethernet.
    frame.insert(frame.end(), spec.dst_mac.octets.begin(), spec.dst_mac.octets.end());
    frame.insert(frame.end(), spec.src_mac.octets.begin(), spec.src_mac.octets.end());
    if (spec.vlan) {
        put16(frame, kEtherTypeVlan);
        put16(frame, *spec.vlan & 0x0FFF);
    }
    put16(frame, kEtherTypeIpv4);

    // IPv4 (no options).
    const std::size_t ip_start = frame.size();
    frame.push_back(0x45);  // version 4, IHL 5
    frame.push_back(0);     // DSCP/ECN
    put16(frame, ip_total);
    put16(frame, 0x1234);  // identification
    put16(frame, 0x4000);  // DF, fragment offset 0
    frame.push_back(spec.ttl);
    frame.push_back(spec.tuple.protocol);
    put16(frame, 0);  // checksum placeholder
    put32(frame, spec.tuple.src_ip);
    put32(frame, spec.tuple.dst_ip);
    const u16 checksum = ipv4_header_checksum(
        std::span<const u8>{frame.data() + ip_start, kIpv4MinHeaderBytes});
    frame[ip_start + 10] = static_cast<u8>(checksum >> 8);
    frame[ip_start + 11] = static_cast<u8>(checksum);

    // L4.
    if (is_tcp) {
        put16(frame, spec.tuple.src_port);
        put16(frame, spec.tuple.dst_port);
        put32(frame, 0);        // seq
        put32(frame, 0);        // ack
        frame.push_back(0x50);  // data offset 5
        frame.push_back(0x10);  // ACK flag
        put16(frame, 0xFFFF);   // window
        put16(frame, 0);        // checksum (not computed for synthetic packets)
        put16(frame, 0);        // urgent
    } else {
        put16(frame, spec.tuple.src_port);
        put16(frame, spec.tuple.dst_port);
        put16(frame, static_cast<u16>(8 + spec.payload_bytes));
        put16(frame, 0);  // checksum
    }

    frame.insert(frame.end(), spec.payload_bytes, 0);
    return frame;
}

std::optional<ParsedPacket> parse_packet(std::span<const u8> frame) {
    if (frame.size() < kEthHeaderBytes + kIpv4MinHeaderBytes) return std::nullopt;

    std::size_t offset = 12;
    u16 ether_type = get16(frame, offset);
    offset += 2;
    bool has_vlan = false;
    if (ether_type == kEtherTypeVlan) {
        if (frame.size() < offset + 4) return std::nullopt;
        has_vlan = true;
        offset += 2;  // skip TCI
        ether_type = get16(frame, offset);
        offset += 2;
    }
    if (ether_type != kEtherTypeIpv4) return std::nullopt;

    if (frame.size() < offset + kIpv4MinHeaderBytes) return std::nullopt;
    const u8 version_ihl = frame[offset];
    if ((version_ihl >> 4) != 4) return std::nullopt;
    const std::size_t ihl_bytes = static_cast<std::size_t>(version_ihl & 0x0F) * 4;
    if (ihl_bytes < kIpv4MinHeaderBytes || frame.size() < offset + ihl_bytes) return std::nullopt;

    ParsedPacket parsed;
    parsed.has_vlan = has_vlan;
    parsed.ip_total_length = get16(frame, offset + 2);
    parsed.frame_bytes = static_cast<u16>(frame.size());
    parsed.tuple.protocol = frame[offset + 9];
    parsed.tuple.src_ip = get32(frame, offset + 12);
    parsed.tuple.dst_ip = get32(frame, offset + 16);

    const std::size_t l4 = offset + ihl_bytes;
    if (parsed.tuple.protocol == kProtoTcp || parsed.tuple.protocol == kProtoUdp) {
        if (frame.size() < l4 + 4) return std::nullopt;
        parsed.tuple.src_port = get16(frame, l4);
        parsed.tuple.dst_port = get16(frame, l4 + 2);
    } else {
        parsed.tuple.src_port = 0;
        parsed.tuple.dst_port = 0;
    }
    return parsed;
}

}  // namespace flowcam::net
