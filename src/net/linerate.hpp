// Ethernet line-rate arithmetic (paper §V-B).
//
// "For general analysis of flow processing, a minimum Layer 1 Ethernet
// packet size of 72 bytes is assumed... At 40Gbps Ethernet link, the packet
// processing rate is required to be 59.52 Mpps with a standard interframe
// gap of 12-byte time. If the IPG is reduced to 1-byte time in the worst
// case, the packet processing rate is required to be 68.49 Mpps."
//
// The 72-byte L1 size = 64-byte minimum frame + 7-byte preamble + 1-byte
// SFD; the IPG rides on top.
#pragma once

#include "common/types.hpp"

namespace flowcam::net {

inline constexpr double kPreambleSfdBytes = 8.0;   // 7 preamble + 1 SFD
inline constexpr double kStandardIpgBytes = 12.0;  // IEEE 802.3
inline constexpr double kMinFrameBytes = 64.0;     // min L2 frame (with FCS)

struct LineRateQuery {
    double link_gbps = 40.0;
    double l2_frame_bytes = kMinFrameBytes;
    double ipg_bytes = kStandardIpgBytes;
};

/// Packets per second the link can carry wall-to-wall.
[[nodiscard]] constexpr double packets_per_second(const LineRateQuery& q) {
    const double wire_bytes = q.l2_frame_bytes + kPreambleSfdBytes + q.ipg_bytes;
    return q.link_gbps * 1e9 / 8.0 / wire_bytes;
}

[[nodiscard]] constexpr double mpps(const LineRateQuery& q) {
    return packets_per_second(q) / 1e6;
}

/// Inverse question the paper answers in §V-B: what throughput (Gbps) does a
/// processor sustaining `lookup_mpps` support at minimum packet size?
[[nodiscard]] constexpr double supported_gbps(double lookup_mpps, double l2_frame_bytes = kMinFrameBytes,
                                              double ipg_bytes = kStandardIpgBytes) {
    const double wire_bytes = l2_frame_bytes + kPreambleSfdBytes + ipg_bytes;
    return lookup_mpps * 1e6 * wire_bytes * 8.0 / 1e9;
}

}  // namespace flowcam::net
