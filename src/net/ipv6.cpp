#include "net/ipv6.hpp"

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"
#include "net/headers.hpp"

namespace flowcam::net {
namespace {

void put16v(std::vector<u8>& out, u16 value) {
    out.push_back(static_cast<u8>(value >> 8));
    out.push_back(static_cast<u8>(value));
}

u16 get16s(std::span<const u8> data, std::size_t offset) {
    return static_cast<u16>((data[offset] << 8) | data[offset + 1]);
}

}  // namespace

Ipv6Address Ipv6Address::from_words(u64 hi, u64 lo) {
    Ipv6Address address;
    for (int i = 0; i < 8; ++i) {
        address.octets[i] = static_cast<u8>(hi >> (8 * (7 - i)));
        address.octets[8 + i] = static_cast<u8>(lo >> (8 * (7 - i)));
    }
    return address;
}

std::string Ipv6Address::to_string() const {
    // Canonical-enough form: eight colon-separated hex groups (no ::
    // compression; this is diagnostic output, not RFC 5952).
    std::ostringstream os;
    os << std::hex;
    for (int group = 0; group < 8; ++group) {
        if (group > 0) os << ':';
        os << ((octets[group * 2] << 8) | octets[group * 2 + 1]);
    }
    return os.str();
}

std::array<u8, SixTuple::kKeyBytes> SixTuple::key_bytes() const {
    std::array<u8, kKeyBytes> out{};
    std::copy(src_ip.octets.begin(), src_ip.octets.end(), out.begin());
    std::copy(dst_ip.octets.begin(), dst_ip.octets.end(), out.begin() + 16);
    out[32] = static_cast<u8>(src_port >> 8);
    out[33] = static_cast<u8>(src_port);
    out[34] = static_cast<u8>(dst_port >> 8);
    out[35] = static_cast<u8>(dst_port);
    out[36] = protocol;
    return out;
}

SixTuple SixTuple::from_key_bytes(std::span<const u8> bytes) {
    SixTuple t;
    if (bytes.size() < kKeyBytes) return t;
    std::copy_n(bytes.begin(), 16, t.src_ip.octets.begin());
    std::copy_n(bytes.begin() + 16, 16, t.dst_ip.octets.begin());
    t.src_port = static_cast<u16>((bytes[32] << 8) | bytes[33]);
    t.dst_port = static_cast<u16>((bytes[34] << 8) | bytes[35]);
    t.protocol = bytes[36];
    return t;
}

NTuple SixTuple::to_ntuple() const {
    const auto key = key_bytes();
    return NTuple(std::span<const u8>{key.data(), key.size()});
}

std::string SixTuple::to_string() const {
    std::ostringstream os;
    os << '[' << src_ip.to_string() << "]:" << src_port << " -> [" << dst_ip.to_string()
       << "]:" << dst_port << " proto " << static_cast<int>(protocol);
    return os.str();
}

std::vector<u8> build_packet_v6(const Ipv6PacketSpec& spec) {
    std::vector<u8> frame;
    const bool is_tcp = spec.tuple.protocol == kProtoTcp;
    const std::size_t l4_bytes = is_tcp ? 20 : 8;
    const auto payload_length = static_cast<u16>(l4_bytes + spec.payload_bytes);
    frame.reserve(kEthHeaderBytes + kIpv6HeaderBytes + payload_length);

    // Ethernet (zero MACs; flow identification ignores L2).
    frame.insert(frame.end(), 12, 0);
    put16v(frame, kEtherTypeIpv6);

    // IPv6 fixed header.
    frame.push_back(0x60);  // version 6, traffic class 0 (upper nibble)
    frame.push_back(0);     // traffic class / flow label
    frame.push_back(0);
    frame.push_back(0);
    put16v(frame, payload_length);
    frame.push_back(spec.tuple.protocol);  // next header
    frame.push_back(spec.hop_limit);
    frame.insert(frame.end(), spec.tuple.src_ip.octets.begin(), spec.tuple.src_ip.octets.end());
    frame.insert(frame.end(), spec.tuple.dst_ip.octets.begin(), spec.tuple.dst_ip.octets.end());

    // L4 (same shapes as the IPv4 codec).
    if (is_tcp) {
        put16v(frame, spec.tuple.src_port);
        put16v(frame, spec.tuple.dst_port);
        frame.insert(frame.end(), 8, 0);  // seq + ack
        frame.push_back(0x50);
        frame.push_back(0x10);
        put16v(frame, 0xFFFF);
        put16v(frame, 0);
        put16v(frame, 0);
    } else {
        put16v(frame, spec.tuple.src_port);
        put16v(frame, spec.tuple.dst_port);
        put16v(frame, static_cast<u16>(8 + spec.payload_bytes));
        put16v(frame, 0);
    }
    frame.insert(frame.end(), spec.payload_bytes, 0);
    return frame;
}

std::optional<ParsedPacketV6> parse_packet_v6(std::span<const u8> frame) {
    if (frame.size() < kEthHeaderBytes + kIpv6HeaderBytes) return std::nullopt;
    if (get16s(frame, 12) != kEtherTypeIpv6) return std::nullopt;

    const std::size_t ip = kEthHeaderBytes;
    if ((frame[ip] >> 4) != 6) return std::nullopt;

    ParsedPacketV6 parsed;
    parsed.payload_length = get16s(frame, ip + 4);
    parsed.frame_bytes = static_cast<u16>(frame.size());
    const u8 next_header = frame[ip + 6];
    // Fast path handles TCP/UDP/ICMPv6 directly after the fixed header;
    // anything else (extension headers) goes to the slow path.
    if (next_header != kProtoTcp && next_header != kProtoUdp && next_header != 58) {
        return std::nullopt;
    }
    parsed.tuple.protocol = next_header;
    std::copy_n(frame.begin() + static_cast<std::ptrdiff_t>(ip + 8), 16,
                parsed.tuple.src_ip.octets.begin());
    std::copy_n(frame.begin() + static_cast<std::ptrdiff_t>(ip + 24), 16,
                parsed.tuple.dst_ip.octets.begin());

    const std::size_t l4 = ip + kIpv6HeaderBytes;
    if (next_header == kProtoTcp || next_header == kProtoUdp) {
        if (frame.size() < l4 + 4) return std::nullopt;
        parsed.tuple.src_port = get16s(frame, l4);
        parsed.tuple.dst_port = get16s(frame, l4 + 2);
    }
    return parsed;
}

SixTuple synth_tuple_v6(u64 flow_index, u64 seed) {
    Xoshiro256 rng(seed ^ (flow_index * 0x9e3779b97f4a7c15ull + 0x76543210));
    SixTuple t;
    // 2001:db8::/32 documentation prefix with random interface ids.
    t.src_ip = Ipv6Address::from_words(0x20010db800000000ull | (rng() & 0xFFFFFFFF), rng());
    t.dst_ip = Ipv6Address::from_words(0x20010db800000000ull | (rng() & 0xFFFFFFFF), rng());
    t.src_port = static_cast<u16>(rng.bounded(65535 - 1024) + 1024);
    t.dst_port = rng.chance(0.7) ? 443 : static_cast<u16>(rng.bounded(65535 - 1024) + 1024);
    t.protocol = rng.chance(0.85) ? kProtoTcp : kProtoUdp;
    return t;
}

}  // namespace flowcam::net
