// Synthetic traffic traces calibrated to the paper's Figure 6.
//
// The paper analyzes a 594-million-packet trace captured in 2012 from a
// European switch fabric: 1 k packets contain ~570 distinct flows (57 %),
// 10 k packets ~33.81 %, and the new-flow ratio falls below 10 % for
// sufficiently large windows. We cannot redistribute that trace, so we
// substitute a two-parameter Pitman–Yor flow-arrival process, which produces
// exactly the observed power-law flow growth D(n) ≈ c·n^d. Fitting the two
// published points gives d ≈ 0.773 and c ≈ 2.73 (θ ≈ 27); the calibration
// is asserted by tests and reported by bench_fig6_trace_analysis.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/tuple.hpp"

namespace flowcam::net {

/// One trace record: arrival time (ns), flow tuple, wire size.
struct PacketRecord {
    u64 timestamp_ns = 0;
    FiveTuple tuple;
    u16 frame_bytes = 64;
    u64 flow_index = 0;  ///< ground-truth flow id (generator bookkeeping).
    /// When non-empty this is the exact-match key fed to the Flow LUT instead
    /// of the serialized IPv4 5-tuple — the IPv6 / generic n-tuple path for
    /// trace replay. `tuple` still carries ports/protocol for the stats and
    /// event engines (its addresses are zero for non-IPv4 keys).
    NTuple key_override;
};

struct TraceConfig {
    u64 seed = 2014;
    /// Pitman–Yor discount d in (0,1): the power-law exponent of flow growth.
    double discount = 0.773;
    /// Pitman–Yor strength θ > -d: scales the flow-growth constant.
    double strength = 27.0;
    /// Mean packet inter-arrival in nanoseconds (packets arrive back-to-back
    /// at 40 GbE minimum size when ~17 ns).
    double mean_gap_ns = 17.0;
    /// Tri-modal packet-size mix (typical internet MIX): P(64) / P(576) /
    /// P(1500) in thousandths.
    u32 p64_milli = 500;
    u32 p576_milli = 250;
};

/// Streaming trace generator. next() is O(1) amortized.
class TraceGenerator {
  public:
    explicit TraceGenerator(const TraceConfig& config);

    [[nodiscard]] PacketRecord next();

    /// Number of distinct flows emitted so far.
    [[nodiscard]] u64 flow_count() const { return flow_count_; }
    /// Number of packets emitted so far.
    [[nodiscard]] u64 packet_count() const { return assignments_.size(); }

  private:
    [[nodiscard]] u64 draw_flow();
    [[nodiscard]] FiveTuple tuple_for_flow(u64 flow_index);

    TraceConfig config_;
    Xoshiro256 rng_;
    std::vector<u64> assignments_;  ///< flow index of each past packet.
    std::vector<u64> flow_sizes_;   ///< packets seen per flow index.
    u64 flow_count_ = 0;
    u64 now_ns_ = 0;
};

/// The Figure 6 measurement: for each window size A, the number of distinct
/// flows B in the first A packets and the ratio B/A.
struct FlowGrowthPoint {
    u64 packets = 0;      ///< A
    u64 new_flows = 0;    ///< B
    double ratio = 0.0;   ///< B/A
};

/// Run the generator once to the largest window, sampling at `windows`.
[[nodiscard]] std::vector<FlowGrowthPoint> measure_flow_growth(const TraceConfig& config,
                                                               const std::vector<u64>& windows);

/// Simple repeating-population workload for Table II(B)-style experiments:
/// generates packets drawn uniformly from a fixed set of `flow_count` flows.
class UniformFlowWorkload {
  public:
    UniformFlowWorkload(u64 flow_count, u64 seed);

    [[nodiscard]] PacketRecord next();
    [[nodiscard]] const std::vector<FiveTuple>& flows() const { return flows_; }

  private:
    std::vector<FiveTuple> flows_;
    Xoshiro256 rng_;
    u64 now_ns_ = 0;
};

/// Deterministic tuple synthesis shared by all generators: distinct flow
/// indices map to distinct, realistic-looking 5-tuples.
[[nodiscard]] FiveTuple synth_tuple(u64 flow_index, u64 seed);

/// Building blocks of synth_tuple, also used by workload overlay generators:
/// a public-looking IPv4 address (avoiding 0/8 and multicast/reserved space)
/// and a client ephemeral port.
[[nodiscard]] u32 synth_public_ip(Xoshiro256& rng);
[[nodiscard]] u16 synth_ephemeral_port(Xoshiro256& rng);

}  // namespace flowcam::net
