#include "net/trace.hpp"

#include <cassert>
#include <cmath>

namespace flowcam::net {

u32 synth_public_ip(Xoshiro256& rng) {
    // Public-looking addresses, avoiding 0.0.0.0/8 and 255.x.
    return static_cast<u32>(rng.bounded(0xDFFFFFFF - 0x01000000) + 0x01000000);
}

u16 synth_ephemeral_port(Xoshiro256& rng) {
    return static_cast<u16>(rng.bounded(65535 - 1024) + 1024);
}

FiveTuple synth_tuple(u64 flow_index, u64 seed) {
    // One RNG draw sequence per flow index: fully deterministic, collision-
    // free enough for billions of flows (96 bits of entropy in the tuple).
    Xoshiro256 rng(seed ^ (flow_index * 0x9e3779b97f4a7c15ull + 0x1234567));
    FiveTuple t;
    t.src_ip = synth_public_ip(rng);
    t.dst_ip = synth_public_ip(rng);
    // Client ephemeral port to a popular service port mix.
    t.src_port = synth_ephemeral_port(rng);
    constexpr u16 kServices[] = {80, 443, 53, 22, 25, 123, 8080, 3306};
    t.dst_port = rng.chance(0.7) ? kServices[rng.bounded(8)] : synth_ephemeral_port(rng);
    t.protocol = rng.chance(0.8) ? kProtoTcp : (rng.chance(0.9) ? kProtoUdp : kProtoIcmp);
    return t;
}

TraceGenerator::TraceGenerator(const TraceConfig& config)
    : config_(config), rng_(config.seed) {
    assert(config.discount > 0.0 && config.discount < 1.0);
    assert(config.strength > -config.discount);
}

u64 TraceGenerator::draw_flow() {
    const auto t = static_cast<double>(assignments_.size());
    const double k = static_cast<double>(flow_count_);
    const double denom = config_.strength + t;
    const double p_new = (config_.strength + config_.discount * k) / denom;
    if (assignments_.empty() || rng_.uniform() < p_new) {
        return flow_count_++;  // new flow
    }
    // Existing flow j with probability ∝ (n_j - d): pick a uniformly random
    // previous packet (∝ n_j), accept with probability (n_j - d)/n_j.
    // Acceptance ≥ 1-d, so this terminates in O(1) expected iterations.
    for (;;) {
        const u64 candidate = assignments_[rng_.bounded(assignments_.size())];
        const double n_j = static_cast<double>(flow_sizes_[candidate]);
        if (rng_.uniform() < 1.0 - config_.discount / n_j) return candidate;
    }
}

PacketRecord TraceGenerator::next() {
    const u64 flow = draw_flow();
    assignments_.push_back(flow);
    if (flow >= flow_sizes_.size()) flow_sizes_.push_back(0);
    ++flow_sizes_[flow];

    PacketRecord record;
    record.flow_index = flow;
    record.tuple = tuple_for_flow(flow);
    // Exponential inter-arrival around the configured mean.
    const double gap = -config_.mean_gap_ns * std::log(1.0 - rng_.uniform());
    now_ns_ += static_cast<u64>(gap) + 1;
    record.timestamp_ns = now_ns_;
    // Tri-modal size mix.
    const u64 roll = rng_.bounded(1000);
    if (roll < config_.p64_milli) {
        record.frame_bytes = 64;
    } else if (roll < config_.p64_milli + config_.p576_milli) {
        record.frame_bytes = 576;
    } else {
        record.frame_bytes = 1500;
    }
    return record;
}

FiveTuple TraceGenerator::tuple_for_flow(u64 flow_index) {
    return synth_tuple(flow_index, config_.seed);
}

std::vector<FlowGrowthPoint> measure_flow_growth(const TraceConfig& config,
                                                 const std::vector<u64>& windows) {
    TraceGenerator generator(config);
    std::vector<FlowGrowthPoint> points;
    points.reserve(windows.size());
    u64 emitted = 0;
    for (const u64 window : windows) {
        while (emitted < window) {
            (void)generator.next();
            ++emitted;
        }
        FlowGrowthPoint point;
        point.packets = window;
        point.new_flows = generator.flow_count();
        point.ratio = static_cast<double>(point.new_flows) / static_cast<double>(window);
        points.push_back(point);
    }
    return points;
}

UniformFlowWorkload::UniformFlowWorkload(u64 flow_count, u64 seed) : rng_(seed ^ 0xBEEF) {
    flows_.reserve(flow_count);
    for (u64 i = 0; i < flow_count; ++i) flows_.push_back(synth_tuple(i, seed));
}

PacketRecord UniformFlowWorkload::next() {
    PacketRecord record;
    record.flow_index = rng_.bounded(flows_.size());
    record.tuple = flows_[record.flow_index];
    now_ns_ += 17;
    record.timestamp_ns = now_ns_;
    record.frame_bytes = 64;
    return record;
}

}  // namespace flowcam::net
